// T3 — Faithfulness: AOPC deletion score of every explainer on every
// dataset (the paper's headline comparison). Also reports the equal-token
// comprehensiveness@5-words column, which removes CREW's advantage of
// deleting several words per unit.
//
// Expected shape: CREW >= Landmark/LEMON >= LIME/Mojito >> random.

#include <cstdio>

#include "bench_util.h"
#include "crew/eval/significance.h"

int main(int argc, char** argv) {
  const auto options = crew::bench::BenchOptions::Parse(argc, argv);
  std::printf(
      "== T3: faithfulness (AOPC deletion / equal-token compr@5w) ==\n"
      "matcher=%s samples=%d instances/dataset=%d\n\n",
      options.matcher.c_str(), options.samples, options.instances);

  crew::ExperimentRunner runner(
      crew::bench::SpecFromOptions("t3_faithfulness", options));
  const auto setup = crew::bench::MakeStreamSetup(options);
  auto result = runner.Run(setup.hooks);
  crew::bench::DieIfError(result.status());

  crew::bench::EmitExperiment(
      *result, options,
      {crew::AggColumn("aopc", &crew::ExplainerAggregate::aopc),
       crew::AggColumn("compr@5w",
                       &crew::ExplainerAggregate::comprehensiveness_budget5),
       {"flip%",
        [](const crew::ExperimentCell& cell) {
          return crew::Table::Num(
              100.0 * cell.aggregate.decision_flip_rate, 1);
        }},
       crew::AggColumn("r2", &crew::ExplainerAggregate::surrogate_r2, 2)});

  std::printf("-- mean AOPC across datasets --\n");
  crew::Table summary({"explainer", "mean_aopc"});
  for (const std::string& name : result->VariantNames()) {
    summary.AddRow({name, crew::Table::Num(result->ReduceAcross(name).aopc)});
  }
  std::printf("%s\n", summary.ToAligned().c_str());

  // Paired bootstrap: is CREW's AOPC advantage over each baseline
  // statistically solid on these instances?
  const std::vector<double> crew_samples = result->PerInstanceAopc("crew");
  if (!crew_samples.empty()) {
    std::printf("-- paired bootstrap, crew vs baseline (one-sided) --\n");
    crew::Table sig({"baseline", "mean diff", "95% CI", "p-value"});
    for (const std::string& name : result->VariantNames()) {
      if (name == "crew") continue;
      const std::vector<double> samples = result->PerInstanceAopc(name);
      if (samples.size() != crew_samples.size()) continue;
      auto cmp = crew::PairedBootstrap(crew_samples, samples, 2000,
                                       options.seed);
      if (!cmp.ok()) continue;
      // Built with append: the operator+ chain trips GCC 12's -Wrestrict
      // false positive (PR105651) when inlined at -O2, which -Werror
      // would promote.
      std::string ci = "[";
      ci += crew::Table::Num(cmp->ci_low);
      ci += ", ";
      ci += crew::Table::Num(cmp->ci_high);
      ci += "]";
      sig.AddRow({name, crew::Table::Num(cmp->mean_difference), ci,
                  crew::Table::Num(cmp->p_value)});
    }
    std::printf("%s\n", sig.ToAligned().c_str());
  }
  return 0;
}
