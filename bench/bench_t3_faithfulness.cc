// T3 — Faithfulness: AOPC deletion score of every explainer on every
// dataset (the paper's headline comparison). Also reports the equal-token
// comprehensiveness@5-words column, which removes CREW's advantage of
// deleting several words per unit.
//
// Expected shape: CREW >= Landmark/LEMON >= LIME/Mojito >> random.

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "crew/eval/significance.h"

int main(int argc, char** argv) {
  const auto options = crew::bench::BenchOptions::Parse(argc, argv);
  std::printf(
      "== T3: faithfulness (AOPC deletion / equal-token compr@5w) ==\n"
      "matcher=%s samples=%d instances/dataset=%d\n\n",
      options.matcher.c_str(), options.samples, options.instances);

  crew::Table table({"dataset", "explainer", "aopc", "compr@5w", "flip%",
                     "r2"});
  std::map<std::string, std::pair<double, int>> overall;
  // Paired per-instance AOPC samples for the significance test.
  std::map<std::string, std::vector<double>> samples_by_explainer;
  for (const auto& entry : options.Datasets()) {
    const auto prepared = crew::bench::Prepare(entry, options);
    const auto suite =
        crew::BuildExplainerSuite(prepared.pipeline.embeddings,
                                  prepared.pipeline.train,
                                  crew::bench::SuiteConfig(options));
    for (const auto& explainer : suite) {
      std::vector<double> per_instance;
      auto agg = crew::EvaluateExplainerOnDataset(
          *explainer, *prepared.pipeline.matcher, prepared.pipeline.test,
          prepared.instances, prepared.pipeline.embeddings.get(),
          options.seed, &per_instance);
      crew::bench::DieIfError(agg.status());
      auto& samples = samples_by_explainer[agg->name];
      samples.insert(samples.end(), per_instance.begin(),
                     per_instance.end());
      table.AddRow({prepared.name, agg->name, crew::Table::Num(agg->aopc),
                    crew::Table::Num(agg->comprehensiveness_budget5),
                    crew::Table::Num(100.0 * agg->decision_flip_rate, 1),
                    crew::Table::Num(agg->surrogate_r2, 2)});
      auto& [sum, n] = overall[agg->name];
      sum += agg->aopc;
      ++n;
    }
  }
  std::printf("%s\n", table.ToAligned().c_str());

  std::printf("-- mean AOPC across datasets --\n");
  crew::Table summary({"explainer", "mean_aopc"});
  for (const auto& [name, acc] : overall) {
    summary.AddRow({name, crew::Table::Num(acc.first / acc.second)});
  }
  std::printf("%s\n", summary.ToAligned().c_str());

  // Paired bootstrap: is CREW's AOPC advantage over each baseline
  // statistically solid on these instances?
  const auto crew_it = samples_by_explainer.find("crew");
  if (crew_it != samples_by_explainer.end()) {
    std::printf("-- paired bootstrap, crew vs baseline (one-sided) --\n");
    crew::Table sig({"baseline", "mean diff", "95% CI", "p-value"});
    for (const auto& [name, samples] : samples_by_explainer) {
      if (name == "crew" || samples.size() != crew_it->second.size()) {
        continue;
      }
      auto cmp = crew::PairedBootstrap(crew_it->second, samples, 2000,
                                       options.seed);
      if (!cmp.ok()) continue;
      sig.AddRow({name, crew::Table::Num(cmp->mean_difference),
                  "[" + crew::Table::Num(cmp->ci_low) + ", " +
                      crew::Table::Num(cmp->ci_high) + "]",
                  crew::Table::Num(cmp->p_value)});
    }
    std::printf("%s\n", sig.ToAligned().c_str());
  }
  return 0;
}
