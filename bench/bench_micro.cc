// Micro-benchmarks (google-benchmark) for the hot inner loops: tokenizer,
// string similarity, ridge solve, agglomerative clustering, matcher
// prediction, SGNS training step throughput.

#include <benchmark/benchmark.h>

#include <map>

#include "crew/common/rng.h"
#include "crew/core/agglomerative.h"
#include "crew/data/generator.h"
#include "crew/embed/sgns.h"
#include "crew/la/ridge.h"
#include "crew/model/trainer.h"
#include "crew/text/string_similarity.h"
#include "crew/text/tokenizer.h"

namespace {

void BM_Tokenize(benchmark::State& state) {
  crew::Tokenizer tokenizer;
  const std::string text =
      "Vortexa Wireless Headphones MX-4821 with noise cancelling, "
      "bluetooth 5.0 and fast-charging in graphite";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Tokenize(text));
  }
}
BENCHMARK(BM_Tokenize);

void BM_Levenshtein(benchmark::State& state) {
  const std::string a(state.range(0), 'a');
  std::string b(state.range(0), 'a');
  for (size_t i = 0; i < b.size(); i += 3) b[i] = 'b';
  for (auto _ : state) {
    benchmark::DoNotOptimize(crew::LevenshteinDistance(a, b));
  }
}
BENCHMARK(BM_Levenshtein)->Arg(8)->Arg(32)->Arg(128);

void BM_JaroWinkler(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crew::JaroWinklerSimilarity("corporation", "corporaiton"));
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_RidgeFit(benchmark::State& state) {
  const int n = 256;
  const int d = static_cast<int>(state.range(0));
  crew::Rng rng(1);
  crew::la::Matrix x(n, d);
  crew::la::Vec y(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) x.At(i, j) = rng.Uniform();
    y[i] = rng.Uniform();
  }
  for (auto _ : state) {
    crew::la::RidgeModel model;
    benchmark::DoNotOptimize(crew::la::FitRidge(x, y, {}, 1.0, &model));
  }
}
BENCHMARK(BM_RidgeFit)->Arg(16)->Arg(48);

void BM_Agglomerative(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  crew::Rng rng(2);
  crew::la::Matrix d(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      d.At(i, j) = d.At(j, i) = rng.Uniform();
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crew::AgglomerativeCluster(d, crew::Linkage::kAverage));
  }
}
BENCHMARK(BM_Agglomerative)->Arg(16)->Arg(48)->Arg(96);

void BM_MatcherPredict(benchmark::State& state) {
  static const auto* pipeline = [] {
    crew::GeneratorConfig config;
    config.num_matches = 100;
    config.num_nonmatches = 100;
    auto d = crew::GenerateDataset(config);
    CREW_CHECK(d.ok());
    auto p = crew::TrainPipeline(d.value(), crew::MatcherKind::kMlp, 0.7, 7);
    CREW_CHECK(p.ok());
    return new crew::TrainedPipeline(std::move(p.value()));
  }();
  const crew::RecordPair& pair = pipeline->test.pair(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline->matcher->PredictProba(pair));
  }
}
BENCHMARK(BM_MatcherPredict);

// One trained pipeline per matcher kind, built lazily and shared across
// benchmark iterations (training is far too slow to repeat per run).
const crew::TrainedPipeline& PipelineFor(crew::MatcherKind kind) {
  static auto* pipelines =
      new std::map<crew::MatcherKind, crew::TrainedPipeline>();
  auto it = pipelines->find(kind);
  if (it == pipelines->end()) {
    crew::GeneratorConfig config;
    config.num_matches = 100;
    config.num_nonmatches = 100;
    auto d = crew::GenerateDataset(config);
    CREW_CHECK(d.ok());
    auto p = crew::TrainPipeline(d.value(), kind, 0.7, 7);
    CREW_CHECK(p.ok());
    it = pipelines->emplace(kind, std::move(p.value())).first;
  }
  return it->second;
}

// Batched scoring vs the per-pair loop, per matcher kind and batch size.
// The batch path hoists feature/tokenization/embedding buffers out of the
// per-sample loop; the gap between the two is the per-sample setup cost.
void BM_PredictProbaBatch(benchmark::State& state) {
  const auto kind = static_cast<crew::MatcherKind>(state.range(0));
  const int batch = static_cast<int>(state.range(1));
  const auto& pipeline = PipelineFor(kind);
  std::vector<crew::RecordPair> pairs;
  pairs.reserve(batch);
  for (int i = 0; i < batch; ++i) {
    pairs.push_back(pipeline.test.pair(i % pipeline.test.size()));
  }
  std::vector<double> scores;
  for (auto _ : state) {
    pipeline.matcher->PredictProbaBatch(pairs, &scores);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}

void BM_PredictProbaLoop(benchmark::State& state) {
  const auto kind = static_cast<crew::MatcherKind>(state.range(0));
  const int batch = static_cast<int>(state.range(1));
  const auto& pipeline = PipelineFor(kind);
  std::vector<crew::RecordPair> pairs;
  pairs.reserve(batch);
  for (int i = 0; i < batch; ++i) {
    pairs.push_back(pipeline.test.pair(i % pipeline.test.size()));
  }
  std::vector<double> scores(batch);
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      scores[i] = pipeline.matcher->PredictProba(pairs[i]);
    }
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}

void BatchArgs(benchmark::internal::Benchmark* b) {
  for (crew::MatcherKind kind : crew::AllMatcherKinds()) {
    for (int batch : {32, 256, 1024}) {
      b->Args({static_cast<long>(kind), batch});
    }
  }
}
BENCHMARK(BM_PredictProbaBatch)->Apply(BatchArgs);
BENCHMARK(BM_PredictProbaLoop)->Apply(BatchArgs);

// Perturbation-shaped batch through the embedding-bag matcher: every pair
// in the batch is a variant of the same record pair, so the scratch's
// token -> embedding-row cache should absorb nearly all vocabulary
// lookups after the first variant (the case the cache exists for).
void BM_EmbeddingBagPerturbationBatch(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const auto& pipeline = PipelineFor(crew::MatcherKind::kEmbeddingBag);
  std::vector<crew::RecordPair> pairs(batch, pipeline.test.pair(0));
  std::vector<double> scores;
  for (auto _ : state) {
    pipeline.matcher->PredictProbaBatch(pairs, &scores);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EmbeddingBagPerturbationBatch)->Arg(32)->Arg(256)->Arg(1024);

void BM_SgnsEpoch(benchmark::State& state) {
  crew::Corpus corpus;
  crew::Rng rng(3);
  for (int s = 0; s < 200; ++s) {
    std::vector<std::string> sentence;
    for (int w = 0; w < 12; ++w) {
      // Append instead of operator+: avoids GCC 12's -Wrestrict false
      // positive (PR105651) under -O2, promoted to an error by -Werror.
      std::string word = "w";
      word += std::to_string(rng.UniformInt(300));
      sentence.push_back(std::move(word));
    }
    corpus.push_back(std::move(sentence));
  }
  for (auto _ : state) {
    crew::SgnsConfig config;
    config.dim = 16;
    config.epochs = 1;
    config.min_count = 1;
    benchmark::DoNotOptimize(crew::TrainSgnsEmbeddings(corpus, config));
  }
}
BENCHMARK(BM_SgnsEpoch);

}  // namespace

BENCHMARK_MAIN();
