// F4 — Runtime scaling: explanation latency vs perturbation budget.
//
// Every perturbation explainer is linear in the sample budget (each sample
// is one matcher call); CERTA is linear in tokens x substitutions. The
// bench sweeps the budget over one prepared pipeline (training once) and
// reports mean milliseconds per explanation, plus the batch scoring
// engine's per-cell counters (predictions issued, batches dispatched, time
// spent materializing vs predicting) that the runner attributes to every
// cell. wall-ms vs cpu-ms contrasts elapsed instance time with the CPU
// time actually burned (cpu >> wall signals parallel speedup; wall >> cpu
// signals oversubscription or blocking).
//
// Extra flags: --sweep=32,64,128 overrides the budget list (CI smoke runs
// use a single small budget); --metrics / --trace / --progress as in every
// bench.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "crew/common/string_util.h"

namespace {

std::vector<int> ParseSweep(const std::string& arg) {
  std::vector<int> out;
  for (const std::string& part : crew::Split(arg, ',')) {
    const int v = std::atoi(part.c_str());
    if (v > 0) out.push_back(v);
  }
  if (out.empty()) {
    std::fprintf(stderr, "bad --sweep list: %s\n", arg.c_str());
    std::exit(1);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  crew::FlagParser flags(argc, argv);
  auto options = crew::bench::BenchOptions::Parse(argc, argv);
  const std::vector<int> sweep =
      ParseSweep(flags.GetString("sweep", "32,64,128,256,512,1024"));
  if (options.dataset.empty()) {
    options.dataset = "products-structured";  // one dataset suffices here
  }
  std::printf(
      "== F4: explanation runtime vs perturbation samples ==\n"
      "matcher=%s dataset=%s instances=%d threads=%d (0 = hardware: %d)\n\n",
      options.matcher.c_str(), options.dataset.c_str(), options.instances,
      options.threads, crew::HardwareThreads());

  auto base_spec = crew::bench::SpecFromOptions("f4_runtime", options);
  auto prepared = crew::PrepareDataset(base_spec.datasets[0], base_spec);
  crew::bench::DieIfError(prepared.status());
  std::vector<crew::PreparedDataset> prepared_all;
  prepared_all.push_back(std::move(prepared.value()));

  // One StreamSetup for the whole sweep: every point appends to the same
  // checkpoint/shard, disambiguated by a per-point "samples=N" scope. The
  // "samples" metric is stamped after the runner returns, so fresh and
  // restored cells take the same path and resumed JSON stays identical.
  const auto setup = crew::bench::MakeStreamSetup(options);
  crew::ExperimentResult result;
  result.name = base_spec.name;
  for (int samples : sweep) {
    auto spec = base_spec;
    spec.suite = [samples](const crew::TrainedPipeline& pipeline) {
      crew::ExplainerSuiteConfig config;
      config.num_samples = samples;
      config.include_random = false;
      return crew::NameSuite(crew::BuildExplainerSuite(
          pipeline.embeddings, pipeline.train, config));
    };
    crew::RunHooks hooks = setup.hooks;
    hooks.scope = "samples=";  // += below: GCC 12 -Wrestrict (PR105651)
    hooks.scope += std::to_string(samples);
    if (setup.stream != nullptr) setup.stream->set_scope(hooks.scope);
    crew::ExperimentRunner runner(std::move(spec));
    auto swept = runner.RunPrepared(prepared_all, hooks);
    crew::bench::DieIfError(swept.status());
    if (result.params.empty()) result.params = swept->params;
    for (auto& cell : swept->cells) {
      cell.metrics.push_back({"samples", static_cast<double>(samples)});
      result.cells.push_back(std::move(cell));
    }
  }

  crew::bench::EmitExperiment(
      result, options,
      {crew::MetricColumn("samples", "samples", 0),
       crew::AggColumn("ms/explanation",
                       &crew::ExplainerAggregate::runtime_ms, 2),
       {"preds",
        [](const crew::ExperimentCell& cell) {
          return std::to_string(cell.scoring.predictions);
        }},
       {"batches",
        [](const crew::ExperimentCell& cell) {
          return std::to_string(cell.scoring.batches);
        }},
       {"mat-ms",
        [](const crew::ExperimentCell& cell) {
          return crew::Table::Num(cell.scoring.materialize_ms, 1);
        }},
       {"pred-ms",
        [](const crew::ExperimentCell& cell) {
          return crew::Table::Num(cell.scoring.predict_ms, 1);
        }},
       crew::RegistryMsColumn("wall-ms", "crew/runner/instance", 1),
       crew::RegistryMsColumn("cpu-ms", "crew/runner/instance_cpu", 1)},
      /*dataset_column=*/false, /*variant_column=*/true);
  std::printf(
      "(ms/explanation is the explainer's self-reported runtime; scoring "
      "columns include the evaluation metrics' matcher calls; wall-ms/cpu-ms "
      "sum per-instance elapsed vs thread-CPU time)\n");
  return 0;
}
