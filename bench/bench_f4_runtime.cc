// F4 — Runtime scaling: explanation latency vs perturbation budget.
//
// Every perturbation explainer is linear in the sample budget (each sample
// is one matcher call); CERTA is linear in tokens x substitutions. The
// bench sweeps the budget over one prepared pipeline (training once) and
// reports mean milliseconds per explanation, plus the batch scoring
// engine's per-cell counters (predictions issued, batches dispatched, time
// spent materializing vs predicting) that the runner attributes to every
// cell.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  auto options = crew::bench::BenchOptions::Parse(argc, argv);
  if (options.dataset.empty()) {
    options.dataset = "products-structured";  // one dataset suffices here
  }
  std::printf(
      "== F4: explanation runtime vs perturbation samples ==\n"
      "matcher=%s dataset=%s instances=%d threads=%d (0 = hardware: %d)\n\n",
      options.matcher.c_str(), options.dataset.c_str(), options.instances,
      options.threads, crew::HardwareThreads());

  auto base_spec = crew::bench::SpecFromOptions("f4_runtime", options);
  auto prepared = crew::PrepareDataset(base_spec.datasets[0], base_spec);
  crew::bench::DieIfError(prepared.status());
  std::vector<crew::PreparedDataset> prepared_all;
  prepared_all.push_back(std::move(prepared.value()));

  crew::ExperimentResult result;
  result.name = base_spec.name;
  for (int samples : {32, 64, 128, 256, 512, 1024}) {
    auto spec = base_spec;
    spec.suite = [samples](const crew::TrainedPipeline& pipeline) {
      crew::ExplainerSuiteConfig config;
      config.num_samples = samples;
      config.include_random = false;
      return crew::NameSuite(crew::BuildExplainerSuite(
          pipeline.embeddings, pipeline.train, config));
    };
    crew::ExperimentRunner runner(std::move(spec));
    auto swept = runner.RunPrepared(prepared_all);
    crew::bench::DieIfError(swept.status());
    if (result.params.empty()) result.params = swept->params;
    for (auto& cell : swept->cells) {
      cell.metrics.push_back({"samples", static_cast<double>(samples)});
      result.cells.push_back(std::move(cell));
    }
  }

  crew::bench::EmitExperiment(
      result, options,
      {crew::MetricColumn("samples", "samples", 0),
       crew::AggColumn("ms/explanation",
                       &crew::ExplainerAggregate::runtime_ms, 2),
       {"preds",
        [](const crew::ExperimentCell& cell) {
          return std::to_string(cell.scoring.predictions);
        }},
       {"batches",
        [](const crew::ExperimentCell& cell) {
          return std::to_string(cell.scoring.batches);
        }},
       {"mat-ms",
        [](const crew::ExperimentCell& cell) {
          return crew::Table::Num(cell.scoring.materialize_ms, 1);
        }},
       {"pred-ms",
        [](const crew::ExperimentCell& cell) {
          return crew::Table::Num(cell.scoring.predict_ms, 1);
        }}},
      /*dataset_column=*/false, /*variant_column=*/true);
  std::printf(
      "(ms/explanation is the explainer's self-reported runtime; scoring "
      "columns include the evaluation metrics' matcher calls)\n");
  return 0;
}
