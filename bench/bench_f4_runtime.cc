// F4 — Runtime scaling: explanation latency vs perturbation budget.
//
// Every perturbation explainer is linear in the sample budget (each sample
// is one matcher call); CERTA is linear in tokens x substitutions. The
// bench sweeps the budget and reports mean milliseconds per explanation,
// plus the batch scoring engine's per-stage counters (predictions issued,
// batches dispatched, time spent materializing vs predicting).

#include <cstdio>

#include "bench_util.h"
#include "crew/common/timer.h"
#include "crew/explain/batch_scorer.h"

int main(int argc, char** argv) {
  auto options = crew::bench::BenchOptions::Parse(argc, argv);
  if (options.dataset.empty()) {
    options.dataset = "products-structured";  // one dataset suffices here
  }
  std::printf(
      "== F4: explanation runtime vs perturbation samples ==\n"
      "matcher=%s dataset=%s instances=%d threads=%d (0 = hardware: %d)\n\n",
      options.matcher.c_str(), options.dataset.c_str(), options.instances,
      options.threads, crew::HardwareThreads());

  const auto entries = options.Datasets();
  const auto prepared = crew::bench::Prepare(entries[0], options);

  crew::Table table(
      {"samples", "explainer", "ms/explanation", "preds", "batches",
       "mat-ms", "pred-ms"});
  crew::ResetScoringStats();
  crew::ScoringStats cumulative;
  for (int samples : {32, 64, 128, 256, 512, 1024}) {
    crew::ExplainerSuiteConfig config;
    config.num_samples = samples;
    config.include_random = false;
    const auto suite = crew::BuildExplainerSuite(
        prepared.pipeline.embeddings, prepared.pipeline.train, config);
    for (const auto& explainer : suite) {
      crew::ResetScoringStats();
      crew::WallTimer timer;
      int n = 0;
      for (int idx : prepared.instances) {
        auto e = explainer->Explain(*prepared.pipeline.matcher,
                                    prepared.pipeline.test.pair(idx),
                                    options.seed + idx);
        crew::bench::DieIfError(e.status());
        ++n;
      }
      const crew::ScoringStats stats = crew::GlobalScoringStats();
      cumulative.predictions += stats.predictions;
      cumulative.batches += stats.batches;
      cumulative.materialize_ms += stats.materialize_ms;
      cumulative.predict_ms += stats.predict_ms;
      table.AddRow({std::to_string(samples), explainer->Name(),
                    crew::Table::Num(timer.ElapsedMillis() / n, 2),
                    std::to_string(stats.predictions),
                    std::to_string(stats.batches),
                    crew::Table::Num(stats.materialize_ms, 1),
                    crew::Table::Num(stats.predict_ms, 1)});
    }
  }
  std::printf("%s\n", table.ToAligned().c_str());
  std::printf(
      "engine totals: %lld predictions in %lld batches | materialize %.1f ms"
      " | predict %.1f ms (summed across scoring threads)\n",
      static_cast<long long>(cumulative.predictions),
      static_cast<long long>(cumulative.batches), cumulative.materialize_ms,
      cumulative.predict_ms);
  std::printf(
      "(CERTA's cost is per-token, not per-sample, so its column is flat)\n");
  return 0;
}
