// F7 — Ablation of CREW's design choices (beyond the knowledge sources of
// F3): clustering linkage, silhouette auto-K vs fixed K, and whether
// clusters are re-scored by actual deletion vs summing word weights.
//
// Expected shape: average linkage ~= complete > single (chaining hurts);
// re-scoring improves faithfulness measurably; auto-K tracks the best
// fixed K without tuning.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  const auto options = crew::bench::BenchOptions::Parse(argc, argv);
  std::printf(
      "== F7: ablation of CREW design choices ==\n"
      "matcher=%s samples=%d instances/dataset=%d (averaged over "
      "datasets)\n\n",
      options.matcher.c_str(), options.samples, options.instances);

  struct DesignCase {
    const char* name;
    crew::Linkage linkage;
    bool auto_k;
    bool rescore;
  };
  static const DesignCase kCases[] = {
      {"default (avg, auto-K, rescore)", crew::Linkage::kAverage, true, true},
      {"single linkage", crew::Linkage::kSingle, true, true},
      {"complete linkage", crew::Linkage::kComplete, true, true},
      {"no rescoring (sum weights)", crew::Linkage::kAverage, true, false},
      {"fixed K = max", crew::Linkage::kAverage, false, true},
  };

  auto spec = crew::bench::SpecFromOptions("f7_design_ablation", options);
  spec.suite = [samples = options.samples](
                   const crew::TrainedPipeline& pipeline) {
    std::vector<crew::SuiteEntry> suite;
    for (const DesignCase& design : kCases) {
      crew::CrewConfig config;
      config.importance.perturbation.num_samples = samples;
      config.linkage = design.linkage;
      config.auto_k = design.auto_k;
      config.rescore_clusters = design.rescore;
      suite.push_back({design.name, std::make_unique<crew::CrewExplainer>(
                                        pipeline.embeddings, config)});
    }
    return suite;
  };
  crew::ExperimentRunner runner(std::move(spec));
  const auto setup = crew::bench::MakeStreamSetup(options);
  auto result = runner.Run(setup.hooks);
  crew::bench::DieIfError(result.status());

  crew::ExperimentResult summary;
  summary.name = result->name;
  summary.params = result->params;
  for (const std::string& name : result->VariantNames()) {
    crew::ExperimentCell cell;
    cell.dataset = "all";
    cell.variant = name;
    cell.aggregate = result->ReduceAcross(name);
    summary.cells.push_back(std::move(cell));
  }
  crew::TableSink table(
      {crew::AggColumn("aopc", &crew::ExplainerAggregate::aopc),
       crew::AggColumn("compr@1",
                       &crew::ExplainerAggregate::comprehensiveness_at_1),
       crew::AggColumn("units", &crew::ExplainerAggregate::total_units, 1),
       crew::AggColumn("coherence",
                       &crew::ExplainerAggregate::cluster_coherence)},
      /*dataset_column=*/false, /*variant_column=*/true);
  crew::bench::DieIfError(table.Consume(summary));
  crew::bench::EmitJsonIfRequested(*result, options);
  return 0;
}
