// F7 — Ablation of CREW's design choices (beyond the knowledge sources of
// F3): clustering linkage, silhouette auto-K vs fixed K, and whether
// clusters are re-scored by actual deletion vs summing word weights.
//
// Expected shape: average linkage ~= complete > single (chaining hurts);
// re-scoring improves faithfulness measurably; auto-K tracks the best
// fixed K without tuning.

#include <cstdio>

#include "bench_util.h"

namespace {

struct DesignCase {
  const char* name;
  crew::Linkage linkage;
  bool auto_k;
  bool rescore;
};

}  // namespace

int main(int argc, char** argv) {
  const auto options = crew::bench::BenchOptions::Parse(argc, argv);
  const DesignCase cases[] = {
      {"default (avg, auto-K, rescore)", crew::Linkage::kAverage, true, true},
      {"single linkage", crew::Linkage::kSingle, true, true},
      {"complete linkage", crew::Linkage::kComplete, true, true},
      {"no rescoring (sum weights)", crew::Linkage::kAverage, true, false},
      {"fixed K = max", crew::Linkage::kAverage, false, true},
  };
  std::printf(
      "== F7: ablation of CREW design choices ==\n"
      "matcher=%s samples=%d instances/dataset=%d (averaged over "
      "datasets)\n\n",
      options.matcher.c_str(), options.samples, options.instances);

  std::vector<crew::bench::PreparedDataset> prepared_all;
  for (const auto& entry : options.Datasets()) {
    prepared_all.push_back(crew::bench::Prepare(entry, options));
  }

  crew::Table table({"variant", "aopc", "compr@1", "units", "coherence"});
  crew::Tokenizer tokenizer;
  for (const auto& design : cases) {
    double aopc = 0.0, compr1 = 0.0, units = 0.0, coherence = 0.0;
    int n = 0;
    for (const auto& prepared : prepared_all) {
      crew::CrewConfig config;
      config.importance.perturbation.num_samples = options.samples;
      config.linkage = design.linkage;
      config.auto_k = design.auto_k;
      config.rescore_clusters = design.rescore;
      crew::CrewExplainer explainer(prepared.pipeline.embeddings, config);
      for (int idx : prepared.instances) {
        const crew::RecordPair& pair = prepared.pipeline.test.pair(idx);
        auto e = explainer.ExplainClusters(
            *prepared.pipeline.matcher, pair,
            options.seed ^ (static_cast<uint64_t>(idx) << 18));
        crew::bench::DieIfError(e.status());
        if (e->units.empty()) continue;
        crew::EvalInstance instance{
            crew::PairTokenView(crew::AnonymousSchema(pair), tokenizer, pair),
            e->units, e->words.base_score,
            prepared.pipeline.matcher->threshold()};
        aopc += crew::AopcDeletion(*prepared.pipeline.matcher, instance, 5);
        compr1 += crew::ComprehensivenessAtK(*prepared.pipeline.matcher,
                                             instance, 1);
        units += static_cast<double>(e->units.size());
        coherence += e->coherence;
        ++n;
      }
    }
    if (n == 0) continue;
    table.AddRow({design.name, crew::Table::Num(aopc / n),
                  crew::Table::Num(compr1 / n),
                  crew::Table::Num(units / n, 1),
                  crew::Table::Num(coherence / n)});
  }
  std::printf("%s\n", table.ToAligned().c_str());
  return 0;
}
