// T4 — Sufficiency / comprehensiveness at unit budgets k in {1, 3}
// (DeYoung et al.'s ERASER protocol applied to EM explainers) plus the
// insertion AOPC (how fast the top units rebuild the decision from an
// empty pair). Comprehensiveness and insertion: higher is better.
// Sufficiency: lower is better.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  const auto options = crew::bench::BenchOptions::Parse(argc, argv);
  std::printf(
      "== T4: sufficiency / comprehensiveness at k units ==\n"
      "matcher=%s samples=%d instances/dataset=%d\n\n",
      options.matcher.c_str(), options.samples, options.instances);

  crew::Table table({"dataset", "explainer", "compr@1", "compr@3", "suff@1",
                     "suff@3", "ins_aopc"});
  crew::Tokenizer tokenizer;
  for (const auto& entry : options.Datasets()) {
    const auto prepared = crew::bench::Prepare(entry, options);
    const auto suite =
        crew::BuildExplainerSuite(prepared.pipeline.embeddings,
                                  prepared.pipeline.train,
                                  crew::bench::SuiteConfig(options));
    for (const auto& explainer : suite) {
      auto agg = crew::EvaluateExplainerOnDataset(
          *explainer, *prepared.pipeline.matcher, prepared.pipeline.test,
          prepared.instances, prepared.pipeline.embeddings.get(),
          options.seed);
      crew::bench::DieIfError(agg.status());
      // Insertion AOPC is not part of the shared aggregate; compute here.
      double insertion = 0.0;
      int n_ins = 0;
      for (int idx : prepared.instances) {
        const crew::RecordPair& pair = prepared.pipeline.test.pair(idx);
        auto explained = crew::ExplainAsUnits(
            *explainer, *prepared.pipeline.matcher, pair,
            options.seed ^ (static_cast<uint64_t>(idx) << 20));
        crew::bench::DieIfError(explained.status());
        if (explained->second.empty()) continue;
        crew::EvalInstance instance{
            crew::PairTokenView(crew::AnonymousSchema(pair), tokenizer,
                                pair),
            explained->second, explained->first.base_score,
            prepared.pipeline.matcher->threshold()};
        insertion +=
            crew::AopcInsertion(*prepared.pipeline.matcher, instance, 3);
        ++n_ins;
      }
      table.AddRow({prepared.name, agg->name,
                    crew::Table::Num(agg->comprehensiveness_at_1),
                    crew::Table::Num(agg->comprehensiveness_at_3),
                    crew::Table::Num(agg->sufficiency_at_1),
                    crew::Table::Num(agg->sufficiency_at_3),
                    crew::Table::Num(n_ins > 0 ? insertion / n_ins : 0.0)});
    }
  }
  std::printf("%s\n", table.ToAligned().c_str());
  return 0;
}
