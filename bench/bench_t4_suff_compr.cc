// T4 — Sufficiency / comprehensiveness at unit budgets k in {1, 3}
// (DeYoung et al.'s ERASER protocol applied to EM explainers) plus the
// insertion AOPC (how fast the top units rebuild the decision from an
// empty pair). Comprehensiveness and insertion: higher is better.
// Sufficiency: lower is better.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  const auto options = crew::bench::BenchOptions::Parse(argc, argv);
  std::printf(
      "== T4: sufficiency / comprehensiveness at k units ==\n"
      "matcher=%s samples=%d instances/dataset=%d\n\n",
      options.matcher.c_str(), options.samples, options.instances);

  crew::ExperimentRunner runner(
      crew::bench::SpecFromOptions("t4_suff_compr", options));
  const auto setup = crew::bench::MakeStreamSetup(options);
  auto result = runner.Run(setup.hooks);
  crew::bench::DieIfError(result.status());

  crew::bench::EmitExperiment(
      *result, options,
      {crew::AggColumn("compr@1",
                       &crew::ExplainerAggregate::comprehensiveness_at_1),
       crew::AggColumn("compr@3",
                       &crew::ExplainerAggregate::comprehensiveness_at_3),
       crew::AggColumn("suff@1", &crew::ExplainerAggregate::sufficiency_at_1),
       crew::AggColumn("suff@3", &crew::ExplainerAggregate::sufficiency_at_3),
       crew::AggColumn("ins_aopc", &crew::ExplainerAggregate::insertion_aopc)});
  return 0;
}
