// F1 — Deletion curve: predicted-class probability as the top-supporting
// explanation units are progressively removed (fractions 0..1).
// A faithful explainer's curve falls fast and early; random falls slowly.
// Output: one TSV-style series per explainer (columns = fractions),
// averaged over instances and datasets.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  const auto options = crew::bench::BenchOptions::Parse(argc, argv);
  const std::vector<double> fractions = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5,
                                         0.6, 0.7, 0.8, 0.9, 1.0};
  std::printf(
      "== F1: deletion curves (mean predicted-class prob vs fraction of "
      "units removed) ==\nmatcher=%s samples=%d instances/dataset=%d\n\n",
      options.matcher.c_str(), options.samples, options.instances);

  auto spec = crew::bench::SpecFromOptions("f1_deletion_curve", options);
  spec.eval.curve_fractions = fractions;
  crew::ExperimentRunner runner(std::move(spec));
  const auto setup = crew::bench::MakeStreamSetup(options);
  auto result = runner.Run(setup.hooks);
  crew::bench::DieIfError(result.status());

  std::vector<std::string> header = {"explainer"};
  for (double f : fractions) header.push_back(crew::Table::Num(f, 1));
  crew::Table table(header);
  for (const std::string& name : result->VariantNames()) {
    const std::vector<double> curve = result->MeanCurve(name);
    if (curve.empty()) continue;
    std::vector<std::string> row = {name};
    for (double v : curve) row.push_back(crew::Table::Num(v));
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToAligned().c_str());
  std::printf("(columns are the fraction of explanation units deleted)\n");
  crew::bench::EmitJsonIfRequested(*result, options);
  return 0;
}
