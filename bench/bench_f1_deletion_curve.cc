// F1 — Deletion curve: predicted-class probability as the top-supporting
// explanation units are progressively removed (fractions 0..1).
// A faithful explainer's curve falls fast and early; random falls slowly.
// Output: one TSV-style series per explainer (columns = fractions),
// averaged over instances and datasets.

#include <cstdio>
#include <map>

#include "bench_util.h"

int main(int argc, char** argv) {
  const auto options = crew::bench::BenchOptions::Parse(argc, argv);
  const std::vector<double> fractions = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5,
                                         0.6, 0.7, 0.8, 0.9, 1.0};
  std::printf(
      "== F1: deletion curves (mean predicted-class prob vs fraction of "
      "units removed) ==\nmatcher=%s samples=%d instances/dataset=%d\n\n",
      options.matcher.c_str(), options.samples, options.instances);

  std::map<std::string, std::vector<double>> sums;
  std::map<std::string, int> counts;
  crew::Tokenizer tokenizer;
  for (const auto& entry : options.Datasets()) {
    const auto prepared = crew::bench::Prepare(entry, options);
    const auto suite =
        crew::BuildExplainerSuite(prepared.pipeline.embeddings,
                                  prepared.pipeline.train,
                                  crew::bench::SuiteConfig(options));
    for (const auto& explainer : suite) {
      for (int idx : prepared.instances) {
        const crew::RecordPair& pair = prepared.pipeline.test.pair(idx);
        auto explained = crew::ExplainAsUnits(
            *explainer, *prepared.pipeline.matcher, pair,
            options.seed ^ (static_cast<uint64_t>(idx) << 18));
        crew::bench::DieIfError(explained.status());
        if (explained->second.empty()) continue;
        crew::EvalInstance instance{
            crew::PairTokenView(crew::AnonymousSchema(pair), tokenizer, pair),
            explained->second, explained->first.base_score,
            prepared.pipeline.matcher->threshold()};
        const auto curve = crew::DeletionCurve(
            *prepared.pipeline.matcher, instance, fractions);
        auto& sum = sums[explainer->Name()];
        if (sum.empty()) sum.assign(fractions.size(), 0.0);
        for (size_t i = 0; i < curve.size(); ++i) sum[i] += curve[i];
        ++counts[explainer->Name()];
      }
    }
  }

  std::vector<std::string> header = {"explainer"};
  for (double f : fractions) header.push_back(crew::Table::Num(f, 1));
  crew::Table table(header);
  for (const auto& [name, sum] : sums) {
    std::vector<std::string> row = {name};
    for (double v : sum) {
      row.push_back(crew::Table::Num(v / counts[name]));
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToAligned().c_str());
  std::printf("(columns are the fraction of explanation units deleted)\n");
  return 0;
}
