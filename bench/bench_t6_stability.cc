// T6 — Stability: mean pairwise Jaccard of the top-10 attributed words
// across 4 sampling seeds. Perturbation explainers are stochastic; an
// explanation a user cannot reproduce is not trustworthy.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  const auto options = crew::bench::BenchOptions::Parse(argc, argv);
  const std::vector<uint64_t> seeds = {11, 22, 33, 44};
  const int top_k = 10;
  std::printf(
      "== T6: stability (Jaccard@%d of top words, %d seeds) ==\n"
      "matcher=%s samples=%d instances/dataset=%d\n\n",
      top_k, static_cast<int>(seeds.size()), options.matcher.c_str(),
      options.samples, options.instances);

  auto spec = crew::bench::SpecFromOptions("t6_stability", options);
  // Stability re-explains each instance once per seed, so keep the
  // historical cap of 4 measured instances per dataset.
  spec.instances_per_dataset = std::min(4, options.instances);
  spec.eval.stability_seeds = seeds;
  spec.eval.stability_top_k = top_k;
  crew::ExperimentRunner runner(std::move(spec));
  const auto setup = crew::bench::MakeStreamSetup(options);
  auto result = runner.Run(setup.hooks);
  crew::bench::DieIfError(result.status());

  crew::bench::EmitExperiment(
      *result, options,
      {crew::AggColumn("jaccard@10", &crew::ExplainerAggregate::stability)});
  return 0;
}
