// T6 — Stability: mean pairwise Jaccard of the top-10 attributed words
// across 4 sampling seeds. Perturbation explainers are stochastic; an
// explanation a user cannot reproduce is not trustworthy.

#include <cstdio>

#include "bench_util.h"
#include "crew/eval/stability.h"

int main(int argc, char** argv) {
  const auto options = crew::bench::BenchOptions::Parse(argc, argv);
  const std::vector<uint64_t> seeds = {11, 22, 33, 44};
  const int top_k = 10;
  std::printf(
      "== T6: stability (Jaccard@%d of top words, %d seeds) ==\n"
      "matcher=%s samples=%d instances/dataset=%d\n\n",
      top_k, static_cast<int>(seeds.size()), options.matcher.c_str(),
      options.samples, options.instances);

  crew::Table table({"dataset", "explainer", "jaccard@10"});
  for (const auto& entry : options.Datasets()) {
    const auto prepared = crew::bench::Prepare(entry, options);
    const auto suite =
        crew::BuildExplainerSuite(prepared.pipeline.embeddings,
                                  prepared.pipeline.train,
                                  crew::bench::SuiteConfig(options));
    const int n_instances =
        std::min<int>(4, static_cast<int>(prepared.instances.size()));
    for (const auto& explainer : suite) {
      double total = 0.0;
      int count = 0;
      for (int i = 0; i < n_instances; ++i) {
        auto stability = crew::ExplainerStability(
            *explainer, *prepared.pipeline.matcher,
            prepared.pipeline.test.pair(prepared.instances[i]), seeds, top_k);
        crew::bench::DieIfError(stability.status());
        total += stability.value();
        ++count;
      }
      table.AddRow({prepared.name, explainer->Name(),
                    crew::Table::Num(count > 0 ? total / count : 0.0)});
    }
  }
  std::printf("%s\n", table.ToAligned().c_str());
  return 0;
}
