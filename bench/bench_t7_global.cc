// T7 — Global (dataset-level) explanation: which attributes and tokens
// drive the matcher overall. The audit view that lifts local CREW
// explanations to a model summary; sanity-checks that the matcher uses
// the decisive schema columns (model numbers, years, street numbers)
// rather than filler text.

#include <cstdio>

#include "bench_util.h"
#include "crew/eval/global_explanation.h"

int main(int argc, char** argv) {
  auto options = crew::bench::BenchOptions::Parse(argc, argv);
  std::printf(
      "== T7: global explanations (attribute influence shares) ==\n"
      "matcher=%s samples=%d instances/dataset=%d\n\n",
      options.matcher.c_str(), options.samples, options.instances);

  crew::ExperimentRunner runner(
      crew::bench::SpecFromOptions("t7_global", options));
  const auto setup = crew::bench::MakeStreamSetup(options);
  auto result = runner.RunWith([&](const crew::PreparedDataset& prepared,
                                   crew::ExperimentResult* out) -> crew::Status {
    crew::CrewConfig config;
    config.importance.perturbation.num_samples = options.samples;
    crew::CrewExplainer explainer(prepared.pipeline.embeddings, config);
    auto global = crew::BuildGlobalExplanation(
        explainer, *prepared.pipeline.matcher, prepared.pipeline.test,
        prepared.instances, options.seed);
    if (!global.ok()) return global.status();
    std::string tokens;
    for (size_t t = 0; t < global->tokens.size() && t < 4; ++t) {
      if (t > 0) tokens += ", ";
      tokens += global->tokens[t].token;
    }
    crew::ExperimentCell cell;
    cell.dataset = prepared.name;
    cell.variant = "crew-global";
    cell.notes.push_back(
        {"top_attribute",
         global->attributes.empty() ? "-" : global->attributes[0].name});
    cell.notes.push_back({"top_tokens", tokens});
    if (!global->attributes.empty()) {
      cell.metrics.push_back({"top_share", global->attributes[0].share});
    }
    out->cells.push_back(std::move(cell));
    return crew::Status::Ok();
  }, setup.hooks);
  crew::bench::DieIfError(result.status());

  crew::bench::EmitExperiment(
      *result, options,
      {crew::NoteColumn("top attribute", "top_attribute"),
       crew::MetricColumn("share", "top_share", 2),
       crew::NoteColumn("top tokens", "top_tokens")},
      /*dataset_column=*/true, /*variant_column=*/false);
  return 0;
}
