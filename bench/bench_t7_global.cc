// T7 — Global (dataset-level) explanation: which attributes and tokens
// drive the matcher overall. The audit view that lifts local CREW
// explanations to a model summary; sanity-checks that the matcher uses
// the decisive schema columns (model numbers, years, street numbers)
// rather than filler text.

#include <cstdio>

#include "bench_util.h"
#include "crew/eval/global_explanation.h"

int main(int argc, char** argv) {
  auto options = crew::bench::BenchOptions::Parse(argc, argv);
  std::printf(
      "== T7: global explanations (attribute influence shares) ==\n"
      "matcher=%s samples=%d instances/dataset=%d\n\n",
      options.matcher.c_str(), options.samples, options.instances);

  crew::Table table({"dataset", "top attribute", "share", "top tokens"});
  for (const auto& entry : options.Datasets()) {
    const auto prepared = crew::bench::Prepare(entry, options);
    crew::CrewConfig config;
    config.importance.perturbation.num_samples = options.samples;
    crew::CrewExplainer explainer(prepared.pipeline.embeddings, config);
    auto global = crew::BuildGlobalExplanation(
        explainer, *prepared.pipeline.matcher, prepared.pipeline.test,
        prepared.instances, options.seed);
    crew::bench::DieIfError(global.status());
    std::string tokens;
    for (size_t t = 0; t < global->tokens.size() && t < 4; ++t) {
      if (t > 0) tokens += ", ";
      tokens += global->tokens[t].token;
    }
    table.AddRow({prepared.name,
                  global->attributes.empty() ? "-"
                                             : global->attributes[0].name,
                  global->attributes.empty()
                      ? "-"
                      : crew::Table::Num(global->attributes[0].share, 2),
                  tokens});
  }
  std::printf("%s\n", table.ToAligned().c_str());
  return 0;
}
