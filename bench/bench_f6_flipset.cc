// F6 — Counterfactual flip-set size: how many explanation units (and how
// many words) must be removed, in the explainer's own ranking, before the
// prediction flips. CERTA's counterfactual criterion; smaller = the
// explanation isolates the decisive evidence. Also reports the flip rate
// (fraction of instances that flip at all before the explanation runs
// out).

#include <cstdio>
#include <map>

#include "bench_util.h"

int main(int argc, char** argv) {
  const auto options = crew::bench::BenchOptions::Parse(argc, argv);
  std::printf(
      "== F6: minimal flip sets ==\n"
      "matcher=%s samples=%d instances/dataset=%d (averaged over "
      "datasets)\n\n",
      options.matcher.c_str(), options.samples, options.instances);

  struct Acc {
    double units = 0.0, tokens = 0.0, flips = 0.0;
    int n = 0;
  };
  std::map<std::string, Acc> by_explainer;
  crew::Tokenizer tokenizer;
  for (const auto& entry : options.Datasets()) {
    const auto prepared = crew::bench::Prepare(entry, options);
    const auto suite =
        crew::BuildExplainerSuite(prepared.pipeline.embeddings,
                                  prepared.pipeline.train,
                                  crew::bench::SuiteConfig(options));
    for (const auto& explainer : suite) {
      for (int idx : prepared.instances) {
        const crew::RecordPair& pair = prepared.pipeline.test.pair(idx);
        auto explained = crew::ExplainAsUnits(
            *explainer, *prepared.pipeline.matcher, pair,
            options.seed ^ (static_cast<uint64_t>(idx) << 18));
        crew::bench::DieIfError(explained.status());
        if (explained->second.empty()) continue;
        crew::EvalInstance instance{
            crew::PairTokenView(crew::AnonymousSchema(pair), tokenizer, pair),
            explained->second, explained->first.base_score,
            prepared.pipeline.matcher->threshold()};
        const auto flip =
            crew::MinimalFlipSet(*prepared.pipeline.matcher, instance);
        Acc& acc = by_explainer[explainer->Name()];
        if (flip.flipped) {
          acc.units += flip.units_removed;
          acc.tokens += flip.tokens_removed;
          acc.flips += 1.0;
        }
        ++acc.n;
      }
    }
  }

  crew::Table table({"explainer", "flip%", "units-to-flip",
                     "words-to-flip"});
  for (const auto& [name, acc] : by_explainer) {
    const double flips = acc.flips > 0 ? acc.flips : 1.0;
    table.AddRow({name, crew::Table::Num(100.0 * acc.flips / acc.n, 1),
                  crew::Table::Num(acc.units / flips, 2),
                  crew::Table::Num(acc.tokens / flips, 2)});
  }
  std::printf("%s\n", table.ToAligned().c_str());
  std::printf("(units/words averaged over flipped instances only)\n");
  return 0;
}
