// F6 — Counterfactual flip-set size: how many explanation units (and how
// many words) must be removed, in the explainer's own ranking, before the
// prediction flips. CERTA's counterfactual criterion; smaller = the
// explanation isolates the decisive evidence. Also reports the flip rate
// (fraction of instances that flip at all before the explanation runs
// out).

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  const auto options = crew::bench::BenchOptions::Parse(argc, argv);
  std::printf(
      "== F6: minimal flip sets ==\n"
      "matcher=%s samples=%d instances/dataset=%d (averaged over "
      "datasets)\n\n",
      options.matcher.c_str(), options.samples, options.instances);

  crew::ExperimentRunner runner(
      crew::bench::SpecFromOptions("f6_flipset", options));
  const auto setup = crew::bench::MakeStreamSetup(options);
  auto result = runner.Run(setup.hooks);
  crew::bench::DieIfError(result.status());

  // Cross-dataset summary: flip stats are part of every per-instance
  // record, so this is a pure re-reduction.
  crew::ExperimentResult summary;
  summary.name = result->name;
  summary.params = result->params;
  for (const std::string& name : result->VariantNames()) {
    crew::ExperimentCell cell;
    cell.dataset = "all";
    cell.variant = name;
    cell.aggregate = result->ReduceAcross(name);
    summary.cells.push_back(std::move(cell));
  }
  crew::TableSink table(
      {{"flip%",
        [](const crew::ExperimentCell& cell) {
          return crew::Table::Num(100.0 * cell.aggregate.flip_set_rate, 1);
        }},
       crew::AggColumn("units-to-flip",
                       &crew::ExplainerAggregate::flip_set_units, 2),
       crew::AggColumn("words-to-flip",
                       &crew::ExplainerAggregate::flip_set_tokens, 2)},
      /*dataset_column=*/false, /*variant_column=*/true);
  crew::bench::DieIfError(table.Consume(summary));
  std::printf("(units/words averaged over flipped instances only)\n");
  crew::bench::EmitJsonIfRequested(*result, options);
  return 0;
}
