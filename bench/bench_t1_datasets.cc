// T1 — Benchmark dataset statistics.
//
// The "Table 1: datasets" every EM paper opens its evaluation with: pair
// counts, match ratio, vocabulary size, record length, and the token
// overlap gap between matches and non-matches (the signal the matchers
// learn and the explainers must surface).

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  const auto options = crew::bench::BenchOptions::Parse(argc, argv);
  std::printf("== T1: dataset statistics ==\n\n");
  crew::Table table({"dataset", "pairs", "match%", "vocab", "tokens/rec",
                     "jaccard(match)", "jaccard(nonmatch)"});
  crew::Tokenizer tokenizer;
  for (const auto& entry : options.Datasets()) {
    auto dataset = crew::GenerateDataset(entry.config);
    crew::bench::DieIfError(dataset.status());
    const auto stats = crew::ComputeStats(dataset.value(), tokenizer);
    table.AddRow({entry.name, std::to_string(stats.pairs),
                  crew::Table::Num(100.0 * stats.match_ratio, 1),
                  std::to_string(stats.vocabulary_size),
                  crew::Table::Num(stats.avg_tokens_per_record, 1),
                  crew::Table::Num(stats.avg_token_overlap_match),
                  crew::Table::Num(stats.avg_token_overlap_nonmatch)});
  }
  std::printf("%s\n", table.ToAligned().c_str());
  return 0;
}
