// T1 — Benchmark dataset statistics.
//
// The "Table 1: datasets" every EM paper opens its evaluation with: pair
// counts, match ratio, vocabulary size, record length, and the token
// overlap gap between matches and non-matches (the signal the matchers
// learn and the explainers must surface). No training or explaining
// happens here, so the cells are built directly rather than through
// ExperimentRunner — but the emit path (table + --json) is shared.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  const auto options = crew::bench::BenchOptions::Parse(argc, argv);
  std::printf("== T1: dataset statistics ==\n\n");

  crew::ExperimentResult result;
  result.name = "t1_datasets";
  result.params.push_back({"seed", std::to_string(options.seed)});
  // No ExperimentRunner here, so the streaming/restart plumbing is driven
  // directly: restored cells skip the dataset generation entirely.
  const auto setup = crew::bench::MakeStreamSetup(options);
  crew::CellStreamer streamer(setup.hooks);
  const auto entries = options.Datasets();
  crew::bench::DieIfError(
      streamer.Begin(result, static_cast<int>(entries.size())));
  crew::Tokenizer tokenizer;
  for (const auto& entry : entries) {
    crew::ExperimentCell cell;
    auto restored = streamer.TryRestore(entry.name, "stats", &cell);
    crew::bench::DieIfError(restored.status());
    if (!*restored) {
      crew::bench::DieIfError(streamer.BeforeFreshCell());
      auto dataset = crew::GenerateDataset(entry.config);
      crew::bench::DieIfError(dataset.status());
      const auto stats = crew::ComputeStats(dataset.value(), tokenizer);
      cell.dataset = entry.name;
      cell.variant = "stats";
      cell.metrics = {
          {"pairs", static_cast<double>(stats.pairs)},
          {"match_pct", 100.0 * stats.match_ratio},
          {"vocab", static_cast<double>(stats.vocabulary_size)},
          {"tokens_per_rec", stats.avg_tokens_per_record},
          {"jaccard_match", stats.avg_token_overlap_match},
          {"jaccard_nonmatch", stats.avg_token_overlap_nonmatch},
      };
      crew::bench::DieIfError(streamer.Emit(cell));
    }
    result.cells.push_back(std::move(cell));
  }
  crew::bench::DieIfError(streamer.Finish(result));

  crew::bench::EmitExperiment(
      result, options,
      {crew::MetricColumn("pairs", "pairs", 0),
       crew::MetricColumn("match%", "match_pct", 1),
       crew::MetricColumn("vocab", "vocab", 0),
       crew::MetricColumn("tokens/rec", "tokens_per_rec", 1),
       crew::MetricColumn("jaccard(match)", "jaccard_match"),
       crew::MetricColumn("jaccard(nonmatch)", "jaccard_nonmatch")},
      /*dataset_column=*/true, /*variant_column=*/false);
  return 0;
}
