#ifndef CREW_BENCH_BENCH_UTIL_H_
#define CREW_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "crew/common/flags.h"
#include "crew/common/thread_pool.h"
#include "crew/data/benchmark_suite.h"
#include "crew/eval/experiment.h"
#include "crew/eval/table.h"
#include "crew/model/trainer.h"

namespace crew::bench {

/// Shared experiment knobs parsed from the command line; every bench binary
/// accepts the same flags so sweeps are scriptable.
struct BenchOptions {
  int matches = 250;
  int nonmatches = 350;
  int instances = 12;    ///< explained pairs per dataset
  int samples = 96;      ///< perturbation samples per explanation
  uint64_t seed = 7;
  std::string matcher = "mlp";
  std::string dataset;   ///< empty = all nine
  int threads = 0;       ///< scoring threads; 0 = hardware, 1 = legacy serial

  static BenchOptions Parse(int argc, char** argv) {
    FlagParser flags(argc, argv);
    if (!flags.status().ok()) {
      std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
      std::exit(1);
    }
    BenchOptions o;
    o.matches = flags.GetInt("matches", o.matches);
    o.nonmatches = flags.GetInt("nonmatches", o.nonmatches);
    o.instances = flags.GetInt("instances", o.instances);
    o.samples = flags.GetInt("samples", o.samples);
    o.seed = flags.GetUint64("seed", o.seed);
    o.matcher = flags.GetString("matcher", o.matcher);
    o.dataset = flags.GetString("dataset", o.dataset);
    o.threads = flags.GetInt("threads", o.threads);
    SetScoringThreads(o.threads);
    return o;
  }

  MatcherKind MatcherKindOrDie() const {
    for (MatcherKind kind : AllMatcherKinds()) {
      if (matcher == MatcherKindName(kind)) return kind;
    }
    std::fprintf(stderr, "unknown matcher: %s\n", matcher.c_str());
    std::exit(1);
  }

  std::vector<BenchmarkEntry> Datasets() const {
    std::vector<BenchmarkEntry> all =
        StandardBenchmark(seed, matches, nonmatches);
    if (dataset.empty()) return all;
    for (auto& entry : all) {
      if (entry.name == dataset) return {entry};
    }
    std::fprintf(stderr, "unknown dataset: %s\n", dataset.c_str());
    std::exit(1);
  }
};

/// Dies with a message when `status` is not OK (bench binaries have no
/// recovery path).
inline void DieIfError(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    std::exit(1);
  }
}

/// One dataset's trained pipeline + selected explanation instances.
struct PreparedDataset {
  std::string name;
  TrainedPipeline pipeline;
  std::vector<int> instances;
};

inline PreparedDataset Prepare(const BenchmarkEntry& entry,
                               const BenchOptions& options) {
  PreparedDataset out;
  out.name = entry.name;
  auto dataset = GenerateDataset(entry.config);
  DieIfError(dataset.status());
  auto pipeline = TrainPipeline(dataset.value(), options.MatcherKindOrDie(),
                                0.7, options.seed);
  DieIfError(pipeline.status());
  out.pipeline = std::move(pipeline.value());
  Rng rng(options.seed ^ 0xbeac4ULL);
  out.instances = SelectExplainInstances(*out.pipeline.matcher,
                                         out.pipeline.test,
                                         options.instances, rng);
  return out;
}

inline ExplainerSuiteConfig SuiteConfig(const BenchOptions& options) {
  ExplainerSuiteConfig config;
  config.num_samples = options.samples;
  return config;
}

}  // namespace crew::bench

#endif  // CREW_BENCH_BENCH_UTIL_H_
