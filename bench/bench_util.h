#ifndef CREW_BENCH_BENCH_UTIL_H_
#define CREW_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "crew/common/flags.h"
#include "crew/common/thread_pool.h"
#include "crew/common/trace.h"
#include "crew/data/benchmark_suite.h"
#include "crew/eval/experiment.h"
#include "crew/eval/runner.h"
#include "crew/eval/sinks.h"
#include "crew/eval/streaming.h"
#include "crew/eval/table.h"
#include "crew/model/trainer.h"

namespace crew::bench {

/// Shared experiment knobs parsed from the command line; every bench binary
/// accepts the same flags so sweeps are scriptable.
struct BenchOptions {
  int matches = 250;
  int nonmatches = 350;
  int instances = 12;    ///< explained pairs per dataset
  int samples = 96;      ///< perturbation samples per explanation
  uint64_t seed = 7;
  std::string matcher = "mlp";
  std::string dataset;   ///< empty = all nine
  int threads = 0;       ///< scoring threads; 0 = hardware, 1 = legacy serial
  std::string json;      ///< non-empty: also write the ExperimentResult here
  std::string trace;     ///< non-empty: record spans, write Chrome trace here
  bool metrics = false;  ///< emit the per-cell metrics-registry breakdown
  double progress = 1.0; ///< seconds between progress heartbeats; <=0 = off
  // Streaming / crash-recovery knobs (see DESIGN.md "Streaming & resume").
  std::string resume;    ///< non-empty: checkpoint path; skip done cells
  std::string stream;    ///< non-empty: stream per-cell JSONL shard here
  int fail_after_cells = -1;  ///< >= 0: inject a deterministic fault
  bool stable_timing = false; ///< zero wall-derived outputs (byte-stable)
  bool live_table = false;    ///< re-render a partial table per cell

  static BenchOptions Parse(int argc, char** argv) {
    FlagParser flags(argc, argv);
    if (!flags.status().ok()) {
      std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
      std::exit(1);
    }
    BenchOptions o;
    o.matches = flags.GetInt("matches", o.matches);
    o.nonmatches = flags.GetInt("nonmatches", o.nonmatches);
    o.instances = flags.GetInt("instances", o.instances);
    o.samples = flags.GetInt("samples", o.samples);
    o.seed = flags.GetUint64("seed", o.seed);
    o.matcher = flags.GetString("matcher", o.matcher);
    o.dataset = flags.GetString("dataset", o.dataset);
    o.threads = flags.GetInt("threads", o.threads);
    o.json = flags.GetString("json", o.json);
    o.trace = flags.GetString("trace", o.trace);
    o.metrics = flags.GetBool("metrics", o.metrics);
    o.progress = flags.GetDouble("progress", o.progress);
    o.resume = flags.GetString("resume", o.resume);
    o.stream = flags.GetString("stream", o.stream);
    o.fail_after_cells =
        flags.GetInt("fail-after-cells", o.fail_after_cells);
    o.stable_timing = flags.GetBool("stable-timing", o.stable_timing);
    o.live_table = flags.GetBool("live-table", o.live_table);
    SetScoringThreads(o.threads);
    SetProgressInterval(o.progress);
    SetTracingEnabled(!o.trace.empty());
    SetStableTiming(o.stable_timing);
    return o;
  }

  MatcherKind MatcherKindOrDie() const {
    for (MatcherKind kind : AllMatcherKinds()) {
      if (matcher == MatcherKindName(kind)) return kind;
    }
    std::fprintf(stderr, "unknown matcher: %s\n", matcher.c_str());
    std::exit(1);
  }

  std::vector<BenchmarkEntry> Datasets() const {
    std::vector<BenchmarkEntry> all =
        StandardBenchmark(seed, matches, nonmatches);
    if (dataset.empty()) return all;
    for (auto& entry : all) {
      if (entry.name == dataset) return {entry};
    }
    std::fprintf(stderr, "unknown dataset: %s\n", dataset.c_str());
    std::exit(1);
  }
};

/// Dies with a message when `status` is not OK (bench binaries have no
/// recovery path).
inline void DieIfError(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    std::exit(1);
  }
}

/// Owns the streaming/restart plumbing assembled from the shared flags —
/// checkpoint store (--resume, loaded eagerly), JSONL shard sink
/// (--stream), live partial table (--live-table), and fault injector
/// (--fail-after-cells / CREW_FAULT_SEED / CREW_FAULT_HARD) — and exposes
/// them as the RunHooks view ExperimentRunner consumes. The hooks hold raw
/// pointers into this struct, so keep it alive for the whole run.
struct StreamSetup {
  std::unique_ptr<CheckpointStore> checkpoint;
  std::unique_ptr<JsonlStreamSink> stream;
  std::unique_ptr<PartialTableSink> live;
  std::unique_ptr<FaultInjector> fault;
  RunHooks hooks;
};

inline StreamSetup MakeStreamSetup(const BenchOptions& options,
                                   std::string scope = std::string()) {
  StreamSetup s;
  s.hooks.scope = scope;
  if (!options.resume.empty()) {
    s.checkpoint = std::make_unique<CheckpointStore>(options.resume);
    DieIfError(s.checkpoint->Load());
    s.hooks.checkpoint = s.checkpoint.get();
    if (s.checkpoint->done_cells() > 0) {
      std::fprintf(stderr, "[resume] %s: %d cell(s) restored\n",
                   options.resume.c_str(), s.checkpoint->done_cells());
    }
  }
  if (!options.stream.empty()) {
    s.stream =
        std::make_unique<JsonlStreamSink>(options.stream, std::move(scope));
    s.hooks.sinks.push_back(s.stream.get());
  }
  if (options.live_table) {
    s.live = std::make_unique<PartialTableSink>();
    s.hooks.sinks.push_back(s.live.get());
  }
  s.fault = FaultInjector::FromFlagsAndEnv(options.fail_after_cells);
  if (s.fault != nullptr) s.hooks.fault = s.fault.get();
  return s;
}

/// ExperimentSpec over the shared flags with the standard explainer
/// line-up; benches tweak the returned spec (eval knobs, custom suites)
/// before handing it to ExperimentRunner.
inline ExperimentSpec SpecFromOptions(std::string name,
                                      const BenchOptions& options) {
  ExperimentSpec spec;
  spec.name = std::move(name);
  spec.datasets = options.Datasets();
  spec.matcher = options.MatcherKindOrDie();
  spec.instances_per_dataset = options.instances;
  spec.seed = options.seed;
  spec.suite = [samples = options.samples](const TrainedPipeline& pipeline) {
    ExplainerSuiteConfig config;
    config.num_samples = samples;
    return NameSuite(
        BuildExplainerSuite(pipeline.embeddings, pipeline.train, config));
  };
  return spec;
}

/// Writes the Chrome trace when --trace=<file> was given. Runs after the
/// tables so the trace covers the full experiment.
inline void EmitTraceIfRequested(const BenchOptions& options) {
  if (options.trace.empty()) return;
  const size_t events = CollectTraceEvents().size();
  DieIfError(WriteChromeTrace(options.trace));
  std::printf("wrote %s (%zu trace events, %lld overwritten)\n",
              options.trace.c_str(), events,
              static_cast<long long>(TraceDroppedEvents()));
}

/// Standard emit path of every bench: print the cell grid as an aligned
/// table and honour --json / --metrics / --trace. Takes the result by
/// mutable reference to stamp include_metrics before the sinks read it.
inline void EmitExperiment(ExperimentResult& result,
                           const BenchOptions& options,
                           std::vector<TableColumn> columns,
                           bool dataset_column = true,
                           bool variant_column = true) {
  result.include_metrics = options.metrics;
  TableSink table(std::move(columns), dataset_column, variant_column);
  DieIfError(table.Consume(result));
  if (!options.json.empty()) {
    DieIfError(WriteExperimentJson(result, options.json));
    std::printf("wrote %s\n", options.json.c_str());
  }
  EmitTraceIfRequested(options);
}

/// Emit path for benches that already printed custom tables: the --json /
/// --metrics / --trace legs only.
inline void EmitJsonIfRequested(ExperimentResult& result,
                                const BenchOptions& options) {
  result.include_metrics = options.metrics;
  if (options.metrics) {
    std::vector<MetricsSnapshot> deltas;
    deltas.reserve(result.cells.size());
    for (const ExperimentCell& cell : result.cells) {
      deltas.push_back(cell.registry);
    }
    const MetricsSnapshot total = MetricsSum(deltas);
    if (!total.empty()) {
      std::printf("-- metrics (summed over cells) --\n%s\n",
                  MetricsSnapshotTable(total).ToAligned().c_str());
    }
  }
  if (!options.json.empty()) {
    DieIfError(WriteExperimentJson(result, options.json));
    std::printf("wrote %s\n", options.json.c_str());
  }
  EmitTraceIfRequested(options);
}

}  // namespace crew::bench

#endif  // CREW_BENCH_BENCH_UTIL_H_
