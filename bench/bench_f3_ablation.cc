// F3 — Ablation of CREW's three knowledge sources.
//
// The abstract claims the clusters combine (1) semantic similarity,
// (2) attribute arrangement and (3) model importance. This bench runs all
// seven non-empty weight combinations and reports faithfulness + coherence
// + attribute purity, showing each source's contribution.

#include <cstdio>

#include "bench_util.h"

namespace {

struct AblationCase {
  const char* name;
  crew::AffinityWeights weights;
};

}  // namespace

int main(int argc, char** argv) {
  const auto options = crew::bench::BenchOptions::Parse(argc, argv);
  const AblationCase cases[] = {
      {"sem", {1, 0, 0}},          {"attr", {0, 1, 0}},
      {"imp", {0, 0, 1}},          {"sem+attr", {1, 1, 0}},
      {"sem+imp", {1, 0, 1}},      {"attr+imp", {0, 1, 1}},
      {"sem+attr+imp", {1, 1, 1}},
  };
  std::printf(
      "== F3: ablation of CREW's knowledge sources ==\n"
      "matcher=%s samples=%d instances/dataset=%d (averaged over datasets)\n\n",
      options.matcher.c_str(), options.samples, options.instances);

  crew::Table table({"knowledge", "aopc", "compr@1", "coherence",
                     "attr_purity", "eff_units"});
  crew::Tokenizer tokenizer;
  // Train each dataset's pipeline once; the ablations only change CREW.
  std::vector<crew::bench::PreparedDataset> prepared_all;
  for (const auto& entry : options.Datasets()) {
    prepared_all.push_back(crew::bench::Prepare(entry, options));
  }
  for (const auto& ablation : cases) {
    double aopc = 0.0, compr1 = 0.0, coherence = 0.0, purity = 0.0, eff = 0.0;
    int n = 0;
    for (const auto& prepared : prepared_all) {
      crew::CrewConfig config;
      config.importance.perturbation.num_samples = options.samples;
      config.affinity = ablation.weights;
      crew::CrewExplainer explainer(prepared.pipeline.embeddings, config);
      for (int idx : prepared.instances) {
        const crew::RecordPair& pair = prepared.pipeline.test.pair(idx);
        auto e = explainer.ExplainClusters(
            *prepared.pipeline.matcher, pair,
            options.seed ^ (static_cast<uint64_t>(idx) << 18));
        crew::bench::DieIfError(e.status());
        if (e->units.empty()) continue;
        crew::EvalInstance instance{
            crew::PairTokenView(crew::AnonymousSchema(pair), tokenizer, pair),
            e->units, e->words.base_score,
            prepared.pipeline.matcher->threshold()};
        aopc += crew::AopcDeletion(*prepared.pipeline.matcher, instance, 5);
        compr1 += crew::ComprehensivenessAtK(*prepared.pipeline.matcher,
                                             instance, 1);
        coherence += e->coherence;
        const auto comp = crew::EvaluateComprehensibility(
            e->words, e->units, prepared.pipeline.embeddings.get());
        purity += comp.attribute_purity;
        eff += comp.effective_units;
        ++n;
      }
    }
    if (n == 0) continue;
    table.AddRow({ablation.name, crew::Table::Num(aopc / n),
                  crew::Table::Num(compr1 / n),
                  crew::Table::Num(coherence / n),
                  crew::Table::Num(purity / n, 2),
                  crew::Table::Num(eff / n, 1)});
  }
  std::printf("%s\n", table.ToAligned().c_str());
  return 0;
}
