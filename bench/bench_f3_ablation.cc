// F3 — Ablation of CREW's three knowledge sources.
//
// The abstract claims the clusters combine (1) semantic similarity,
// (2) attribute arrangement and (3) model importance. This bench runs all
// seven non-empty weight combinations and reports faithfulness + coherence
// + attribute purity, showing each source's contribution.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  const auto options = crew::bench::BenchOptions::Parse(argc, argv);
  std::printf(
      "== F3: ablation of CREW's knowledge sources ==\n"
      "matcher=%s samples=%d instances/dataset=%d (averaged over datasets)\n\n",
      options.matcher.c_str(), options.samples, options.instances);

  struct AblationCase {
    const char* name;
    crew::AffinityWeights weights;
  };
  static const AblationCase kCases[] = {
      {"sem", {1, 0, 0}},          {"attr", {0, 1, 0}},
      {"imp", {0, 0, 1}},          {"sem+attr", {1, 1, 0}},
      {"sem+imp", {1, 0, 1}},      {"attr+imp", {0, 1, 1}},
      {"sem+attr+imp", {1, 1, 1}},
  };

  auto spec = crew::bench::SpecFromOptions("f3_ablation", options);
  spec.suite = [samples = options.samples](
                   const crew::TrainedPipeline& pipeline) {
    std::vector<crew::SuiteEntry> suite;
    for (const AblationCase& ablation : kCases) {
      crew::CrewConfig config;
      config.importance.perturbation.num_samples = samples;
      config.affinity = ablation.weights;
      suite.push_back({ablation.name, std::make_unique<crew::CrewExplainer>(
                                          pipeline.embeddings, config)});
    }
    return suite;
  };
  crew::ExperimentRunner runner(std::move(spec));
  const auto setup = crew::bench::MakeStreamSetup(options);
  auto result = runner.Run(setup.hooks);
  crew::bench::DieIfError(result.status());

  // Cross-dataset summary (the historical table shape): one row per
  // knowledge combination, averaged over every dataset's instances.
  crew::ExperimentResult summary;
  summary.name = result->name;
  summary.params = result->params;
  for (const std::string& name : result->VariantNames()) {
    crew::ExperimentCell cell;
    cell.dataset = "all";
    cell.variant = name;
    cell.aggregate = result->ReduceAcross(name);
    summary.cells.push_back(std::move(cell));
  }
  crew::TableSink table(
      {crew::AggColumn("aopc", &crew::ExplainerAggregate::aopc),
       crew::AggColumn("compr@1",
                       &crew::ExplainerAggregate::comprehensiveness_at_1),
       crew::AggColumn("coherence",
                       &crew::ExplainerAggregate::cluster_coherence),
       crew::AggColumn("attr_purity",
                       &crew::ExplainerAggregate::attribute_purity, 2),
       crew::AggColumn("eff_units",
                       &crew::ExplainerAggregate::effective_units, 1)},
      /*dataset_column=*/false, /*variant_column=*/true);
  crew::bench::DieIfError(table.Consume(summary));
  crew::bench::EmitJsonIfRequested(*result, options);
  return 0;
}
