// F5 — Explanation quality split by predicted class.
//
// Landmark's motivating observation: explaining *non-matches* is the hard
// case for drop-only perturbation (removing tokens cannot create matching
// evidence). This bench reports AOPC separately for predicted matches and
// predicted non-matches. Expected shape: injection-capable explainers
// (landmark, lemon, crew) hold up on non-matches; plain LIME degrades.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  const auto options = crew::bench::BenchOptions::Parse(argc, argv);
  std::printf(
      "== F5: faithfulness split by predicted class ==\n"
      "matcher=%s samples=%d instances/dataset=%d\n\n",
      options.matcher.c_str(), options.samples, options.instances);

  crew::Table table(
      {"dataset", "explainer", "aopc(match)", "aopc(nonmatch)"});
  crew::Tokenizer tokenizer;
  for (const auto& entry : options.Datasets()) {
    const auto prepared = crew::bench::Prepare(entry, options);
    const auto suite =
        crew::BuildExplainerSuite(prepared.pipeline.embeddings,
                                  prepared.pipeline.train,
                                  crew::bench::SuiteConfig(options));
    for (const auto& explainer : suite) {
      double aopc_match = 0.0, aopc_nonmatch = 0.0;
      int n_match = 0, n_nonmatch = 0;
      for (int idx : prepared.instances) {
        const crew::RecordPair& pair = prepared.pipeline.test.pair(idx);
        auto explained = crew::ExplainAsUnits(
            *explainer, *prepared.pipeline.matcher, pair,
            options.seed ^ (static_cast<uint64_t>(idx) << 18));
        crew::bench::DieIfError(explained.status());
        if (explained->second.empty()) continue;
        crew::EvalInstance instance{
            crew::PairTokenView(crew::AnonymousSchema(pair), tokenizer, pair),
            explained->second, explained->first.base_score,
            prepared.pipeline.matcher->threshold()};
        const double aopc =
            crew::AopcDeletion(*prepared.pipeline.matcher, instance, 5);
        if (instance.PredictedMatch()) {
          aopc_match += aopc;
          ++n_match;
        } else {
          aopc_nonmatch += aopc;
          ++n_nonmatch;
        }
      }
      table.AddRow(
          {prepared.name, explainer->Name(),
           n_match > 0 ? crew::Table::Num(aopc_match / n_match) : "n/a",
           n_nonmatch > 0 ? crew::Table::Num(aopc_nonmatch / n_nonmatch)
                          : "n/a"});
    }
  }
  std::printf("%s\n", table.ToAligned().c_str());
  return 0;
}
