// F5 — Explanation quality split by predicted class.
//
// Landmark's motivating observation: explaining *non-matches* is the hard
// case for drop-only perturbation (removing tokens cannot create matching
// evidence). This bench reports AOPC separately for predicted matches and
// predicted non-matches. Expected shape: injection-capable explainers
// (landmark, lemon, crew) hold up on non-matches; plain LIME degrades.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  const auto options = crew::bench::BenchOptions::Parse(argc, argv);
  std::printf(
      "== F5: faithfulness split by predicted class ==\n"
      "matcher=%s samples=%d instances/dataset=%d\n\n",
      options.matcher.c_str(), options.samples, options.instances);

  crew::ExperimentRunner runner(
      crew::bench::SpecFromOptions("f5_match_vs_nonmatch", options));
  const auto setup = crew::bench::MakeStreamSetup(options);
  auto result = runner.Run(setup.hooks);
  crew::bench::DieIfError(result.status());

  // The split is a filtered re-reduction of the per-instance records the
  // runner already collected — no second evaluation pass.
  crew::Table table(
      {"dataset", "explainer", "aopc(match)", "aopc(nonmatch)"});
  for (const crew::ExperimentCell& cell : result->cells) {
    const auto match = crew::ReduceInstancesIf(
        cell.variant, cell.instances,
        [](const crew::InstanceEvaluation& r) { return r.predicted_match; });
    const auto nonmatch = crew::ReduceInstancesIf(
        cell.variant, cell.instances,
        [](const crew::InstanceEvaluation& r) { return !r.predicted_match; });
    table.AddRow({cell.dataset, cell.variant,
                  match.instances > 0 ? crew::Table::Num(match.aopc) : "n/a",
                  nonmatch.instances > 0 ? crew::Table::Num(nonmatch.aopc)
                                         : "n/a"});
  }
  std::printf("%s\n", table.ToAligned().c_str());
  crew::bench::EmitJsonIfRequested(*result, options);
  return 0;
}
