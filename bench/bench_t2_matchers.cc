// T2 — Matcher quality (precision / recall / F1) per dataset x matcher.
//
// Reproduces the "models under explanation are competent" table every EM
// explainability paper reports before evaluating explainers. Each matcher
// kind is one grid variant; no explaining happens, so the cells are built
// directly and only the emit path (table + --json) is shared.
//
//   ./bench_t2_matchers [--matches 250] [--nonmatches 350] [--seed 7]

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  const auto options = crew::bench::BenchOptions::Parse(argc, argv);
  std::printf("== T2: matcher quality (test F1) ==\n\n");

  crew::ExperimentResult result;
  result.name = "t2_matchers";
  result.params.push_back({"seed", std::to_string(options.seed)});
  for (const auto& entry : options.Datasets()) {
    auto dataset = crew::GenerateDataset(entry.config);
    crew::bench::DieIfError(dataset.status());
    for (crew::MatcherKind kind : crew::AllMatcherKinds()) {
      auto pipeline =
          crew::TrainPipeline(dataset.value(), kind, 0.7, options.seed);
      crew::bench::DieIfError(pipeline.status());
      const auto& m = pipeline.value().test_metrics;
      crew::ExperimentCell cell;
      cell.dataset = entry.name;
      cell.variant = crew::MatcherKindName(kind);
      cell.metrics = {
          {"precision", m.Precision()},
          {"recall", m.Recall()},
          {"f1", m.F1()},
          {"threshold", pipeline.value().matcher->threshold()},
      };
      result.cells.push_back(std::move(cell));
    }
  }

  crew::bench::EmitExperiment(
      result, options,
      {crew::MetricColumn("precision", "precision"),
       crew::MetricColumn("recall", "recall"),
       crew::MetricColumn("f1", "f1"),
       crew::MetricColumn("threshold", "threshold")});
  return 0;
}
