// T2 — Matcher quality (precision / recall / F1) per dataset x matcher.
//
// Reproduces the "models under explanation are competent" table every EM
// explainability paper reports before evaluating explainers.
//
//   ./bench_t2_matchers [--matches 250] [--nonmatches 350] [--seed 7]

#include <cstdio>

#include "crew/common/flags.h"
#include "crew/data/benchmark_suite.h"
#include "crew/eval/table.h"
#include "crew/model/trainer.h"

int main(int argc, char** argv) {
  crew::FlagParser flags(argc, argv);
  const int matches = flags.GetInt("matches", 250);
  const int nonmatches = flags.GetInt("nonmatches", 350);
  const uint64_t seed = flags.GetUint64("seed", 7);

  std::printf("== T2: matcher quality (test F1) ==\n\n");
  crew::Table table({"dataset", "matcher", "precision", "recall", "f1",
                     "threshold"});
  for (const auto& entry :
       crew::StandardBenchmark(seed, matches, nonmatches)) {
    auto dataset = crew::GenerateDataset(entry.config);
    if (!dataset.ok()) {
      std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
      return 1;
    }
    for (crew::MatcherKind kind : crew::AllMatcherKinds()) {
      auto pipeline = crew::TrainPipeline(dataset.value(), kind, 0.7, seed);
      if (!pipeline.ok()) {
        std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
        return 1;
      }
      const auto& m = pipeline.value().test_metrics;
      table.AddRow({entry.name, crew::MatcherKindName(kind),
                    crew::Table::Num(m.Precision()),
                    crew::Table::Num(m.Recall()), crew::Table::Num(m.F1()),
                    crew::Table::Num(pipeline.value().matcher->threshold())});
    }
  }
  std::printf("%s\n", table.ToAligned().c_str());
  return 0;
}
