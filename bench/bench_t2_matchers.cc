// T2 — Matcher quality (precision / recall / F1) per dataset x matcher.
//
// Reproduces the "models under explanation are competent" table every EM
// explainability paper reports before evaluating explainers. Each matcher
// kind is one grid variant; no explaining happens, so the cells are built
// directly and only the emit path (table + --json) is shared.
//
//   ./bench_t2_matchers [--matches 250] [--nonmatches 350] [--seed 7]

#include <cstdio>
#include <optional>

#include "bench_util.h"

int main(int argc, char** argv) {
  const auto options = crew::bench::BenchOptions::Parse(argc, argv);
  std::printf("== T2: matcher quality (test F1) ==\n\n");

  crew::ExperimentResult result;
  result.name = "t2_matchers";
  result.params.push_back({"seed", std::to_string(options.seed)});
  // No ExperimentRunner here, so the streaming/restart plumbing is driven
  // directly. Restored cells skip TrainPipeline (the expensive part); the
  // dataset is generated lazily so a fully restored row costs nothing.
  const auto setup = crew::bench::MakeStreamSetup(options);
  crew::CellStreamer streamer(setup.hooks);
  const auto entries = options.Datasets();
  const auto kinds = crew::AllMatcherKinds();
  crew::bench::DieIfError(streamer.Begin(
      result, static_cast<int>(entries.size() * kinds.size())));
  for (const auto& entry : entries) {
    std::optional<crew::Dataset> dataset;
    for (crew::MatcherKind kind : kinds) {
      crew::ExperimentCell cell;
      auto restored =
          streamer.TryRestore(entry.name, crew::MatcherKindName(kind), &cell);
      crew::bench::DieIfError(restored.status());
      if (!*restored) {
        crew::bench::DieIfError(streamer.BeforeFreshCell());
        if (!dataset.has_value()) {
          auto generated = crew::GenerateDataset(entry.config);
          crew::bench::DieIfError(generated.status());
          dataset = std::move(generated.value());
        }
        auto pipeline =
            crew::TrainPipeline(*dataset, kind, 0.7, options.seed);
        crew::bench::DieIfError(pipeline.status());
        const auto& m = pipeline.value().test_metrics;
        cell.dataset = entry.name;
        cell.variant = crew::MatcherKindName(kind);
        cell.metrics = {
            {"precision", m.Precision()},
            {"recall", m.Recall()},
            {"f1", m.F1()},
            {"threshold", pipeline.value().matcher->threshold()},
        };
        crew::bench::DieIfError(streamer.Emit(cell));
      }
      result.cells.push_back(std::move(cell));
    }
  }
  crew::bench::DieIfError(streamer.Finish(result));

  crew::bench::EmitExperiment(
      result, options,
      {crew::MetricColumn("precision", "precision"),
       crew::MetricColumn("recall", "recall"),
       crew::MetricColumn("f1", "f1"),
       crew::MetricColumn("threshold", "threshold")});
  return 0;
}
