// T5 — Comprehensibility: how much a user must read.
//
// CREW's claim is explanations that are *smaller* (few units), *coherent*
// (semantically similar words grouped) and *structured* (units respect
// attributes). Word-level baselines have one unit per word by construction.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  const auto options = crew::bench::BenchOptions::Parse(argc, argv);
  std::printf(
      "== T5: comprehensibility ==\n"
      "matcher=%s samples=%d instances/dataset=%d\n"
      "units: total explanation units; eff: units covering 90%% of weight\n\n",
      options.matcher.c_str(), options.samples, options.instances);

  crew::Table table({"dataset", "explainer", "units", "eff_units",
                     "words/unit", "coherence", "attr_purity"});
  for (const auto& entry : options.Datasets()) {
    const auto prepared = crew::bench::Prepare(entry, options);
    const auto suite =
        crew::BuildExplainerSuite(prepared.pipeline.embeddings,
                                  prepared.pipeline.train,
                                  crew::bench::SuiteConfig(options));
    for (const auto& explainer : suite) {
      auto agg = crew::EvaluateExplainerOnDataset(
          *explainer, *prepared.pipeline.matcher, prepared.pipeline.test,
          prepared.instances, prepared.pipeline.embeddings.get(),
          options.seed);
      crew::bench::DieIfError(agg.status());
      table.AddRow({prepared.name, agg->name,
                    crew::Table::Num(agg->total_units, 1),
                    crew::Table::Num(agg->effective_units, 1),
                    crew::Table::Num(agg->words_per_unit, 1),
                    crew::Table::Num(agg->semantic_coherence),
                    crew::Table::Num(agg->attribute_purity, 2)});
    }
  }
  std::printf("%s\n", table.ToAligned().c_str());
  return 0;
}
