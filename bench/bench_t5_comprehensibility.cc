// T5 — Comprehensibility: how much a user must read.
//
// CREW's claim is explanations that are *smaller* (few units), *coherent*
// (semantically similar words grouped) and *structured* (units respect
// attributes). Word-level baselines have one unit per word by construction.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  const auto options = crew::bench::BenchOptions::Parse(argc, argv);
  std::printf(
      "== T5: comprehensibility ==\n"
      "matcher=%s samples=%d instances/dataset=%d\n"
      "units: total explanation units; eff: units covering 90%% of weight\n\n",
      options.matcher.c_str(), options.samples, options.instances);

  crew::ExperimentRunner runner(
      crew::bench::SpecFromOptions("t5_comprehensibility", options));
  const auto setup = crew::bench::MakeStreamSetup(options);
  auto result = runner.Run(setup.hooks);
  crew::bench::DieIfError(result.status());

  crew::bench::EmitExperiment(
      *result, options,
      {crew::AggColumn("units", &crew::ExplainerAggregate::total_units, 1),
       crew::AggColumn("eff_units",
                       &crew::ExplainerAggregate::effective_units, 1),
       crew::AggColumn("words/unit",
                       &crew::ExplainerAggregate::words_per_unit, 1),
       crew::AggColumn("coherence",
                       &crew::ExplainerAggregate::semantic_coherence),
       crew::AggColumn("attr_purity",
                       &crew::ExplainerAggregate::attribute_purity, 2)});
  return 0;
}
