// F2 — Sensitivity to the number of clusters K.
//
// Sweeps CREW's cluster budget (auto-K disabled) and reports faithfulness
// (AOPC), coherence and silhouette per K, plus the K that silhouette-based
// auto selection picks. Expected shape: faithfulness saturates at small K
// while comprehensibility degrades as K grows toward word-level.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  const auto options = crew::bench::BenchOptions::Parse(argc, argv);
  std::printf(
      "== F2: CREW sensitivity to K ==\n"
      "matcher=%s samples=%d instances/dataset=%d\n\n",
      options.matcher.c_str(), options.samples, options.instances);

  crew::Table table(
      {"dataset", "k", "aopc", "coherence", "silhouette", "eff_units"});
  crew::Tokenizer tokenizer;
  for (const auto& entry : options.Datasets()) {
    const auto prepared = crew::bench::Prepare(entry, options);
    for (int k = 2; k <= 12; k += 2) {
      crew::CrewConfig config;
      config.importance.perturbation.num_samples = options.samples;
      config.auto_k = false;
      config.min_clusters = k;
      config.max_clusters = k;
      crew::CrewExplainer explainer(prepared.pipeline.embeddings, config);
      double aopc = 0.0, coherence = 0.0, silhouette = 0.0, eff = 0.0;
      int n = 0;
      for (int idx : prepared.instances) {
        const crew::RecordPair& pair = prepared.pipeline.test.pair(idx);
        auto e = explainer.ExplainClusters(
            *prepared.pipeline.matcher, pair,
            options.seed ^ (static_cast<uint64_t>(idx) << 18));
        crew::bench::DieIfError(e.status());
        if (e->units.empty()) continue;
        crew::EvalInstance instance{
            crew::PairTokenView(crew::AnonymousSchema(pair), tokenizer, pair),
            e->units, e->words.base_score,
            prepared.pipeline.matcher->threshold()};
        aopc += crew::AopcDeletion(*prepared.pipeline.matcher, instance, 5);
        coherence += e->coherence;
        silhouette += e->silhouette;
        const auto comp = crew::EvaluateComprehensibility(
            e->words, e->units, prepared.pipeline.embeddings.get());
        eff += comp.effective_units;
        ++n;
      }
      if (n == 0) continue;
      table.AddRow({prepared.name, std::to_string(k),
                    crew::Table::Num(aopc / n),
                    crew::Table::Num(coherence / n),
                    crew::Table::Num(silhouette / n),
                    crew::Table::Num(eff / n, 1)});
    }
    // What auto-K chooses on this dataset, for reference.
    crew::CrewConfig auto_config;
    auto_config.importance.perturbation.num_samples = options.samples;
    crew::CrewExplainer auto_explainer(prepared.pipeline.embeddings,
                                       auto_config);
    double mean_k = 0.0;
    int n = 0;
    for (int idx : prepared.instances) {
      auto e = auto_explainer.ExplainClusters(
          *prepared.pipeline.matcher, prepared.pipeline.test.pair(idx),
          options.seed);
      crew::bench::DieIfError(e.status());
      mean_k += e->chosen_k;
      ++n;
    }
    std::printf("%s: silhouette auto-K mean = %.1f\n", prepared.name.c_str(),
                n > 0 ? mean_k / n : 0.0);
  }
  std::printf("\n%s\n", table.ToAligned().c_str());
  return 0;
}
