// F2 — Sensitivity to the number of clusters K.
//
// Sweeps CREW's cluster budget (auto-K disabled) and reports faithfulness
// (AOPC), coherence and silhouette per K, plus the K that silhouette-based
// auto selection picks. Expected shape: faithfulness saturates at small K
// while comprehensibility degrades as K grows toward word-level.

#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  const auto options = crew::bench::BenchOptions::Parse(argc, argv);
  std::printf(
      "== F2: CREW sensitivity to K ==\n"
      "matcher=%s samples=%d instances/dataset=%d\n\n",
      options.matcher.c_str(), options.samples, options.instances);

  auto spec = crew::bench::SpecFromOptions("f2_k_sensitivity", options);
  spec.suite = [samples = options.samples](
                   const crew::TrainedPipeline& pipeline) {
    std::vector<crew::SuiteEntry> suite;
    for (int k = 2; k <= 12; k += 2) {
      crew::CrewConfig config;
      config.importance.perturbation.num_samples = samples;
      config.auto_k = false;
      config.min_clusters = k;
      config.max_clusters = k;
      suite.push_back({"k=" + std::to_string(k),
                       std::make_unique<crew::CrewExplainer>(
                           pipeline.embeddings, config)});
    }
    crew::CrewConfig auto_config;
    auto_config.importance.perturbation.num_samples = samples;
    suite.push_back({"auto-K", std::make_unique<crew::CrewExplainer>(
                                   pipeline.embeddings, auto_config)});
    return suite;
  };
  crew::ExperimentRunner runner(std::move(spec));
  const auto setup = crew::bench::MakeStreamSetup(options);
  auto result = runner.Run(setup.hooks);
  crew::bench::DieIfError(result.status());

  crew::bench::EmitExperiment(
      *result, options,
      {crew::AggColumn("aopc", &crew::ExplainerAggregate::aopc),
       crew::AggColumn("coherence",
                       &crew::ExplainerAggregate::cluster_coherence),
       crew::AggColumn("silhouette",
                       &crew::ExplainerAggregate::cluster_silhouette),
       crew::AggColumn("eff_units",
                       &crew::ExplainerAggregate::effective_units, 1),
       crew::AggColumn("mean_k", &crew::ExplainerAggregate::mean_chosen_k, 1)});
  return 0;
}
