#include "crew/eval/comprehensibility.h"

#include <gtest/gtest.h>

namespace crew {
namespace {

WordExplanation MakeWords(std::vector<std::pair<std::string, int>> tokens) {
  WordExplanation words;
  for (const auto& [text, attribute] : tokens) {
    TokenRef t;
    t.text = text;
    t.attribute = attribute;
    words.attributions.push_back({t, 0.0});
  }
  return words;
}

TEST(ComprehensibilityTest, EffectiveUnitsCoversMass) {
  WordExplanation words = MakeWords({{"a", 0}, {"b", 0}, {"c", 0}});
  std::vector<ExplanationUnit> units(3);
  units[0] = {{0}, 10.0, "a"};
  units[1] = {{1}, 0.5, "b"};
  units[2] = {{2}, 0.1, "c"};
  const auto r = EvaluateComprehensibility(words, units, nullptr);
  EXPECT_EQ(r.total_units, 3);
  EXPECT_EQ(r.effective_units, 1);  // 10 / 10.6 > 90%
  EXPECT_DOUBLE_EQ(r.avg_words_per_unit, 1.0);
}

TEST(ComprehensibilityTest, EffectiveUnitsAllWhenUniform) {
  WordExplanation words = MakeWords({{"a", 0}, {"b", 0}});
  std::vector<ExplanationUnit> units(2);
  units[0] = {{0}, 1.0, "a"};
  units[1] = {{1}, 1.0, "b"};
  const auto r = EvaluateComprehensibility(words, units, nullptr);
  EXPECT_EQ(r.effective_units, 2);
}

TEST(ComprehensibilityTest, AttributePurity) {
  WordExplanation words =
      MakeWords({{"a", 0}, {"b", 0}, {"c", 1}, {"d", 2}});
  std::vector<ExplanationUnit> units(2);
  units[0] = {{0, 1}, 1.0, "pure"};    // both attribute 0
  units[1] = {{2, 3}, 1.0, "mixed"};   // attributes 1 and 2
  const auto r = EvaluateComprehensibility(words, units, nullptr);
  EXPECT_DOUBLE_EQ(r.attribute_purity, 0.5);
  EXPECT_DOUBLE_EQ(r.avg_words_per_unit, 2.0);
}

TEST(ComprehensibilityTest, CoherenceUsesEmbeddings) {
  Vocabulary vocab;
  vocab.Add("x");
  vocab.Add("y");
  la::Matrix vectors(2, 2);
  vectors.At(0, 0) = 1.0;
  vectors.At(1, 0) = 1.0;  // identical directions -> similarity 1
  EmbeddingStore store(std::move(vocab), std::move(vectors));
  WordExplanation words = MakeWords({{"x", 0}, {"y", 0}});
  std::vector<ExplanationUnit> units(1);
  units[0] = {{0, 1}, 1.0, "xy"};
  const auto r = EvaluateComprehensibility(words, units, &store);
  EXPECT_NEAR(r.semantic_coherence, 1.0, 1e-9);
}

TEST(ComprehensibilityTest, EmptyUnits) {
  const auto r = EvaluateComprehensibility(WordExplanation(), {}, nullptr);
  EXPECT_EQ(r.total_units, 0);
  EXPECT_EQ(r.effective_units, 0);
}

TEST(ComprehensibilityTest, ZeroMassFallsBackToTotal) {
  WordExplanation words = MakeWords({{"a", 0}});
  std::vector<ExplanationUnit> units(1);
  units[0] = {{0}, 0.0, "a"};
  const auto r = EvaluateComprehensibility(words, units, nullptr);
  EXPECT_EQ(r.effective_units, 1);
}

}  // namespace
}  // namespace crew
