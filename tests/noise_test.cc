#include "crew/data/noise.h"

#include <gtest/gtest.h>

#include "crew/text/string_similarity.h"

namespace crew {
namespace {

Schema TwoAttrSchema() {
  Schema s;
  s.AddAttribute("name", AttributeType::kText);
  s.AddAttribute("desc", AttributeType::kText);
  return s;
}

TEST(NoiseTest, InjectTypoChangesLongTokens) {
  Rng rng(1);
  int changed = 0;
  for (int i = 0; i < 50; ++i) {
    if (InjectTypo("television", rng) != "television") ++changed;
  }
  EXPECT_GT(changed, 40);  // substitution may pick the same letter rarely
}

TEST(NoiseTest, InjectTypoLeavesShortTokens) {
  Rng rng(2);
  EXPECT_EQ(InjectTypo("ab", rng), "ab");
  EXPECT_EQ(InjectTypo("", rng), "");
}

TEST(NoiseTest, InjectTypoSingleEdit) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const std::string t = InjectTypo("corporation", rng);
    EXPECT_LE(LevenshteinDistance("corporation", t), 2);  // swap counts as 2
  }
}

TEST(NoiseTest, Abbreviate) {
  EXPECT_EQ(Abbreviate("corporation"), "corp");
  EXPECT_EQ(Abbreviate("abcde"), "abcd");
  EXPECT_EQ(Abbreviate("abc"), "ab");
  EXPECT_EQ(Abbreviate("a"), "");
}

TEST(NoiseTest, ZeroConfigIsIdentityOnTokens) {
  NoiseConfig none;
  none.typo_per_token = 0.0;
  none.token_drop = 0.0;
  none.token_duplicate = 0.0;
  none.abbreviate = 0.0;
  none.synonym = 0.0;
  Record r;
  r.values = {"acme super router", "with cables"};
  Record original = r;
  Rng rng(4);
  ApplyNoise(none, TwoAttrSchema(), {}, rng, &r);
  EXPECT_EQ(r, original);
}

TEST(NoiseTest, MissingValueClearsAttribute) {
  NoiseConfig config;
  config.typo_per_token = 0.0;
  config.token_drop = 0.0;
  config.token_duplicate = 0.0;
  config.abbreviate = 0.0;
  config.synonym = 0.0;
  config.missing_value = 1.0;
  Record r;
  r.values = {"something", "else"};
  Rng rng(5);
  ApplyNoise(config, TwoAttrSchema(), {}, rng, &r);
  EXPECT_EQ(r.values[0], "");
  EXPECT_EQ(r.values[1], "");
}

TEST(NoiseTest, AttributeSwapExchangesValues) {
  NoiseConfig config;
  config.typo_per_token = 0.0;
  config.token_drop = 0.0;
  config.token_duplicate = 0.0;
  config.abbreviate = 0.0;
  config.synonym = 0.0;
  config.attribute_swap = 1.0;
  Record r;
  r.values = {"alpha", "beta"};
  Rng rng(6);
  ApplyNoise(config, TwoAttrSchema(), {}, rng, &r);
  EXPECT_EQ(r.values[0], "beta");
  EXPECT_EQ(r.values[1], "alpha");
}

TEST(NoiseTest, SynonymSubstitution) {
  NoiseConfig config;
  config.typo_per_token = 0.0;
  config.token_drop = 0.0;
  config.token_duplicate = 0.0;
  config.abbreviate = 0.0;
  config.synonym = 1.0;
  SynonymTable synonyms = {{"router", {"gateway"}}};
  Record r;
  r.values = {"router", "router"};
  Rng rng(7);
  ApplyNoise(config, TwoAttrSchema(), synonyms, rng, &r);
  EXPECT_EQ(r.values[0], "gateway");
  EXPECT_EQ(r.values[1], "gateway");
}

TEST(NoiseTest, TokenDropNeverEmptiesSingleTokenValue) {
  NoiseConfig config;
  config.token_drop = 1.0;
  config.typo_per_token = 0.0;
  config.token_duplicate = 0.0;
  config.abbreviate = 0.0;
  config.synonym = 0.0;
  Record r;
  r.values = {"only", "two words"};
  Rng rng(8);
  ApplyNoise(config, TwoAttrSchema(), {}, rng, &r);
  EXPECT_EQ(r.values[0], "only");  // single token is protected
}

TEST(NoiseTest, DeterministicGivenRngState) {
  NoiseConfig config;  // defaults: all channels mildly active
  Record a, b;
  a.values = {"acme wireless router deluxe", "fast and quiet device"};
  b = a;
  Rng rng_a(9), rng_b(9);
  ApplyNoise(config, TwoAttrSchema(), {}, rng_a, &a);
  ApplyNoise(config, TwoAttrSchema(), {}, rng_b, &b);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace crew
