// Tests for the span tracer: disabled spans record nothing, enabled spans
// nest correctly per thread, ring overflow drops the oldest events (and
// reports how many), and the Chrome trace-event JSON export carries the
// fields chrome://tracing / Perfetto require.

#include "crew/common/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

namespace crew {
namespace {

// Every test runs against the same process-wide rings, so each starts from
// a clean slate and leaves tracing disabled for the next one.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetTracingEnabled(false);
    ClearTraceEvents();
  }
  void TearDown() override {
    SetTracingEnabled(false);
    ClearTraceEvents();
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  {
    CREW_TRACE_SPAN("trace_test/disabled");
  }
  EXPECT_TRUE(CollectTraceEvents().empty());
  EXPECT_EQ(TraceDroppedEvents(), 0);
}

TEST_F(TraceTest, EnabledRecordsCompletedSpans) {
  SetTracingEnabled(true);
  {
    CREW_TRACE_SPAN("trace_test/outer");
    CREW_TRACE_SPAN("trace_test/inner");
  }
  const std::vector<TraceEvent> events = CollectTraceEvents();
  ASSERT_EQ(events.size(), 2u);
  // Sorted (tid, start, -dur): the outer span opened first and covers the
  // inner one entirely.
  EXPECT_STREQ(events[0].name, "trace_test/outer");
  EXPECT_STREQ(events[1].name, "trace_test/inner");
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  EXPECT_GE(events[0].start_ns + events[0].dur_ns,
            events[1].start_ns + events[1].dur_ns);
  EXPECT_GE(events[0].dur_ns, 0);
  EXPECT_GE(events[1].dur_ns, 0);
}

TEST_F(TraceTest, SpansFromDifferentThreadsKeepDistinctTids) {
  SetTracingEnabled(true);
  {
    CREW_TRACE_SPAN("trace_test/main");
  }
  std::thread t([] {
    CREW_TRACE_SPAN("trace_test/worker");
  });
  t.join();
  const std::vector<TraceEvent> events = CollectTraceEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
  EXPECT_GT(events[0].tid, 0);  // ids are stable, small, 1-based
  EXPECT_GT(events[1].tid, 0);
}

TEST_F(TraceTest, SpansAreWellNestedPerThread) {
  SetTracingEnabled(true);
  constexpr int kThreads = 3;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 20; ++i) {
        CREW_TRACE_SPAN("trace_test/a");
        {
          CREW_TRACE_SPAN("trace_test/b");
          {
            CREW_TRACE_SPAN("trace_test/c");
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Stack check per tid over the (tid, start, -dur)-sorted stream: each
  // event must fit inside the enclosing open span.
  const std::vector<TraceEvent> events = CollectTraceEvents();
  ASSERT_EQ(events.size(), kThreads * 60u);
  int current_tid = -1;
  std::vector<const TraceEvent*> stack;
  for (const TraceEvent& e : events) {
    if (e.tid != current_tid) {
      current_tid = e.tid;
      stack.clear();
    }
    while (!stack.empty() &&
           e.start_ns >= stack.back()->start_ns + stack.back()->dur_ns) {
      stack.pop_back();
    }
    if (!stack.empty()) {
      EXPECT_GE(e.start_ns, stack.back()->start_ns);
      EXPECT_LE(e.start_ns + e.dur_ns,
                stack.back()->start_ns + stack.back()->dur_ns);
    }
    stack.push_back(&e);
  }
}

TEST_F(TraceTest, RingOverflowDropsOldestAndCounts) {
  SetTracingEnabled(true);
  constexpr int kOverflow = 100;
  constexpr int kCapacity = 8192;  // per-thread ring size (trace.cc)
  for (int i = 0; i < kCapacity + kOverflow; ++i) {
    CREW_TRACE_SPAN("trace_test/flood");
  }
  const std::vector<TraceEvent> events = CollectTraceEvents();
  EXPECT_EQ(static_cast<int>(events.size()), kCapacity);
  EXPECT_EQ(TraceDroppedEvents(), kOverflow);
  ClearTraceEvents();
  EXPECT_TRUE(CollectTraceEvents().empty());
  EXPECT_EQ(TraceDroppedEvents(), 0);
}

TEST_F(TraceTest, ToggleMidSpanIsAllOrNothing) {
  // A span that opens while tracing is off records nothing even if tracing
  // turns on before it closes (the flag is captured at open).
  {
    CREW_TRACE_SPAN("trace_test/straddle");
    SetTracingEnabled(true);
  }
  EXPECT_TRUE(CollectTraceEvents().empty());
}

TEST_F(TraceTest, ChromeJsonHasRequiredFields) {
  SetTracingEnabled(true);
  {
    CREW_TRACE_SPAN("trace_test/json \"quoted\"");
  }
  const std::string json = TraceEventsToChromeJson(CollectTraceEvents());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  // The quote inside the span name must come out escaped.
  EXPECT_NE(json.find("trace_test/json \\\"quoted\\\""), std::string::npos);
  EXPECT_EQ(json.find("json \"quoted\""), std::string::npos);
}

TEST_F(TraceTest, WriteChromeTraceRoundTrips) {
  SetTracingEnabled(true);
  {
    CREW_TRACE_SPAN("trace_test/file");
  }
  const std::string expected = TraceEventsToChromeJson(CollectTraceEvents());
  const std::string path = ::testing::TempDir() + "/crew_trace_test.json";
  ASSERT_TRUE(WriteChromeTrace(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(contents, expected);
  EXPECT_FALSE(WriteChromeTrace("/nonexistent_dir/x/y.json").ok());
}

TEST_F(TraceTest, CurrentThreadIdIsStable) {
  const int id1 = CurrentThreadId();
  const int id2 = CurrentThreadId();
  EXPECT_EQ(id1, id2);
  int other = 0;
  std::thread t([&] { other = CurrentThreadId(); });
  t.join();
  EXPECT_NE(other, id1);
}

}  // namespace
}  // namespace crew
