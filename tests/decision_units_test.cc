#include "crew/core/decision_units.h"

#include <gtest/gtest.h>

#include <set>

#include "test_util.h"

namespace crew {
namespace {

using testing::MakePair;
using testing::TokenWeightMatcher;

PairTokenView MakeView(const RecordPair& pair) {
  return PairTokenView(AnonymousSchema(pair), Tokenizer(), pair);
}

TEST(BuildDecisionUnitsTest, ExactTokensPair) {
  const RecordPair pair = MakePair("acme router", "", "acme switch", "");
  const auto view = MakeView(pair);
  const auto units = BuildDecisionUnits(view, nullptr, DecisionUnitConfig());
  // acme<->acme paired; router and switch unpaired -> 3 units.
  ASSERT_EQ(units.size(), 3u);
  int paired = 0;
  for (const auto& u : units) {
    if (u.IsPaired()) {
      ++paired;
      EXPECT_EQ(view.token(u.left_token).text, "acme");
      EXPECT_EQ(view.token(u.right_token).text, "acme");
      EXPECT_DOUBLE_EQ(u.similarity, 1.0);
    }
  }
  EXPECT_EQ(paired, 1);
}

TEST(BuildDecisionUnitsTest, TypoVariantsPairViaStringSimilarity) {
  const RecordPair pair =
      MakePair("corporation", "", "corporaiton", "");
  const auto view = MakeView(pair);
  const auto units = BuildDecisionUnits(view, nullptr, DecisionUnitConfig());
  ASSERT_EQ(units.size(), 1u);
  EXPECT_TRUE(units[0].IsPaired());
  EXPECT_GT(units[0].similarity, 0.9);
}

TEST(BuildDecisionUnitsTest, EveryTokenInExactlyOneUnit) {
  const RecordPair pair =
      MakePair("a b c shared", "x", "shared y z", "x w");
  const auto view = MakeView(pair);
  const auto units = BuildDecisionUnits(view, nullptr, DecisionUnitConfig());
  std::set<int> covered;
  for (const auto& u : units) {
    if (u.left_token >= 0) {
      EXPECT_TRUE(covered.insert(u.left_token).second);
    }
    if (u.right_token >= 0) {
      EXPECT_TRUE(covered.insert(u.right_token).second);
    }
  }
  EXPECT_EQ(static_cast<int>(covered.size()), view.size());
}

TEST(BuildDecisionUnitsTest, ThresholdControlsPairing) {
  const RecordPair pair = MakePair("roster", "", "router", "");
  const auto view = MakeView(pair);
  DecisionUnitConfig loose;
  loose.pairing_threshold = 0.6;
  DecisionUnitConfig strict;
  strict.pairing_threshold = 0.99;
  EXPECT_EQ(BuildDecisionUnits(view, nullptr, loose).size(), 1u);
  EXPECT_EQ(BuildDecisionUnits(view, nullptr, strict).size(), 2u);
}

TEST(BuildDecisionUnitsTest, SameAttributePreferredOnTies) {
  // "x" appears twice on the right (attr0 and attr1); the left "x" in
  // attr1 must pair with the right attr1 occurrence.
  const RecordPair pair = MakePair("", "x", "x", "x");
  const auto view = MakeView(pair);
  const auto units = BuildDecisionUnits(view, nullptr, DecisionUnitConfig());
  bool found_same_attr_pair = false;
  for (const auto& u : units) {
    if (u.IsPaired() && view.token(u.left_token).attribute == 1) {
      EXPECT_EQ(view.token(u.right_token).attribute, 1);
      found_same_attr_pair = true;
    }
  }
  EXPECT_TRUE(found_same_attr_pair);
}

TEST(DecisionUnitExplainerTest, PairedUnitCarriesMatchEvidence) {
  // The matcher rewards "anchor" wherever it appears; the paired
  // anchor<->anchor unit removes BOTH occurrences at once, so its weight
  // reflects the full joint effect.
  TokenWeightMatcher matcher({{"anchor", 1.5}});
  const RecordPair pair =
      MakePair("anchor filler", "", "anchor other", "");
  DecisionUnitConfig config;
  config.perturbation.num_samples = 256;
  DecisionUnitExplainer explainer(nullptr, config);
  auto result = explainer.ExplainUnits(matcher, pair, 5);
  ASSERT_TRUE(result.ok());
  const auto& units = result->second;
  // Top unit must be the anchor pair.
  ASSERT_FALSE(units.empty());
  EXPECT_EQ(units[0].member_indices.size(), 2u);
  EXPECT_GT(units[0].weight, 0.1);
  EXPECT_NE(units[0].label.find("paired"), std::string::npos);
}

TEST(DecisionUnitExplainerTest, WordInterfaceMatchesUnits) {
  TokenWeightMatcher matcher({{"anchor", 1.0}});
  const RecordPair pair = MakePair("anchor b", "", "anchor c", "");
  DecisionUnitConfig config;
  config.perturbation.num_samples = 128;
  DecisionUnitExplainer explainer(nullptr, config);
  auto units = explainer.ExplainUnits(matcher, pair, 6);
  auto words = explainer.Explain(matcher, pair, 6);
  ASSERT_TRUE(units.ok() && words.ok());
  EXPECT_EQ(words->attributions.size(), 4u);
  EXPECT_EQ(explainer.Name(), "wym");
}

TEST(DecisionUnitExplainerTest, EmptyPair) {
  TokenWeightMatcher matcher({});
  DecisionUnitExplainer explainer(nullptr);
  auto result =
      explainer.ExplainUnits(matcher, MakePair("", "", "", ""), 1);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->second.empty());
}

TEST(DecisionUnitExplainerTest, DeterministicGivenSeed) {
  TokenWeightMatcher matcher({{"anchor", 1.0}});
  const RecordPair pair = MakePair("anchor b c", "", "anchor d", "");
  DecisionUnitExplainer explainer(nullptr);
  auto a = explainer.ExplainUnits(matcher, pair, 9);
  auto b = explainer.ExplainUnits(matcher, pair, 9);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->second.size(), b->second.size());
  for (size_t i = 0; i < a->second.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->second[i].weight, b->second[i].weight);
  }
}

}  // namespace
}  // namespace crew
