#include "crew/text/string_similarity.h"

#include <gtest/gtest.h>

#include "crew/common/rng.h"

namespace crew {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2);
}

TEST(LevenshteinTest, SimilarityNormalization) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(LevenshteinSimilarity("kitten", "sitting"), 1.0 - 3.0 / 7.0,
              1e-12);
}

TEST(JaroWinklerTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("abc", "abc"), 1.0);
  // Classic reference value: MARTHA / MARHTA = 0.9611.
  EXPECT_NEAR(JaroWinklerSimilarity("martha", "marhta"), 0.9611, 1e-3);
  EXPECT_NEAR(JaroWinklerSimilarity("dixon", "dicksonx"), 0.8133, 1e-3);
}

TEST(TokenSetSimilarityTest, JaccardOverlapDice) {
  const std::vector<std::string> a = {"red", "wireless", "mouse"};
  const std::vector<std::string> b = {"wireless", "mouse", "pad", "pad"};
  EXPECT_NEAR(JaccardSimilarity(a, b), 2.0 / 4.0, 1e-12);
  EXPECT_NEAR(OverlapCoefficient(a, b), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(DiceCoefficient(a, b), 2.0 * 2.0 / 6.0, 1e-12);
}

TEST(TokenSetSimilarityTest, EmptyConventions) {
  const std::vector<std::string> e;
  const std::vector<std::string> x = {"a"};
  EXPECT_DOUBLE_EQ(JaccardSimilarity(e, e), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(e, x), 0.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient(e, e), 1.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient(e, x), 0.0);
  EXPECT_DOUBLE_EQ(DiceCoefficient(e, e), 1.0);
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity(e, x), 0.0);
}

TEST(MongeElkanTest, RewardsNearMatches) {
  const std::vector<std::string> a = {"jonathan", "smith"};
  const std::vector<std::string> exact = {"jonathan", "smith"};
  const std::vector<std::string> typo = {"jonathon", "smyth"};
  const std::vector<std::string> other = {"qqq", "zzz"};
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity(a, exact), 1.0);
  EXPECT_GT(MongeElkanSimilarity(a, typo), 0.8);
  EXPECT_GT(MongeElkanSimilarity(a, typo), MongeElkanSimilarity(a, other));
}

TEST(NumericSimilarityTest, RelativeDifference) {
  EXPECT_DOUBLE_EQ(NumericSimilarity("100", "100"), 1.0);
  EXPECT_NEAR(NumericSimilarity("100", "50"), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(NumericSimilarity("0", "0"), 1.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity("-10", "10"), 0.0);  // clamped
}

TEST(NumericSimilarityTest, FallsBackToLevenshtein) {
  EXPECT_DOUBLE_EQ(NumericSimilarity("abc", "abc"), 1.0);
  EXPECT_NEAR(NumericSimilarity("v100", "v200"),
              LevenshteinSimilarity("v100", "v200"), 1e-12);
}

// Property sweep: all similarities stay in [0,1] and are symmetric for
// random short strings.
class SimilarityPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimilarityPropertyTest, BoundedAndSymmetric) {
  Rng rng(GetParam());
  auto random_token = [&] {
    std::string s;
    const int len = rng.UniformInt(0, 8);
    for (int i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + rng.UniformInt(4)));
    }
    return s;
  };
  for (int trial = 0; trial < 50; ++trial) {
    const std::string a = random_token(), b = random_token();
    for (double sim : {LevenshteinSimilarity(a, b),
                       JaroWinklerSimilarity(a, b), NumericSimilarity(a, b)}) {
      EXPECT_GE(sim, 0.0) << a << " vs " << b;
      EXPECT_LE(sim, 1.0) << a << " vs " << b;
    }
    EXPECT_DOUBLE_EQ(LevenshteinSimilarity(a, b), LevenshteinSimilarity(b, a));
    EXPECT_DOUBLE_EQ(JaroWinklerSimilarity(a, b), JaroWinklerSimilarity(b, a));

    std::vector<std::string> ta, tb;
    for (int i = 0; i < 4; ++i) {
      ta.push_back(random_token());
      tb.push_back(random_token());
    }
    EXPECT_DOUBLE_EQ(JaccardSimilarity(ta, tb), JaccardSimilarity(tb, ta));
    EXPECT_DOUBLE_EQ(DiceCoefficient(ta, tb), DiceCoefficient(tb, ta));
    const double j = JaccardSimilarity(ta, tb);
    EXPECT_GE(j, 0.0);
    EXPECT_LE(j, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimilarityPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace crew
