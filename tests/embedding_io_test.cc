#include "crew/embed/embedding_io.h"

#include <gtest/gtest.h>

namespace crew {
namespace {

EmbeddingStore MakeStore() {
  Vocabulary vocab;
  vocab.Add("alpha");
  vocab.Add("beta");
  vocab.Add("gamma");
  la::Matrix vectors(3, 2);
  vectors.At(0, 0) = 1.0;
  vectors.At(1, 1) = 1.0;
  vectors.At(2, 0) = 0.6;
  vectors.At(2, 1) = 0.8;
  return EmbeddingStore(std::move(vocab), std::move(vectors));
}

TEST(EmbeddingIoTest, TextRoundTrip) {
  const EmbeddingStore store = MakeStore();
  auto loaded = EmbeddingsFromText(EmbeddingsToText(store));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 3);
  EXPECT_EQ(loaded->dim(), 2);
  for (const char* token : {"alpha", "beta", "gamma"}) {
    EXPECT_TRUE(loaded->Contains(token));
    // Cosine structure preserved (vectors are unit rows in both stores).
    EXPECT_NEAR(loaded->Similarity(token, token), 1.0, 1e-5);
  }
  EXPECT_NEAR(loaded->Similarity("alpha", "gamma"),
              store.Similarity("alpha", "gamma"), 1e-5);
}

TEST(EmbeddingIoTest, HeaderFormat) {
  const std::string text = EmbeddingsToText(MakeStore());
  EXPECT_EQ(text.substr(0, 4), "3 2\n");
}

TEST(EmbeddingIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(EmbeddingsFromText("").ok());
  EXPECT_FALSE(EmbeddingsFromText("garbage\n").ok());
  EXPECT_FALSE(EmbeddingsFromText("2 0\n").ok());          // bad dim
  EXPECT_FALSE(EmbeddingsFromText("1 2\nfoo 0.5\n").ok()); // short row
  EXPECT_FALSE(EmbeddingsFromText("1 1\nfoo x\n").ok());   // bad number
  EXPECT_FALSE(EmbeddingsFromText("2 1\nfoo 1\n").ok());   // missing row
  EXPECT_FALSE(
      EmbeddingsFromText("1 1\nfoo 1\nbar 2\n").ok());     // extra row
  EXPECT_FALSE(
      EmbeddingsFromText("2 1\nfoo 1\nfoo 2\n").ok());     // duplicate
}

TEST(EmbeddingIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/crew_embeddings.txt";
  ASSERT_TRUE(SaveEmbeddingsFile(MakeStore(), path).ok());
  auto loaded = LoadEmbeddingsFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 3);
  EXPECT_FALSE(LoadEmbeddingsFile("/nonexistent/embeddings.txt").ok());
}

}  // namespace
}  // namespace crew
