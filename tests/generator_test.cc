#include "crew/data/generator.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "crew/data/benchmark_suite.h"
#include "crew/text/string_similarity.h"

namespace crew {
namespace {

TEST(GeneratorTest, ProducesRequestedCounts) {
  GeneratorConfig config;
  config.num_matches = 17;
  config.num_nonmatches = 23;
  auto d = GenerateDataset(config);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 40);
  EXPECT_EQ(d->MatchCount(), 17);
}

TEST(GeneratorTest, DeterministicGivenSeed) {
  GeneratorConfig config;
  config.num_matches = 10;
  config.num_nonmatches = 10;
  config.seed = 99;
  auto a = GenerateDataset(config);
  auto b = GenerateDataset(config);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (int i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->pair(i).left, b->pair(i).left);
    EXPECT_EQ(a->pair(i).right, b->pair(i).right);
    EXPECT_EQ(a->pair(i).label, b->pair(i).label);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorConfig config;
  config.num_matches = 5;
  config.num_nonmatches = 5;
  config.seed = 1;
  auto a = GenerateDataset(config);
  config.seed = 2;
  auto b = GenerateDataset(config);
  ASSERT_TRUE(a.ok() && b.ok());
  bool any_diff = false;
  for (int i = 0; i < a->size(); ++i) {
    if (!(a->pair(i).left == b->pair(i).left)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorTest, MatchesOverlapMoreThanNonMatches) {
  GeneratorConfig config;
  config.num_matches = 100;
  config.num_nonmatches = 100;
  auto d = GenerateDataset(config);
  ASSERT_TRUE(d.ok());
  const DatasetStats stats = ComputeStats(*d, Tokenizer());
  EXPECT_GT(stats.avg_token_overlap_match,
            stats.avg_token_overlap_nonmatch + 0.15);
}

TEST(GeneratorTest, HardNegativesShareContext) {
  GeneratorConfig easy, hard;
  easy.num_matches = 0;
  easy.num_nonmatches = 150;
  easy.hard_negative_fraction = 0.0;
  easy.seed = 5;
  hard = easy;
  hard.hard_negative_fraction = 1.0;
  auto de = GenerateDataset(easy);
  auto dh = GenerateDataset(hard);
  ASSERT_TRUE(de.ok() && dh.ok());
  const auto se = ComputeStats(*de, Tokenizer());
  const auto sh = ComputeStats(*dh, Tokenizer());
  // Hard negatives are built by mutating the left entity, so they share
  // clearly more surface with it.
  EXPECT_GT(sh.avg_token_overlap_nonmatch,
            se.avg_token_overlap_nonmatch + 0.05);
}

TEST(GeneratorTest, RejectsBadConfig) {
  GeneratorConfig config;
  config.num_matches = -1;
  EXPECT_FALSE(GenerateDataset(config).ok());
  config.num_matches = 1;
  config.hard_negative_fraction = 1.5;
  EXPECT_FALSE(GenerateDataset(config).ok());
}

TEST(GeneratorTest, NamesAndSynonyms) {
  GeneratorConfig config;
  config.domain = Domain::kBibliographic;
  config.flavor = Flavor::kDirty;
  EXPECT_EQ(config.Name(), "biblio-dirty");
  EXPECT_FALSE(DomainSynonyms(Domain::kProducts).empty());
  EXPECT_FALSE(DomainSynonyms(Domain::kRestaurants).empty());
}

struct GridParam {
  Domain domain;
  Flavor flavor;
  int expected_attributes;
};

class GeneratorGridTest : public ::testing::TestWithParam<GridParam> {};

TEST_P(GeneratorGridTest, SchemaShapeAndNonEmptyValues) {
  GeneratorConfig config;
  config.domain = GetParam().domain;
  config.flavor = GetParam().flavor;
  config.num_matches = 30;
  config.num_nonmatches = 30;
  auto d = GenerateDataset(config);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->schema().size(), GetParam().expected_attributes);
  // Every record has at least one non-empty attribute (even dirty flavours
  // never blank a whole record).
  for (const auto& p : d->pairs()) {
    for (const Record* r : {&p.left, &p.right}) {
      bool any = false;
      for (const auto& v : r->values) {
        if (!v.empty()) any = true;
      }
      EXPECT_TRUE(any);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDomainsAndFlavors, GeneratorGridTest,
    ::testing::Values(
        GridParam{Domain::kProducts, Flavor::kStructured, 5},
        GridParam{Domain::kProducts, Flavor::kDirty, 5},
        GridParam{Domain::kProducts, Flavor::kTextual, 2},
        GridParam{Domain::kBibliographic, Flavor::kStructured, 4},
        GridParam{Domain::kBibliographic, Flavor::kDirty, 4},
        GridParam{Domain::kBibliographic, Flavor::kTextual, 2},
        GridParam{Domain::kRestaurants, Flavor::kStructured, 5},
        GridParam{Domain::kRestaurants, Flavor::kDirty, 5},
        GridParam{Domain::kRestaurants, Flavor::kTextual, 2}));

TEST(BenchmarkSuiteTest, NineEntriesWithUniqueNames) {
  const auto entries = StandardBenchmark(7, 10, 10);
  ASSERT_EQ(entries.size(), 9u);
  std::set<std::string> names;
  for (const auto& e : entries) names.insert(e.name);
  EXPECT_EQ(names.size(), 9u);
}

TEST(BenchmarkSuiteTest, GenerateByName) {
  auto d = GenerateByName("restaurants-textual", 7, 5, 5);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 10);
  EXPECT_FALSE(GenerateByName("no-such-dataset").ok());
}

}  // namespace
}  // namespace crew
