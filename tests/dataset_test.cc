#include "crew/data/dataset.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace crew {
namespace {

Dataset MakeDataset(int matches, int nonmatches) {
  Schema s;
  s.AddAttribute("name", AttributeType::kText);
  Dataset d(s);
  for (int i = 0; i < matches; ++i) {
    RecordPair p;
    p.left.values = {"widget " + std::to_string(i)};
    p.right.values = {"widget " + std::to_string(i)};
    p.label = 1;
    d.Add(std::move(p));
  }
  for (int i = 0; i < nonmatches; ++i) {
    RecordPair p;
    p.left.values = {"gadget " + std::to_string(i)};
    p.right.values = {"gizmo " + std::to_string(i + 1000)};
    p.label = 0;
    d.Add(std::move(p));
  }
  return d;
}

TEST(DatasetTest, SizeAndMatchCount) {
  Dataset d = MakeDataset(3, 7);
  EXPECT_EQ(d.size(), 10);
  EXPECT_EQ(d.MatchCount(), 3);
  EXPECT_FALSE(d.empty());
  EXPECT_TRUE(Dataset().empty());
}

TEST(DatasetTest, StratifiedSplitPreservesRatio) {
  Dataset d = MakeDataset(40, 60);
  Rng rng(3);
  Dataset train, test;
  d.Split(0.7, rng, &train, &test);
  EXPECT_EQ(train.size() + test.size(), 100);
  EXPECT_EQ(train.MatchCount(), 28);  // 0.7 * 40
  EXPECT_EQ(test.MatchCount(), 12);
  EXPECT_EQ(train.size(), 70);
}

TEST(DatasetTest, SplitIsDisjointAndComplete) {
  Dataset d = MakeDataset(10, 10);
  Rng rng(4);
  Dataset train, test;
  d.Split(0.5, rng, &train, &test);
  // Every original left value appears exactly once across the two halves.
  std::multiset<std::string> seen;
  for (const auto& p : train.pairs()) seen.insert(p.left.values[0]);
  for (const auto& p : test.pairs()) seen.insert(p.left.values[0]);
  std::multiset<std::string> expected;
  for (const auto& p : d.pairs()) expected.insert(p.left.values[0]);
  EXPECT_EQ(seen, expected);
}

TEST(DatasetTest, BuildVocabularyCountsAllTokens) {
  Dataset d = MakeDataset(2, 0);
  const Vocabulary vocab = d.BuildVocabulary(Tokenizer());
  EXPECT_TRUE(vocab.Contains("widget"));
  EXPECT_EQ(vocab.CountOf(vocab.GetId("widget")), 4);  // 2 pairs x 2 sides
  EXPECT_TRUE(vocab.Contains("0"));
  EXPECT_TRUE(vocab.Contains("1"));
}

TEST(DatasetTest, ComputeStats) {
  Dataset d = MakeDataset(5, 5);
  const DatasetStats stats = ComputeStats(d, Tokenizer());
  EXPECT_EQ(stats.pairs, 10);
  EXPECT_EQ(stats.matches, 5);
  EXPECT_DOUBLE_EQ(stats.match_ratio, 0.5);
  EXPECT_GT(stats.vocabulary_size, 0);
  EXPECT_DOUBLE_EQ(stats.avg_tokens_per_record, 2.0);
  // Matches are identical strings -> Jaccard 1; non-matches share no token.
  EXPECT_DOUBLE_EQ(stats.avg_token_overlap_match, 1.0);
  EXPECT_DOUBLE_EQ(stats.avg_token_overlap_nonmatch, 0.0);
}

}  // namespace
}  // namespace crew
