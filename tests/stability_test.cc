#include "crew/eval/stability.h"

#include <gtest/gtest.h>

#include "crew/explain/lime.h"
#include "crew/explain/random_explainer.h"
#include "test_util.h"

namespace crew {
namespace {

using testing::MakePair;
using testing::TokenWeightMatcher;

TEST(TopKJaccardTest, KnownValues) {
  EXPECT_DOUBLE_EQ(TopKJaccard({"a", "b"}, {"a", "b"}), 1.0);
  EXPECT_DOUBLE_EQ(TopKJaccard({"a", "b"}, {"c", "d"}), 0.0);
  EXPECT_DOUBLE_EQ(TopKJaccard({"a", "b", "c"}, {"b", "c", "d"}), 0.5);
  EXPECT_DOUBLE_EQ(TopKJaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(TopKJaccard({"a"}, {}), 0.0);
}

TEST(StabilityTest, NeedsTwoSeeds) {
  TokenWeightMatcher matcher({});
  LimeExplainer lime;
  EXPECT_FALSE(
      ExplainerStability(lime, matcher, MakePair("a", "", "b", ""), {1}, 3)
          .ok());
}

TEST(StabilityTest, StrongSignalIsStable) {
  // One overwhelming token: LIME should find it under any seed.
  TokenWeightMatcher matcher({{"anchor", 5.0}});
  LimeConfig config;
  config.perturbation.num_samples = 256;
  LimeExplainer lime(config);
  const RecordPair pair = MakePair("anchor junk1 junk2", "", "junk3", "");
  auto stability =
      ExplainerStability(lime, matcher, pair, {1, 2, 3}, /*k=*/1);
  ASSERT_TRUE(stability.ok());
  EXPECT_DOUBLE_EQ(*stability, 1.0);
}

TEST(StabilityTest, RandomExplainerIsUnstable) {
  TokenWeightMatcher matcher({});
  RandomExplainer random;
  const RecordPair pair =
      MakePair("w1 w2 w3 w4 w5 w6", "w7 w8", "w9 w10 w11", "w12");
  auto stability =
      ExplainerStability(random, matcher, pair, {1, 2, 3, 4}, /*k=*/3);
  ASSERT_TRUE(stability.ok());
  EXPECT_LT(*stability, 0.6);
}

}  // namespace
}  // namespace crew
