// Fixture: the same violation classes as the bad_* files, each silenced by
// a crew-lint suppression — the lint must report nothing here.
#include <string>
#include <unordered_map>

double OrderIndependentSum(
    const std::unordered_map<std::string, double>& weights) {
  double total = 0.0;
  // crew-lint: allow(unordered-iter): plain sum; addition order only
  // perturbs the last ulp and nothing downstream compares bits.
  for (const auto& [token, w] : weights) {
    total += w;
  }
  return total;
}

int InlineSuppressed(const std::unordered_map<std::string, double>& weights) {
  int n = 0;
  for (auto it = weights.begin();  // crew-lint: allow(unordered-iter): count
       it != weights.end(); ++it) {
    ++n;
  }
  return n;
}
