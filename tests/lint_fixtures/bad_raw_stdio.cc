// Fixture: raw stdout/stderr in library code violates [raw-stdio].
#include <cstdio>
#include <iostream>

void Report(double score) {
  std::cout << "score=" << score << "\n";      // finding
  std::cerr << "warning: low score\n";         // finding
  std::printf("score=%f\n", score);            // finding
  fprintf(stderr, "warning: low score\n");     // finding
}
