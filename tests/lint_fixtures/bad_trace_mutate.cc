// Fixture: compute-path control flow observing tracing state violates
// [trace-mutate].
bool TracingEnabled();

double ScoreWithTraceLeak(double x) {
  if (TracingEnabled()) {        // finding: result depends on tracing
    x += 1.0;
  }
  bool traced = TracingEnabled();  // finding: observability value consumed
  while (TracingEnabled()) {     // finding: loop bound on tracing state
    break;
  }
  return traced ? x : -x;
}
