// Fixture: iterating unordered containers violates [unordered-iter].
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using TagSet = std::unordered_set<std::string>;

double SumInHashOrder(const std::unordered_map<std::string, double>& weights) {
  double total = 0.0;
  for (const auto& [token, w] : weights) {  // finding: range-for over map
    total += w * total;                     // order-dependent accumulation
  }
  return total;
}

std::vector<std::string> FirstTags(const TagSet& tags) {
  std::vector<std::string> out;
  out.assign(tags.begin(), tags.end());  // finding: .begin() on alias type
  return out;
}
