// Fixture: a file-level suppression silences a rule everywhere in the file.
// crew-lint: allow-file(raw-stdio): fixture exercising file-wide allows.
#include <cstdio>

void PrintTwice(double v) {
  std::printf("%f\n", v);
  std::printf("%f\n", v);
}
