#ifndef CREW_TESTS_LINT_FIXTURES_CLEAN_H_
#define CREW_TESTS_LINT_FIXTURES_CLEAN_H_

// Fixture: a fully conforming header — canonical guard, no banned
// constructs. The lint must report nothing here.

#include <cstdint>
#include <vector>

namespace crew_lint_fixture {

/// Sums deterministically over an index-ordered vector.
inline double OrderedSum(const std::vector<double>& values) {
  double total = 0.0;
  for (double v : values) total += v;
  return total;
}

}  // namespace crew_lint_fixture

#endif  // CREW_TESTS_LINT_FIXTURES_CLEAN_H_
