// Fixture: every randomness source here violates [rand-source].
#include <cstdlib>
#include <random>

int UnseededDraws() {
  std::random_device rd;      // finding: non-reproducible entropy source
  std::srand(42);             // finding: global C RNG state
  int x = rand() % 10;        // finding: global C RNG draw
  return x + static_cast<int>(rd());
}
