// Fixture: seeding RNGs from the wall clock violates [wall-clock-seed].
#include <chrono>
#include <ctime>
#include <random>

std::mt19937_64 ClockSeededEngine() {
  // finding: seed derived from the wall clock
  std::mt19937_64 engine(std::chrono::steady_clock::now().time_since_epoch().count());
  return engine;
}

unsigned TimeSeed() {
  unsigned seed = static_cast<unsigned>(time(nullptr));  // finding
  return seed;
}
