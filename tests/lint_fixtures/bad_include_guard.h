#ifndef WRONG_GUARD_NAME_H
#define WRONG_GUARD_NAME_H

// Fixture: guard does not match the canonical CREW_<PATH>_H_ form, which
// violates [include-guard].

inline int Answer() { return 42; }

#endif  // WRONG_GUARD_NAME_H
