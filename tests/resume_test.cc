// Crash/resume contract of the streaming execution layer: a grid killed by
// the deterministic fault injector after k cells and then resumed from its
// checkpoint must produce a byte-identical JSON document to the same grid
// run uninterrupted — for any thread count and any kill point. This holds
// because per-cell and per-instance seeds derive from the grid key and the
// pair index, never from execution order, and because stable-timing mode
// zeroes the wall-clock fields that legitimately differ between runs.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "crew/common/thread_pool.h"
#include "crew/data/generator.h"
#include "crew/eval/runner.h"
#include "crew/eval/sinks.h"
#include "crew/eval/streaming.h"
#include "crew/explain/lime.h"
#include "crew/explain/random_explainer.h"
#include "crew/model/trainer.h"

namespace crew {
namespace {

class ScopedScoringThreads {
 public:
  explicit ScopedScoringThreads(int n) { SetScoringThreads(n); }
  ~ScopedScoringThreads() { SetScoringThreads(0); }
};

// Every run in this file compares serialized results byte for byte, so
// wall-clock fields are zeroed exactly like the bench --stable-timing flag
// does.
class ScopedStableTiming {
 public:
  ScopedStableTiming() { SetStableTiming(true); }
  ~ScopedStableTiming() { SetStableTiming(false); }
};

BenchmarkEntry TinyEntry(const std::string& name, uint64_t seed) {
  BenchmarkEntry entry;
  entry.name = name;
  entry.config.num_matches = 30;
  entry.config.num_nonmatches = 30;
  entry.config.seed = seed;
  return entry;
}

// 2 datasets x 2 variants = a 4-cell grid, small enough to rerun many
// times but wide enough that kill points 1..3 leave a genuinely partial
// checkpoint.
ExperimentRunner MakeRunner() {
  ExperimentSpec spec;
  spec.name = "resume_grid";
  spec.datasets = {TinyEntry("tiny-a", 3), TinyEntry("tiny-b", 4)};
  spec.matcher = MatcherKind::kLogistic;
  spec.instances_per_dataset = 2;
  spec.seed = 7;
  spec.suite = [](const TrainedPipeline&) {
    std::vector<SuiteEntry> suite;
    LimeConfig lime;
    lime.perturbation.num_samples = 16;
    suite.push_back({"lime", std::make_unique<LimeExplainer>(lime)});
    suite.push_back({"random", std::make_unique<RandomExplainer>()});
    return suite;
  };
  return ExperimentRunner(std::move(spec));
}

std::string CheckpointPath(const std::string& tag) {
  return ::testing::TempDir() + "/resume_" + tag + ".jsonl";
}

TEST(ResumeTest, KilledThenResumedGridIsByteIdentical) {
  ScopedStableTiming stable;
  constexpr int kGridCells = 4;
  for (int threads : {1, 2, 4}) {
    ScopedScoringThreads scoped(threads);
    auto clean = MakeRunner().Run();
    ASSERT_TRUE(clean.ok()) << "threads=" << threads;
    const std::string clean_json = ExperimentResultToJson(*clean);

    for (int kill_after : {0, 1, 2, kGridCells - 1}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " kill_after=" + std::to_string(kill_after));
      const std::string path = CheckpointPath(
          std::to_string(threads) + "_" + std::to_string(kill_after));
      std::remove(path.c_str());

      // Phase 1: run with the fault armed; the run must fail, leaving
      // exactly `kill_after` durable cells behind.
      {
        CheckpointStore checkpoint(path);
        ASSERT_TRUE(checkpoint.Load().ok());
        FaultInjector fault;
        fault.ArmAfterCells(kill_after);
        RunHooks hooks;
        hooks.checkpoint = &checkpoint;
        hooks.fault = &fault;
        auto crashed = MakeRunner().Run(hooks);
        ASSERT_FALSE(crashed.ok());
        EXPECT_NE(crashed.status().ToString().find("fault injected"),
                  std::string::npos);
        EXPECT_EQ(checkpoint.done_cells(), kill_after);
      }

      // Phase 2: resume from the checkpoint; restored cells must slot in
      // bit-identically next to the freshly computed remainder.
      CheckpointStore checkpoint(path);
      ASSERT_TRUE(checkpoint.Load().ok());
      EXPECT_EQ(checkpoint.done_cells(), kill_after);
      RunHooks hooks;
      hooks.checkpoint = &checkpoint;
      auto resumed = MakeRunner().Run(hooks);
      ASSERT_TRUE(resumed.ok());
      EXPECT_EQ(checkpoint.done_cells(), kGridCells);
      EXPECT_EQ(ExperimentResultToJson(*resumed), clean_json);
      std::remove(path.c_str());
    }
  }
}

TEST(ResumeTest, FullyCheckpointedGridRecomputesNothing) {
  ScopedStableTiming stable;
  const std::string path = CheckpointPath("full");
  std::remove(path.c_str());
  {
    CheckpointStore checkpoint(path);
    ASSERT_TRUE(checkpoint.Load().ok());
    RunHooks hooks;
    hooks.checkpoint = &checkpoint;
    ASSERT_TRUE(MakeRunner().Run(hooks).ok());
  }
  CheckpointStore checkpoint(path);
  ASSERT_TRUE(checkpoint.Load().ok());
  EXPECT_EQ(checkpoint.done_cells(), 4);
  // Arm the fault to fire before the *first fresh* cell: if every cell is
  // restored, the injector never sees a fresh cell and the run succeeds.
  FaultInjector fault;
  fault.ArmAfterCells(0);
  RunHooks hooks;
  hooks.checkpoint = &checkpoint;
  hooks.fault = &fault;
  auto result = MakeRunner().Run(hooks);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->cells.size(), 4u);
}

TEST(ResumeTest, StreamShardCarriesTheWholeGridAcrossRestarts) {
  // The JSONL shard written by the killed run plus the resumed run's
  // appends reconstruct the full grid: header + one line per cell, with
  // restored cells re-emitted by the resumed process in completion order.
  ScopedStableTiming stable;
  const std::string ckpt = CheckpointPath("shard_ckpt");
  const std::string shard = CheckpointPath("shard_stream");
  std::remove(ckpt.c_str());
  std::remove(shard.c_str());
  {
    CheckpointStore checkpoint(ckpt);
    ASSERT_TRUE(checkpoint.Load().ok());
    FaultInjector fault;
    fault.ArmAfterCells(2);
    JsonlStreamSink sink(shard);
    RunHooks hooks;
    hooks.checkpoint = &checkpoint;
    hooks.fault = &fault;
    hooks.sinks.push_back(&sink);
    ASSERT_FALSE(MakeRunner().Run(hooks).ok());
  }
  // The resumed run opens its own shard (truncating): what matters is that
  // the final shard alone reconstructs all four cells.
  CheckpointStore checkpoint(ckpt);
  ASSERT_TRUE(checkpoint.Load().ok());
  JsonlStreamSink sink(shard);
  RunHooks hooks;
  hooks.checkpoint = &checkpoint;
  hooks.sinks.push_back(&sink);
  auto result = MakeRunner().Run(hooks);
  ASSERT_TRUE(result.ok());

  std::FILE* f = std::fopen(shard.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    content.append(buffer, n);
  }
  std::fclose(f);
  int headers = 0;
  int cells = 0;
  size_t start = 0;
  while (start < content.size()) {
    size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    auto record = ParseCellRecord(content.substr(start, end - start));
    ASSERT_TRUE(record.ok()) << record.status().ToString();
    if (record->kind == "header") {
      ++headers;
      EXPECT_EQ(record->experiment, "resume_grid");
    } else {
      ++cells;
    }
    start = end + 1;
  }
  EXPECT_EQ(headers, 1);
  EXPECT_EQ(cells, 4);
  std::remove(ckpt.c_str());
  std::remove(shard.c_str());
}

TEST(ResumeTest, CheckpointFromDifferentExperimentIsRefused) {
  ScopedStableTiming stable;
  const std::string path = CheckpointPath("wrong_experiment");
  std::remove(path.c_str());
  {
    CheckpointStore checkpoint(path);
    ASSERT_TRUE(checkpoint.Load().ok());
    ExperimentResult other;
    other.name = "some_other_experiment";
    ASSERT_TRUE(checkpoint.WriteHeaderIfNew(other).ok());
  }
  CheckpointStore checkpoint(path);
  ASSERT_TRUE(checkpoint.Load().ok());
  RunHooks hooks;
  hooks.checkpoint = &checkpoint;
  auto result = MakeRunner().Run(hooks);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace crew
