#include "crew/explain/token_view.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace crew {
namespace {

using testing::MakePair;

PairTokenView MakeView(const RecordPair& pair) {
  return PairTokenView(AnonymousSchema(pair), Tokenizer(), pair);
}

TEST(TokenViewTest, EnumeratesLeftThenRightInAttributeOrder) {
  const RecordPair pair = MakePair("a b", "c", "d", "e f");
  PairTokenView view(AnonymousSchema(pair), Tokenizer(), pair);
  ASSERT_EQ(view.size(), 6);
  EXPECT_EQ(view.token(0).text, "a");
  EXPECT_EQ(view.token(0).side, Side::kLeft);
  EXPECT_EQ(view.token(0).attribute, 0);
  EXPECT_EQ(view.token(1).text, "b");
  EXPECT_EQ(view.token(1).position, 1);
  EXPECT_EQ(view.token(2).text, "c");
  EXPECT_EQ(view.token(2).attribute, 1);
  EXPECT_EQ(view.token(3).side, Side::kRight);
  EXPECT_EQ(view.token(5).text, "f");
}

TEST(TokenViewTest, IndicesOnSide) {
  const RecordPair pair = MakePair("a b", "c", "d", "e");
  const auto view = MakeView(pair);
  EXPECT_EQ(view.IndicesOnSide(Side::kLeft), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(view.IndicesOnSide(Side::kRight), (std::vector<int>{3, 4}));
}

TEST(TokenViewTest, MaterializeKeepAll) {
  const RecordPair pair = MakePair("Acme Router", "99", "acme", "100");
  const auto view = MakeView(pair);
  const RecordPair m = view.Materialize(std::vector<bool>(view.size(), true));
  // Normalized (lowercased, space-joined) but content-complete.
  EXPECT_EQ(m.left.values[0], "acme router");
  EXPECT_EQ(m.right.values[1], "100");
}

TEST(TokenViewTest, MaterializeDropsTokens) {
  const RecordPair pair = MakePair("a b c", "", "x", "");
  const auto view = MakeView(pair);
  std::vector<bool> keep(view.size(), true);
  keep[1] = false;  // drop "b"
  const RecordPair m = view.Materialize(keep);
  EXPECT_EQ(m.left.values[0], "a c");
  EXPECT_EQ(m.right.values[0], "x");
}

TEST(TokenViewTest, InjectionAppendsToOppositeSide) {
  const RecordPair pair = MakePair("a", "", "x", "");
  const auto view = MakeView(pair);
  std::vector<bool> keep(view.size(), true);
  std::vector<bool> inject(view.size(), false);
  inject[0] = true;  // left "a" injected into the right record
  const RecordPair m = view.MaterializeWithInjection(keep, inject);
  EXPECT_EQ(m.left.values[0], "a");
  EXPECT_EQ(m.right.values[0], "x a");
}

TEST(TokenViewTest, InjectionOfDroppedTokenMovesIt) {
  const RecordPair pair = MakePair("a", "", "x", "");
  const auto view = MakeView(pair);
  std::vector<bool> keep(view.size(), true);
  std::vector<bool> inject(view.size(), false);
  keep[0] = false;
  inject[0] = true;
  const RecordPair m = view.MaterializeWithInjection(keep, inject);
  EXPECT_EQ(m.left.values[0], "");
  EXPECT_EQ(m.right.values[0], "x a");
}

TEST(TokenViewTest, SubstitutionReplacesOneToken) {
  const RecordPair pair = MakePair("a b", "", "x", "");
  const auto view = MakeView(pair);
  const RecordPair m = view.MaterializeWithSubstitution(1, "zzz");
  EXPECT_EQ(m.left.values[0], "a zzz");
  EXPECT_EQ(m.right.values[0], "x");
}

TEST(TokenViewTest, LabelPreserved) {
  RecordPair pair = MakePair("a", "", "b", "", /*label=*/1);
  const auto view = MakeView(pair);
  EXPECT_EQ(view.Materialize(std::vector<bool>(view.size(), true)).label, 1);
}

TEST(TokenViewTest, EmptyPair) {
  const RecordPair pair = MakePair("", "", "", "");
  const auto view = MakeView(pair);
  EXPECT_EQ(view.size(), 0);
  const RecordPair m = view.Materialize({});
  EXPECT_EQ(m.left.values[0], "");
}

TEST(AnonymousSchemaTest, MatchesArity) {
  const RecordPair pair = MakePair("a", "b", "c", "d");
  const Schema schema = AnonymousSchema(pair);
  EXPECT_EQ(schema.size(), 2);
  EXPECT_EQ(schema.name(0), "attr0");
}

}  // namespace
}  // namespace crew
