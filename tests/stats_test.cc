#include "crew/la/stats.h"
#include <cmath>

#include <gtest/gtest.h>

namespace crew::la {
namespace {

TEST(StatsTest, VarianceAndStdDev) {
  EXPECT_DOUBLE_EQ(Variance({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
                   32.0 / 7.0);
  EXPECT_DOUBLE_EQ(Variance({1.0}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_NEAR(StdDev({1.0, 3.0}), std::sqrt(2.0), 1e-12);
}

TEST(StatsTest, Percentile) {
  Vec v = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 2.0);
  EXPECT_DOUBLE_EQ(Percentile({42.0}, 73), 42.0);
  // Interpolation between ranks.
  EXPECT_DOUBLE_EQ(Percentile({0.0, 10.0}, 25), 2.5);
}

TEST(StatsTest, PearsonPerfectAndZero) {
  Vec x = {1.0, 2.0, 3.0, 4.0};
  Vec y = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  Vec neg = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(PearsonCorrelation(x, neg), -1.0, 1e-12);
  Vec constant = {5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, constant), 0.0);
}

TEST(StatsTest, RanksWithTies) {
  EXPECT_EQ(Ranks({10.0, 20.0, 20.0, 30.0}), (Vec{1.0, 2.5, 2.5, 4.0}));
  EXPECT_EQ(Ranks({3.0, 1.0, 2.0}), (Vec{3.0, 1.0, 2.0}));
}

TEST(StatsTest, SpearmanMonotoneNonlinear) {
  // y = x^3 is a nonlinear monotone map: Spearman 1, Pearson < 1.
  Vec x = {1.0, 2.0, 3.0, 4.0, 5.0};
  Vec y;
  for (double v : x) y.push_back(v * v * v);
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
  EXPECT_LT(PearsonCorrelation(x, y), 1.0);
}

}  // namespace
}  // namespace crew::la
