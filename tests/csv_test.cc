#include "crew/data/csv.h"

#include <gtest/gtest.h>

namespace crew {
namespace {

TEST(ParseCsvTest, SimpleRows) {
  auto rows = ParseCsv("a,b\nc,d\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"c", "d"}));
}

TEST(ParseCsvTest, QuotedFieldsWithCommasNewlinesQuotes) {
  auto rows = ParseCsv("\"a,b\",\"line1\nline2\",\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], "a,b");
  EXPECT_EQ((*rows)[0][1], "line1\nline2");
  EXPECT_EQ((*rows)[0][2], "say \"hi\"");
}

TEST(ParseCsvTest, CrLfAndMissingTrailingNewline) {
  auto rows = ParseCsv("a,b\r\nc,d");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"c", "d"}));
}

TEST(ParseCsvTest, EmptyFields) {
  auto rows = ParseCsv(",\na,,b\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"", ""}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"a", "", "b"}));
}

TEST(ParseCsvTest, Errors) {
  EXPECT_FALSE(ParseCsv("\"unterminated").ok());
  EXPECT_FALSE(ParseCsv("ab\"cd\n").ok());  // quote mid-field
}

TEST(WriteCsvTest, EscapesOnlyWhenNeeded) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(WriteCsv({{"a", "b,c"}}), "a,\"b,c\"\n");
}

TEST(CsvRoundTripTest, ArbitraryContentSurvives) {
  const std::vector<std::vector<std::string>> rows = {
      {"normal", "with,comma", "with\nnewline"},
      {"with \"quotes\"", "", "  spaces  "},
  };
  auto parsed = ParseCsv(WriteCsv(rows));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, rows);
}

TEST(DatasetCsvTest, RoundTrip) {
  Schema s;
  s.AddAttribute("name", AttributeType::kText);
  s.AddAttribute("price", AttributeType::kText);
  Dataset d(s);
  RecordPair p;
  p.left.values = {"acme, inc", "10"};
  p.right.values = {"acme", "12"};
  p.label = 0;
  d.Add(p);
  p.label = 1;
  d.Add(p);

  auto loaded = LoadDatasetCsv(DatasetToCsv(d));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2);
  EXPECT_EQ(loaded->schema().name(0), "name");
  EXPECT_EQ(loaded->pair(0).left.values[0], "acme, inc");
  EXPECT_EQ(loaded->pair(0).label, 0);
  EXPECT_EQ(loaded->pair(1).label, 1);
}

TEST(DatasetCsvTest, HeaderValidation) {
  EXPECT_FALSE(LoadDatasetCsv("").ok());
  EXPECT_FALSE(LoadDatasetCsv("x,y,z\n").ok());
  EXPECT_FALSE(LoadDatasetCsv("label,left_a,right_b\n").ok());  // name clash
  EXPECT_TRUE(LoadDatasetCsv("label,left_a,right_a\n").ok());
}

TEST(DatasetCsvTest, RowValidation) {
  const std::string header = "label,left_a,right_a\n";
  EXPECT_FALSE(LoadDatasetCsv(header + "2,x,y\n").ok());   // bad label
  EXPECT_FALSE(LoadDatasetCsv(header + "1,x\n").ok());     // short row
  auto ok = LoadDatasetCsv(header + "1,x,y\n0,p,q\n");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 2);
}

TEST(DatasetCsvTest, FileRoundTrip) {
  Schema s;
  s.AddAttribute("a", AttributeType::kText);
  Dataset d(s);
  RecordPair p;
  p.left.values = {"hello"};
  p.right.values = {"world"};
  p.label = 1;
  d.Add(p);
  const std::string path = ::testing::TempDir() + "/crew_csv_test.csv";
  ASSERT_TRUE(SaveDatasetCsvFile(d, path).ok());
  auto loaded = LoadDatasetCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->pair(0).right.values[0], "world");
  EXPECT_FALSE(LoadDatasetCsvFile("/nonexistent/nope.csv").ok());
}

}  // namespace
}  // namespace crew
