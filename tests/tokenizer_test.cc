#include "crew/text/tokenizer.h"

#include <gtest/gtest.h>

namespace crew {
namespace {

TEST(TokenizerTest, SplitsOnNonAlnumAndLowercases) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("Sony WH-1000XM4!"),
            (std::vector<std::string>{"sony", "wh", "1000xm4"}));
}

TEST(TokenizerTest, EmptyAndSeparatorOnly) {
  Tokenizer t;
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize(" ,;-!  ").empty());
}

TEST(TokenizerTest, KeepsDigitsByDefault) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("price 456.99"),
            (std::vector<std::string>{"price", "456", "99"}));
}

TEST(TokenizerTest, DropNumbersOption) {
  TokenizerOptions options;
  options.keep_numbers = false;
  Tokenizer t(options);
  EXPECT_EQ(t.Tokenize("abc 123 x9"),
            (std::vector<std::string>{"abc", "x9"}));
}

TEST(TokenizerTest, NoLowercaseOption) {
  TokenizerOptions options;
  options.lowercase = false;
  Tokenizer t(options);
  EXPECT_EQ(t.Tokenize("Ab cD"), (std::vector<std::string>{"Ab", "cD"}));
}

TEST(TokenizerTest, MinTokenLength) {
  TokenizerOptions options;
  options.min_token_length = 3;
  Tokenizer t(options);
  EXPECT_EQ(t.Tokenize("a bb ccc dddd"),
            (std::vector<std::string>{"ccc", "dddd"}));
}

TEST(TokenizerTest, NonAsciiBytesActAsSeparators) {
  Tokenizer t;
  // UTF-8 "café" -> 'caf' + multi-byte 'é' dropped as separator.
  EXPECT_EQ(t.Tokenize("caf\xc3\xa9 bar"),
            (std::vector<std::string>{"caf", "bar"}));
}

}  // namespace
}  // namespace crew
