// Tests for the stopwatch pair: WallTimer (steady clock) and CpuTimer
// (per-thread CPU clock). CPU time only advances while the thread actually
// computes, so a busy spin must register but the assertions stay loose
// enough for loaded CI machines.

#include "crew/common/timer.h"

#include <gtest/gtest.h>

#include <thread>

namespace crew {
namespace {

// Busy work the optimizer cannot delete (result escapes via volatile).
void Spin(int iterations) {
  volatile double sink = 0.0;
  for (int i = 0; i < iterations; ++i) {
    sink = sink + static_cast<double>(i) * 1e-9;
  }
}

TEST(WallTimerTest, AdvancesMonotonically) {
  WallTimer timer;
  const double t1 = timer.ElapsedSeconds();
  Spin(10000);
  const double t2 = timer.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  EXPECT_NEAR(timer.ElapsedMillis(), timer.ElapsedSeconds() * 1e3, 1.0);
}

TEST(WallTimerTest, RestartRezeroes) {
  WallTimer timer;
  Spin(100000);
  timer.Restart();
  // A fresh start cannot carry the pre-restart elapsed time (bounded well
  // above any plausible scheduling delay, well below the spin's cost on
  // even a fast machine... the point is only that it re-zeroed).
  EXPECT_LT(timer.ElapsedSeconds(), 10.0);
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
}

TEST(CpuTimerTest, AvailableOnLinux) {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  EXPECT_TRUE(CpuTimer::Available());
#else
  EXPECT_FALSE(CpuTimer::Available());
#endif
}

TEST(CpuTimerTest, BusyWorkAccumulatesCpuTime) {
  if (!CpuTimer::Available()) GTEST_SKIP() << "no thread CPU clock";
  CpuTimer timer;
  // Spin until the CPU clock visibly advances (bounded by iterations so a
  // broken clock fails instead of hanging).
  double elapsed = 0.0;
  for (int i = 0; i < 1000 && elapsed <= 0.0; ++i) {
    Spin(100000);
    elapsed = timer.ElapsedSeconds();
  }
  EXPECT_GT(elapsed, 0.0);
  EXPECT_NEAR(timer.ElapsedMillis(), timer.ElapsedSeconds() * 1e3, 10.0);
}

TEST(CpuTimerTest, SleepDoesNotBurnCpu) {
  if (!CpuTimer::Available()) GTEST_SKIP() << "no thread CPU clock";
  CpuTimer cpu;
  WallTimer wall;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Sleeping advances wall time but (nearly) no CPU time; allow generous
  // slack for wakeup overhead.
  EXPECT_GE(wall.ElapsedSeconds(), 0.040);
  EXPECT_LT(cpu.ElapsedSeconds(), wall.ElapsedSeconds());
}

TEST(CpuTimerTest, RestartRezeroes) {
  if (!CpuTimer::Available()) GTEST_SKIP() << "no thread CPU clock";
  CpuTimer timer;
  Spin(500000);
  const double before = timer.ElapsedSeconds();
  timer.Restart();
  EXPECT_LE(timer.ElapsedSeconds(), before + 0.01);
}

}  // namespace
}  // namespace crew
