#include "crew/core/counterfactual.h"

#include <gtest/gtest.h>

#include "crew/core/crew_explainer.h"
#include "test_util.h"

namespace crew {
namespace {

using testing::MakePair;
using testing::TokenWeightMatcher;

TEST(CounterfactualTest, FlipsWithDecisiveUnit) {
  // Bias keeps the empty-anchor score strictly below threshold (a bare
  // logit of 0 sits exactly on the 0.5 boundary and would not flip).
  TokenWeightMatcher matcher({{"anchor", 2.0}}, /*bias=*/-0.5);
  const RecordPair pair = MakePair("anchor filler", "junk", "other", "x");
  PairTokenView view(AnonymousSchema(pair), Tokenizer(), pair);
  // Singleton units, oracle weights.
  std::vector<ExplanationUnit> units;
  for (int i = 0; i < view.size(); ++i) {
    ExplanationUnit u;
    u.member_indices = {i};
    u.weight = view.token(i).text == "anchor" ? 2.0 : 0.0;
    u.label = view.token(i).text;
    units.push_back(u);
  }
  const double base = matcher.PredictProba(pair);
  ASSERT_GT(base, 0.5);
  const auto cf = GenerateCounterfactual(matcher, view, units, base);
  ASSERT_TRUE(cf.found);
  EXPECT_EQ(cf.removed_units.size(), 1u);
  EXPECT_EQ(cf.removed_words, (std::vector<std::string>{"anchor"}));
  EXPECT_LT(cf.flipped_score, 0.5);
  // The flipped pair really lacks "anchor".
  EXPECT_EQ(cf.flipped_pair.left.values[0], "filler");
}

TEST(CounterfactualTest, UnreachableFlipReported) {
  TokenWeightMatcher matcher({}, /*bias=*/8.0);  // immovable
  const RecordPair pair = MakePair("a b", "c", "d", "e");
  PairTokenView view(AnonymousSchema(pair), Tokenizer(), pair);
  std::vector<ExplanationUnit> units(1);
  units[0].member_indices = {0};
  units[0].weight = 1.0;
  const auto cf = GenerateCounterfactual(matcher, view, units,
                                         matcher.PredictProba(pair));
  EXPECT_FALSE(cf.found);
  EXPECT_TRUE(cf.removed_units.empty());
  EXPECT_NE(DescribeCounterfactual(cf, 0.5).find("no counterfactual"),
            std::string::npos);
}

TEST(CounterfactualTest, WorksOnCrewClusters) {
  TokenWeightMatcher matcher({{"anchor", 1.2}, {"boost", 1.0}}, -0.8);
  const RecordPair pair =
      MakePair("anchor boost alpha", "beta gamma", "delta eps", "zeta");
  CrewConfig config;
  config.importance.perturbation.num_samples = 128;
  CrewExplainer explainer(nullptr, config);
  auto e = explainer.ExplainClusters(matcher, pair, 3);
  ASSERT_TRUE(e.ok());
  PairTokenView view(AnonymousSchema(pair), Tokenizer(), pair);
  const auto cf =
      GenerateCounterfactual(matcher, view, e->units, e->base_score());
  ASSERT_TRUE(cf.found);
  const std::string description = DescribeCounterfactual(cf, 0.5);
  EXPECT_NE(description.find("flips"), std::string::npos);
  // Verifiable edit: re-scoring the flipped pair reproduces flipped_score.
  EXPECT_DOUBLE_EQ(matcher.PredictProba(cf.flipped_pair), cf.flipped_score);
}

TEST(CounterfactualTest, EmptyUnits) {
  TokenWeightMatcher matcher({});
  const RecordPair pair = MakePair("a", "b", "c", "d");
  PairTokenView view(AnonymousSchema(pair), Tokenizer(), pair);
  const auto cf = GenerateCounterfactual(matcher, view, {}, 0.7);
  EXPECT_FALSE(cf.found);
}

}  // namespace
}  // namespace crew
