#include "crew/core/crew_explainer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "test_util.h"

namespace crew {
namespace {

using testing::MakePair;
using testing::TokenWeightMatcher;

CrewConfig FastConfig() {
  CrewConfig config;
  config.importance.perturbation.num_samples = 128;
  return config;
}

TEST(CrewExplainerTest, ProducesBoundedUnitCount) {
  TokenWeightMatcher matcher({{"anchor", 2.0}, {"poison", -2.0}});
  const RecordPair pair =
      MakePair("anchor alpha beta gamma", "delta epsilon zeta",
               "poison eta theta", "iota kappa lambda mu");
  CrewExplainer explainer(nullptr, FastConfig());
  auto e = explainer.ExplainClusters(matcher, pair, 1);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_GE(e->chosen_k, 2);
  EXPECT_LE(e->chosen_k, FastConfig().max_clusters);
  EXPECT_EQ(static_cast<int>(e->units.size()), e->chosen_k);
}

TEST(CrewExplainerTest, UnitsPartitionAllWords) {
  TokenWeightMatcher matcher({{"anchor", 2.0}});
  const RecordPair pair = MakePair("anchor a b", "c d", "e f", "g");
  CrewExplainer explainer(nullptr, FastConfig());
  auto e = explainer.ExplainClusters(matcher, pair, 2);
  ASSERT_TRUE(e.ok());
  std::set<int> covered;
  for (const auto& unit : e->units) {
    for (int i : unit.member_indices) {
      EXPECT_TRUE(covered.insert(i).second) << "duplicate member " << i;
    }
  }
  EXPECT_EQ(covered.size(), e->words.attributions.size());
}

TEST(CrewExplainerTest, UnitsSortedByMagnitude) {
  TokenWeightMatcher matcher({{"anchor", 2.0}, {"poison", -1.0}});
  const RecordPair pair =
      MakePair("anchor filler more", "poison words", "other side", "here");
  CrewExplainer explainer(nullptr, FastConfig());
  auto e = explainer.ExplainClusters(matcher, pair, 3);
  ASSERT_TRUE(e.ok());
  for (size_t u = 1; u < e->units.size(); ++u) {
    EXPECT_GE(std::fabs(e->units[u - 1].weight),
              std::fabs(e->units[u].weight));
  }
}

TEST(CrewExplainerTest, RescoredTopClusterIsFaithful) {
  // The cluster containing "anchor" must, when deleted, actually drop the
  // score — guaranteed by construction of the oracle matcher.
  TokenWeightMatcher matcher({{"anchor", 3.0}});
  const RecordPair pair =
      MakePair("anchor one two", "three four", "five six", "seven");
  CrewExplainer explainer(nullptr, FastConfig());
  auto e = explainer.ExplainClusters(matcher, pair, 4);
  ASSERT_TRUE(e.ok());
  // Find the unit containing "anchor".
  double anchor_unit_weight = 0.0;
  for (const auto& unit : e->units) {
    for (int i : unit.member_indices) {
      if (e->words.attributions[i].token.text == "anchor") {
        anchor_unit_weight = unit.weight;
      }
    }
  }
  EXPECT_GT(anchor_unit_weight, 0.1);
}

TEST(CrewExplainerTest, AttributeKnowledgeGroupsByColumn) {
  // With only attribute knowledge, clusters must be attribute-pure.
  TokenWeightMatcher matcher({{"anchor", 1.0}});
  const RecordPair pair = MakePair("a b c", "d e f", "g h", "i j");
  CrewConfig config = FastConfig();
  config.affinity = {0.0, 1.0, 0.0};
  config.auto_k = true;
  config.min_clusters = 2;
  config.max_clusters = 2;
  CrewExplainer explainer(nullptr, config);
  auto e = explainer.ExplainClusters(matcher, pair, 5);
  ASSERT_TRUE(e.ok());
  for (const auto& unit : e->units) {
    std::set<int> attrs;
    for (int i : unit.member_indices) {
      attrs.insert(e->words.attributions[i].token.attribute);
    }
    EXPECT_EQ(attrs.size(), 1u);
  }
}

TEST(CrewExplainerTest, FixedKWhenAutoOff) {
  TokenWeightMatcher matcher({});
  const RecordPair pair = MakePair("a b c d", "e f g h", "i j", "k l");
  CrewConfig config = FastConfig();
  config.auto_k = false;
  config.max_clusters = 3;
  CrewExplainer explainer(nullptr, config);
  auto e = explainer.ExplainClusters(matcher, pair, 6);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->chosen_k, 3);
}

TEST(CrewExplainerTest, WordInterfaceSharesClusterWeight) {
  TokenWeightMatcher matcher({{"anchor", 2.0}});
  const RecordPair pair = MakePair("anchor b", "c d", "e f", "g h");
  CrewExplainer explainer(nullptr, FastConfig());
  auto clusters = explainer.ExplainClusters(matcher, pair, 7);
  auto words = explainer.Explain(matcher, pair, 7);
  ASSERT_TRUE(clusters.ok() && words.ok());
  // Every word's weight equals its cluster weight / cluster size.
  for (const auto& unit : clusters->units) {
    const double share = unit.weight / unit.member_indices.size();
    for (int i : unit.member_indices) {
      EXPECT_NEAR(words->attributions[i].weight, share, 1e-9);
    }
  }
}

TEST(CrewExplainerTest, DeterministicGivenSeed) {
  TokenWeightMatcher matcher({{"anchor", 1.5}});
  const RecordPair pair = MakePair("anchor b c", "d e", "f g", "h");
  CrewExplainer explainer(nullptr, FastConfig());
  auto a = explainer.ExplainClusters(matcher, pair, 11);
  auto b = explainer.ExplainClusters(matcher, pair, 11);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->units.size(), b->units.size());
  for (size_t u = 0; u < a->units.size(); ++u) {
    EXPECT_DOUBLE_EQ(a->units[u].weight, b->units[u].weight);
    EXPECT_EQ(a->units[u].member_indices, b->units[u].member_indices);
  }
}

TEST(CrewExplainerTest, EmptyPair) {
  TokenWeightMatcher matcher({});
  const RecordPair pair = MakePair("", "", "", "");
  CrewExplainer explainer(nullptr, FastConfig());
  auto e = explainer.ExplainClusters(matcher, pair, 1);
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e->units.empty());
  EXPECT_EQ(e->chosen_k, 0);
}

TEST(CrewExplainerTest, SumOfMembersWhenRescoreOff) {
  TokenWeightMatcher matcher({{"anchor", 2.0}});
  const RecordPair pair = MakePair("anchor b", "c", "d e", "f");
  CrewConfig config = FastConfig();
  config.rescore_clusters = false;
  CrewExplainer explainer(nullptr, config);
  auto e = explainer.ExplainClusters(matcher, pair, 3);
  ASSERT_TRUE(e.ok());
  for (const auto& unit : e->units) {
    double sum = 0.0;
    for (int i : unit.member_indices) {
      sum += e->words.attributions[i].weight;
    }
    EXPECT_NEAR(unit.weight, sum, 1e-9);
  }
}

TEST(ClusterExplanationTest, ToStringMentionsUnits) {
  TokenWeightMatcher matcher({{"anchor", 2.0}});
  const RecordPair pair = MakePair("anchor b", "c", "d", "e");
  CrewExplainer explainer(nullptr, FastConfig());
  auto e = explainer.ExplainClusters(matcher, pair, 8);
  ASSERT_TRUE(e.ok());
  const std::string text = e->ToString();
  EXPECT_NE(text.find("prediction:"), std::string::npos);
  EXPECT_NE(text.find("anchor"), std::string::npos);
}

TEST(SingletonUnitsTest, OnePerWordSortedByMagnitude) {
  WordExplanation words;
  TokenRef t;
  t.text = "small";
  words.attributions.push_back({t, 0.1});
  t.text = "big";
  words.attributions.push_back({t, -2.0});
  const auto units = SingletonUnits(words);
  ASSERT_EQ(units.size(), 2u);
  EXPECT_EQ(units[0].label, "big");
  EXPECT_EQ(units[0].member_indices, (std::vector<int>{1}));
  EXPECT_EQ(units[1].label, "small");
}

TEST(MakeUnitLabelTest, TopThreeByMagnitude) {
  WordExplanation words;
  for (const auto& [text, weight] :
       std::vector<std::pair<std::string, double>>{
           {"w1", 0.1}, {"w2", 5.0}, {"w3", -3.0}, {"w4", 1.0}}) {
    TokenRef t;
    t.text = text;
    words.attributions.push_back({t, weight});
  }
  EXPECT_EQ(MakeUnitLabel(words, {0, 1, 2, 3}), "w2 + w3 + w4");
  EXPECT_EQ(MakeUnitLabel(words, {0}), "w1");
}

}  // namespace
}  // namespace crew
