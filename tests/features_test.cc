#include "crew/model/features.h"

#include <gtest/gtest.h>

namespace crew {
namespace {

Schema MakeSchema() {
  Schema s;
  s.AddAttribute("name", AttributeType::kText);
  s.AddAttribute("price", AttributeType::kNumeric);
  return s;
}

RecordPair MakePair(const std::string& lname, const std::string& lprice,
                    const std::string& rname, const std::string& rprice) {
  RecordPair p;
  p.left.values = {lname, lprice};
  p.right.values = {rname, rprice};
  return p;
}

TEST(FeaturesTest, CountMatchesNames) {
  PairFeaturizer f(MakeSchema(), nullptr);
  EXPECT_EQ(f.FeatureCount(), 2 * 5 + 3);
  EXPECT_EQ(static_cast<int>(f.FeatureNames().size()), f.FeatureCount());
  EXPECT_EQ(f.FeatureNames()[0], "name_jaccard");
  EXPECT_EQ(f.FeatureNames().back(), "log_length_ratio");
}

TEST(FeaturesTest, IdenticalPairScoresHigh) {
  PairFeaturizer f(MakeSchema(), nullptr);
  const auto x = f.Extract(
      MakePair("acme router", "99.50", "acme router", "99.50"));
  // jaccard, overlap, monge-elkan for "name" are all 1.
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 1.0);
  EXPECT_DOUBLE_EQ(x[2], 1.0);
}

TEST(FeaturesTest, DisjointPairScoresLow) {
  PairFeaturizer f(MakeSchema(), nullptr);
  const auto x =
      f.Extract(MakePair("acme router", "10", "zeta blender", "900"));
  EXPECT_DOUBLE_EQ(x[0], 0.0);  // name jaccard
  EXPECT_LT(x[5 + 4], 0.1);     // price typed sim (numeric, far apart)
}

TEST(FeaturesTest, NumericAttributeUsesRelativeSimilarity) {
  PairFeaturizer f(MakeSchema(), nullptr);
  const auto near = f.Extract(MakePair("x", "100", "x", "99"));
  const auto far = f.Extract(MakePair("x", "100", "x", "10"));
  const int price_typed = 5 + 4;
  EXPECT_GT(near[price_typed], far[price_typed]);
}

TEST(FeaturesTest, TokenRemovalChangesFeatures) {
  // The property perturbation explainers rely on.
  PairFeaturizer f(MakeSchema(), nullptr);
  const auto full =
      f.Extract(MakePair("acme super router", "5", "acme super router", "5"));
  const auto dropped =
      f.Extract(MakePair("acme router", "5", "acme super router", "5"));
  EXPECT_NE(full[0], dropped[0]);
}

TEST(FeaturesTest, EmbeddingFeatureZeroWithoutStore) {
  PairFeaturizer f(MakeSchema(), nullptr);
  const auto x = f.Extract(MakePair("a", "1", "a", "1"));
  EXPECT_DOUBLE_EQ(x[3], 0.0);  // name_emb_cosine
}

TEST(FeatureScalerTest, StandardizesColumns) {
  FeatureScaler scaler;
  scaler.Fit({{0.0, 10.0}, {2.0, 10.0}, {4.0, 10.0}});
  const la::Vec t = scaler.Transform({2.0, 10.0});
  EXPECT_NEAR(t[0], 0.0, 1e-12);  // at the mean
  EXPECT_NEAR(t[1], 0.0, 1e-12);  // constant column passes through as 0
  const la::Vec hi = scaler.Transform({4.0, 10.0});
  EXPECT_GT(hi[0], 1.0);  // above mean, in stddev units
  EXPECT_TRUE(scaler.fitted());
}

TEST(FeatureScalerTest, UnfittedIsDetectable) {
  FeatureScaler scaler;
  EXPECT_FALSE(scaler.fitted());
}

}  // namespace
}  // namespace crew
