#include "crew/explain/perturbation.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace crew {
namespace {

using testing::MakePair;
using testing::TokenWeightMatcher;

TEST(PerturbationTest, MasksRespectPerturbableSet) {
  const RecordPair pair = MakePair("a b c", "", "x y", "");
  PairTokenView view(AnonymousSchema(pair), Tokenizer(), pair);
  TokenWeightMatcher matcher({{"a", 1.0}});
  Rng rng(1);
  PerturbationConfig config;
  config.num_samples = 64;
  const std::vector<int> perturbable = {0, 1};  // only "a" and "b"
  const auto samples =
      SampleTokenDrops(matcher, view, perturbable, config, rng);
  ASSERT_EQ(samples.size(), 64u);
  for (const auto& s : samples) {
    // Indices outside the perturbable set are always kept.
    EXPECT_TRUE(s.keep[2]);
    EXPECT_TRUE(s.keep[3]);
    EXPECT_TRUE(s.keep[4]);
    // At least one perturbable token removed.
    EXPECT_TRUE(!s.keep[0] || !s.keep[1]);
    EXPECT_GT(s.kernel_weight, 0.0);
    EXPECT_LE(s.kernel_weight, 1.0);
    EXPECT_GE(s.score, 0.0);
    EXPECT_LE(s.score, 1.0);
  }
}

TEST(PerturbationTest, EmptyPerturbableGivesNoSamples) {
  const RecordPair pair = MakePair("a", "", "b", "");
  PairTokenView view(AnonymousSchema(pair), Tokenizer(), pair);
  TokenWeightMatcher matcher({});
  Rng rng(2);
  PerturbationConfig config;
  EXPECT_TRUE(SampleTokenDrops(matcher, view, {}, config, rng).empty());
}

TEST(PerturbationTest, KernelWeightDecreasesWithRemovals) {
  const RecordPair pair = MakePair("a b c d e f", "", "", "");
  PairTokenView view(AnonymousSchema(pair), Tokenizer(), pair);
  TokenWeightMatcher matcher({});
  Rng rng(3);
  PerturbationConfig config;
  config.num_samples = 200;
  std::vector<int> all = {0, 1, 2, 3, 4, 5};
  const auto samples = SampleTokenDrops(matcher, view, all, config, rng);
  for (const auto& s : samples) {
    int removed = 0;
    for (bool k : s.keep) {
      if (!k) ++removed;
    }
    const double frac = removed / 6.0;
    EXPECT_NEAR(s.kernel_weight,
                std::exp(-frac * frac / (0.75 * 0.75)), 1e-12);
  }
}

TEST(SurrogateTest, RecoversPlantedLinearModel) {
  // Matcher = sigmoid(2*a - 1*b + 0*c); with small logit range the local
  // linear surrogate's coefficients must preserve the ordering a > c > b.
  const RecordPair pair = MakePair("aaa bbb ccc", "", "", "");
  PairTokenView view(AnonymousSchema(pair), Tokenizer(), pair);
  TokenWeightMatcher matcher({{"aaa", 2.0}, {"bbb", -1.0}});
  Rng rng(4);
  PerturbationConfig config;
  config.num_samples = 256;
  const std::vector<int> perturbable = {0, 1, 2};
  const auto samples =
      SampleTokenDrops(matcher, view, perturbable, config, rng);
  SurrogateFit fit;
  ASSERT_TRUE(
      FitKeepMaskSurrogate(samples, perturbable, 0.01, &fit).ok());
  ASSERT_EQ(fit.coefficients.size(), 3u);
  EXPECT_GT(fit.coefficients[0], fit.coefficients[2]);
  EXPECT_GT(fit.coefficients[2], fit.coefficients[1]);
  EXPECT_GT(fit.coefficients[0], 0.0);
  EXPECT_LT(fit.coefficients[1], 0.0);
  EXPECT_GT(fit.r2, 0.5);
}

TEST(SurrogateTest, ErrorsOnEmptyInput) {
  SurrogateFit fit;
  EXPECT_FALSE(FitKeepMaskSurrogate({}, {0}, 1.0, &fit).ok());
  PerturbationSample s;
  s.keep = {true};
  EXPECT_FALSE(FitKeepMaskSurrogate({s}, {}, 1.0, &fit).ok());
}

}  // namespace
}  // namespace crew
