#include "crew/eval/table.h"

#include <gtest/gtest.h>

namespace crew {
namespace {

TEST(TableTest, AlignedOutput) {
  Table t({"name", "f1"});
  t.AddRow({"logistic", "0.95"});
  t.AddRow({"mlp", "0.9"});
  const std::string out = t.ToAligned();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("logistic  0.95"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2);
}

TEST(TableTest, MarkdownOutput) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToMarkdown(), "| a | b |\n| --- | --- |\n| 1 | 2 |\n");
}

TEST(TableTest, TsvOutput) {
  Table t({"a", "b"});
  t.AddRow({"x", "y"});
  EXPECT_EQ(t.ToTsv(), "a\tb\nx\ty\n");
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::Num(1.23456), "1.235");
  EXPECT_EQ(Table::Num(1.23456, 1), "1.2");
  EXPECT_EQ(Table::Num(-0.5, 2), "-0.50");
}

TEST(TableDeathTest, RowArityMismatchAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "CHECK failed");
}

}  // namespace
}  // namespace crew
