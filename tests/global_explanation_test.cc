#include "crew/eval/global_explanation.h"

#include <gtest/gtest.h>

#include "crew/explain/lime.h"
#include "test_util.h"

namespace crew {
namespace {

using testing::TokenWeightMatcher;

Dataset RepeatedTokenDataset() {
  Schema s;
  s.AddAttribute("a", AttributeType::kText);
  s.AddAttribute("b", AttributeType::kText);
  Dataset d(s);
  for (int i = 0; i < 6; ++i) {
    RecordPair p;
    p.left.values = {"driver token" + std::to_string(i), "junk"};
    p.right.values = {"driver other" + std::to_string(i), "junk"};
    p.label = i % 2;
    d.Add(p);
  }
  return d;
}

TEST(GlobalExplanationTest, DecisiveTokenRisesToTop) {
  const Dataset dataset = RepeatedTokenDataset();
  TokenWeightMatcher matcher({{"driver", 1.2}}, -0.5);
  LimeConfig config;
  config.perturbation.num_samples = 128;
  LimeExplainer lime(config);
  std::vector<int> all = {0, 1, 2, 3, 4, 5};
  auto global = BuildGlobalExplanation(lime, matcher, dataset, all, 7);
  ASSERT_TRUE(global.ok());
  EXPECT_EQ(global->instances, 6);
  ASSERT_FALSE(global->tokens.empty());
  EXPECT_EQ(global->tokens[0].token, "driver");
  EXPECT_GT(global->tokens[0].mean_weight, 0.0);
  EXPECT_EQ(global->tokens[0].occurrences, 12);  // both sides x 6 pairs
}

TEST(GlobalExplanationTest, AttributeSharesSumToOne) {
  const Dataset dataset = RepeatedTokenDataset();
  TokenWeightMatcher matcher({{"driver", 1.0}});
  LimeConfig config;
  config.perturbation.num_samples = 64;
  LimeExplainer lime(config);
  auto global =
      BuildGlobalExplanation(lime, matcher, dataset, {0, 1, 2}, 7);
  ASSERT_TRUE(global.ok());
  double total_share = 0.0;
  for (const auto& attr : global->attributes) total_share += attr.share;
  EXPECT_NEAR(total_share, 1.0, 1e-9);
  // Attribute 0 holds the decisive token: it dominates.
  ASSERT_FALSE(global->attributes.empty());
  EXPECT_EQ(global->attributes[0].name, "a");
  EXPECT_GT(global->attributes[0].share, 0.5);
}

TEST(GlobalExplanationTest, MinOccurrencesFiltersRareTokens) {
  const Dataset dataset = RepeatedTokenDataset();
  TokenWeightMatcher matcher({{"driver", 1.0}});
  LimeConfig config;
  config.perturbation.num_samples = 64;
  LimeExplainer lime(config);
  auto strict = BuildGlobalExplanation(lime, matcher, dataset, {0, 1, 2}, 7,
                                       /*min_occurrences=*/100);
  ASSERT_TRUE(strict.ok());
  EXPECT_TRUE(strict->tokens.empty());
}

TEST(GlobalExplanationTest, EmptyInstanceList) {
  const Dataset dataset = RepeatedTokenDataset();
  TokenWeightMatcher matcher({});
  LimeExplainer lime;
  auto global = BuildGlobalExplanation(lime, matcher, dataset, {}, 7);
  ASSERT_TRUE(global.ok());
  EXPECT_EQ(global->instances, 0);
  EXPECT_TRUE(global->tokens.empty());
}

}  // namespace
}  // namespace crew
