#include "crew/eval/significance.h"

#include <gtest/gtest.h>

#include "crew/common/rng.h"

namespace crew {
namespace {

TEST(SignificanceTest, ClearWinnerIsSignificant) {
  Rng rng(1);
  std::vector<double> a, b;
  for (int i = 0; i < 30; ++i) {
    const double base = rng.Uniform();
    a.push_back(base + 0.3 + rng.Normal(0.0, 0.02));
    b.push_back(base);
  }
  auto cmp = PairedBootstrap(a, b);
  ASSERT_TRUE(cmp.ok());
  EXPECT_NEAR(cmp->mean_difference, 0.3, 0.05);
  EXPECT_GT(cmp->ci_low, 0.0);
  EXPECT_TRUE(cmp->SignificantAt(0.05));
  EXPECT_LT(cmp->p_value, 0.01);
}

TEST(SignificanceTest, NoDifferenceIsNotSignificant) {
  Rng rng(2);
  std::vector<double> a, b;
  for (int i = 0; i < 30; ++i) {
    a.push_back(rng.Normal());
    b.push_back(rng.Normal());
  }
  auto cmp = PairedBootstrap(a, b);
  ASSERT_TRUE(cmp.ok());
  EXPECT_LE(cmp->ci_low, 0.0);
  EXPECT_GE(cmp->ci_high, 0.0);
  EXPECT_FALSE(cmp->SignificantAt(0.01));
}

TEST(SignificanceTest, DeterministicGivenSeed) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> b = {0.5, 2.5, 2.0, 3.0};
  auto x = PairedBootstrap(a, b, 500, 7);
  auto y = PairedBootstrap(a, b, 500, 7);
  ASSERT_TRUE(x.ok() && y.ok());
  EXPECT_DOUBLE_EQ(x->p_value, y->p_value);
  EXPECT_DOUBLE_EQ(x->ci_low, y->ci_low);
}

TEST(SignificanceTest, CiContainsMeanDifference) {
  std::vector<double> a = {0.9, 0.8, 0.7, 0.95, 0.85};
  std::vector<double> b = {0.5, 0.6, 0.55, 0.7, 0.6};
  auto cmp = PairedBootstrap(a, b);
  ASSERT_TRUE(cmp.ok());
  EXPECT_LE(cmp->ci_low, cmp->mean_difference);
  EXPECT_GE(cmp->ci_high, cmp->mean_difference);
}

TEST(SignificanceTest, RejectsBadInput) {
  EXPECT_FALSE(PairedBootstrap({1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(PairedBootstrap({1.0}, {1.0}).ok());
  EXPECT_FALSE(PairedBootstrap({1.0, 2.0}, {1.0, 2.0}, 5).ok());
}

}  // namespace
}  // namespace crew
