#include "crew/eval/experiment.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "crew/data/generator.h"
#include "crew/explain/lime.h"
#include "crew/explain/random_explainer.h"
#include "test_util.h"

namespace crew {
namespace {

using testing::MakePair;
using testing::TokenWeightMatcher;

Dataset SmallDataset() {
  GeneratorConfig config;
  config.num_matches = 40;
  config.num_nonmatches = 40;
  config.seed = 3;
  auto d = GenerateDataset(config);
  CREW_CHECK(d.ok());
  return std::move(d.value());
}

TEST(ExplainerSuiteTest, CanonicalLineup) {
  ExplainerSuiteConfig config;
  config.num_samples = 16;
  const auto suite = BuildExplainerSuite(nullptr, SmallDataset(), config);
  std::vector<std::string> names;
  for (const auto& e : suite) names.push_back(e->Name());
  EXPECT_EQ(names,
            (std::vector<std::string>{"lime", "mojito_drop", "mojito_copy",
                                      "landmark", "lemon", "kernel_shap",
                                      "certa", "random", "wym", "crew"}));
}

TEST(ExplainerSuiteTest, RandomCanBeExcluded) {
  ExplainerSuiteConfig config;
  config.include_random = false;
  const auto suite = BuildExplainerSuite(nullptr, SmallDataset(), config);
  for (const auto& e : suite) EXPECT_NE(e->Name(), "random");
  EXPECT_EQ(suite.size(), 9u);
}

TEST(SelectExplainInstancesTest, BalancedByPrediction) {
  const Dataset dataset = SmallDataset();
  // Matcher that follows the gold label via token overlap is overkill;
  // instead use an oracle that calls everything a match, then one that
  // splits.
  TokenWeightMatcher all_match({}, /*bias=*/5.0);
  Rng rng(1);
  const auto idx = SelectExplainInstances(all_match, dataset, 10, rng);
  EXPECT_EQ(idx.size(), 10u);
  std::set<int> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(SelectExplainInstancesTest, CapsAtDatasetSize) {
  const Dataset dataset = SmallDataset();
  TokenWeightMatcher matcher({}, 5.0);
  Rng rng(2);
  const auto idx = SelectExplainInstances(matcher, dataset, 10000, rng);
  EXPECT_EQ(static_cast<int>(idx.size()), dataset.size());
}

TEST(SelectExplainInstancesTest, BackfillsFromMatchesWhenNonmatchesRunShort) {
  // All pairs predicted match: the non-match side is empty, so after the
  // balanced half-draw the match side must top the selection up to n (the
  // historical implementation only backfilled in one direction and could
  // silently return fewer than n here).
  const Dataset dataset = SmallDataset();
  TokenWeightMatcher all_match({}, /*bias=*/5.0);
  Rng rng(3);
  const auto idx = SelectExplainInstances(all_match, dataset, 12, rng);
  EXPECT_EQ(idx.size(), 12u);
  std::set<int> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 12u);
}

TEST(SelectExplainInstancesTest, BackfillsFromNonmatchesWhenMatchesRunShort) {
  const Dataset dataset = SmallDataset();
  TokenWeightMatcher all_nonmatch({}, /*bias=*/-5.0);
  Rng rng(3);
  const auto idx = SelectExplainInstances(all_nonmatch, dataset, 12, rng);
  EXPECT_EQ(idx.size(), 12u);
  std::set<int> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 12u);
}

TEST(SelectExplainInstancesTest, BalancedWhenBothSidesAmple) {
  const Dataset dataset = SmallDataset();
  // Real split: some pairs contain the decisive tokens, some do not.
  TokenWeightMatcher matcher({{"vortexa", 1.0}, {"lumenix", 0.7}}, -0.2);
  Rng rng(3);
  const int n = 8;
  const auto idx = SelectExplainInstances(matcher, dataset, n, rng);
  ASSERT_EQ(idx.size(), static_cast<size_t>(n));
  int matches = 0;
  for (int i : idx) {
    if (matcher.Predict(dataset.pair(i)) == 1) ++matches;
  }
  // When both prediction classes have at least n/2 members the draw is
  // exactly half and half.
  EXPECT_EQ(matches, n / 2);
}

TEST(ExplainAsUnitsTest, CrewYieldsClustersOthersSingletons) {
  const Dataset support = SmallDataset();
  ExplainerSuiteConfig config;
  config.num_samples = 32;
  const auto suite = BuildExplainerSuite(nullptr, support, config);
  TokenWeightMatcher matcher({{"anchor", 2.0}});
  // "anchor" and "b" occur on both sides, so WYM can form paired units.
  const RecordPair pair = MakePair("anchor a b c", "d e", "anchor b h", "i");
  for (const auto& explainer : suite) {
    auto result = ExplainAsUnits(*explainer, matcher, pair, 4);
    ASSERT_TRUE(result.ok()) << explainer->Name();
    const auto& [words, units] = result.value();
    if (explainer->Name() == "crew" || explainer->Name() == "wym") {
      EXPECT_LT(units.size(), words.attributions.size())
          << explainer->Name();
    } else {
      EXPECT_EQ(units.size(), words.attributions.size());
      for (const auto& u : units) EXPECT_EQ(u.member_indices.size(), 1u);
    }
  }
}

TEST(EvaluateExplainerTest, AggregatesAreFinite) {
  const Dataset dataset = SmallDataset();
  TokenWeightMatcher matcher({{"vortexa", 1.0}, {"lumenix", 0.7}}, -0.2);
  ExplainerSuiteConfig config;
  config.num_samples = 32;
  const auto suite = BuildExplainerSuite(nullptr, dataset, config);
  Rng rng(5);
  const auto idx = SelectExplainInstances(matcher, dataset, 4, rng);
  ASSERT_FALSE(idx.empty());
  for (const auto& explainer : suite) {
    auto agg =
        EvaluateExplainerOnDataset(*explainer, matcher, dataset, idx,
                                   nullptr, 9);
    ASSERT_TRUE(agg.ok()) << explainer->Name();
    EXPECT_EQ(agg->instances, static_cast<int>(idx.size()));
    EXPECT_GE(agg->total_units, 1.0);
    EXPECT_TRUE(std::isfinite(agg->aopc));
    EXPECT_TRUE(std::isfinite(agg->comprehensiveness_at_1));
    EXPECT_GE(agg->decision_flip_rate, 0.0);
    EXPECT_LE(agg->decision_flip_rate, 1.0);
  }
}

TEST(EvaluateExplainerTest, OracleBeatsRandomOnAopc) {
  // On the oracle matcher, LIME's AOPC must dominate the random baseline.
  const Dataset dataset = SmallDataset();
  TokenWeightMatcher matcher({{"vortexa", 2.0}, {"qorvex", 1.5}}, -0.5);
  Rng rng(6);
  const auto idx = SelectExplainInstances(matcher, dataset, 8, rng);
  LimeConfig lime_config;
  lime_config.perturbation.num_samples = 128;
  LimeExplainer lime(lime_config);
  RandomExplainer random;
  auto lime_agg =
      EvaluateExplainerOnDataset(lime, matcher, dataset, idx, nullptr, 11);
  auto random_agg = EvaluateExplainerOnDataset(random, matcher, dataset, idx,
                                               nullptr, 11);
  ASSERT_TRUE(lime_agg.ok() && random_agg.ok());
  EXPECT_GE(lime_agg->aopc, random_agg->aopc);
}

}  // namespace
}  // namespace crew
