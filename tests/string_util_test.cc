#include "crew/common/string_util.h"

#include <gtest/gtest.h>

namespace crew {
namespace {

TEST(StringUtilTest, AsciiLower) {
  EXPECT_EQ(AsciiLower("HeLLo 123!"), "hello 123!");
  EXPECT_EQ(AsciiLower(""), "");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  foo \t bar\nbaz  "),
            (std::vector<std::string>{"foo", "bar", "baz"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  abc  "), "abc");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("left_name", "left_"));
  EXPECT_FALSE(StartsWith("lef", "left_"));
  EXPECT_TRUE(EndsWith("foo.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
}

TEST(StringUtilTest, StrPrintfFormats) {
  EXPECT_EQ(StrPrintf("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StrPrintf("%s", ""), "");
  // Long output exceeding any small static buffer.
  const std::string big(500, 'a');
  EXPECT_EQ(StrPrintf("%s", big.c_str()).size(), 500u);
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("  -1e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("12x", &v));
  EXPECT_FALSE(ParseDouble("x", &v));
}

TEST(StringUtilTest, ParseInt) {
  int v = 0;
  EXPECT_TRUE(ParseInt("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt(" -7 ", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt("4.5", &v));
  EXPECT_FALSE(ParseInt("", &v));
  EXPECT_FALSE(ParseInt("99999999999999", &v));  // overflow
}

}  // namespace
}  // namespace crew
