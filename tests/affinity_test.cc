#include "crew/core/affinity.h"

#include <gtest/gtest.h>

namespace crew {
namespace {

WordAttribution MakeAttr(const std::string& text, int attribute,
                         double weight, Side side = Side::kLeft) {
  WordAttribution a;
  a.token.text = text;
  a.token.attribute = attribute;
  a.token.side = side;
  a.weight = weight;
  return a;
}

EmbeddingStore TwoWordStore() {
  Vocabulary vocab;
  vocab.Add("close1");
  vocab.Add("close2");
  vocab.Add("far");
  la::Matrix vectors(3, 2);
  vectors.At(0, 0) = 1.0;                       // close1 -> (1, 0)
  vectors.At(1, 0) = 0.95;
  vectors.At(1, 1) = 0.05;                      // close2 near close1
  vectors.At(2, 1) = 1.0;                       // far orthogonal
  return EmbeddingStore(std::move(vocab), std::move(vectors));
}

TEST(AffinityTest, AttributeOnlyKnowledge) {
  AffinityWeights w{0.0, 1.0, 0.0};
  const std::vector<WordAttribution> attrs = {
      MakeAttr("a", 0, 1.0), MakeAttr("b", 0, -5.0), MakeAttr("c", 1, 1.0)};
  const la::Matrix d = BuildWordDistanceMatrix(attrs, nullptr, w);
  EXPECT_DOUBLE_EQ(d.At(0, 1), 0.0);  // same attribute
  EXPECT_DOUBLE_EQ(d.At(0, 2), 1.0);  // different attribute
  EXPECT_DOUBLE_EQ(d.At(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(d.At(2, 0), d.At(0, 2));  // symmetry
  EXPECT_DOUBLE_EQ(d.At(0, 0), 0.0);
}

TEST(AffinityTest, ImportanceOnlyKnowledge) {
  AffinityWeights w{0.0, 0.0, 1.0};
  const std::vector<WordAttribution> attrs = {
      MakeAttr("a", 0, 0.0), MakeAttr("b", 1, 1.0), MakeAttr("c", 2, 2.0)};
  const la::Matrix d = BuildWordDistanceMatrix(attrs, nullptr, w);
  EXPECT_DOUBLE_EQ(d.At(0, 2), 1.0);  // full range apart
  EXPECT_DOUBLE_EQ(d.At(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(d.At(1, 2), 0.5);
}

TEST(AffinityTest, SemanticOnlyKnowledge) {
  const EmbeddingStore store = TwoWordStore();
  AffinityWeights w{1.0, 0.0, 0.0};
  const std::vector<WordAttribution> attrs = {MakeAttr("close1", 0, 1.0),
                                              MakeAttr("close2", 1, 2.0),
                                              MakeAttr("far", 2, 3.0)};
  const la::Matrix d = BuildWordDistanceMatrix(attrs, &store, w);
  EXPECT_LT(d.At(0, 1), d.At(0, 2));
  EXPECT_LT(d.At(0, 1), 0.1);
}

TEST(AffinityTest, IdenticalTokensSemanticZeroEvenOov) {
  AffinityWeights w{1.0, 0.0, 0.0};
  const std::vector<WordAttribution> attrs = {MakeAttr("oovword", 0, 1.0),
                                              MakeAttr("oovword", 1, 2.0)};
  const la::Matrix d = BuildWordDistanceMatrix(attrs, nullptr, w);
  EXPECT_DOUBLE_EQ(d.At(0, 1), 0.0);
}

TEST(AffinityTest, DissimilarOovPairsGetNeutralSemanticDistance) {
  AffinityWeights w{1.0, 0.0, 0.0};
  const std::vector<WordAttribution> attrs = {MakeAttr("zqxjv", 0, 1.0),
                                              MakeAttr("bworm", 1, 2.0)};
  const la::Matrix d = BuildWordDistanceMatrix(attrs, nullptr, w);
  EXPECT_DOUBLE_EQ(d.At(0, 1), 0.5);
}

TEST(AffinityTest, OovTypoVariantsFallBackToSurfaceSimilarity) {
  // Neither token has an embedding; the Jaro-Winkler fallback must still
  // put the typo pair close so they can share a cluster.
  AffinityWeights w{1.0, 0.0, 0.0};
  const std::vector<WordAttribution> attrs = {
      MakeAttr("corporation", 0, 1.0), MakeAttr("corporaiton", 1, 2.0)};
  const la::Matrix d = BuildWordDistanceMatrix(attrs, nullptr, w);
  EXPECT_LT(d.At(0, 1), 0.1);
}

TEST(AffinityTest, CombinedIsWeightedMean) {
  const EmbeddingStore store = TwoWordStore();
  const std::vector<WordAttribution> attrs = {MakeAttr("close1", 0, 0.0),
                                              MakeAttr("far", 1, 1.0)};
  AffinityWeights sem{1.0, 0.0, 0.0}, att{0.0, 1.0, 0.0}, imp{0.0, 0.0, 1.0};
  AffinityWeights all{1.0, 1.0, 1.0};
  const double ds = BuildWordDistanceMatrix(attrs, &store, sem).At(0, 1);
  const double da = BuildWordDistanceMatrix(attrs, &store, att).At(0, 1);
  const double di = BuildWordDistanceMatrix(attrs, &store, imp).At(0, 1);
  const double dc = BuildWordDistanceMatrix(attrs, &store, all).At(0, 1);
  EXPECT_NEAR(dc, (ds + da + di) / 3.0, 1e-12);
}

TEST(AffinityTest, ZeroWeightsGiveZeroDistance) {
  AffinityWeights w{0.0, 0.0, 0.0};
  const std::vector<WordAttribution> attrs = {MakeAttr("a", 0, 1.0),
                                              MakeAttr("b", 1, 2.0)};
  EXPECT_DOUBLE_EQ(BuildWordDistanceMatrix(attrs, nullptr, w).At(0, 1), 0.0);
}

TEST(AffinityTest, DistancesInUnitInterval) {
  const EmbeddingStore store = TwoWordStore();
  const std::vector<WordAttribution> attrs = {
      MakeAttr("close1", 0, -3.0), MakeAttr("close2", 1, 0.0),
      MakeAttr("far", 2, 5.0), MakeAttr("oov", 0, 1.0)};
  const la::Matrix d =
      BuildWordDistanceMatrix(attrs, &store, AffinityWeights{});
  for (int i = 0; i < d.rows(); ++i) {
    for (int j = 0; j < d.cols(); ++j) {
      EXPECT_GE(d.At(i, j), 0.0);
      EXPECT_LE(d.At(i, j), 1.0);
    }
  }
}

}  // namespace
}  // namespace crew
