#include "crew/explain/serialize.h"

#include <gtest/gtest.h>

#include "crew/core/crew_explainer.h"
#include "test_util.h"

namespace crew {
namespace {

using testing::MakePair;
using testing::TokenWeightMatcher;

TEST(JsonEscapeTest, SpecialCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape(std::string("ctl\x01x")), "ctl\\u0001x");
}

TEST(SerializeTest, WordExplanationShape) {
  WordExplanation e;
  e.base_score = 0.75;
  e.surrogate_r2 = 0.5;
  TokenRef t;
  t.text = "acme";
  t.side = Side::kRight;
  t.attribute = 2;
  t.position = 1;
  e.attributions.push_back({t, -0.25});
  const std::string json = WordExplanationToJson(e);
  EXPECT_NE(json.find("\"base_score\":0.750000"), std::string::npos);
  EXPECT_NE(json.find("\"token\":\"acme\""), std::string::npos);
  EXPECT_NE(json.find("\"side\":\"right\""), std::string::npos);
  EXPECT_NE(json.find("\"attribute\":2"), std::string::npos);
  EXPECT_NE(json.find("\"weight\":-0.250000"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(SerializeTest, ClusterExplanationIncludesUnitsAndWords) {
  TokenWeightMatcher matcher({{"anchor", 2.0}});
  const RecordPair pair = MakePair("anchor beta", "gamma", "delta", "eps");
  CrewConfig config;
  config.importance.perturbation.num_samples = 64;
  CrewExplainer explainer(nullptr, config);
  auto clusters = explainer.ExplainClusters(matcher, pair, 3);
  ASSERT_TRUE(clusters.ok());
  const std::string json = ClusterExplanationToJson(clusters.value());
  EXPECT_NE(json.find("\"units\":["), std::string::npos);
  EXPECT_NE(json.find("\"members\":["), std::string::npos);
  EXPECT_NE(json.find("\"words\":{"), std::string::npos);
  EXPECT_NE(json.find("anchor"), std::string::npos);
}

TEST(SerializeTest, EmptyExplanation) {
  const std::string json = WordExplanationToJson(WordExplanation());
  EXPECT_NE(json.find("\"attributions\":[]"), std::string::npos);
}

}  // namespace
}  // namespace crew
