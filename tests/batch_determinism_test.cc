// Determinism regression tests for the batch scoring engine: every
// explainer must produce bit-identical output whether scoring runs inline
// (threads=1, the legacy path) or through the shared pool (threads=4), and
// Matcher::PredictProbaBatch must agree exactly with the per-pair loop.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "crew/common/rng.h"
#include "crew/common/thread_pool.h"
#include "crew/data/generator.h"
#include "crew/eval/experiment.h"
#include "crew/explain/shap.h"
#include "crew/explain/token_view.h"
#include "crew/model/trainer.h"
#include "test_util.h"

namespace crew {
namespace {

// One small trained pipeline per matcher kind, shared across tests.
const TrainedPipeline& PipelineFor(MatcherKind kind) {
  static auto* pipelines = new std::map<MatcherKind, TrainedPipeline>();
  auto it = pipelines->find(kind);
  if (it == pipelines->end()) {
    GeneratorConfig config;
    config.num_matches = 40;
    config.num_nonmatches = 40;
    auto d = GenerateDataset(config);
    CREW_CHECK(d.ok());
    auto p = TrainPipeline(d.value(), kind, 0.7, 7);
    CREW_CHECK(p.ok());
    it = pipelines->emplace(kind, std::move(p.value())).first;
  }
  return it->second;
}

// Restores the process-wide scoring thread setting on scope exit so a
// failing test cannot leak a non-default setting into later tests.
class ScopedScoringThreads {
 public:
  explicit ScopedScoringThreads(int n) { SetScoringThreads(n); }
  ~ScopedScoringThreads() { SetScoringThreads(0); }
};

TEST(PredictProbaBatchTest, MatchesPerPairLoopForEveryMatcher) {
  for (MatcherKind kind : AllMatcherKinds()) {
    const TrainedPipeline& pipeline = PipelineFor(kind);
    std::vector<RecordPair> pairs;
    for (int i = 0; i < pipeline.test.size(); ++i) {
      pairs.push_back(pipeline.test.pair(i));
    }
    std::vector<double> batch;
    pipeline.matcher->PredictProbaBatch(pairs, &batch);
    ASSERT_EQ(batch.size(), pairs.size()) << MatcherKindName(kind);
    for (size_t i = 0; i < pairs.size(); ++i) {
      // Bit-identical, not approximately equal: the batch path must hoist
      // buffers without changing a single floating-point operation.
      EXPECT_EQ(batch[i], pipeline.matcher->PredictProba(pairs[i]))
          << MatcherKindName(kind) << " pair " << i;
    }
  }
}

TEST(PredictProbaBatchTest, EmptyBatchIsANoOp) {
  const TrainedPipeline& pipeline = PipelineFor(MatcherKind::kLogistic);
  std::vector<double> out(3, 1.0);
  pipeline.matcher->PredictProbaBatch({}, &out);
  EXPECT_TRUE(out.empty());
}

// Every explainer in the line-up (plus KernelSHAP, which the table suite
// omits) must be bit-identical across scoring thread counts.
TEST(BatchDeterminismTest, ExplainersBitIdenticalAcrossThreadCounts) {
  const TrainedPipeline& pipeline = PipelineFor(MatcherKind::kMlp);
  ExplainerSuiteConfig config;
  config.num_samples = 64;
  config.include_random = false;
  auto suite = BuildExplainerSuite(pipeline.embeddings, pipeline.train,
                                   config);
  KernelShapConfig shap;
  shap.num_samples = 64;
  suite.push_back(std::make_unique<KernelShapExplainer>(shap));

  Rng rng(99);
  std::vector<int> instances =
      SelectExplainInstances(*pipeline.matcher, pipeline.test, 2, rng);
  ASSERT_FALSE(instances.empty());

  for (const auto& explainer : suite) {
    for (int idx : instances) {
      const RecordPair& pair = pipeline.test.pair(idx);
      const uint64_t seed = 1234 + idx;
      Result<WordExplanation> serial = [&] {
        ScopedScoringThreads threads(1);
        return explainer->Explain(*pipeline.matcher, pair, seed);
      }();
      Result<WordExplanation> parallel = [&] {
        ScopedScoringThreads threads(4);
        return explainer->Explain(*pipeline.matcher, pair, seed);
      }();
      ASSERT_TRUE(serial.ok() && parallel.ok()) << explainer->Name();
      EXPECT_EQ(serial->base_score, parallel->base_score)
          << explainer->Name();
      EXPECT_EQ(serial->surrogate_r2, parallel->surrogate_r2)
          << explainer->Name();
      ASSERT_EQ(serial->attributions.size(), parallel->attributions.size())
          << explainer->Name();
      for (size_t i = 0; i < serial->attributions.size(); ++i) {
        EXPECT_EQ(serial->attributions[i].weight,
                  parallel->attributions[i].weight)
            << explainer->Name() << " token " << i << " instance " << idx;
      }
    }
  }
}

TEST(BatchDeterminismTest, MatcherBatchBitIdenticalAcrossThreadCounts) {
  // PredictProbaBatch itself never threads (BatchScorer does), but run it
  // under both settings anyway: a regression that made the matcher consult
  // the global setting would surface here.
  for (MatcherKind kind : AllMatcherKinds()) {
    const TrainedPipeline& pipeline = PipelineFor(kind);
    std::vector<RecordPair> pairs;
    for (int i = 0; i < pipeline.test.size(); ++i) {
      pairs.push_back(pipeline.test.pair(i));
    }
    std::vector<double> serial, parallel;
    {
      ScopedScoringThreads threads(1);
      pipeline.matcher->PredictProbaBatch(pairs, &serial);
    }
    {
      ScopedScoringThreads threads(4);
      pipeline.matcher->PredictProbaBatch(pairs, &parallel);
    }
    EXPECT_EQ(serial, parallel) << MatcherKindName(kind);
  }
}

TEST(MaterializeIntoTest, MatchesMaterializeUnderBufferReuse) {
  const RecordPair pair = testing::MakePair(
      "vortexa wireless headphones mx", "graphite 128gb",
      "vortexa headphones mx4821", "silver 64gb");
  Tokenizer tokenizer;
  PairTokenView view(AnonymousSchema(pair), tokenizer, pair);
  ASSERT_GT(view.size(), 0);

  Rng rng(5);
  RecordPair reused;  // deliberately reused across iterations
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<bool> keep(view.size());
    for (int i = 0; i < view.size(); ++i) keep[i] = rng.Bernoulli(0.5);
    const RecordPair fresh = view.Materialize(keep);
    view.MaterializeInto(keep, &reused);
    EXPECT_EQ(fresh.left.values, reused.left.values) << "trial " << trial;
    EXPECT_EQ(fresh.right.values, reused.right.values) << "trial " << trial;
  }
}

TEST(MaterializeIntoTest, InjectionVariantMatchesToo) {
  const RecordPair pair = testing::MakePair(
      "alpha beta gamma", "delta", "epsilon zeta", "eta theta");
  Tokenizer tokenizer;
  PairTokenView view(AnonymousSchema(pair), tokenizer, pair);
  ASSERT_GT(view.size(), 0);

  Rng rng(6);
  RecordPair reused;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<bool> keep(view.size()), inject(view.size());
    for (int i = 0; i < view.size(); ++i) {
      keep[i] = rng.Bernoulli(0.7);
      inject[i] = rng.Bernoulli(0.3);
    }
    const RecordPair fresh = view.MaterializeWithInjection(keep, inject);
    view.MaterializeWithInjectionInto(keep, inject, &reused);
    EXPECT_EQ(fresh.left.values, reused.left.values) << "trial " << trial;
    EXPECT_EQ(fresh.right.values, reused.right.values) << "trial " << trial;
  }
}

}  // namespace
}  // namespace crew
