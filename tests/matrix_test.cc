#include "crew/la/matrix.h"

#include <gtest/gtest.h>

#include "crew/common/rng.h"

namespace crew::la {
namespace {

Matrix Make2x3() {
  Matrix m(2, 3);
  m.At(0, 0) = 1;
  m.At(0, 1) = 2;
  m.At(0, 2) = 3;
  m.At(1, 0) = 4;
  m.At(1, 1) = 5;
  m.At(1, 2) = 6;
  return m;
}

TEST(MatrixTest, RowAccess) {
  Matrix m = Make2x3();
  EXPECT_EQ(m.RowVec(1), (Vec{4, 5, 6}));
  m.SetRow(0, {7, 8, 9});
  EXPECT_EQ(m.RowVec(0), (Vec{7, 8, 9}));
}

TEST(MatrixTest, MatVec) {
  Matrix m = Make2x3();
  EXPECT_EQ(m.MatVec({1, 0, -1}), (Vec{-2, -2}));
}

TEST(MatrixTest, MatTVec) {
  Matrix m = Make2x3();
  EXPECT_EQ(m.MatTVec({1, 1}), (Vec{5, 7, 9}));
}

TEST(MatrixTest, MatMul) {
  Matrix m = Make2x3();
  Matrix id(3, 3);
  for (int i = 0; i < 3; ++i) id.At(i, i) = 1.0;
  Matrix p = m.MatMul(id);
  EXPECT_EQ(p.RowVec(0), m.RowVec(0));
  EXPECT_EQ(p.RowVec(1), m.RowVec(1));
}

TEST(MatrixTest, GramMatchesTransposeProduct) {
  Matrix m = Make2x3();
  Matrix g = m.Gram();
  Matrix expected = m.Transposed().MatMul(m);
  ASSERT_EQ(g.rows(), 3);
  ASSERT_EQ(g.cols(), 3);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(g.At(i, j), expected.At(i, j));
    }
  }
}

TEST(MatrixTest, TransposedTwiceIsIdentity) {
  Matrix m = Make2x3();
  Matrix t = m.Transposed().Transposed();
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(t.At(r, c), m.At(r, c));
  }
}

TEST(CholeskyTest, SolvesKnownSystem) {
  // A = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5]
  Matrix a(2, 2);
  a.At(0, 0) = 4;
  a.At(0, 1) = 2;
  a.At(1, 0) = 2;
  a.At(1, 1) = 3;
  Vec x;
  ASSERT_TRUE(CholeskySolve(a, {10, 8}, &x));
  EXPECT_NEAR(x[0], 1.75, 1e-12);
  EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 2;
  a.At(1, 1) = 1;  // eigenvalues 3, -1
  Vec x;
  EXPECT_FALSE(CholeskySolve(a, {1, 1}, &x));
}

class CholeskyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyPropertyTest, SolvesRandomSpdSystems) {
  const int n = GetParam();
  Rng rng(900 + n);
  // SPD via B^T B + n*I.
  Matrix b(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) b.At(i, j) = rng.Normal();
  }
  Matrix a = b.Gram();
  for (int i = 0; i < n; ++i) a.At(i, i) += n;
  Vec rhs(n);
  for (int i = 0; i < n; ++i) rhs[i] = rng.Normal();
  Vec x;
  ASSERT_TRUE(CholeskySolve(a, rhs, &x));
  const Vec residual = a.MatVec(x);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(residual[i], rhs[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 10, 25, 50));

}  // namespace
}  // namespace crew::la
