#include "crew/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace crew {
namespace {

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.size(), 1);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> done{0};
  const int kTasks = 100;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  // The destructor must drain the queue, but give the workers a fair
  // window first so the test also exercises the steady-state path.
  for (int spin = 0; spin < 200 && done.load() < kTasks; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (int n : {0, 1, 3, 4, 5, 64, 1000}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    ParallelFor(&pool, n, [&hits](int begin, int end) {
      // Ceil-division chunking must never produce an empty range (n=5 on a
      // 4-thread pool once did: per_chunk=2 left a [6, 5) tail chunk).
      EXPECT_LT(begin, end);
      for (int i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " i=" << i;
    }
  }
}

TEST(ParallelForTest, NullPoolRunsInlineOnCallerThread) {
  const auto caller = std::this_thread::get_id();
  std::vector<int> hits(37, 0);
  int calls = 0;
  ParallelFor(nullptr, 37, [&](int begin, int end) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;
    for (int i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(calls, 1);  // single chunk fn(0, n)
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 37);
}

TEST(ParallelForTest, ChunkingIsDeterministic) {
  // Chunk boundaries must be a pure function of (n, pool size): two runs
  // over the same pool record identical (begin, end) sets.
  ThreadPool pool(3);
  const int n = 100;
  auto collect = [&] {
    std::mutex mu;
    std::vector<std::pair<int, int>> chunks;
    ParallelFor(&pool, n, [&](int begin, int end) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.push_back({begin, end});
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  EXPECT_EQ(collect(), collect());
}

TEST(ParallelForTest, NestedCallRunsInlineWithoutDeadlock) {
  // Instance sharding composes with perturbation scoring on the SAME pool:
  // a ParallelFor issued from inside a chunk must run inline on the
  // issuing thread rather than re-entering the pool (which could deadlock
  // with every worker blocked waiting for its own nested chunks).
  ThreadPool pool(2);
  EXPECT_FALSE(InParallelRegion());
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  ParallelFor(&pool, 8, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      EXPECT_TRUE(InParallelRegion());
      const auto outer_thread = std::this_thread::get_id();
      ParallelFor(&pool, 8, [&, outer_thread](int ib, int ie) {
        EXPECT_EQ(std::this_thread::get_id(), outer_thread);
        for (int j = ib; j < ie; ++j) hits[i * 8 + j].fetch_add(1);
      });
    }
  });
  EXPECT_FALSE(InParallelRegion());
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
  }
}

TEST(ScoringThreadsTest, ResolvesZeroToHardware) {
  SetScoringThreads(0);
  EXPECT_EQ(ScoringThreads(), HardwareThreads());
  EXPECT_GE(HardwareThreads(), 1);
  SetScoringThreads(0);
}

TEST(ScoringThreadsTest, SharedPoolFollowsSetting) {
  SetScoringThreads(1);
  EXPECT_EQ(ScoringThreads(), 1);
  EXPECT_EQ(SharedScoringPool(), nullptr);  // 1 = inline legacy path

  SetScoringThreads(4);
  EXPECT_EQ(ScoringThreads(), 4);
  ThreadPool* pool = SharedScoringPool();
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->size(), 4);
  // Stable across calls while the setting is unchanged.
  EXPECT_EQ(SharedScoringPool(), pool);

  SetScoringThreads(2);
  ThreadPool* rebuilt = SharedScoringPool();
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_EQ(rebuilt->size(), 2);

  SetScoringThreads(0);  // restore the default for other tests
}

}  // namespace
}  // namespace crew
