#ifndef CREW_TESTS_TEST_UTIL_H_
#define CREW_TESTS_TEST_UTIL_H_

#include <map>
#include <string>

#include "crew/data/record.h"
#include "crew/la/vector_ops.h"
#include "crew/model/matcher.h"
#include "crew/text/tokenizer.h"

namespace crew::testing {

/// A white-box matcher for explainer tests: the score is
/// sigmoid(bias + sum of per-token weights over all tokens present in the
/// pair). Ground-truth importances are therefore known exactly — an
/// explainer must rank high-|weight| tokens above the rest.
class TokenWeightMatcher : public Matcher {
 public:
  TokenWeightMatcher(std::map<std::string, double> weights, double bias = 0.0)
      : weights_(std::move(weights)), bias_(bias) {}

  double PredictProba(const RecordPair& pair) const override {
    double z = bias_;
    for (const Record* record : {&pair.left, &pair.right}) {
      for (const auto& value : record->values) {
        for (const auto& token : tokenizer_.Tokenize(value)) {
          auto it = weights_.find(token);
          if (it != weights_.end()) z += it->second;
        }
      }
    }
    return la::Sigmoid(z);
  }

  std::string Name() const override { return "token_weight_oracle"; }

 private:
  std::map<std::string, double> weights_;
  double bias_;
  Tokenizer tokenizer_;
};

/// Builds a flat 2-attribute pair from free-text values.
inline RecordPair MakePair(const std::string& l0, const std::string& l1,
                           const std::string& r0, const std::string& r1,
                           int label = -1) {
  RecordPair pair;
  pair.left.values = {l0, l1};
  pair.right.values = {r0, r1};
  pair.label = label;
  return pair;
}

}  // namespace crew::testing

#endif  // CREW_TESTS_TEST_UTIL_H_
