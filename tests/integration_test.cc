// End-to-end integration: synthetic benchmark -> embeddings -> matcher ->
// full explainer suite -> unit metrics. Exercises every library together
// the way the bench binaries do.

#include <gtest/gtest.h>

#include <algorithm>

#include "crew/data/benchmark_suite.h"
#include "crew/data/csv.h"
#include "crew/eval/experiment.h"
#include "crew/eval/stability.h"

namespace crew {
namespace {

struct PipelineFixture {
  Dataset dataset;
  TrainedPipeline pipeline;

  static const PipelineFixture& Get() {
    static const PipelineFixture* fixture = [] {
      auto f = new PipelineFixture();
      auto d = GenerateByName("products-structured", 7, 120, 160);
      CREW_CHECK(d.ok());
      f->dataset = std::move(d.value());
      auto p = TrainPipeline(f->dataset, MatcherKind::kMlp, 0.7, 7);
      CREW_CHECK(p.ok());
      f->pipeline = std::move(p.value());
      return f;
    }();
    return *fixture;
  }
};

TEST(IntegrationTest, MatcherIsCompetent) {
  const auto& f = PipelineFixture::Get();
  EXPECT_GT(f.pipeline.test_metrics.F1(), 0.8);
}

TEST(IntegrationTest, FullSuiteExplainsRealPrediction) {
  const auto& f = PipelineFixture::Get();
  ExplainerSuiteConfig config;
  config.num_samples = 64;
  const auto suite = BuildExplainerSuite(f.pipeline.embeddings,
                                         f.pipeline.train, config);
  const RecordPair& pair = f.pipeline.test.pair(0);
  for (const auto& explainer : suite) {
    auto units = ExplainAsUnits(*explainer, *f.pipeline.matcher, pair, 13);
    ASSERT_TRUE(units.ok()) << explainer->Name();
    EXPECT_FALSE(units->second.empty()) << explainer->Name();
  }
}

TEST(IntegrationTest, CrewProducesFewerUnitsThanWords) {
  const auto& f = PipelineFixture::Get();
  CrewConfig config;
  config.importance.perturbation.num_samples = 64;
  CrewExplainer crew(f.pipeline.embeddings, config);
  int fewer = 0, total = 0;
  for (int i = 0; i < std::min(5, f.pipeline.test.size()); ++i) {
    auto e = crew.ExplainClusters(*f.pipeline.matcher,
                                  f.pipeline.test.pair(i), 17 + i);
    ASSERT_TRUE(e.ok());
    ++total;
    if (static_cast<int>(e->units.size()) <
        static_cast<int>(e->words.attributions.size()) / 2) {
      ++fewer;
    }
  }
  // CREW must compress: at most max_clusters units vs dozens of words.
  EXPECT_EQ(fewer, total);
}

TEST(IntegrationTest, CrewFaithfulnessBeatsRandom) {
  const auto& f = PipelineFixture::Get();
  const Matcher& matcher = *f.pipeline.matcher;
  Rng rng(19);
  const auto idx = SelectExplainInstances(matcher, f.pipeline.test, 6, rng);
  ASSERT_FALSE(idx.empty());
  ExplainerSuiteConfig config;
  config.num_samples = 64;
  const auto suite = BuildExplainerSuite(f.pipeline.embeddings,
                                         f.pipeline.train, config);
  double crew_aopc = 0.0, random_aopc = 0.0;
  for (const auto& explainer : suite) {
    auto agg = EvaluateExplainerOnDataset(*explainer, matcher,
                                          f.pipeline.test, idx,
                                          f.pipeline.embeddings.get(), 23);
    ASSERT_TRUE(agg.ok()) << explainer->Name();
    if (explainer->Name() == "crew") crew_aopc = agg->aopc;
    if (explainer->Name() == "random") random_aopc = agg->aopc;
  }
  EXPECT_GT(crew_aopc, random_aopc);
}

TEST(IntegrationTest, DatasetCsvRoundTripKeepsExplanations) {
  const auto& f = PipelineFixture::Get();
  auto reloaded = LoadDatasetCsv(DatasetToCsv(f.pipeline.test));
  ASSERT_TRUE(reloaded.ok());
  ASSERT_EQ(reloaded->size(), f.pipeline.test.size());
  // Same matcher scores on reloaded pairs: serialization is lossless.
  for (int i = 0; i < std::min(10, reloaded->size()); ++i) {
    EXPECT_DOUBLE_EQ(
        f.pipeline.matcher->PredictProba(reloaded->pair(i)),
        f.pipeline.matcher->PredictProba(f.pipeline.test.pair(i)));
  }
}

TEST(IntegrationTest, StabilityAcrossSeedsIsReasonable) {
  const auto& f = PipelineFixture::Get();
  CrewConfig config;
  config.importance.perturbation.num_samples = 64;
  CrewExplainer crew(f.pipeline.embeddings, config);
  auto stability = ExplainerStability(crew, *f.pipeline.matcher,
                                      f.pipeline.test.pair(0), {1, 2, 3}, 5);
  ASSERT_TRUE(stability.ok());
  EXPECT_GE(*stability, 0.0);
  EXPECT_LE(*stability, 1.0);
}

}  // namespace
}  // namespace crew
