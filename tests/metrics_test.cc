#include "crew/model/metrics.h"

#include <gtest/gtest.h>

namespace crew {
namespace {

TEST(MetricsTest, PrecisionRecallF1Accuracy) {
  ClassificationMetrics m;
  m.true_positives = 8;
  m.false_positives = 2;
  m.false_negatives = 4;
  m.true_negatives = 6;
  EXPECT_DOUBLE_EQ(m.Precision(), 0.8);
  EXPECT_DOUBLE_EQ(m.Recall(), 8.0 / 12.0);
  EXPECT_NEAR(m.F1(), 2 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0 / 12.0), 1e-12);
  EXPECT_DOUBLE_EQ(m.Accuracy(), 14.0 / 20.0);
}

TEST(MetricsTest, DegenerateCountsAreZeroNotNan) {
  ClassificationMetrics m;
  EXPECT_DOUBLE_EQ(m.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(m.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(m.F1(), 0.0);
  EXPECT_DOUBLE_EQ(m.Accuracy(), 0.0);
}

TEST(MetricsTest, MetricsAtThreshold) {
  const std::vector<double> scores = {0.1, 0.4, 0.6, 0.9};
  const std::vector<int> labels = {0, 1, 0, 1};
  const auto m = MetricsAtThreshold(scores, labels, 0.5);
  EXPECT_EQ(m.true_positives, 1);   // 0.9
  EXPECT_EQ(m.false_positives, 1);  // 0.6
  EXPECT_EQ(m.false_negatives, 1);  // 0.4
  EXPECT_EQ(m.true_negatives, 1);   // 0.1
}

TEST(MetricsTest, BestF1ThresholdSeparable) {
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  const std::vector<int> labels = {0, 0, 1, 1};
  const double t = BestF1Threshold(scores, labels);
  EXPECT_GT(t, 0.2);
  EXPECT_LE(t, 0.8);
  EXPECT_DOUBLE_EQ(MetricsAtThreshold(scores, labels, t).F1(), 1.0);
}

TEST(MetricsTest, BestF1ThresholdEmptyDefaults) {
  EXPECT_DOUBLE_EQ(BestF1Threshold({}, {}), 0.5);
}

}  // namespace
}  // namespace crew
