#include <algorithm>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "crew/data/generator.h"
#include "crew/model/trainer.h"

namespace crew {
namespace {

// Shared fixture data: one easy structured dataset, generated once.
const Dataset& EasyDataset() {
  static const Dataset* dataset = [] {
    GeneratorConfig config;
    config.domain = Domain::kProducts;
    config.flavor = Flavor::kStructured;
    config.num_matches = 150;
    config.num_nonmatches = 200;
    config.seed = 7;
    auto d = GenerateDataset(config);
    CREW_CHECK(d.ok());
    return new Dataset(std::move(d.value()));
  }();
  return *dataset;
}

class MatcherKindTest : public ::testing::TestWithParam<MatcherKind> {};

TEST_P(MatcherKindTest, LearnsEasyDataset) {
  auto pipeline = TrainPipeline(EasyDataset(), GetParam(), 0.7, 7);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  EXPECT_GT(pipeline->test_metrics.F1(), 0.8)
      << MatcherKindName(GetParam());
}

TEST_P(MatcherKindTest, ScoresAreProbabilities) {
  auto pipeline = TrainPipeline(EasyDataset(), GetParam(), 0.7, 7);
  ASSERT_TRUE(pipeline.ok());
  for (int i = 0; i < std::min(50, pipeline->test.size()); ++i) {
    const double p = pipeline->matcher->PredictProba(pipeline->test.pair(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  // Calibrated threshold is a valid probability (1.0 is legitimate for a
  // forest that separates the training data perfectly).
  EXPECT_GT(pipeline->matcher->threshold(), 0.0);
  EXPECT_LE(pipeline->matcher->threshold(), 1.0);
}

TEST_P(MatcherKindTest, DeterministicTraining) {
  auto a = TrainPipeline(EasyDataset(), GetParam(), 0.7, 7);
  auto b = TrainPipeline(EasyDataset(), GetParam(), 0.7, 7);
  ASSERT_TRUE(a.ok() && b.ok());
  const RecordPair& pair = a->test.pair(0);
  EXPECT_DOUBLE_EQ(a->matcher->PredictProba(pair),
                   b->matcher->PredictProba(pair));
}

TEST_P(MatcherKindTest, PredictUsesCalibratedThreshold) {
  auto pipeline = TrainPipeline(EasyDataset(), GetParam(), 0.7, 7);
  ASSERT_TRUE(pipeline.ok());
  const Matcher& m = *pipeline->matcher;
  for (int i = 0; i < std::min(20, pipeline->test.size()); ++i) {
    const RecordPair& pair = pipeline->test.pair(i);
    EXPECT_EQ(m.Predict(pair),
              m.PredictProba(pair) >= m.threshold() ? 1 : 0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, MatcherKindTest,
                         ::testing::ValuesIn(AllMatcherKinds()),
                         [](const auto& info) {
                           return std::string(MatcherKindName(info.param));
                         });

TEST(TrainerTest, RejectsEmptyDataset) {
  EXPECT_FALSE(TrainPipeline(Dataset(), MatcherKind::kLogistic).ok());
  EXPECT_FALSE(
      TrainMatcher(MatcherKind::kLogistic, Dataset(), nullptr).ok());
}

TEST(TrainerTest, MatcherKindNamesDistinct) {
  std::set<std::string> names;
  for (MatcherKind kind : AllMatcherKinds()) {
    names.insert(MatcherKindName(kind));
  }
  EXPECT_EQ(names.size(), AllMatcherKinds().size());
}

TEST(TrainerTest, MatcherNameMatchesKindName) {
  for (MatcherKind kind : AllMatcherKinds()) {
    auto pipeline = TrainPipeline(EasyDataset(), kind, 0.7, 7);
    ASSERT_TRUE(pipeline.ok());
    EXPECT_EQ(pipeline->matcher->Name(), MatcherKindName(kind));
  }
}

}  // namespace
}  // namespace crew
