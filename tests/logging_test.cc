#include "crew/common/logging.h"
#include "crew/common/status.h"

#include <gtest/gtest.h>

namespace crew {
namespace {

TEST(LoggingTest, SeverityFilterSuppressesBelowMin) {
  const LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kWarning);
  ::testing::internal::CaptureStderr();
  CREW_LOG(Info) << "should be suppressed";
  CREW_LOG(Warning) << "should appear";
  const std::string err = ::testing::internal::GetCapturedStderr();
  SetMinLogSeverity(original);
  EXPECT_EQ(err.find("should be suppressed"), std::string::npos);
  EXPECT_NE(err.find("should appear"), std::string::npos);
}

TEST(LoggingTest, MessageIncludesSeverityTagAndFile) {
  const LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kDebug);
  ::testing::internal::CaptureStderr();
  CREW_LOG(Error) << "boom " << 42;
  const std::string err = ::testing::internal::GetCapturedStderr();
  SetMinLogSeverity(original);
  EXPECT_NE(err.find("[E logging_test.cc:"), std::string::npos);
  EXPECT_NE(err.find("boom 42"), std::string::npos);
}

TEST(LoggingTest, StreamsArbitraryTypes) {
  ::testing::internal::CaptureStderr();
  CREW_LOG(Warning) << "pi=" << 3.5 << " s=" << std::string("x");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("pi=3.5 s=x"), std::string::npos);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(CREW_CHECK(1 == 2) << "context", "CHECK failed: 1 == 2");
}

TEST(LoggingDeathTest, CheckPassesSilently) {
  ::testing::internal::CaptureStderr();
  CREW_CHECK(true) << "never shown";
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST(LoggingDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(CREW_CHECK_OK(Status::Internal("bad state")),
               "CHECK_OK failed: INTERNAL: bad state");
}

TEST(LoggingDeathTest, CheckOkPassesOnOk) {
  ::testing::internal::CaptureStderr();
  CREW_CHECK_OK(Status::Ok());
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

}  // namespace
}  // namespace crew
