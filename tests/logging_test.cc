#include "crew/common/logging.h"
#include "crew/common/status.h"

#include <gtest/gtest.h>

#include <regex>
#include <string>

namespace crew {
namespace {

TEST(LoggingTest, SeverityFilterSuppressesBelowMin) {
  const LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kWarning);
  ::testing::internal::CaptureStderr();
  CREW_LOG(Info) << "should be suppressed";
  CREW_LOG(Warning) << "should appear";
  const std::string err = ::testing::internal::GetCapturedStderr();
  SetMinLogSeverity(original);
  EXPECT_EQ(err.find("should be suppressed"), std::string::npos);
  EXPECT_NE(err.find("should appear"), std::string::npos);
}

TEST(LoggingTest, MessageIncludesSeverityTimestampThreadAndFile) {
  const LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kDebug);
  ::testing::internal::CaptureStderr();
  CREW_LOG(Error) << "boom " << 42;
  const std::string err = ::testing::internal::GetCapturedStderr();
  SetMinLogSeverity(original);
  // [E 2026-08-05 12:34:56.789 t1 logging_test.cc:NN] boom 42
  const std::regex prefix(
      R"(\[E \d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2}\.\d{3} t\d+ )"
      R"(logging_test\.cc:\d+\] boom 42)");
  EXPECT_TRUE(std::regex_search(err, prefix)) << "got: " << err;
}

TEST(LoggingTest, SeverityLettersMatchLevel) {
  const LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kDebug);
  ::testing::internal::CaptureStderr();
  CREW_LOG(Debug) << "dbg";
  CREW_LOG(Info) << "inf";
  CREW_LOG(Warning) << "wrn";
  const std::string err = ::testing::internal::GetCapturedStderr();
  SetMinLogSeverity(original);
  EXPECT_NE(err.find("[D "), std::string::npos);
  EXPECT_NE(err.find("[I "), std::string::npos);
  EXPECT_NE(err.find("[W "), std::string::npos);
}

TEST(LoggingTest, ParseLogSeverityAcceptsNamesLettersAndDigits) {
  const LogSeverity fb = LogSeverity::kInfo;
  EXPECT_EQ(ParseLogSeverity("debug", fb), LogSeverity::kDebug);
  EXPECT_EQ(ParseLogSeverity("d", fb), LogSeverity::kDebug);
  EXPECT_EQ(ParseLogSeverity("0", fb), LogSeverity::kDebug);
  EXPECT_EQ(ParseLogSeverity("info", fb), LogSeverity::kInfo);
  EXPECT_EQ(ParseLogSeverity("i", fb), LogSeverity::kInfo);
  EXPECT_EQ(ParseLogSeverity("1", fb), LogSeverity::kInfo);
  EXPECT_EQ(ParseLogSeverity("warning", fb), LogSeverity::kWarning);
  EXPECT_EQ(ParseLogSeverity("warn", fb), LogSeverity::kWarning);
  EXPECT_EQ(ParseLogSeverity("w", fb), LogSeverity::kWarning);
  EXPECT_EQ(ParseLogSeverity("2", fb), LogSeverity::kWarning);
  EXPECT_EQ(ParseLogSeverity("error", fb), LogSeverity::kError);
  EXPECT_EQ(ParseLogSeverity("e", fb), LogSeverity::kError);
  EXPECT_EQ(ParseLogSeverity("3", fb), LogSeverity::kError);
}

TEST(LoggingTest, ParseLogSeverityIsCaseInsensitive) {
  const LogSeverity fb = LogSeverity::kInfo;
  EXPECT_EQ(ParseLogSeverity("DEBUG", fb), LogSeverity::kDebug);
  EXPECT_EQ(ParseLogSeverity("Warn", fb), LogSeverity::kWarning);
  EXPECT_EQ(ParseLogSeverity("E", fb), LogSeverity::kError);
}

TEST(LoggingTest, ParseLogSeverityFallsBackOnJunk) {
  EXPECT_EQ(ParseLogSeverity(nullptr, LogSeverity::kWarning),
            LogSeverity::kWarning);
  EXPECT_EQ(ParseLogSeverity("", LogSeverity::kError), LogSeverity::kError);
  EXPECT_EQ(ParseLogSeverity("verbose", LogSeverity::kInfo),
            LogSeverity::kInfo);
}

TEST(LoggingTest, StreamsArbitraryTypes) {
  ::testing::internal::CaptureStderr();
  CREW_LOG(Warning) << "pi=" << 3.5 << " s=" << std::string("x");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("pi=3.5 s=x"), std::string::npos);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(CREW_CHECK(1 == 2) << "context", "CHECK failed: 1 == 2");
}

TEST(LoggingDeathTest, CheckPassesSilently) {
  ::testing::internal::CaptureStderr();
  CREW_CHECK(true) << "never shown";
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST(LoggingDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(CREW_CHECK_OK(Status::Internal("bad state")),
               "CHECK_OK failed: INTERNAL: bad state");
}

TEST(LoggingDeathTest, CheckOkPassesOnOk) {
  ::testing::internal::CaptureStderr();
  CREW_CHECK_OK(Status::Ok());
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

}  // namespace
}  // namespace crew
