#include "crew/core/agglomerative.h"

#include <gtest/gtest.h>

#include <set>

namespace crew {
namespace {

// Distance matrix with two tight groups {0,1} and {2,3} far apart.
la::Matrix TwoGroups() {
  la::Matrix d(4, 4);
  auto set = [&](int i, int j, double v) {
    d.At(i, j) = v;
    d.At(j, i) = v;
  };
  set(0, 1, 0.1);
  set(2, 3, 0.1);
  set(0, 2, 1.0);
  set(0, 3, 1.0);
  set(1, 2, 1.0);
  set(1, 3, 1.0);
  return d;
}

TEST(AgglomerativeTest, MergeCountAndOrder) {
  const Dendrogram dendrogram =
      AgglomerativeCluster(TwoGroups(), Linkage::kAverage);
  EXPECT_EQ(dendrogram.n, 4);
  ASSERT_EQ(dendrogram.merges.size(), 3u);
  // The two cheap merges happen first.
  EXPECT_DOUBLE_EQ(dendrogram.merges[0].distance, 0.1);
  EXPECT_DOUBLE_EQ(dendrogram.merges[1].distance, 0.1);
  EXPECT_DOUBLE_EQ(dendrogram.merges[2].distance, 1.0);
}

TEST(AgglomerativeTest, CutRecoversPlantedGroups) {
  const Dendrogram dendrogram =
      AgglomerativeCluster(TwoGroups(), Linkage::kAverage);
  const auto labels = dendrogram.CutToClusters(2);
  ASSERT_EQ(labels.size(), 4u);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_NE(labels[0], labels[2]);
}

TEST(AgglomerativeTest, CutExtremes) {
  const Dendrogram dendrogram =
      AgglomerativeCluster(TwoGroups(), Linkage::kAverage);
  const auto one = dendrogram.CutToClusters(1);
  EXPECT_EQ(std::set<int>(one.begin(), one.end()).size(), 1u);
  const auto all = dendrogram.CutToClusters(4);
  EXPECT_EQ(std::set<int>(all.begin(), all.end()).size(), 4u);
  // Out-of-range k is clamped.
  const auto over = dendrogram.CutToClusters(99);
  EXPECT_EQ(std::set<int>(over.begin(), over.end()).size(), 4u);
  const auto under = dendrogram.CutToClusters(0);
  EXPECT_EQ(std::set<int>(under.begin(), under.end()).size(), 1u);
}

TEST(AgglomerativeTest, SingleAndCompleteLinkageDiffer) {
  // A chain 0-1-2: single linkage chains them early; complete linkage
  // keeps the span.
  la::Matrix d(3, 3);
  auto set = [&](int i, int j, double v) {
    d.At(i, j) = v;
    d.At(j, i) = v;
  };
  set(0, 1, 1.0);
  set(1, 2, 1.0);
  set(0, 2, 3.0);
  const Dendrogram single = AgglomerativeCluster(d, Linkage::kSingle);
  const Dendrogram complete = AgglomerativeCluster(d, Linkage::kComplete);
  // Final merge distance: single = 1 (min), complete = 3 (max).
  EXPECT_DOUBLE_EQ(single.merges.back().distance, 1.0);
  EXPECT_DOUBLE_EQ(complete.merges.back().distance, 3.0);
}

TEST(AgglomerativeTest, AverageLinkageWeightsBySize) {
  la::Matrix d(3, 3);
  auto set = [&](int i, int j, double v) {
    d.At(i, j) = v;
    d.At(j, i) = v;
  };
  set(0, 1, 0.2);
  set(0, 2, 1.0);
  set(1, 2, 2.0);
  const Dendrogram avg = AgglomerativeCluster(d, Linkage::kAverage);
  // After merging {0,1}, distance to 2 = (1.0 + 2.0) / 2.
  EXPECT_DOUBLE_EQ(avg.merges.back().distance, 1.5);
}

TEST(AgglomerativeTest, TrivialInputs) {
  la::Matrix empty(0, 0);
  EXPECT_TRUE(AgglomerativeCluster(empty, Linkage::kAverage).merges.empty());
  la::Matrix one(1, 1);
  const Dendrogram d1 = AgglomerativeCluster(one, Linkage::kAverage);
  EXPECT_TRUE(d1.merges.empty());
  EXPECT_EQ(d1.CutToClusters(1), (std::vector<int>{0}));
}

TEST(AgglomerativeTest, LinkageNames) {
  EXPECT_STREQ(LinkageName(Linkage::kSingle), "single");
  EXPECT_STREQ(LinkageName(Linkage::kComplete), "complete");
  EXPECT_STREQ(LinkageName(Linkage::kAverage), "average");
}

}  // namespace
}  // namespace crew
