#include "crew/common/status.h"

#include <gtest/gtest.h>

namespace crew {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kInternal,
        StatusCode::kUnimplemented, StatusCode::kDataLoss}) {
    EXPECT_STRNE(StatusCodeName(code), "UNKNOWN");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 9);
}

Status Passthrough(Status s) {
  CREW_RETURN_IF_ERROR(s);
  return Status::Ok();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Passthrough(Status::Ok()).ok());
  EXPECT_EQ(Passthrough(Status::Internal("boom")).code(),
            StatusCode::kInternal);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_DEATH(r.value(), "boom");
}

}  // namespace
}  // namespace crew
