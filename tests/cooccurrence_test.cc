#include "crew/embed/cooccurrence.h"

#include <gtest/gtest.h>

#include "crew/data/generator.h"

namespace crew {
namespace {

Vocabulary MakeVocab(std::vector<std::string> tokens) {
  Vocabulary v;
  for (const auto& t : tokens) v.Add(t);
  return v;
}

TEST(CooccurrenceTest, CountsWithinWindow) {
  Vocabulary vocab = MakeVocab({"a", "b", "c", "d"});
  CooccurrenceCounter counter(vocab, /*window=*/1);
  counter.AddSentence({"a", "b", "c"});
  EXPECT_EQ(counter.Count(0, 1), 1);  // a-b
  EXPECT_EQ(counter.Count(1, 2), 1);  // b-c
  EXPECT_EQ(counter.Count(0, 2), 0);  // a-c outside window 1
}

TEST(CooccurrenceTest, WiderWindow) {
  Vocabulary vocab = MakeVocab({"a", "b", "c"});
  CooccurrenceCounter counter(vocab, /*window=*/2);
  counter.AddSentence({"a", "b", "c"});
  EXPECT_EQ(counter.Count(0, 2), 1);
  EXPECT_EQ(counter.Count(2, 0), 1);  // symmetric lookup
}

TEST(CooccurrenceTest, MarginalsAndTotalConsistent) {
  Vocabulary vocab = MakeVocab({"a", "b", "c"});
  CooccurrenceCounter counter(vocab, 2);
  counter.AddSentence({"a", "b", "c", "a"});
  int64_t marginal_sum = 0;
  for (int i = 0; i < vocab.size(); ++i) marginal_sum += counter.Marginal(i);
  EXPECT_EQ(marginal_sum, counter.Total());
  int64_t pair_sum = 0;
  counter.ForEach([&](int i, int j, int64_t c) {
    EXPECT_LE(i, j);
    pair_sum += 2 * c;
  });
  EXPECT_EQ(pair_sum, counter.Total());
}

TEST(CooccurrenceTest, OovTokensSkipped) {
  Vocabulary vocab = MakeVocab({"a", "b"});
  CooccurrenceCounter counter(vocab, 1);
  // "zzz" is OOV and must not consume a window slot: a and b become
  // adjacent after filtering.
  counter.AddSentence({"a", "zzz", "b"});
  EXPECT_EQ(counter.Count(0, 1), 1);
}

TEST(CooccurrenceTest, SelfPairsIgnored) {
  Vocabulary vocab = MakeVocab({"a"});
  CooccurrenceCounter counter(vocab, 2);
  counter.AddSentence({"a", "a", "a"});
  EXPECT_EQ(counter.Count(0, 0), 0);
  EXPECT_EQ(counter.Total(), 0);
}

TEST(BuildCorpusTest, OneSentencePerRecord) {
  GeneratorConfig config;
  config.num_matches = 4;
  config.num_nonmatches = 3;
  auto d = GenerateDataset(config);
  ASSERT_TRUE(d.ok());
  const Corpus corpus = BuildCorpus(*d, Tokenizer());
  EXPECT_EQ(corpus.size(), 14u);  // 7 pairs x 2 records
  for (const auto& sentence : corpus) EXPECT_FALSE(sentence.empty());
}

}  // namespace
}  // namespace crew
