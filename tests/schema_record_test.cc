#include <gtest/gtest.h>

#include "crew/data/record.h"
#include "crew/data/schema.h"

namespace crew {
namespace {

Schema MakeSchema() {
  Schema s;
  s.AddAttribute("name", AttributeType::kText);
  s.AddAttribute("brand", AttributeType::kCategorical);
  s.AddAttribute("price", AttributeType::kNumeric);
  return s;
}

TEST(SchemaTest, AddAndLookup) {
  Schema s = MakeSchema();
  EXPECT_EQ(s.size(), 3);
  EXPECT_EQ(s.name(0), "name");
  EXPECT_EQ(s.type(2), AttributeType::kNumeric);
  EXPECT_EQ(s.IndexOf("brand"), 1);
  EXPECT_EQ(s.IndexOf("bogus"), -1);
}

TEST(SchemaTest, Equality) {
  EXPECT_EQ(MakeSchema(), MakeSchema());
  Schema other = MakeSchema();
  other.AddAttribute("extra", AttributeType::kText);
  EXPECT_FALSE(MakeSchema() == other);
}

TEST(SchemaTest, TypeNames) {
  EXPECT_STREQ(AttributeTypeName(AttributeType::kText), "text");
  EXPECT_STREQ(AttributeTypeName(AttributeType::kCategorical), "categorical");
  EXPECT_STREQ(AttributeTypeName(AttributeType::kNumeric), "numeric");
}

TEST(RecordTest, DisplayString) {
  Record r;
  r.values = {"acme router", "acme", "99"};
  EXPECT_EQ(r.ToDisplayString(MakeSchema()),
            "name: acme router | brand: acme | price: 99");
}

TEST(RecordTest, SideAccessors) {
  RecordPair p;
  p.left.values = {"l"};
  p.right.values = {"r"};
  EXPECT_EQ(p.side(Side::kLeft).values[0], "l");
  EXPECT_EQ(p.side(Side::kRight).values[0], "r");
  p.side(Side::kRight).values[0] = "r2";
  EXPECT_EQ(p.right.values[0], "r2");
  EXPECT_STREQ(SideName(Side::kLeft), "left");
  EXPECT_STREQ(SideName(Side::kRight), "right");
}

TEST(RecordTest, TokenizeRecordPerAttribute) {
  Tokenizer t;
  Record r;
  r.values = {"Acme Router X1", "ACME", "99.50"};
  const auto tokens = TokenizeRecord(t, MakeSchema(), r);
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], (std::vector<std::string>{"acme", "router", "x1"}));
  EXPECT_EQ(tokens[1], (std::vector<std::string>{"acme"}));
  EXPECT_EQ(tokens[2], (std::vector<std::string>{"99", "50"}));
}

TEST(RecordTest, FlattenTokensInSchemaOrder) {
  Tokenizer t;
  Record r;
  r.values = {"b a", "c", ""};
  EXPECT_EQ(FlattenTokens(t, MakeSchema(), r),
            (std::vector<std::string>{"b", "a", "c"}));
}

TEST(RecordTest, MatchLabelHelpers) {
  RecordPair p;
  EXPECT_FALSE(p.IsMatch());  // unlabeled
  p.label = 1;
  EXPECT_TRUE(p.IsMatch());
  p.label = 0;
  EXPECT_FALSE(p.IsMatch());
}

}  // namespace
}  // namespace crew
