#include "crew/common/rng.h"

#include <algorithm>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

namespace crew {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextRaw() == b.NextRaw()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    const int v = rng.UniformInt(5);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(13);
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.UniformInt(3, 5));
  EXPECT_EQ(seen, (std::set<int>{3, 4, 5}));
}

TEST(RngTest, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, NormalMoments) {
  Rng rng(19);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleIndicesDistinct) {
  Rng rng(29);
  const auto s = rng.SampleIndices(20, 8);
  EXPECT_EQ(s.size(), 8u);
  std::set<int> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 8u);
  for (int v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20);
  }
}

TEST(RngTest, SampleIndicesClampsToN) {
  Rng rng(31);
  EXPECT_EQ(rng.SampleIndices(5, 100).size(), 5u);
  EXPECT_TRUE(rng.SampleIndices(5, 0).empty());
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(37);
  std::vector<double> w = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, CategoricalAllZeroIsUniform) {
  Rng rng(41);
  std::vector<double> w = {0.0, 0.0};
  std::set<int> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.Categorical(w));
  EXPECT_EQ(seen.size(), 2u);
}

TEST(RngTest, ForkIsDeterministicAndIndependent) {
  Rng a(55);
  Rng fork1 = a.Fork(1);
  Rng fork1_again = Rng(55).Fork(1);
  Rng fork2 = a.Fork(2);
  Rng fork2_again = Rng(55).Fork(2);
  EXPECT_EQ(fork1.NextRaw(), fork1_again.NextRaw());
  EXPECT_EQ(fork2.NextRaw(), fork2_again.NextRaw());
  Rng f1 = Rng(55).Fork(1);
  Rng f2 = Rng(55).Fork(2);
  EXPECT_NE(f1.NextRaw(), f2.NextRaw());
}

class ShufflePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ShufflePropertyTest, ShufflePreservesMultiset) {
  const int n = GetParam();
  Rng rng(1000 + n);
  std::vector<int> v(n);
  for (int i = 0; i < n; ++i) v[i] = i % 7;
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(v.begin(), v.end());
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ShufflePropertyTest,
                         ::testing::Values(0, 1, 2, 5, 16, 100, 1000));

}  // namespace
}  // namespace crew
