#include "crew/eval/faithfulness.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace crew {
namespace {

using testing::MakePair;
using testing::TokenWeightMatcher;

// Instance where ground truth is fully known: score =
// sigmoid(2*anchor + 1*helper - 2*poison). Units are singletons in view
// order: anchor(0) helper(1) junk(2) | poison(3) junk2(4).
struct Oracle {
  TokenWeightMatcher matcher{
      {{"anchor", 2.0}, {"helper", 1.0}, {"poison", -2.0}}};
  RecordPair pair = MakePair("anchor helper junk", "", "poison junk2", "");
  PairTokenView view{AnonymousSchema(pair), Tokenizer(), pair};

  EvalInstance MakeInstance(std::vector<double> weights,
                            double threshold = 0.5) {
    std::vector<ExplanationUnit> units;
    for (size_t i = 0; i < weights.size(); ++i) {
      ExplanationUnit u;
      u.member_indices = {static_cast<int>(i)};
      u.weight = weights[i];
      units.push_back(u);
    }
    return EvalInstance{view, units, matcher.PredictProba(pair), threshold};
  }
};

TEST(FaithfulnessTest, PredictedClassProb) {
  EXPECT_DOUBLE_EQ(PredictedClassProb(0.8, true), 0.8);
  EXPECT_DOUBLE_EQ(PredictedClassProb(0.8, false), 0.2);
}

TEST(FaithfulnessTest, RankUnitsBySupportForMatch) {
  Oracle s;
  // base = sigmoid(1) > 0.5 -> predicted match; ranking = descending weight.
  auto inst = s.MakeInstance({2.0, 1.0, 0.0, -2.0, 0.0});
  EXPECT_TRUE(inst.PredictedMatch());
  const auto ranked = inst.RankUnitsBySupport();
  EXPECT_EQ(ranked[0], 0);
  EXPECT_EQ(ranked[1], 1);
  EXPECT_EQ(ranked.back(), 3);
}

TEST(FaithfulnessTest, GoodExplanationBeatsBadOnComprehensiveness) {
  Oracle s;
  // Good explanation: true weights. Bad: inverted.
  auto good = s.MakeInstance({2.0, 1.0, 0.0, -2.0, 0.0});
  auto bad = s.MakeInstance({-2.0, -1.0, 0.0, 2.0, 0.0});
  const double cg = ComprehensivenessAtK(s.matcher, good, 1);
  const double cb = ComprehensivenessAtK(s.matcher, bad, 1);
  EXPECT_GT(cg, cb);
  EXPECT_GT(cg, 0.0);  // removing "anchor" really drops the match prob
}

TEST(FaithfulnessTest, ComprehensivenessExactValue) {
  Oracle s;
  auto inst = s.MakeInstance({2.0, 1.0, 0.0, -2.0, 0.0});
  // Removing unit 0 ("anchor"): logit 1 -> -1.
  const double expected =
      la::Sigmoid(1.0) - la::Sigmoid(-1.0);
  EXPECT_NEAR(ComprehensivenessAtK(s.matcher, inst, 1), expected, 1e-9);
}

TEST(FaithfulnessTest, SufficiencyLowForFaithfulExplanation) {
  Oracle s;
  auto good = s.MakeInstance({2.0, 1.0, 0.0, -2.0, 0.0});
  // Keeping the top-2 supporting units (anchor+helper) keeps logit 3 >
  // base logit 1, so predicted-class prob does not drop: sufficiency <= 0.
  EXPECT_LE(SufficiencyAtK(s.matcher, good, 2), 0.0);
}

TEST(FaithfulnessTest, AopcIsMeanOverK) {
  Oracle s;
  auto inst = s.MakeInstance({2.0, 1.0, 0.0, -2.0, 0.0});
  const double c1 = ComprehensivenessAtK(s.matcher, inst, 1);
  const double c2 = ComprehensivenessAtK(s.matcher, inst, 2);
  const double c3 = ComprehensivenessAtK(s.matcher, inst, 3);
  EXPECT_NEAR(AopcDeletion(s.matcher, inst, 3), (c1 + c2 + c3) / 3.0, 1e-12);
}

TEST(FaithfulnessTest, TokenBudgetCountsWords) {
  Oracle s;
  // One multi-word unit covering anchor+helper, then singletons.
  std::vector<ExplanationUnit> units(3);
  units[0].member_indices = {0, 1};
  units[0].weight = 3.0;
  units[1].member_indices = {2};
  units[1].weight = 0.0;
  units[2].member_indices = {3};
  units[2].weight = -2.0;
  EvalInstance inst{s.view, units, s.matcher.PredictProba(s.pair), 0.5};
  // Budget 2 is satisfied by the first unit alone.
  const double drop = ComprehensivenessAtTokenBudget(s.matcher, inst, 2);
  const double expected = la::Sigmoid(1.0) - la::Sigmoid(-2.0);
  EXPECT_NEAR(drop, expected, 1e-9);
}

TEST(FaithfulnessTest, DecisionFlip) {
  Oracle s;
  auto inst = s.MakeInstance({2.0, 1.0, 0.0, -2.0, 0.0});
  // Removing anchor: logit -1 -> non-match: flip.
  EXPECT_TRUE(DecisionFlipAtTop(s.matcher, inst));
  // With an uninformative explanation deleting junk first: no flip.
  auto dull = s.MakeInstance({0.0, 0.0, 5.0, 0.0, 0.0});
  EXPECT_FALSE(DecisionFlipAtTop(s.matcher, dull));
}

TEST(FaithfulnessTest, DeletionCurveStartsAtBase) {
  Oracle s;
  auto inst = s.MakeInstance({2.0, 1.0, 0.0, -2.0, 0.0});
  const auto curve = DeletionCurve(s.matcher, inst, {0.0, 0.5, 1.0});
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_NEAR(curve[0], la::Sigmoid(1.0), 1e-12);
  // Removing everything supporting the match leaves at most the base.
  EXPECT_LE(curve[2], curve[0]);
}

TEST(FaithfulnessTest, NonMatchInstanceUsesInvertedRanking) {
  Oracle s;
  // Force predicted non-match with threshold above base score.
  auto inst = s.MakeInstance({2.0, 1.0, 0.0, -2.0, 0.0}, /*threshold=*/0.99);
  EXPECT_FALSE(inst.PredictedMatch());
  // Top supporting unit for non-match is "poison"; removing it RAISES the
  // match score, i.e. drops the non-match probability: positive.
  EXPECT_GT(ComprehensivenessAtK(s.matcher, inst, 1), 0.0);
  EXPECT_EQ(inst.RankUnitsBySupport()[0], 3);
}

TEST(FaithfulnessTest, InsertionRecoversWithGoodExplanation) {
  Oracle s;
  auto good = s.MakeInstance({2.0, 1.0, 0.0, -2.0, 0.0});
  auto bad = s.MakeInstance({0.0, 0.0, 5.0, 0.0, 4.0});
  // Re-inserting the true drivers first recovers the prediction faster.
  EXPECT_GT(AopcInsertion(s.matcher, good, 2),
            AopcInsertion(s.matcher, bad, 2));
  // Inserting "anchor" alone: empty pair logit 0 -> 0.5; with anchor
  // logit 2 -> sigmoid(2). First insertion step gain is exactly that.
  const double gain1 = AopcInsertion(s.matcher, good, 1);
  EXPECT_NEAR(gain1, la::Sigmoid(2.0) - 0.5, 1e-9);
}

TEST(FaithfulnessTest, InsertionEmptyUnitsIsZero) {
  Oracle s;
  EvalInstance inst{s.view, {}, 0.7, 0.5};
  EXPECT_DOUBLE_EQ(AopcInsertion(s.matcher, inst, 3), 0.0);
}

TEST(FaithfulnessTest, MinimalFlipSetFindsDecisiveUnit) {
  Oracle s;
  auto inst = s.MakeInstance({2.0, 1.0, 0.0, -2.0, 0.0});
  const auto flip = MinimalFlipSet(s.matcher, inst);
  // Removing "anchor" alone flips sigmoid(1) -> sigmoid(-1) < 0.5.
  EXPECT_TRUE(flip.flipped);
  EXPECT_EQ(flip.units_removed, 1);
  EXPECT_EQ(flip.tokens_removed, 1);
}

TEST(FaithfulnessTest, MinimalFlipSetLargerForBadExplanation) {
  Oracle s;
  // An explanation that ranks junk first needs more removals to flip.
  auto bad = s.MakeInstance({0.0, 0.0, 5.0, -1.0, 4.0});
  const auto flip = MinimalFlipSet(s.matcher, bad);
  EXPECT_TRUE(flip.flipped);
  EXPECT_GT(flip.units_removed, 1);
}

TEST(FaithfulnessTest, MinimalFlipSetMayNotFlip) {
  // A matcher with a huge bias cannot be flipped by token removal.
  testing::TokenWeightMatcher stubborn({}, /*bias=*/10.0);
  Oracle s;
  auto inst = s.MakeInstance({1.0, 0.5, 0.0, -1.0, 0.0});
  EvalInstance fixed{s.view, inst.units, stubborn.PredictProba(s.pair), 0.5};
  const auto flip = MinimalFlipSet(stubborn, fixed);
  EXPECT_FALSE(flip.flipped);
  EXPECT_EQ(flip.units_removed, 5);  // exhausted every unit
}

TEST(FaithfulnessTest, EmptyUnitsGiveZeroes) {
  Oracle s;
  EvalInstance inst{s.view, {}, 0.7, 0.5};
  EXPECT_DOUBLE_EQ(ComprehensivenessAtK(s.matcher, inst, 3), 0.0);
  EXPECT_DOUBLE_EQ(SufficiencyAtK(s.matcher, inst, 3), 0.0);
  EXPECT_DOUBLE_EQ(AopcDeletion(s.matcher, inst, 3), 0.0);
  EXPECT_FALSE(DecisionFlipAtTop(s.matcher, inst));
}

}  // namespace
}  // namespace crew
