#include "crew/la/svd.h"

#include <cmath>

#include <gtest/gtest.h>

namespace crew::la {
namespace {

TEST(SymmetricSparseTest, MatVec) {
  SymmetricSparse m(3);
  m.SetSymmetric(0, 1, 2.0);
  m.SetSymmetric(1, 2, -1.0);
  m.SetSymmetric(2, 2, 4.0);
  EXPECT_EQ(m.NonZeros(), 5);  // (0,1),(1,0),(1,2),(2,1),(2,2)
  const Vec y = m.MatVec({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 1.0);
  EXPECT_DOUBLE_EQ(y[2], 3.0);
}

TEST(TruncatedEigenTest, DiagonalMatrix) {
  SymmetricSparse m(4);
  m.SetSymmetric(0, 0, 5.0);
  m.SetSymmetric(1, 1, 3.0);
  m.SetSymmetric(2, 2, 1.0);
  m.SetSymmetric(3, 3, 0.5);
  Matrix vecs;
  Vec vals;
  ASSERT_TRUE(
      TruncatedSymmetricEigen(m, 2, 100, 42, &vecs, &vals).ok());
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_NEAR(vals[0], 5.0, 1e-6);
  EXPECT_NEAR(vals[1], 3.0, 1e-6);
  // Leading eigenvector is +-e0.
  EXPECT_NEAR(std::fabs(vecs.At(0, 0)), 1.0, 1e-6);
}

TEST(TruncatedEigenTest, EigenEquationHolds) {
  // Small dense symmetric matrix stored sparsely.
  SymmetricSparse m(5);
  const double entries[5][5] = {{4, 1, 0, 0, 2},
                                {1, 3, 1, 0, 0},
                                {0, 1, 2, 1, 0},
                                {0, 0, 1, 5, 1},
                                {2, 0, 0, 1, 6}};
  for (int i = 0; i < 5; ++i) {
    for (int j = i; j < 5; ++j) {
      if (entries[i][j] != 0.0) m.SetSymmetric(i, j, entries[i][j]);
    }
  }
  Matrix vecs;
  Vec vals;
  ASSERT_TRUE(TruncatedSymmetricEigen(m, 3, 200, 7, &vecs, &vals).ok());
  for (int k = 0; k < 3; ++k) {
    Vec v(5);
    for (int i = 0; i < 5; ++i) v[i] = vecs.At(i, k);
    const Vec mv = m.MatVec(v);
    for (int i = 0; i < 5; ++i) {
      EXPECT_NEAR(mv[i], vals[k] * v[i], 1e-4) << "eigpair " << k;
    }
  }
  // Sorted by decreasing magnitude.
  EXPECT_GE(std::fabs(vals[0]), std::fabs(vals[1]));
  EXPECT_GE(std::fabs(vals[1]), std::fabs(vals[2]));
}

TEST(TruncatedEigenTest, EigenvectorsOrthonormal) {
  SymmetricSparse m(6);
  for (int i = 0; i < 6; ++i) m.SetSymmetric(i, i, i + 1.0);
  m.SetSymmetric(0, 5, 0.5);
  Matrix vecs;
  Vec vals;
  ASSERT_TRUE(TruncatedSymmetricEigen(m, 3, 100, 11, &vecs, &vals).ok());
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      double dot = 0.0;
      for (int i = 0; i < 6; ++i) dot += vecs.At(i, a) * vecs.At(i, b);
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-6);
    }
  }
}

TEST(TruncatedEigenTest, RejectsBadArguments) {
  SymmetricSparse m(3);
  Matrix vecs;
  Vec vals;
  EXPECT_FALSE(TruncatedSymmetricEigen(m, 0, 10, 1, &vecs, &vals).ok());
  EXPECT_FALSE(TruncatedSymmetricEigen(m, 4, 10, 1, &vecs, &vals).ok());
  EXPECT_FALSE(TruncatedSymmetricEigen(m, 2, 0, 1, &vecs, &vals).ok());
}

TEST(TruncatedEigenTest, DeterministicGivenSeed) {
  SymmetricSparse m(4);
  m.SetSymmetric(0, 1, 1.0);
  m.SetSymmetric(2, 3, 2.0);
  m.SetSymmetric(0, 0, 3.0);
  Matrix v1, v2;
  Vec l1, l2;
  ASSERT_TRUE(TruncatedSymmetricEigen(m, 2, 50, 9, &v1, &l1).ok());
  ASSERT_TRUE(TruncatedSymmetricEigen(m, 2, 50, 9, &v2, &l2).ok());
  for (int i = 0; i < 4; ++i) {
    for (int k = 0; k < 2; ++k) {
      EXPECT_DOUBLE_EQ(v1.At(i, k), v2.At(i, k));
    }
  }
}

}  // namespace
}  // namespace crew::la
