// End-to-end scientific sanity check: on the *interpretable-by-
// construction* rule matcher, whose decision provably depends only on a
// couple of similarity features, explainers must attribute importance to
// tokens that move those features — and the global explanation must
// concentrate on the attributes the rule reads.

#include <gtest/gtest.h>

#include "crew/core/crew_explainer.h"
#include "crew/data/generator.h"
#include "crew/eval/global_explanation.h"
#include "crew/model/rule_matcher.h"

namespace crew {
namespace {

struct RuleFixture {
  Dataset dataset;
  std::unique_ptr<RuleMatcher> matcher;

  static const RuleFixture& Get() {
    static const RuleFixture* fixture = [] {
      auto f = new RuleFixture();
      GeneratorConfig config;
      config.domain = Domain::kProducts;
      config.num_matches = 120;
      config.num_nonmatches = 150;
      config.seed = 11;
      auto d = GenerateDataset(config);
      CREW_CHECK(d.ok());
      f->dataset = std::move(d.value());
      auto m = RuleMatcher::Train(f->dataset, nullptr);
      CREW_CHECK(m.ok());
      f->matcher = std::move(m.value());
      return f;
    }();
    return *fixture;
  }
};

TEST(RuleRecoveryTest, TopClusterContainsRuleTokens) {
  // The induced rule on this dataset reads price similarity only
  // (RuleUsesOverlapFeature below prints it). CREW's top cluster must
  // therefore contain price-attribute tokens: the explainer recovers the
  // feature the rule actually reads.
  const auto& f = RuleFixture::Get();
  const int decisive_attr = f.matcher->conditions()[0].feature /
                            5;  // kPerAttribute features per attribute
  CrewConfig config;
  config.importance.perturbation.num_samples = 128;
  CrewExplainer explainer(nullptr, config);
  int recovered = 0, tried = 0;
  for (int i = 0; i < f.dataset.size() && tried < 6; ++i) {
    const RecordPair& pair = f.dataset.pair(i);
    if (f.matcher->Predict(pair) != 1) continue;
    ++tried;
    auto e = explainer.ExplainClusters(*f.matcher, pair, 31 + i);
    ASSERT_TRUE(e.ok());
    if (e->units.empty()) continue;
    // units[0] has the largest |weight| by construction.
    bool hits_decisive = false;
    for (int m : e->units[0].member_indices) {
      if (e->words.attributions[m].token.attribute == decisive_attr) {
        hits_decisive = true;
      }
    }
    if (hits_decisive) ++recovered;
  }
  ASSERT_GT(tried, 0);
  EXPECT_GE(recovered * 2, tried);
}

TEST(RuleRecoveryTest, RuleUsesOverlapFeature) {
  const auto& f = RuleFixture::Get();
  // The induced rule should read a similarity feature (they all contain
  // "jaccard"/"overlap"/"sim"/"monge" in the name) — sanity on induction.
  const std::string rule = f.matcher->RuleString();
  const bool mentions_similarity =
      rule.find("jaccard") != std::string::npos ||
      rule.find("overlap") != std::string::npos ||
      rule.find("sim") != std::string::npos ||
      rule.find("monge") != std::string::npos ||
      rule.find("cosine") != std::string::npos;
  EXPECT_TRUE(mentions_similarity) << rule;
}

TEST(RuleRecoveryTest, GlobalExplanationIsTokenOverlapDriven) {
  const auto& f = RuleFixture::Get();
  CrewConfig config;
  config.importance.perturbation.num_samples = 96;
  CrewExplainer explainer(nullptr, config);
  std::vector<int> instances;
  for (int i = 0; i < 10; ++i) instances.push_back(i * 7 % f.dataset.size());
  auto global = BuildGlobalExplanation(explainer, *f.matcher, f.dataset,
                                       instances, 13);
  ASSERT_TRUE(global.ok());
  EXPECT_GT(global->instances, 0);
  // Attribution mass exists and is distributed over real schema columns.
  double total_share = 0.0;
  for (const auto& attr : global->attributes) total_share += attr.share;
  EXPECT_NEAR(total_share, 1.0, 1e-6);
}

}  // namespace
}  // namespace crew
