#include "crew/text/vocabulary.h"

#include <gtest/gtest.h>

namespace crew {
namespace {

TEST(VocabularyTest, AddAssignsDenseStableIds) {
  Vocabulary v;
  EXPECT_EQ(v.Add("apple"), 0);
  EXPECT_EQ(v.Add("pear"), 1);
  EXPECT_EQ(v.Add("apple"), 0);  // existing id
  EXPECT_EQ(v.size(), 2);
  EXPECT_EQ(v.TokenOf(0), "apple");
  EXPECT_EQ(v.CountOf(0), 2);
  EXPECT_EQ(v.CountOf(1), 1);
  EXPECT_EQ(v.TotalCount(), 3);
}

TEST(VocabularyTest, GetIdUnknown) {
  Vocabulary v;
  v.Add("x");
  EXPECT_EQ(v.GetId("y"), Vocabulary::kUnknownId);
  EXPECT_TRUE(v.Contains("x"));
  EXPECT_FALSE(v.Contains("y"));
}

TEST(VocabularyTest, AddCountBulk) {
  Vocabulary v;
  v.AddCount("a", 10);
  v.AddCount("a", 5);
  EXPECT_EQ(v.CountOf(v.GetId("a")), 15);
  EXPECT_EQ(v.TotalCount(), 15);
}

TEST(VocabularyTest, PrunedKeepsOrderAndCounts) {
  Vocabulary v;
  v.AddCount("rare", 1);
  v.AddCount("common", 10);
  v.AddCount("mid", 3);
  Vocabulary pruned = v.Pruned(3);
  EXPECT_EQ(pruned.size(), 2);
  EXPECT_EQ(pruned.GetId("common"), 0);  // insertion order preserved
  EXPECT_EQ(pruned.GetId("mid"), 1);
  EXPECT_EQ(pruned.GetId("rare"), Vocabulary::kUnknownId);
  EXPECT_EQ(pruned.CountOf(0), 10);
}

TEST(VocabularyTest, TopKByCount) {
  Vocabulary v;
  v.AddCount("a", 2);
  v.AddCount("b", 9);
  v.AddCount("c", 9);
  v.AddCount("d", 1);
  const auto top = v.TopKByCount(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(v.TokenOf(top[0]), "b");  // tie broken by id
  EXPECT_EQ(v.TokenOf(top[1]), "c");
  EXPECT_EQ(v.TopKByCount(100).size(), 4u);
}

}  // namespace
}  // namespace crew
