// Tests for the instance-parallel evaluation runner: sharding must be
// invisible (bit-identical records and aggregates for any --threads
// value), the refactored EvaluateExplainerOnDataset must match the
// historical serial loop exactly, and the ExperimentRunner grid + JSON
// sink must produce well-formed structured results.

#include "crew/eval/runner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "crew/common/metrics.h"
#include "crew/common/thread_pool.h"
#include "crew/common/trace.h"
#include "crew/data/generator.h"
#include "crew/eval/comprehensibility.h"
#include "crew/eval/faithfulness.h"
#include "crew/eval/sinks.h"
#include "crew/explain/lime.h"
#include "crew/explain/random_explainer.h"
#include "crew/model/trainer.h"
#include "test_util.h"

namespace crew {
namespace {

using testing::TokenWeightMatcher;

// Restores the process-wide scoring thread setting on scope exit so a
// failing test cannot leak a non-default setting into later tests.
class ScopedScoringThreads {
 public:
  explicit ScopedScoringThreads(int n) { SetScoringThreads(n); }
  ~ScopedScoringThreads() { SetScoringThreads(0); }
};

// Turns span recording on for one scope and drops whatever it recorded.
// Used by the determinism tests: tracing is observation-only, so results
// with it on must be bit-identical to results with it off.
class ScopedTracing {
 public:
  ScopedTracing() { SetTracingEnabled(true); }
  ~ScopedTracing() {
    SetTracingEnabled(false);
    ClearTraceEvents();
  }
};

Dataset SmallDataset() {
  GeneratorConfig config;
  config.num_matches = 40;
  config.num_nonmatches = 40;
  config.seed = 3;
  auto d = GenerateDataset(config);
  CREW_CHECK(d.ok());
  return std::move(d.value());
}

std::vector<int> SomeInstances(const Matcher& matcher, const Dataset& dataset,
                               int n) {
  Rng rng(5);
  return SelectExplainInstances(matcher, dataset, n, rng);
}

// Everything except runtime_ms (wall-clock, inherently nondeterministic).
void ExpectRecordsBitIdentical(const InstanceEvaluation& a,
                               const InstanceEvaluation& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.evaluated, b.evaluated);
  EXPECT_EQ(a.predicted_match, b.predicted_match);
  EXPECT_EQ(a.aopc, b.aopc);
  EXPECT_EQ(a.comprehensiveness_at_1, b.comprehensiveness_at_1);
  EXPECT_EQ(a.comprehensiveness_at_3, b.comprehensiveness_at_3);
  EXPECT_EQ(a.sufficiency_at_1, b.sufficiency_at_1);
  EXPECT_EQ(a.sufficiency_at_3, b.sufficiency_at_3);
  EXPECT_EQ(a.comprehensiveness_budget, b.comprehensiveness_budget);
  EXPECT_EQ(a.decision_flip, b.decision_flip);
  EXPECT_EQ(a.insertion_aopc, b.insertion_aopc);
  EXPECT_EQ(a.flip_set.flipped, b.flip_set.flipped);
  EXPECT_EQ(a.flip_set.units_removed, b.flip_set.units_removed);
  EXPECT_EQ(a.flip_set.tokens_removed, b.flip_set.tokens_removed);
  EXPECT_EQ(a.curve, b.curve);
  EXPECT_EQ(a.total_units, b.total_units);
  EXPECT_EQ(a.effective_units, b.effective_units);
  EXPECT_EQ(a.words_per_unit, b.words_per_unit);
  EXPECT_EQ(a.semantic_coherence, b.semantic_coherence);
  EXPECT_EQ(a.attribute_purity, b.attribute_purity);
  EXPECT_EQ(a.has_cluster_stats, b.has_cluster_stats);
  EXPECT_EQ(a.cluster_coherence, b.cluster_coherence);
  EXPECT_EQ(a.cluster_silhouette, b.cluster_silhouette);
  EXPECT_EQ(a.chosen_k, b.chosen_k);
  EXPECT_EQ(a.stability, b.stability);
  EXPECT_EQ(a.surrogate_r2, b.surrogate_r2);
}

void ExpectAggregatesBitIdentical(const ExplainerAggregate& a,
                                  const ExplainerAggregate& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.instances, b.instances);
  EXPECT_EQ(a.aopc, b.aopc);
  EXPECT_EQ(a.comprehensiveness_at_1, b.comprehensiveness_at_1);
  EXPECT_EQ(a.comprehensiveness_at_3, b.comprehensiveness_at_3);
  EXPECT_EQ(a.sufficiency_at_1, b.sufficiency_at_1);
  EXPECT_EQ(a.sufficiency_at_3, b.sufficiency_at_3);
  EXPECT_EQ(a.comprehensiveness_budget5, b.comprehensiveness_budget5);
  EXPECT_EQ(a.decision_flip_rate, b.decision_flip_rate);
  EXPECT_EQ(a.insertion_aopc, b.insertion_aopc);
  EXPECT_EQ(a.flip_set_rate, b.flip_set_rate);
  EXPECT_EQ(a.flip_set_units, b.flip_set_units);
  EXPECT_EQ(a.flip_set_tokens, b.flip_set_tokens);
  EXPECT_EQ(a.total_units, b.total_units);
  EXPECT_EQ(a.effective_units, b.effective_units);
  EXPECT_EQ(a.words_per_unit, b.words_per_unit);
  EXPECT_EQ(a.semantic_coherence, b.semantic_coherence);
  EXPECT_EQ(a.attribute_purity, b.attribute_purity);
  EXPECT_EQ(a.cluster_coherence, b.cluster_coherence);
  EXPECT_EQ(a.cluster_silhouette, b.cluster_silhouette);
  EXPECT_EQ(a.mean_chosen_k, b.mean_chosen_k);
  EXPECT_EQ(a.stability, b.stability);
  EXPECT_EQ(a.surrogate_r2, b.surrogate_r2);
}

TEST(EvaluateInstancesTest, BitIdenticalAcrossThreadCounts) {
  const Dataset dataset = SmallDataset();
  TokenWeightMatcher matcher({{"vortexa", 1.0}, {"lumenix", 0.7}}, -0.2);
  const auto idx = SomeInstances(matcher, dataset, 6);
  ASSERT_FALSE(idx.empty());
  LimeConfig config;
  config.perturbation.num_samples = 48;
  LimeExplainer lime(config);
  InstanceEvalOptions options;
  options.curve_fractions = {0.0, 0.5, 1.0};

  std::vector<std::vector<InstanceEvaluation>> runs;
  for (int threads : {1, 2, 4}) {
    ScopedScoringThreads scoped(threads);
    auto records =
        EvaluateInstances(lime, matcher, dataset, idx, nullptr, 9, options);
    ASSERT_TRUE(records.ok()) << "threads=" << threads;
    ASSERT_EQ(records->size(), idx.size());
    runs.push_back(std::move(records.value()));
  }
  for (size_t run = 1; run < runs.size(); ++run) {
    for (size_t i = 0; i < runs[0].size(); ++i) {
      SCOPED_TRACE("run=" + std::to_string(run) +
                   " instance=" + std::to_string(i));
      ExpectRecordsBitIdentical(runs[0][i], runs[run][i]);
    }
    ExpectAggregatesBitIdentical(ReduceInstances("lime", runs[0]),
                                 ReduceInstances("lime", runs[run]));
  }
}

TEST(EvaluateInstancesTest, TracingDoesNotChangeResults) {
  // The observability contract: enabling span recording must not change a
  // single number, for any thread count. Baseline with tracing off, then
  // re-run at threads 1/2/4 with tracing on.
  const Dataset dataset = SmallDataset();
  TokenWeightMatcher matcher({{"vortexa", 1.0}, {"lumenix", 0.7}}, -0.2);
  const auto idx = SomeInstances(matcher, dataset, 4);
  ASSERT_FALSE(idx.empty());
  LimeConfig config;
  config.perturbation.num_samples = 32;
  LimeExplainer lime(config);

  auto baseline = EvaluateInstances(lime, matcher, dataset, idx, nullptr, 9);
  ASSERT_TRUE(baseline.ok());

  for (int threads : {1, 2, 4}) {
    ScopedScoringThreads scoped_threads(threads);
    ScopedTracing scoped_tracing;
    auto traced = EvaluateInstances(lime, matcher, dataset, idx, nullptr, 9);
    ASSERT_TRUE(traced.ok()) << "threads=" << threads;
    // Spans were actually recorded (the run is not silently untraced).
    EXPECT_FALSE(CollectTraceEvents().empty()) << "threads=" << threads;
    ASSERT_EQ(traced->size(), baseline->size());
    for (size_t i = 0; i < baseline->size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " instance=" + std::to_string(i));
      ExpectRecordsBitIdentical(baseline.value()[i], traced.value()[i]);
    }
  }
}

TEST(EvaluateInstancesTest, SeedDerivationIsPerIndexNotPerPosition) {
  // Shuffling the index list must not change any individual record: the
  // instance seed depends on the pair index, not the shard position.
  const Dataset dataset = SmallDataset();
  TokenWeightMatcher matcher({{"vortexa", 1.0}}, -0.1);
  const auto idx = SomeInstances(matcher, dataset, 5);
  ASSERT_GE(idx.size(), 2u);
  std::vector<int> reversed(idx.rbegin(), idx.rend());
  LimeConfig config;
  config.perturbation.num_samples = 32;
  LimeExplainer lime(config);
  auto forward = EvaluateInstances(lime, matcher, dataset, idx, nullptr, 9);
  auto backward =
      EvaluateInstances(lime, matcher, dataset, reversed, nullptr, 9);
  ASSERT_TRUE(forward.ok() && backward.ok());
  for (size_t i = 0; i < idx.size(); ++i) {
    SCOPED_TRACE("i=" + std::to_string(i));
    ExpectRecordsBitIdentical(forward.value()[i],
                              backward.value()[idx.size() - 1 - i]);
  }
}

TEST(EvaluateExplainerOnDatasetTest, MatchesSerialReferenceImplementation) {
  // The historical implementation, verbatim: one serial loop accumulating
  // sums in instance order, scaled at the end. The refactored
  // EvaluateExplainerOnDataset (sharded EvaluateInstances + deterministic
  // reduction) must reproduce it bit for bit.
  const Dataset dataset = SmallDataset();
  TokenWeightMatcher matcher({{"vortexa", 1.0}, {"lumenix", 0.7}}, -0.2);
  const auto idx = SomeInstances(matcher, dataset, 6);
  ASSERT_FALSE(idx.empty());
  LimeConfig config;
  config.perturbation.num_samples = 48;
  LimeExplainer lime(config);
  const uint64_t seed = 9;

  ExplainerAggregate reference;
  reference.name = lime.Name();
  std::vector<double> reference_aopc;
  Tokenizer tokenizer;
  for (int i : idx) {
    const RecordPair& pair = dataset.pair(i);
    auto explained = ExplainAsUnits(lime, matcher, pair,
                                    seed ^ (static_cast<uint64_t>(i) << 20));
    ASSERT_TRUE(explained.ok());
    const WordExplanation& words = explained->first;
    const std::vector<ExplanationUnit>& units = explained->second;
    if (units.empty()) continue;
    EvalInstance instance{PairTokenView(AnonymousSchema(pair), tokenizer,
                                        pair),
                          units, words.base_score, matcher.threshold()};
    const double aopc = AopcDeletion(matcher, instance, 5);
    reference_aopc.push_back(aopc);
    reference.aopc += aopc;
    reference.comprehensiveness_at_1 +=
        ComprehensivenessAtK(matcher, instance, 1);
    reference.comprehensiveness_at_3 +=
        ComprehensivenessAtK(matcher, instance, 3);
    reference.sufficiency_at_1 += SufficiencyAtK(matcher, instance, 1);
    reference.sufficiency_at_3 += SufficiencyAtK(matcher, instance, 3);
    reference.comprehensiveness_budget5 +=
        ComprehensivenessAtTokenBudget(matcher, instance, 5);
    reference.decision_flip_rate +=
        DecisionFlipAtTop(matcher, instance) ? 1.0 : 0.0;
    const ComprehensibilityResult comp =
        EvaluateComprehensibility(words, units, nullptr);
    reference.total_units += comp.total_units;
    reference.effective_units += comp.effective_units;
    reference.words_per_unit += comp.avg_words_per_unit;
    reference.semantic_coherence += comp.semantic_coherence;
    reference.attribute_purity += comp.attribute_purity;
    reference.surrogate_r2 += words.surrogate_r2;
    ++reference.instances;
  }
  ASSERT_GT(reference.instances, 0);
  const double inv = 1.0 / reference.instances;
  reference.aopc *= inv;
  reference.comprehensiveness_at_1 *= inv;
  reference.comprehensiveness_at_3 *= inv;
  reference.sufficiency_at_1 *= inv;
  reference.sufficiency_at_3 *= inv;
  reference.comprehensiveness_budget5 *= inv;
  reference.decision_flip_rate *= inv;
  reference.total_units *= inv;
  reference.effective_units *= inv;
  reference.words_per_unit *= inv;
  reference.semantic_coherence *= inv;
  reference.attribute_purity *= inv;
  reference.surrogate_r2 *= inv;

  for (int threads : {1, 4}) {
    ScopedScoringThreads scoped(threads);
    std::vector<double> per_instance;
    auto agg = EvaluateExplainerOnDataset(lime, matcher, dataset, idx,
                                          nullptr, seed, &per_instance);
    ASSERT_TRUE(agg.ok()) << "threads=" << threads;
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(per_instance, reference_aopc);
    EXPECT_EQ(agg->instances, reference.instances);
    EXPECT_EQ(agg->aopc, reference.aopc);
    EXPECT_EQ(agg->comprehensiveness_at_1, reference.comprehensiveness_at_1);
    EXPECT_EQ(agg->comprehensiveness_at_3, reference.comprehensiveness_at_3);
    EXPECT_EQ(agg->sufficiency_at_1, reference.sufficiency_at_1);
    EXPECT_EQ(agg->sufficiency_at_3, reference.sufficiency_at_3);
    EXPECT_EQ(agg->comprehensiveness_budget5,
              reference.comprehensiveness_budget5);
    EXPECT_EQ(agg->decision_flip_rate, reference.decision_flip_rate);
    EXPECT_EQ(agg->total_units, reference.total_units);
    EXPECT_EQ(agg->effective_units, reference.effective_units);
    EXPECT_EQ(agg->words_per_unit, reference.words_per_unit);
    EXPECT_EQ(agg->semantic_coherence, reference.semantic_coherence);
    EXPECT_EQ(agg->attribute_purity, reference.attribute_purity);
    EXPECT_EQ(agg->surrogate_r2, reference.surrogate_r2);
  }
}

TEST(ReduceInstancesTest, FilteredReductionSplitsByPrediction) {
  InstanceEvaluation match;
  match.evaluated = true;
  match.predicted_match = true;
  match.aopc = 0.8;
  InstanceEvaluation nonmatch;
  nonmatch.evaluated = true;
  nonmatch.predicted_match = false;
  nonmatch.aopc = 0.2;
  InstanceEvaluation skipped;  // evaluated = false: never counted
  const std::vector<InstanceEvaluation> records = {match, nonmatch, skipped};

  const auto all = ReduceInstances("x", records);
  EXPECT_EQ(all.instances, 2);
  EXPECT_DOUBLE_EQ(all.aopc, 0.5);
  const auto only_match = ReduceInstancesIf(
      "x", records,
      [](const InstanceEvaluation& r) { return r.predicted_match; });
  EXPECT_EQ(only_match.instances, 1);
  EXPECT_DOUBLE_EQ(only_match.aopc, 0.8);
}

BenchmarkEntry TinyEntry(const std::string& name, uint64_t seed) {
  BenchmarkEntry entry;
  entry.name = name;
  entry.config.num_matches = 30;
  entry.config.num_nonmatches = 30;
  entry.config.seed = seed;
  return entry;
}

TEST(ExperimentRunnerTest, RunsTheFullGridAndJsonRoundTrips) {
  ExperimentSpec spec;
  spec.name = "runner_grid_test";
  spec.datasets = {TinyEntry("tiny-a", 3), TinyEntry("tiny-b", 4)};
  spec.matcher = MatcherKind::kLogistic;
  spec.instances_per_dataset = 3;
  spec.seed = 7;
  spec.suite = [](const TrainedPipeline&) {
    std::vector<SuiteEntry> suite;
    LimeConfig lime;
    lime.perturbation.num_samples = 24;
    suite.push_back({"lime", std::make_unique<LimeExplainer>(lime)});
    suite.push_back({"random", std::make_unique<RandomExplainer>()});
    return suite;
  };
  ExperimentRunner runner(std::move(spec));
  auto result = runner.Run();
  ASSERT_TRUE(result.ok());

  EXPECT_EQ(result->name, "runner_grid_test");
  ASSERT_EQ(result->cells.size(), 4u);  // 2 datasets x 2 variants
  EXPECT_EQ(result->VariantNames(),
            (std::vector<std::string>{"lime", "random"}));
  for (const ExperimentCell& cell : result->cells) {
    EXPECT_EQ(cell.instances.size(), 3u);
    EXPECT_GT(cell.aggregate.instances, 0);
    EXPECT_TRUE(std::isfinite(cell.aggregate.aopc));
    if (cell.variant == "lime") {
      // LIME perturbations go through the batch scoring engine, so the
      // cell must have been attributed a non-zero counter delta.
      EXPECT_GT(cell.scoring.predictions, 0);
    }
  }
  const auto lime_aopc = result->PerInstanceAopc("lime");
  EXPECT_EQ(lime_aopc.size(),
            static_cast<size_t>(result->ReduceAcross("lime").instances));

  const std::string json = ExperimentResultToJson(*result);
  EXPECT_NE(json.find("\"experiment\":\"runner_grid_test\""),
            std::string::npos);
  EXPECT_NE(json.find("\"per_instance_aopc\""), std::string::npos);
  EXPECT_NE(json.find("\"aggregate\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');

  const std::string path = ::testing::TempDir() + "/runner_result.json";
  ASSERT_TRUE(WriteExperimentJson(*result, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  EXPECT_EQ(static_cast<size_t>(std::ftell(f)), json.size());
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(ExperimentRunnerTest, GridIsBitIdenticalAcrossThreadCounts) {
  auto make_runner = [] {
    ExperimentSpec spec;
    spec.name = "determinism";
    spec.datasets = {TinyEntry("tiny", 3)};
    spec.matcher = MatcherKind::kLogistic;
    spec.instances_per_dataset = 4;
    spec.seed = 7;
    spec.suite = [](const TrainedPipeline&) {
      std::vector<SuiteEntry> suite;
      LimeConfig lime;
      lime.perturbation.num_samples = 32;
      suite.push_back({"lime", std::make_unique<LimeExplainer>(lime)});
      return suite;
    };
    return ExperimentRunner(std::move(spec));
  };
  std::vector<ExperimentResult> results;
  for (int threads : {1, 4}) {
    ScopedScoringThreads scoped(threads);
    auto result = make_runner().Run();
    ASSERT_TRUE(result.ok()) << "threads=" << threads;
    results.push_back(std::move(result.value()));
  }
  ASSERT_EQ(results[0].cells.size(), results[1].cells.size());
  for (size_t c = 0; c < results[0].cells.size(); ++c) {
    SCOPED_TRACE("cell=" + std::to_string(c));
    ExpectAggregatesBitIdentical(results[0].cells[c].aggregate,
                                 results[1].cells[c].aggregate);
    ASSERT_EQ(results[0].cells[c].instances.size(),
              results[1].cells[c].instances.size());
    for (size_t i = 0; i < results[0].cells[c].instances.size(); ++i) {
      ExpectRecordsBitIdentical(results[0].cells[c].instances[i],
                                results[1].cells[c].instances[i]);
    }
  }
}

TEST(ExperimentRunnerTest, CellsAreIndependentOfCompletionOrder) {
  // Property check behind the resume contract: executing the grid in a
  // shuffled order must not change a single byte of the serialized result
  // — cells land in canonical slots and derive their seeds from the grid
  // key, and the registry delta of a cell depends only on that cell's own
  // activity (all-zero entries registered by earlier cells are dropped).
  // Stable-timing mode zeroes the wall-clock fields that legitimately
  // differ.
  SetStableTiming(true);
  auto make_runner = [] {
    ExperimentSpec spec;
    spec.name = "order_independence";
    spec.datasets = {TinyEntry("tiny-a", 3), TinyEntry("tiny-b", 4)};
    spec.matcher = MatcherKind::kLogistic;
    spec.instances_per_dataset = 2;
    spec.seed = 7;
    spec.suite = [](const TrainedPipeline&) {
      std::vector<SuiteEntry> suite;
      LimeConfig lime;
      lime.perturbation.num_samples = 16;
      suite.push_back({"lime", std::make_unique<LimeExplainer>(lime)});
      suite.push_back({"random", std::make_unique<RandomExplainer>()});
      return suite;
    };
    return ExperimentRunner(std::move(spec));
  };
  auto canonical = make_runner().Run();
  ASSERT_TRUE(canonical.ok());
  const std::string canonical_json = ExperimentResultToJson(*canonical);
  for (uint64_t shuffle_seed : {11u, 42u, 97u}) {
    SCOPED_TRACE("shuffle_seed=" + std::to_string(shuffle_seed));
    RunHooks hooks;
    hooks.shuffle_seed = shuffle_seed;
    auto shuffled = make_runner().Run(hooks);
    ASSERT_TRUE(shuffled.ok());
    EXPECT_EQ(ExperimentResultToJson(*shuffled), canonical_json);
  }
  SetStableTiming(false);
}

TEST(ExperimentRunnerTest, RegistryDeltaAgreesWithScoringStats) {
  // Each cell carries the full metrics-registry delta for its run; the
  // legacy ScoringStats view is derived from the same read, so the two
  // must agree exactly, and the per-stage prediction split must sum to
  // the total.
  ExperimentSpec spec;
  spec.name = "registry_consistency";
  spec.datasets = {TinyEntry("tiny", 3)};
  spec.matcher = MatcherKind::kLogistic;
  spec.instances_per_dataset = 3;
  spec.seed = 7;
  spec.suite = [](const TrainedPipeline&) {
    std::vector<SuiteEntry> suite;
    LimeConfig lime;
    lime.perturbation.num_samples = 24;
    suite.push_back({"lime", std::make_unique<LimeExplainer>(lime)});
    return suite;
  };
  ExperimentRunner runner(std::move(spec));
  auto result = runner.Run();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->cells.size(), 1u);
  const ExperimentCell& cell = result->cells[0];
  ASSERT_FALSE(cell.registry.empty());

  const MetricEntry* predictions =
      FindMetric(cell.registry, "crew/scoring/predictions");
  ASSERT_NE(predictions, nullptr);
  EXPECT_GT(predictions->count, 0);
  EXPECT_EQ(predictions->count, cell.scoring.predictions);

  const ScoringStats from_registry = ScoringStatsFromMetrics(cell.registry);
  EXPECT_EQ(from_registry.predictions, cell.scoring.predictions);
  EXPECT_EQ(from_registry.batches, cell.scoring.batches);
  EXPECT_EQ(from_registry.materialize_ms, cell.scoring.materialize_ms);
  EXPECT_EQ(from_registry.predict_ms, cell.scoring.predict_ms);

  // Per-stage split: crew/scoring/predictions/<stage> entries partition
  // the total prediction count.
  std::int64_t stage_sum = 0;
  int stages = 0;
  for (const MetricEntry& entry : cell.registry) {
    if (entry.name.rfind("crew/scoring/predictions/", 0) == 0) {
      stage_sum += entry.count;
      ++stages;
    }
  }
  EXPECT_GT(stages, 0);
  EXPECT_EQ(stage_sum, predictions->count);

  // The runner's own instrumentation was attributed to the cell too.
  const MetricEntry* instances =
      FindMetric(cell.registry, "crew/runner/instances");
  ASSERT_NE(instances, nullptr);
  EXPECT_EQ(instances->count, 3);
  const MetricEntry* wall = FindMetric(cell.registry, "crew/runner/instance");
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(wall->kind, MetricKind::kDuration);
  EXPECT_EQ(wall->count, 3);
}

TEST(ExperimentRunnerTest, RunWithAppendsCustomCells) {
  ExperimentSpec spec;
  spec.name = "custom";
  spec.datasets = {TinyEntry("tiny", 3)};
  spec.matcher = MatcherKind::kLogistic;
  spec.instances_per_dataset = 2;
  ExperimentRunner runner(std::move(spec));
  auto result = runner.RunWith(
      [](const PreparedDataset& prepared, ExperimentResult* out) -> Status {
        ExperimentCell cell;
        cell.dataset = prepared.name;
        cell.variant = "custom";
        cell.metrics.push_back(
            {"instances", static_cast<double>(prepared.instances.size())});
        cell.notes.push_back({"note", "value"});
        out->cells.push_back(std::move(cell));
        return Status::Ok();
      });
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->cells.size(), 1u);
  EXPECT_EQ(result->cells[0].dataset, "tiny");
  EXPECT_EQ(result->cells[0].metrics[0].second, 2.0);
  // Metric/note cells serialize without an aggregate block.
  const std::string json = ExperimentResultToJson(*result);
  EXPECT_EQ(json.find("\"aggregate\""), std::string::npos);
  EXPECT_NE(json.find("\"notes\""), std::string::npos);
}

TEST(SinksTest, TableColumnsFormatCells) {
  ExperimentCell cell;
  cell.dataset = "d";
  cell.variant = "v";
  cell.aggregate.aopc = 0.25;
  cell.metrics.push_back({"f1", 0.5});
  cell.notes.push_back({"label", "hello"});
  const std::vector<ExperimentCell> cells = {cell};
  Table table = MakeCellTable(
      cells,
      {AggColumn("aopc", &ExplainerAggregate::aopc, 2),
       MetricColumn("f1", "f1", 1), MetricColumn("missing", "nope"),
       NoteColumn("label", "label")});
  const std::string text = table.ToAligned();
  EXPECT_NE(text.find("0.25"), std::string::npos);
  EXPECT_NE(text.find("0.5"), std::string::npos);
  EXPECT_NE(text.find("hello"), std::string::npos);
  EXPECT_NE(text.find("-"), std::string::npos);  // missing metric
}

}  // namespace
}  // namespace crew
