#include "crew/core/html_report.h"

#include <gtest/gtest.h>

#include "crew/core/crew_explainer.h"
#include "test_util.h"

namespace crew {
namespace {

using testing::MakePair;
using testing::TokenWeightMatcher;

TEST(HtmlEscapeTest, SpecialCharacters) {
  EXPECT_EQ(HtmlEscape("a<b>c&d\"e"), "a&lt;b&gt;c&amp;d&quot;e");
  EXPECT_EQ(HtmlEscape("plain"), "plain");
}

TEST(HtmlReportTest, RendersSelfContainedDocument) {
  TokenWeightMatcher matcher({{"anchor", 2.0}});
  const RecordPair pair =
      MakePair("anchor beta", "gamma", "other", "delta");
  CrewConfig config;
  config.importance.perturbation.num_samples = 64;
  CrewExplainer explainer(nullptr, config);
  auto e = explainer.ExplainClusters(matcher, pair, 5);
  ASSERT_TRUE(e.ok());
  const Schema schema = AnonymousSchema(pair);
  // Title carries markup: it must come out escaped (tokens themselves can
  // never contain < or > — the tokenizer strips punctuation).
  const std::string html = RenderExplanationHtml(
      schema, pair, e.value(), "report <script>alert(1)</script>");

  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("anchor"), std::string::npos);
  // Every cluster appears in the legend.
  for (const auto& unit : e->units) {
    EXPECT_NE(html.find(HtmlEscape(unit.label)), std::string::npos);
  }
  EXPECT_EQ(html.find("<script>"), std::string::npos);
  EXPECT_NE(html.find("&lt;script&gt;"), std::string::npos);
}

TEST(HtmlReportTest, EmptyExplanation) {
  const RecordPair pair = MakePair("", "", "", "");
  ClusterExplanation empty;
  const std::string html =
      RenderExplanationHtml(AnonymousSchema(pair), pair, empty);
  EXPECT_NE(html.find("</html>"), std::string::npos);
}

}  // namespace
}  // namespace crew
