// Tests for the process-wide metrics registry: counter/duration/histogram
// snapshot behavior, deterministic (sorted) snapshot ordering, the atomic
// Reset() epoch (no increment may be lost or double-counted when resets
// race with writers — the TSan job runs this file), the ScoringStats shim,
// and the thread-local stage label.
//
// The registry is a process singleton, so every test uses metric names
// unique to itself and asserts on deltas rather than absolute totals.

#include "crew/common/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "crew/common/logging.h"
#include "crew/explain/batch_scorer.h"

namespace crew {
namespace {

const MetricEntry& MetricOrDie(const MetricsSnapshot& snapshot,
                               const std::string& name) {
  const MetricEntry* entry = FindMetric(snapshot, name);
  CREW_CHECK(entry != nullptr) << name;
  return *entry;
}

TEST(MetricsRegistryTest, CounterAccumulatesAndInterns) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("test/registry/counter_a");
  EXPECT_EQ(reg.GetCounter("test/registry/counter_a"), c);  // interned

  const MetricsSnapshot before = reg.Snapshot();
  c->Add(5);
  c->Increment();
  const MetricsSnapshot delta = MetricsDelta(reg.Snapshot(), before);
  const MetricEntry& entry = MetricOrDie(delta, "test/registry/counter_a");
  EXPECT_EQ(entry.kind, MetricKind::kCounter);
  EXPECT_EQ(entry.count, 6);
  EXPECT_EQ(entry.total_ms, 0.0);
}

TEST(MetricsRegistryTest, DurationRecordsCountAndTotal) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  DurationStat* d = reg.GetDuration("test/registry/duration_a");
  const MetricsSnapshot before = reg.Snapshot();
  d->Add(0.25);
  d->Add(0.5);
  const MetricsSnapshot delta = MetricsDelta(reg.Snapshot(), before);
  const MetricEntry& entry = MetricOrDie(delta, "test/registry/duration_a");
  EXPECT_EQ(entry.kind, MetricKind::kDuration);
  EXPECT_EQ(entry.count, 2);
  EXPECT_NEAR(entry.total_ms, 750.0, 1e-6);
}

TEST(MetricsRegistryTest, ScopedDurationTimesItsScope) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  DurationStat* d = reg.GetDuration("test/registry/scoped_duration");
  const MetricsSnapshot before = reg.Snapshot();
  { ScopedDuration scope(d); }
  const MetricsSnapshot delta = MetricsDelta(reg.Snapshot(), before);
  const MetricEntry& entry =
      MetricOrDie(delta, "test/registry/scoped_duration");
  EXPECT_EQ(entry.count, 1);
  EXPECT_GE(entry.total_ms, 0.0);
}

TEST(MetricsRegistryTest, HistogramExpandsToFixedBucketSet) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Histogram* h = reg.GetHistogram("test/registry/hist");
  const MetricsSnapshot before = reg.Snapshot();
  h->Observe(1);     // le_0001
  h->Observe(2);     // le_0002
  h->Observe(3);     // le_0004
  h->Observe(1024);  // le_1024
  h->Observe(5000);  // le_inf
  const MetricsSnapshot after = reg.Snapshot();
  const MetricsSnapshot delta = MetricsDelta(after, before);

  // The full bucket set is present (with zero counts) even before any
  // observation lands in it, so snapshot shape never depends on the data.
  int buckets = 0;
  for (const MetricEntry& entry : after) {
    if (entry.name.rfind("test/registry/hist/le_", 0) == 0) ++buckets;
  }
  EXPECT_EQ(buckets, Histogram::kNumBuckets);

  EXPECT_EQ(MetricOrDie(delta, "test/registry/hist/le_0001").count, 1);
  EXPECT_EQ(MetricOrDie(delta, "test/registry/hist/le_0002").count, 1);
  EXPECT_EQ(MetricOrDie(delta, "test/registry/hist/le_0004").count, 1);
  EXPECT_EQ(MetricOrDie(delta, "test/registry/hist/le_1024").count, 1);
  EXPECT_EQ(MetricOrDie(delta, "test/registry/hist/le_inf").count, 1);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  // Register deliberately out of order; snapshot must still be sorted.
  reg.GetCounter("test/registry/sort_z");
  reg.GetCounter("test/registry/sort_a");
  reg.GetCounter("test/registry/sort_m");
  const MetricsSnapshot snapshot = reg.Snapshot();
  EXPECT_TRUE(std::is_sorted(snapshot.begin(), snapshot.end(),
                             [](const MetricEntry& a, const MetricEntry& b) {
                               return a.name < b.name;
                             }));
}

TEST(MetricsRegistryTest, ShardsSumAcrossThreads) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("test/registry/threaded");
  const MetricsSnapshot before = reg.Snapshot();
  constexpr int kThreads = 4;
  constexpr int kAdds = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kAdds; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  const MetricsSnapshot delta = MetricsDelta(reg.Snapshot(), before);
  EXPECT_EQ(MetricOrDie(delta, "test/registry/threaded").count,
            kThreads * kAdds);
}

TEST(MetricsRegistryTest, ResetRebasesWithoutLosingIncrements) {
  // The epoch contract: every increment lands in exactly one snapshot —
  // either the delta a Reset() returns or a later snapshot, never both,
  // never neither. Hammer a counter from several threads while another
  // thread resets in a loop, then check the captured deltas plus the final
  // snapshot account for every increment exactly once. Run under TSan to
  // cover the original ScoringStats reset race.
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("test/registry/reset_race");
  // Rebase so earlier tests' writes to other metrics don't matter; we only
  // read this one counter from the captured snapshots.
  std::int64_t base =
      MetricOrDie(reg.Snapshot(), "test/registry/reset_race").count;

  constexpr int kThreads = 4;
  constexpr int kAdds = 5000;
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([c] {
      for (int i = 0; i < kAdds; ++i) c->Increment();
    });
  }
  std::int64_t captured = 0;
  std::thread resetter([&] {
    while (!done.load(std::memory_order_acquire)) {
      captured += MetricOrDie(reg.Reset(), "test/registry/reset_race").count;
    }
  });
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  resetter.join();
  const std::int64_t remaining =
      MetricOrDie(reg.Snapshot(), "test/registry/reset_race").count;
  EXPECT_EQ(captured + remaining, base + kThreads * kAdds);
}

TEST(MetricsDeltaTest, SubtractsByNameAndKeepsNewEntries) {
  MetricsSnapshot before;
  before.push_back({"a", MetricKind::kCounter, 3, 0.0});
  before.push_back({"d", MetricKind::kDuration, 1, 10.0});
  MetricsSnapshot after;
  after.push_back({"a", MetricKind::kCounter, 10, 0.0});
  after.push_back({"b", MetricKind::kCounter, 2, 0.0});  // registered later
  after.push_back({"d", MetricKind::kDuration, 4, 35.0});
  const MetricsSnapshot delta = MetricsDelta(after, before);
  EXPECT_EQ(MetricOrDie(delta, "a").count, 7);
  EXPECT_EQ(MetricOrDie(delta, "b").count, 2);
  EXPECT_EQ(MetricOrDie(delta, "d").count, 3);
  EXPECT_NEAR(MetricOrDie(delta, "d").total_ms, 25.0, 1e-9);
}

TEST(MetricsSumTest, SumsByNameSorted) {
  MetricsSnapshot a;
  a.push_back({"x", MetricKind::kCounter, 1, 0.0});
  a.push_back({"y", MetricKind::kDuration, 2, 5.0});
  MetricsSnapshot b;
  b.push_back({"w", MetricKind::kCounter, 4, 0.0});
  b.push_back({"x", MetricKind::kCounter, 2, 0.0});
  const MetricsSnapshot sum = MetricsSum({a, b});
  EXPECT_TRUE(std::is_sorted(sum.begin(), sum.end(),
                             [](const MetricEntry& p, const MetricEntry& q) {
                               return p.name < q.name;
                             }));
  EXPECT_EQ(MetricOrDie(sum, "w").count, 4);
  EXPECT_EQ(MetricOrDie(sum, "x").count, 3);
  EXPECT_EQ(MetricOrDie(sum, "y").count, 2);
  EXPECT_NEAR(MetricOrDie(sum, "y").total_ms, 5.0, 1e-9);
}

TEST(MetricsSumTest, SumIsIndependentOfSnapshotAndEntryOrder) {
  // Regression test for the --metrics summary of resumed runs: a resumed
  // grid hands MetricsSum the same per-cell deltas in a different order
  // (and restored cells' registries were re-sorted on parse), so the merge
  // must canonicalize — sorted by name — rather than echo input order.
  MetricsSnapshot a;
  a.push_back({"b/metric", MetricKind::kCounter, 1, 0.0});
  a.push_back({"c/metric", MetricKind::kDuration, 2, 3.0});
  MetricsSnapshot b;
  b.push_back({"a/metric", MetricKind::kCounter, 5, 0.0});
  b.push_back({"b/metric", MetricKind::kCounter, 7, 0.0});
  MetricsSnapshot b_reversed(b.rbegin(), b.rend());

  const MetricsSnapshot forward = MetricsSum({a, b});
  const MetricsSnapshot backward = MetricsSum({b_reversed, a});
  ASSERT_EQ(forward.size(), 3u);
  ASSERT_EQ(backward.size(), 3u);
  for (size_t i = 0; i < forward.size(); ++i) {
    EXPECT_EQ(forward[i].name, backward[i].name);
    EXPECT_EQ(forward[i].kind, backward[i].kind);
    EXPECT_EQ(forward[i].count, backward[i].count);
    EXPECT_EQ(forward[i].total_ms, backward[i].total_ms);
  }
  EXPECT_EQ(forward[0].name, "a/metric");
  EXPECT_EQ(forward[1].name, "b/metric");
  EXPECT_EQ(forward[1].count, 8);
  EXPECT_EQ(forward[2].name, "c/metric");
}

TEST(DropZeroMetricsTest, KeepsOnlyEntriesWithActivity) {
  // Per-cell registry deltas are filtered through this so a cell's delta
  // shape does not depend on which metrics earlier cells registered —
  // the property that makes cell output independent of execution order.
  MetricsSnapshot snapshot;
  snapshot.push_back({"active/count", MetricKind::kCounter, 3, 0.0});
  snapshot.push_back({"idle", MetricKind::kCounter, 0, 0.0});
  snapshot.push_back({"active/ms", MetricKind::kDuration, 0, 1.5});
  snapshot.push_back({"idle/duration", MetricKind::kDuration, 0, 0.0});
  const MetricsSnapshot kept = DropZeroMetrics(snapshot);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].name, "active/count");
  EXPECT_EQ(kept[1].name, "active/ms");
  EXPECT_TRUE(DropZeroMetrics(MetricsSnapshot()).empty());
}

TEST(FindMetricTest, ReturnsNullForMissing) {
  MetricsSnapshot snapshot;
  snapshot.push_back({"present", MetricKind::kCounter, 1, 0.0});
  EXPECT_NE(FindMetric(snapshot, "present"), nullptr);
  EXPECT_EQ(FindMetric(snapshot, "absent"), nullptr);
}

TEST(ScopedMetricStageTest, NestsAndRestores) {
  EXPECT_STREQ(CurrentMetricStage(), "other");
  {
    ScopedMetricStage outer("attribution");
    EXPECT_STREQ(CurrentMetricStage(), "attribution");
    {
      ScopedMetricStage inner("eval");
      EXPECT_STREQ(CurrentMetricStage(), "eval");
    }
    EXPECT_STREQ(CurrentMetricStage(), "attribution");
  }
  EXPECT_STREQ(CurrentMetricStage(), "other");
}

TEST(ScopedMetricStageTest, IsThreadLocal) {
  ScopedMetricStage stage("attribution");
  const char* seen = nullptr;
  std::thread t([&] { seen = CurrentMetricStage(); });
  t.join();
  EXPECT_STREQ(seen, "other");  // the label never leaks across threads
  EXPECT_STREQ(CurrentMetricStage(), "attribution");
}

TEST(ScoringStatsShimTest, ViewsTheRegistry) {
  // GlobalScoringStats must be exactly the scoring entries of a registry
  // snapshot, and ScoringStatsFromMetrics must agree when handed that
  // snapshot directly.
  MetricsRegistry& reg = MetricsRegistry::Global();
  const ScoringStats before = GlobalScoringStats();
  reg.GetCounter("crew/scoring/predictions")->Add(7);
  reg.GetCounter("crew/scoring/batches")->Add(2);
  reg.GetDuration("crew/scoring/materialize")->Add(0.010);
  reg.GetDuration("crew/scoring/predict")->Add(0.020);
  const ScoringStats after = GlobalScoringStats();
  EXPECT_EQ(after.predictions - before.predictions, 7);
  EXPECT_EQ(after.batches - before.batches, 2);
  EXPECT_NEAR(after.materialize_ms - before.materialize_ms, 10.0, 1e-6);
  EXPECT_NEAR(after.predict_ms - before.predict_ms, 20.0, 1e-6);

  const ScoringStats from_snapshot =
      ScoringStatsFromMetrics(reg.Snapshot());
  EXPECT_EQ(from_snapshot.predictions, after.predictions);
  EXPECT_EQ(from_snapshot.batches, after.batches);
  EXPECT_NEAR(from_snapshot.materialize_ms, after.materialize_ms, 1e-6);
  EXPECT_NEAR(from_snapshot.predict_ms, after.predict_ms, 1e-6);
}

}  // namespace
}  // namespace crew
