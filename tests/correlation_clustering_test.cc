#include "crew/core/correlation_clustering.h"

#include <gtest/gtest.h>

#include <set>

#include "crew/common/rng.h"
#include "crew/core/crew_explainer.h"
#include "test_util.h"

namespace crew {
namespace {

// Distance matrix with `k` planted groups of `per` items: tiny
// within-group, unit across-group.
la::Matrix Planted(int k, int per) {
  const int n = k * per;
  la::Matrix d(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double v = (i / per == j / per) ? 0.1 : 0.9;
      d.At(i, j) = d.At(j, i) = v;
    }
  }
  return d;
}

TEST(CorrelationClusteringTest, RecoversPlantedGroups) {
  for (int k : {2, 3, 5}) {
    const la::Matrix d = Planted(k, 4);
    const auto labels =
        CorrelationCluster(d, CorrelationClusteringConfig(), 7);
    std::set<int> distinct(labels.begin(), labels.end());
    EXPECT_EQ(static_cast<int>(distinct.size()), k);
    EXPECT_EQ(CorrelationDisagreements(d, 0.45, labels), 0);
    // Items in the same planted group share a label.
    for (size_t i = 0; i < labels.size(); ++i) {
      EXPECT_EQ(labels[i], labels[(i / 4) * 4]);
    }
  }
}

TEST(CorrelationClusteringTest, LabelsAreDense) {
  const la::Matrix d = Planted(3, 3);
  const auto labels = CorrelationCluster(d, CorrelationClusteringConfig(), 3);
  std::set<int> distinct(labels.begin(), labels.end());
  EXPECT_EQ(*distinct.begin(), 0);
  EXPECT_EQ(*distinct.rbegin(), static_cast<int>(distinct.size()) - 1);
}

TEST(CorrelationClusteringTest, ThresholdControlsGranularity) {
  const la::Matrix d = Planted(2, 4);  // within 0.1, across 0.9
  CorrelationClusteringConfig loose;
  loose.threshold = 0.95;  // everything is a positive edge
  const auto one = CorrelationCluster(d, loose, 5);
  EXPECT_EQ(std::set<int>(one.begin(), one.end()).size(), 1u);
  CorrelationClusteringConfig strict;
  strict.threshold = 0.05;  // everything negative -> all singletons
  const auto many = CorrelationCluster(d, strict, 5);
  EXPECT_EQ(std::set<int>(many.begin(), many.end()).size(), 8u);
}

TEST(CorrelationClusteringTest, DeterministicGivenSeed) {
  const la::Matrix d = Planted(3, 4);
  const auto a = CorrelationCluster(d, CorrelationClusteringConfig(), 11);
  const auto b = CorrelationCluster(d, CorrelationClusteringConfig(), 11);
  EXPECT_EQ(a, b);
}

TEST(CorrelationClusteringTest, TrivialInputs) {
  la::Matrix empty(0, 0);
  EXPECT_TRUE(
      CorrelationCluster(empty, CorrelationClusteringConfig(), 1).empty());
  la::Matrix one(1, 1);
  EXPECT_EQ(CorrelationCluster(one, CorrelationClusteringConfig(), 1),
            (std::vector<int>{0}));
}

TEST(CorrelationClusteringTest, LocalImprovementNeverHurts) {
  Rng rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    const int n = 8 + rng.UniformInt(8);
    la::Matrix d(n, n);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        d.At(i, j) = d.At(j, i) = rng.Uniform();
      }
    }
    CorrelationClusteringConfig no_polish;
    no_polish.improvement_sweeps = 0;
    CorrelationClusteringConfig polish;
    polish.improvement_sweeps = 3;
    const auto raw = CorrelationCluster(d, no_polish, 100 + trial);
    const auto improved = CorrelationCluster(d, polish, 100 + trial);
    EXPECT_LE(CorrelationDisagreements(d, 0.45, improved),
              CorrelationDisagreements(d, 0.45, raw));
  }
}

TEST(CrewCorrelationBackendTest, ProducesValidClusterExplanation) {
  testing::TokenWeightMatcher matcher({{"anchor", 2.0}});
  const RecordPair pair = testing::MakePair(
      "anchor alpha beta", "gamma delta", "anchor eps", "zeta eta");
  CrewConfig config;
  config.importance.perturbation.num_samples = 96;
  config.backend = CrewConfig::Backend::kCorrelation;
  CrewExplainer explainer(nullptr, config);
  auto e = explainer.ExplainClusters(matcher, pair, 9);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  ASSERT_FALSE(e->units.empty());
  EXPECT_EQ(static_cast<int>(e->units.size()), e->chosen_k);
  // Partition property still holds.
  std::set<int> covered;
  for (const auto& unit : e->units) {
    for (int i : unit.member_indices) {
      EXPECT_TRUE(covered.insert(i).second);
    }
  }
  EXPECT_EQ(covered.size(), e->words.attributions.size());
}

}  // namespace
}  // namespace crew
