#include "crew/data/magellan.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace crew {
namespace {

const char kTableA[] =
    "id,name,price\n"
    "0,acme router,99\n"
    "1,\"zeta, inc blender\",45\n";
const char kTableB[] =
    "id,name,price\n"
    "100,acme router x,95\n"
    "101,other gadget,10\n";
const char kPairs[] =
    "ltable_id,rtable_id,label\n"
    "0,100,1\n"
    "0,101,0\n"
    "1,101,0\n";

TEST(MagellanTest, LoadsPairsWithResolvedRecords) {
  auto d = LoadMagellanFromStrings(kTableA, kTableB, kPairs);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->size(), 3);
  EXPECT_EQ(d->MatchCount(), 1);
  EXPECT_EQ(d->schema().size(), 2);
  EXPECT_EQ(d->schema().name(0), "name");
  EXPECT_EQ(d->pair(0).left.values[0], "acme router");
  EXPECT_EQ(d->pair(0).right.values[0], "acme router x");
  EXPECT_EQ(d->pair(2).left.values[0], "zeta, inc blender");  // quoted CSV
}

TEST(MagellanTest, RejectsSchemaMismatch) {
  const char* other = "id,name,brand\n100,x,y\n";
  EXPECT_FALSE(LoadMagellanFromStrings(kTableA, other, kPairs).ok());
}

TEST(MagellanTest, RejectsUnknownIds) {
  const char* bad_pairs = "ltable_id,rtable_id,label\n99,100,1\n";
  auto d = LoadMagellanFromStrings(kTableA, kTableB, bad_pairs);
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kNotFound);
}

TEST(MagellanTest, RejectsBadHeadersAndLabels) {
  EXPECT_FALSE(
      LoadMagellanFromStrings("name\nx\n", kTableB, kPairs).ok());
  EXPECT_FALSE(LoadMagellanFromStrings(
                   kTableA, kTableB, "ltable_id,rtable_id,label\n0,100,7\n")
                   .ok());
  EXPECT_FALSE(LoadMagellanFromStrings(
                   kTableA, kTableB, "a,b\n0,100\n")
                   .ok());
}

TEST(MagellanTest, RejectsDuplicateIds) {
  const char* dup = "id,name,price\n0,x,1\n0,y,2\n";
  EXPECT_FALSE(LoadMagellanFromStrings(dup, kTableB, kPairs).ok());
}

TEST(MagellanTest, DirectoryLayout) {
  const std::string dir = ::testing::TempDir() + "/magellan_demo";
  std::filesystem::create_directories(dir);
  for (const auto& [file, content] :
       {std::pair<const char*, const char*>{"tableA.csv", kTableA},
        {"tableB.csv", kTableB},
        {"train.csv", kPairs}}) {
    std::ofstream out(dir + "/" + file, std::ios::binary);
    out << content;
  }
  auto d = LoadMagellanDirectory(dir, "train");
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->size(), 3);
  EXPECT_FALSE(LoadMagellanDirectory(dir, "test").ok());  // missing split
  EXPECT_FALSE(LoadMagellanDirectory("/no/such/dir").ok());
}

}  // namespace
}  // namespace crew
