#include "crew/text/stopwords.h"

#include <gtest/gtest.h>

namespace crew {
namespace {

TEST(StopwordsTest, CommonWordsDetected) {
  for (const char* w : {"the", "and", "of", "with", "a", "is", "you"}) {
    EXPECT_TRUE(IsStopword(w)) << w;
  }
}

TEST(StopwordsTest, ContentWordsNotDetected) {
  for (const char* w : {"router", "sony", "price", "zz", "", "thee"}) {
    EXPECT_FALSE(IsStopword(w)) << w;
  }
}

TEST(StopwordsTest, CaseSensitiveByContract) {
  // The API contract is lower-cased input; uppercase is not matched.
  EXPECT_FALSE(IsStopword("The"));
}

TEST(StopwordsTest, BoundaryOfSortedTable) {
  // First and last entries of the sorted list are found (binary search
  // boundary conditions).
  EXPECT_TRUE(IsStopword("a"));
  EXPECT_TRUE(IsStopword("you"));
}

}  // namespace
}  // namespace crew
