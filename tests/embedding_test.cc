#include <gtest/gtest.h>

#include "crew/embed/ppmi.h"
#include "crew/embed/sgns.h"
#include "crew/embed/svd_embedding.h"

namespace crew {
namespace {

// Synthetic corpus with two clearly separated topics: words inside a topic
// co-occur, words across topics never do.
Corpus TwoTopicCorpus(int sentences_per_topic = 200) {
  Corpus corpus;
  const std::vector<std::vector<std::string>> topics = {
      {"router", "switch", "network", "ethernet", "wifi"},
      {"espresso", "coffee", "grinder", "beans", "crema"},
  };
  Rng rng(77);
  for (int t = 0; t < 2; ++t) {
    for (int s = 0; s < sentences_per_topic; ++s) {
      std::vector<std::string> sentence;
      for (int w = 0; w < 6; ++w) {
        sentence.push_back(
            topics[t][rng.UniformInt(static_cast<int>(topics[t].size()))]);
      }
      corpus.push_back(std::move(sentence));
    }
  }
  return corpus;
}

TEST(PpmiTest, PositiveForAssociatedPairs) {
  Vocabulary vocab;
  vocab.Add("a");
  vocab.Add("b");
  vocab.Add("c");
  CooccurrenceCounter counter(vocab, 1);
  for (int i = 0; i < 10; ++i) counter.AddSentence({"a", "b"});
  counter.AddSentence({"a", "c"});
  la::SymmetricSparse ppmi = BuildPpmiMatrix(counter);
  // a-b co-occur far above chance.
  la::Vec ea(3, 0.0);
  ea[0] = 1.0;
  const la::Vec row_a = ppmi.MatVec(ea);
  EXPECT_GT(row_a[1], 0.0);
}

TEST(PpmiTest, EmptyCountsGiveEmptyMatrix) {
  Vocabulary vocab;
  vocab.Add("a");
  CooccurrenceCounter counter(vocab, 1);
  la::SymmetricSparse ppmi = BuildPpmiMatrix(counter);
  EXPECT_EQ(ppmi.NonZeros(), 0);
}

template <typename TrainFn>
void ExpectTopicStructure(TrainFn train) {
  auto store_or = train(TwoTopicCorpus());
  ASSERT_TRUE(store_or.ok()) << store_or.status().ToString();
  const EmbeddingStore& store = store_or.value();
  // Within-topic similarity must dominate across-topic similarity.
  const double within = (store.Similarity("router", "switch") +
                         store.Similarity("espresso", "coffee")) /
                        2.0;
  const double across = (store.Similarity("router", "espresso") +
                         store.Similarity("switch", "beans")) /
                        2.0;
  EXPECT_GT(within, across + 0.2);
}

TEST(SvdEmbeddingTest, SeparatesTopics) {
  ExpectTopicStructure([](const Corpus& corpus) {
    SvdEmbeddingConfig config;
    config.dim = 8;
    return TrainSvdEmbeddings(corpus, config);
  });
}

TEST(SgnsEmbeddingTest, SeparatesTopics) {
  ExpectTopicStructure([](const Corpus& corpus) {
    SgnsConfig config;
    config.dim = 8;
    config.epochs = 5;
    // The synthetic corpus has 10 words of frequency ~0.1 each; word2vec's
    // frequent-word subsampling would discard ~90% of it. Real corpora have
    // Zipf tails; here we disable it to test the learner itself.
    config.subsample_threshold = 0.0;
    return TrainSgnsEmbeddings(corpus, config);
  });
}

TEST(SgnsEmbeddingTest, SubsamplingDropsFrequentTokensOnly) {
  // With subsampling on, ultra-frequent words still get vectors (they are
  // in the vocabulary) — the mechanism only thins their training windows.
  Corpus corpus = TwoTopicCorpus(50);
  SgnsConfig config;
  config.dim = 4;
  config.epochs = 1;
  config.subsample_threshold = 1e-3;
  auto store = TrainSgnsEmbeddings(corpus, config);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE(store->Contains("router"));
  EXPECT_TRUE(store->Contains("coffee"));
}

TEST(SgnsEmbeddingTest, DeterministicGivenSeed) {
  const Corpus corpus = TwoTopicCorpus(30);
  SgnsConfig config;
  config.dim = 4;
  config.epochs = 1;
  auto a = TrainSgnsEmbeddings(corpus, config);
  auto b = TrainSgnsEmbeddings(corpus, config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->Similarity("router", "wifi"),
                   b->Similarity("router", "wifi"));
}

TEST(EmbeddingTrainingTest, RejectsBadConfigAndEmptyCorpus) {
  SvdEmbeddingConfig svd;
  svd.dim = 0;
  EXPECT_FALSE(TrainSvdEmbeddings({}, svd).ok());
  svd.dim = 4;
  EXPECT_FALSE(TrainSvdEmbeddings({}, svd).ok());  // empty corpus

  SgnsConfig sgns;
  sgns.dim = -1;
  EXPECT_FALSE(TrainSgnsEmbeddings({}, sgns).ok());
  sgns.dim = 4;
  EXPECT_FALSE(TrainSgnsEmbeddings({}, sgns).ok());  // empty corpus
}

TEST(EmbeddingStoreTest, LookupAndOov) {
  Vocabulary vocab;
  vocab.Add("x");
  vocab.Add("y");
  la::Matrix vectors(2, 2);
  vectors.At(0, 0) = 3.0;  // normalized to (1, 0)
  vectors.At(1, 1) = 2.0;  // normalized to (0, 1)
  EmbeddingStore store(std::move(vocab), std::move(vectors));
  EXPECT_EQ(store.dim(), 2);
  EXPECT_EQ(store.size(), 2);
  EXPECT_NEAR(store.Lookup("x")[0], 1.0, 1e-12);
  EXPECT_EQ(store.Lookup("zzz"), (la::Vec{0.0, 0.0}));
  EXPECT_NEAR(store.Similarity("x", "y"), 0.0, 1e-12);
  EXPECT_NEAR(store.Similarity("x", "x"), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(store.Similarity("x", "zzz"), 0.0);
}

TEST(EmbeddingStoreTest, MeanVectorSkipsOov) {
  Vocabulary vocab;
  vocab.Add("x");
  vocab.Add("y");
  la::Matrix vectors(2, 2);
  vectors.At(0, 0) = 1.0;
  vectors.At(1, 1) = 1.0;
  EmbeddingStore store(std::move(vocab), std::move(vectors));
  const la::Vec mean = store.MeanVector({"x", "y", "unknown"});
  EXPECT_NEAR(mean[0], 0.5, 1e-12);
  EXPECT_NEAR(mean[1], 0.5, 1e-12);
  EXPECT_EQ(store.MeanVector({"nope"}), (la::Vec{0.0, 0.0}));
}

TEST(EmbeddingStoreTest, NearestNeighbors) {
  Vocabulary vocab;
  vocab.Add("a");
  vocab.Add("b");
  vocab.Add("c");
  la::Matrix vectors(3, 2);
  vectors.At(0, 0) = 1.0;                          // a -> (1,0)
  vectors.At(1, 0) = 0.9;
  vectors.At(1, 1) = 0.1;                          // b close to a
  vectors.At(2, 1) = 1.0;                          // c orthogonal
  EmbeddingStore store(std::move(vocab), std::move(vectors));
  const auto nn = store.NearestNeighbors("a", 2);
  ASSERT_EQ(nn.size(), 2u);
  EXPECT_EQ(nn[0].first, "b");
  EXPECT_EQ(nn[1].first, "c");
  EXPECT_GT(nn[0].second, nn[1].second);
  EXPECT_TRUE(store.NearestNeighbors("zzz", 2).empty());
}

}  // namespace
}  // namespace crew
