#include "crew/common/flags.h"

#include <gtest/gtest.h>

namespace crew {
namespace {

FlagParser Parse(std::vector<std::string> args) {
  std::vector<char*> argv = {const_cast<char*>("prog")};
  for (auto& a : args) argv.push_back(a.data());
  return FlagParser(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsForm) {
  auto flags = Parse({"--samples=128", "--name=crew"});
  EXPECT_TRUE(flags.status().ok());
  EXPECT_EQ(flags.GetInt("samples", 0), 128);
  EXPECT_EQ(flags.GetString("name", ""), "crew");
}

TEST(FlagsTest, SpaceSeparatedForm) {
  auto flags = Parse({"--samples", "64"});
  EXPECT_EQ(flags.GetInt("samples", 0), 64);
}

TEST(FlagsTest, BareFlagIsTrue) {
  auto flags = Parse({"--verbose"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.Has("verbose"));
  EXPECT_FALSE(flags.Has("quiet"));
}

TEST(FlagsTest, DefaultsWhenAbsentOrMalformed) {
  auto flags = Parse({"--k=notanumber"});
  EXPECT_EQ(flags.GetInt("k", 9), 9);
  EXPECT_EQ(flags.GetInt("missing", 5), 5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 1.5), 1.5);
}

TEST(FlagsTest, BoolVariants) {
  auto flags = Parse({"--a=TRUE", "--b=0", "--c=yes", "--d=off"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_TRUE(flags.GetBool("d", true));  // unrecognized -> default
}

TEST(FlagsTest, Uint64) {
  auto flags = Parse({"--seed=18446744073709551615"});
  EXPECT_EQ(flags.GetUint64("seed", 0), 18446744073709551615ULL);
}

TEST(FlagsTest, PositionalArgumentIsError) {
  auto flags = Parse({"oops"});
  EXPECT_FALSE(flags.status().ok());
  EXPECT_EQ(flags.status().code(), StatusCode::kInvalidArgument);
}

TEST(FlagsTest, DoubleValue) {
  auto flags = Parse({"--fraction=0.75"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("fraction", 0.0), 0.75);
}

}  // namespace
}  // namespace crew
