// Tests for the streaming execution layer's serialization and sinks: the
// JSONL v1 schema is pinned by golden lines (a change that breaks old
// shards must show up here and bump kCellSchemaVersion), records round-trip
// with full fidelity, JsonlStreamSink appends in completion order, the
// partial-table sink renders after every cell, and CheckpointStore
// recovers from exactly the corruption a crash can produce — a torn
// trailing line — while refusing interior corruption and schema-version
// mismatches anywhere.

#include "crew/eval/streaming.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "crew/common/logging.h"
#include "crew/eval/sinks.h"

namespace crew {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  CREW_CHECK(f != nullptr);
  std::string out;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    out.append(buffer, n);
  }
  std::fclose(f);
  return out;
}

void WriteFileOrDie(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  CREW_CHECK(f != nullptr);
  CREW_CHECK(std::fwrite(content.data(), 1, content.size(), f) ==
             content.size());
  std::fclose(f);
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// A small but fully populated cell: dyadic doubles serialize exactly
// ("0.25"), 0.1 exercises the %.17g round-trip tail
// ("0.10000000000000001").
ExperimentCell SampleCell() {
  ExperimentCell cell;
  cell.dataset = "d";
  cell.variant = "v";
  cell.aggregate.name = "v";
  cell.aggregate.instances = 1;
  cell.aggregate.aopc = 0.25;
  cell.aggregate.stability = 0.1;
  InstanceEvaluation r;
  r.index = 3;
  r.evaluated = true;
  r.aopc = 0.5;
  r.curve = {0.5, 1.0};
  cell.instances.push_back(r);
  cell.scoring.predictions = 4;
  cell.scoring.batches = 2;
  cell.registry.push_back({"m", MetricKind::kCounter, 2, 0.0});
  cell.metrics.push_back({"f1", 0.5});
  cell.notes.push_back({"k", "val"});
  return cell;
}

ExperimentResult SampleHeader() {
  ExperimentResult header;
  header.name = "golden";
  header.params = {{"seed", "7"}, {"matcher", "mlp"}};
  return header;
}

TEST(CellJsonlTest, HeaderGoldenLine) {
  EXPECT_EQ(HeaderToJsonl(SampleHeader()),
            "{\"v\":1,\"kind\":\"header\",\"experiment\":\"golden\","
            "\"params\":[[\"seed\",\"7\"],[\"matcher\",\"mlp\"]]}");
}

TEST(CellJsonlTest, CellGoldenLine) {
  const std::string golden =
      "{\"v\":1,\"kind\":\"cell\",\"scope\":\"s\",\"dataset\":\"d\","
      "\"variant\":\"v\",\"aggregate\":{\"name\":\"v\",\"instances\":1,"
      "\"aopc\":0.25,\"comprehensiveness_at_1\":0,"
      "\"comprehensiveness_at_3\":0,\"sufficiency_at_1\":0,"
      "\"sufficiency_at_3\":0,\"comprehensiveness_budget5\":0,"
      "\"decision_flip_rate\":0,\"insertion_aopc\":0,\"flip_set_rate\":0,"
      "\"flip_set_units\":0,\"flip_set_tokens\":0,\"total_units\":0,"
      "\"effective_units\":0,\"words_per_unit\":0,\"semantic_coherence\":0,"
      "\"attribute_purity\":0,\"cluster_coherence\":0,"
      "\"cluster_silhouette\":0,\"mean_chosen_k\":0,"
      "\"stability\":0.10000000000000001,\"surrogate_r2\":0,"
      "\"runtime_ms\":0},\"instances\":[{\"index\":3,\"evaluated\":true,"
      "\"predicted_match\":false,\"aopc\":0.5,\"comprehensiveness_at_1\":0,"
      "\"comprehensiveness_at_3\":0,\"sufficiency_at_1\":0,"
      "\"sufficiency_at_3\":0,\"comprehensiveness_budget\":0,"
      "\"decision_flip\":false,\"insertion_aopc\":0,"
      "\"flip_set\":{\"flipped\":false,\"units_removed\":0,"
      "\"tokens_removed\":0},\"curve\":[0.5,1],\"total_units\":0,"
      "\"effective_units\":0,\"words_per_unit\":0,\"semantic_coherence\":0,"
      "\"attribute_purity\":0,\"has_cluster_stats\":false,"
      "\"cluster_coherence\":0,\"cluster_silhouette\":0,\"chosen_k\":0,"
      "\"stability\":0,\"surrogate_r2\":0,\"runtime_ms\":0}],"
      "\"scoring\":{\"predictions\":4,\"batches\":2,\"materialize_ms\":0,"
      "\"predict_ms\":0},\"registry\":[{\"name\":\"m\",\"kind\":\"counter\","
      "\"count\":2,\"ms\":0}],\"metrics\":[[\"f1\",0.5]],"
      "\"notes\":[[\"k\",\"val\"]],\"wall_ms\":0}";
  EXPECT_EQ(CellToJsonl("s", SampleCell()), golden);
}

TEST(CellJsonlTest, CellRoundTripsThroughParse) {
  const ExperimentCell cell = SampleCell();
  auto record = ParseCellRecord(CellToJsonl("scope", cell));
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  EXPECT_EQ(record->kind, "cell");
  EXPECT_EQ(record->scope, "scope");
  const ExperimentCell& back = record->cell;
  EXPECT_EQ(back.dataset, "d");
  EXPECT_EQ(back.variant, "v");
  EXPECT_EQ(back.aggregate.name, "v");
  EXPECT_EQ(back.aggregate.instances, 1);
  EXPECT_EQ(back.aggregate.aopc, 0.25);
  EXPECT_EQ(back.aggregate.stability, 0.1);  // exact %.17g round-trip
  ASSERT_EQ(back.instances.size(), 1u);
  EXPECT_EQ(back.instances[0].index, 3);
  EXPECT_TRUE(back.instances[0].evaluated);
  EXPECT_EQ(back.instances[0].aopc, 0.5);
  EXPECT_EQ(back.instances[0].curve, (std::vector<double>{0.5, 1.0}));
  EXPECT_EQ(back.scoring.predictions, 4);
  EXPECT_EQ(back.scoring.batches, 2);
  ASSERT_EQ(back.registry.size(), 1u);
  EXPECT_EQ(back.registry[0].name, "m");
  EXPECT_EQ(back.registry[0].kind, MetricKind::kCounter);
  EXPECT_EQ(back.registry[0].count, 2);
  ASSERT_EQ(back.metrics.size(), 1u);
  EXPECT_EQ(back.metrics[0].first, "f1");
  EXPECT_EQ(back.metrics[0].second, 0.5);
  ASSERT_EQ(back.notes.size(), 1u);
  EXPECT_EQ(back.notes[0].second, "val");
}

TEST(CellJsonlTest, HeaderRoundTripsThroughParse) {
  auto record = ParseCellRecord(HeaderToJsonl(SampleHeader()));
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  EXPECT_EQ(record->kind, "header");
  EXPECT_EQ(record->experiment, "golden");
  ASSERT_EQ(record->params.size(), 2u);
  EXPECT_EQ(record->params[0].first, "seed");
  EXPECT_EQ(record->params[1].second, "mlp");
}

TEST(CellJsonlTest, VersionMismatchIsFailedPrecondition) {
  auto record = ParseCellRecord("{\"v\":999,\"kind\":\"cell\"}");
  ASSERT_FALSE(record.ok());
  EXPECT_EQ(record.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CellJsonlTest, GarbageIsDataLoss) {
  auto record = ParseCellRecord("{\"v\":1,\"kind\":\"cell\",\"data");
  ASSERT_FALSE(record.ok());
  EXPECT_EQ(record.status().code(), StatusCode::kDataLoss);
}

TEST(JsonlStreamSinkTest, AppendsHeaderThenCellsInOrder) {
  const std::string path = TempPath("stream_order.jsonl");
  std::remove(path.c_str());
  const ExperimentResult header = SampleHeader();
  ExperimentCell a = SampleCell();
  ExperimentCell b = SampleCell();
  b.variant = "w";
  {
    JsonlStreamSink sink(path, "s");
    ASSERT_TRUE(sink.OnBegin(header).ok());
    ASSERT_TRUE(sink.OnCell(a, /*restored=*/false).ok());
    // A second OnBegin (parameter sweeps re-enter the runner) must not
    // truncate what streamed already.
    ASSERT_TRUE(sink.OnBegin(header).ok());
    ASSERT_TRUE(sink.OnCell(b, /*restored=*/false).ok());
  }
  const std::string expected = HeaderToJsonl(header) + "\n" +
                               CellToJsonl("s", a) + "\n" +
                               CellToJsonl("s", b) + "\n";
  EXPECT_EQ(ReadFileOrDie(path), expected);
  std::remove(path.c_str());
}

TEST(PartialTableSinkTest, RendersAfterEveryCell) {
  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  PartialTableSink sink({}, out);
  ExperimentResult header = SampleHeader();
  header.cells.resize(2);  // runner pre-sizes the grid before OnBegin
  ASSERT_TRUE(sink.OnBegin(header).ok());
  ASSERT_TRUE(sink.OnCell(SampleCell(), /*restored=*/false).ok());
  ExperimentCell second = SampleCell();
  second.variant = "w";
  ASSERT_TRUE(sink.OnCell(second, /*restored=*/true).ok());

  std::rewind(out);
  std::string text;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, out)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(out);
  EXPECT_NE(text.find("-- partial: 1/2 cell(s) --"), std::string::npos);
  EXPECT_NE(text.find("-- partial: 2/2 cell(s) --"), std::string::npos);
  EXPECT_NE(text.find("aopc"), std::string::npos);
}

TEST(CheckpointStoreTest, AppendThenLoadRestoresTheCell) {
  const std::string path = TempPath("ckpt_roundtrip.jsonl");
  std::remove(path.c_str());
  const ExperimentResult header = SampleHeader();
  const ExperimentCell cell = SampleCell();
  {
    CheckpointStore store(path);
    ASSERT_TRUE(store.Load().ok());
    ASSERT_TRUE(store.WriteHeaderIfNew(header).ok());
    ASSERT_TRUE(store.Append("s", cell).ok());
    // Idempotent by key: the duplicate append is silently skipped.
    ASSERT_TRUE(store.Append("s", cell).ok());
    EXPECT_EQ(store.done_cells(), 1);
  }
  CheckpointStore reloaded(path);
  ASSERT_TRUE(reloaded.Load().ok());
  EXPECT_EQ(reloaded.done_cells(), 1);
  EXPECT_TRUE(reloaded.IsDone(CellKey("s", "d", "v")));
  EXPECT_FALSE(reloaded.IsDone(CellKey("", "d", "v")));
  const ExperimentCell* restored = reloaded.Restored(CellKey("s", "d", "v"));
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->aggregate.aopc, 0.25);
  EXPECT_EQ(restored->instances.size(), 1u);
  std::remove(path.c_str());
}

TEST(CheckpointStoreTest, TornTrailingLineIsDroppedAndTruncated) {
  const std::string path = TempPath("ckpt_torn.jsonl");
  const std::string good = HeaderToJsonl(SampleHeader()) + "\n" +
                           CellToJsonl("", SampleCell()) + "\n";
  // A crash mid-append leaves an unterminated prefix of the next line.
  WriteFileOrDie(path, good + "{\"v\":1,\"kind\":\"ce");
  CheckpointStore store(path);
  ASSERT_TRUE(store.Load().ok());
  EXPECT_EQ(store.done_cells(), 1);
  // The file was rewritten-truncated back to the last good record, so a
  // later append never lands after garbage.
  EXPECT_EQ(ReadFileOrDie(path), good);
  ExperimentCell next = SampleCell();
  next.variant = "w";
  ASSERT_TRUE(store.Append("", next).ok());
  EXPECT_EQ(ReadFileOrDie(path), good + CellToJsonl("", next) + "\n");
  std::remove(path.c_str());
}

TEST(CheckpointStoreTest, TerminatedGarbageTailIsAlsoDropped) {
  const std::string path = TempPath("ckpt_garbage_tail.jsonl");
  const std::string good = HeaderToJsonl(SampleHeader()) + "\n" +
                           CellToJsonl("", SampleCell()) + "\n";
  WriteFileOrDie(path, good + "{\"v\":1,\"kind\":\"cell\",\"broken\n");
  CheckpointStore store(path);
  ASSERT_TRUE(store.Load().ok());
  EXPECT_EQ(store.done_cells(), 1);
  EXPECT_EQ(ReadFileOrDie(path), good);
  std::remove(path.c_str());
}

TEST(CheckpointStoreTest, InteriorCorruptionIsAnError) {
  const std::string path = TempPath("ckpt_interior.jsonl");
  WriteFileOrDie(path, HeaderToJsonl(SampleHeader()) + "\n" +
                           "not json at all\n" +
                           CellToJsonl("", SampleCell()) + "\n");
  CheckpointStore store(path);
  const Status status = store.Load();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(CheckpointStoreTest, VersionMismatchIsFatalEvenOnTheLastLine) {
  const std::string path = TempPath("ckpt_version.jsonl");
  WriteFileOrDie(path, HeaderToJsonl(SampleHeader()) + "\n" +
                           "{\"v\":999,\"kind\":\"cell\"}\n");
  CheckpointStore store(path);
  const Status status = store.Load();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CheckpointStoreTest, HeaderExperimentMismatchIsRefused) {
  const std::string path = TempPath("ckpt_name.jsonl");
  std::remove(path.c_str());
  {
    CheckpointStore store(path);
    ASSERT_TRUE(store.Load().ok());
    ASSERT_TRUE(store.WriteHeaderIfNew(SampleHeader()).ok());
  }
  CheckpointStore store(path);
  ASSERT_TRUE(store.Load().ok());
  ExperimentResult other;
  other.name = "different_experiment";
  EXPECT_FALSE(store.WriteHeaderIfNew(other).ok());
  std::remove(path.c_str());
}

TEST(FaultInjectorTest, FiresAfterTheConfiguredCellCount) {
  FaultInjector fault;
  fault.ArmAfterCells(2);
  EXPECT_TRUE(fault.armed());
  fault.FinalizeSchedule(10);
  EXPECT_FALSE(fault.FireNow());
  fault.CellCompleted();
  EXPECT_FALSE(fault.FireNow());
  fault.CellCompleted();
  EXPECT_TRUE(fault.FireNow());
  const Status status = fault.FaultStatus();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("fault injected"), std::string::npos);
}

TEST(FaultInjectorTest, SeedArmingIsDeterministicAndInRange) {
  for (uint64_t seed : {1u, 2u, 3u, 99u}) {
    FaultInjector a;
    a.ArmFromSeed(seed);
    a.FinalizeSchedule(7);
    FaultInjector b;
    b.ArmFromSeed(seed);
    b.FinalizeSchedule(7);
    EXPECT_EQ(a.fail_after(), b.fail_after()) << "seed=" << seed;
    EXPECT_GE(a.fail_after(), 0);
    EXPECT_LT(a.fail_after(), 7);
  }
}

TEST(ReplayResultTest, TableSinkConsumeMatchesStreamedCells) {
  // The one-shot adapters replay through the streaming interface, so a
  // manual OnBegin/OnCell/OnEnd drive must render the same table as
  // Consume().
  ExperimentResult result;
  result.name = "replay";
  result.cells.push_back(SampleCell());
  ExperimentCell second = SampleCell();
  second.variant = "w";
  result.cells.push_back(second);

  auto render = [&](bool streamed) {
    std::FILE* out = std::tmpfile();
    CREW_CHECK(out != nullptr);
    TableSink sink({AggColumn("aopc", &ExplainerAggregate::aopc)},
                   /*dataset_column=*/true, /*variant_column=*/true, out);
    if (streamed) {
      CREW_CHECK(sink.OnBegin(result).ok());
      for (const ExperimentCell& cell : result.cells) {
        CREW_CHECK(sink.OnCell(cell, false).ok());
      }
      CREW_CHECK(sink.OnEnd(result).ok());
    } else {
      CREW_CHECK(sink.Consume(result).ok());
    }
    std::rewind(out);
    std::string text;
    char buffer[4096];
    size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof buffer, out)) > 0) {
      text.append(buffer, n);
    }
    std::fclose(out);
    return text;
  };
  const std::string batch = render(false);
  EXPECT_EQ(batch, render(true));
  EXPECT_NE(batch.find("0.25"), std::string::npos);
}

}  // namespace
}  // namespace crew
