#include "crew/la/vector_ops.h"

#include <cmath>

#include <gtest/gtest.h>

namespace crew::la {
namespace {

TEST(VectorOpsTest, DotAndNorm) {
  Vec a = {1.0, 2.0, 3.0};
  Vec b = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(Norm(a), std::sqrt(14.0));
  EXPECT_DOUBLE_EQ(Norm(Vec{}), 0.0);
}

TEST(VectorOpsTest, CosineBounds) {
  Vec a = {1.0, 0.0};
  EXPECT_DOUBLE_EQ(Cosine(a, {2.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(Cosine(a, {-3.0, 0.0}), -1.0);
  EXPECT_DOUBLE_EQ(Cosine(a, {0.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(Cosine(a, {0.0, 0.0}), 0.0);  // zero vector convention
}

TEST(VectorOpsTest, AxpyScaleNormalize) {
  Vec x = {1.0, 2.0};
  Vec y = {10.0, 20.0};
  Axpy(2.0, x, y);
  EXPECT_EQ(y, (Vec{12.0, 24.0}));
  Scale(0.5, y);
  EXPECT_EQ(y, (Vec{6.0, 12.0}));
  Vec z = {3.0, 4.0};
  NormalizeInPlace(z);
  EXPECT_NEAR(Norm(z), 1.0, 1e-12);
  Vec zero = {0.0, 0.0};
  NormalizeInPlace(zero);
  EXPECT_EQ(zero, (Vec{0.0, 0.0}));
}

TEST(VectorOpsTest, ElementwiseOps) {
  Vec a = {1.0, -2.0};
  Vec b = {3.0, 5.0};
  EXPECT_EQ(Add(a, b), (Vec{4.0, 3.0}));
  EXPECT_EQ(Sub(a, b), (Vec{-2.0, -7.0}));
  EXPECT_EQ(Hadamard(a, b), (Vec{3.0, -10.0}));
  EXPECT_EQ(Abs(a), (Vec{1.0, 2.0}));
}

TEST(VectorOpsTest, SigmoidStableAndCorrect) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(2.0), 1.0 / (1.0 + std::exp(-2.0)), 1e-12);
  EXPECT_NEAR(Sigmoid(-2.0) + Sigmoid(2.0), 1.0, 1e-12);
  // No overflow at extremes.
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
}

TEST(VectorOpsTest, ArgMaxAndMean) {
  EXPECT_EQ(ArgMax({1.0, 5.0, 3.0, 5.0}), 1);  // first max wins
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

}  // namespace
}  // namespace crew::la
