#include "crew/model/rule_matcher.h"

#include <set>
#include <algorithm>
#include <gtest/gtest.h>

#include "crew/data/generator.h"
#include "crew/model/metrics.h"

namespace crew {
namespace {

Dataset EasyDataset() {
  GeneratorConfig config;
  config.num_matches = 120;
  config.num_nonmatches = 150;
  config.seed = 7;
  auto d = GenerateDataset(config);
  CREW_CHECK(d.ok());
  return std::move(d.value());
}

TEST(RuleMatcherTest, LearnsCompetitiveRule) {
  auto matcher = RuleMatcher::Train(EasyDataset(), nullptr);
  ASSERT_TRUE(matcher.ok()) << matcher.status().ToString();
  const auto metrics = EvaluateMatcher(*matcher.value(), EasyDataset());
  EXPECT_GT(metrics.F1(), 0.85);
}

TEST(RuleMatcherTest, RuleStringNamesRealFeatures) {
  auto matcher = RuleMatcher::Train(EasyDataset(), nullptr);
  ASSERT_TRUE(matcher.ok());
  const std::string rule = matcher.value()->RuleString();
  EXPECT_NE(rule.find(">="), std::string::npos);
  EXPECT_FALSE(matcher.value()->conditions().empty());
  EXPECT_LE(matcher.value()->conditions().size(), 2u);
}

TEST(RuleMatcherTest, SmoothProbabilitySurface) {
  auto matcher = RuleMatcher::Train(EasyDataset(), nullptr);
  ASSERT_TRUE(matcher.ok());
  const Dataset d = EasyDataset();
  // Scores are graded, not only {0,1}: perturbation explainers need slope.
  std::set<int> buckets;
  // Stride across the whole dataset: the generator emits matches first and
  // sampling a prefix would only probe one class.
  const int stride = std::max(1, d.size() / 60);
  for (int i = 0; i < d.size(); i += stride) {
    const double p = matcher.value()->PredictProba(d.pair(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    buckets.insert(static_cast<int>(p * 20));
  }
  EXPECT_GT(static_cast<int>(buckets.size()), 3);
}

TEST(RuleMatcherTest, MaxConjunctsRespected) {
  RuleMatcherConfig config;
  config.max_conjuncts = 1;
  auto matcher = RuleMatcher::Train(EasyDataset(), nullptr, config);
  ASSERT_TRUE(matcher.ok());
  EXPECT_EQ(matcher.value()->conditions().size(), 1u);
}

TEST(RuleMatcherTest, RejectsBadInput) {
  EXPECT_FALSE(RuleMatcher::Train(Dataset(), nullptr).ok());
  RuleMatcherConfig bad;
  bad.max_conjuncts = 0;
  EXPECT_FALSE(RuleMatcher::Train(EasyDataset(), nullptr, bad).ok());
}

TEST(RuleMatcherTest, NameIsRule) {
  auto matcher = RuleMatcher::Train(EasyDataset(), nullptr);
  ASSERT_TRUE(matcher.ok());
  EXPECT_EQ(matcher.value()->Name(), "rule");
}

}  // namespace
}  // namespace crew
