#include <cmath>
#include <gtest/gtest.h>

#include <memory>

#include "crew/data/dataset.h"
#include "crew/explain/certa.h"
#include "crew/explain/landmark.h"
#include "crew/explain/lemon.h"
#include "crew/explain/lime.h"
#include "crew/explain/mojito.h"
#include "crew/explain/random_explainer.h"
#include "crew/explain/shap.h"
#include "test_util.h"

namespace crew {
namespace {

using testing::MakePair;
using testing::TokenWeightMatcher;

// A support dataset for CERTA's counterfactual pools.
Dataset MakeSupport() {
  Schema s;
  s.AddAttribute("a0", AttributeType::kText);
  s.AddAttribute("a1", AttributeType::kText);
  Dataset d(s);
  for (const char* w : {"filler", "noise", "padding", "blank", "other"}) {
    RecordPair p;
    p.left.values = {w, w};
    p.right.values = {w, w};
    p.label = 0;
    d.Add(p);
  }
  return d;
}

// The crafted setup: the oracle matcher puts weight only on "anchor"
// (strongly positive) and "poison" (strongly negative); every other token
// is irrelevant. A sane explainer must rank anchor (and poison) above the
// filler tokens.
struct ExplainerCase {
  std::string name;
  std::shared_ptr<Explainer> explainer;
};

std::vector<ExplainerCase> AllWordExplainers() {
  std::vector<ExplainerCase> cases;
  LimeConfig lime;
  lime.perturbation.num_samples = 256;
  cases.push_back({"lime", std::make_shared<LimeExplainer>(lime)});
  MojitoConfig drop;
  drop.perturbation.num_samples = 256;
  cases.push_back({"mojito_drop", std::make_shared<MojitoExplainer>(drop)});
  LandmarkConfig landmark;
  landmark.perturbation.num_samples = 256;
  cases.push_back(
      {"landmark", std::make_shared<LandmarkExplainer>(landmark)});
  LemonConfig lemon;
  lemon.perturbation.num_samples = 256;
  cases.push_back({"lemon", std::make_shared<LemonExplainer>(lemon)});
  cases.push_back(
      {"certa", std::make_shared<CertaExplainer>(MakeSupport())});
  KernelShapConfig shap;
  shap.num_samples = 256;
  cases.push_back(
      {"kernel_shap", std::make_shared<KernelShapExplainer>(shap)});
  return cases;
}

class WordExplainerTest
    : public ::testing::TestWithParam<ExplainerCase> {};

TEST_P(WordExplainerTest, RanksDecisiveTokenFirst) {
  TokenWeightMatcher matcher({{"anchor", 2.5}, {"poison", -2.0}});
  const RecordPair pair =
      MakePair("anchor filler noise", "poison padding",
               "blank anchor", "other filler");
  auto explanation = GetParam().explainer->Explain(matcher, pair, 42);
  ASSERT_TRUE(explanation.ok()) << explanation.status().ToString();
  const auto& attributions = explanation.value().attributions;
  ASSERT_FALSE(attributions.empty());
  // The top-3 tokens by |weight| must include an "anchor" or "poison".
  int decisive_in_top3 = 0;
  const auto ranked = explanation.value().RankedByMagnitude();
  for (int i = 0; i < 3 && i < static_cast<int>(ranked.size()); ++i) {
    const std::string& text = attributions[ranked[i]].token.text;
    if (text == "anchor" || text == "poison") ++decisive_in_top3;
  }
  EXPECT_GE(decisive_in_top3, 1) << GetParam().name;
}

TEST_P(WordExplainerTest, SignsFollowTokenDirection) {
  TokenWeightMatcher matcher({{"anchor", 2.5}, {"poison", -2.5}});
  const RecordPair pair =
      MakePair("anchor filler", "poison", "anchor other", "x");
  auto explanation = GetParam().explainer->Explain(matcher, pair, 43);
  ASSERT_TRUE(explanation.ok());
  double anchor_weight = 0.0, poison_weight = 0.0;
  for (const auto& a : explanation.value().attributions) {
    if (a.token.text == "anchor") anchor_weight += a.weight;
    if (a.token.text == "poison") poison_weight += a.weight;
  }
  EXPECT_GT(anchor_weight, poison_weight) << GetParam().name;
}

TEST_P(WordExplainerTest, DeterministicGivenSeed) {
  TokenWeightMatcher matcher({{"anchor", 1.0}});
  const RecordPair pair = MakePair("anchor b c", "d", "e f", "g");
  auto a = GetParam().explainer->Explain(matcher, pair, 7);
  auto b = GetParam().explainer->Explain(matcher, pair, 7);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->attributions.size(), b->attributions.size());
  for (size_t i = 0; i < a->attributions.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->attributions[i].weight, b->attributions[i].weight);
  }
}

TEST_P(WordExplainerTest, CoversEveryToken) {
  TokenWeightMatcher matcher({{"anchor", 1.0}});
  const RecordPair pair = MakePair("anchor b", "c d", "e", "f g h");
  auto explanation = GetParam().explainer->Explain(matcher, pair, 11);
  ASSERT_TRUE(explanation.ok());
  EXPECT_EQ(explanation->attributions.size(), 8u);
  // Attribution order mirrors the token view (left then right).
  EXPECT_EQ(explanation->attributions[0].token.text, "anchor");
  EXPECT_EQ(explanation->attributions[0].token.side, Side::kLeft);
}

TEST_P(WordExplainerTest, EmptyPairYieldsEmptyExplanation) {
  TokenWeightMatcher matcher({});
  const RecordPair pair = MakePair("", "", "", "");
  auto explanation = GetParam().explainer->Explain(matcher, pair, 1);
  ASSERT_TRUE(explanation.ok());
  EXPECT_TRUE(explanation->attributions.empty());
}

INSTANTIATE_TEST_SUITE_P(AllExplainers, WordExplainerTest,
                         ::testing::ValuesIn(AllWordExplainers()),
                         [](const auto& info) { return info.param.name; });

TEST(MojitoCopyTest, DecisiveAttributeDominatesInertOne) {
  // Matcher rewards the token "k" on either side. Attribute 0 differs
  // between the records ("k" vs "unrelated"): copying it in either
  // direction moves the prediction. Attribute 1 is identical on both sides
  // ("same"): copying it is a no-op. Mojito-copy must therefore give
  // attribute 0's tokens much larger |weight| than attribute 1's.
  TokenWeightMatcher matcher({{"k", 1.5}});
  const RecordPair pair = MakePair("k", "same", "unrelated", "same");
  MojitoConfig config;
  config.mode = MojitoMode::kCopy;
  config.perturbation.num_samples = 256;
  MojitoExplainer explainer(config);
  auto explanation = explainer.Explain(matcher, pair, 5);
  ASSERT_TRUE(explanation.ok());
  EXPECT_EQ(explainer.Name(), "mojito_copy");
  double attr0 = 0.0, attr1 = 0.0;
  for (const auto& a : explanation->attributions) {
    (a.token.attribute == 0 ? attr0 : attr1) += std::fabs(a.weight);
  }
  EXPECT_GT(attr0, 2.0 * attr1);
}

TEST(LandmarkTest, InjectionHelpsNonMatchExplanations) {
  // Non-match with zero overlap: pure drops cannot raise the score, but
  // injecting the landmark's "anchor" token can.
  TokenWeightMatcher matcher({{"anchor", 3.0}}, /*bias=*/-2.0);
  const RecordPair pair = MakePair("anchor alpha", "", "beta gamma", "");
  LandmarkConfig with;
  with.perturbation.num_samples = 256;
  with.injection = LandmarkInjection::kAlways;
  LandmarkConfig without = with;
  without.injection = LandmarkInjection::kNever;
  auto e_with = LandmarkExplainer(with).Explain(matcher, pair, 3);
  auto e_without = LandmarkExplainer(without).Explain(matcher, pair, 3);
  ASSERT_TRUE(e_with.ok() && e_without.ok());
  // Both run; injection must not corrupt the base score.
  EXPECT_DOUBLE_EQ(e_with->base_score, e_without->base_score);
}

TEST(LemonTest, AttributionPotentialFindsCounterfactualToken) {
  // "anchor" only helps when present on BOTH sides (simulated by a matcher
  // weighting it strongly); LEMON's injection term should give the right
  // side's unique token "special" a visible weight even though dropping it
  // changes little.
  TokenWeightMatcher matcher({{"special", 2.0}}, /*bias=*/-1.0);
  const RecordPair pair = MakePair("common words here", "", "special", "");
  LemonConfig config;
  config.perturbation.num_samples = 512;
  LemonExplainer explainer(config);
  auto explanation = explainer.Explain(matcher, pair, 9);
  ASSERT_TRUE(explanation.ok());
  double special_weight = 0.0;
  for (const auto& a : explanation->attributions) {
    if (a.token.text == "special") special_weight = a.weight;
  }
  EXPECT_GT(special_weight, 0.0);
}

TEST(CertaTest, SubstitutionSaliencyDirection) {
  TokenWeightMatcher matcher({{"anchor", 2.0}});
  const RecordPair pair = MakePair("anchor filler", "noise", "blank", "other");
  CertaExplainer explainer(MakeSupport());
  auto explanation = explainer.Explain(matcher, pair, 21);
  ASSERT_TRUE(explanation.ok());
  // Replacing "anchor" with pool junk loses its bonus -> positive saliency.
  double anchor_weight = 0.0, filler_weight = 0.0;
  for (const auto& a : explanation->attributions) {
    if (a.token.text == "anchor") anchor_weight = a.weight;
    if (a.token.text == "filler") filler_weight = a.weight;
  }
  EXPECT_GT(anchor_weight, 0.3);
  EXPECT_NEAR(filler_weight, 0.0, 0.05);
}

TEST(CertaTest, RejectsNarrowSupportSchema) {
  Schema narrow;
  narrow.AddAttribute("only", AttributeType::kText);
  Dataset support(narrow);
  RecordPair sp;
  sp.left.values = {"x"};
  sp.right.values = {"y"};
  support.Add(sp);
  CertaExplainer explainer(support);
  TokenWeightMatcher matcher({});
  const RecordPair wide = MakePair("a", "b", "c", "d");  // 2 attributes
  EXPECT_FALSE(explainer.Explain(matcher, wide, 1).ok());
}

TEST(KernelShapTest, EfficiencyPropertyApproximatelyHolds) {
  // Shapley efficiency: sum of attributions ~= f(x) - f(empty). The anchor
  // rows enforce this up to ridge shrinkage.
  TokenWeightMatcher matcher({{"anchor", 2.0}, {"poison", -1.0}}, 0.3);
  const RecordPair pair = MakePair("anchor filler", "poison", "other", "x");
  KernelShapConfig config;
  config.num_samples = 512;
  KernelShapExplainer shap(config);
  auto explanation = shap.Explain(matcher, pair, 17);
  ASSERT_TRUE(explanation.ok());
  double sum = 0.0;
  for (const auto& a : explanation->attributions) sum += a.weight;
  const double f_empty = la::Sigmoid(0.3);  // bias only
  EXPECT_NEAR(sum, explanation->base_score - f_empty, 0.1);
}

TEST(KernelShapTest, SingleTokenIsExactDifference) {
  TokenWeightMatcher matcher({{"solo", 1.5}}, -0.5);
  const RecordPair pair = MakePair("solo", "", "", "");
  KernelShapExplainer shap;
  auto explanation = shap.Explain(matcher, pair, 1);
  ASSERT_TRUE(explanation.ok());
  ASSERT_EQ(explanation->attributions.size(), 1u);
  EXPECT_NEAR(explanation->attributions[0].weight,
              la::Sigmoid(1.0) - la::Sigmoid(-0.5), 1e-9);
}

TEST(RandomExplainerTest, SeedControlsWeights) {
  TokenWeightMatcher matcher({});
  const RecordPair pair = MakePair("a b c", "d", "e", "f");
  RandomExplainer explainer;
  auto a = explainer.Explain(matcher, pair, 1);
  auto b = explainer.Explain(matcher, pair, 1);
  auto c = explainer.Explain(matcher, pair, 2);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_DOUBLE_EQ(a->attributions[0].weight, b->attributions[0].weight);
  EXPECT_NE(a->attributions[0].weight, c->attributions[0].weight);
}

TEST(WordExplanationTest, RankedBySupportRespectsPredictedClass) {
  WordExplanation e;
  e.base_score = 0.9;  // predicted match
  TokenRef t;
  e.attributions = {{t, -1.0}, {t, 2.0}, {t, 0.5}};
  EXPECT_EQ(e.RankedBySupport()[0], 1);  // largest positive first
  e.base_score = 0.1;  // predicted non-match
  EXPECT_EQ(e.RankedBySupport()[0], 0);  // most negative first
}

TEST(WordExplanationTest, TopTokens) {
  WordExplanation e;
  TokenRef a, b;
  a.text = "big";
  b.text = "small";
  e.attributions = {{b, 0.1}, {a, -5.0}};
  EXPECT_EQ(e.TopTokens(1), (std::vector<std::string>{"big"}));
}

}  // namespace
}  // namespace crew
