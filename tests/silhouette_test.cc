#include "crew/core/silhouette.h"

#include <gtest/gtest.h>

#include "crew/common/rng.h"

namespace crew {
namespace {

// Distance matrix of `k` planted groups of `per` points each: tiny
// within-group distances, unit across-group distances.
la::Matrix PlantedGroups(int k, int per, Rng* rng = nullptr) {
  const int n = k * per;
  la::Matrix d(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double v = (i / per == j / per) ? 0.05 : 1.0;
      if (rng != nullptr) v += rng->Uniform(0.0, 0.02);
      d.At(i, j) = v;
      d.At(j, i) = v;
    }
  }
  return d;
}

TEST(SilhouetteTest, PerfectSeparationNearOne) {
  const la::Matrix d = PlantedGroups(2, 3);
  const std::vector<int> labels = {0, 0, 0, 1, 1, 1};
  EXPECT_GT(MeanSilhouette(d, labels), 0.9);
}

TEST(SilhouetteTest, WrongLabelsScoreLower) {
  const la::Matrix d = PlantedGroups(2, 3);
  const std::vector<int> good = {0, 0, 0, 1, 1, 1};
  const std::vector<int> bad = {0, 1, 0, 1, 0, 1};
  EXPECT_GT(MeanSilhouette(d, good), MeanSilhouette(d, bad));
  EXPECT_LT(MeanSilhouette(d, bad), 0.0);
}

TEST(SilhouetteTest, SingleClusterIsZero) {
  const la::Matrix d = PlantedGroups(2, 2);
  EXPECT_DOUBLE_EQ(MeanSilhouette(d, {0, 0, 0, 0}), 0.0);
}

TEST(SilhouetteTest, SingletonsContributeZero) {
  la::Matrix d(2, 2);
  d.At(0, 1) = 1.0;
  d.At(1, 0) = 1.0;
  EXPECT_DOUBLE_EQ(MeanSilhouette(d, {0, 1}), 0.0);
}

class ChooseKTest : public ::testing::TestWithParam<int> {};

TEST_P(ChooseKTest, FindsPlantedK) {
  const int planted_k = GetParam();
  Rng rng(100 + planted_k);
  const la::Matrix d = PlantedGroups(planted_k, 4, &rng);
  const Dendrogram dendrogram = AgglomerativeCluster(d, Linkage::kAverage);
  EXPECT_EQ(ChooseKBySilhouette(d, dendrogram, 2, 10), planted_k);
}

INSTANTIATE_TEST_SUITE_P(PlantedK, ChooseKTest, ::testing::Values(2, 3, 4, 6));

TEST(ChooseKTest, DegenerateRange) {
  const la::Matrix d = PlantedGroups(2, 2);
  const Dendrogram dendrogram = AgglomerativeCluster(d, Linkage::kAverage);
  // max_k < min_k after clamping: falls back gracefully.
  EXPECT_GE(ChooseKBySilhouette(d, dendrogram, 2, 1), 1);
}

}  // namespace
}  // namespace crew
