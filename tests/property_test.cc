// Cross-module property tests: randomized sweeps over invariants that the
// unit tests only probe pointwise.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "crew/core/agglomerative.h"
#include "crew/data/csv.h"
#include "crew/data/generator.h"
#include "crew/common/string_util.h"
#include "crew/explain/lime.h"
#include "crew/explain/token_view.h"
#include "test_util.h"

namespace crew {
namespace {

using testing::TokenWeightMatcher;

std::string RandomText(Rng& rng, int max_tokens) {
  static const char* kWords[] = {"acme", "router", "x9",   "fast", "red",
                                 "12",   "pro",    "mini", "usb",  "hub"};
  std::vector<std::string> parts;
  const int n = rng.UniformInt(0, max_tokens);
  for (int i = 0; i < n; ++i) parts.push_back(kWords[rng.UniformInt(10)]);
  return Join(parts, " ");
}

class RandomizedTest : public ::testing::TestWithParam<uint64_t> {};

// Materialize(keep) must yield a pair whose re-tokenization is exactly the
// kept tokens, in the original order, per side and attribute.
TEST_P(RandomizedTest, MaterializeRoundTripsKeptTokens) {
  Rng rng(GetParam());
  Tokenizer tokenizer;
  for (int trial = 0; trial < 20; ++trial) {
    RecordPair pair;
    pair.left.values = {RandomText(rng, 5), RandomText(rng, 4)};
    pair.right.values = {RandomText(rng, 5), RandomText(rng, 4)};
    const Schema schema = AnonymousSchema(pair);
    PairTokenView view(schema, tokenizer, pair);
    std::vector<bool> keep(view.size());
    for (int i = 0; i < view.size(); ++i) keep[i] = rng.Bernoulli(0.6);
    const RecordPair materialized = view.Materialize(keep);
    PairTokenView reparsed(schema, tokenizer, materialized);
    // Collect expected surviving tokens in view order.
    std::vector<std::string> expected;
    for (int i = 0; i < view.size(); ++i) {
      if (keep[i]) expected.push_back(view.token(i).text);
    }
    std::vector<std::string> actual;
    for (int i = 0; i < reparsed.size(); ++i) {
      actual.push_back(reparsed.token(i).text);
    }
    EXPECT_EQ(actual, expected);
  }
}

// CSV writer/parser round-trip over adversarial field content.
TEST_P(RandomizedTest, CsvRoundTripsArbitraryFields) {
  Rng rng(GetParam() ^ 0x11);
  const std::string alphabet = "ab,\"\n\r\t x";
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<std::vector<std::string>> rows;
    const int nrows = 1 + rng.UniformInt(4);
    const int ncols = 1 + rng.UniformInt(4);
    for (int r = 0; r < nrows; ++r) {
      std::vector<std::string> row;
      for (int c = 0; c < ncols; ++c) {
        std::string field;
        const int len = rng.UniformInt(0, 8);
        for (int i = 0; i < len; ++i) {
          field.push_back(
              alphabet[rng.UniformInt(static_cast<int>(alphabet.size()))]);
        }
        row.push_back(field);
      }
      rows.push_back(row);
    }
    auto parsed = ParseCsv(WriteCsv(rows));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, rows) << "trial " << trial;
  }
}

// Every cut of a dendrogram yields exactly k contiguous labels 0..k-1.
TEST_P(RandomizedTest, DendrogramCutsAreProperPartitions) {
  Rng rng(GetParam() ^ 0x22);
  const int n = 2 + rng.UniformInt(14);
  la::Matrix d(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      d.At(i, j) = d.At(j, i) = rng.Uniform();
    }
  }
  for (Linkage linkage :
       {Linkage::kSingle, Linkage::kComplete, Linkage::kAverage}) {
    const Dendrogram dendrogram = AgglomerativeCluster(d, linkage);
    for (int k = 1; k <= n; ++k) {
      const auto labels = dendrogram.CutToClusters(k);
      std::set<int> distinct(labels.begin(), labels.end());
      EXPECT_EQ(static_cast<int>(distinct.size()), k);
      EXPECT_EQ(*distinct.begin(), 0);
      EXPECT_EQ(*distinct.rbegin(), k - 1);
    }
  }
}

// Merge distances are non-decreasing (all three linkages are monotone).
TEST_P(RandomizedTest, LinkageMergeDistancesMonotone) {
  Rng rng(GetParam() ^ 0x33);
  const int n = 3 + rng.UniformInt(12);
  la::Matrix d(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      d.At(i, j) = d.At(j, i) = rng.Uniform();
    }
  }
  for (Linkage linkage :
       {Linkage::kSingle, Linkage::kComplete, Linkage::kAverage}) {
    const Dendrogram dendrogram = AgglomerativeCluster(d, linkage);
    for (size_t t = 1; t < dendrogram.merges.size(); ++t) {
      EXPECT_GE(dendrogram.merges[t].distance + 1e-12,
                dendrogram.merges[t - 1].distance)
          << LinkageName(linkage);
    }
  }
}

// Generated datasets survive a CSV round trip bit-for-bit.
TEST_P(RandomizedTest, GeneratedDatasetCsvRoundTrip) {
  GeneratorConfig config;
  config.seed = GetParam();
  config.num_matches = 15;
  config.num_nonmatches = 15;
  config.domain = static_cast<Domain>(GetParam() % 3);
  config.flavor = static_cast<Flavor>((GetParam() / 3) % 3);
  auto dataset = GenerateDataset(config);
  ASSERT_TRUE(dataset.ok());
  auto reloaded = LoadDatasetCsv(DatasetToCsv(*dataset));
  ASSERT_TRUE(reloaded.ok());
  ASSERT_EQ(reloaded->size(), dataset->size());
  for (int i = 0; i < dataset->size(); ++i) {
    EXPECT_EQ(reloaded->pair(i).left, dataset->pair(i).left);
    EXPECT_EQ(reloaded->pair(i).right, dataset->pair(i).right);
    EXPECT_EQ(reloaded->pair(i).label, dataset->pair(i).label);
  }
}

// The oracle's decisive token never ranks below irrelevant fillers by a
// wide margin, across random pair layouts (LIME only: the cheapest).
TEST_P(RandomizedTest, LimeOracleSanityAcrossLayouts) {
  Rng rng(GetParam() ^ 0x44);
  TokenWeightMatcher matcher({{"decisive", 3.0}});
  LimeConfig config;
  config.perturbation.num_samples = 192;
  LimeExplainer lime(config);
  for (int trial = 0; trial < 3; ++trial) {
    RecordPair pair;
    pair.left.values = {RandomText(rng, 4) + " decisive",
                        RandomText(rng, 3)};
    pair.right.values = {RandomText(rng, 4), RandomText(rng, 3)};
    auto explanation = lime.Explain(matcher, pair, GetParam() + trial);
    ASSERT_TRUE(explanation.ok());
    double best_filler = 0.0, decisive = 0.0;
    for (const auto& a : explanation->attributions) {
      if (a.token.text == "decisive") {
        decisive = a.weight;
      } else {
        best_filler = std::max(best_filler, a.weight);
      }
    }
    EXPECT_GT(decisive, best_filler);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace crew
