#include "crew/la/ridge.h"

#include <gtest/gtest.h>

#include "crew/common/rng.h"

namespace crew::la {
namespace {

TEST(RidgeTest, RecoversLinearFunction) {
  // y = 2 x0 - 3 x1 + 1, no noise, tiny lambda.
  Rng rng(5);
  const int n = 50;
  Matrix x(n, 2);
  Vec y(n);
  for (int i = 0; i < n; ++i) {
    x.At(i, 0) = rng.Normal();
    x.At(i, 1) = rng.Normal();
    y[i] = 2.0 * x.At(i, 0) - 3.0 * x.At(i, 1) + 1.0;
  }
  RidgeModel model;
  ASSERT_TRUE(FitRidge(x, y, {}, 1e-8, &model).ok());
  EXPECT_NEAR(model.coefficients[0], 2.0, 1e-5);
  EXPECT_NEAR(model.coefficients[1], -3.0, 1e-5);
  EXPECT_NEAR(model.intercept, 1.0, 1e-5);
  EXPECT_NEAR(model.r2, 1.0, 1e-9);
}

TEST(RidgeTest, LambdaShrinksCoefficients) {
  Rng rng(6);
  const int n = 40;
  Matrix x(n, 1);
  Vec y(n);
  for (int i = 0; i < n; ++i) {
    x.At(i, 0) = rng.Normal();
    y[i] = 5.0 * x.At(i, 0);
  }
  RidgeModel weak, strong;
  ASSERT_TRUE(FitRidge(x, y, {}, 0.01, &weak).ok());
  ASSERT_TRUE(FitRidge(x, y, {}, 100.0, &strong).ok());
  EXPECT_GT(std::abs(weak.coefficients[0]), std::abs(strong.coefficients[0]));
  EXPECT_GT(std::abs(strong.coefficients[0]), 0.0);
}

TEST(RidgeTest, ZeroWeightSamplesIgnored) {
  // Two populations; weights select the first.
  Matrix x(4, 1);
  Vec y(4), w(4);
  // population A: y = x
  x.At(0, 0) = 1.0;
  y[0] = 1.0;
  w[0] = 1.0;
  x.At(1, 0) = 2.0;
  y[1] = 2.0;
  w[1] = 1.0;
  // population B (outliers with zero weight): y = -10x
  x.At(2, 0) = 1.0;
  y[2] = -10.0;
  w[2] = 0.0;
  x.At(3, 0) = 2.0;
  y[3] = -20.0;
  w[3] = 0.0;
  RidgeModel model;
  ASSERT_TRUE(FitRidge(x, y, w, 1e-9, &model).ok());
  EXPECT_NEAR(model.coefficients[0], 1.0, 1e-6);
}

TEST(RidgeTest, InterceptNotRegularized) {
  // Constant target: heavy lambda must not pull the intercept to zero.
  Matrix x(10, 1);
  Vec y(10, 7.0);
  Rng rng(8);
  for (int i = 0; i < 10; ++i) x.At(i, 0) = rng.Normal();
  RidgeModel model;
  ASSERT_TRUE(FitRidge(x, y, {}, 1000.0, &model).ok());
  EXPECT_NEAR(model.intercept, 7.0, 0.05);
}

TEST(RidgeTest, ErrorsOnBadInput) {
  Matrix empty;
  RidgeModel model;
  EXPECT_FALSE(FitRidge(empty, {}, {}, 1.0, &model).ok());

  Matrix x(2, 1);
  EXPECT_FALSE(FitRidge(x, {1.0}, {}, 1.0, &model).ok());  // y mismatch
  EXPECT_FALSE(FitRidge(x, {1.0, 2.0}, {1.0}, 1.0, &model).ok());  // w mismatch
  EXPECT_FALSE(FitRidge(x, {1.0, 2.0}, {}, -1.0, &model).ok());  // bad lambda
  EXPECT_FALSE(
      FitRidge(x, {1.0, 2.0}, {0.0, 0.0}, 1.0, &model).ok());  // all zero w
}

TEST(RidgeTest, R2ReflectsNoise) {
  Rng rng(9);
  const int n = 200;
  Matrix x(n, 1);
  Vec y(n);
  for (int i = 0; i < n; ++i) {
    x.At(i, 0) = rng.Normal();
    y[i] = x.At(i, 0) + rng.Normal(0.0, 2.0);  // weak signal, strong noise
  }
  RidgeModel model;
  ASSERT_TRUE(FitRidge(x, y, {}, 0.1, &model).ok());
  EXPECT_GT(model.r2, 0.05);
  EXPECT_LT(model.r2, 0.6);
}

}  // namespace
}  // namespace crew::la
