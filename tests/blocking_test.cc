#include "crew/data/blocking.h"

#include <gtest/gtest.h>

#include "crew/data/generator.h"

namespace crew {
namespace {

Dataset TinyDataset() {
  Schema s;
  s.AddAttribute("name", AttributeType::kText);
  Dataset d(s);
  auto add = [&](const std::string& l, const std::string& r, int label) {
    RecordPair p;
    p.left.values = {l};
    p.right.values = {r};
    p.label = label;
    d.Add(p);
  };
  add("acme turbo router x9", "acme turbo router x9", 1);
  add("zeta coffee grinder", "zeta coffee grinder pro", 1);
  add("acme blender", "unrelated gadget thing", 0);
  return d;
}

TEST(ToTablesTest, PreservesRecordsAndGold) {
  const TablePair tables = ToTables(TinyDataset());
  EXPECT_EQ(tables.left.size(), 3u);
  EXPECT_EQ(tables.right.size(), 3u);
  ASSERT_EQ(tables.gold_matches.size(), 2u);
  EXPECT_EQ(tables.gold_matches[0], (std::pair<int, int>{0, 0}));
  EXPECT_EQ(tables.gold_matches[1], (std::pair<int, int>{1, 1}));
}

TEST(TokenBlockerTest, FindsOverlappingPairs) {
  const TablePair tables = ToTables(TinyDataset());
  BlockingConfig config;
  config.min_shared_tokens = 2;
  config.max_token_frequency = 1.0;  // tiny table: keep all tokens
  TokenBlocker blocker(config);
  const auto candidates = blocker.GenerateCandidates(tables);
  // Both gold matches share >= 2 tokens; the non-match shares none.
  const auto metrics = EvaluateBlocking(tables, candidates);
  EXPECT_EQ(metrics.gold_covered, 2);
  for (const auto& [i, j] : candidates) {
    EXPECT_NE(std::make_pair(i, j), (std::pair<int, int>{2, 2}));
  }
}

TEST(TokenBlockerTest, MinSharedTokensFilters) {
  const TablePair tables = ToTables(TinyDataset());
  BlockingConfig config;
  config.min_shared_tokens = 4;
  config.max_token_frequency = 1.0;
  TokenBlocker blocker(config);
  const auto candidates = blocker.GenerateCandidates(tables);
  // Only the 4-token-overlap pair (0,0) qualifies.
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], (std::pair<int, int>{0, 0}));
}

TEST(TokenBlockerTest, StopTokenFrequencyFilter) {
  // Every record shares the token "common": with a tight frequency cap the
  // blocker must not emit the cross product.
  Schema s;
  s.AddAttribute("t", AttributeType::kText);
  Dataset d(s);
  for (int i = 0; i < 20; ++i) {
    RecordPair p;
    p.left.values = {"common item" + std::to_string(i)};
    p.right.values = {"common item" + std::to_string(i)};
    p.label = 1;
    d.Add(p);
  }
  const TablePair tables = ToTables(d);
  BlockingConfig config;
  config.min_shared_tokens = 1;
  config.max_token_frequency = 0.2;
  const auto candidates = TokenBlocker(config).GenerateCandidates(tables);
  // "common" is a stop token; only the discriminative itemN tokens block,
  // each matching exactly its counterpart.
  EXPECT_EQ(candidates.size(), 20u);
  const auto metrics = EvaluateBlocking(tables, candidates);
  EXPECT_DOUBLE_EQ(metrics.PairCompleteness(), 1.0);
  EXPECT_GT(metrics.ReductionRatio(20, 20), 0.9);
}

TEST(TokenBlockerTest, MaxCandidatesKeepsHighestOverlap) {
  const TablePair tables = ToTables(TinyDataset());
  BlockingConfig config;
  config.min_shared_tokens = 1;
  config.max_token_frequency = 1.0;
  config.max_candidates = 1;
  const auto candidates = TokenBlocker(config).GenerateCandidates(tables);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], (std::pair<int, int>{0, 0}));  // 4 shared tokens
}

TEST(BlockingMetricsTest, Formulas) {
  BlockingMetrics m;
  m.candidates = 10;
  m.gold_matches = 4;
  m.gold_covered = 3;
  EXPECT_DOUBLE_EQ(m.PairCompleteness(), 0.75);
  EXPECT_DOUBLE_EQ(m.ReductionRatio(10, 10), 0.9);
  BlockingMetrics empty;
  EXPECT_DOUBLE_EQ(empty.PairCompleteness(), 1.0);
}

TEST(TokenBlockerTest, ScalesToGeneratedBenchmark) {
  GeneratorConfig config;
  config.num_matches = 120;
  config.num_nonmatches = 120;
  auto dataset = GenerateDataset(config);
  ASSERT_TRUE(dataset.ok());
  const TablePair tables = ToTables(*dataset);
  const auto candidates = TokenBlocker().GenerateCandidates(tables);
  const auto metrics = EvaluateBlocking(tables, candidates);
  // The blocker must keep nearly all true matches while pruning hard.
  EXPECT_GT(metrics.PairCompleteness(), 0.9);
  EXPECT_GT(metrics.ReductionRatio(
                static_cast<int>(tables.left.size()),
                static_cast<int>(tables.right.size())),
            0.5);
}

}  // namespace
}  // namespace crew
