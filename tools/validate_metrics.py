#!/usr/bin/env python3
"""Validates the metrics registry block in a bench --json output.

For every cell with a "registry" block, checks that:
  * the legacy "scoring" counters equal the registry's view of the same
    quantities (same read, so they must match exactly);
  * the per-stage counters crew/scoring/predictions/<stage> sum to
    crew/scoring/predictions (the stage split partitions the total);
  * the required per-stage breakdown metrics are present across the run
    (materialize / predict timings plus the affinity, clustering and
    attribution stage durations).

Usage: tools/validate_metrics.py result.json
Exit code 0 on success, 1 with a diagnostic on the first violation.
"""

import json
import sys

REQUIRED_ANYWHERE = [
    "crew/scoring/materialize",
    "crew/scoring/predict",
    "crew/stage/affinity",
    "crew/stage/clustering",
    "crew/stage/attribution",
]


def fail(msg):
    print(f"validate_metrics: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: validate_metrics.py result.json")
    try:
        with open(sys.argv[1], "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {sys.argv[1]}: {e}")

    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        fail('missing or empty "cells"')

    seen_names = set()
    checked = 0
    for i, cell in enumerate(cells):
        registry = cell.get("registry")
        if registry is None:
            continue
        label = f"cell {i} ({cell.get('dataset')}/{cell.get('variant')})"
        seen_names.update(registry)

        scoring = cell.get("scoring")
        if not isinstance(scoring, dict):
            fail(f"{label}: has registry but no scoring block")

        total = registry.get("crew/scoring/predictions", {}).get("count", 0)
        if total != scoring["predictions"]:
            fail(f"{label}: registry predictions {total} != "
                 f"scoring.predictions {scoring['predictions']}")
        batches = registry.get("crew/scoring/batches", {}).get("count", 0)
        if batches != scoring["batches"]:
            fail(f"{label}: registry batches {batches} != "
                 f"scoring.batches {scoring['batches']}")

        stage_sum = sum(
            entry.get("count", 0)
            for name, entry in registry.items()
            if name.startswith("crew/scoring/predictions/"))
        if stage_sum != total:
            fail(f"{label}: stage counters sum to {stage_sum}, "
                 f"total is {total}")
        checked += 1

    if checked == 0:
        fail("no cell carries a registry block "
             "(was the bench run with --metrics?)")
    missing = [name for name in REQUIRED_ANYWHERE if name not in seen_names]
    if missing:
        fail(f"required metrics never appeared: {missing}")
    print(f"validate_metrics: OK: {checked} cell(s) checked, "
          f"{len(seen_names)} distinct metric name(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
