#!/usr/bin/env python3
"""Self-test for tools/crew_lint.py against tests/lint_fixtures/.

Each bad_* fixture plants one rule's violations; this driver asserts the
exact (line, rule-id) pairs fire, that suppressed fixtures are silent, and
that exit codes follow the contract (0 clean / 1 findings). Run from the
repo root (ctest sets WORKING_DIRECTORY accordingly):

    python3 tools/crew_lint_test.py
"""

import os
import re
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT = os.path.join(REPO_ROOT, "tools", "crew_lint.py")
FIXTURES = os.path.join(REPO_ROOT, "tests", "lint_fixtures")

# fixture file -> expected set of (line, rule-id); empty set = must be clean.
EXPECTATIONS = {
    "bad_rand.cc": {(6, "rand-source"), (7, "rand-source"),
                    (8, "rand-source")},
    "bad_wall_clock_seed.cc": {(8, "wall-clock-seed"),
                               (13, "wall-clock-seed")},
    "bad_unordered_iter.cc": {(11, "unordered-iter"), (19, "unordered-iter")},
    "bad_raw_stdio.cc": {(6, "raw-stdio"), (7, "raw-stdio"),
                         (8, "raw-stdio"), (9, "raw-stdio")},
    "bad_include_guard.h": {(1, "include-guard")},
    "bad_trace_mutate.cc": {(6, "trace-mutate"), (9, "trace-mutate"),
                            (10, "trace-mutate")},
    "suppressed.cc": set(),
    "suppressed_file.cc": set(),
    "clean.h": set(),
}

FINDING_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): \[(?P<rule>[\w-]+)\]")


def run_lint(paths, extra=()):
    proc = subprocess.run(
        [sys.executable, LINT, "--root", REPO_ROOT, "--treat-as-library",
         *extra, *paths],
        capture_output=True, text=True, cwd=REPO_ROOT)
    findings = set()
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            findings.add((int(m.group("line")), m.group("rule")))
    return proc.returncode, findings


def main():
    failures = []
    for name, expected in sorted(EXPECTATIONS.items()):
        path = os.path.join(FIXTURES, name)
        if not os.path.exists(path):
            failures.append(f"{name}: fixture missing")
            continue
        code, findings = run_lint([path])
        if findings != expected:
            failures.append(
                f"{name}: findings {sorted(findings)} != "
                f"expected {sorted(expected)}")
        want_code = 1 if expected else 0
        if code != want_code:
            failures.append(f"{name}: exit {code} != {want_code}")

    # Library-only rules must stay off for non-library paths: the raw-stdio
    # fixture is clean when scanned without --treat-as-library (its path is
    # tests/..., not src/...).
    proc = subprocess.run(
        [sys.executable, LINT, "--root", REPO_ROOT,
         os.path.join(FIXTURES, "bad_raw_stdio.cc")],
        capture_output=True, text=True, cwd=REPO_ROOT)
    if proc.returncode != 0:
        failures.append("bad_raw_stdio.cc fired outside library scope: "
                        f"{proc.stdout}")

    # The real tree must be clean — the lint gate CI runs.
    proc = subprocess.run(
        [sys.executable, LINT, "src", "bench", "examples"],
        capture_output=True, text=True, cwd=REPO_ROOT)
    if proc.returncode != 0:
        failures.append(f"tree scan not clean:\n{proc.stdout}")

    # --list-rules must enumerate every rule the fixtures exercise.
    proc = subprocess.run([sys.executable, LINT, "--list-rules"],
                          capture_output=True, text=True, cwd=REPO_ROOT)
    listed = {line.split()[0] for line in proc.stdout.splitlines() if line}
    exercised = {rule for exp in EXPECTATIONS.values() for _, rule in exp}
    missing = exercised - listed
    if missing:
        failures.append(f"--list-rules missing: {sorted(missing)}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(f"crew_lint_test: {len(EXPECTATIONS)} fixtures + tree scan OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
