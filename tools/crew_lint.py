#!/usr/bin/env python3
"""CREW project lint: machine-checks the determinism and logging invariants.

CREW's evaluation depends on bit-reproducible pipelines (see DESIGN.md
"Correctness tooling"): every RNG is constructed from an explicit seed, no
ordered output may be derived from hash-map iteration order, and the
observability layer (tracing/metrics) must never feed back into what the
pipeline computes. This lint enforces those invariants textually so they are
caught in CI instead of in a reviewer's head.

Usage:
    tools/crew_lint.py [options] <file-or-dir>...

Rules (ids are stable; see --list-rules):
    rand-source       Unseeded randomness: rand()/srand()/std::random_device/
                      std::random_shuffle. RNGs must be crew::Rng (or a std
                      engine) constructed from an explicit seed parameter.
    wall-clock-seed   Seeding an RNG from the wall clock (time(nullptr),
                      <chrono> ::now()). Seeds must be explicit inputs.
    unordered-iter    Iterating a std::unordered_map/std::unordered_set
                      (range-for or .begin()/.cbegin()/.rbegin()). Hash
                      iteration order is unspecified; anything ordered that
                      is derived from it is non-reproducible. Convert to
                      sorted access or justify with a suppression.
    raw-stdio         std::cout/std::cerr/printf-family in library code
                      (src/). Use CREW_LOG (crew/common/logging.h) so
                      severity filtering and thread ids apply.
    include-guard     Header guard must be CREW_<PATH>_H_ derived from the
                      repo-relative path (src/ stripped), with a matching
                      #define on the next preprocessor line.
    trace-mutate      Tracing/metrics state observed by compute-path control
                      flow (CREW_TRACE_SPAN or TracingEnabled() inside a
                      condition, assigned, or returned; ScopedMetricStage in
                      a condition). Observability must be write-only for the
                      pipeline: toggling tracing can never change a result.

Suppressions:
    // crew-lint: allow(<rule-id>)[: reason]
        on the offending line, or anywhere in the contiguous // comment
        block immediately above it.
    // crew-lint: allow-file(<rule-id>)[: reason]
        within the first 50 lines: suppresses the rule for the whole file.

Exit status: 0 when clean, 1 when any finding is emitted, 2 on usage error.
"""

import argparse
import os
import re
import sys

EXTENSIONS = (".h", ".hpp", ".cc", ".cpp", ".cxx")
SKIP_DIR_PARTS = {"build", "build-tsan", ".git", "CMakeFiles", "lint_fixtures"}

ALLOW_RE = re.compile(r"//\s*crew-lint:\s*allow\(([\w\-, ]+)\)")
ALLOW_FILE_RE = re.compile(r"//\s*crew-lint:\s*allow-file\(([\w\-, ]+)\)")

RULES = {
    "rand-source": "unseeded randomness source (rand/srand/std::random_device)",
    "wall-clock-seed": "RNG seeded from the wall clock",
    "unordered-iter": "iteration over an unordered container",
    "raw-stdio": "raw stdout/stderr in library code (use CREW_LOG)",
    "include-guard": "non-canonical or missing include guard",
    "trace-mutate": "observability state observed by compute-path control flow",
}


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_strings_and_comments(line):
    """Removes string/char literal contents and // comments so rule regexes
    do not fire on text inside them. Keeps the line length roughly stable."""
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
                out.append(c)
            i += 1
            continue
        if c in "\"'":
            in_str = c
            out.append(c)
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # rest is a comment
        out.append(c)
        i += 1
    return "".join(out)


RAND_RE = re.compile(
    r"std::random_device|std::random_shuffle"
    r"|(?:std::|(?<![\w:.>]))s?rand\s*\(")
WALL_SEED_CONTEXT_RE = re.compile(
    r"\bRng\s*[({]|\bmt19937(_64)?\b|default_random_engine|[Ss]eed")
WALL_CLOCK_RE = re.compile(
    r"::now\s*\(|(?<![\w:])time\s*\(\s*(nullptr|NULL|0)\s*\)")
RAW_STDIO_RE = re.compile(
    r"std::(cout|cerr|clog)\b|(?:std::|(?<![\w:.>]))(?:f?printf|puts)\s*\(")
TRACE_COND_RE = re.compile(
    r"\b(if|while|switch)\s*\(.*"
    r"(CREW_TRACE_SPAN|ScopedMetricStage\s*\(|TracingEnabled\s*\(\s*\))")
TRACE_VALUE_RE = re.compile(
    r"(=|\breturn\b)\s*(CREW_TRACE_SPAN|TracingEnabled\s*\(\s*\))")
TRACE_SPAN_STMT_RE = re.compile(r"^\s*CREW_TRACE_SPAN\s*\(")
TRACE_SPAN_ANY_RE = re.compile(r"CREW_TRACE_SPAN\s*\(")

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set)\s*<[^;{}()]*>\s*[&*]?\s*(\w+)\s*[;,={(\[)]")
UNORDERED_ALIAS_RE = re.compile(
    r"using\s+(\w+)\s*=\s*std::unordered_(?:map|set)\b"
    r"|typedef\s+std::unordered_(?:map|set)\s*<[^;]*>\s*(\w+)\s*;")


def find_unordered_names(text):
    """Names of variables/members declared with an unordered container type
    in this file (heuristic, single-file view), plus type aliases for
    unordered containers and variables declared with those aliases."""
    names = set(m.group(1) for m in UNORDERED_DECL_RE.finditer(text))
    aliases = set()
    for m in UNORDERED_ALIAS_RE.finditer(text):
        aliases.add(m.group(1) or m.group(2))
    for alias in aliases:
        for m in re.finditer(
                r"\b%s\s*[&*]?\s+[&*]?\s*(\w+)\s*[;,={(\[)]" % re.escape(alias),
                text):
            names.add(m.group(1))
    # Declared-but-common words that would be noisy to track.
    names.discard("const")
    return names


def expected_guard(relpath):
    path = relpath.replace(os.sep, "/")
    if path.startswith("src/"):
        path = path[len("src/"):]
    guard = re.sub(r"[^A-Za-z0-9]", "_", path).upper() + "_"
    if not guard.startswith("CREW_"):
        guard = "CREW_" + guard
    return guard


def check_include_guard(relpath, raw_lines):
    guard = expected_guard(relpath)
    ifndef_idx = None
    for i, line in enumerate(raw_lines):
        stripped = line.strip()
        if not stripped or stripped.startswith("//"):
            continue
        if stripped.startswith("#ifndef"):
            ifndef_idx = i
        break
    if ifndef_idx is None:
        return [Finding(relpath, 1, "include-guard",
                        f"missing include guard; expected #ifndef {guard}")]
    got = raw_lines[ifndef_idx].split()
    if len(got) < 2 or got[1] != guard:
        return [Finding(relpath, ifndef_idx + 1, "include-guard",
                        f"guard is {got[1] if len(got) > 1 else '<none>'}; "
                        f"expected {guard}")]
    for j in range(ifndef_idx + 1, min(ifndef_idx + 3, len(raw_lines))):
        stripped = raw_lines[j].strip()
        if stripped.startswith("#define"):
            parts = stripped.split()
            if len(parts) < 2 or parts[1] != guard:
                return [Finding(relpath, j + 1, "include-guard",
                                f"#define does not match guard {guard}")]
            return []
    return [Finding(relpath, ifndef_idx + 1, "include-guard",
                    f"#ifndef {guard} not followed by #define {guard}")]


def line_suppressions(raw_lines, index):
    """Rules suppressed for raw_lines[index]: markers on the line itself or
    in the contiguous // comment block directly above it."""
    rules = set()
    for m in ALLOW_RE.finditer(raw_lines[index]):
        rules.update(r.strip() for r in m.group(1).split(","))
    i = index - 1
    while i >= 0 and raw_lines[i].strip().startswith("//"):
        for m in ALLOW_RE.finditer(raw_lines[i]):
            rules.update(r.strip() for r in m.group(1).split(","))
        i -= 1
    return rules


def lint_file(path, relpath, is_library):
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().splitlines()
    except OSError as e:
        return [Finding(relpath, 1, "io", str(e))]

    file_allows = set()
    for line in raw_lines[:50]:
        for m in ALLOW_FILE_RE.finditer(line):
            file_allows.update(r.strip() for r in m.group(1).split(","))

    code_lines = [strip_strings_and_comments(l) for l in raw_lines]
    text = "\n".join(code_lines)
    unordered_names = find_unordered_names(text)
    iter_res = []
    for name in unordered_names:
        escaped = re.escape(name)
        iter_res.append(re.compile(
            r"for\s*\([^;)]*:\s*[&*]?\s*%s\s*\)" % escaped))
        iter_res.append(re.compile(
            r"\b%s\s*\.\s*(begin|cbegin|rbegin)\s*\(" % escaped))

    findings = []

    def add(i, rule, message):
        if rule in file_allows:
            return
        if rule in line_suppressions(raw_lines, i):
            return
        findings.append(Finding(relpath, i + 1, rule, message))

    for i, code in enumerate(code_lines):
        m = RAND_RE.search(code)
        if m:
            add(i, "rand-source",
                f"'{m.group(0).strip()}' is not seed-reproducible; take an "
                "explicit seed and use crew::Rng")
        if WALL_CLOCK_RE.search(code) and WALL_SEED_CONTEXT_RE.search(code):
            add(i, "wall-clock-seed",
                "RNG/seed derived from the wall clock; seeds must be "
                "explicit parameters")
        for rx in iter_res:
            if rx.search(code):
                add(i, "unordered-iter",
                    "iteration over an unordered container; hash order is "
                    "unspecified — sort first or justify with "
                    "// crew-lint: allow(unordered-iter): <reason>")
                break
        if is_library and RAW_STDIO_RE.search(code):
            add(i, "raw-stdio",
                "library code must log via CREW_LOG, not raw stdout/stderr")
        if TRACE_COND_RE.search(code) or TRACE_VALUE_RE.search(code):
            add(i, "trace-mutate",
                "control flow observes tracing/metrics state; observability "
                "must be write-only for the pipeline")
        elif TRACE_SPAN_ANY_RE.search(code) and \
                not TRACE_SPAN_STMT_RE.match(code):
            add(i, "trace-mutate",
                "CREW_TRACE_SPAN must be a standalone statement (RAII span)")

    if relpath.endswith((".h", ".hpp")) and "include-guard" not in file_allows:
        for f_ in check_include_guard(relpath, raw_lines):
            if "include-guard" not in line_suppressions(
                    raw_lines, f_.line - 1):
                findings.append(f_)

    return findings


def collect_files(paths):
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
        elif os.path.isdir(p):
            for root, dirs, names in os.walk(p):
                dirs[:] = [d for d in dirs if d not in SKIP_DIR_PARTS]
                for name in sorted(names):
                    if name.endswith(EXTENSIONS):
                        files.append(os.path.join(root, name))
        else:
            print(f"crew_lint: no such file or directory: {p}",
                  file=sys.stderr)
            sys.exit(2)
    return files


def main():
    parser = argparse.ArgumentParser(
        description="CREW determinism/logging lint",
        usage="%(prog)s [options] <file-or-dir>...")
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument("--root", default=".",
                        help="repo root used to derive guard names and the "
                             "library (src/) scope (default: cwd)")
    parser.add_argument("--treat-as-library", action="store_true",
                        help="apply library-only rules (raw-stdio) to every "
                             "scanned file regardless of path")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        for rule, desc in sorted(RULES.items()):
            print(f"{rule:18} {desc}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        return 2

    findings = []
    for path in collect_files(args.paths):
        relpath = os.path.relpath(path, args.root).replace(os.sep, "/")
        is_library = args.treat_as_library or relpath.startswith("src/")
        findings.extend(lint_file(path, relpath, is_library))

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f)
    if findings:
        print(f"crew_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
