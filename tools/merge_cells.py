#!/usr/bin/env python3
"""Merges and validates per-cell JSONL shards from the streaming sinks.

Each shard (written by --stream / --resume on the bench binaries) is one
header line followed by one line per completed cell, all stamped with the
schema version. Cross-process sharding story: run each shard of the grid
in its own process with its own --stream file, then merge here.

The merge is deterministic: cells are emitted sorted by (scope, dataset,
variant), under a single header, regardless of shard order or completion
order inside a shard. Validation refuses:
  * any line whose schema version is not the expected one;
  * shards whose headers name different experiments;
  * the same cell key appearing twice with *different* payloads (identical
    duplicates — a cell both checkpointed and re-streamed — are deduped
    with a warning).
An unterminated trailing line (a crash artifact) is dropped with a
warning, matching the C++ CheckpointStore recovery contract; corruption
anywhere else is fatal.

Usage:
  tools/merge_cells.py shard1.jsonl shard2.jsonl ... -o merged.jsonl
  tools/merge_cells.py --check shard.jsonl        # validate only
  tools/merge_cells.py --self-test                # run the built-in tests

Exit code 0 on success, 1 with a diagnostic on the first violation.
"""

import io
import json
import os
import sys
import tempfile

SCHEMA_VERSION = 1


class MergeError(Exception):
    pass


def warn(msg):
    print(f"merge_cells: warning: {msg}", file=sys.stderr)


def cell_key(record):
    scope = record.get("scope", "")
    prefix = f"{scope}|" if scope else ""
    return f"{prefix}{record['dataset']}|{record['variant']}"


def parse_shard(path, text):
    """Returns (header_record_or_None, {key: (record, line)}) for one shard."""
    header = None
    cells = {}
    lines = text.split("\n")
    # A terminated file ends with "\n", so split() leaves one trailing "".
    terminated = lines and lines[-1] == ""
    if terminated:
        lines.pop()
    for i, line in enumerate(lines):
        last = i == len(lines) - 1
        torn = last and not terminated
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if torn:
                warn(f"{path}: dropping unterminated trailing line "
                     f"(crash artifact, {len(line)} byte(s))")
                break
            raise MergeError(f"{path}:{i + 1}: not valid JSON")
        if not isinstance(record, dict) or "v" not in record:
            raise MergeError(f"{path}:{i + 1}: record has no version field")
        if record["v"] != SCHEMA_VERSION:
            # Version mismatch is fatal anywhere, even on a torn-looking
            # tail: silently recomputing another writer's cells is worse
            # than asking the operator to resolve the mismatch.
            raise MergeError(
                f"{path}:{i + 1}: unsupported schema version {record['v']} "
                f"(expected {SCHEMA_VERSION})")
        kind = record.get("kind")
        if kind == "header":
            if "experiment" not in record:
                raise MergeError(f"{path}:{i + 1}: header has no experiment")
            if header is None:
                header = record
            elif header["experiment"] != record["experiment"]:
                raise MergeError(
                    f"{path}:{i + 1}: shard mixes experiments "
                    f"'{header['experiment']}' vs '{record['experiment']}'")
        elif kind == "cell":
            if torn:
                # Parsed fine but the line never got its newline: treat as
                # complete (the payload is intact).
                pass
            for field in ("dataset", "variant"):
                if field not in record:
                    raise MergeError(f"{path}:{i + 1}: cell has no {field}")
            key = cell_key(record)
            if key in cells and cells[key][0] != record:
                raise MergeError(
                    f"{path}:{i + 1}: duplicate cell '{key}' with "
                    f"conflicting payloads")
            if key in cells:
                warn(f"{path}: duplicate identical cell '{key}'; deduped")
            else:
                cells[key] = (record, line)
        else:
            raise MergeError(f"{path}:{i + 1}: unknown record kind: {kind!r}")
    return header, cells


def merge(paths):
    """Returns (header_line, [cell_line...]) merged across shards."""
    experiment = None
    header_line = None
    merged = {}
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            raise MergeError(f"{path}: {e}")
        header, cells = parse_shard(path, text)
        if header is not None:
            if experiment is None:
                experiment = header["experiment"]
                header_line = json.dumps(header, separators=(",", ":"))
            elif experiment != header["experiment"]:
                raise MergeError(
                    f"{path}: experiment '{header['experiment']}' does not "
                    f"match '{experiment}' from earlier shards")
        for key, (record, line) in cells.items():
            if key in merged and merged[key][0] != record:
                raise MergeError(
                    f"{path}: cell '{key}' conflicts with an earlier shard")
            if key in merged:
                warn(f"{path}: cell '{key}' duplicated across shards; "
                     f"deduped")
            else:
                merged[key] = (record, line)
    ordered = sorted(
        merged.values(),
        key=lambda rc: (rc[0].get("scope", ""), rc[0]["dataset"],
                        rc[0]["variant"]))
    return header_line, [line for _, line in ordered]


def run(argv, out=sys.stdout):
    check_only = "--check" in argv
    argv = [a for a in argv if a != "--check"]
    output = None
    if "-o" in argv:
        i = argv.index("-o")
        if i + 1 >= len(argv):
            raise MergeError("-o needs a path")
        output = argv[i + 1]
        del argv[i:i + 2]
    if not argv:
        raise MergeError(
            "usage: merge_cells.py [--check] shard.jsonl ... [-o merged]")
    header_line, cell_lines = merge(argv)
    if check_only:
        print(f"merge_cells: OK: {len(cell_lines)} cell(s) across "
              f"{len(argv)} shard(s)", file=out)
        return
    sink = out
    close = False
    if output is not None:
        sink = open(output, "w", encoding="utf-8")
        close = True
    try:
        if header_line is not None:
            print(header_line, file=sink)
        for line in cell_lines:
            print(line, file=sink)
    finally:
        if close:
            sink.close()


# ---------------------------------------------------------------------------
# Self-test (run as a ctest: merge_cells.py --self-test)
# ---------------------------------------------------------------------------

def _header(experiment="exp"):
    return json.dumps({"v": 1, "kind": "header", "experiment": experiment,
                       "params": []}, separators=(",", ":"))


def _cell(dataset, variant, scope="", aopc=0.0):
    return json.dumps({"v": 1, "kind": "cell", "scope": scope,
                       "dataset": dataset, "variant": variant,
                       "aggregate": {"aopc": aopc}},
                      separators=(",", ":"))


def _write(tmpdir, name, content):
    path = os.path.join(tmpdir, name)
    with open(path, "w", encoding="utf-8") as f:
        f.write(content)
    return path


def _expect_raises(fn, fragment):
    try:
        fn()
    except MergeError as e:
        assert fragment in str(e), f"expected '{fragment}' in '{e}'"
        return
    raise AssertionError(f"expected MergeError containing '{fragment}'")


def self_test():
    with tempfile.TemporaryDirectory() as tmp:
        # Deterministic merge order: cells sorted by (scope, dataset,
        # variant) regardless of shard order and in-shard completion order.
        a = _write(tmp, "a.jsonl",
                   _header() + "\n" + _cell("d2", "v1") + "\n" +
                   _cell("d1", "v2") + "\n")
        b = _write(tmp, "b.jsonl",
                   _header() + "\n" + _cell("d1", "v1", scope="s") + "\n" +
                   _cell("d1", "v1") + "\n")
        out1 = io.StringIO()
        run([b, a, "-o", os.path.join(tmp, "m1.jsonl")], out=out1)
        out2 = io.StringIO()
        run([a, b, "-o", os.path.join(tmp, "m2.jsonl")], out=out2)
        with open(os.path.join(tmp, "m1.jsonl"), encoding="utf-8") as f:
            m1 = f.read()
        with open(os.path.join(tmp, "m2.jsonl"), encoding="utf-8") as f:
            m2 = f.read()
        assert m1 == m2, "merge must not depend on shard order"
        keys = [cell_key(json.loads(line)) for line in m1.splitlines()[1:]]
        assert keys == ["d1|v1", "d1|v2", "d2|v1", "s|d1|v1"], keys

        # Identical duplicate cells (checkpoint + stream of one run) dedupe.
        dup = _write(tmp, "dup.jsonl",
                     _header() + "\n" + _cell("d1", "v1") + "\n" +
                     _cell("d1", "v1") + "\n")
        run(["--check", dup], out=io.StringIO())

        # Conflicting duplicates are refused.
        conflict = _write(tmp, "conflict.jsonl",
                          _header() + "\n" + _cell("d1", "v1", aopc=1.0) +
                          "\n" + _cell("d1", "v1", aopc=2.0) + "\n")
        _expect_raises(lambda: run(["--check", conflict],
                                   out=io.StringIO()),
                       "conflicting payloads")
        other = _write(tmp, "other_copy.jsonl",
                       _header() + "\n" + _cell("d1", "v1", aopc=2.0) + "\n")
        ok = _write(tmp, "ok_copy.jsonl",
                    _header() + "\n" + _cell("d1", "v1", aopc=1.0) + "\n")
        _expect_raises(lambda: run(["--check", ok, other],
                                   out=io.StringIO()),
                       "conflicts with an earlier shard")

        # Mixed experiments are refused.
        exp2 = _write(tmp, "exp2.jsonl",
                      _header("another") + "\n" + _cell("d9", "v9") + "\n")
        _expect_raises(lambda: run(["--check", a, exp2], out=io.StringIO()),
                       "does not match")

        # Version mismatch is fatal anywhere.
        vbad = _write(tmp, "vbad.jsonl",
                      _header() + "\n" +
                      '{"v":999,"kind":"cell","dataset":"d","variant":"v"}'
                      + "\n")
        _expect_raises(lambda: run(["--check", vbad], out=io.StringIO()),
                       "unsupported schema version")

        # An unterminated trailing line (crash artifact) is dropped...
        torn = _write(tmp, "torn.jsonl",
                      _header() + "\n" + _cell("d1", "v1") + "\n" +
                      '{"v":1,"kind":"ce')
        out = io.StringIO()
        run(["--check", torn], out=out)
        assert "1 cell(s)" in out.getvalue(), out.getvalue()

        # ...but interior corruption is fatal.
        interior = _write(tmp, "interior.jsonl",
                          _header() + "\n" + "not json\n" +
                          _cell("d1", "v1") + "\n")
        _expect_raises(lambda: run(["--check", interior], out=io.StringIO()),
                       "not valid JSON")
    print("merge_cells: self-test OK")


def main():
    argv = sys.argv[1:]
    if argv == ["--self-test"]:
        self_test()
        return
    try:
        run(argv)
    except MergeError as e:
        print(f"merge_cells: FAIL: {e}", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
