#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file produced by --trace=<file>.

Checks (stdlib only, no third-party deps):
  * the file parses as JSON and has a non-empty "traceEvents" list;
  * every event is a complete ("ph" == "X") event carrying name, cat,
    pid, tid, ts and dur with sane types/values;
  * per tid, events are well-nested: sorted by (ts, -dur), each event
    lies inside the enclosing open span (small epsilon for rounding,
    since ts/dur are microseconds with 3 decimals).

Usage: tools/validate_trace.py trace.json [--min-events N]
Exit code 0 on success, 1 with a diagnostic on the first violation.
"""

import argparse
import json
import sys

EPS_US = 0.002  # ts/dur carry 3 decimals; allow one rounding ulp per edge


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--min-events", type=int, default=1,
                        help="require at least this many events")
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {args.trace}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail('missing or non-list "traceEvents"')
    if len(events) < args.min_events:
        fail(f"expected >= {args.min_events} events, got {len(events)}")

    for i, ev in enumerate(events):
        for key in ("name", "cat", "ph", "pid", "tid", "ts", "dur"):
            if key not in ev:
                fail(f"event {i} missing {key!r}: {ev}")
        if ev["ph"] != "X":
            fail(f"event {i} has ph={ev['ph']!r}, want 'X'")
        if not isinstance(ev["name"], str) or not ev["name"]:
            fail(f"event {i} has empty/non-string name")
        for key in ("pid", "tid"):
            if not isinstance(ev[key], int) or ev[key] <= 0:
                fail(f"event {i} has bad {key}: {ev[key]!r}")
        for key in ("ts", "dur"):
            if not isinstance(ev[key], (int, float)) or ev[key] < 0:
                fail(f"event {i} has bad {key}: {ev[key]!r}")

    # Nesting check per thread. Sorting by (ts, -dur) puts parents before
    # their children; a stack of open spans then catches any overlap that
    # is not containment.
    by_tid = {}
    for ev in events:
        by_tid.setdefault(ev["tid"], []).append(ev)
    for tid, tid_events in sorted(by_tid.items()):
        tid_events.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []
        for ev in tid_events:
            start, end = ev["ts"], ev["ts"] + ev["dur"]
            while stack and start >= stack[-1]["ts"] + stack[-1]["dur"] - EPS_US:
                stack.pop()
            if stack:
                p_start = stack[-1]["ts"]
                p_end = p_start + stack[-1]["dur"]
                if start < p_start - EPS_US or end > p_end + EPS_US:
                    fail(f"tid {tid}: {ev['name']!r} [{start}, {end}] not "
                         f"nested in {stack[-1]['name']!r} "
                         f"[{p_start}, {p_end}]")
            stack.append(ev)

    tids = sorted(by_tid)
    names = sorted({ev["name"] for ev in events})
    print(f"validate_trace: OK: {len(events)} events, "
          f"{len(tids)} thread(s), {len(names)} distinct span name(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
