// Practical CLI: explain predictions over YOUR data.
//
// Reads a DeepMatcher-style CSV (header: label,left_<a>...,right_<a>...),
// trains a matcher on a split, and prints a CREW cluster explanation for
// the requested test pair. With --export, writes JSON to stdout instead.
//
//   ./examples/explain_csv --csv pairs.csv [--pair 0] [--matcher mlp]
//                          [--export] [--seed 7]
//
// Without --csv it demonstrates itself on a generated dataset written to a
// temporary file first (so the example is runnable out of the box).

#include <cstdio>

#include "crew/common/flags.h"
#include "crew/core/crew_explainer.h"
#include "crew/data/benchmark_suite.h"
#include "crew/data/csv.h"
#include "crew/explain/serialize.h"
#include "crew/model/trainer.h"

int main(int argc, char** argv) {
  crew::FlagParser flags(argc, argv);
  if (!flags.status().ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 1;
  }
  const uint64_t seed = flags.GetUint64("seed", 7);
  std::string csv_path = flags.GetString("csv", "");

  if (csv_path.empty()) {
    // Self-demo: materialize a benchmark dataset as a CSV file.
    auto generated = crew::GenerateByName("restaurants-structured", seed);
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 1;
    }
    csv_path = "/tmp/crew_demo_pairs.csv";
    if (auto s = crew::SaveDatasetCsvFile(generated.value(), csv_path);
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("(no --csv given; wrote demo dataset to %s)\n\n",
                csv_path.c_str());
  }

  auto dataset = crew::LoadDatasetCsvFile(csv_path);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  // Resolve the matcher kind by name.
  const std::string matcher_name = flags.GetString("matcher", "mlp");
  crew::MatcherKind kind = crew::MatcherKind::kMlp;
  bool found = false;
  for (crew::MatcherKind k : crew::AllMatcherKinds()) {
    if (matcher_name == crew::MatcherKindName(k)) {
      kind = k;
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown --matcher %s\n", matcher_name.c_str());
    return 1;
  }

  auto pipeline = crew::TrainPipeline(dataset.value(), kind, 0.7, seed);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
    return 1;
  }
  const auto& p = pipeline.value();

  const int pair_index = flags.GetInt("pair", 0);
  if (pair_index < 0 || pair_index >= p.test.size()) {
    std::fprintf(stderr, "--pair out of range (test split has %d pairs)\n",
                 p.test.size());
    return 1;
  }
  const crew::RecordPair& pair = p.test.pair(pair_index);

  crew::CrewConfig config;
  config.importance.perturbation.num_samples = flags.GetInt("samples", 192);
  crew::CrewExplainer explainer(p.embeddings, config);
  auto clusters = explainer.ExplainClusters(*p.matcher, pair, seed);
  if (!clusters.ok()) {
    std::fprintf(stderr, "%s\n", clusters.status().ToString().c_str());
    return 1;
  }

  if (flags.GetBool("export", false)) {
    std::printf("%s\n",
                crew::ClusterExplanationToJson(clusters.value()).c_str());
    return 0;
  }
  std::printf("file: %s | matcher %s | test F1 = %.3f\n", csv_path.c_str(),
              p.matcher->Name().c_str(), p.test_metrics.F1());
  std::printf("pair %d of the test split:\n", pair_index);
  std::printf("left : %s\n",
              pair.left.ToDisplayString(p.test.schema()).c_str());
  std::printf("right: %s\n\n",
              pair.right.ToDisplayString(p.test.schema()).c_str());
  std::printf("%s", clusters.value().ToString().c_str());
  return 0;
}
