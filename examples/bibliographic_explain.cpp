// Error-analysis scenario on bibliographic data: use CREW to understand
// the matcher's MISTAKES — false positives ("why did it merge two
// different papers?") and false negatives ("why did it miss this match?").
// This is the auditing workflow the paper motivates: a domain expert
// reviews model decisions through compact cluster explanations, and a
// global aggregate shows what the model relies on overall.
//
//   ./examples/bibliographic_explain [--seed 7]

#include <cstdio>

#include "crew/common/flags.h"
#include "crew/data/benchmark_suite.h"
#include "crew/eval/experiment.h"
#include "crew/eval/global_explanation.h"
#include "crew/explain/serialize.h"

int main(int argc, char** argv) {
  crew::FlagParser flags(argc, argv);
  const uint64_t seed = flags.GetUint64("seed", 7);

  auto dataset = crew::GenerateByName("biblio-dirty", seed);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  auto pipeline = crew::TrainPipeline(dataset.value(),
                                      crew::MatcherKind::kRandomForest, 0.7,
                                      seed);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
    return 1;
  }
  const auto& p = pipeline.value();
  std::printf("biblio-dirty | matcher %s | test F1 = %.3f\n\n",
              p.matcher->Name().c_str(), p.test_metrics.F1());

  crew::CrewConfig config;
  config.importance.perturbation.num_samples = 192;
  crew::CrewExplainer explainer(p.embeddings, config);

  int shown = 0;
  for (int i = 0; i < p.test.size() && shown < 2; ++i) {
    const crew::RecordPair& pair = p.test.pair(i);
    const int pred = p.matcher->Predict(pair);
    if (pred == pair.label) continue;  // only mistakes
    ++shown;
    std::printf("===== %s =====\n",
                pred == 1 ? "FALSE POSITIVE (wrongly merged)"
                          : "FALSE NEGATIVE (missed match)");
    std::printf("left : %s\n",
                pair.left.ToDisplayString(p.test.schema()).c_str());
    std::printf("right: %s\n",
                pair.right.ToDisplayString(p.test.schema()).c_str());
    auto clusters = explainer.ExplainClusters(*p.matcher, pair, seed + i);
    if (!clusters.ok()) {
      std::fprintf(stderr, "%s\n", clusters.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", clusters.value().ToString().c_str());
  }
  if (shown == 0) {
    std::printf("(matcher made no mistakes on the test split; "
                "try another --seed)\n\n");
  }

  // Global view: what drives this matcher across the whole test set?
  crew::Rng rng(seed);
  const auto instances =
      crew::SelectExplainInstances(*p.matcher, p.test, 20, rng);
  auto global =
      crew::BuildGlobalExplanation(explainer, *p.matcher, p.test, instances,
                                   seed);
  if (!global.ok()) {
    std::fprintf(stderr, "%s\n", global.status().ToString().c_str());
    return 1;
  }
  std::printf("===== global explanation (%d pairs) =====\n",
              global->instances);
  std::printf("attribute influence:\n");
  for (const auto& attr : global->attributes) {
    std::printf("  %-10s %5.1f%%\n", attr.name.c_str(), 100.0 * attr.share);
  }
  std::printf("most influential tokens:\n");
  for (size_t t = 0; t < global->tokens.size() && t < 8; ++t) {
    std::printf("  %-16s mean |w| = %.4f (seen %dx, direction %+.4f)\n",
                global->tokens[t].token.c_str(),
                global->tokens[t].mean_abs_weight,
                global->tokens[t].occurrences,
                global->tokens[t].mean_weight);
  }

  // Machine-readable export of one explanation (for UIs / notebooks).
  auto sample = explainer.ExplainClusters(*p.matcher, p.test.pair(0), seed);
  if (sample.ok()) {
    std::printf("\n===== JSON export (pair 0) =====\n%s\n",
                crew::ClusterExplanationToJson(sample.value()).c_str());
  }
  return 0;
}
