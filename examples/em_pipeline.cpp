// Full EM stack walkthrough: blocking -> matching -> explaining.
//
// Starts from two raw record tables (the realistic input), runs the token
// blocker to generate candidates, scores them with a trained matcher, and
// explains the borderline decisions with CREW — the complete pipeline a
// deployed entity-resolution system runs, end to end in one binary.
//
//   ./examples/em_pipeline [--dataset restaurants-dirty] [--seed 7]

#include <cmath>
#include <cstdio>

#include "crew/common/flags.h"
#include "crew/core/crew_explainer.h"
#include "crew/data/benchmark_suite.h"
#include "crew/data/blocking.h"
#include "crew/model/trainer.h"

int main(int argc, char** argv) {
  crew::FlagParser flags(argc, argv);
  const std::string dataset_name =
      flags.GetString("dataset", "restaurants-dirty");
  const uint64_t seed = flags.GetUint64("seed", 7);

  auto dataset = crew::GenerateByName(dataset_name, seed);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  // --- Stage 1: blocking over the two raw tables. ---
  const crew::TablePair tables = crew::ToTables(dataset.value());
  crew::TokenBlocker blocker;
  const auto candidates = blocker.GenerateCandidates(tables);
  const auto blocking = crew::EvaluateBlocking(tables, candidates);
  std::printf("== stage 1: blocking ==\n");
  std::printf(
      "tables: %zu x %zu records -> %d candidates "
      "(pair completeness %.3f, reduction ratio %.3f)\n\n",
      tables.left.size(), tables.right.size(), blocking.candidates,
      blocking.PairCompleteness(),
      blocking.ReductionRatio(static_cast<int>(tables.left.size()),
                              static_cast<int>(tables.right.size())));

  // --- Stage 2: train a matcher on the labeled pairs, score candidates. ---
  auto pipeline = crew::TrainPipeline(dataset.value(),
                                      crew::MatcherKind::kRandomForest, 0.7,
                                      seed);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
    return 1;
  }
  const auto& p = pipeline.value();
  std::printf("== stage 2: matching ==\n");
  std::printf("matcher %s, test F1 = %.3f, threshold %.3f\n",
              p.matcher->Name().c_str(), p.test_metrics.F1(),
              p.matcher->threshold());

  int predicted_matches = 0;
  crew::RecordPair uncertain;
  double closest_margin = 1e9;
  for (const auto& [li, ri] : candidates) {
    crew::RecordPair candidate;
    candidate.left = tables.left[li];
    candidate.right = tables.right[ri];
    const double score = p.matcher->PredictProba(candidate);
    if (score >= p.matcher->threshold()) ++predicted_matches;
    const double margin = std::fabs(score - p.matcher->threshold());
    if (margin < closest_margin) {
      closest_margin = margin;
      uncertain = candidate;
    }
  }
  std::printf("candidates scored: %d predicted matches of %d candidates\n\n",
              predicted_matches, blocking.candidates);

  // --- Stage 3: explain the most uncertain candidate decision — the pair
  // a human reviewer would be shown first. ---
  std::printf("== stage 3: explaining the most uncertain candidate ==\n");
  std::printf("left : %s\n",
              uncertain.left.ToDisplayString(dataset->schema()).c_str());
  std::printf("right: %s\n",
              uncertain.right.ToDisplayString(dataset->schema()).c_str());
  crew::CrewConfig config;
  config.importance.perturbation.num_samples = 192;
  crew::CrewExplainer explainer(p.embeddings, config);
  auto clusters = explainer.ExplainClusters(*p.matcher, uncertain, seed);
  if (!clusters.ok()) {
    std::fprintf(stderr, "%s\n", clusters.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", clusters.value().ToString().c_str());
  return 0;
}
