// Product-catalog walkthrough: the scenario from the paper's motivation.
//
// Trains the neural matcher on a noisy product benchmark, then explains
// one predicted MATCH and one predicted NON-MATCH with the full explainer
// line-up, printing CREW's clusters next to each baseline's top words —
// the side-by-side the paper uses to argue comprehensibility.
//
//   ./examples/products_explain [--flavor dirty] [--seed 7]

#include <cstdio>

#include "crew/common/flags.h"
#include "crew/data/benchmark_suite.h"
#include "crew/eval/experiment.h"
#include "crew/core/counterfactual.h"
#include "crew/core/html_report.h"
#include "crew/eval/faithfulness.h"

namespace {

void ExplainOnePair(const crew::TrainedPipeline& pipeline,
                    const std::vector<std::unique_ptr<crew::Explainer>>& suite,
                    int index, uint64_t seed) {
  const crew::RecordPair& pair = pipeline.test.pair(index);
  const double score = pipeline.matcher->PredictProba(pair);
  std::printf("left : %s\n",
              pair.left.ToDisplayString(pipeline.test.schema()).c_str());
  std::printf("right: %s\n",
              pair.right.ToDisplayString(pipeline.test.schema()).c_str());
  std::printf("model: P(match) = %.3f -> %s   (gold: %s)\n\n", score,
              score >= pipeline.matcher->threshold() ? "MATCH" : "NON-MATCH",
              pair.label == 1 ? "match" : "non-match");

  crew::Tokenizer tokenizer;
  for (const auto& explainer : suite) {
    auto result =
        crew::ExplainAsUnits(*explainer, *pipeline.matcher, pair, seed);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", explainer->Name().c_str(),
                   result.status().ToString().c_str());
      continue;
    }
    const auto& units = result->second;
    crew::EvalInstance instance{
        crew::PairTokenView(crew::AnonymousSchema(pair), tokenizer, pair),
        units, result->first.base_score, pipeline.matcher->threshold()};
    const double drop =
        crew::ComprehensivenessAtK(*pipeline.matcher, instance, 3);
    std::printf("  %-12s (%2d units, drop@3 = %+0.3f):",
                explainer->Name().c_str(), static_cast<int>(units.size()),
                drop);
    const auto ranked = instance.RankUnitsBySupport();
    for (int i = 0; i < 3 && i < static_cast<int>(ranked.size()); ++i) {
      std::printf("  [%+.3f] %s", units[ranked[i]].weight,
                  units[ranked[i]].label.c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  crew::FlagParser flags(argc, argv);
  const std::string flavor = flags.GetString("flavor", "dirty");
  const uint64_t seed = flags.GetUint64("seed", 7);

  auto dataset = crew::GenerateByName("products-" + flavor, seed);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  auto pipeline = crew::TrainPipeline(dataset.value(),
                                      crew::MatcherKind::kEmbeddingBag, 0.7,
                                      seed);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
    return 1;
  }
  const auto& p = pipeline.value();
  std::printf("products-%s | matcher %s | test F1 = %.3f\n\n", flavor.c_str(),
              p.matcher->Name().c_str(), p.test_metrics.F1());

  crew::ExplainerSuiteConfig config;
  config.num_samples = 192;
  config.include_random = false;
  const auto suite =
      crew::BuildExplainerSuite(p.embeddings, p.train, config);

  int match_idx = -1, nonmatch_idx = -1;
  for (int i = 0; i < p.test.size(); ++i) {
    const int pred = p.matcher->Predict(p.test.pair(i));
    if (pred == 1 && match_idx < 0) match_idx = i;
    if (pred == 0 && nonmatch_idx < 0) nonmatch_idx = i;
    if (match_idx >= 0 && nonmatch_idx >= 0) break;
  }
  if (match_idx >= 0) {
    std::printf("===== predicted MATCH =====\n");
    ExplainOnePair(p, suite, match_idx, seed);
  }
  if (nonmatch_idx >= 0) {
    std::printf("===== predicted NON-MATCH (the hard case) =====\n");
    ExplainOnePair(p, suite, nonmatch_idx, seed);
  }

  // Bonus artifacts from the CREW explanation of the match pair: a minimal
  // counterfactual and a colour-coded HTML report.
  if (match_idx >= 0) {
    const crew::RecordPair& pair = p.test.pair(match_idx);
    crew::CrewConfig crew_config;
    crew_config.importance.perturbation.num_samples = 192;
    crew::CrewExplainer crew_explainer(p.embeddings, crew_config);
    auto clusters = crew_explainer.ExplainClusters(*p.matcher, pair, seed);
    if (clusters.ok()) {
      crew::Tokenizer tokenizer;
      crew::PairTokenView view(crew::AnonymousSchema(pair), tokenizer, pair);
      const auto cf = crew::GenerateCounterfactual(
          *p.matcher, view, clusters->units, clusters->base_score());
      std::printf("===== counterfactual =====\n%s\n\n",
                  crew::DescribeCounterfactual(cf, p.matcher->threshold())
                      .c_str());
      const std::string html_path = "/tmp/crew_explanation.html";
      std::FILE* f = std::fopen(html_path.c_str(), "w");
      if (f != nullptr) {
        const std::string html = crew::RenderExplanationHtml(
            p.test.schema(), pair, clusters.value(),
            "CREW - products-" + flavor);
        std::fwrite(html.data(), 1, html.size(), f);
        std::fclose(f);
        std::printf("HTML report written to %s\n", html_path.c_str());
      }
    }
  }
  return 0;
}
