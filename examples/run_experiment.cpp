// Run a custom experiment grid through the instance-parallel
// ExperimentRunner: pick datasets and an explainer line-up, shard the
// explained instances across the scoring pool, and emit the result as an
// aligned table plus (optionally) the self-describing JSON document.
//
// The aggregates are bit-identical for any --threads value: instances
// carry their own seeds and the reduction runs in index order, so the
// thread count only changes the wall clock.
//
//   ./examples/run_experiment [--datasets products-structured,biblio-structured]
//                             [--instances 8] [--samples 64] [--threads 4]
//                             [--json result.json] [--seed 7]
//                             [--trace trace.json] [--metrics]
//                             [--progress 1.0]

#include <cstdio>
#include <string>
#include <vector>

#include "crew/common/flags.h"
#include "crew/common/thread_pool.h"
#include "crew/common/trace.h"
#include "crew/data/benchmark_suite.h"
#include "crew/eval/runner.h"
#include "crew/eval/sinks.h"
#include "crew/explain/lime.h"
#include "crew/model/trainer.h"

int main(int argc, char** argv) {
  crew::FlagParser flags(argc, argv);
  if (!flags.status().ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 1;
  }
  const std::string datasets =
      flags.GetString("datasets", "products-structured,biblio-structured");
  const int instances = static_cast<int>(flags.GetUint64("instances", 8));
  const int samples = static_cast<int>(flags.GetUint64("samples", 64));
  const int threads = static_cast<int>(flags.GetUint64("threads", 4));
  const std::string json = flags.GetString("json", "");
  const uint64_t seed = flags.GetUint64("seed", 7);
  const std::string trace = flags.GetString("trace", "");
  const bool metrics = flags.GetBool("metrics", false);
  const double progress = flags.GetDouble("progress", 1.0);
  crew::SetScoringThreads(threads);
  crew::SetProgressInterval(progress);
  crew::SetTracingEnabled(!trace.empty());

  // 1. Declare the grid: datasets x matcher x explainer suite.
  crew::ExperimentSpec spec;
  spec.name = "example_experiment";
  spec.instances_per_dataset = instances;
  spec.seed = seed;
  const std::vector<crew::BenchmarkEntry> all =
      crew::StandardBenchmark(seed, /*matches_per_dataset=*/120,
                              /*nonmatches_per_dataset=*/160);
  std::string rest = datasets;
  while (!rest.empty()) {
    const size_t comma = rest.find(',');
    const std::string name = rest.substr(0, comma);
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    bool found = false;
    for (const crew::BenchmarkEntry& entry : all) {
      if (entry.name == name) {
        spec.datasets.push_back(entry);
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown dataset: %s\n", name.c_str());
      return 1;
    }
  }
  spec.suite = [samples](const crew::TrainedPipeline& pipeline) {
    crew::ExplainerSuiteConfig config;
    config.num_samples = samples;
    return crew::NameSuite(crew::BuildExplainerSuite(
        pipeline.embeddings, pipeline.train, config));
  };

  // 2. Execute: instances shard across the scoring pool; perturbation
  //    scoring nested inside a shard runs inline (one pool, two levels).
  crew::ExperimentRunner runner(std::move(spec));
  auto result = runner.Run();
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  // 3. Emit through sinks: console table, then JSON if asked.
  result.value().include_metrics = metrics;
  crew::TableSink table({
      crew::AggColumn("aopc", &crew::ExplainerAggregate::aopc),
      crew::AggColumn("compr@3", &crew::ExplainerAggregate::comprehensiveness_at_3),
      crew::AggColumn("units", &crew::ExplainerAggregate::total_units, 1),
      crew::AggColumn("ms/expl", &crew::ExplainerAggregate::runtime_ms, 2),
  });
  if (auto status = table.Consume(result.value()); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  if (!json.empty()) {
    crew::JsonSink sink(json);
    if (auto status = sink.Consume(result.value()); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json.c_str());
  }
  if (!trace.empty()) {
    if (auto status = crew::WriteChromeTrace(trace); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (load in chrome://tracing or ui.perfetto.dev)\n",
                trace.c_str());
  }
  return 0;
}
