// Run a custom experiment grid through the instance-parallel
// ExperimentRunner: pick datasets and an explainer line-up, shard the
// explained instances across the scoring pool, and emit the result as an
// aligned table plus (optionally) the self-describing JSON document.
//
// The aggregates are bit-identical for any --threads value: instances
// carry their own seeds and the reduction runs in index order, so the
// thread count only changes the wall clock.
//
//   ./examples/run_experiment [--datasets products-structured,biblio-structured]
//                             [--instances 8] [--samples 64] [--threads 4]
//                             [--json result.json] [--seed 7]
//                             [--trace trace.json] [--metrics]
//                             [--progress 1.0]
//                             [--resume ckpt.jsonl] [--stream cells.jsonl]
//                             [--fail-after-cells N] [--stable-timing]
//                             [--live-table]
//
// The streaming flags demonstrate the crash-safe execution layer: --resume
// names a per-cell checkpoint that lets a restarted run skip finished
// cells (bit-identically — per-cell seeds derive from the grid key, not
// execution order), --stream appends each finished cell to a JSONL shard,
// and --fail-after-cells injects a deterministic fault for testing the
// resume path. See DESIGN.md "Streaming & resume".

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "crew/common/flags.h"
#include "crew/common/thread_pool.h"
#include "crew/common/trace.h"
#include "crew/data/benchmark_suite.h"
#include "crew/eval/runner.h"
#include "crew/eval/sinks.h"
#include "crew/eval/streaming.h"
#include "crew/explain/lime.h"
#include "crew/model/trainer.h"

int main(int argc, char** argv) {
  crew::FlagParser flags(argc, argv);
  if (!flags.status().ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 1;
  }
  const std::string datasets =
      flags.GetString("datasets", "products-structured,biblio-structured");
  const int instances = static_cast<int>(flags.GetUint64("instances", 8));
  const int samples = static_cast<int>(flags.GetUint64("samples", 64));
  const int threads = static_cast<int>(flags.GetUint64("threads", 4));
  const std::string json = flags.GetString("json", "");
  const uint64_t seed = flags.GetUint64("seed", 7);
  const std::string trace = flags.GetString("trace", "");
  const bool metrics = flags.GetBool("metrics", false);
  const double progress = flags.GetDouble("progress", 1.0);
  const std::string resume = flags.GetString("resume", "");
  const std::string stream = flags.GetString("stream", "");
  const int fail_after_cells =
      static_cast<int>(flags.GetInt("fail-after-cells", -1));
  const bool stable_timing = flags.GetBool("stable-timing", false);
  const bool live_table = flags.GetBool("live-table", false);
  crew::SetScoringThreads(threads);
  crew::SetProgressInterval(progress);
  crew::SetTracingEnabled(!trace.empty());
  crew::SetStableTiming(stable_timing);

  // 1. Declare the grid: datasets x matcher x explainer suite.
  crew::ExperimentSpec spec;
  spec.name = "example_experiment";
  spec.instances_per_dataset = instances;
  spec.seed = seed;
  const std::vector<crew::BenchmarkEntry> all =
      crew::StandardBenchmark(seed, /*matches_per_dataset=*/120,
                              /*nonmatches_per_dataset=*/160);
  std::string rest = datasets;
  while (!rest.empty()) {
    const size_t comma = rest.find(',');
    const std::string name = rest.substr(0, comma);
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    bool found = false;
    for (const crew::BenchmarkEntry& entry : all) {
      if (entry.name == name) {
        spec.datasets.push_back(entry);
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown dataset: %s\n", name.c_str());
      return 1;
    }
  }
  spec.suite = [samples](const crew::TrainedPipeline& pipeline) {
    crew::ExplainerSuiteConfig config;
    config.num_samples = samples;
    return crew::NameSuite(crew::BuildExplainerSuite(
        pipeline.embeddings, pipeline.train, config));
  };

  // 2. Assemble the streaming hooks: a checkpoint store for --resume, a
  //    JSONL shard for --stream, a live partial table, and the fault
  //    injector (--fail-after-cells, or the CREW_FAULT_SEED /
  //    CREW_FAULT_HARD environment knobs).
  crew::RunHooks hooks;
  std::unique_ptr<crew::CheckpointStore> checkpoint;
  if (!resume.empty()) {
    checkpoint = std::make_unique<crew::CheckpointStore>(resume);
    if (auto status = checkpoint->Load(); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    if (checkpoint->done_cells() > 0) {
      std::fprintf(stderr, "[resume] %s: %d cell(s) restored\n",
                   resume.c_str(), checkpoint->done_cells());
    }
    hooks.checkpoint = checkpoint.get();
  }
  std::unique_ptr<crew::JsonlStreamSink> shard;
  if (!stream.empty()) {
    shard = std::make_unique<crew::JsonlStreamSink>(stream);
    hooks.sinks.push_back(shard.get());
  }
  std::unique_ptr<crew::PartialTableSink> live;
  if (live_table) {
    live = std::make_unique<crew::PartialTableSink>();
    hooks.sinks.push_back(live.get());
  }
  std::unique_ptr<crew::FaultInjector> fault =
      crew::FaultInjector::FromFlagsAndEnv(fail_after_cells);
  if (fault != nullptr) hooks.fault = fault.get();

  // 3. Execute: instances shard across the scoring pool; perturbation
  //    scoring nested inside a shard runs inline (one pool, two levels).
  crew::ExperimentRunner runner(std::move(spec));
  auto result = runner.Run(hooks);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  // 4. Emit through sinks: console table, then JSON if asked.
  result.value().include_metrics = metrics;
  crew::TableSink table({
      crew::AggColumn("aopc", &crew::ExplainerAggregate::aopc),
      crew::AggColumn("compr@3", &crew::ExplainerAggregate::comprehensiveness_at_3),
      crew::AggColumn("units", &crew::ExplainerAggregate::total_units, 1),
      crew::AggColumn("ms/expl", &crew::ExplainerAggregate::runtime_ms, 2),
  });
  if (auto status = table.Consume(result.value()); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  if (!json.empty()) {
    crew::JsonSink sink(json);
    if (auto status = sink.Consume(result.value()); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json.c_str());
  }
  if (!trace.empty()) {
    if (auto status = crew::WriteChromeTrace(trace); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (load in chrome://tracing or ui.perfetto.dev)\n",
                trace.c_str());
  }
  return 0;
}
