// Quickstart: generate an EM benchmark, train a matcher, explain one
// prediction with CREW, and print the cluster explanation next to LIME's
// word soup.
//
//   ./examples/quickstart [--dataset products-structured] [--seed 7]

#include <cstdio>

#include "crew/common/flags.h"
#include "crew/core/crew_explainer.h"
#include "crew/data/benchmark_suite.h"
#include "crew/explain/lime.h"
#include "crew/model/trainer.h"

int main(int argc, char** argv) {
  crew::FlagParser flags(argc, argv);
  if (!flags.status().ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 1;
  }
  const std::string dataset_name =
      flags.GetString("dataset", "products-structured");
  const uint64_t seed = flags.GetUint64("seed", 7);

  // 1. Data: a synthetic Magellan-style benchmark with known ground truth.
  auto dataset = crew::GenerateByName(dataset_name, seed);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  // 2. Model: split, train SGNS embeddings + an embedding-bag neural
  //    matcher, evaluate on the held-out pairs.
  auto pipeline = crew::TrainPipeline(dataset.value(),
                                      crew::MatcherKind::kEmbeddingBag,
                                      /*train_fraction=*/0.7, seed);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
    return 1;
  }
  const auto& p = pipeline.value();
  std::printf("dataset: %s (%d pairs)\n", dataset_name.c_str(),
              dataset.value().size());
  std::printf("matcher: %s  test F1 = %.3f (P = %.3f, R = %.3f)\n\n",
              p.matcher->Name().c_str(), p.test_metrics.F1(),
              p.test_metrics.Precision(), p.test_metrics.Recall());

  // 3. Pick one interesting test pair (first predicted match).
  int chosen = 0;
  for (int i = 0; i < p.test.size(); ++i) {
    if (p.matcher->Predict(p.test.pair(i)) == 1) {
      chosen = i;
      break;
    }
  }
  const crew::RecordPair& pair = p.test.pair(chosen);
  std::printf("left : %s\n",
              pair.left.ToDisplayString(p.test.schema()).c_str());
  std::printf("right: %s\n\n",
              pair.right.ToDisplayString(p.test.schema()).c_str());

  // 4. CREW explanation: few clusters of words.
  crew::CrewExplainer crew_explainer(p.embeddings);
  auto clusters = crew_explainer.ExplainClusters(*p.matcher, pair, seed);
  if (!clusters.ok()) {
    std::fprintf(stderr, "%s\n", clusters.status().ToString().c_str());
    return 1;
  }
  std::printf("== CREW (clusters of words) ==\n%s\n",
              clusters.value().ToString().c_str());

  // 5. LIME for contrast: one weight per word.
  crew::LimeExplainer lime;
  auto words = lime.Explain(*p.matcher, pair, seed);
  if (!words.ok()) {
    std::fprintf(stderr, "%s\n", words.status().ToString().c_str());
    return 1;
  }
  std::printf("== LIME (words, top 10 of %d) ==\n",
              static_cast<int>(words.value().attributions.size()));
  int shown = 0;
  for (int idx : words.value().RankedByMagnitude()) {
    const auto& a = words.value().attributions[idx];
    std::printf("  [%+.4f] %s (%s/%s)\n", a.weight, a.token.text.c_str(),
                crew::SideName(a.token.side),
                p.test.schema().name(a.token.attribute).c_str());
    if (++shown >= 10) break;
  }
  return 0;
}
