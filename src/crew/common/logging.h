#ifndef CREW_COMMON_LOGGING_H_
#define CREW_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace crew {

enum class LogSeverity { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that is actually emitted. The startup default
/// is kInfo, overridable with the CREW_MIN_LOG_LEVEL environment variable
/// (read once at process start; see ParseLogSeverity for accepted values).
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

/// Parses a severity name: "debug"/"d"/"0", "info"/"i"/"1",
/// "warning"/"warn"/"w"/"2", "error"/"e"/"3" (case-insensitive). Returns
/// `fallback` for nullptr or unrecognized input.
LogSeverity ParseLogSeverity(const char* value, LogSeverity fallback);

namespace internal_logging {

/// Stream-style log sink; emits on destruction. Used via the CREW_LOG macro.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 protected:
  /// Writes the buffered message to stderr; idempotent.
  void Emit();

 private:
  LogSeverity severity_;
  const char* file_;
  int line_;
  bool emitted_ = false;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process on destruction.
class FatalLogMessage : public LogMessage {
 public:
  FatalLogMessage(const char* file, int line)
      : LogMessage(LogSeverity::kError, file, line) {}
  ~FatalLogMessage();  // Aborts the process after emitting the message.

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    LogMessage::operator<<(v);
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace crew

#define CREW_LOG(severity)                                               \
  ::crew::internal_logging::LogMessage(::crew::LogSeverity::k##severity, \
                                       __FILE__, __LINE__)

#define CREW_LOG_FATAL \
  ::crew::internal_logging::FatalLogMessage(__FILE__, __LINE__)

/// Aborts with a message when `condition` is false. Active in all build
/// modes: CREW treats invariant violations as programming errors, matching
/// the no-exceptions error model (Status is for *expected* failures).
#define CREW_CHECK(condition) \
  if (!(condition)) CREW_LOG_FATAL << "CHECK failed: " #condition " "

#define CREW_CHECK_OK(expr)                                                 \
  if (::crew::Status crew_check_ok_tmp_ = (expr); !crew_check_ok_tmp_.ok()) \
  CREW_LOG_FATAL << "CHECK_OK failed: " << crew_check_ok_tmp_.ToString() << " "

// CREW_DCHECK and friends (debug-only checks, compiled out in Release) live
// in crew/common/dcheck.h.

#endif  // CREW_COMMON_LOGGING_H_
