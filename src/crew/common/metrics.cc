#include "crew/common/metrics.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <deque>
#include <map>
#include <mutex>

#include "crew/common/logging.h"
#include "crew/common/string_util.h"

namespace crew {
namespace {

// Hard cap on distinct slots (a counter takes 1, a duration 2, a histogram
// kNumBuckets). 32 KiB of atomics per thread shard; raising it is a
// one-line change.
constexpr int kMaxSlots = 4096;

struct Shard {
  std::array<std::atomic<std::int64_t>, kMaxSlots> slots{};
};

struct MetricInfo {
  MetricKind kind;
  int first_slot;
};

// All registry state lives behind one mutex; the only lock-free path is
// the per-thread shard write in AddToSlot. Leaked intentionally so worker
// threads draining after main() can still write their shards.
struct RegistryState {
  mutable std::mutex mu;
  std::map<std::string, MetricInfo> metrics;  // sorted by name
  std::deque<Counter> counters;
  std::deque<DurationStat> durations;
  std::deque<Histogram> histograms;
  std::map<std::string, Counter*> counter_handles;
  std::map<std::string, DurationStat*> duration_handles;
  std::map<std::string, Histogram*> histogram_handles;
  int next_slot = 0;
  std::vector<Shard*> shards;  // never removed: dead threads keep counting
  std::array<std::int64_t, kMaxSlots> baseline{};
};

RegistryState& State() {
  static RegistryState* state = new RegistryState();
  return *state;
}

thread_local Shard* t_shard = nullptr;

Shard* LocalShard() {
  if (t_shard == nullptr) {
    auto* shard = new Shard();  // owned by the registry's shard list
    RegistryState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    state.shards.push_back(shard);
    t_shard = shard;
  }
  return t_shard;
}

void AddToSlot(int slot, std::int64_t delta) {
  LocalShard()->slots[slot].fetch_add(delta, std::memory_order_relaxed);
}

// Raw (baseline-ignoring) totals for one slot. Caller holds state.mu.
std::int64_t RawTotalLocked(const RegistryState& state, int slot) {
  std::int64_t total = 0;
  for (const Shard* shard : state.shards) {
    total += shard->slots[slot].load(std::memory_order_relaxed);
  }
  return total;
}

int AllocateSlots(RegistryState& state, int n) {
  CREW_CHECK(state.next_slot + n <= kMaxSlots)
      << "metrics registry slot capacity exhausted";
  const int first = state.next_slot;
  state.next_slot += n;
  return first;
}

// Upper bound of histogram bucket b (b == kNumBounds is the overflow
// bucket). Bounds are 1, 2, 4, ..., 1024.
std::int64_t BucketBound(int b) { return std::int64_t{1} << b; }

std::string BucketName(const std::string& base, int b) {
  if (b >= Histogram::kNumBounds) return base + "/le_inf";
  return base + StrPrintf("/le_%04lld",
                          static_cast<long long>(BucketBound(b)));
}

// Builds the snapshot under the lock. Histogram entries expand into their
// fixed bucket set; iteration over the name-sorted metric map plus sorted
// bucket suffixes keeps overall ordering deterministic.
MetricsSnapshot SnapshotLocked(const RegistryState& state) {
  MetricsSnapshot out;
  out.reserve(state.metrics.size());
  for (const auto& [name, info] : state.metrics) {
    switch (info.kind) {
      case MetricKind::kCounter: {
        MetricEntry e;
        e.name = name;
        e.kind = MetricKind::kCounter;
        e.count = RawTotalLocked(state, info.first_slot) -
                  state.baseline[info.first_slot];
        out.push_back(std::move(e));
        break;
      }
      case MetricKind::kDuration: {
        MetricEntry e;
        e.name = name;
        e.kind = MetricKind::kDuration;
        e.count = RawTotalLocked(state, info.first_slot) -
                  state.baseline[info.first_slot];
        e.total_ms =
            static_cast<double>(RawTotalLocked(state, info.first_slot + 1) -
                                state.baseline[info.first_slot + 1]) /
            1e6;
        out.push_back(std::move(e));
        break;
      }
      case MetricKind::kHistogram: {
        for (int b = 0; b < Histogram::kNumBuckets; ++b) {
          MetricEntry e;
          e.name = BucketName(name, b);
          e.kind = MetricKind::kHistogram;
          e.count = RawTotalLocked(state, info.first_slot + b) -
                    state.baseline[info.first_slot + b];
          out.push_back(std::move(e));
        }
        break;
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricEntry& a, const MetricEntry& b) {
              return a.name < b.name;
            });
  return out;
}

thread_local const char* t_stage = nullptr;

}  // namespace

void Counter::Add(std::int64_t delta) { AddToSlot(slot_, delta); }

void DurationStat::Add(double seconds) {
  AddToSlot(slot_, 1);
  AddToSlot(slot_ + 1, static_cast<std::int64_t>(seconds * 1e9));
}

void Histogram::Observe(std::int64_t value) {
  int b = 0;
  while (b < kNumBounds && value > BucketBound(b)) ++b;
  AddToSlot(slot_ + b, 1);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.counter_handles.find(name);
  if (it != state.counter_handles.end()) return it->second;
  CREW_CHECK(state.metrics.find(name) == state.metrics.end())
      << "metric registered twice with different kinds: " << name;
  const int slot = AllocateSlots(state, 1);
  state.metrics.emplace(name, MetricInfo{MetricKind::kCounter, slot});
  state.counters.push_back(Counter(slot));
  Counter* handle = &state.counters.back();
  state.counter_handles.emplace(name, handle);
  return handle;
}

DurationStat* MetricsRegistry::GetDuration(const std::string& name) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.duration_handles.find(name);
  if (it != state.duration_handles.end()) return it->second;
  CREW_CHECK(state.metrics.find(name) == state.metrics.end())
      << "metric registered twice with different kinds: " << name;
  const int slot = AllocateSlots(state, 2);
  state.metrics.emplace(name, MetricInfo{MetricKind::kDuration, slot});
  state.durations.push_back(DurationStat(slot));
  DurationStat* handle = &state.durations.back();
  state.duration_handles.emplace(name, handle);
  return handle;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.histogram_handles.find(name);
  if (it != state.histogram_handles.end()) return it->second;
  CREW_CHECK(state.metrics.find(name) == state.metrics.end())
      << "metric registered twice with different kinds: " << name;
  const int slot = AllocateSlots(state, Histogram::kNumBuckets);
  state.metrics.emplace(name, MetricInfo{MetricKind::kHistogram, slot});
  state.histograms.push_back(Histogram(slot));
  Histogram* handle = &state.histograms.back();
  state.histogram_handles.emplace(name, handle);
  return handle;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  const RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return SnapshotLocked(state);
}

MetricsSnapshot MetricsRegistry::Reset() {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  MetricsSnapshot snapshot = SnapshotLocked(state);
  // Rebase inside the same critical section: every slot's baseline becomes
  // its current raw total, so the returned snapshot and the new epoch
  // partition all increments exactly (the "atomic epoch").
  for (int slot = 0; slot < state.next_slot; ++slot) {
    state.baseline[slot] = RawTotalLocked(state, slot);
  }
  return snapshot;
}

const MetricEntry* FindMetric(const MetricsSnapshot& snapshot,
                              std::string_view name) {
  for (const MetricEntry& entry : snapshot) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

MetricsSnapshot MetricsDelta(const MetricsSnapshot& after,
                             const MetricsSnapshot& before) {
  MetricsSnapshot out = after;
  for (MetricEntry& entry : out) {
    if (const MetricEntry* prev = FindMetric(before, entry.name)) {
      entry.count -= prev->count;
      entry.total_ms -= prev->total_ms;
    }
  }
  return out;
}

MetricsSnapshot MetricsSum(const std::vector<MetricsSnapshot>& snapshots) {
  std::map<std::string, MetricEntry> by_name;
  for (const MetricsSnapshot& snapshot : snapshots) {
    for (const MetricEntry& entry : snapshot) {
      auto [it, inserted] = by_name.emplace(entry.name, entry);
      if (!inserted) {
        it->second.count += entry.count;
        it->second.total_ms += entry.total_ms;
      }
    }
  }
  MetricsSnapshot out;
  out.reserve(by_name.size());
  for (auto& [name, entry] : by_name) out.push_back(std::move(entry));
  return out;
}

MetricsSnapshot DropZeroMetrics(const MetricsSnapshot& snapshot) {
  MetricsSnapshot out;
  out.reserve(snapshot.size());
  for (const MetricEntry& entry : snapshot) {
    if (entry.count != 0 || entry.total_ms != 0.0) out.push_back(entry);
  }
  return out;
}

const char* CurrentMetricStage() {
  return t_stage == nullptr ? "other" : t_stage;
}

ScopedMetricStage::ScopedMetricStage(const char* stage) : saved_(t_stage) {
  t_stage = stage;
}

ScopedMetricStage::~ScopedMetricStage() { t_stage = saved_; }

}  // namespace crew
