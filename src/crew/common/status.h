#ifndef CREW_COMMON_STATUS_H_
#define CREW_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace crew {

/// Canonical error codes, modelled after absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kDataLoss,
};

/// Returns a human-readable name for `code` ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

/// Lightweight error-carrying result of an operation.
///
/// CREW does not use exceptions (per the project style); every fallible
/// operation returns a `Status` or a `Result<T>`. Example:
///
///   Status s = dataset.LoadCsv(path);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Holds either a value of type `T` or a non-OK `Status`.
///
/// Accessing `value()` on an error result aborts the process (see
/// CREW_CHECK in logging.h); callers must test `ok()` first.
template <typename T>
class Result {
 public:
  /// Intentionally implicit so functions can `return value;` or
  /// `return Status::...(...)` interchangeably.
  Result(T value) : payload_(std::move(value)) {}
  Result(Status status) : payload_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) return kOkStatus;
    return std::get<Status>(payload_);
  }

  const T& value() const& {
    AbortIfError();
    return std::get<T>(payload_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(payload_);
  }
  T&& value() && {
    AbortIfError();
    return std::move(std::get<T>(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  std::variant<T, Status> payload_;
};

namespace internal_status {
[[noreturn]] void DieOnBadResult(const Status& status);
}  // namespace internal_status

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal_status::DieOnBadResult(std::get<Status>(payload_));
}

}  // namespace crew

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define CREW_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::crew::Status crew_status_macro_tmp_ = (expr);  \
    if (!crew_status_macro_tmp_.ok()) {              \
      return crew_status_macro_tmp_;                 \
    }                                                \
  } while (false)

#endif  // CREW_COMMON_STATUS_H_
