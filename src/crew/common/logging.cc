#include "crew/common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace crew {
namespace {

LogSeverity g_min_severity = LogSeverity::kInfo;

const char* SeverityTag(LogSeverity s) {
  switch (s) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }
LogSeverity MinLogSeverity() { return g_min_severity; }

namespace internal_logging {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity), file_(file), line_(line) {}

LogMessage::~LogMessage() { Emit(); }

void LogMessage::Emit() {
  if (emitted_) return;
  emitted_ = true;
  if (severity_ < MinLogSeverity()) return;
  // Strip directories from the file path for compact output.
  const char* base = file_;
  for (const char* p = file_; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", SeverityTag(severity_), base, line_,
               stream_.str().c_str());
}

FatalLogMessage::~FatalLogMessage() {
  Emit();
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal_logging
}  // namespace crew
