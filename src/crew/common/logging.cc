#include "crew/common/logging.h"

// crew-lint: allow-file(raw-stdio): this file *is* the CREW_LOG sink; the
// fprintf(stderr) here is where every library log line ultimately lands.

#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "crew/common/string_util.h"
#include "crew/common/trace.h"

namespace crew {
namespace {

const char* SeverityTag(LogSeverity s) {
  switch (s) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
  }
  return "?";
}

// Startup default honors CREW_MIN_LOG_LEVEL so a noisy run can be quieted
// (or a silent one made verbose) without recompiling or plumbing a flag.
LogSeverity g_min_severity =
    ParseLogSeverity(std::getenv("CREW_MIN_LOG_LEVEL"), LogSeverity::kInfo);

// "2026-08-05 12:34:56.789" in local time.
void FormatWallClock(char* buf, size_t size) {
  timespec ts;
  if (clock_gettime(CLOCK_REALTIME, &ts) != 0) {
    std::snprintf(buf, size, "?");
    return;
  }
  tm tm_buf;
  localtime_r(&ts.tv_sec, &tm_buf);
  const size_t n = strftime(buf, size, "%Y-%m-%d %H:%M:%S", &tm_buf);
  std::snprintf(buf + n, size - n, ".%03ld", ts.tv_nsec / 1000000);
}

}  // namespace

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }
LogSeverity MinLogSeverity() { return g_min_severity; }

LogSeverity ParseLogSeverity(const char* value, LogSeverity fallback) {
  if (value == nullptr) return fallback;
  const std::string v = AsciiLower(value);
  if (v == "debug" || v == "d" || v == "0") return LogSeverity::kDebug;
  if (v == "info" || v == "i" || v == "1") return LogSeverity::kInfo;
  if (v == "warning" || v == "warn" || v == "w" || v == "2") {
    return LogSeverity::kWarning;
  }
  if (v == "error" || v == "e" || v == "3") return LogSeverity::kError;
  return fallback;
}

namespace internal_logging {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity), file_(file), line_(line) {}

LogMessage::~LogMessage() { Emit(); }

void LogMessage::Emit() {
  if (emitted_) return;
  emitted_ = true;
  if (severity_ < MinLogSeverity()) return;
  // Strip directories from the file path for compact output.
  const char* base = file_;
  for (const char* p = file_; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  char when[40];
  FormatWallClock(when, sizeof(when));
  // The t<N> id matches CurrentThreadId() stamped on trace events, so a
  // log line can be correlated with the span that was open when it fired.
  std::fprintf(stderr, "[%s %s t%d %s:%d] %s\n", SeverityTag(severity_), when,
               CurrentThreadId(), base, line_, stream_.str().c_str());
}

FatalLogMessage::~FatalLogMessage() {
  Emit();
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal_logging
}  // namespace crew
