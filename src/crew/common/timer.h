#ifndef CREW_COMMON_TIMER_H_
#define CREW_COMMON_TIMER_H_

#include <chrono>

namespace crew {

/// Wall-clock stopwatch used by the benchmark harness.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace crew

#endif  // CREW_COMMON_TIMER_H_
