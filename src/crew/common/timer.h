#ifndef CREW_COMMON_TIMER_H_
#define CREW_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>
#include <ctime>

namespace crew {

/// Wall-clock stopwatch used by the benchmark harness.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Per-thread CPU-time stopwatch (CLOCK_THREAD_CPUTIME_ID). Paired with a
/// WallTimer it exposes oversubscription: summed CPU time across workers
/// far above wall x cores means threads are fighting for the same cores.
/// On platforms without a thread CPU clock every reading is 0 and
/// Available() reports false.
class CpuTimer {
 public:
  CpuTimer() { Restart(); }

  void Restart() { start_ns_ = NowNs(); }

  /// CPU time consumed by the calling thread since construction / last
  /// Restart, in seconds. Only meaningful when read from the thread that
  /// restarted the timer.
  double ElapsedSeconds() const {
    return static_cast<double>(NowNs() - start_ns_) / 1e9;
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  static bool Available() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    return true;
#else
    return false;
#endif
  }

 private:
  static std::int64_t NowNs() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
    return static_cast<std::int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
#else
    return 0;
#endif
  }

  std::int64_t start_ns_ = 0;
};

}  // namespace crew

#endif  // CREW_COMMON_TIMER_H_
