#ifndef CREW_COMMON_DCHECK_H_
#define CREW_COMMON_DCHECK_H_

#include <cstdint>
#include <type_traits>

#include "crew/common/logging.h"

/// Debug-only invariant checks.
///
/// CREW_CHECK (crew/common/logging.h) is for invariants cheap enough to keep
/// in every build; the CREW_DCHECK family guards hot-path preconditions —
/// per-element bounds checks, per-call shape checks — whose cost would be
/// measurable in Release scoring loops, so it compiles out when NDEBUG is
/// defined. The sanitizer CI jobs build with CREW_FORCE_DCHECK so ASan/UBSan
/// runs keep every check active on top of optimized code.
///
/// Policy: use CREW_CHECK for API contracts violated by *callers outside the
/// library* (bad config, mismatched schemas) and CREW_DCHECK for internal
/// invariants that a correct library upholds by construction (index bounds,
/// buffer shapes). A disabled CREW_DCHECK still type-checks its condition,
/// so Release-only builds cannot rot a check that Debug compiles.

#if defined(CREW_FORCE_DCHECK) || !defined(NDEBUG)
#define CREW_DCHECK_IS_ON 1
#else
#define CREW_DCHECK_IS_ON 0
#endif

namespace crew::internal_dcheck {

/// Sign-safe `0 <= index < size` usable with any mix of signed/unsigned
/// integer types (avoids -Wsign-compare at call sites).
template <typename I, typename S>
constexpr bool InBounds(I index, S size) {
  if constexpr (std::is_signed_v<I>) {
    if (index < 0) return false;
  }
  if constexpr (std::is_signed_v<S>) {
    if (size < 0) return false;
  }
  return static_cast<std::uint64_t>(index) < static_cast<std::uint64_t>(size);
}

}  // namespace crew::internal_dcheck

#if CREW_DCHECK_IS_ON
#define CREW_DCHECK(condition) CREW_CHECK(condition)
#else
// Never evaluated at runtime (the branch is constant-false and the fatal
// message object is only constructed inside it), but the condition still
// compiles, so it cannot silently break in Release-only code paths.
#define CREW_DCHECK(condition) \
  if (false && (condition)) CREW_LOG_FATAL << ""
#endif

/// Shape equality; cast operands to a common type at the call site when the
/// signedness differs (matches the existing CREW_CHECK idiom).
#define CREW_DCHECK_EQ(a, b) CREW_DCHECK((a) == (b))

/// Bounds check for container indexing: 0 <= index < size.
#define CREW_DCHECK_BOUNDS(index, size) \
  CREW_DCHECK(::crew::internal_dcheck::InBounds((index), (size)))

#endif  // CREW_COMMON_DCHECK_H_
