#ifndef CREW_COMMON_TRACE_H_
#define CREW_COMMON_TRACE_H_

// crew-lint: allow-file(trace-mutate): this header *implements* the tracing
// layer — branching on TracingEnabled() inside ScopedSpan and defining the
// CREW_TRACE_SPAN macro are the mechanism the rule protects elsewhere.

#include <cstdint>
#include <string>
#include <vector>

#include "crew/common/status.h"

namespace crew {

/// Lightweight tracing: RAII spans recorded into per-thread ring buffers,
/// exportable as Chrome trace-event JSON (load the file in chrome://tracing
/// or https://ui.perfetto.dev).
///
/// Tracing is disabled by default. A disabled CREW_TRACE_SPAN costs one
/// relaxed atomic load and two pointer writes — cheap enough to leave in
/// hot paths permanently. Spans are observation-only: enabling tracing
/// must never change an experiment number (the determinism tests run with
/// it on).
///
/// Each thread owns a fixed-capacity ring; once full, the oldest events
/// are overwritten (TraceDroppedEvents() reports how many). Because spans
/// close in LIFO order per thread, the surviving events always remain
/// well-nested.

/// Turns span recording on or off process-wide.
void SetTracingEnabled(bool enabled);
bool TracingEnabled();

/// One completed span. `name` points at the static string passed to the
/// span macro; times are nanoseconds relative to the process trace epoch.
struct TraceEvent {
  const char* name = nullptr;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  int tid = 0;
};

/// Copies every thread's ring, sorted by (tid, start, -dur) so parents
/// precede their children.
std::vector<TraceEvent> CollectTraceEvents();

/// Events overwritten by ring wrap-around since the last clear.
std::int64_t TraceDroppedEvents();

/// Drops all recorded events (ring heads reset, drop counter cleared).
void ClearTraceEvents();

/// Chrome trace-event JSON ("X" complete events with pid/tid/ts/dur/name).
std::string TraceEventsToChromeJson(const std::vector<TraceEvent>& events);

/// CollectTraceEvents + TraceEventsToChromeJson, written to `path`.
Status WriteChromeTrace(const std::string& path);

/// Stable small 1-based id for the calling thread (also stamped on log
/// lines, so logs and trace events can be correlated).
int CurrentThreadId();

namespace trace_internal {

std::int64_t TraceNowNs();
void PushTraceEvent(const char* name, std::int64_t start_ns,
                    std::int64_t dur_ns);

/// RAII span. Captures the enabled flag at open so a span that straddles a
/// SetTracingEnabled toggle is either fully recorded or fully skipped.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (TracingEnabled()) {
      name_ = name;
      start_ns_ = TraceNowNs();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) {
      PushTraceEvent(name_, start_ns_, TraceNowNs() - start_ns_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::int64_t start_ns_ = 0;
};

}  // namespace trace_internal
}  // namespace crew

#define CREW_TRACE_CONCAT_INNER(a, b) a##b
#define CREW_TRACE_CONCAT(a, b) CREW_TRACE_CONCAT_INNER(a, b)

/// Opens a span covering the rest of the enclosing scope. `name` must be a
/// string with static lifetime (in practice: a literal).
#define CREW_TRACE_SPAN(name)                                        \
  ::crew::trace_internal::ScopedSpan CREW_TRACE_CONCAT(crew_span_,   \
                                                       __LINE__)(name)

#endif  // CREW_COMMON_TRACE_H_
