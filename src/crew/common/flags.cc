#include "crew/common/flags.h"

#include <cstdlib>

#include "crew/common/string_util.h"

namespace crew {

FlagParser::FlagParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!StartsWith(arg, "--")) {
      status_ = Status::InvalidArgument("unexpected positional argument: " +
                                        std::string(arg));
      return;
    }
    arg.remove_prefix(2);
    size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      values_[std::string(arg)] = argv[i + 1];
      ++i;
    } else {
      values_[std::string(arg)] = "true";
    }
  }
}

bool FlagParser::Has(std::string_view name) const {
  return values_.find(name) != values_.end();
}

std::string FlagParser::GetString(std::string_view name,
                                  std::string_view def) const {
  auto it = values_.find(name);
  return it == values_.end() ? std::string(def) : it->second;
}

int FlagParser::GetInt(std::string_view name, int def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  int v = def;
  return ParseInt(it->second, &v) ? v : def;
}

double FlagParser::GetDouble(std::string_view name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  double v = def;
  return ParseDouble(it->second, &v) ? v : def;
}

bool FlagParser::GetBool(std::string_view name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string v = AsciiLower(it->second);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  return def;
}

uint64_t FlagParser::GetUint64(std::string_view name, uint64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  uint64_t v = std::strtoull(it->second.c_str(), &end, 10);
  if (end != it->second.c_str() + it->second.size()) return def;
  return v;
}

}  // namespace crew
