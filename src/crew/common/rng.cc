#include "crew/common/rng.h"

#include <numeric>

namespace crew {
namespace {

// SplitMix64 finalizer; mixes seed and tag into a well-distributed stream id.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::vector<int> Rng::SampleIndices(int n, int k) {
  CREW_CHECK(n >= 0);
  std::vector<int> all(n);
  std::iota(all.begin(), all.end(), 0);
  Shuffle(all);
  if (k < n) all.resize(k < 0 ? 0 : k);
  return all;
}

int Rng::Categorical(const std::vector<double>& weights) {
  CREW_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return UniformInt(static_cast<int>(weights.size()));
  double r = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0.0 ? weights[i] : 0.0);
    if (r < acc) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

Rng Rng::Fork(uint64_t tag) const {
  return Rng(Mix64(seed_ ^ Mix64(tag)));
}

}  // namespace crew
