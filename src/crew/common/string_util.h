#ifndef CREW_COMMON_STRING_UTIL_H_
#define CREW_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace crew {

/// Returns `s` lower-cased (ASCII only).
std::string AsciiLower(std::string_view s);

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on any run of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Returns true if `s` starts with / ends with `prefix` / `suffix`.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrPrintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Parses a double / int; returns false on malformed input or trailing junk.
bool ParseDouble(std::string_view s, double* out);
bool ParseInt(std::string_view s, int* out);

}  // namespace crew

#endif  // CREW_COMMON_STRING_UTIL_H_
