#include "crew/common/trace.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "crew/common/string_util.h"

namespace crew {
namespace {

// Per-thread ring capacity. 8192 events x 32 bytes = 256 KiB per traced
// thread; long runs keep the most recent window, which is what a latency
// investigation wants anyway.
constexpr std::int64_t kRingCapacity = 8192;

std::atomic<bool> g_enabled{false};
std::atomic<std::int64_t> g_dropped{0};
std::atomic<int> g_next_tid{0};

struct Ring {
  std::mutex mu;
  std::vector<TraceEvent> events;  // grows to kRingCapacity, then wraps
  std::int64_t head = 0;           // total events ever pushed
  int tid = 0;
};

struct RingList {
  std::mutex mu;
  std::vector<Ring*> all;  // rings outlive their threads (leaked on purpose)
};

RingList& Rings() {
  static RingList* rings = new RingList();
  return *rings;
}

thread_local Ring* t_ring = nullptr;

Ring* LocalRing() {
  if (t_ring == nullptr) {
    auto* ring = new Ring();
    ring->tid = CurrentThreadId();
    RingList& rings = Rings();
    std::lock_guard<std::mutex> lock(rings.mu);
    rings.all.push_back(ring);
    t_ring = ring;
  }
  return t_ring;
}

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

void AppendJsonEscaped(const char* s, std::string* out) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      *out += StrPrintf("\\u%04x", c);
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

void SetTracingEnabled(bool enabled) {
  // Pin the epoch before the first event so timestamps are never negative.
  TraceEpoch();
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool TracingEnabled() { return g_enabled.load(std::memory_order_relaxed); }

int CurrentThreadId() {
  thread_local const int tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed) + 1;
  return tid;
}

namespace trace_internal {

std::int64_t TraceNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

void PushTraceEvent(const char* name, std::int64_t start_ns,
                    std::int64_t dur_ns) {
  Ring* ring = LocalRing();
  TraceEvent event;
  event.name = name;
  event.start_ns = start_ns;
  event.dur_ns = dur_ns;
  event.tid = ring->tid;
  std::lock_guard<std::mutex> lock(ring->mu);
  if (static_cast<std::int64_t>(ring->events.size()) < kRingCapacity) {
    ring->events.push_back(event);
  } else {
    ring->events[ring->head % kRingCapacity] = event;
    g_dropped.fetch_add(1, std::memory_order_relaxed);
  }
  ++ring->head;
}

}  // namespace trace_internal

std::vector<TraceEvent> CollectTraceEvents() {
  std::vector<TraceEvent> out;
  RingList& rings = Rings();
  std::lock_guard<std::mutex> list_lock(rings.mu);
  for (Ring* ring : rings.all) {
    std::lock_guard<std::mutex> lock(ring->mu);
    out.insert(out.end(), ring->events.begin(), ring->events.end());
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a,
                                       const TraceEvent& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.dur_ns > b.dur_ns;  // parent (longer) before child at same start
  });
  return out;
}

std::int64_t TraceDroppedEvents() {
  return g_dropped.load(std::memory_order_relaxed);
}

void ClearTraceEvents() {
  RingList& rings = Rings();
  std::lock_guard<std::mutex> list_lock(rings.mu);
  for (Ring* ring : rings.all) {
    std::lock_guard<std::mutex> lock(ring->mu);
    ring->events.clear();
    ring->head = 0;
  }
  g_dropped.store(0, std::memory_order_relaxed);
}

std::string TraceEventsToChromeJson(const std::vector<TraceEvent>& events) {
  const int pid = static_cast<int>(::getpid());
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(event.name, &out);
    // ts/dur are microseconds (doubles); %.3f keeps nanosecond resolution.
    out += StrPrintf(
        "\",\"cat\":\"crew\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,"
        "\"ts\":%.3f,\"dur\":%.3f}",
        pid, event.tid, static_cast<double>(event.start_ns) / 1e3,
        static_cast<double>(event.dur_ns) / 1e3);
  }
  out += "]}";
  return out;
}

Status WriteChromeTrace(const std::string& path) {
  const std::string json = TraceEventsToChromeJson(CollectTraceEvents());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != json.size() || !flushed) {
    return Status::DataLoss("short write: " + path);
  }
  return Status::Ok();
}

}  // namespace crew
