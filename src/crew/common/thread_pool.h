#ifndef CREW_COMMON_THREAD_POOL_H_
#define CREW_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace crew {

/// Fixed-size worker pool for the batch scoring engine.
///
/// Workers are started once and live for the pool's lifetime; tasks are
/// plain std::function jobs drained FIFO. The pool itself imposes no
/// ordering on results — determinism is the caller's job (see ParallelFor,
/// which assigns index ranges so every output slot is written by exactly
/// one task regardless of which worker runs it).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` for execution on some worker.
  void Submit(std::function<void()> fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `fn(begin, end)` over a deterministic chunking of [0, n).
///
/// The chunk boundaries depend only on `n` and `pool->size()` — never on
/// scheduling — and every index belongs to exactly one chunk, so a function
/// that writes results by index produces bit-identical output for any
/// thread count (including the pool == nullptr / single-thread case, which
/// runs fn(0, n) inline on the caller thread). Blocks until all chunks are
/// done. `fn` must be safe to invoke concurrently on disjoint ranges.
///
/// Nesting rule: a ParallelFor issued from inside a chunk of another
/// ParallelFor runs inline on the issuing thread instead of dispatching to
/// the pool. Dispatching would deadlock — outer chunks occupy every worker
/// while waiting on inner chunks queued behind them — and the outer level
/// already saturates the pool, so inline is also the right perf call.
/// Chunking is the same as the pool == nullptr case, so determinism holds.
void ParallelFor(ThreadPool* pool, int n,
                 const std::function<void(int begin, int end)>& fn);

/// True while the calling thread is executing a chunk dispatched by a
/// ParallelFor that actually fanned out (more than one chunk). Nested
/// ParallelFor calls consult this to fall back to the inline path.
bool InParallelRegion();

/// max(1, std::thread::hardware_concurrency()).
int HardwareThreads();

/// Sets the process-wide scoring thread count used by the batch scoring
/// engine. 0 (the default) means HardwareThreads(); 1 means exact legacy
/// single-thread behavior (no pool, all work inline on the caller thread).
/// Not thread-safe against concurrent scoring — call it from the top-level
/// thread between scoring runs (benches call it once at startup).
void SetScoringThreads(int n);

/// The resolved scoring thread count (>= 1).
int ScoringThreads();

/// Lazily-built shared pool sized to ScoringThreads(); nullptr when the
/// resolved count is 1. Rebuilt on the next call after SetScoringThreads.
ThreadPool* SharedScoringPool();

}  // namespace crew

#endif  // CREW_COMMON_THREAD_POOL_H_
