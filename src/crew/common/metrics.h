#ifndef CREW_COMMON_METRICS_H_
#define CREW_COMMON_METRICS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "crew/common/timer.h"

namespace crew {

/// Process-wide registry of named monotonic counters, duration
/// accumulators, and power-of-two histograms.
///
/// Writes go to thread-local shards (one relaxed atomic add, no
/// contention); Snapshot() aggregates every shard under the registry lock.
/// Reset() is an atomic epoch: it captures the delta since the previous
/// epoch and rebases the baseline in one critical section, so concurrent
/// writers can never be "torn" between a reset and a snapshot — an
/// increment lands either before the epoch (in the returned snapshot) or
/// after it (in the next one), never in neither.
///
/// Metrics are observation-only by contract: nothing in the library may
/// branch on a metric value, so recording them can never change an
/// experiment number.
enum class MetricKind { kCounter, kDuration, kHistogram };

/// One named value in a snapshot. Durations carry both the number of timed
/// segments (`count`) and their summed wall time (`total_ms`); histogram
/// buckets are plain counts with the bucket bound baked into the name.
struct MetricEntry {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::int64_t count = 0;
  double total_ms = 0.0;
};

/// Snapshot = entries sorted by name (deterministic, so JSON output that
/// serializes a snapshot is stable across runs).
using MetricsSnapshot = std::vector<MetricEntry>;

/// Handle to a named monotonic counter. Obtained once (cheap to cache in a
/// function-local static), then Add() is a single relaxed atomic add into
/// the calling thread's shard.
class Counter {
 public:
  void Add(std::int64_t delta);
  void Increment() { Add(1); }

 private:
  friend class MetricsRegistry;
  explicit Counter(int slot) : slot_(slot) {}
  int slot_;
};

/// Handle to a named duration accumulator: total wall time plus the number
/// of timed segments that contributed to it.
class DurationStat {
 public:
  void Add(double seconds);

 private:
  friend class MetricsRegistry;
  explicit DurationStat(int slot) : slot_(slot) {}
  int slot_;  // slot_ = segment count, slot_ + 1 = summed nanoseconds
};

/// Handle to a power-of-two histogram (bounds 1, 2, 4, ..., 1024, +inf).
/// Snapshots expand it into one `<name>/le_XXXX` counter per bucket; the
/// bucket set is fixed, so snapshot shape never depends on the data.
class Histogram {
 public:
  static constexpr int kNumBounds = 11;  // le_0001 .. le_1024
  static constexpr int kNumBuckets = kNumBounds + 1;  // + overflow

  void Observe(std::int64_t value);

 private:
  friend class MetricsRegistry;
  explicit Histogram(int slot) : slot_(slot) {}
  int slot_;
};

/// RAII wall-clock scope recorded into a DurationStat on destruction.
class ScopedDuration {
 public:
  explicit ScopedDuration(DurationStat* stat) : stat_(stat) {}
  ~ScopedDuration() { stat_->Add(timer_.ElapsedSeconds()); }
  ScopedDuration(const ScopedDuration&) = delete;
  ScopedDuration& operator=(const ScopedDuration&) = delete;

 private:
  DurationStat* stat_;
  WallTimer timer_;
};

/// RAII per-thread CPU-clock scope (see CpuTimer); pairs with a wall-clock
/// ScopedDuration to expose oversubscription (cpu >> wall x cores).
class ScopedCpuDuration {
 public:
  explicit ScopedCpuDuration(DurationStat* stat) : stat_(stat) {}
  ~ScopedCpuDuration() { stat_->Add(timer_.ElapsedSeconds()); }
  ScopedCpuDuration(const ScopedCpuDuration&) = delete;
  ScopedCpuDuration& operator=(const ScopedCpuDuration&) = delete;

 private:
  DurationStat* stat_;
  CpuTimer timer_;
};

/// The singleton registry. Handles are interned by name and live for the
/// process lifetime; getting the same name twice returns the same handle.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  DurationStat* GetDuration(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// All registered metrics, summed across every thread's shard, relative
  /// to the current epoch baseline. Sorted by name.
  MetricsSnapshot Snapshot() const;

  /// Atomic capture-and-rebase: returns Snapshot() and makes the current
  /// totals the new baseline in one critical section.
  MetricsSnapshot Reset();

 private:
  MetricsRegistry() = default;
};

/// First entry with `name`, or nullptr. Snapshot is sorted, but a linear
/// scan is fine at snapshot sizes.
const MetricEntry* FindMetric(const MetricsSnapshot& snapshot,
                              std::string_view name);

/// Entry-wise `after - before`, matched by name. Entries present only in
/// `after` (registered mid-interval) keep their full value; entries only in
/// `before` are dropped (cannot happen for monotonic registration).
MetricsSnapshot MetricsDelta(const MetricsSnapshot& after,
                             const MetricsSnapshot& before);

/// Entry-wise sum of several snapshots, matched by name, sorted by name.
/// The sorted-key merge is what keeps --metrics tables identical between a
/// straight-through run and a resumed one, whose cell registries can
/// arrive in a different order.
MetricsSnapshot MetricsSum(const std::vector<MetricsSnapshot>& snapshots);

/// Copy of `snapshot` without the all-zero entries (count == 0 and
/// total_ms == 0). Per-cell registry deltas are filtered through this so a
/// cell's delta shape depends only on the cell's own activity — not on
/// which metrics earlier cells happened to register first — which is what
/// makes cell output independent of execution order and of checkpoint
/// restores.
MetricsSnapshot DropZeroMetrics(const MetricsSnapshot& snapshot);

/// Thread-local stage label used to attribute scoring cost to pipeline
/// stages (the batch scoring engine splits its prediction counter by the
/// stage active at the call). Defaults to "other".
const char* CurrentMetricStage();

/// RAII stage label. `stage` must outlive the scope (use string literals).
class ScopedMetricStage {
 public:
  explicit ScopedMetricStage(const char* stage);
  ~ScopedMetricStage();
  ScopedMetricStage(const ScopedMetricStage&) = delete;
  ScopedMetricStage& operator=(const ScopedMetricStage&) = delete;

 private:
  const char* saved_;
};

}  // namespace crew

#endif  // CREW_COMMON_METRICS_H_
