#include "crew/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "crew/common/logging.h"

namespace crew {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    CREW_CHECK(!shutdown_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

namespace {

// Depth of ParallelFor fan-outs the current thread is executing inside.
// Chunk bodies of a fanned-out ParallelFor run with the counter raised, so
// nested ParallelFor calls (e.g. BatchScorer under instance sharding) take
// the inline path instead of re-entering the pool — re-entering would
// deadlock once every worker is parked in an outer chunk's barrier wait.
thread_local int t_parallel_depth = 0;

class ScopedParallelRegion {
 public:
  ScopedParallelRegion() { ++t_parallel_depth; }
  ~ScopedParallelRegion() { --t_parallel_depth; }
};

}  // namespace

bool InParallelRegion() { return t_parallel_depth > 0; }

void ParallelFor(ThreadPool* pool, int n,
                 const std::function<void(int begin, int end)>& fn) {
  if (n <= 0) return;
  const int threads = pool == nullptr ? 1 : pool->size();
  if (threads <= 1 || n == 1 || InParallelRegion()) {
    fn(0, n);
    return;
  }
  // Deterministic chunking: ceil(n / chunks) per chunk, purely a function
  // of n and the pool size. The caller thread takes chunk 0 so small inputs
  // don't pay a handoff for their first range. Re-deriving the chunk count
  // from per_chunk drops the trailing empty ranges that ceil division can
  // leave (e.g. n=5, threads=4 -> per_chunk=2 -> 3 chunks, not 4).
  const int want_chunks = std::min(threads, n);
  const int per_chunk = (n + want_chunks - 1) / want_chunks;
  const int chunks = (n + per_chunk - 1) / per_chunk;

  struct Barrier {
    std::mutex mu;
    std::condition_variable cv;
    int pending = 0;
  };
  auto barrier = std::make_shared<Barrier>();
  barrier->pending = chunks - 1;

  for (int c = 1; c < chunks; ++c) {
    const int begin = c * per_chunk;
    const int end = std::min(n, begin + per_chunk);
    pool->Submit([fn, begin, end, barrier] {
      {
        ScopedParallelRegion region;
        fn(begin, end);
      }
      {
        std::lock_guard<std::mutex> lock(barrier->mu);
        --barrier->pending;
      }
      barrier->cv.notify_one();
    });
  }
  {
    ScopedParallelRegion region;
    fn(0, std::min(n, per_chunk));
  }
  std::unique_lock<std::mutex> lock(barrier->mu);
  barrier->cv.wait(lock, [&] { return barrier->pending == 0; });
}

int HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

namespace {

std::atomic<int> g_scoring_threads{0};  // 0 = hardware concurrency

struct SharedPoolHolder {
  std::mutex mu;
  int built_for = -1;
  std::unique_ptr<ThreadPool> pool;
};

SharedPoolHolder& PoolHolder() {
  static SharedPoolHolder* holder = new SharedPoolHolder();
  return *holder;
}

}  // namespace

void SetScoringThreads(int n) {
  g_scoring_threads.store(std::max(0, n), std::memory_order_relaxed);
}

int ScoringThreads() {
  const int n = g_scoring_threads.load(std::memory_order_relaxed);
  return n == 0 ? HardwareThreads() : n;
}

ThreadPool* SharedScoringPool() {
  const int want = ScoringThreads();
  if (want <= 1) return nullptr;
  SharedPoolHolder& holder = PoolHolder();
  std::lock_guard<std::mutex> lock(holder.mu);
  if (holder.built_for != want) {
    holder.pool.reset();  // join old workers before spawning the new set
    holder.pool = std::make_unique<ThreadPool>(want);
    holder.built_for = want;
  }
  return holder.pool.get();
}

}  // namespace crew
