#include "crew/common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>

namespace crew {

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string StrPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool ParseDouble(std::string_view s, double* out) {
  s = StripWhitespace(s);
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseInt(std::string_view s, int* out) {
  s = StripWhitespace(s);
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long v = std::strtol(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  if (v < -2147483648L || v > 2147483647L) return false;
  *out = static_cast<int>(v);
  return true;
}

}  // namespace crew
