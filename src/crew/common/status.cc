#include "crew/common/status.h"

#include <cstdio>
#include <cstdlib>

namespace crew {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal_status {

void DieOnBadResult(const Status& status) {
  // crew-lint: allow(raw-stdio): last-gasp death path; deliberately avoids
  // the logging layer so it cannot fail during static teardown.
  std::fprintf(stderr, "crew: Result<T>::value() on error: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal_status
}  // namespace crew
