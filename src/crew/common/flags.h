#ifndef CREW_COMMON_FLAGS_H_
#define CREW_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <string_view>

#include "crew/common/status.h"

namespace crew {

/// Minimal command-line flag parser for the bench/example binaries.
///
/// Accepts `--name=value` and `--name value`; bare `--name` sets "true".
/// Unknown positional arguments are an error. Example:
///
///   FlagParser flags(argc, argv);
///   int samples = flags.GetInt("samples", 256);
///   uint64_t seed = flags.GetUint64("seed", 7);
class FlagParser {
 public:
  FlagParser(int argc, char** argv);

  /// Non-OK if the command line was malformed.
  const Status& status() const { return status_; }

  bool Has(std::string_view name) const;
  std::string GetString(std::string_view name, std::string_view def) const;
  int GetInt(std::string_view name, int def) const;
  double GetDouble(std::string_view name, double def) const;
  bool GetBool(std::string_view name, bool def) const;
  uint64_t GetUint64(std::string_view name, uint64_t def) const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
  Status status_;
};

}  // namespace crew

#endif  // CREW_COMMON_FLAGS_H_
