#ifndef CREW_COMMON_RNG_H_
#define CREW_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "crew/common/dcheck.h"

namespace crew {

/// Deterministic random number generator.
///
/// Every stochastic component in CREW takes an explicit seed so experiments
/// reproduce bit-for-bit. `Fork(tag)` derives an independent stream, which
/// lets parallel or per-instance computations stay reproducible regardless
/// of evaluation order.
class Rng {
 public:
  explicit Rng(uint64_t seed) : seed_(seed), engine_(seed) {}

  /// Returns a uniform draw in [0, 1).
  double Uniform() { return unit_(engine_); }

  /// Returns a uniform draw in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Returns a uniform integer in [0, n). Requires n > 0.
  int UniformInt(int n) {
    CREW_DCHECK(n > 0);
    return static_cast<int>(engine_() % static_cast<uint64_t>(n));
  }

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi) {
    CREW_DCHECK(lo <= hi);
    return lo + UniformInt(hi - lo + 1);
  }

  /// Returns a draw from N(mean, stddev^2).
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Returns true with probability `p`.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (int i = static_cast<int>(v.size()) - 1; i > 0; --i) {
      std::swap(v[i], v[UniformInt(i + 1)]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in uniformly random order.
  /// If k >= n, returns a permutation of all n indices.
  std::vector<int> SampleIndices(int n, int k);

  /// Draws an index in [0, weights.size()) proportionally to `weights`.
  /// Non-positive weights are treated as zero; if all weights are zero the
  /// draw is uniform.
  int Categorical(const std::vector<double>& weights);

  /// Derives an independent deterministic stream from this seed and `tag`.
  Rng Fork(uint64_t tag) const;

  /// Raw 64-bit draw (advances the engine state).
  uint64_t NextRaw() { return engine_(); }

 private:
  uint64_t seed_;
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace crew

#endif  // CREW_COMMON_RNG_H_
