#ifndef CREW_CORE_CREW_EXPLAINER_H_
#define CREW_CORE_CREW_EXPLAINER_H_

#include <memory>

#include "crew/core/affinity.h"
#include "crew/core/agglomerative.h"
#include "crew/core/correlation_clustering.h"
#include "crew/core/cluster_explanation.h"
#include "crew/explain/landmark.h"

namespace crew {

struct CrewConfig {
  /// Stage 1 — word importances (Landmark-style double perturbation).
  LandmarkConfig importance;
  /// Stage 2 — the three knowledge sources' weights.
  AffinityWeights affinity;
  /// Stage 3 — clustering backend.
  ///  - kAgglomerative (default): hierarchical + silhouette K selection;
  ///  - kCorrelation: CC-Pivot on the signed word graph — no K parameter,
  ///    the graph decides (min/max_clusters and auto_k are then ignored).
  enum class Backend { kAgglomerative, kCorrelation };
  Backend backend = Backend::kAgglomerative;
  Linkage linkage = Linkage::kAverage;
  int min_clusters = 2;
  int max_clusters = 8;
  /// When false, always cut at max_clusters instead of silhouette search.
  bool auto_k = true;
  CorrelationClusteringConfig correlation;
  /// Stage 4 — re-score each cluster by actually deleting it and measuring
  /// the prediction change (one extra matcher call per cluster). When off,
  /// a cluster's weight is the sum of its members' word weights.
  bool rescore_clusters = true;
};

/// CREW: Cluster-of-woRds Explanations for entity matching.
///
/// Pipeline (per the ICDE 2024 abstract):
///  1. compute word-level importances with a perturbation explainer that is
///     aware of the EM pair structure (Landmark);
///  2. combine three forms of knowledge — word embedding similarity, the
///     words' arrangement into dataset attributes, and attribution
///     similarity — into a word-to-word distance;
///  3. cluster the words hierarchically and pick the number of clusters by
///     silhouette (bounded by `max_clusters` for comprehensibility);
///  4. score each cluster by deleting it wholesale and measuring the
///     model's reaction, yielding few, coherent, *faithful* units.
///
/// As an `Explainer`, CREW reports word weights of cluster granularity
/// (each word inherits its cluster's weight divided by the cluster size),
/// which lets the word-level faithfulness harness compare it directly with
/// LIME-family baselines. `ExplainClusters` returns the full structure.
class CrewExplainer : public Explainer {
 public:
  /// `embeddings` supplies the semantic knowledge source; it may be null,
  /// which degrades gracefully to attribute + importance knowledge.
  CrewExplainer(std::shared_ptr<const EmbeddingStore> embeddings,
                CrewConfig config = CrewConfig());

  Result<ClusterExplanation> ExplainClusters(const Matcher& matcher,
                                             const RecordPair& pair,
                                             uint64_t seed) const;

  Result<WordExplanation> Explain(const Matcher& matcher,
                                  const RecordPair& pair,
                                  uint64_t seed) const override;

  std::string Name() const override { return "crew"; }

  const CrewConfig& config() const { return config_; }

 private:
  std::shared_ptr<const EmbeddingStore> embeddings_;
  CrewConfig config_;
  LandmarkExplainer importance_explainer_;
};

}  // namespace crew

#endif  // CREW_CORE_CREW_EXPLAINER_H_
