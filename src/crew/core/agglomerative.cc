#include "crew/core/agglomerative.h"

#include <algorithm>
#include <limits>

#include "crew/common/logging.h"
#include "crew/common/trace.h"

namespace crew {

const char* LinkageName(Linkage linkage) {
  switch (linkage) {
    case Linkage::kSingle:
      return "single";
    case Linkage::kComplete:
      return "complete";
    case Linkage::kAverage:
      return "average";
  }
  return "unknown";
}

std::vector<int> Dendrogram::CutToClusters(int k) const {
  k = std::max(1, std::min(k, n));
  // Union-find over leaves, applying merges until k clusters remain.
  std::vector<int> parent(n);
  for (int i = 0; i < n; ++i) parent[i] = i;
  std::vector<int> root_of_cluster(n + merges.size());
  for (int i = 0; i < n; ++i) root_of_cluster[i] = i;

  auto find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  const int merges_to_apply = n - k;
  for (int t = 0; t < merges_to_apply; ++t) {
    const int ra = find(root_of_cluster[merges[t].a]);
    const int rb = find(root_of_cluster[merges[t].b]);
    parent[rb] = ra;
    root_of_cluster[n + t] = ra;
  }
  // Record the roots of later merges too so indices stay valid (unused
  // when cutting, but keeps the array total).
  for (size_t t = merges_to_apply; t < merges.size(); ++t) {
    root_of_cluster[n + t] = find(root_of_cluster[merges[t].a]);
  }

  std::vector<int> labels(n, -1);
  int next = 0;
  std::vector<int> label_of_root(n, -1);
  for (int i = 0; i < n; ++i) {
    const int r = find(i);
    if (label_of_root[r] < 0) label_of_root[r] = next++;
    labels[i] = label_of_root[r];
  }
  CREW_CHECK(next == k);
  return labels;
}

Dendrogram AgglomerativeCluster(const la::Matrix& distance, Linkage linkage) {
  CREW_TRACE_SPAN("crew/clustering/linkage");
  CREW_CHECK(distance.rows() == distance.cols());
  const int n = distance.rows();
  Dendrogram dendrogram;
  dendrogram.n = n;
  if (n <= 1) return dendrogram;

  // Working copy of pairwise distances between *active* clusters, indexed
  // by cluster id (leaves 0..n-1, merged clusters n..2n-2).
  const int max_clusters = 2 * n - 1;
  la::Matrix d(max_clusters, max_clusters,
               std::numeric_limits<double>::infinity());
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) d.At(i, j) = distance.At(i, j);
    }
  }
  std::vector<bool> active(max_clusters, false);
  std::vector<int> size(max_clusters, 0);
  for (int i = 0; i < n; ++i) {
    active[i] = true;
    size[i] = 1;
  }

  int next_id = n;
  for (int step = 0; step < n - 1; ++step) {
    // Find the closest active pair.
    int best_a = -1, best_b = -1;
    double best = std::numeric_limits<double>::infinity();
    for (int a = 0; a < next_id; ++a) {
      if (!active[a]) continue;
      for (int b = a + 1; b < next_id; ++b) {
        if (!active[b]) continue;
        if (d.At(a, b) < best) {
          best = d.At(a, b);
          best_a = a;
          best_b = b;
        }
      }
    }
    CREW_CHECK(best_a >= 0 && best_b >= 0);
    const int merged = next_id++;
    dendrogram.merges.push_back({best_a, best_b, best});
    active[best_a] = false;
    active[best_b] = false;
    active[merged] = true;
    size[merged] = size[best_a] + size[best_b];

    // Lance-Williams update for the new cluster's distances.
    for (int c = 0; c < merged; ++c) {
      if (!active[c]) continue;
      const double da = d.At(best_a, c);
      const double db = d.At(best_b, c);
      double dm = 0.0;
      switch (linkage) {
        case Linkage::kSingle:
          dm = std::min(da, db);
          break;
        case Linkage::kComplete:
          dm = std::max(da, db);
          break;
        case Linkage::kAverage:
          dm = (size[best_a] * da + size[best_b] * db) /
               static_cast<double>(size[best_a] + size[best_b]);
          break;
      }
      d.At(merged, c) = dm;
      d.At(c, merged) = dm;
    }
  }
  return dendrogram;
}

}  // namespace crew
