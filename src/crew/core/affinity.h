#ifndef CREW_CORE_AFFINITY_H_
#define CREW_CORE_AFFINITY_H_

#include <memory>

#include "crew/embed/embedding_store.h"
#include "crew/explain/attribution.h"
#include "crew/la/matrix.h"

namespace crew {

/// Relative weights of CREW's three knowledge sources when combining them
/// into one word-to-word distance. Setting a weight to zero ablates that
/// source (experiment F3).
struct AffinityWeights {
  double semantic = 1.0;    ///< word embedding similarity
  double attribute = 1.0;   ///< arrangement into dataset attributes
  double importance = 1.0;  ///< similarity of model attributions

  double Total() const { return semantic + attribute + importance; }
};

/// Builds the n x n symmetric word distance matrix over the attributed
/// tokens, each component normalized to [0, 1]:
///  - semantic:   (1 - cosine(e_i, e_j)) / 2; 0.5 when either token is OOV;
///  - attribute:  0 when the tokens occur under the same attribute
///                (in either record — EM schemas align columns), else 1;
///  - importance: |w_i - w_j| rescaled by the weight range, so words the
///                model treats alike (same direction and magnitude) are
///                close.
/// The combined distance is the weighted mean by `weights`; if all weights
/// are zero the distance is 0.
la::Matrix BuildWordDistanceMatrix(
    const std::vector<WordAttribution>& attributions,
    const EmbeddingStore* embeddings, const AffinityWeights& weights);

}  // namespace crew

#endif  // CREW_CORE_AFFINITY_H_
