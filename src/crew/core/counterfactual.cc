#include "crew/core/counterfactual.h"

#include <algorithm>
#include <numeric>

#include "crew/common/metrics.h"
#include "crew/common/string_util.h"
#include "crew/common/trace.h"
#include "crew/explain/batch_scorer.h"

namespace crew {

Counterfactual GenerateCounterfactual(
    const Matcher& matcher, const PairTokenView& view,
    const std::vector<ExplanationUnit>& units, double base_score) {
  CREW_TRACE_SPAN("crew/counterfactual");
  ScopedMetricStage stage("counterfactual");
  static DurationStat* timed_stat =
      MetricsRegistry::Global().GetDuration("crew/stage/counterfactual");
  ScopedDuration timed(timed_stat);
  Counterfactual out;
  out.original_score = base_score;
  if (units.empty()) return out;

  const double threshold = matcher.threshold();
  const bool predicted_match = base_score >= threshold;

  // Units ranked by support for the predicted class.
  std::vector<int> order(units.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return predicted_match ? units[a].weight > units[b].weight
                           : units[a].weight < units[b].weight;
  });

  // Score every cumulative removal prefix in one batch, then pick the first
  // one that flips. Identical to the early-exit loop: scoring is pure, so
  // evaluating past the flip point changes nothing.
  std::vector<std::vector<bool>> keeps;
  keeps.reserve(order.size());
  std::vector<bool> keep(view.size(), true);
  for (int u : order) {
    for (int i : units[u].member_indices) keep[i] = false;
    keeps.push_back(keep);
  }
  const BatchScorer scorer(matcher, view);
  std::vector<double> scores;
  scorer.ScoreKeepMasks(keeps, &scores);
  for (size_t p = 0; p < order.size(); ++p) {
    const int u = order[p];
    out.removed_units.push_back(u);
    for (int i : units[u].member_indices) {
      out.removed_words.push_back(view.token(i).text);
    }
    if ((scores[p] >= threshold) != predicted_match) {
      out.found = true;
      out.flipped_pair = view.Materialize(keeps[p]);
      out.flipped_score = scores[p];
      return out;
    }
  }
  // No flip reachable; reset the edit trail so callers don't mistake the
  // exhausted attempt for a counterfactual.
  out.removed_units.clear();
  out.removed_words.clear();
  return out;
}

std::string DescribeCounterfactual(const Counterfactual& counterfactual,
                                   double threshold) {
  if (!counterfactual.found) {
    return "no counterfactual reachable by deleting explanation units";
  }
  const bool was_match = counterfactual.original_score >= threshold;
  std::string out = StrPrintf(
      "prediction flips %s -> %s (%.3f -> %.3f) if %d unit(s) were absent: ",
      was_match ? "MATCH" : "NON-MATCH", was_match ? "NON-MATCH" : "MATCH",
      counterfactual.original_score, counterfactual.flipped_score,
      static_cast<int>(counterfactual.removed_units.size()));
  out += Join(counterfactual.removed_words, ", ");
  return out;
}

}  // namespace crew
