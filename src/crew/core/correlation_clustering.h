#ifndef CREW_CORE_CORRELATION_CLUSTERING_H_
#define CREW_CORE_CORRELATION_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "crew/la/matrix.h"

namespace crew {

struct CorrelationClusteringConfig {
  /// Distances below this are positive ("same cluster") evidence, above it
  /// negative. CREW distances live in [0, 1].
  double threshold = 0.45;
  /// Randomized pivot restarts; the labeling with the fewest violated
  /// edges wins.
  int restarts = 8;
  /// Local-improvement sweeps after pivoting (move single items to the
  /// neighbouring cluster that reduces disagreements).
  int improvement_sweeps = 2;
};

/// Correlation clustering via CC-Pivot (Ailon, Charikar, Newman 2008) with
/// restarts and a local-search polish.
///
/// Unlike agglomerative clustering it needs no K: the signed graph decides
/// how many clusters exist. This is the clustering family the CREW
/// authors' earlier work used for grouping synonymous attributes, included
/// as an alternative backend for CREW's stage 3.
///
/// Returns dense labels in [0, k); deterministic given `seed`.
std::vector<int> CorrelationCluster(const la::Matrix& distance,
                                    const CorrelationClusteringConfig& config,
                                    uint64_t seed);

/// Number of signed-edge disagreements of `labels` under `distance` /
/// `threshold`: positive edges cut + negative edges kept. The objective
/// CorrelationCluster minimizes; exposed for tests and diagnostics.
int64_t CorrelationDisagreements(const la::Matrix& distance, double threshold,
                                 const std::vector<int>& labels);

}  // namespace crew

#endif  // CREW_CORE_CORRELATION_CLUSTERING_H_
