#include "crew/core/decision_units.h"

#include <algorithm>
#include <cmath>

#include "crew/common/metrics.h"
#include "crew/common/timer.h"
#include "crew/common/trace.h"
#include "crew/explain/batch_scorer.h"
#include "crew/la/ridge.h"
#include "crew/text/string_similarity.h"

namespace crew {

std::vector<DecisionUnit> BuildDecisionUnits(
    const PairTokenView& view, const EmbeddingStore* embeddings,
    const DecisionUnitConfig& config) {
  const std::vector<int> left = view.IndicesOnSide(Side::kLeft);
  const std::vector<int> right = view.IndicesOnSide(Side::kRight);

  // Score all cross-record candidate pairings.
  struct Candidate {
    double similarity;
    int l, r;
  };
  std::vector<Candidate> candidates;
  for (int l : left) {
    for (int r : right) {
      const TokenRef& tl = view.token(l);
      const TokenRef& tr = view.token(r);
      double sim = tl.text == tr.text
                       ? 1.0
                       : JaroWinklerSimilarity(tl.text, tr.text);
      if (config.use_embeddings && embeddings != nullptr &&
          tl.text != tr.text) {
        sim = std::max(sim, embeddings->Similarity(tl.text, tr.text));
      }
      // Same-attribute pairings win ties: EM schemas align columns.
      if (tl.attribute == tr.attribute) sim += 1e-6;
      if (sim >= config.pairing_threshold) {
        candidates.push_back({sim, l, r});
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              if (a.l != b.l) return a.l < b.l;
              return a.r < b.r;
            });

  std::vector<bool> used(view.size(), false);
  std::vector<DecisionUnit> units;
  for (const Candidate& c : candidates) {
    if (used[c.l] || used[c.r]) continue;
    used[c.l] = used[c.r] = true;
    DecisionUnit unit;
    unit.left_token = c.l;
    unit.right_token = c.r;
    unit.similarity = std::min(1.0, c.similarity);
    units.push_back(unit);
  }
  for (int i = 0; i < view.size(); ++i) {
    if (used[i]) continue;
    DecisionUnit unit;
    if (view.token(i).side == Side::kLeft) {
      unit.left_token = i;
    } else {
      unit.right_token = i;
    }
    units.push_back(unit);
  }
  return units;
}

Result<std::pair<WordExplanation, std::vector<ExplanationUnit>>>
DecisionUnitExplainer::ExplainUnits(const Matcher& matcher,
                                    const RecordPair& pair,
                                    uint64_t seed) const {
  CREW_TRACE_SPAN("crew/decision_units");
  ScopedMetricStage stage("decision_units");
  static DurationStat* timed_stat =
      MetricsRegistry::Global().GetDuration("crew/stage/decision_units");
  ScopedDuration timed(timed_stat);
  WallTimer timer;
  Tokenizer tokenizer;
  PairTokenView view(AnonymousSchema(pair), tokenizer, pair);
  WordExplanation words;
  words.base_score = matcher.PredictProba(pair);
  for (int i = 0; i < view.size(); ++i) {
    words.attributions.push_back({view.token(i), 0.0});
  }
  std::vector<ExplanationUnit> units;
  if (view.size() == 0) {
    words.runtime_ms = timer.ElapsedMillis();
    return std::make_pair(std::move(words), std::move(units));
  }

  const std::vector<DecisionUnit> decision_units =
      BuildDecisionUnits(view, embeddings_.get(), config_);
  const int u_count = static_cast<int>(decision_units.size());

  // Unit-level drop perturbations.
  Rng rng(seed);
  const int n = std::max(8, config_.perturbation.num_samples);
  la::Matrix x(n, u_count);
  la::Vec y(n), w(n);
  std::vector<int> pool(u_count);
  for (int i = 0; i < u_count; ++i) pool[i] = i;
  // Unit-drop masks and the design matrix are built here on the caller
  // thread; the masks are then scored in one batch.
  std::vector<std::vector<bool>> keeps;
  keeps.reserve(n);
  for (int s = 0; s < n; ++s) {
    std::vector<bool> keep(view.size(), true);
    const int n_remove = 1 + rng.UniformInt(u_count);
    for (int i = 0; i < n_remove; ++i) {
      const int j = i + rng.UniformInt(u_count - i);
      std::swap(pool[i], pool[j]);
      const DecisionUnit& unit = decision_units[pool[i]];
      if (unit.left_token >= 0) keep[unit.left_token] = false;
      if (unit.right_token >= 0) keep[unit.right_token] = false;
    }
    for (int u = 0; u < u_count; ++u) {
      const DecisionUnit& unit = decision_units[u];
      const int probe = unit.left_token >= 0 ? unit.left_token
                                             : unit.right_token;
      x.At(s, u) = keep[probe] ? 1.0 : 0.0;
    }
    const double removed_fraction =
        static_cast<double>(n_remove) / static_cast<double>(u_count);
    const double kw = config_.perturbation.kernel_width;
    w[s] = std::exp(-(removed_fraction * removed_fraction) / (kw * kw));
    keeps.push_back(std::move(keep));
  }
  const BatchScorer scorer(matcher, view);
  std::vector<double> scores;
  scorer.ScoreKeepMasks(keeps, &scores);
  for (int s = 0; s < n; ++s) y[s] = scores[s];
  la::RidgeModel model;
  CREW_RETURN_IF_ERROR(FitRidge(x, y, w, config_.ridge_lambda, &model));
  words.surrogate_r2 = model.r2;

  units.reserve(u_count);
  for (int u = 0; u < u_count; ++u) {
    const DecisionUnit& du = decision_units[u];
    ExplanationUnit unit;
    unit.weight = model.coefficients[u];
    if (du.left_token >= 0) unit.member_indices.push_back(du.left_token);
    if (du.right_token >= 0) unit.member_indices.push_back(du.right_token);
    for (int i : unit.member_indices) {
      words.attributions[i].weight =
          unit.weight / static_cast<double>(du.IsPaired() ? 2 : 1);
    }
    unit.label = MakeUnitLabel(words, unit.member_indices, 2);
    if (du.IsPaired()) unit.label += " (paired)";
    units.push_back(std::move(unit));
  }
  std::sort(units.begin(), units.end(),
            [](const ExplanationUnit& a, const ExplanationUnit& b) {
              return std::fabs(a.weight) > std::fabs(b.weight);
            });
  words.runtime_ms = timer.ElapsedMillis();
  return std::make_pair(std::move(words), std::move(units));
}

Result<WordExplanation> DecisionUnitExplainer::Explain(
    const Matcher& matcher, const RecordPair& pair, uint64_t seed) const {
  auto result = ExplainUnits(matcher, pair, seed);
  if (!result.ok()) return result.status();
  return std::move(result.value().first);
}

}  // namespace crew
