#ifndef CREW_CORE_CLUSTER_EXPLANATION_H_
#define CREW_CORE_CLUSTER_EXPLANATION_H_

#include <string>
#include <vector>

#include "crew/explain/attribution.h"

namespace crew {

/// One explanation unit: a set of word indices (into the underlying word
/// explanation) with an aggregate weight. Word-level explanations are the
/// special case of singleton units; CREW produces multi-word clusters.
struct ExplanationUnit {
  std::vector<int> member_indices;
  double weight = 0.0;
  /// Up to three representative token texts, for display ("sony, wh, xm4").
  std::string label;
};

/// Cluster-of-words explanation (CREW's output).
struct ClusterExplanation {
  /// The underlying word attributions (view order), kept for drill-down.
  WordExplanation words;
  /// Units sorted by decreasing |weight|.
  std::vector<ExplanationUnit> units;
  /// Mean within-cluster embedding similarity (comprehensibility signal).
  double coherence = 0.0;
  /// Silhouette of the chosen clustering.
  double silhouette = 0.0;
  int chosen_k = 0;
  double runtime_ms = 0.0;

  double base_score() const { return words.base_score; }

  /// Unit indices sorted by decreasing support for the predicted class.
  std::vector<int> UnitsRankedBySupport(double threshold = 0.5) const;

  /// Human-readable multi-line rendering.
  std::string ToString() const;
};

/// Wraps a word-level explanation as singleton units so every explainer can
/// be evaluated with the same unit-based metrics (each word = one unit).
std::vector<ExplanationUnit> SingletonUnits(const WordExplanation& words);

/// Builds a display label from the member tokens ("sony + wh + 1000xm4").
std::string MakeUnitLabel(const WordExplanation& words,
                          const std::vector<int>& members, int max_tokens = 3);

}  // namespace crew

#endif  // CREW_CORE_CLUSTER_EXPLANATION_H_
