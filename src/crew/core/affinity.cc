#include "crew/core/affinity.h"

#include <algorithm>
#include <cmath>

#include "crew/common/trace.h"
#include "crew/text/string_similarity.h"

namespace crew {

la::Matrix BuildWordDistanceMatrix(
    const std::vector<WordAttribution>& attributions,
    const EmbeddingStore* embeddings, const AffinityWeights& weights) {
  CREW_TRACE_SPAN("crew/affinity/matrix");
  const int n = static_cast<int>(attributions.size());
  la::Matrix dist(n, n);
  if (n == 0) return dist;

  // Importance scale: the weight range across the explanation.
  double wmin = attributions[0].weight, wmax = attributions[0].weight;
  for (const auto& a : attributions) {
    wmin = std::min(wmin, a.weight);
    wmax = std::max(wmax, a.weight);
  }
  const double wrange = wmax - wmin;

  // Pre-resolve embedding ids so OOV handling is uniform.
  std::vector<int> emb_id(n, -1);
  if (embeddings != nullptr) {
    for (int i = 0; i < n; ++i) {
      emb_id[i] = embeddings->vocab().GetId(attributions[i].token.text);
    }
  }

  const double total = weights.Total();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double semantic = 0.5;
      if (attributions[i].token.text == attributions[j].token.text) {
        semantic = 0.0;
      } else if (embeddings != nullptr && emb_id[i] >= 0 && emb_id[j] >= 0) {
        semantic = (1.0 - embeddings->Similarity(attributions[i].token.text,
                                                 attributions[j].token.text)) /
                   2.0;
      } else {
        // OOV tokens (typos, rare model numbers) fall back to surface-form
        // similarity so "corporaiton" still clusters with "corporation".
        const double jw = JaroWinklerSimilarity(attributions[i].token.text,
                                                attributions[j].token.text);
        if (jw > 0.85) semantic = (1.0 - jw) / 2.0;
      }
      const double attribute =
          attributions[i].token.attribute == attributions[j].token.attribute
              ? 0.0
              : 1.0;
      const double importance =
          wrange > 0.0
              ? std::fabs(attributions[i].weight - attributions[j].weight) /
                    wrange
              : 0.0;
      const double d =
          total > 0.0
              ? (weights.semantic * semantic + weights.attribute * attribute +
                 weights.importance * importance) /
                    total
              : 0.0;
      dist.At(i, j) = d;
      dist.At(j, i) = d;
    }
  }
  return dist;
}

}  // namespace crew
