#include "crew/core/crew_explainer.h"

#include <algorithm>
#include <cmath>

#include "crew/common/metrics.h"
#include "crew/common/timer.h"
#include "crew/common/trace.h"
#include "crew/core/silhouette.h"
#include "crew/explain/batch_scorer.h"

namespace crew {
namespace {

// Stage wall-clock accumulators, registered once. The per-stage duration
// names here plus the scoring engine's materialize/predict durations form
// the "where does an explanation go" breakdown surfaced by --metrics.
struct CoreStageMetrics {
  DurationStat* attribution;
  DurationStat* affinity;
  DurationStat* clustering;
};

CoreStageMetrics& CoreStages() {
  static CoreStageMetrics* m = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    auto* s = new CoreStageMetrics();
    s->attribution = reg.GetDuration("crew/stage/attribution");
    s->affinity = reg.GetDuration("crew/stage/affinity");
    s->clustering = reg.GetDuration("crew/stage/clustering");
    return s;
  }();
  return *m;
}

}  // namespace

CrewExplainer::CrewExplainer(std::shared_ptr<const EmbeddingStore> embeddings,
                             CrewConfig config)
    : embeddings_(std::move(embeddings)), config_(config),
      importance_explainer_(config.importance) {}

Result<ClusterExplanation> CrewExplainer::ExplainClusters(
    const Matcher& matcher, const RecordPair& pair, uint64_t seed) const {
  CREW_TRACE_SPAN("crew/explain");
  WallTimer timer;
  ClusterExplanation out;

  // Stage 1: word importances.
  {
    CREW_TRACE_SPAN("crew/attribution");
    ScopedMetricStage stage("attribution");
    ScopedDuration timed(CoreStages().attribution);
    auto words = importance_explainer_.Explain(matcher, pair, seed);
    if (!words.ok()) return words.status();
    out.words = std::move(words.value());
  }
  const int n = static_cast<int>(out.words.attributions.size());
  if (n == 0) {
    out.runtime_ms = timer.ElapsedMillis();
    return out;
  }

  // Stage 2: combined word distance from the three knowledge sources.
  la::Matrix distance;
  {
    CREW_TRACE_SPAN("crew/affinity");
    ScopedMetricStage stage("affinity");
    ScopedDuration timed(CoreStages().affinity);
    distance = BuildWordDistanceMatrix(out.words.attributions,
                                       embeddings_.get(), config_.affinity);
  }

  // Stage 3: clustering.
  std::vector<int> labels;
  int k = 0;
  {
    CREW_TRACE_SPAN("crew/clustering");
    ScopedMetricStage stage("clustering");
    ScopedDuration timed(CoreStages().clustering);
    if (config_.backend == CrewConfig::Backend::kCorrelation) {
      CREW_TRACE_SPAN("crew/clustering/correlation");
      labels = CorrelationCluster(distance, config_.correlation, seed);
      for (int l : labels) k = std::max(k, l + 1);
    } else {
      CREW_TRACE_SPAN("crew/clustering/agglomerative");
      const Dendrogram dendrogram =
          AgglomerativeCluster(distance, config_.linkage);
      k = std::min(config_.max_clusters, n);
      if (config_.auto_k && n > 2) {
        k = ChooseKBySilhouette(distance, dendrogram, config_.min_clusters,
                                std::min(config_.max_clusters, n));
      }
      k = std::max(1, std::min(k, n));
      labels = dendrogram.CutToClusters(k);
    }
  }
  out.chosen_k = k;
  out.silhouette = MeanSilhouette(distance, labels);

  // Gather members.
  std::vector<std::vector<int>> members(k);
  for (int i = 0; i < n; ++i) members[labels[i]].push_back(i);

  // Stage 4: cluster scoring. All k cluster-removal masks are scored in one
  // batch through the scoring engine.
  Tokenizer tokenizer;
  PairTokenView view(AnonymousSchema(pair), tokenizer, pair);
  CREW_CHECK(view.size() == n);
  std::vector<double> without(k, 0.0);
  if (config_.rescore_clusters) {
    CREW_TRACE_SPAN("crew/cluster_rescore");
    ScopedMetricStage stage("attribution");
    ScopedDuration timed(CoreStages().attribution);
    std::vector<std::vector<bool>> keeps(k);
    for (int c = 0; c < k; ++c) {
      keeps[c].assign(n, true);
      for (int i : members[c]) keeps[c][i] = false;
    }
    const BatchScorer scorer(matcher, view);
    scorer.ScoreKeepMasks(keeps, &without);
  }
  out.units.reserve(k);
  for (int c = 0; c < k; ++c) {
    ExplanationUnit unit;
    unit.member_indices = members[c];
    double member_sum = 0.0;
    for (int i : members[c]) member_sum += out.words.attributions[i].weight;
    double weight = member_sum;
    if (config_.rescore_clusters) {
      const double rescored = out.words.base_score - without[c];
      // Symmetric deletion can be blind: removing a cluster that holds the
      // matching tokens of BOTH records leaves set-similarity features
      // (e.g. Jaccard of two emptied attributes) unchanged, so the probe
      // reads exactly zero even though the words carry all the evidence.
      // Fall back to the word-importance sum in that degenerate case.
      weight = std::fabs(rescored) > 1e-9 ? rescored : member_sum;
    }
    unit.weight = weight;
    unit.label = MakeUnitLabel(out.words, members[c]);
    out.units.push_back(std::move(unit));
  }
  std::sort(out.units.begin(), out.units.end(),
            [](const ExplanationUnit& a, const ExplanationUnit& b) {
              return std::fabs(a.weight) > std::fabs(b.weight);
            });

  // Comprehensibility signal: mean within-cluster embedding similarity.
  if (embeddings_ != nullptr) {
    double sim_sum = 0.0;
    int sim_count = 0;
    for (const auto& unit : out.units) {
      for (size_t x = 0; x < unit.member_indices.size(); ++x) {
        for (size_t y = x + 1; y < unit.member_indices.size(); ++y) {
          sim_sum += embeddings_->Similarity(
              out.words.attributions[unit.member_indices[x]].token.text,
              out.words.attributions[unit.member_indices[y]].token.text);
          ++sim_count;
        }
      }
    }
    out.coherence = sim_count > 0 ? sim_sum / sim_count : 0.0;
  }
  out.runtime_ms = timer.ElapsedMillis();
  return out;
}

Result<WordExplanation> CrewExplainer::Explain(const Matcher& matcher,
                                               const RecordPair& pair,
                                               uint64_t seed) const {
  auto clusters = ExplainClusters(matcher, pair, seed);
  if (!clusters.ok()) return clusters.status();
  WordExplanation out = clusters.value().words;
  // Word weights at cluster granularity: every member inherits the
  // cluster's (re-scored) weight, spread uniformly.
  for (const auto& unit : clusters.value().units) {
    const double share =
        unit.weight / static_cast<double>(unit.member_indices.size());
    for (int i : unit.member_indices) {
      out.attributions[i].weight = share;
    }
  }
  out.runtime_ms = clusters.value().runtime_ms;
  return out;
}

}  // namespace crew
