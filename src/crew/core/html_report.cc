#include "crew/core/html_report.h"

#include <cmath>
#include <vector>

#include "crew/common/string_util.h"

namespace crew {
namespace {

// Color-blind-friendly categorical palette (Okabe-Ito), cycled per cluster.
constexpr const char* kPalette[] = {"#E69F00", "#56B4E9", "#009E73",
                                    "#F0E442", "#0072B2", "#D55E00",
                                    "#CC79A7", "#999999"};
constexpr int kPaletteSize = 8;

}  // namespace

std::string HtmlEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string RenderExplanationHtml(const Schema& schema,
                                  const RecordPair& pair,
                                  const ClusterExplanation& explanation,
                                  const std::string& title) {
  // word index -> cluster index (ranked order) lookup.
  const int n = static_cast<int>(explanation.words.attributions.size());
  std::vector<int> cluster_of(n, -1);
  for (size_t u = 0; u < explanation.units.size(); ++u) {
    for (int i : explanation.units[u].member_indices) {
      if (i >= 0 && i < n) cluster_of[i] = static_cast<int>(u);
    }
  }

  std::string html =
      "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>" +
      HtmlEscape(title) + "</title>\n<style>\n"
      "body{font-family:sans-serif;margin:2em;max-width:60em}\n"
      ".tok{padding:1px 4px;margin:1px;border-radius:4px;display:inline-block}\n"
      ".rec{margin:0.4em 0;padding:0.6em;background:#f6f6f6;border-radius:6px}\n"
      ".attr{color:#666;font-size:85%;margin-right:0.4em}\n"
      ".legend td{padding:2px 10px}\n"
      "</style></head><body>\n";
  html += "<h2>" + HtmlEscape(title) + "</h2>\n";
  html += StrPrintf("<p>P(match) = <b>%.3f</b> &mdash; %d clusters "
                    "(silhouette %.2f, coherence %.2f)</p>\n",
                    explanation.base_score(),
                    static_cast<int>(explanation.units.size()),
                    explanation.silhouette, explanation.coherence);

  // Records with colour-coded tokens (walk the word attributions, which
  // carry provenance, grouped per side/attribute in view order).
  for (Side side : {Side::kLeft, Side::kRight}) {
    html += "<div class=\"rec\"><b>";
    html += side == Side::kLeft ? "left" : "right";
    html += "</b><br>\n";
    int last_attr = -1;
    for (int i = 0; i < n; ++i) {
      const auto& a = explanation.words.attributions[i];
      if (a.token.side != side) continue;
      if (a.token.attribute != last_attr) {
        if (last_attr >= 0) html += "<br>\n";
        last_attr = a.token.attribute;
        const std::string attr_name =
            a.token.attribute < schema.size()
                ? schema.name(a.token.attribute)
                : "attr" + std::to_string(a.token.attribute);
        html += "<span class=\"attr\">" + HtmlEscape(attr_name) + ":</span>";
      }
      const int c = cluster_of[i];
      const char* color = c >= 0 ? kPalette[c % kPaletteSize] : "#ffffff";
      html += StrPrintf(
          "<span class=\"tok\" style=\"background:%s\" title=\"cluster %d, "
          "w=%+.4f\">%s</span>",
          color, c, a.weight, HtmlEscape(a.token.text).c_str());
    }
    html += "</div>\n";
  }
  // Ignore `pair` content beyond what the attributions carry; it is passed
  // so future renderers can show raw values, and to keep the signature
  // stable.
  (void)pair;

  html += "<h3>Clusters</h3>\n<table class=\"legend\">\n";
  for (size_t u = 0; u < explanation.units.size(); ++u) {
    html += StrPrintf(
        "<tr><td><span class=\"tok\" style=\"background:%s\">&nbsp;&nbsp;"
        "</span></td><td>%+.4f</td><td>%s</td><td>%d words</td></tr>\n",
        kPalette[u % kPaletteSize], explanation.units[u].weight,
        HtmlEscape(explanation.units[u].label).c_str(),
        static_cast<int>(explanation.units[u].member_indices.size()));
  }
  html += "</table>\n</body></html>\n";
  return html;
}

}  // namespace crew
