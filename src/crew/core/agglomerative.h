#ifndef CREW_CORE_AGGLOMERATIVE_H_
#define CREW_CORE_AGGLOMERATIVE_H_

#include <vector>

#include "crew/la/matrix.h"

namespace crew {

enum class Linkage { kSingle, kComplete, kAverage };

const char* LinkageName(Linkage linkage);

/// Merge history of hierarchical agglomerative clustering over n items.
/// Clusters are numbered like scipy: 0..n-1 are the leaves; merge t creates
/// cluster n + t from `merges[t].a` and `merges[t].b`.
struct Dendrogram {
  struct Merge {
    int a = -1;
    int b = -1;
    double distance = 0.0;
  };
  int n = 0;
  std::vector<Merge> merges;  ///< exactly n - 1 entries for n > 0

  /// Flat labels in [0, k) obtained by undoing the last k - 1 merges.
  /// k is clamped to [1, n]. Label ids are assigned in leaf order.
  std::vector<int> CutToClusters(int k) const;
};

/// Bottom-up clustering from a symmetric distance matrix with
/// Lance-Williams distance updates. O(n^3) time, which is ample for
/// explanation-sized n (tens of words).
Dendrogram AgglomerativeCluster(const la::Matrix& distance, Linkage linkage);

}  // namespace crew

#endif  // CREW_CORE_AGGLOMERATIVE_H_
