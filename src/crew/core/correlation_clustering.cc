#include "crew/core/correlation_clustering.h"

#include <algorithm>

#include "crew/common/rng.h"
#include "crew/common/trace.h"

namespace crew {
namespace {

// One CC-Pivot pass over a random permutation: repeatedly pick the first
// unassigned item as pivot and absorb every unassigned positive neighbour.
std::vector<int> PivotOnce(const la::Matrix& distance, double threshold,
                           Rng& rng) {
  const int n = distance.rows();
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(order);
  std::vector<int> labels(n, -1);
  int next = 0;
  for (int idx = 0; idx < n; ++idx) {
    const int pivot = order[idx];
    if (labels[pivot] >= 0) continue;
    const int cluster = next++;
    labels[pivot] = cluster;
    for (int j = idx + 1; j < n; ++j) {
      const int other = order[j];
      if (labels[other] >= 0) continue;
      if (distance.At(pivot, other) < threshold) labels[other] = cluster;
    }
  }
  return labels;
}

// Moves single items to whichever existing cluster minimizes their
// disagreement contribution; repeats `sweeps` times.
void LocalImprove(const la::Matrix& distance, double threshold, int sweeps,
                  std::vector<int>& labels) {
  const int n = static_cast<int>(labels.size());
  int k = 0;
  for (int l : labels) k = std::max(k, l + 1);
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    bool moved = false;
    for (int i = 0; i < n; ++i) {
      // Disagreement delta of placing i in cluster c: for every other item
      // j, a positive edge (d < tau) disagrees when labels differ and a
      // negative edge disagrees when labels agree.
      std::vector<int> cost(k + 1, 0);  // k = brand-new singleton cluster
      for (int j = 0; j < n; ++j) {
        if (j == i) continue;
        const bool positive = distance.At(i, j) < threshold;
        for (int c = 0; c <= k; ++c) {
          const bool same = c == labels[j];
          if (positive != same) ++cost[c];
        }
      }
      int best = labels[i];
      for (int c = 0; c <= k; ++c) {
        if (cost[c] < cost[best]) best = c;
      }
      if (best != labels[i]) {
        labels[i] = best;
        if (best == k) ++k;  // opened a new singleton cluster
        moved = true;
      }
    }
    if (!moved) break;
  }
}

// Renumbers labels densely in first-appearance order.
void Compact(std::vector<int>& labels) {
  std::vector<int> remap(labels.size() + 1, -1);
  int next = 0;
  for (int& l : labels) {
    if (remap[l] < 0) remap[l] = next++;
    l = remap[l];
  }
}

}  // namespace

int64_t CorrelationDisagreements(const la::Matrix& distance, double threshold,
                                 const std::vector<int>& labels) {
  const int n = static_cast<int>(labels.size());
  int64_t disagreements = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const bool positive = distance.At(i, j) < threshold;
      const bool same = labels[i] == labels[j];
      if (positive != same) ++disagreements;
    }
  }
  return disagreements;
}

std::vector<int> CorrelationCluster(const la::Matrix& distance,
                                    const CorrelationClusteringConfig& config,
                                    uint64_t seed) {
  CREW_TRACE_SPAN("crew/clustering/pivot");
  const int n = distance.rows();
  if (n == 0) return {};
  if (n == 1) return {0};
  Rng rng(seed);
  std::vector<int> best;
  int64_t best_cost = -1;
  const int restarts = std::max(1, config.restarts);
  for (int r = 0; r < restarts; ++r) {
    std::vector<int> labels = PivotOnce(distance, config.threshold, rng);
    LocalImprove(distance, config.threshold, config.improvement_sweeps,
                 labels);
    const int64_t cost =
        CorrelationDisagreements(distance, config.threshold, labels);
    if (best_cost < 0 || cost < best_cost) {
      best_cost = cost;
      best = std::move(labels);
    }
  }
  Compact(best);
  return best;
}

}  // namespace crew
