#include "crew/core/cluster_explanation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "crew/common/string_util.h"

namespace crew {

std::vector<int> ClusterExplanation::UnitsRankedBySupport(
    double threshold) const {
  const bool predicted_match = words.base_score >= threshold;
  std::vector<int> order(units.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return predicted_match ? units[a].weight > units[b].weight
                           : units[a].weight < units[b].weight;
  });
  return order;
}

std::string ClusterExplanation::ToString() const {
  std::string out =
      StrPrintf("prediction: %.3f  (k=%d, silhouette=%.3f, coherence=%.3f)\n",
                words.base_score, chosen_k, silhouette, coherence);
  for (size_t u = 0; u < units.size(); ++u) {
    out += StrPrintf("  [%+.4f] %s", units[u].weight, units[u].label.c_str());
    if (units[u].member_indices.size() > 3) {
      out += StrPrintf(" (+%d more)",
                       static_cast<int>(units[u].member_indices.size()) - 3);
    }
    out.push_back('\n');
  }
  return out;
}

std::vector<ExplanationUnit> SingletonUnits(const WordExplanation& words) {
  std::vector<ExplanationUnit> units;
  units.reserve(words.attributions.size());
  for (size_t i = 0; i < words.attributions.size(); ++i) {
    ExplanationUnit unit;
    unit.member_indices = {static_cast<int>(i)};
    unit.weight = words.attributions[i].weight;
    unit.label = words.attributions[i].token.text;
    units.push_back(std::move(unit));
  }
  std::sort(units.begin(), units.end(), [](const auto& a, const auto& b) {
    return std::fabs(a.weight) > std::fabs(b.weight);
  });
  return units;
}

std::string MakeUnitLabel(const WordExplanation& words,
                          const std::vector<int>& members, int max_tokens) {
  // Show the highest-|weight| member tokens.
  std::vector<int> order = members;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return std::fabs(words.attributions[a].weight) >
           std::fabs(words.attributions[b].weight);
  });
  std::vector<std::string> parts;
  for (int i = 0; i < std::min<int>(max_tokens, order.size()); ++i) {
    parts.push_back(words.attributions[order[i]].token.text);
  }
  return Join(parts, " + ");
}

}  // namespace crew
