#include "crew/core/silhouette.h"

#include <algorithm>
#include <limits>

#include "crew/common/logging.h"

namespace crew {

double MeanSilhouette(const la::Matrix& distance,
                      const std::vector<int>& labels) {
  const int n = static_cast<int>(labels.size());
  CREW_CHECK(distance.rows() == n && distance.cols() == n);
  if (n < 2) return 0.0;
  int k = 0;
  for (int l : labels) k = std::max(k, l + 1);
  if (k < 2) return 0.0;

  std::vector<int> cluster_size(k, 0);
  for (int l : labels) ++cluster_size[l];

  double total = 0.0;
  std::vector<double> sum_to_cluster(k);
  for (int i = 0; i < n; ++i) {
    if (cluster_size[labels[i]] <= 1) continue;  // singleton -> 0
    std::fill(sum_to_cluster.begin(), sum_to_cluster.end(), 0.0);
    for (int j = 0; j < n; ++j) {
      if (j != i) sum_to_cluster[labels[j]] += distance.At(i, j);
    }
    const double a = sum_to_cluster[labels[i]] /
                     static_cast<double>(cluster_size[labels[i]] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (int c = 0; c < k; ++c) {
      if (c == labels[i] || cluster_size[c] == 0) continue;
      b = std::min(b, sum_to_cluster[c] / static_cast<double>(cluster_size[c]));
    }
    const double denom = std::max(a, b);
    total += denom > 0.0 ? (b - a) / denom : 0.0;
  }
  return total / static_cast<double>(n);
}

int ChooseKBySilhouette(const la::Matrix& distance,
                        const Dendrogram& dendrogram, int min_k, int max_k) {
  min_k = std::max(2, min_k);
  max_k = std::min(max_k, dendrogram.n);
  if (max_k < min_k) return std::max(1, std::min(min_k, dendrogram.n));
  int best_k = min_k;
  double best_score = -2.0;
  for (int k = min_k; k <= max_k; ++k) {
    const double score =
        MeanSilhouette(distance, dendrogram.CutToClusters(k));
    if (score > best_score + 1e-12) {
      best_score = score;
      best_k = k;
    }
  }
  return best_k;
}

}  // namespace crew
