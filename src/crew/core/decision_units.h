#ifndef CREW_CORE_DECISION_UNITS_H_
#define CREW_CORE_DECISION_UNITS_H_

#include <memory>
#include <vector>

#include "crew/core/cluster_explanation.h"
#include "crew/embed/embedding_store.h"
#include "crew/explain/perturbation.h"

namespace crew {

/// A WYM-style decision unit (Baraldi et al. 2023): either a *paired* unit
/// — two similar tokens, one from each record — or an *unpaired* token
/// existing on one side only. Decision units are the authors' earlier
/// answer to the same verbosity problem CREW addresses; implemented here
/// as the natural ablation point between word-level and cluster-level
/// explanations.
struct DecisionUnit {
  int left_token = -1;   ///< index into the pair's token view, or -1
  int right_token = -1;  ///< index into the pair's token view, or -1
  double similarity = 0.0;  ///< pairing similarity (1.0 for exact)

  bool IsPaired() const { return left_token >= 0 && right_token >= 0; }
};

struct DecisionUnitConfig {
  /// Minimum similarity for two cross-record tokens to form a paired unit.
  double pairing_threshold = 0.75;
  /// Use embedding cosine in addition to string similarity when available.
  bool use_embeddings = true;
  PerturbationConfig perturbation;
  double ridge_lambda = 1.0;
};

/// Greedy best-first pairing of left and right tokens (same attribute
/// preferred) by max(Jaro-Winkler, embedding cosine). Every token belongs
/// to exactly one unit.
std::vector<DecisionUnit> BuildDecisionUnits(
    const PairTokenView& view, const EmbeddingStore* embeddings,
    const DecisionUnitConfig& config);

/// Explainer that perturbs at decision-unit granularity: a sample drops
/// whole units (both members of a paired unit vanish together); a ridge
/// surrogate assigns one weight per unit. Exposed through the common
/// word-level interface (members share the unit weight) and through
/// `ExplainUnits` for unit-level evaluation.
class DecisionUnitExplainer : public Explainer {
 public:
  DecisionUnitExplainer(std::shared_ptr<const EmbeddingStore> embeddings,
                        DecisionUnitConfig config = DecisionUnitConfig())
      : embeddings_(std::move(embeddings)), config_(config) {}

  /// Unit-level explanation: returns the word attributions plus one
  /// ExplanationUnit per decision unit.
  Result<std::pair<WordExplanation, std::vector<ExplanationUnit>>>
  ExplainUnits(const Matcher& matcher, const RecordPair& pair,
               uint64_t seed) const;

  Result<WordExplanation> Explain(const Matcher& matcher,
                                  const RecordPair& pair,
                                  uint64_t seed) const override;

  std::string Name() const override { return "wym"; }

 private:
  std::shared_ptr<const EmbeddingStore> embeddings_;
  DecisionUnitConfig config_;
};

}  // namespace crew

#endif  // CREW_CORE_DECISION_UNITS_H_
