#ifndef CREW_CORE_SILHOUETTE_H_
#define CREW_CORE_SILHOUETTE_H_

#include <vector>

#include "crew/core/agglomerative.h"
#include "crew/la/matrix.h"

namespace crew {

/// Mean silhouette coefficient of `labels` under `distance`. Items in
/// singleton clusters contribute 0 (scikit-learn convention). Returns 0
/// when there are fewer than 2 clusters or fewer than 2 items.
double MeanSilhouette(const la::Matrix& distance,
                      const std::vector<int>& labels);

/// Picks the cut K in [min_k, max_k] maximizing the mean silhouette of the
/// dendrogram's flat clustering; ties go to the *smaller* K (fewer units is
/// more comprehensible). Returns min_k when the range is degenerate.
int ChooseKBySilhouette(const la::Matrix& distance,
                        const Dendrogram& dendrogram, int min_k, int max_k);

}  // namespace crew

#endif  // CREW_CORE_SILHOUETTE_H_
