#ifndef CREW_CORE_HTML_REPORT_H_
#define CREW_CORE_HTML_REPORT_H_

#include <string>

#include "crew/core/cluster_explanation.h"
#include "crew/data/schema.h"

namespace crew {

/// Renders a self-contained HTML document visualizing one CREW explanation:
/// the two records with every token colour-coded by its cluster, plus a
/// legend listing the clusters with their weights. No external assets —
/// open the file in any browser. The artifact a reviewer actually looks at.
std::string RenderExplanationHtml(const Schema& schema,
                                  const RecordPair& pair,
                                  const ClusterExplanation& explanation,
                                  const std::string& title = "CREW explanation");

/// HTML-escapes `<`, `>`, `&`, `"`.
std::string HtmlEscape(const std::string& s);

}  // namespace crew

#endif  // CREW_CORE_HTML_REPORT_H_
