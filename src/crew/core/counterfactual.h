#ifndef CREW_CORE_COUNTERFACTUAL_H_
#define CREW_CORE_COUNTERFACTUAL_H_

#include <string>
#include <vector>

#include "crew/core/cluster_explanation.h"
#include "crew/explain/token_view.h"
#include "crew/model/matcher.h"

namespace crew {

/// A concrete "what would have to change" answer: the smallest prefix of
/// explanation units whose removal flips the prediction, materialized as
/// an edited record pair.
struct Counterfactual {
  bool found = false;
  /// The edited pair with the flipped prediction (valid when `found`).
  RecordPair flipped_pair;
  double original_score = 0.0;
  double flipped_score = 0.0;
  /// Indices (into `units`) of the removed units, in removal order.
  std::vector<int> removed_units;
  /// Texts of the removed words, for display.
  std::vector<std::string> removed_words;
};

/// Greedily removes units in support order (the same order the
/// faithfulness metrics use) until the prediction crosses the matcher's
/// threshold. `units` is any unit decomposition — CREW clusters give the
/// most compact counterfactuals (see bench_f6).
Counterfactual GenerateCounterfactual(const Matcher& matcher,
                                      const PairTokenView& view,
                                      const std::vector<ExplanationUnit>& units,
                                      double base_score);

/// Renders "the pair would be classified MATCH/NON-MATCH if these words
/// were absent: ..." for CLI display.
std::string DescribeCounterfactual(const Counterfactual& counterfactual,
                                   double threshold);

}  // namespace crew

#endif  // CREW_CORE_COUNTERFACTUAL_H_
