#include "crew/la/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "crew/common/logging.h"

namespace crew::la {

double Variance(const Vec& a) {
  if (a.size() < 2) return 0.0;
  const double m = Mean(a);
  double s = 0.0;
  for (double v : a) s += (v - m) * (v - m);
  return s / static_cast<double>(a.size() - 1);
}

double StdDev(const Vec& a) { return std::sqrt(Variance(a)); }

double Percentile(Vec a, double p) {
  CREW_CHECK(!a.empty());
  CREW_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(a.begin(), a.end());
  if (a.size() == 1) return a[0];
  const double idx = p / 100.0 * static_cast<double>(a.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, a.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return a[lo] * (1.0 - frac) + a[hi] * frac;
}

double PearsonCorrelation(const Vec& a, const Vec& b) {
  CREW_CHECK(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  const double ma = Mean(a), mb = Mean(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da <= 0.0 || db <= 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

Vec Ranks(const Vec& a) {
  const size_t n = a.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return a[x] < a[y]; });
  Vec ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && a[order[j + 1]] == a[order[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const Vec& a, const Vec& b) {
  CREW_CHECK(a.size() == b.size());
  return PearsonCorrelation(Ranks(a), Ranks(b));
}

}  // namespace crew::la
