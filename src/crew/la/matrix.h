#ifndef CREW_LA_MATRIX_H_
#define CREW_LA_MATRIX_H_

#include <cstddef>
#include <vector>

#include "crew/common/dcheck.h"
#include "crew/la/vector_ops.h"

namespace crew::la {

/// Dense row-major matrix of doubles.
///
/// Deliberately minimal: the library needs matrix-vector products, Gram
/// matrices and factorizations for ridge regression and truncated SVD; it is
/// not a general-purpose BLAS.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, fill) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& At(int r, int c) {
    CREW_DCHECK_BOUNDS(r, rows_);
    CREW_DCHECK_BOUNDS(c, cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double At(int r, int c) const {
    CREW_DCHECK_BOUNDS(r, rows_);
    CREW_DCHECK_BOUNDS(c, cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  /// Pointer to the start of row `r` (contiguous, `cols()` entries).
  double* Row(int r) {
    CREW_DCHECK_BOUNDS(r, rows_);
    return data_.data() + static_cast<size_t>(r) * cols_;
  }
  const double* Row(int r) const {
    CREW_DCHECK_BOUNDS(r, rows_);
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  /// Copies row `r` into a Vec.
  Vec RowVec(int r) const;

  /// Sets row `r` from `v` (size must equal cols()).
  void SetRow(int r, const Vec& v);

  /// this * x  (x.size() == cols()).
  Vec MatVec(const Vec& x) const;

  /// this^T * x  (x.size() == rows()).
  Vec MatTVec(const Vec& x) const;

  /// Matrix product this * other.
  Matrix MatMul(const Matrix& other) const;

  /// this^T * this, a cols() x cols() Gram matrix.
  Matrix Gram() const;

  Matrix Transposed() const;

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

/// Solves the symmetric positive-definite system A x = b via Cholesky.
/// Returns false if A is not (numerically) positive definite.
bool CholeskySolve(const Matrix& a, const Vec& b, Vec* x);

}  // namespace crew::la

#endif  // CREW_LA_MATRIX_H_
