#ifndef CREW_LA_SVD_H_
#define CREW_LA_SVD_H_

#include <cstdint>
#include <vector>

#include "crew/common/dcheck.h"
#include "crew/common/status.h"
#include "crew/la/matrix.h"

namespace crew::la {

/// Symmetric sparse matrix in row-compressed form (only used for the PPMI
/// word-word matrix, which is symmetric by construction).
class SymmetricSparse {
 public:
  explicit SymmetricSparse(int n) : n_(n), rows_(n) {}

  int n() const { return n_; }

  /// Adds `value` at (r, c); caller is responsible for symmetry (add both
  /// (r,c) and (c,r), or use SetSymmetric).
  void Add(int r, int c, double value) {
    CREW_DCHECK_BOUNDS(r, n_);
    CREW_DCHECK_BOUNDS(c, n_);
    rows_[r].push_back({c, value});
  }

  /// Adds `value` at (r, c) and, when r != c, at (c, r).
  void SetSymmetric(int r, int c, double value) {
    Add(r, c, value);
    if (r != c) Add(c, r, value);
  }

  /// Number of stored entries.
  int64_t NonZeros() const;

  /// out = M * x.
  Vec MatVec(const Vec& x) const;

 private:
  struct Entry {
    int col;
    double value;
  };
  int n_;
  std::vector<std::vector<Entry>> rows_;
};

/// Top-k eigenpairs of a symmetric matrix via subspace (orthogonal) power
/// iteration. Returns eigenvectors as a n x k matrix (columns are vectors)
/// and eigenvalues sorted by decreasing |lambda|.
///
/// `iterations` = 30-50 suffices for embedding purposes (we only need a
/// good low-rank subspace, not machine-precision eigenpairs).
Status TruncatedSymmetricEigen(const SymmetricSparse& m, int k, int iterations,
                               uint64_t seed, Matrix* eigenvectors,
                               Vec* eigenvalues);

}  // namespace crew::la

#endif  // CREW_LA_SVD_H_
