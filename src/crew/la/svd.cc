#include "crew/la/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "crew/common/rng.h"

namespace crew::la {

int64_t SymmetricSparse::NonZeros() const {
  int64_t nnz = 0;
  for (const auto& row : rows_) nnz += static_cast<int64_t>(row.size());
  return nnz;
}

Vec SymmetricSparse::MatVec(const Vec& x) const {
  CREW_CHECK(static_cast<int>(x.size()) == n_);
  Vec out(n_, 0.0);
  for (int r = 0; r < n_; ++r) {
    double s = 0.0;
    for (const Entry& e : rows_[r]) s += e.value * x[e.col];
    out[r] = s;
  }
  return out;
}

namespace {

// Modified Gram-Schmidt on the columns of q (n x k).
void Orthonormalize(Matrix* q) {
  const int n = q->rows();
  const int k = q->cols();
  for (int j = 0; j < k; ++j) {
    // Subtract projections on previous columns.
    for (int p = 0; p < j; ++p) {
      double dot = 0.0;
      for (int i = 0; i < n; ++i) dot += q->At(i, j) * q->At(i, p);
      for (int i = 0; i < n; ++i) q->At(i, j) -= dot * q->At(i, p);
    }
    double norm = 0.0;
    for (int i = 0; i < n; ++i) norm += q->At(i, j) * q->At(i, j);
    norm = std::sqrt(norm);
    if (norm < 1e-12) {
      // Degenerate column: re-seed with a deterministic basis vector.
      for (int i = 0; i < n; ++i) q->At(i, j) = (i % k == j % k) ? 1.0 : 0.0;
      norm = 0.0;
      for (int i = 0; i < n; ++i) norm += q->At(i, j) * q->At(i, j);
      norm = std::sqrt(norm);
    }
    for (int i = 0; i < n; ++i) q->At(i, j) /= norm;
  }
}

}  // namespace

Status TruncatedSymmetricEigen(const SymmetricSparse& m, int k, int iterations,
                               uint64_t seed, Matrix* eigenvectors,
                               Vec* eigenvalues) {
  const int n = m.n();
  if (k <= 0 || k > n) {
    return Status::InvalidArgument("TruncatedSymmetricEigen: bad rank k");
  }
  if (iterations <= 0) {
    return Status::InvalidArgument("TruncatedSymmetricEigen: bad iterations");
  }
  Rng rng(seed);
  Matrix q(n, k);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) q.At(i, j) = rng.Normal();
  }
  Orthonormalize(&q);

  Vec col(n), mcol;
  for (int it = 0; it < iterations; ++it) {
    Matrix z(n, k);
    for (int j = 0; j < k; ++j) {
      for (int i = 0; i < n; ++i) col[i] = q.At(i, j);
      mcol = m.MatVec(col);
      for (int i = 0; i < n; ++i) z.At(i, j) = mcol[i];
    }
    q = std::move(z);
    Orthonormalize(&q);
  }

  // Rayleigh quotients as eigenvalue estimates.
  eigenvalues->assign(k, 0.0);
  for (int j = 0; j < k; ++j) {
    for (int i = 0; i < n; ++i) col[i] = q.At(i, j);
    mcol = m.MatVec(col);
    (*eigenvalues)[j] = Dot(col, mcol);
  }

  // Sort by decreasing |lambda| and permute columns accordingly.
  std::vector<int> order(k);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return std::fabs((*eigenvalues)[a]) > std::fabs((*eigenvalues)[b]);
  });
  Matrix sorted(n, k);
  Vec sorted_vals(k);
  for (int j = 0; j < k; ++j) {
    sorted_vals[j] = (*eigenvalues)[order[j]];
    for (int i = 0; i < n; ++i) sorted.At(i, j) = q.At(i, order[j]);
  }
  *eigenvectors = std::move(sorted);
  *eigenvalues = std::move(sorted_vals);
  return Status::Ok();
}

}  // namespace crew::la
