#ifndef CREW_LA_VECTOR_OPS_H_
#define CREW_LA_VECTOR_OPS_H_

#include <vector>

namespace crew::la {

/// Dense double vector used across the math layers.
using Vec = std::vector<double>;

/// Inner product; requires equal sizes.
double Dot(const Vec& a, const Vec& b);

/// Euclidean norm.
double Norm(const Vec& a);

/// Cosine similarity in [-1, 1]; returns 0 when either vector is zero.
double Cosine(const Vec& a, const Vec& b);

/// y += alpha * x (sizes must match).
void Axpy(double alpha, const Vec& x, Vec& y);

/// x *= alpha.
void Scale(double alpha, Vec& x);

/// Normalizes `x` to unit Euclidean norm in place; zero vectors unchanged.
void NormalizeInPlace(Vec& x);

/// Element-wise a - b.
Vec Sub(const Vec& a, const Vec& b);

/// Element-wise a + b.
Vec Add(const Vec& a, const Vec& b);

/// Element-wise product.
Vec Hadamard(const Vec& a, const Vec& b);

/// Element-wise absolute value.
Vec Abs(const Vec& a);

/// Logistic sigmoid, numerically stable.
double Sigmoid(double x);

/// Index of the maximum element; requires non-empty input.
int ArgMax(const Vec& a);

/// Arithmetic mean; 0 for empty input.
double Mean(const Vec& a);

}  // namespace crew::la

#endif  // CREW_LA_VECTOR_OPS_H_
