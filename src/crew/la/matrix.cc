#include "crew/la/matrix.h"

#include <cmath>

#include "crew/common/dcheck.h"

namespace crew::la {

Vec Matrix::RowVec(int r) const {
  CREW_DCHECK(r >= 0 && r < rows_);
  return Vec(Row(r), Row(r) + cols_);
}

void Matrix::SetRow(int r, const Vec& v) {
  CREW_DCHECK(static_cast<int>(v.size()) == cols_);
  double* dst = Row(r);
  for (int c = 0; c < cols_; ++c) dst[c] = v[c];
}

Vec Matrix::MatVec(const Vec& x) const {
  CREW_DCHECK(static_cast<int>(x.size()) == cols_);
  Vec out(rows_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    const double* row = Row(r);
    double s = 0.0;
    for (int c = 0; c < cols_; ++c) s += row[c] * x[c];
    out[r] = s;
  }
  return out;
}

Vec Matrix::MatTVec(const Vec& x) const {
  CREW_DCHECK(static_cast<int>(x.size()) == rows_);
  Vec out(cols_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    const double* row = Row(r);
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (int c = 0; c < cols_; ++c) out[c] += row[c] * xr;
  }
  return out;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  CREW_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (int r = 0; r < rows_; ++r) {
    const double* arow = Row(r);
    double* orow = out.Row(r);
    for (int k = 0; k < cols_; ++k) {
      const double a = arow[k];
      if (a == 0.0) continue;
      const double* brow = other.Row(k);
      for (int c = 0; c < other.cols_; ++c) orow[c] += a * brow[c];
    }
  }
  return out;
}

Matrix Matrix::Gram() const {
  Matrix out(cols_, cols_);
  for (int r = 0; r < rows_; ++r) {
    const double* row = Row(r);
    for (int i = 0; i < cols_; ++i) {
      const double ri = row[i];
      if (ri == 0.0) continue;
      double* orow = out.Row(i);
      for (int j = 0; j < cols_; ++j) orow[j] += ri * row[j];
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out.At(c, r) = At(r, c);
  }
  return out;
}

bool CholeskySolve(const Matrix& a, const Vec& b, Vec* x) {
  CREW_CHECK(a.rows() == a.cols());
  CREW_CHECK(static_cast<int>(b.size()) == a.rows());
  const int n = a.rows();
  Matrix l(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double s = a.At(i, j);
      for (int k = 0; k < j; ++k) s -= l.At(i, k) * l.At(j, k);
      if (i == j) {
        if (s <= 0.0) return false;
        l.At(i, i) = std::sqrt(s);
      } else {
        l.At(i, j) = s / l.At(j, j);
      }
    }
  }
  // Forward substitution: L y = b.
  Vec y(n, 0.0);
  for (int i = 0; i < n; ++i) {
    double s = b[i];
    for (int k = 0; k < i; ++k) s -= l.At(i, k) * y[k];
    y[i] = s / l.At(i, i);
  }
  // Back substitution: L^T x = y.
  x->assign(n, 0.0);
  for (int i = n - 1; i >= 0; --i) {
    double s = y[i];
    for (int k = i + 1; k < n; ++k) s -= l.At(k, i) * (*x)[k];
    (*x)[i] = s / l.At(i, i);
  }
  return true;
}

}  // namespace crew::la
