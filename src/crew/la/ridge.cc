#include "crew/la/ridge.h"

#include <cmath>

namespace crew::la {

Status FitRidge(const Matrix& x, const Vec& y, const Vec& weights,
                double lambda, RidgeModel* model) {
  const int n = x.rows();
  const int d = x.cols();
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("FitRidge: empty design matrix");
  }
  if (static_cast<int>(y.size()) != n) {
    return Status::InvalidArgument("FitRidge: y size mismatch");
  }
  if (!weights.empty() && static_cast<int>(weights.size()) != n) {
    return Status::InvalidArgument("FitRidge: weights size mismatch");
  }
  if (lambda < 0.0) {
    return Status::InvalidArgument("FitRidge: negative lambda");
  }

  // Augmented system over [beta; intercept]: A = X~^T W X~ + diag(lambda..,0)
  const int m = d + 1;
  Matrix a(m, m);
  Vec rhs(m, 0.0);
  for (int i = 0; i < n; ++i) {
    const double w = weights.empty() ? 1.0 : weights[i];
    if (w <= 0.0) continue;
    const double* row = x.Row(i);
    for (int p = 0; p < d; ++p) {
      const double wp = w * row[p];
      if (wp == 0.0) continue;
      double* arow = a.Row(p);
      for (int q = p; q < d; ++q) arow[q] += wp * row[q];
      a.At(p, d) += wp;  // interaction with intercept column (all ones)
      rhs[p] += wp * y[i];
    }
    a.At(d, d) += w;
    rhs[d] += w * y[i];
  }
  // Mirror the upper triangle and add the ridge penalty.
  for (int p = 0; p < m; ++p) {
    for (int q = p + 1; q < m; ++q) a.At(q, p) = a.At(p, q);
  }
  for (int p = 0; p < d; ++p) a.At(p, p) += lambda;
  // Tiny jitter keeps the intercept block positive definite when all
  // weights concentrate on few samples.
  a.At(d, d) += 1e-12;

  Vec solution;
  if (!CholeskySolve(a, rhs, &solution)) {
    return Status::Internal("FitRidge: normal equations not positive definite");
  }
  model->coefficients.assign(solution.begin(), solution.begin() + d);
  model->intercept = solution[d];

  // Weighted R^2.
  double wsum = 0.0, ymean = 0.0;
  for (int i = 0; i < n; ++i) {
    const double w = weights.empty() ? 1.0 : weights[i];
    if (w <= 0.0) continue;
    wsum += w;
    ymean += w * y[i];
  }
  if (wsum <= 0.0) {
    return Status::InvalidArgument("FitRidge: all weights are zero");
  }
  ymean /= wsum;
  double ss_res = 0.0, ss_tot = 0.0;
  for (int i = 0; i < n; ++i) {
    const double w = weights.empty() ? 1.0 : weights[i];
    if (w <= 0.0) continue;
    const double* row = x.Row(i);
    double pred = model->intercept;
    for (int p = 0; p < d; ++p) pred += row[p] * model->coefficients[p];
    ss_res += w * (y[i] - pred) * (y[i] - pred);
    ss_tot += w * (y[i] - ymean) * (y[i] - ymean);
  }
  model->r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 0.0;
  return Status::Ok();
}

}  // namespace crew::la
