#ifndef CREW_LA_STATS_H_
#define CREW_LA_STATS_H_

#include "crew/la/vector_ops.h"

namespace crew::la {

/// Sample variance (divides by n-1); 0 for fewer than two samples.
double Variance(const Vec& a);

/// Sample standard deviation.
double StdDev(const Vec& a);

/// p-th percentile (p in [0,100]) via linear interpolation; requires
/// non-empty input. Input is copied, not modified.
double Percentile(Vec a, double p);

/// Pearson correlation; 0 when either side has zero variance.
double PearsonCorrelation(const Vec& a, const Vec& b);

/// Spearman rank correlation (average ranks for ties).
double SpearmanCorrelation(const Vec& a, const Vec& b);

/// Fractional ranks of `a` (1-based, ties averaged).
Vec Ranks(const Vec& a);

}  // namespace crew::la

#endif  // CREW_LA_STATS_H_
