#ifndef CREW_LA_RIDGE_H_
#define CREW_LA_RIDGE_H_

#include "crew/common/status.h"
#include "crew/la/matrix.h"

namespace crew::la {

/// Result of a (weighted) ridge regression fit.
struct RidgeModel {
  Vec coefficients;  ///< One per feature column.
  double intercept = 0.0;
  /// Weighted R^2 of the fit on the training data (surrogate quality; LIME
  /// reports this as explanation confidence).
  double r2 = 0.0;
};

/// Fits min_beta sum_i w_i (y_i - x_i beta - b)^2 + lambda ||beta||^2.
///
/// `x` is n x d, `y` and `weights` have length n; `weights` may be empty for
/// an unweighted fit. The intercept is not regularized. This is the surrogate
/// solver used by all perturbation-based explainers (LIME, Mojito, Landmark).
Status FitRidge(const Matrix& x, const Vec& y, const Vec& weights,
                double lambda, RidgeModel* model);

}  // namespace crew::la

#endif  // CREW_LA_RIDGE_H_
