#include "crew/la/vector_ops.h"

#include <cmath>

#include "crew/common/dcheck.h"

namespace crew::la {

double Dot(const Vec& a, const Vec& b) {
  CREW_DCHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm(const Vec& a) { return std::sqrt(Dot(a, a)); }

double Cosine(const Vec& a, const Vec& b) {
  double na = Norm(a), nb = Norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

void Axpy(double alpha, const Vec& x, Vec& y) {
  CREW_DCHECK(x.size() == y.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void Scale(double alpha, Vec& x) {
  for (double& v : x) v *= alpha;
}

void NormalizeInPlace(Vec& x) {
  double n = Norm(x);
  if (n > 0.0) Scale(1.0 / n, x);
}

Vec Sub(const Vec& a, const Vec& b) {
  CREW_DCHECK(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vec Add(const Vec& a, const Vec& b) {
  CREW_DCHECK(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vec Hadamard(const Vec& a, const Vec& b) {
  CREW_DCHECK(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

Vec Abs(const Vec& a) {
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = std::fabs(a[i]);
  return out;
}

double Sigmoid(double x) {
  if (x >= 0.0) {
    double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  double z = std::exp(x);
  return z / (1.0 + z);
}

int ArgMax(const Vec& a) {
  CREW_CHECK(!a.empty());
  int best = 0;
  for (size_t i = 1; i < a.size(); ++i) {
    if (a[i] > a[best]) best = static_cast<int>(i);
  }
  return best;
}

double Mean(const Vec& a) {
  if (a.empty()) return 0.0;
  double s = 0.0;
  for (double v : a) s += v;
  return s / static_cast<double>(a.size());
}

}  // namespace crew::la
