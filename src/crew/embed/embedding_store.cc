#include "crew/embed/embedding_store.h"

#include <algorithm>
#include <cmath>

#include "crew/common/logging.h"

namespace crew {

EmbeddingStore::EmbeddingStore(Vocabulary vocab, la::Matrix vectors)
    : vocab_(std::move(vocab)), vectors_(std::move(vectors)) {
  CREW_CHECK(vectors_.rows() == vocab_.size());
  // Normalize rows once so cosine reduces to a dot product.
  for (int r = 0; r < vectors_.rows(); ++r) {
    double norm = 0.0;
    double* row = vectors_.Row(r);
    for (int c = 0; c < vectors_.cols(); ++c) norm += row[c] * row[c];
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (int c = 0; c < vectors_.cols(); ++c) row[c] /= norm;
    }
  }
}

la::Vec EmbeddingStore::Lookup(std::string_view token) const {
  const int id = vocab_.GetId(token);
  if (id < 0) return la::Vec(dim(), 0.0);
  return vectors_.RowVec(id);
}

double EmbeddingStore::Similarity(std::string_view a,
                                  std::string_view b) const {
  const int ia = vocab_.GetId(a);
  const int ib = vocab_.GetId(b);
  if (ia < 0 || ib < 0) return 0.0;
  const double* ra = vectors_.Row(ia);
  const double* rb = vectors_.Row(ib);
  double dot = 0.0;
  for (int c = 0; c < dim(); ++c) dot += ra[c] * rb[c];
  return dot;
}

double EmbeddingStore::SimilarityById(int a, int b) const {
  if (a < 0 || b < 0) return 0.0;
  const double* ra = vectors_.Row(a);
  const double* rb = vectors_.Row(b);
  double dot = 0.0;
  for (int c = 0; c < dim(); ++c) dot += ra[c] * rb[c];
  return dot;
}

void EmbeddingStore::MeanVectorOfIdsInto(const std::vector<int>& ids,
                                         la::Vec* out) const {
  out->assign(dim(), 0.0);
  la::Vec& mean = *out;
  int n = 0;
  for (int id : ids) {
    if (id < 0) continue;
    const double* row = vectors_.Row(id);
    for (int c = 0; c < dim(); ++c) mean[c] += row[c];
    ++n;
  }
  if (n > 0) la::Scale(1.0 / n, mean);
}

la::Vec EmbeddingStore::MeanVector(
    const std::vector<std::string>& tokens) const {
  la::Vec mean;
  MeanVectorInto(tokens, &mean);
  return mean;
}

void EmbeddingStore::MeanVectorInto(const std::vector<std::string>& tokens,
                                    la::Vec* out) const {
  out->assign(dim(), 0.0);
  la::Vec& mean = *out;
  int n = 0;
  for (const auto& tok : tokens) {
    const int id = vocab_.GetId(tok);
    if (id < 0) continue;
    const double* row = vectors_.Row(id);
    for (int c = 0; c < dim(); ++c) mean[c] += row[c];
    ++n;
  }
  if (n > 0) la::Scale(1.0 / n, mean);
}

std::vector<std::pair<std::string, double>> EmbeddingStore::NearestNeighbors(
    std::string_view token, int k) const {
  std::vector<std::pair<std::string, double>> out;
  const int id = vocab_.GetId(token);
  if (id < 0 || k <= 0) return out;
  std::vector<std::pair<double, int>> scored;
  const double* q = vectors_.Row(id);
  for (int r = 0; r < vectors_.rows(); ++r) {
    if (r == id) continue;
    const double* row = vectors_.Row(r);
    double dot = 0.0;
    for (int c = 0; c < dim(); ++c) dot += q[c] * row[c];
    scored.push_back({dot, r});
  }
  const int take = std::min<int>(k, static_cast<int>(scored.size()));
  std::partial_sort(scored.begin(), scored.begin() + take, scored.end(),
                    [](const auto& a, const auto& b) { return a.first > b.first; });
  for (int i = 0; i < take; ++i) {
    out.push_back({vocab_.TokenOf(scored[i].second), scored[i].first});
  }
  return out;
}

}  // namespace crew
