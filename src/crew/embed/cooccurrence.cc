#include "crew/embed/cooccurrence.h"

#include <algorithm>

namespace crew {

Corpus BuildCorpus(const Dataset& dataset, const Tokenizer& tokenizer) {
  Corpus corpus;
  corpus.reserve(static_cast<size_t>(dataset.size()) * 2);
  for (const auto& pair : dataset.pairs()) {
    corpus.push_back(FlattenTokens(tokenizer, dataset.schema(), pair.left));
    corpus.push_back(FlattenTokens(tokenizer, dataset.schema(), pair.right));
  }
  return corpus;
}

void CooccurrenceCounter::AddSentence(
    const std::vector<std::string>& sentence) {
  // Map to ids first, dropping OOV tokens.
  std::vector<int> ids;
  ids.reserve(sentence.size());
  for (const auto& tok : sentence) {
    const int id = vocab_.GetId(tok);
    if (id >= 0) ids.push_back(id);
  }
  const int n = static_cast<int>(ids.size());
  for (int c = 0; c < n; ++c) {
    const int hi = std::min(n - 1, c + window_);
    for (int j = c + 1; j <= hi; ++j) {
      if (ids[c] == ids[j]) continue;
      counts_[Key(ids[c], ids[j])] += 1;
      marginals_[ids[c]] += 1;
      marginals_[ids[j]] += 1;
      total_ += 2;
    }
  }
}

void CooccurrenceCounter::AddCorpus(const Corpus& corpus) {
  for (const auto& sentence : corpus) AddSentence(sentence);
}

int64_t CooccurrenceCounter::Count(int i, int j) const {
  auto it = counts_.find(Key(i, j));
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace crew
