#ifndef CREW_EMBED_SGNS_H_
#define CREW_EMBED_SGNS_H_

#include "crew/common/status.h"
#include "crew/embed/cooccurrence.h"
#include "crew/embed/embedding_store.h"

namespace crew {

struct SgnsConfig {
  int dim = 32;
  int window = 5;
  int min_count = 2;
  int negative_samples = 5;
  int epochs = 5;
  double learning_rate = 0.05;      ///< linearly decayed to 1e-4
  double subsample_threshold = 1e-3; ///< word2vec-style frequent-word dropout
  uint64_t seed = 13;
};

/// word2vec skip-gram with negative sampling, trained with plain SGD over
/// the corpus. Returns the input (center) vectors as the embedding table.
Result<EmbeddingStore> TrainSgnsEmbeddings(const Corpus& corpus,
                                           const SgnsConfig& config);

}  // namespace crew

#endif  // CREW_EMBED_SGNS_H_
