#ifndef CREW_EMBED_EMBEDDING_STORE_H_
#define CREW_EMBED_EMBEDDING_STORE_H_

#include <string>
#include <string_view>
#include <vector>

#include "crew/la/matrix.h"
#include "crew/text/vocabulary.h"

namespace crew {

/// Immutable word-vector table: a vocabulary plus one row per token.
///
/// This is the only interface the rest of the system (matchers, CREW's
/// semantic affinity) sees; whether vectors came from SGNS or PPMI+SVD is
/// irrelevant downstream.
class EmbeddingStore {
 public:
  EmbeddingStore() = default;

  /// Takes ownership of `vocab` and `vectors` (vectors.rows() == vocab.size()).
  EmbeddingStore(Vocabulary vocab, la::Matrix vectors);

  int dim() const { return vectors_.cols(); }
  int size() const { return vocab_.size(); }

  const Vocabulary& vocab() const { return vocab_; }

  /// True if `token` has a vector.
  bool Contains(std::string_view token) const {
    return vocab_.GetId(token) >= 0;
  }

  /// Vector for `token`; the zero vector for OOV tokens.
  la::Vec Lookup(std::string_view token) const;

  /// Cosine similarity of two tokens; 0 if either is OOV.
  double Similarity(std::string_view a, std::string_view b) const;

  /// Row id of `token`, or -1 when OOV. Ids are stable handles into the
  /// table; hot loops (EmbeddingBagMatcher's batch encoder) resolve each
  /// distinct token once and use the id-based accessors below, skipping
  /// the per-call hash lookups.
  int TokenId(std::string_view token) const { return vocab_.GetId(token); }

  /// Similarity by row ids; 0 if either id is negative (OOV). Identical
  /// floating-point operations to Similarity on the same tokens.
  double SimilarityById(int a, int b) const;

  /// MeanVectorInto over pre-resolved ids (negative ids = OOV, skipped).
  /// Bit-identical to MeanVectorInto on the tokens the ids came from.
  void MeanVectorOfIdsInto(const std::vector<int>& ids, la::Vec* out) const;

  /// Mean of the vectors of `tokens` (OOV tokens skipped). Zero vector when
  /// nothing is in vocabulary.
  la::Vec MeanVector(const std::vector<std::string>& tokens) const;

  /// MeanVector writing into `out` (resized to dim()), so batch scoring
  /// loops can reuse the buffer instead of allocating per pair.
  void MeanVectorInto(const std::vector<std::string>& tokens,
                      la::Vec* out) const;

  /// The `k` nearest tokens to `token` by cosine (excluding itself).
  std::vector<std::pair<std::string, double>> NearestNeighbors(
      std::string_view token, int k) const;

 private:
  Vocabulary vocab_;
  la::Matrix vectors_;  // L2-normalized rows
};

}  // namespace crew

#endif  // CREW_EMBED_EMBEDDING_STORE_H_
