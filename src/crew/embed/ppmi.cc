#include "crew/embed/ppmi.h"

#include <cmath>

#include "crew/common/logging.h"

namespace crew {

la::SymmetricSparse BuildPpmiMatrix(const CooccurrenceCounter& counts,
                                    double shift) {
  CREW_CHECK(shift >= 1.0);
  la::SymmetricSparse m(counts.vocab().size());
  const double total = static_cast<double>(counts.Total());
  if (total <= 0.0) return m;
  const double log_shift = std::log(shift);
  counts.ForEach([&](int i, int j, int64_t c) {
    const double mi = static_cast<double>(counts.Marginal(i));
    const double mj = static_cast<double>(counts.Marginal(j));
    if (mi <= 0.0 || mj <= 0.0) return;
    const double pmi =
        std::log(static_cast<double>(c) * total / (mi * mj)) - log_shift;
    if (pmi > 0.0) m.SetSymmetric(i, j, pmi);
  });
  return m;
}

}  // namespace crew
