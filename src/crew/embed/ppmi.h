#ifndef CREW_EMBED_PPMI_H_
#define CREW_EMBED_PPMI_H_

#include "crew/embed/cooccurrence.h"
#include "crew/la/svd.h"

namespace crew {

/// Builds the shifted positive PMI matrix from co-occurrence counts:
///   ppmi(i, j) = max(0, log(c_ij * C / (m_i * m_j)) - log(shift)).
/// `shift` >= 1 corresponds to SGNS's negative-sampling prior (Levy &
/// Goldberg 2014); shift = 1 is plain PPMI.
la::SymmetricSparse BuildPpmiMatrix(const CooccurrenceCounter& counts,
                                    double shift = 1.0);

}  // namespace crew

#endif  // CREW_EMBED_PPMI_H_
