#include "crew/embed/embedding_io.h"

#include <fstream>
#include <sstream>

#include "crew/common/string_util.h"

namespace crew {

std::string EmbeddingsToText(const EmbeddingStore& store) {
  std::string out = StrPrintf("%d %d\n", store.size(), store.dim());
  for (int id = 0; id < store.size(); ++id) {
    const std::string& token = store.vocab().TokenOf(id);
    out += token;
    const la::Vec v = store.Lookup(token);
    for (double x : v) out += StrPrintf(" %.6f", x);
    out.push_back('\n');
  }
  return out;
}

Result<EmbeddingStore> EmbeddingsFromText(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("embeddings: empty input");
  }
  const auto header = SplitWhitespace(line);
  int size = 0, dim = 0;
  if (header.size() != 2 || !ParseInt(header[0], &size) ||
      !ParseInt(header[1], &dim) || size < 0 || dim <= 0) {
    return Status::InvalidArgument("embeddings: malformed header");
  }
  Vocabulary vocab;
  la::Matrix vectors(size, dim);
  int row = 0;
  while (std::getline(in, line)) {
    if (StripWhitespace(line).empty()) continue;
    if (row >= size) {
      return Status::InvalidArgument("embeddings: more rows than declared");
    }
    const auto fields = SplitWhitespace(line);
    if (static_cast<int>(fields.size()) != dim + 1) {
      return Status::InvalidArgument(
          StrPrintf("embeddings: row %d has %d fields, expected %d", row,
                    static_cast<int>(fields.size()), dim + 1));
    }
    if (vocab.Contains(fields[0])) {
      return Status::InvalidArgument("embeddings: duplicate token " +
                                     fields[0]);
    }
    vocab.Add(fields[0]);
    for (int c = 0; c < dim; ++c) {
      double v = 0.0;
      if (!ParseDouble(fields[c + 1], &v)) {
        return Status::InvalidArgument(
            StrPrintf("embeddings: bad number in row %d", row));
      }
      vectors.At(row, c) = v;
    }
    ++row;
  }
  if (row != size) {
    return Status::InvalidArgument(
        StrPrintf("embeddings: declared %d rows, found %d", size, row));
  }
  return EmbeddingStore(std::move(vocab), std::move(vectors));
}

Status SaveEmbeddingsFile(const EmbeddingStore& store,
                          const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Internal("cannot write " + path);
  out << EmbeddingsToText(store);
  return out.good() ? Status::Ok() : Status::DataLoss("short write: " + path);
}

Result<EmbeddingStore> LoadEmbeddingsFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return EmbeddingsFromText(buf.str());
}

}  // namespace crew
