#ifndef CREW_EMBED_EMBEDDING_IO_H_
#define CREW_EMBED_EMBEDDING_IO_H_

#include <string>

#include "crew/common/status.h"
#include "crew/embed/embedding_store.h"

namespace crew {

/// Serializes the store in the word2vec text format:
///   <vocab_size> <dim>\n
///   <token> <v0> <v1> ... <v_dim-1>\n ...
/// Vectors are written post-normalization (the store keeps unit rows).
std::string EmbeddingsToText(const EmbeddingStore& store);

/// Parses the word2vec text format. Rejects malformed headers, dimension
/// mismatches and duplicate tokens.
Result<EmbeddingStore> EmbeddingsFromText(const std::string& text);

/// File variants.
Status SaveEmbeddingsFile(const EmbeddingStore& store,
                          const std::string& path);
Result<EmbeddingStore> LoadEmbeddingsFile(const std::string& path);

}  // namespace crew

#endif  // CREW_EMBED_EMBEDDING_IO_H_
