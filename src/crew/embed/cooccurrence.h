#ifndef CREW_EMBED_COOCCURRENCE_H_
#define CREW_EMBED_COOCCURRENCE_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "crew/data/dataset.h"
#include "crew/text/tokenizer.h"
#include "crew/text/vocabulary.h"

namespace crew {

/// A corpus is a bag of sentences; each sentence is a token sequence.
using Corpus = std::vector<std::vector<std::string>>;

/// Builds the embedding-training corpus from an EM dataset: every record
/// (either side of every pair) contributes one sentence with its attribute
/// values concatenated in schema order. This mirrors how EM papers fine-tune
/// or train embeddings on the serialized records themselves.
Corpus BuildCorpus(const Dataset& dataset, const Tokenizer& tokenizer);

/// Symmetric windowed co-occurrence counts over a fixed vocabulary.
class CooccurrenceCounter {
 public:
  /// `window` is the max distance between center and context tokens.
  CooccurrenceCounter(const Vocabulary& vocab, int window)
      : vocab_(vocab), window_(window) {}

  /// Accumulates counts from `sentence`; out-of-vocabulary tokens are
  /// skipped (they do not consume a window position).
  void AddSentence(const std::vector<std::string>& sentence);

  void AddCorpus(const Corpus& corpus);

  /// Count for the unordered pair {i, j}.
  int64_t Count(int i, int j) const;

  /// Sum over j of Count(i, j).
  int64_t Marginal(int i) const { return marginals_[i]; }

  /// Total of all pair counts.
  int64_t Total() const { return total_; }

  /// Iterates stored (i, j, count) with i <= j, in ascending (i, j) order.
  ///
  /// `counts_` is a hash map, so emitting triples in bucket order would leak
  /// hash-iteration order into callers: BuildPpmiMatrix inserts into
  /// SymmetricSparse rows in visit order, and row-entry order decides the
  /// floating-point summation order of MatVec during the eigen iteration.
  /// Sorting the keys first makes the emitted triples — and every embedding
  /// derived from them — canonical across platforms and hash
  /// implementations.
  template <typename Fn>
  void ForEach(Fn fn) const {
    std::vector<std::pair<uint64_t, int64_t>> entries(
        counts_.begin(),  // crew-lint: allow(unordered-iter): sorted below
        counts_.end());
    std::sort(entries.begin(), entries.end());
    for (const auto& [key, count] : entries) {
      fn(static_cast<int>(key >> 32), static_cast<int>(key & 0xffffffff),
         count);
    }
  }

  const Vocabulary& vocab() const { return vocab_; }

 private:
  static uint64_t Key(int i, int j) {
    if (i > j) std::swap(i, j);
    return (static_cast<uint64_t>(i) << 32) | static_cast<uint32_t>(j);
  }

  const Vocabulary& vocab_;
  int window_;
  std::unordered_map<uint64_t, int64_t> counts_;
  std::vector<int64_t> marginals_ = std::vector<int64_t>(vocab_.size(), 0);
  int64_t total_ = 0;
};

}  // namespace crew

#endif  // CREW_EMBED_COOCCURRENCE_H_
