#include "crew/embed/svd_embedding.h"

#include <cmath>

#include "crew/embed/ppmi.h"

namespace crew {

Result<EmbeddingStore> TrainSvdEmbeddings(const Corpus& corpus,
                                          const SvdEmbeddingConfig& config) {
  if (config.dim <= 0) {
    return Status::InvalidArgument("TrainSvdEmbeddings: dim must be positive");
  }
  Vocabulary full;
  for (const auto& sentence : corpus) {
    for (const auto& tok : sentence) full.Add(tok);
  }
  Vocabulary vocab = full.Pruned(config.min_count);
  if (vocab.size() == 0) {
    return Status::FailedPrecondition(
        "TrainSvdEmbeddings: vocabulary empty after pruning");
  }
  const int dim = std::min(config.dim, vocab.size());

  CooccurrenceCounter counts(vocab, config.window);
  counts.AddCorpus(corpus);
  la::SymmetricSparse ppmi = BuildPpmiMatrix(counts, config.ppmi_shift);

  la::Matrix eigvecs;
  la::Vec eigvals;
  CREW_RETURN_IF_ERROR(TruncatedSymmetricEigen(
      ppmi, dim, config.power_iterations, config.seed, &eigvecs, &eigvals));

  la::Matrix vectors(vocab.size(), dim);
  for (int r = 0; r < vocab.size(); ++r) {
    for (int c = 0; c < dim; ++c) {
      vectors.At(r, c) = eigvecs.At(r, c) * std::sqrt(std::fabs(eigvals[c]));
    }
  }
  return EmbeddingStore(std::move(vocab), std::move(vectors));
}

}  // namespace crew
