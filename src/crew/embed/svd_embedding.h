#ifndef CREW_EMBED_SVD_EMBEDDING_H_
#define CREW_EMBED_SVD_EMBEDDING_H_

#include "crew/common/status.h"
#include "crew/embed/cooccurrence.h"
#include "crew/embed/embedding_store.h"

namespace crew {

struct SvdEmbeddingConfig {
  int dim = 32;
  int window = 5;
  /// Tokens with corpus count below this are dropped from the vocabulary.
  int min_count = 2;
  /// Shift for the shifted-PPMI matrix (SGNS prior); 1.0 = plain PPMI.
  double ppmi_shift = 1.0;
  int power_iterations = 40;
  uint64_t seed = 11;
};

/// Count-based embeddings: PPMI matrix + truncated symmetric eigen
/// decomposition; vector_i = V_i * sqrt(|lambda|) (Levy & Goldberg 2014).
Result<EmbeddingStore> TrainSvdEmbeddings(const Corpus& corpus,
                                          const SvdEmbeddingConfig& config);

}  // namespace crew

#endif  // CREW_EMBED_SVD_EMBEDDING_H_
