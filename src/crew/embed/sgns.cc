#include "crew/embed/sgns.h"

#include <algorithm>
#include <cmath>

#include "crew/common/rng.h"
#include "crew/la/vector_ops.h"

namespace crew {
namespace {

// Unigram^0.75 negative-sampling table (word2vec's choice).
std::vector<int> BuildNegativeTable(const Vocabulary& vocab, int table_size) {
  std::vector<double> weights(vocab.size());
  double total = 0.0;
  for (int i = 0; i < vocab.size(); ++i) {
    weights[i] = std::pow(static_cast<double>(vocab.CountOf(i)), 0.75);
    total += weights[i];
  }
  std::vector<int> table;
  table.reserve(table_size);
  int id = 0;
  double cum = weights.empty() ? 0.0 : weights[0] / total;
  for (int t = 0; t < table_size; ++t) {
    const double target = (t + 0.5) / table_size;
    while (cum < target && id + 1 < vocab.size()) {
      ++id;
      cum += weights[id] / total;
    }
    table.push_back(id);
  }
  return table;
}

}  // namespace

Result<EmbeddingStore> TrainSgnsEmbeddings(const Corpus& corpus,
                                           const SgnsConfig& config) {
  if (config.dim <= 0 || config.epochs <= 0 || config.negative_samples < 0) {
    return Status::InvalidArgument("TrainSgnsEmbeddings: bad configuration");
  }
  Vocabulary full;
  for (const auto& sentence : corpus) {
    for (const auto& tok : sentence) full.Add(tok);
  }
  Vocabulary vocab = full.Pruned(config.min_count);
  const int v = vocab.size();
  if (v == 0) {
    return Status::FailedPrecondition(
        "TrainSgnsEmbeddings: vocabulary empty after pruning");
  }
  const int d = config.dim;
  Rng rng(config.seed);

  // Pre-map the corpus to id sequences.
  std::vector<std::vector<int>> ids;
  ids.reserve(corpus.size());
  int64_t corpus_tokens = 0;
  for (const auto& sentence : corpus) {
    std::vector<int> s;
    s.reserve(sentence.size());
    for (const auto& tok : sentence) {
      const int id = vocab.GetId(tok);
      if (id >= 0) s.push_back(id);
    }
    corpus_tokens += static_cast<int64_t>(s.size());
    if (!s.empty()) ids.push_back(std::move(s));
  }
  if (corpus_tokens == 0) {
    return Status::FailedPrecondition("TrainSgnsEmbeddings: empty corpus");
  }

  la::Matrix in(v, d), out(v, d);
  for (int r = 0; r < v; ++r) {
    for (int c = 0; c < d; ++c) {
      in.At(r, c) = (rng.Uniform() - 0.5) / d;
      // out starts at zero (word2vec convention).
    }
  }
  const std::vector<int> neg_table = BuildNegativeTable(vocab, 1 << 16);

  // Subsampling keep-probability per token id.
  std::vector<double> keep(v, 1.0);
  if (config.subsample_threshold > 0.0) {
    for (int i = 0; i < v; ++i) {
      const double f = static_cast<double>(vocab.CountOf(i)) /
                       static_cast<double>(vocab.TotalCount());
      if (f > config.subsample_threshold) {
        keep[i] = std::sqrt(config.subsample_threshold / f) +
                  config.subsample_threshold / f;
        keep[i] = std::min(1.0, keep[i]);
      }
    }
  }

  const int64_t total_steps =
      static_cast<int64_t>(config.epochs) * corpus_tokens;
  int64_t step = 0;
  std::vector<double> grad_center(d);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    for (const auto& sentence : ids) {
      // Apply subsampling per epoch pass.
      std::vector<int> kept;
      kept.reserve(sentence.size());
      for (int id : sentence) {
        if (keep[id] >= 1.0 || rng.Bernoulli(keep[id])) kept.push_back(id);
      }
      const int n = static_cast<int>(kept.size());
      for (int c = 0; c < n; ++c) {
        ++step;
        const double progress =
            static_cast<double>(step) / static_cast<double>(total_steps);
        const double lr = std::max(
            1e-4, config.learning_rate * (1.0 - progress));
        const int center = kept[c];
        const int win = 1 + rng.UniformInt(config.window);  // dynamic window
        const int lo = std::max(0, c - win);
        const int hi = std::min(n - 1, c + win);
        double* vin = in.Row(center);
        for (int t = lo; t <= hi; ++t) {
          if (t == c) continue;
          std::fill(grad_center.begin(), grad_center.end(), 0.0);
          // Positive example + negatives.
          for (int k = 0; k <= config.negative_samples; ++k) {
            int target;
            double label;
            if (k == 0) {
              target = kept[t];
              label = 1.0;
            } else {
              target =
                  neg_table[rng.UniformInt(static_cast<int>(neg_table.size()))];
              if (target == kept[t]) continue;
              label = 0.0;
            }
            double* vout = out.Row(target);
            double dot = 0.0;
            for (int x = 0; x < d; ++x) dot += vin[x] * vout[x];
            const double g = (la::Sigmoid(dot) - label) * lr;
            for (int x = 0; x < d; ++x) {
              grad_center[x] += g * vout[x];
              vout[x] -= g * vin[x];
            }
          }
          for (int x = 0; x < d; ++x) vin[x] -= grad_center[x];
        }
      }
    }
  }
  return EmbeddingStore(std::move(vocab), std::move(in));
}

}  // namespace crew
