#ifndef CREW_TEXT_STRING_SIMILARITY_H_
#define CREW_TEXT_STRING_SIMILARITY_H_

#include <string>
#include <string_view>
#include <vector>

namespace crew {

/// Edit distance with unit costs.
int LevenshteinDistance(std::string_view a, std::string_view b);

/// 1 - distance / max(len); 1.0 for two empty strings.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity in [0, 1] with the standard 0.1 prefix scale.
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// |A ∩ B| / |A ∪ B| over token multisets treated as sets.
/// 1.0 when both are empty.
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

/// |A ∩ B| / min(|A|, |B|); 1.0 when either is empty and the other too,
/// 0.0 when exactly one is empty.
double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b);

/// 2|A ∩ B| / (|A| + |B|).
double DiceCoefficient(const std::vector<std::string>& a,
                       const std::vector<std::string>& b);

/// Monge-Elkan: mean over tokens of `a` of the best Jaro-Winkler match in
/// `b`. Asymmetric; 0.0 when `a` is empty.
double MongeElkanSimilarity(const std::vector<std::string>& a,
                            const std::vector<std::string>& b);

/// Relative difference similarity for numeric strings:
/// 1 - |x-y| / max(|x|, |y|), clamped to [0,1]; falls back to
/// LevenshteinSimilarity when either side does not parse as a number.
double NumericSimilarity(std::string_view a, std::string_view b);

}  // namespace crew

#endif  // CREW_TEXT_STRING_SIMILARITY_H_
