#ifndef CREW_TEXT_VOCABULARY_H_
#define CREW_TEXT_VOCABULARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace crew {

/// Bidirectional token <-> id map with occurrence counts.
///
/// Ids are dense and stable in insertion order, which the embedding layer
/// relies on for matrix indexing.
class Vocabulary {
 public:
  static constexpr int kUnknownId = -1;

  /// Adds one occurrence of `token`, creating an id on first sight.
  /// Returns the token id.
  int Add(std::string_view token);

  /// Adds `count` occurrences.
  int AddCount(std::string_view token, int64_t count);

  /// Returns the id of `token` or kUnknownId.
  int GetId(std::string_view token) const;

  /// Returns true if `token` is present.
  bool Contains(std::string_view token) const { return GetId(token) >= 0; }

  /// Token string for `id`; requires a valid id.
  const std::string& TokenOf(int id) const;

  /// Occurrence count for `id`; requires a valid id.
  int64_t CountOf(int id) const;

  int size() const { return static_cast<int>(tokens_.size()); }

  /// Total number of occurrences across all tokens.
  int64_t TotalCount() const { return total_count_; }

  /// Returns a new vocabulary containing only tokens with count >=
  /// `min_count` (ids are re-assigned densely, preserving order).
  Vocabulary Pruned(int64_t min_count) const;

  /// Ids of the `k` most frequent tokens (ties broken by id).
  std::vector<int> TopKByCount(int k) const;

 private:
  // Iteration-order audit (crew-lint unordered-iter): the hash map is
  // lookup-only; every ordered traversal (Pruned, TopKByCount, embedding
  // matrix indexing) runs over the insertion-ordered parallel vectors, so
  // no output depends on hash-bucket order.
  std::unordered_map<std::string, int> id_by_token_;
  std::vector<std::string> tokens_;
  std::vector<int64_t> counts_;
  int64_t total_count_ = 0;
};

}  // namespace crew

#endif  // CREW_TEXT_VOCABULARY_H_
