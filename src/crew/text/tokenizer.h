#ifndef CREW_TEXT_TOKENIZER_H_
#define CREW_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace crew {

/// Tokenizer options. Defaults match what EM explainers assume: lower-cased
/// alphanumeric word units, numbers kept (model numbers are decisive in
/// product matching).
struct TokenizerOptions {
  bool lowercase = true;
  bool keep_numbers = true;
  /// Tokens shorter than this are dropped (after lowercasing).
  int min_token_length = 1;
};

/// Splits free text into word tokens.
///
/// A token is a maximal run of ASCII alphanumeric characters; everything
/// else is a separator. "Sony WH-1000XM4!" -> {"sony", "wh", "1000xm4"}.
class Tokenizer {
 public:
  Tokenizer() = default;
  explicit Tokenizer(TokenizerOptions options) : options_(options) {}

  std::vector<std::string> Tokenize(std::string_view text) const;

  /// Tokenizes into `tokens`, reusing its element strings and capacity so
  /// repeated calls (batch scoring hot loops) allocate nothing in steady
  /// state. Produces exactly the same tokens as Tokenize.
  void TokenizeInto(std::string_view text,
                    std::vector<std::string>* tokens) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  TokenizerOptions options_;
};

}  // namespace crew

#endif  // CREW_TEXT_TOKENIZER_H_
