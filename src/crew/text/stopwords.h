#ifndef CREW_TEXT_STOPWORDS_H_
#define CREW_TEXT_STOPWORDS_H_

#include <string_view>

namespace crew {

/// Returns true if `token` (already lower-cased) is in the built-in English
/// stop-word list. EM explainers typically keep stop-words in perturbations
/// but exclude them from explanation units; CREW follows that convention.
bool IsStopword(std::string_view token);

}  // namespace crew

#endif  // CREW_TEXT_STOPWORDS_H_
