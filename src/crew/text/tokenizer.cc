#include "crew/text/tokenizer.h"

#include <cctype>

namespace crew {

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (current.empty()) return;
    if (static_cast<int>(current.size()) >= options_.min_token_length) {
      bool all_digits = true;
      for (char c : current) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          all_digits = false;
          break;
        }
      }
      if (options_.keep_numbers || !all_digits) tokens.push_back(current);
    }
    current.clear();
  };
  for (char ch : text) {
    unsigned char c = static_cast<unsigned char>(ch);
    if (std::isalnum(c)) {
      current.push_back(options_.lowercase
                            ? static_cast<char>(std::tolower(c))
                            : ch);
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

}  // namespace crew
