#include "crew/text/tokenizer.h"

#include <cctype>

namespace crew {

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  TokenizeInto(text, &tokens);
  return tokens;
}

void Tokenizer::TokenizeInto(std::string_view text,
                             std::vector<std::string>* tokens) const {
  size_t count = 0;
  std::string* current = nullptr;  // the in-progress slot, if any
  auto flush = [&] {
    if (current == nullptr) return;
    bool keep = static_cast<int>(current->size()) >= options_.min_token_length;
    if (keep && !options_.keep_numbers) {
      bool all_digits = true;
      for (char c : *current) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          all_digits = false;
          break;
        }
      }
      keep = !all_digits;
    }
    if (keep) ++count;  // otherwise the slot is rewritten by the next token
    current = nullptr;
  };
  for (char ch : text) {
    unsigned char c = static_cast<unsigned char>(ch);
    if (std::isalnum(c)) {
      if (current == nullptr) {
        if (count == tokens->size()) tokens->emplace_back();
        current = &(*tokens)[count];
        current->clear();
      }
      current->push_back(options_.lowercase ? static_cast<char>(std::tolower(c))
                                            : ch);
    } else {
      flush();
    }
  }
  flush();
  tokens->resize(count);
}

}  // namespace crew
