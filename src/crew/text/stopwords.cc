#include "crew/text/stopwords.h"

#include <array>
#include <string_view>

namespace crew {
namespace {

// Compact English stop-word list; kept sorted for binary search.
constexpr std::array<std::string_view, 48> kStopwords = {
    "a",    "an",   "and",  "are",  "as",   "at",   "be",   "by",
    "for",  "from", "had",  "has",  "have", "he",   "her",  "his",
    "i",    "if",   "in",   "into", "is",   "it",   "its",  "no",
    "not",  "of",   "on",   "or",   "our",  "she",  "so",   "that",
    "the",  "their", "them", "then", "they", "this", "to",  "was",
    "we",   "were", "what", "when", "which", "will", "with", "you",
};

}  // namespace

bool IsStopword(std::string_view token) {
  int lo = 0, hi = static_cast<int>(kStopwords.size()) - 1;
  while (lo <= hi) {
    int mid = (lo + hi) / 2;
    if (kStopwords[mid] == token) return true;
    if (kStopwords[mid] < token) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return false;
}

}  // namespace crew
