#include "crew/text/vocabulary.h"

#include <algorithm>

#include "crew/common/dcheck.h"

namespace crew {

int Vocabulary::Add(std::string_view token) { return AddCount(token, 1); }

int Vocabulary::AddCount(std::string_view token, int64_t count) {
  CREW_DCHECK(count >= 0);
  auto it = id_by_token_.find(std::string(token));
  int id;
  if (it == id_by_token_.end()) {
    id = static_cast<int>(tokens_.size());
    tokens_.emplace_back(token);
    counts_.push_back(0);
    id_by_token_.emplace(tokens_.back(), id);
  } else {
    id = it->second;
  }
  counts_[id] += count;
  total_count_ += count;
  return id;
}

int Vocabulary::GetId(std::string_view token) const {
  auto it = id_by_token_.find(std::string(token));
  return it == id_by_token_.end() ? kUnknownId : it->second;
}

const std::string& Vocabulary::TokenOf(int id) const {
  CREW_CHECK(id >= 0 && id < size());
  return tokens_[id];
}

int64_t Vocabulary::CountOf(int id) const {
  CREW_CHECK(id >= 0 && id < size());
  return counts_[id];
}

Vocabulary Vocabulary::Pruned(int64_t min_count) const {
  Vocabulary out;
  for (int id = 0; id < size(); ++id) {
    if (counts_[id] >= min_count) out.AddCount(tokens_[id], counts_[id]);
  }
  return out;
}

std::vector<int> Vocabulary::TopKByCount(int k) const {
  std::vector<int> ids(tokens_.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<int>(i);
  std::sort(ids.begin(), ids.end(), [&](int a, int b) {
    if (counts_[a] != counts_[b]) return counts_[a] > counts_[b];
    return a < b;
  });
  if (k >= 0 && k < static_cast<int>(ids.size())) ids.resize(k);
  return ids;
}

}  // namespace crew
