#include "crew/text/string_similarity.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "crew/common/string_util.h"

namespace crew {

int LevenshteinDistance(std::string_view a, std::string_view b) {
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  if (n == 0) return m;
  if (m == 0) return n;
  std::vector<int> prev(m + 1), cur(m + 1);
  for (int j = 0; j <= m; ++j) prev[j] = j;
  for (int i = 1; i <= n; ++i) {
    cur[0] = i;
    for (int j = 1; j <= m; ++j) {
      const int cost = a[i - 1] == b[j - 1] ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  const int window = std::max(0, std::max(n, m) / 2 - 1);
  std::vector<bool> a_match(n, false), b_match(m, false);
  int matches = 0;
  for (int i = 0; i < n; ++i) {
    const int lo = std::max(0, i - window);
    const int hi = std::min(m - 1, i + window);
    for (int j = lo; j <= hi; ++j) {
      if (!b_match[j] && a[i] == b[j]) {
        a_match[i] = b_match[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions among matched characters.
  int transpositions = 0;
  int j = 0;
  for (int i = 0; i < n; ++i) {
    if (!a_match[i]) continue;
    while (!b_match[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  const double mm = matches;
  const double jaro = (mm / n + mm / m + (mm - transpositions / 2.0) / mm) / 3.0;
  // Winkler prefix boost.
  int prefix = 0;
  for (int i = 0; i < std::min({n, m, 4}); ++i) {
    if (a[i] == b[i]) {
      ++prefix;
    } else {
      break;
    }
  }
  return jaro + prefix * 0.1 * (1.0 - jaro);
}

namespace {

std::unordered_set<std::string_view> ToSet(const std::vector<std::string>& v) {
  std::unordered_set<std::string_view> s;
  s.reserve(v.size());
  for (const auto& t : v) s.insert(t);
  return s;
}

int IntersectionSize(const std::unordered_set<std::string_view>& set_a,
                     const std::unordered_set<std::string_view>& set_b) {
  const auto& small = set_a.size() <= set_b.size() ? set_a : set_b;
  const auto& large = set_a.size() <= set_b.size() ? set_b : set_a;
  int n = 0;
  // crew-lint: allow(unordered-iter): accumulates an order-independent
  // integer count; no output depends on visit order.
  for (const auto& t : small) {
    if (large.count(t) > 0) ++n;
  }
  return n;
}

}  // namespace

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  const auto sa = ToSet(a), sb = ToSet(b);
  if (sa.empty() && sb.empty()) return 1.0;
  const int inter = IntersectionSize(sa, sb);
  const int uni = static_cast<int>(sa.size() + sb.size()) - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / uni;
}

double OverlapCoefficient(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) {
  const auto sa = ToSet(a), sb = ToSet(b);
  if (sa.empty() && sb.empty()) return 1.0;
  if (sa.empty() || sb.empty()) return 0.0;
  const int inter = IntersectionSize(sa, sb);
  return static_cast<double>(inter) /
         static_cast<double>(std::min(sa.size(), sb.size()));
}

double DiceCoefficient(const std::vector<std::string>& a,
                       const std::vector<std::string>& b) {
  const auto sa = ToSet(a), sb = ToSet(b);
  if (sa.empty() && sb.empty()) return 1.0;
  const int inter = IntersectionSize(sa, sb);
  return 2.0 * inter / static_cast<double>(sa.size() + sb.size());
}

double MongeElkanSimilarity(const std::vector<std::string>& a,
                            const std::vector<std::string>& b) {
  if (a.empty() || b.empty()) return 0.0;
  double total = 0.0;
  for (const auto& ta : a) {
    double best = 0.0;
    for (const auto& tb : b) {
      best = std::max(best, JaroWinklerSimilarity(ta, tb));
    }
    total += best;
  }
  return total / static_cast<double>(a.size());
}

double NumericSimilarity(std::string_view a, std::string_view b) {
  double x = 0.0, y = 0.0;
  if (!ParseDouble(a, &x) || !ParseDouble(b, &y)) {
    return LevenshteinSimilarity(a, b);
  }
  const double denom = std::max(std::fabs(x), std::fabs(y));
  if (denom == 0.0) return 1.0;
  const double sim = 1.0 - std::fabs(x - y) / denom;
  return std::clamp(sim, 0.0, 1.0);
}

}  // namespace crew
