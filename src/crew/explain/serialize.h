#ifndef CREW_EXPLAIN_SERIALIZE_H_
#define CREW_EXPLAIN_SERIALIZE_H_

#include <string>

#include "crew/core/cluster_explanation.h"
#include "crew/explain/attribution.h"

namespace crew {

/// Escapes a string for inclusion in a JSON document (quotes, backslashes,
/// control characters).
std::string JsonEscape(const std::string& s);

/// Serializes a word-level explanation as a self-describing JSON object:
/// { "base_score": ..., "surrogate_r2": ..., "attributions": [
///   {"token": ..., "side": "left", "attribute": 0, "position": 1,
///    "weight": ...}, ... ] }
/// Downstream UIs and notebooks consume this; the format is stable.
std::string WordExplanationToJson(const WordExplanation& explanation);

/// Serializes a CREW cluster explanation, including the member word
/// indices of each unit so UIs can drill down.
std::string ClusterExplanationToJson(const ClusterExplanation& explanation);

}  // namespace crew

#endif  // CREW_EXPLAIN_SERIALIZE_H_
