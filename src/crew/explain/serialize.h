#ifndef CREW_EXPLAIN_SERIALIZE_H_
#define CREW_EXPLAIN_SERIALIZE_H_

#include <string>

#include "crew/core/cluster_explanation.h"
#include "crew/explain/attribution.h"

namespace crew {

/// Escapes a string for inclusion in a JSON document (quotes, backslashes,
/// control characters).
std::string JsonEscape(const std::string& s);

/// Formats a double as a JSON number that round-trips bit-exactly (%.17g).
/// Non-finite values, which JSON cannot represent, degrade to "null";
/// readers map null back to NaN. Every CREW serializer (batch sinks and
/// the streaming JSONL layer) uses this one formatter so the two paths
/// are byte-identical by construction.
std::string JsonDouble(double v);

/// Serializes a word-level explanation as a self-describing JSON object:
/// { "base_score": ..., "surrogate_r2": ..., "attributions": [
///   {"token": ..., "side": "left", "attribute": 0, "position": 1,
///    "weight": ...}, ... ] }
/// Downstream UIs and notebooks consume this; the format is stable.
std::string WordExplanationToJson(const WordExplanation& explanation);

/// Serializes a CREW cluster explanation, including the member word
/// indices of each unit so UIs can drill down.
std::string ClusterExplanationToJson(const ClusterExplanation& explanation);

}  // namespace crew

#endif  // CREW_EXPLAIN_SERIALIZE_H_
