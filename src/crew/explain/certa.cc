#include "crew/explain/certa.h"

#include <unordered_set>

#include "crew/common/metrics.h"
#include "crew/common/timer.h"
#include "crew/common/trace.h"
#include "crew/explain/batch_scorer.h"
#include "crew/explain/token_view.h"

namespace crew {

CertaExplainer::CertaExplainer(const Dataset& support, CertaConfig config)
    : config_(config) {
  Tokenizer tokenizer;
  const Schema& schema = support.schema();
  std::vector<std::unordered_set<std::string>> seen(schema.size());
  attribute_pools_.resize(schema.size());
  for (const auto& pair : support.pairs()) {
    for (Side side : {Side::kLeft, Side::kRight}) {
      for (int a = 0; a < schema.size(); ++a) {
        for (const auto& tok :
             tokenizer.Tokenize(pair.side(side).values[a])) {
          if (seen[a].insert(tok).second) {
            attribute_pools_[a].push_back(tok);
          }
        }
      }
    }
  }
}

Result<WordExplanation> CertaExplainer::Explain(const Matcher& matcher,
                                                const RecordPair& pair,
                                                uint64_t seed) const {
  CREW_TRACE_SPAN("explain/certa");
  ScopedMetricStage metric_stage("attribution");
  WallTimer timer;
  Tokenizer tokenizer;
  PairTokenView view(AnonymousSchema(pair), tokenizer, pair);
  WordExplanation out;
  out.base_score = matcher.PredictProba(pair);
  if (static_cast<int>(attribute_pools_.size()) <
      static_cast<int>(pair.left.values.size())) {
    return Status::InvalidArgument(
        "CertaExplainer: support schema narrower than the explained pair");
  }

  Rng rng(seed);
  // Substitution draws happen here on the caller thread (preserving the RNG
  // order of the per-token loop); the perturbed pairs are scored in one
  // batch, with `owner` recording which token each pair belongs to.
  std::vector<RecordPair> perturbed;
  std::vector<int> owner;
  for (int i = 0; i < view.size(); ++i) {
    const TokenRef& ref = view.token(i);
    const auto& pool = attribute_pools_[ref.attribute];
    if (pool.empty() || config_.substitutions_per_token <= 0) continue;
    for (int s = 0; s < config_.substitutions_per_token; ++s) {
      const std::string& replacement =
          pool[rng.UniformInt(static_cast<int>(pool.size()))];
      if (replacement == ref.text) continue;
      perturbed.push_back(view.MaterializeWithSubstitution(i, replacement));
      owner.push_back(i);
    }
  }
  const BatchScorer scorer(matcher);
  std::vector<double> scores;
  scorer.ScorePairs(perturbed, &scores);
  std::vector<double> sums(view.size(), 0.0);
  std::vector<int> used(view.size(), 0);
  for (size_t k = 0; k < perturbed.size(); ++k) {
    sums[owner[k]] += scores[k];
    ++used[owner[k]];
  }
  out.attributions.reserve(view.size());
  for (int i = 0; i < view.size(); ++i) {
    const double weight =
        used[i] > 0 ? out.base_score - sums[i] / used[i] : 0.0;
    out.attributions.push_back({view.token(i), weight});
  }
  out.runtime_ms = timer.ElapsedMillis();
  return out;
}

}  // namespace crew
