#include "crew/explain/certa.h"

#include <unordered_set>

#include "crew/common/timer.h"
#include "crew/explain/token_view.h"

namespace crew {

CertaExplainer::CertaExplainer(const Dataset& support, CertaConfig config)
    : config_(config) {
  Tokenizer tokenizer;
  const Schema& schema = support.schema();
  std::vector<std::unordered_set<std::string>> seen(schema.size());
  attribute_pools_.resize(schema.size());
  for (const auto& pair : support.pairs()) {
    for (Side side : {Side::kLeft, Side::kRight}) {
      for (int a = 0; a < schema.size(); ++a) {
        for (const auto& tok :
             tokenizer.Tokenize(pair.side(side).values[a])) {
          if (seen[a].insert(tok).second) {
            attribute_pools_[a].push_back(tok);
          }
        }
      }
    }
  }
}

Result<WordExplanation> CertaExplainer::Explain(const Matcher& matcher,
                                                const RecordPair& pair,
                                                uint64_t seed) const {
  WallTimer timer;
  Tokenizer tokenizer;
  PairTokenView view(AnonymousSchema(pair), tokenizer, pair);
  WordExplanation out;
  out.base_score = matcher.PredictProba(pair);
  if (static_cast<int>(attribute_pools_.size()) <
      static_cast<int>(pair.left.values.size())) {
    return Status::InvalidArgument(
        "CertaExplainer: support schema narrower than the explained pair");
  }

  Rng rng(seed);
  out.attributions.reserve(view.size());
  for (int i = 0; i < view.size(); ++i) {
    const TokenRef& ref = view.token(i);
    const auto& pool = attribute_pools_[ref.attribute];
    double weight = 0.0;
    if (!pool.empty() && config_.substitutions_per_token > 0) {
      double sum = 0.0;
      int used = 0;
      for (int s = 0; s < config_.substitutions_per_token; ++s) {
        const std::string& replacement =
            pool[rng.UniformInt(static_cast<int>(pool.size()))];
        if (replacement == ref.text) continue;
        sum += matcher.PredictProba(
            view.MaterializeWithSubstitution(i, replacement));
        ++used;
      }
      if (used > 0) weight = out.base_score - sum / used;
    }
    out.attributions.push_back({ref, weight});
  }
  out.runtime_ms = timer.ElapsedMillis();
  return out;
}

}  // namespace crew
