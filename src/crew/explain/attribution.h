#ifndef CREW_EXPLAIN_ATTRIBUTION_H_
#define CREW_EXPLAIN_ATTRIBUTION_H_

#include <string>
#include <vector>

#include "crew/common/status.h"
#include "crew/explain/token_view.h"
#include "crew/model/matcher.h"

namespace crew {

/// One word unit's contribution to the match probability. Positive weights
/// push toward "match", negative toward "non-match".
struct WordAttribution {
  TokenRef token;
  double weight = 0.0;
};

/// Word-level explanation of one prediction (the common currency between
/// every baseline explainer, CREW's importance stage, and the evaluation
/// metrics).
struct WordExplanation {
  std::vector<WordAttribution> attributions;
  double base_score = 0.0;    ///< matcher score on the unperturbed pair
  double surrogate_r2 = 0.0;  ///< surrogate fit quality, if applicable
  double runtime_ms = 0.0;

  /// Indices of attributions sorted by decreasing |weight|.
  std::vector<int> RankedByMagnitude() const;

  /// Indices sorted by decreasing support for the *predicted* class
  /// (descending weight when base_score >= threshold, ascending otherwise).
  std::vector<int> RankedBySupport(double threshold = 0.5) const;

  /// The `k` token texts with largest |weight| (for stability metrics).
  std::vector<std::string> TopTokens(int k) const;
};

/// Model-agnostic post-hoc explainer interface. Implementations may only
/// interact with the matcher through Matcher::PredictProba.
class Explainer {
 public:
  virtual ~Explainer() = default;

  /// Explains `matcher`'s prediction on `pair`. `seed` makes the sampling
  /// deterministic; re-running with a different seed measures stability.
  virtual Result<WordExplanation> Explain(const Matcher& matcher,
                                          const RecordPair& pair,
                                          uint64_t seed) const = 0;

  virtual std::string Name() const = 0;
};

}  // namespace crew

#endif  // CREW_EXPLAIN_ATTRIBUTION_H_
