#ifndef CREW_EXPLAIN_PERTURBATION_H_
#define CREW_EXPLAIN_PERTURBATION_H_

#include <vector>

#include "crew/common/rng.h"
#include "crew/common/status.h"
#include "crew/explain/batch_scorer.h"
#include "crew/explain/token_view.h"
#include "crew/model/matcher.h"

namespace crew {

/// One perturbed sample in the interpretable (binary keep-mask) space.
struct PerturbationSample {
  std::vector<bool> keep;  ///< size == view.size(); always true outside the
                           ///< perturbable subset
  double score = 0.0;      ///< matcher score on the materialized pair
  double kernel_weight = 1.0;
};

struct PerturbationConfig {
  int num_samples = 256;
  /// LIME exponential kernel width over the fraction of removed tokens:
  /// weight = exp(-(removed/m)^2 / width^2).
  double kernel_width = 0.75;
};

/// Draws LIME-style token-drop perturbations restricted to `perturbable`
/// (tokens outside it are always kept), scores the materialized pairs
/// through the batch scoring engine, and computes kernel weights. The
/// number of removed tokens per sample is uniform on [1, |perturbable|],
/// matching lime_text's sampler. All mask generation happens on the caller
/// thread, so results are bit-identical for any scoring thread count.
/// `scorer` must wrap the same view passed here.
std::vector<PerturbationSample> SampleTokenDrops(
    const BatchScorer& scorer, const PairTokenView& view,
    const std::vector<int>& perturbable, const PerturbationConfig& config,
    Rng& rng);

/// Legacy convenience: scores through a throwaway BatchScorer over
/// `matcher` + `view`.
std::vector<PerturbationSample> SampleTokenDrops(
    const Matcher& matcher, const PairTokenView& view,
    const std::vector<int>& perturbable, const PerturbationConfig& config,
    Rng& rng);

/// Weighted ridge surrogate fitted on keep-mask samples.
struct SurrogateFit {
  /// One coefficient per entry of `perturbable`, in the same order.
  std::vector<double> coefficients;
  double intercept = 0.0;
  double r2 = 0.0;
};

/// Fits score ~ ridge(keep indicators restricted to `perturbable`) with the
/// samples' kernel weights. This is the local linear model every
/// LIME-family explainer reads its attributions from.
Status FitKeepMaskSurrogate(const std::vector<PerturbationSample>& samples,
                            const std::vector<int>& perturbable,
                            double lambda, SurrogateFit* fit);

}  // namespace crew

#endif  // CREW_EXPLAIN_PERTURBATION_H_
