#include "crew/explain/random_explainer.h"

#include "crew/common/metrics.h"
#include "crew/common/rng.h"
#include "crew/common/timer.h"
#include "crew/common/trace.h"
#include "crew/explain/token_view.h"

namespace crew {

Result<WordExplanation> RandomExplainer::Explain(const Matcher& matcher,
                                                 const RecordPair& pair,
                                                 uint64_t seed) const {
  CREW_TRACE_SPAN("explain/random");
  ScopedMetricStage metric_stage("attribution");
  WallTimer timer;
  Tokenizer tokenizer;
  PairTokenView view(AnonymousSchema(pair), tokenizer, pair);
  WordExplanation out;
  out.base_score = matcher.PredictProba(pair);
  Rng rng(seed);
  out.attributions.reserve(view.size());
  for (int i = 0; i < view.size(); ++i) {
    out.attributions.push_back({view.token(i), rng.Normal()});
  }
  out.runtime_ms = timer.ElapsedMillis();
  return out;
}

}  // namespace crew
