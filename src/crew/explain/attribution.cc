#include "crew/explain/attribution.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace crew {

std::vector<int> WordExplanation::RankedByMagnitude() const {
  std::vector<int> order(attributions.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return std::fabs(attributions[a].weight) >
           std::fabs(attributions[b].weight);
  });
  return order;
}

std::vector<int> WordExplanation::RankedBySupport(double threshold) const {
  const bool predicted_match = base_score >= threshold;
  std::vector<int> order(attributions.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return predicted_match
               ? attributions[a].weight > attributions[b].weight
               : attributions[a].weight < attributions[b].weight;
  });
  return order;
}

std::vector<std::string> WordExplanation::TopTokens(int k) const {
  std::vector<std::string> out;
  for (int idx : RankedByMagnitude()) {
    if (static_cast<int>(out.size()) >= k) break;
    out.push_back(attributions[idx].token.text);
  }
  return out;
}

}  // namespace crew
