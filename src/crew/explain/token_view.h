#ifndef CREW_EXPLAIN_TOKEN_VIEW_H_
#define CREW_EXPLAIN_TOKEN_VIEW_H_

#include <string>
#include <vector>

#include "crew/data/record.h"
#include "crew/data/schema.h"
#include "crew/text/tokenizer.h"

namespace crew {

/// Provenance of one word unit inside a record pair.
struct TokenRef {
  Side side = Side::kLeft;
  int attribute = 0;  ///< index into the schema
  int position = 0;   ///< token index within the attribute value
  std::string text;   ///< normalized token

  friend bool operator==(const TokenRef& a, const TokenRef& b) {
    return a.side == b.side && a.attribute == b.attribute &&
           a.position == b.position && a.text == b.text;
  }
};

/// Builds a positional schema ("attr0", "attr1", ...) matching the arity of
/// `pair`. Explainers only need attribute *identity*, not names or types, so
/// they can operate on bare pairs without the training-time schema.
Schema AnonymousSchema(const RecordPair& pair);

/// The interpretable representation all explainers share: the pair as an
/// ordered list of word units with provenance, plus the ability to
/// materialize perturbed copies (LIME-style token dropping and LEMON-style
/// token injection into the opposite record).
class PairTokenView {
 public:
  PairTokenView(const Schema& schema, const Tokenizer& tokenizer,
                const RecordPair& pair);

  int size() const { return static_cast<int>(tokens_.size()); }
  const TokenRef& token(int i) const { return tokens_[i]; }
  const std::vector<TokenRef>& tokens() const { return tokens_; }
  const RecordPair& original() const { return pair_; }
  const Schema& schema() const { return schema_; }

  /// Indices of the units on `side`.
  std::vector<int> IndicesOnSide(Side side) const;

  /// Rebuilds a RecordPair keeping only units with keep[i] == true.
  /// Attribute values are reconstructed by joining surviving tokens with
  /// single spaces (the standard interpretable-text simplification).
  RecordPair Materialize(const std::vector<bool>& keep) const;

  /// Materialize writing into `out`, reusing its attribute-value strings
  /// (capacity preserved across calls). This is the batch scoring engine's
  /// hot loop: materializing thousands of keep-masks through one reused
  /// RecordPair slot performs no per-sample allocation in steady state.
  void MaterializeInto(const std::vector<bool>& keep, RecordPair* out) const;

  /// Like Materialize, additionally appending the text of every unit in
  /// `inject` to the *opposite* record, under the same attribute. This is
  /// the counterfactual-injection operator of Landmark / LEMON.
  RecordPair MaterializeWithInjection(const std::vector<bool>& keep,
                                      const std::vector<bool>& inject) const;

  /// Buffer-reusing form of MaterializeWithInjection (see MaterializeInto).
  void MaterializeWithInjectionInto(const std::vector<bool>& keep,
                                    const std::vector<bool>& inject,
                                    RecordPair* out) const;

  /// Rebuilds the pair with unit `index`'s text replaced by `replacement`
  /// (all other units kept verbatim). Used by counterfactual-substitution
  /// explainers (CERTA).
  RecordPair MaterializeWithSubstitution(int index,
                                         const std::string& replacement) const;

 private:
  Schema schema_;
  RecordPair pair_;
  std::vector<TokenRef> tokens_;
};

}  // namespace crew

#endif  // CREW_EXPLAIN_TOKEN_VIEW_H_
