#ifndef CREW_EXPLAIN_LIME_H_
#define CREW_EXPLAIN_LIME_H_

#include "crew/explain/attribution.h"
#include "crew/explain/perturbation.h"

namespace crew {

struct LimeConfig {
  PerturbationConfig perturbation;
  double ridge_lambda = 1.0;
};

/// LIME (Ribeiro et al. 2016) applied to the serialized record pair:
/// token-drop perturbations over *all* tokens of both records, an
/// exponential-kernel-weighted ridge surrogate, coefficients as word
/// attributions. The schema-agnostic baseline the EM-specific explainers
/// improve upon.
class LimeExplainer : public Explainer {
 public:
  explicit LimeExplainer(LimeConfig config = LimeConfig())
      : config_(config) {}

  Result<WordExplanation> Explain(const Matcher& matcher,
                                  const RecordPair& pair,
                                  uint64_t seed) const override;

  std::string Name() const override { return "lime"; }

 private:
  LimeConfig config_;
};

}  // namespace crew

#endif  // CREW_EXPLAIN_LIME_H_
