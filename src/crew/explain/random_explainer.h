#ifndef CREW_EXPLAIN_RANDOM_EXPLAINER_H_
#define CREW_EXPLAIN_RANDOM_EXPLAINER_H_

#include "crew/explain/attribution.h"

namespace crew {

/// Sanity-check baseline: i.i.d. N(0, 1) word weights. Every faithfulness
/// metric should beat this by a wide margin; it anchors the bottom of the
/// comparison tables.
class RandomExplainer : public Explainer {
 public:
  RandomExplainer() = default;

  Result<WordExplanation> Explain(const Matcher& matcher,
                                  const RecordPair& pair,
                                  uint64_t seed) const override;

  std::string Name() const override { return "random"; }
};

}  // namespace crew

#endif  // CREW_EXPLAIN_RANDOM_EXPLAINER_H_
