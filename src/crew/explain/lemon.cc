#include "crew/explain/lemon.h"

#include <cmath>

#include "crew/common/metrics.h"
#include "crew/common/timer.h"
#include "crew/common/trace.h"
#include "crew/explain/batch_scorer.h"
#include "crew/la/ridge.h"

namespace crew {

Result<WordExplanation> LemonExplainer::Explain(const Matcher& matcher,
                                                const RecordPair& pair,
                                                uint64_t seed) const {
  CREW_TRACE_SPAN("explain/lemon");
  ScopedMetricStage metric_stage("attribution");
  WallTimer timer;
  Tokenizer tokenizer;
  PairTokenView view(AnonymousSchema(pair), tokenizer, pair);
  WordExplanation out;
  out.base_score = matcher.PredictProba(pair);
  if (view.size() == 0) {
    out.runtime_ms = timer.ElapsedMillis();
    return out;
  }
  out.attributions.resize(view.size());
  for (int i = 0; i < view.size(); ++i) {
    out.attributions[i] = {view.token(i), 0.0};
  }

  Rng rng(seed);
  double r2_sum = 0.0;
  int r2_count = 0;
  const int samples_per_side =
      std::max(8, config_.perturbation.num_samples / 2);

  for (Side side : {Side::kLeft, Side::kRight}) {
    const std::vector<int> own = view.IndicesOnSide(side);
    if (own.empty()) continue;
    const int m = static_cast<int>(own.size());
    // Feature layout: [0, m) keep indicators, [m, 2m) inject indicators
    // (own token counterfactually copied into the other record).
    const int f_count = 2 * m;
    const int n = samples_per_side;
    la::Matrix x(n, f_count);
    la::Vec y(n), w(n);
    std::vector<int> pool = own;
    // Masks are drawn here on the caller thread, then scored in one batch.
    std::vector<std::vector<bool>> keeps, injects;
    keeps.reserve(n);
    injects.reserve(n);
    for (int s = 0; s < n; ++s) {
      std::vector<bool> keep(view.size(), true);
      std::vector<bool> injected(view.size(), false);
      const int n_remove = rng.UniformInt(m + 1);  // 0 drops allowed: pure
                                                   // injection samples
      for (int i = 0; i < n_remove; ++i) {
        const int j = i + rng.UniformInt(m - i);
        std::swap(pool[i], pool[j]);
        keep[pool[i]] = false;
      }
      for (int j = 0; j < m; ++j) {
        x.At(s, j) = keep[own[j]] ? 1.0 : 0.0;
        // A dropped token cannot simultaneously be copied: LEMON's
        // interpretable space treats the token as absent entirely.
        if (keep[own[j]] && rng.Bernoulli(config_.injection_probability)) {
          injected[own[j]] = true;
          x.At(s, m + j) = 1.0;
        }
      }
      const double removed_fraction =
          static_cast<double>(n_remove) / static_cast<double>(m);
      const double kw = config_.perturbation.kernel_width;
      w[s] = std::exp(-(removed_fraction * removed_fraction) / (kw * kw));
      keeps.push_back(std::move(keep));
      injects.push_back(std::move(injected));
    }
    const BatchScorer scorer(matcher, view);
    std::vector<double> scores;
    scorer.ScoreInjectionMasks(keeps, injects, &scores);
    for (int s = 0; s < n; ++s) y[s] = scores[s];
    la::RidgeModel model;
    CREW_RETURN_IF_ERROR(FitRidge(x, y, w, config_.ridge_lambda, &model));
    r2_sum += model.r2;
    ++r2_count;
    for (int j = 0; j < m; ++j) {
      const double drop_coef = model.coefficients[j];
      const double inject_coef = model.coefficients[m + j];
      out.attributions[own[j]].weight =
          drop_coef + config_.potential_weight * inject_coef;
    }
  }
  out.surrogate_r2 = r2_count > 0 ? r2_sum / r2_count : 0.0;
  out.runtime_ms = timer.ElapsedMillis();
  return out;
}

}  // namespace crew
