#include "crew/explain/shap.h"

#include <cmath>

#include "crew/common/metrics.h"
#include "crew/common/rng.h"
#include "crew/common/timer.h"
#include "crew/common/trace.h"
#include "crew/explain/batch_scorer.h"
#include "crew/la/ridge.h"

namespace crew {

Result<WordExplanation> KernelShapExplainer::Explain(const Matcher& matcher,
                                                     const RecordPair& pair,
                                                     uint64_t seed) const {
  CREW_TRACE_SPAN("explain/shap");
  ScopedMetricStage metric_stage("attribution");
  WallTimer timer;
  Tokenizer tokenizer;
  PairTokenView view(AnonymousSchema(pair), tokenizer, pair);
  WordExplanation out;
  out.base_score = matcher.PredictProba(pair);
  const int m = view.size();
  if (m == 0) {
    out.runtime_ms = timer.ElapsedMillis();
    return out;
  }
  if (m == 1) {
    // Single token: its Shapley value is exactly f(x) - f(empty).
    std::vector<bool> none(1, false);
    const double empty = matcher.PredictProba(view.Materialize(none));
    out.attributions.push_back({view.token(0), out.base_score - empty});
    out.runtime_ms = timer.ElapsedMillis();
    return out;
  }

  // Shapley kernel over coalition sizes 1..m-1 (size 0 and m get infinite
  // weight in theory; we include them as heavily weighted anchor rows).
  std::vector<double> size_weights(m, 0.0);  // index = coalition size
  for (int s = 1; s <= m - 1; ++s) {
    // pi(s) ∝ (m - 1) / (C(m, s) * s * (m - s)); compute via logs to
    // avoid overflow, only relative values matter for sampling.
    double log_comb = 0.0;
    for (int i = 1; i <= s; ++i) {
      log_comb += std::log(static_cast<double>(m - s + i)) -
                  std::log(static_cast<double>(i));
    }
    size_weights[s] = std::exp(std::log(static_cast<double>(m - 1)) -
                               log_comb - std::log(static_cast<double>(s)) -
                               std::log(static_cast<double>(m - s)));
  }

  Rng rng(seed);
  const int n = std::max(8, config_.num_samples);
  const int rows = n + 2;  // + empty and full anchors
  la::Matrix x(rows, m);
  la::Vec y(rows), w(rows);
  std::vector<int> pool(m);
  for (int i = 0; i < m; ++i) pool[i] = i;
  // All coalition sampling happens here on the caller thread; the masks are
  // then scored in one batch (the empty-coalition anchor rides along as the
  // final mask).
  std::vector<std::vector<bool>> keeps;
  keeps.reserve(n + 1);
  for (int r = 0; r < n; ++r) {
    const int s = rng.Categorical(size_weights);
    std::vector<bool> keep(m, false);
    for (int i = 0; i < s; ++i) {
      const int j = i + rng.UniformInt(m - i);
      std::swap(pool[i], pool[j]);
      keep[pool[i]] = true;
      x.At(r, pool[i]) = 1.0;
    }
    keeps.push_back(std::move(keep));
    w[r] = 1.0;  // kernel already applied through the sampling distribution
  }
  keeps.emplace_back(m, false);
  const BatchScorer scorer(matcher, view);
  std::vector<double> scores;
  scorer.ScoreKeepMasks(keeps, &scores);
  for (int r = 0; r < n; ++r) y[r] = scores[r];
  // Anchor rows: empty coalition and full coalition with large weights so
  // the surrogate respects f(empty) and f(x) (SHAP's exact constraints).
  const double anchor_weight = 100.0 * n;
  y[n] = scores[n];
  w[n] = anchor_weight;
  for (int j = 0; j < m; ++j) x.At(n + 1, j) = 1.0;
  y[n + 1] = out.base_score;
  w[n + 1] = anchor_weight;

  la::RidgeModel model;
  CREW_RETURN_IF_ERROR(FitRidge(x, y, w, config_.ridge_lambda, &model));
  out.surrogate_r2 = model.r2;
  out.attributions.reserve(m);
  for (int i = 0; i < m; ++i) {
    out.attributions.push_back({view.token(i), model.coefficients[i]});
  }
  out.runtime_ms = timer.ElapsedMillis();
  return out;
}

}  // namespace crew
