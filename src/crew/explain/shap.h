#ifndef CREW_EXPLAIN_SHAP_H_
#define CREW_EXPLAIN_SHAP_H_

#include "crew/explain/attribution.h"
#include "crew/explain/perturbation.h"

namespace crew {

struct KernelShapConfig {
  int num_samples = 256;
  /// Ridge added to the weighted least squares for numerical stability.
  double ridge_lambda = 1e-3;
};

/// KernelSHAP (Lundberg & Lee 2017) over token-presence coalitions.
///
/// Coalition sizes s are drawn proportionally to the Shapley kernel
/// pi(s) = (M-1) / (C(M,s) * s * (M-s)), members uniformly within a size;
/// a weighted ridge regression on the coalition indicators estimates the
/// Shapley values. The empty coalition (all tokens dropped) anchors the
/// base value. Included because SHAP is the other generic attribution
/// family EM explainability papers compare against besides LIME.
class KernelShapExplainer : public Explainer {
 public:
  explicit KernelShapExplainer(KernelShapConfig config = KernelShapConfig())
      : config_(config) {}

  Result<WordExplanation> Explain(const Matcher& matcher,
                                  const RecordPair& pair,
                                  uint64_t seed) const override;

  std::string Name() const override { return "kernel_shap"; }

 private:
  KernelShapConfig config_;
};

}  // namespace crew

#endif  // CREW_EXPLAIN_SHAP_H_
