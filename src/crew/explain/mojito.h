#ifndef CREW_EXPLAIN_MOJITO_H_
#define CREW_EXPLAIN_MOJITO_H_

#include "crew/explain/attribution.h"
#include "crew/explain/perturbation.h"

namespace crew {

/// Mojito's two EM-aware LIME variants (Di Cicco et al. 2019):
///  - kDrop: token-drop perturbations, but sampled *per attribute* so
///    structured records are perturbed evenly instead of description
///    attributes dominating;
///  - kCopy: attribute-level perturbations that copy an attribute value
///    from one record to the other, explaining which attributes the model
///    reads as decisive. Attribute coefficients are distributed uniformly
///    over the attribute's tokens to keep the word-level currency.
enum class MojitoMode { kDrop, kCopy };

struct MojitoConfig {
  MojitoMode mode = MojitoMode::kDrop;
  PerturbationConfig perturbation;
  double ridge_lambda = 1.0;
};

class MojitoExplainer : public Explainer {
 public:
  explicit MojitoExplainer(MojitoConfig config = MojitoConfig())
      : config_(config) {}

  Result<WordExplanation> Explain(const Matcher& matcher,
                                  const RecordPair& pair,
                                  uint64_t seed) const override;

  std::string Name() const override {
    return config_.mode == MojitoMode::kDrop ? "mojito_drop" : "mojito_copy";
  }

 private:
  Result<WordExplanation> ExplainDrop(const Matcher& matcher,
                                      const RecordPair& pair,
                                      uint64_t seed) const;
  Result<WordExplanation> ExplainCopy(const Matcher& matcher,
                                      const RecordPair& pair,
                                      uint64_t seed) const;

  MojitoConfig config_;
};

}  // namespace crew

#endif  // CREW_EXPLAIN_MOJITO_H_
