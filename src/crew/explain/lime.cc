#include "crew/explain/lime.h"

#include <numeric>

#include "crew/common/metrics.h"
#include "crew/common/timer.h"
#include "crew/common/trace.h"

namespace crew {

Result<WordExplanation> LimeExplainer::Explain(const Matcher& matcher,
                                               const RecordPair& pair,
                                               uint64_t seed) const {
  CREW_TRACE_SPAN("explain/lime");
  ScopedMetricStage metric_stage("attribution");
  WallTimer timer;
  Tokenizer tokenizer;
  PairTokenView view(AnonymousSchema(pair), tokenizer, pair);
  WordExplanation out;
  out.base_score = matcher.PredictProba(pair);
  if (view.size() == 0) {
    out.runtime_ms = timer.ElapsedMillis();
    return out;
  }

  std::vector<int> perturbable(view.size());
  std::iota(perturbable.begin(), perturbable.end(), 0);
  Rng rng(seed);
  const BatchScorer scorer(matcher, view);
  const auto samples = SampleTokenDrops(scorer, view, perturbable,
                                        config_.perturbation, rng);
  SurrogateFit fit;
  CREW_RETURN_IF_ERROR(FitKeepMaskSurrogate(samples, perturbable,
                                            config_.ridge_lambda, &fit));

  out.attributions.reserve(view.size());
  for (int i = 0; i < view.size(); ++i) {
    out.attributions.push_back({view.token(i), fit.coefficients[i]});
  }
  out.surrogate_r2 = fit.r2;
  out.runtime_ms = timer.ElapsedMillis();
  return out;
}

}  // namespace crew
