#include "crew/explain/serialize.h"

#include <cmath>
#include <cstdio>

#include "crew/common/string_util.h"

namespace crew {
namespace {

std::string TokenRefJson(const TokenRef& token) {
  return StrPrintf(
      "{\"token\":\"%s\",\"side\":\"%s\",\"attribute\":%d,\"position\":%d}",
      JsonEscape(token.text).c_str(), SideName(token.side), token.attribute,
      token.position);
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += StrPrintf("\\u%04x", c);
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string WordExplanationToJson(const WordExplanation& explanation) {
  std::string out = StrPrintf(
      "{\"base_score\":%.6f,\"surrogate_r2\":%.6f,\"attributions\":[",
      explanation.base_score, explanation.surrogate_r2);
  for (size_t i = 0; i < explanation.attributions.size(); ++i) {
    if (i > 0) out.push_back(',');
    const auto& a = explanation.attributions[i];
    std::string token_json = TokenRefJson(a.token);
    token_json.pop_back();  // splice weight into the token object
    out += token_json + StrPrintf(",\"weight\":%.6f}", a.weight);
  }
  out += "]}";
  return out;
}

std::string ClusterExplanationToJson(const ClusterExplanation& explanation) {
  std::string out = StrPrintf(
      "{\"base_score\":%.6f,\"k\":%d,\"silhouette\":%.6f,"
      "\"coherence\":%.6f,\"units\":[",
      explanation.base_score(), explanation.chosen_k, explanation.silhouette,
      explanation.coherence);
  for (size_t u = 0; u < explanation.units.size(); ++u) {
    if (u > 0) out.push_back(',');
    const auto& unit = explanation.units[u];
    out += StrPrintf("{\"label\":\"%s\",\"weight\":%.6f,\"members\":[",
                     JsonEscape(unit.label).c_str(), unit.weight);
    for (size_t m = 0; m < unit.member_indices.size(); ++m) {
      if (m > 0) out.push_back(',');
      out += std::to_string(unit.member_indices[m]);
    }
    out += "]}";
  }
  out += "],\"words\":";
  out += WordExplanationToJson(explanation.words);
  out += "}";
  return out;
}

}  // namespace crew
