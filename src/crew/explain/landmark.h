#ifndef CREW_EXPLAIN_LANDMARK_H_
#define CREW_EXPLAIN_LANDMARK_H_

#include "crew/explain/attribution.h"
#include "crew/explain/perturbation.h"

namespace crew {

/// When the Landmark injection trick is applied.
enum class LandmarkInjection {
  kNever,
  /// Only when the model predicts non-match — the case the Landmark paper
  /// targets: with no shared tokens, pure drops cannot create match
  /// evidence, so the landmark's tokens are offered for injection.
  kAuto,
  kAlways,
};

struct LandmarkConfig {
  PerturbationConfig perturbation;  ///< samples are split across the 2 runs
  double ridge_lambda = 1.0;
  LandmarkInjection injection = LandmarkInjection::kAuto;
  /// Per-token probability that a landmark token is injected in a sample.
  double injection_probability = 0.3;
};

/// Landmark Explanation (Baraldi et al. 2021): explains each record
/// separately, holding the *other* record fixed as the landmark. Tokens of
/// the explained record are dropped LIME-style; optionally the landmark's
/// tokens are injected into the explained record so that non-match pairs
/// can also produce positive evidence. The two per-side surrogates are
/// concatenated into one word-level explanation.
class LandmarkExplainer : public Explainer {
 public:
  explicit LandmarkExplainer(LandmarkConfig config = LandmarkConfig())
      : config_(config) {}

  Result<WordExplanation> Explain(const Matcher& matcher,
                                  const RecordPair& pair,
                                  uint64_t seed) const override;

  std::string Name() const override { return "landmark"; }

 private:
  LandmarkConfig config_;
};

}  // namespace crew

#endif  // CREW_EXPLAIN_LANDMARK_H_
