#include "crew/explain/mojito.h"

#include <cmath>

#include "crew/common/metrics.h"
#include "crew/common/timer.h"
#include "crew/common/trace.h"
#include "crew/explain/batch_scorer.h"
#include "crew/la/ridge.h"

namespace crew {

Result<WordExplanation> MojitoExplainer::Explain(const Matcher& matcher,
                                                 const RecordPair& pair,
                                                 uint64_t seed) const {
  CREW_TRACE_SPAN("explain/mojito");
  ScopedMetricStage metric_stage("attribution");
  return config_.mode == MojitoMode::kDrop ? ExplainDrop(matcher, pair, seed)
                                           : ExplainCopy(matcher, pair, seed);
}

Result<WordExplanation> MojitoExplainer::ExplainDrop(const Matcher& matcher,
                                                     const RecordPair& pair,
                                                     uint64_t seed) const {
  WallTimer timer;
  Tokenizer tokenizer;
  const Schema schema = AnonymousSchema(pair);
  PairTokenView view(schema, tokenizer, pair);
  WordExplanation out;
  out.base_score = matcher.PredictProba(pair);
  if (view.size() == 0) {
    out.runtime_ms = timer.ElapsedMillis();
    return out;
  }

  // Token indices grouped per attribute (both sides together: Mojito
  // perturbs the attribute, wherever its tokens live).
  std::vector<std::vector<int>> by_attribute(schema.size());
  for (int i = 0; i < view.size(); ++i) {
    by_attribute[view.token(i).attribute].push_back(i);
  }
  std::vector<int> nonempty;
  for (int a = 0; a < schema.size(); ++a) {
    if (!by_attribute[a].empty()) nonempty.push_back(a);
  }

  Rng rng(seed);
  std::vector<PerturbationSample> samples;
  samples.reserve(config_.perturbation.num_samples);
  std::vector<std::vector<bool>> keeps;
  keeps.reserve(config_.perturbation.num_samples);
  for (int s = 0; s < config_.perturbation.num_samples; ++s) {
    PerturbationSample sample;
    sample.keep.assign(view.size(), true);
    // Perturb a random attribute: drop a uniform non-empty subset of its
    // tokens. This keeps small structured attributes as exercised as long
    // description fields.
    const int a = nonempty[rng.UniformInt(static_cast<int>(nonempty.size()))];
    const auto& group = by_attribute[a];
    const int m = static_cast<int>(group.size());
    const int n_remove = 1 + rng.UniformInt(m);
    std::vector<int> pool = group;
    int removed = 0;
    for (int i = 0; i < n_remove; ++i) {
      const int j = i + rng.UniformInt(m - i);
      std::swap(pool[i], pool[j]);
      sample.keep[pool[i]] = false;
      ++removed;
    }
    const double removed_fraction =
        static_cast<double>(removed) / static_cast<double>(view.size());
    const double w = config_.perturbation.kernel_width;
    sample.kernel_weight =
        std::exp(-(removed_fraction * removed_fraction) / (w * w));
    keeps.push_back(sample.keep);
    samples.push_back(std::move(sample));
  }
  const BatchScorer scorer(matcher, view);
  std::vector<double> batch_scores;
  scorer.ScoreKeepMasks(keeps, &batch_scores);
  for (size_t s = 0; s < samples.size(); ++s) {
    samples[s].score = batch_scores[s];
  }

  std::vector<int> perturbable(view.size());
  for (int i = 0; i < view.size(); ++i) perturbable[i] = i;
  SurrogateFit fit;
  CREW_RETURN_IF_ERROR(FitKeepMaskSurrogate(samples, perturbable,
                                            config_.ridge_lambda, &fit));
  for (int i = 0; i < view.size(); ++i) {
    out.attributions.push_back({view.token(i), fit.coefficients[i]});
  }
  out.surrogate_r2 = fit.r2;
  out.runtime_ms = timer.ElapsedMillis();
  return out;
}

Result<WordExplanation> MojitoExplainer::ExplainCopy(const Matcher& matcher,
                                                     const RecordPair& pair,
                                                     uint64_t seed) const {
  WallTimer timer;
  Tokenizer tokenizer;
  const Schema schema = AnonymousSchema(pair);
  PairTokenView view(schema, tokenizer, pair);
  WordExplanation out;
  out.base_score = matcher.PredictProba(pair);
  const int a_count = schema.size();
  if (view.size() == 0 || a_count == 0) {
    out.runtime_ms = timer.ElapsedMillis();
    return out;
  }

  // Interpretable features: copy attribute a left->right (f = a) or
  // right->left (f = a_count + a).
  const int f_count = 2 * a_count;
  Rng rng(seed);
  const int n = config_.perturbation.num_samples;
  la::Matrix x(n, f_count);
  la::Vec y(n), w(n, 1.0);
  // All copy-op draws happen here on the caller thread; the perturbed pairs
  // are scored afterwards in one batch.
  std::vector<RecordPair> perturbed_pairs(n, pair);
  for (int s = 0; s < n; ++s) {
    RecordPair& perturbed = perturbed_pairs[s];
    int active = 0;
    for (int f = 0; f < f_count; ++f) {
      // Each copy op active with probability 1/4; at least the marginal
      // distribution keeps most samples near the original pair.
      if (!rng.Bernoulli(0.25)) continue;
      x.At(s, f) = 1.0;
      ++active;
      const int a = f % a_count;
      if (f < a_count) {
        perturbed.right.values[a] = pair.left.values[a];
      } else {
        perturbed.left.values[a] = pair.right.values[a];
      }
    }
    const double frac = static_cast<double>(active) / f_count;
    const double kw = config_.perturbation.kernel_width;
    w[s] = std::exp(-(frac * frac) / (kw * kw));
  }
  const BatchScorer scorer(matcher);
  std::vector<double> copy_scores;
  scorer.ScorePairs(perturbed_pairs, &copy_scores);
  for (int s = 0; s < n; ++s) y[s] = copy_scores[s];
  la::RidgeModel model;
  CREW_RETURN_IF_ERROR(FitRidge(x, y, w, config_.ridge_lambda, &model));
  out.surrogate_r2 = model.r2;

  // Attribute copy-gain -> word weights. A positive gain means making the
  // attribute equal raises the match score, i.e. the attribute's current
  // content pushes toward non-match; its tokens get negative weights.
  std::vector<int> tokens_per_attr(a_count, 0);
  for (int i = 0; i < view.size(); ++i) {
    ++tokens_per_attr[view.token(i).attribute];
  }
  for (int i = 0; i < view.size(); ++i) {
    const int a = view.token(i).attribute;
    const double gain =
        (model.coefficients[a] + model.coefficients[a_count + a]) / 2.0;
    const double weight = -gain / static_cast<double>(tokens_per_attr[a]);
    out.attributions.push_back({view.token(i), weight});
  }
  out.runtime_ms = timer.ElapsedMillis();
  return out;
}

}  // namespace crew
