#ifndef CREW_EXPLAIN_BATCH_SCORER_H_
#define CREW_EXPLAIN_BATCH_SCORER_H_

#include <cstdint>
#include <vector>

#include "crew/common/metrics.h"
#include "crew/explain/token_view.h"
#include "crew/model/matcher.h"

namespace crew {

/// Process-wide counters for the batch scoring engine (reset + snapshot
/// from benches; see bench_f4_runtime). Stage times are summed across
/// worker threads, so with T threads they can exceed wall time — they
/// answer "where does the scoring work go", wall clock answers "how fast".
///
/// This struct is now a *view* over the metrics registry (see
/// crew/common/metrics.h): the engine records into named registry metrics
/// ("crew/scoring/predictions", "crew/scoring/batches",
/// "crew/scoring/materialize", "crew/scoring/predict", plus a
/// "crew/scoring/batch_size" histogram and per-stage
/// "crew/scoring/predictions/<stage>" counters), and ScoringStats is
/// reconstructed from a snapshot. The old API is kept as a shim.
struct ScoringStats {
  std::int64_t predictions = 0;  ///< matcher scores issued through the engine
  std::int64_t batches = 0;      ///< ScoreKeepMasks/ScorePairs/... calls
  double materialize_ms = 0.0;   ///< keep-mask -> RecordPair reconstruction
  double predict_ms = 0.0;       ///< Matcher::PredictProbaBatch time
};

/// Snapshot of the global counters (shim over MetricsRegistry::Global()).
ScoringStats GlobalScoringStats();

/// Resets the registry epoch (all metrics, not just scoring — the registry
/// reset is global and atomic; see MetricsRegistry::Reset()).
void ResetScoringStats();

/// Extracts the scoring-engine view from any registry snapshot. Lets
/// callers that already hold a snapshot (or a MetricsDelta) derive
/// ScoringStats without re-reading the registry.
ScoringStats ScoringStatsFromMetrics(const MetricsSnapshot& snapshot);

/// The one funnel between explainers and the matcher: materializes
/// interpretable-space perturbations (keep / injection masks) into record
/// pairs and scores them through Matcher::PredictProbaBatch, chunked over
/// the shared scoring pool (SetScoringThreads; 1 = inline legacy path).
///
/// Determinism contract: the scorer only evaluates pure per-sample
/// functions and writes results by index, so output is bit-identical for
/// any thread count. All randomness (mask generation) stays with the
/// caller, which runs single-threaded.
class BatchScorer {
 public:
  /// Pair-scoring only (ScorePairs); mask methods require a view.
  explicit BatchScorer(const Matcher& matcher)
      : matcher_(matcher), view_(nullptr) {}

  /// `view` must outlive the scorer.
  BatchScorer(const Matcher& matcher, const PairTokenView& view)
      : matcher_(matcher), view_(&view) {}

  /// (*out)[i] = PredictProba(view.Materialize(keeps[i])).
  void ScoreKeepMasks(const std::vector<std::vector<bool>>& keeps,
                      std::vector<double>* out) const;

  /// (*out)[i] = PredictProba(view.MaterializeWithInjection(keeps[i],
  /// injects[i])).
  void ScoreInjectionMasks(const std::vector<std::vector<bool>>& keeps,
                           const std::vector<std::vector<bool>>& injects,
                           std::vector<double>* out) const;

  /// (*out)[i] = PredictProba(pairs[i]) — for explainers whose perturbations
  /// are record edits rather than keep-masks (Mojito-copy, CERTA).
  void ScorePairs(const std::vector<RecordPair>& pairs,
                  std::vector<double>* out) const;

  /// Single-mask convenience (scored inline, still counted in the stats).
  double ScoreKeepMask(const std::vector<bool>& keep) const;

  const Matcher& matcher() const { return matcher_; }

 private:
  const Matcher& matcher_;
  const PairTokenView* view_;
};

}  // namespace crew

#endif  // CREW_EXPLAIN_BATCH_SCORER_H_
