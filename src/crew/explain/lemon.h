#ifndef CREW_EXPLAIN_LEMON_H_
#define CREW_EXPLAIN_LEMON_H_

#include "crew/explain/attribution.h"
#include "crew/explain/perturbation.h"

namespace crew {

struct LemonConfig {
  PerturbationConfig perturbation;  ///< samples are split across the 2 runs
  double ridge_lambda = 1.0;
  /// Per-token probability of the counterfactual copy in a sample.
  double injection_probability = 0.3;
  /// Weight of the attribution-potential term in the final word weight.
  double potential_weight = 0.5;
};

/// LEMON (Barlaug 2022), simplified to its three core mechanisms:
///  1. dual explanations — each record is explained against the other;
///  2. counterfactual token injection — besides dropping a token, LEMON
///     asks "what if this token also occurred in the other record?" and
///     fits an *attribution potential* coefficient for it;
///  3. the reported word weight blends the drop effect and the potential:
///     weight = drop_coef + potential_weight * inject_coef.
/// This captures LEMON's headline property: tokens that would flip a
/// non-match to a match get strong attributions even though dropping them
/// changes nothing.
class LemonExplainer : public Explainer {
 public:
  explicit LemonExplainer(LemonConfig config = LemonConfig())
      : config_(config) {}

  Result<WordExplanation> Explain(const Matcher& matcher,
                                  const RecordPair& pair,
                                  uint64_t seed) const override;

  std::string Name() const override { return "lemon"; }

 private:
  LemonConfig config_;
};

}  // namespace crew

#endif  // CREW_EXPLAIN_LEMON_H_
