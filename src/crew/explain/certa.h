#ifndef CREW_EXPLAIN_CERTA_H_
#define CREW_EXPLAIN_CERTA_H_

#include <memory>
#include <vector>

#include "crew/data/dataset.h"
#include "crew/explain/attribution.h"

namespace crew {

struct CertaConfig {
  /// Counterfactual substitutions drawn per token.
  int substitutions_per_token = 8;
};

/// CERTA-lite: counterfactual-substitution saliency.
///
/// Full CERTA (Teofili et al. 2022) builds counterfactual records from
/// "open triangles" in the candidate graph. This lite version keeps the
/// core signal — how the prediction moves when a token is replaced by
/// plausible alternatives from the *same attribute* of other records —
/// using the support dataset's per-attribute vocabulary as the
/// counterfactual pool:
///   saliency(t) = base_score - mean over substitutions s of score(pair
///   with t := s).
class CertaExplainer : public Explainer {
 public:
  /// `support` supplies the per-attribute counterfactual vocabulary;
  /// typically the matcher's training split.
  CertaExplainer(const Dataset& support, CertaConfig config = CertaConfig());

  Result<WordExplanation> Explain(const Matcher& matcher,
                                  const RecordPair& pair,
                                  uint64_t seed) const override;

  std::string Name() const override { return "certa"; }

 private:
  CertaConfig config_;
  /// attribute index -> distinct tokens observed under that attribute.
  std::vector<std::vector<std::string>> attribute_pools_;
};

}  // namespace crew

#endif  // CREW_EXPLAIN_CERTA_H_
