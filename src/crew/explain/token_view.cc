#include "crew/explain/token_view.h"

#include "crew/common/logging.h"
#include "crew/common/metrics.h"
#include "crew/common/trace.h"

namespace crew {

Schema AnonymousSchema(const RecordPair& pair) {
  Schema schema;
  for (size_t a = 0; a < pair.left.values.size(); ++a) {
    schema.AddAttribute("attr" + std::to_string(a), AttributeType::kText);
  }
  return schema;
}

PairTokenView::PairTokenView(const Schema& schema, const Tokenizer& tokenizer,
                             const RecordPair& pair)
    : schema_(schema), pair_(pair) {
  CREW_TRACE_SPAN("crew/tokenize");
  static DurationStat* timed_stat =
      MetricsRegistry::Global().GetDuration("crew/stage/tokenize");
  ScopedDuration timed(timed_stat);
  CREW_CHECK(static_cast<int>(pair.left.values.size()) == schema.size());
  CREW_CHECK(static_cast<int>(pair.right.values.size()) == schema.size());
  for (Side side : {Side::kLeft, Side::kRight}) {
    const Record& record = pair.side(side);
    for (int a = 0; a < schema.size(); ++a) {
      const auto toks = tokenizer.Tokenize(record.values[a]);
      for (size_t p = 0; p < toks.size(); ++p) {
        tokens_.push_back(
            {side, a, static_cast<int>(p), toks[p]});
      }
    }
  }
}

std::vector<int> PairTokenView::IndicesOnSide(Side side) const {
  std::vector<int> out;
  for (int i = 0; i < size(); ++i) {
    if (tokens_[i].side == side) out.push_back(i);
  }
  return out;
}

namespace {

// Clears `record`'s attribute strings in place, keeping their heap capacity
// so repeated materialization through one RecordPair slot never allocates.
void ResetRecordValues(int attributes, Record* record) {
  if (static_cast<int>(record->values.size()) != attributes) {
    record->values.resize(attributes);
  }
  for (auto& value : record->values) value.clear();
}

}  // namespace

RecordPair PairTokenView::Materialize(const std::vector<bool>& keep) const {
  RecordPair out;
  MaterializeInto(keep, &out);
  return out;
}

void PairTokenView::MaterializeInto(const std::vector<bool>& keep,
                                    RecordPair* out) const {
  CREW_CHECK(static_cast<int>(keep.size()) == size());
  out->label = pair_.label;
  ResetRecordValues(schema_.size(), &out->left);
  ResetRecordValues(schema_.size(), &out->right);
  for (int i = 0; i < size(); ++i) {
    const TokenRef& ref = tokens_[i];
    if (!keep[i]) continue;
    std::string& value = out->side(ref.side).values[ref.attribute];
    if (!value.empty()) value.push_back(' ');
    value += ref.text;
  }
}

RecordPair PairTokenView::MaterializeWithInjection(
    const std::vector<bool>& keep, const std::vector<bool>& inject) const {
  RecordPair out;
  MaterializeWithInjectionInto(keep, inject, &out);
  return out;
}

void PairTokenView::MaterializeWithInjectionInto(
    const std::vector<bool>& keep, const std::vector<bool>& inject,
    RecordPair* out) const {
  CREW_CHECK(static_cast<int>(inject.size()) == size());
  MaterializeInto(keep, out);
  // Injections go after the opposite record's own tokens so they read as
  // appended evidence, not as replacing the original value.
  for (int i = 0; i < size(); ++i) {
    if (!inject[i]) continue;
    const TokenRef& ref = tokens_[i];
    const Side opposite =
        ref.side == Side::kLeft ? Side::kRight : Side::kLeft;
    std::string& value = out->side(opposite).values[ref.attribute];
    if (!value.empty()) value.push_back(' ');
    value += ref.text;
  }
}

RecordPair PairTokenView::MaterializeWithSubstitution(
    int index, const std::string& replacement) const {
  CREW_CHECK(index >= 0 && index < size());
  RecordPair out;
  out.label = pair_.label;
  out.left.values.assign(schema_.size(), "");
  out.right.values.assign(schema_.size(), "");
  auto append = [](std::string& value, const std::string& token) {
    if (!value.empty()) value.push_back(' ');
    value += token;
  };
  for (int i = 0; i < size(); ++i) {
    const TokenRef& ref = tokens_[i];
    append(out.side(ref.side).values[ref.attribute],
           i == index ? replacement : ref.text);
  }
  return out;
}

}  // namespace crew
