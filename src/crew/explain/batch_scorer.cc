#include "crew/explain/batch_scorer.h"

#include <algorithm>
#include <string>

#include "crew/common/dcheck.h"
#include "crew/common/metrics.h"
#include "crew/common/thread_pool.h"
#include "crew/common/timer.h"
#include "crew/common/trace.h"

namespace crew {
namespace {

// Pairs are materialized into a fixed ring of this many reused RecordPair
// slots per worker chunk, so steady-state scoring allocates nothing per
// sample while PredictProbaBatch still sees real batches.
constexpr int kBlockSize = 64;

// Registry handles, interned once. Leaked like the registry itself so the
// engine can record from threads draining after main().
struct EngineMetrics {
  Counter* predictions;
  Counter* batches;
  DurationStat* materialize;
  DurationStat* predict;
  Histogram* batch_size;
};

EngineMetrics& Engine() {
  static EngineMetrics* m = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    auto* e = new EngineMetrics();
    e->predictions = reg.GetCounter("crew/scoring/predictions");
    e->batches = reg.GetCounter("crew/scoring/batches");
    e->materialize = reg.GetDuration("crew/scoring/materialize");
    e->predict = reg.GetDuration("crew/scoring/predict");
    e->batch_size = reg.GetHistogram("crew/scoring/batch_size");
    return e;
  }();
  return *m;
}

// Per-stage prediction counter, cached per thread by stage pointer (stage
// labels are string literals, so pointer identity is stable and the
// registry mutex is only taken when the stage actually changes).
Counter* StageCounter(const char* stage) {
  thread_local const char* cached_stage = nullptr;
  thread_local Counter* cached_counter = nullptr;
  if (stage != cached_stage) {
    cached_counter = MetricsRegistry::Global().GetCounter(
        std::string("crew/scoring/predictions/") + stage);
    cached_stage = stage;
  }
  return cached_counter;
}

// One engine entry point issuing n predictions. Runs on the calling thread
// (before any fan-out), so CurrentMetricStage() sees the caller's stage.
void CountBatch(int n) {
  EngineMetrics& m = Engine();
  m.batches->Increment();
  m.predictions->Add(n);
  StageCounter(CurrentMetricStage())->Add(n);
}

void AddStageTimes(double materialize_seconds, double predict_seconds) {
  EngineMetrics& m = Engine();
  m.materialize->Add(materialize_seconds);
  m.predict->Add(predict_seconds);
}

// Scores n samples: materialize(i, slot) writes sample i into a reused
// RecordPair slot, then the matcher scores kBlockSize-sized blocks. Chunked
// over the shared pool; every output index is written exactly once.
template <typename MaterializeFn>
void ScoreMaterialized(const Matcher& matcher, int n,
                       const MaterializeFn& materialize,
                       std::vector<double>* out) {
  out->assign(n, 0.0);
  if (n == 0) return;
  CountBatch(n);
  double* scores = out->data();
  auto work = [&matcher, &materialize, scores](int begin, int end) {
    CREW_TRACE_SPAN("crew/scoring/chunk");
    Histogram* batch_size = Engine().batch_size;
    std::vector<RecordPair> block(std::min(kBlockSize, end - begin));
    double materialize_s = 0.0, predict_s = 0.0;
    WallTimer timer;
    for (int b = begin; b < end; b += kBlockSize) {
      const int block_n = std::min(kBlockSize, end - b);
      timer.Restart();
      for (int i = 0; i < block_n; ++i) materialize(b + i, &block[i]);
      materialize_s += timer.ElapsedSeconds();
      timer.Restart();
      matcher.PredictProbaBatch(block.data(), block_n, scores + b);
      predict_s += timer.ElapsedSeconds();
      batch_size->Observe(block_n);
    }
    AddStageTimes(materialize_s, predict_s);
  };
  ParallelFor(SharedScoringPool(), n, work);
}

std::int64_t MetricCount(const MetricsSnapshot& snapshot, const char* name) {
  const MetricEntry* entry = FindMetric(snapshot, name);
  return entry == nullptr ? 0 : entry->count;
}

double MetricMs(const MetricsSnapshot& snapshot, const char* name) {
  const MetricEntry* entry = FindMetric(snapshot, name);
  return entry == nullptr ? 0.0 : entry->total_ms;
}

}  // namespace

ScoringStats ScoringStatsFromMetrics(const MetricsSnapshot& snapshot) {
  ScoringStats stats;
  stats.predictions = MetricCount(snapshot, "crew/scoring/predictions");
  stats.batches = MetricCount(snapshot, "crew/scoring/batches");
  stats.materialize_ms = MetricMs(snapshot, "crew/scoring/materialize");
  stats.predict_ms = MetricMs(snapshot, "crew/scoring/predict");
  return stats;
}

ScoringStats GlobalScoringStats() {
  return ScoringStatsFromMetrics(MetricsRegistry::Global().Snapshot());
}

void ResetScoringStats() { MetricsRegistry::Global().Reset(); }

void BatchScorer::ScoreKeepMasks(const std::vector<std::vector<bool>>& keeps,
                                 std::vector<double>* out) const {
  CREW_CHECK(view_ != nullptr);
  CREW_TRACE_SPAN("crew/scoring/keep_masks");
  ScoreMaterialized(
      matcher_, static_cast<int>(keeps.size()),
      [this, &keeps](int i, RecordPair* slot) {
        CREW_DCHECK_EQ(static_cast<int>(keeps[i].size()), view_->size());
        view_->MaterializeInto(keeps[i], slot);
      },
      out);
}

void BatchScorer::ScoreInjectionMasks(
    const std::vector<std::vector<bool>>& keeps,
    const std::vector<std::vector<bool>>& injects,
    std::vector<double>* out) const {
  CREW_CHECK(view_ != nullptr);
  CREW_CHECK(keeps.size() == injects.size());
  CREW_TRACE_SPAN("crew/scoring/injection_masks");
  ScoreMaterialized(
      matcher_, static_cast<int>(keeps.size()),
      [this, &keeps, &injects](int i, RecordPair* slot) {
        CREW_DCHECK_EQ(static_cast<int>(keeps[i].size()), view_->size());
        CREW_DCHECK_EQ(static_cast<int>(injects[i].size()), view_->size());
        view_->MaterializeWithInjectionInto(keeps[i], injects[i], slot);
      },
      out);
}

void BatchScorer::ScorePairs(const std::vector<RecordPair>& pairs,
                             std::vector<double>* out) const {
  CREW_TRACE_SPAN("crew/scoring/pairs");
  const int n = static_cast<int>(pairs.size());
  out->assign(n, 0.0);
  if (n == 0) return;
  CountBatch(n);
  const RecordPair* data = pairs.data();
  double* scores = out->data();
  auto work = [this, data, scores](int begin, int end) {
    CREW_TRACE_SPAN("crew/scoring/chunk");
    WallTimer timer;
    matcher_.PredictProbaBatch(data + begin,
                               static_cast<size_t>(end - begin),
                               scores + begin);
    AddStageTimes(0.0, timer.ElapsedSeconds());
    Engine().batch_size->Observe(end - begin);
  };
  ParallelFor(SharedScoringPool(), n, work);
}

double BatchScorer::ScoreKeepMask(const std::vector<bool>& keep) const {
  CREW_CHECK(view_ != nullptr);
  CREW_DCHECK_EQ(static_cast<int>(keep.size()), view_->size());
  CountBatch(1);
  WallTimer timer;
  RecordPair pair;
  view_->MaterializeInto(keep, &pair);
  const double materialize_s = timer.ElapsedSeconds();
  timer.Restart();
  double score = 0.0;
  matcher_.PredictProbaBatch(&pair, 1, &score);
  AddStageTimes(materialize_s, timer.ElapsedSeconds());
  Engine().batch_size->Observe(1);
  return score;
}

}  // namespace crew
