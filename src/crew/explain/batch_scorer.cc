#include "crew/explain/batch_scorer.h"

#include <algorithm>
#include <atomic>

#include "crew/common/logging.h"
#include "crew/common/thread_pool.h"
#include "crew/common/timer.h"

namespace crew {
namespace {

// Pairs are materialized into a fixed ring of this many reused RecordPair
// slots per worker chunk, so steady-state scoring allocates nothing per
// sample while PredictProbaBatch still sees real batches.
constexpr int kBlockSize = 64;

std::atomic<std::int64_t> g_predictions{0};
std::atomic<std::int64_t> g_batches{0};
std::atomic<std::int64_t> g_materialize_ns{0};
std::atomic<std::int64_t> g_predict_ns{0};

void AddStageTimes(double materialize_seconds, double predict_seconds) {
  g_materialize_ns.fetch_add(
      static_cast<std::int64_t>(materialize_seconds * 1e9),
      std::memory_order_relaxed);
  g_predict_ns.fetch_add(static_cast<std::int64_t>(predict_seconds * 1e9),
                         std::memory_order_relaxed);
}

}  // namespace

ScoringStats GlobalScoringStats() {
  ScoringStats stats;
  stats.predictions = g_predictions.load(std::memory_order_relaxed);
  stats.batches = g_batches.load(std::memory_order_relaxed);
  stats.materialize_ms =
      static_cast<double>(g_materialize_ns.load(std::memory_order_relaxed)) /
      1e6;
  stats.predict_ms =
      static_cast<double>(g_predict_ns.load(std::memory_order_relaxed)) / 1e6;
  return stats;
}

void ResetScoringStats() {
  g_predictions.store(0, std::memory_order_relaxed);
  g_batches.store(0, std::memory_order_relaxed);
  g_materialize_ns.store(0, std::memory_order_relaxed);
  g_predict_ns.store(0, std::memory_order_relaxed);
}

namespace {

// Scores n samples: materialize(i, slot) writes sample i into a reused
// RecordPair slot, then the matcher scores kBlockSize-sized blocks. Chunked
// over the shared pool; every output index is written exactly once.
template <typename MaterializeFn>
void ScoreMaterialized(const Matcher& matcher, int n,
                       const MaterializeFn& materialize,
                       std::vector<double>* out) {
  out->assign(n, 0.0);
  if (n == 0) return;
  g_batches.fetch_add(1, std::memory_order_relaxed);
  g_predictions.fetch_add(n, std::memory_order_relaxed);
  double* scores = out->data();
  auto work = [&matcher, &materialize, scores](int begin, int end) {
    std::vector<RecordPair> block(std::min(kBlockSize, end - begin));
    double materialize_s = 0.0, predict_s = 0.0;
    WallTimer timer;
    for (int b = begin; b < end; b += kBlockSize) {
      const int block_n = std::min(kBlockSize, end - b);
      timer.Restart();
      for (int i = 0; i < block_n; ++i) materialize(b + i, &block[i]);
      materialize_s += timer.ElapsedSeconds();
      timer.Restart();
      matcher.PredictProbaBatch(block.data(), block_n, scores + b);
      predict_s += timer.ElapsedSeconds();
    }
    AddStageTimes(materialize_s, predict_s);
  };
  ParallelFor(SharedScoringPool(), n, work);
}

}  // namespace

void BatchScorer::ScoreKeepMasks(const std::vector<std::vector<bool>>& keeps,
                                 std::vector<double>* out) const {
  CREW_CHECK(view_ != nullptr);
  ScoreMaterialized(
      matcher_, static_cast<int>(keeps.size()),
      [this, &keeps](int i, RecordPair* slot) {
        view_->MaterializeInto(keeps[i], slot);
      },
      out);
}

void BatchScorer::ScoreInjectionMasks(
    const std::vector<std::vector<bool>>& keeps,
    const std::vector<std::vector<bool>>& injects,
    std::vector<double>* out) const {
  CREW_CHECK(view_ != nullptr);
  CREW_CHECK(keeps.size() == injects.size());
  ScoreMaterialized(
      matcher_, static_cast<int>(keeps.size()),
      [this, &keeps, &injects](int i, RecordPair* slot) {
        view_->MaterializeWithInjectionInto(keeps[i], injects[i], slot);
      },
      out);
}

void BatchScorer::ScorePairs(const std::vector<RecordPair>& pairs,
                             std::vector<double>* out) const {
  const int n = static_cast<int>(pairs.size());
  out->assign(n, 0.0);
  if (n == 0) return;
  g_batches.fetch_add(1, std::memory_order_relaxed);
  g_predictions.fetch_add(n, std::memory_order_relaxed);
  const RecordPair* data = pairs.data();
  double* scores = out->data();
  auto work = [this, data, scores](int begin, int end) {
    WallTimer timer;
    matcher_.PredictProbaBatch(data + begin,
                               static_cast<size_t>(end - begin),
                               scores + begin);
    AddStageTimes(0.0, timer.ElapsedSeconds());
  };
  ParallelFor(SharedScoringPool(), n, work);
}

double BatchScorer::ScoreKeepMask(const std::vector<bool>& keep) const {
  CREW_CHECK(view_ != nullptr);
  g_batches.fetch_add(1, std::memory_order_relaxed);
  g_predictions.fetch_add(1, std::memory_order_relaxed);
  WallTimer timer;
  RecordPair pair;
  view_->MaterializeInto(keep, &pair);
  const double materialize_s = timer.ElapsedSeconds();
  timer.Restart();
  double score = 0.0;
  matcher_.PredictProbaBatch(&pair, 1, &score);
  AddStageTimes(materialize_s, timer.ElapsedSeconds());
  return score;
}

}  // namespace crew
