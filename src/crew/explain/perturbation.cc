#include "crew/explain/perturbation.h"

#include <cmath>

#include "crew/common/logging.h"
#include "crew/la/ridge.h"

namespace crew {

std::vector<PerturbationSample> SampleTokenDrops(
    const BatchScorer& scorer, const PairTokenView& view,
    const std::vector<int>& perturbable, const PerturbationConfig& config,
    Rng& rng) {
  std::vector<PerturbationSample> samples;
  const int m = static_cast<int>(perturbable.size());
  if (m == 0 || config.num_samples <= 0) return samples;
  samples.reserve(config.num_samples);

  // Stage 1 (caller thread, owns all RNG draws): generate the keep-masks.
  std::vector<std::vector<bool>> keeps;
  keeps.reserve(config.num_samples);
  std::vector<int> pool = perturbable;
  for (int s = 0; s < config.num_samples; ++s) {
    PerturbationSample sample;
    sample.keep.assign(view.size(), true);
    const int n_remove = 1 + rng.UniformInt(m);
    // Partial Fisher-Yates: the first n_remove entries of pool are the
    // removed indices.
    for (int i = 0; i < n_remove; ++i) {
      const int j = i + rng.UniformInt(m - i);
      std::swap(pool[i], pool[j]);
      sample.keep[pool[i]] = false;
    }
    const double removed_fraction =
        static_cast<double>(n_remove) / static_cast<double>(m);
    sample.kernel_weight = std::exp(-(removed_fraction * removed_fraction) /
                                    (config.kernel_width *
                                     config.kernel_width));
    keeps.push_back(sample.keep);
    samples.push_back(std::move(sample));
  }

  // Stage 2: score every mask through the engine (parallel, by-index).
  std::vector<double> scores;
  scorer.ScoreKeepMasks(keeps, &scores);
  for (size_t s = 0; s < samples.size(); ++s) samples[s].score = scores[s];
  return samples;
}

std::vector<PerturbationSample> SampleTokenDrops(
    const Matcher& matcher, const PairTokenView& view,
    const std::vector<int>& perturbable, const PerturbationConfig& config,
    Rng& rng) {
  const BatchScorer scorer(matcher, view);
  return SampleTokenDrops(scorer, view, perturbable, config, rng);
}

Status FitKeepMaskSurrogate(const std::vector<PerturbationSample>& samples,
                            const std::vector<int>& perturbable,
                            double lambda, SurrogateFit* fit) {
  if (samples.empty() || perturbable.empty()) {
    return Status::InvalidArgument("FitKeepMaskSurrogate: nothing to fit");
  }
  const int n = static_cast<int>(samples.size());
  const int d = static_cast<int>(perturbable.size());
  la::Matrix x(n, d);
  la::Vec y(n), w(n);
  for (int i = 0; i < n; ++i) {
    CREW_CHECK(samples[i].keep.size() >= perturbable.size());
    for (int j = 0; j < d; ++j) {
      x.At(i, j) = samples[i].keep[perturbable[j]] ? 1.0 : 0.0;
    }
    y[i] = samples[i].score;
    w[i] = samples[i].kernel_weight;
  }
  la::RidgeModel model;
  CREW_RETURN_IF_ERROR(FitRidge(x, y, w, lambda, &model));
  fit->coefficients = model.coefficients;
  fit->intercept = model.intercept;
  fit->r2 = model.r2;
  return Status::Ok();
}

}  // namespace crew
