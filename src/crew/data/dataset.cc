#include "crew/data/dataset.h"

#include "crew/common/logging.h"
#include "crew/text/string_similarity.h"

namespace crew {

int Dataset::MatchCount() const {
  int n = 0;
  for (const auto& p : pairs_) {
    if (p.label == 1) ++n;
  }
  return n;
}

void Dataset::Split(double train_fraction, Rng& rng, Dataset* train,
                    Dataset* test) const {
  CREW_CHECK(train_fraction > 0.0 && train_fraction < 1.0);
  *train = Dataset(schema_);
  *test = Dataset(schema_);
  std::vector<int> match_idx, nonmatch_idx;
  for (int i = 0; i < size(); ++i) {
    (pairs_[i].label == 1 ? match_idx : nonmatch_idx).push_back(i);
  }
  auto assign = [&](std::vector<int>& idx) {
    rng.Shuffle(idx);
    const int n_train = static_cast<int>(train_fraction * idx.size() + 0.5);
    for (size_t k = 0; k < idx.size(); ++k) {
      (static_cast<int>(k) < n_train ? train : test)->Add(pairs_[idx[k]]);
    }
  };
  assign(match_idx);
  assign(nonmatch_idx);
}

Vocabulary Dataset::BuildVocabulary(const Tokenizer& tokenizer) const {
  Vocabulary vocab;
  for (const auto& p : pairs_) {
    for (Side s : {Side::kLeft, Side::kRight}) {
      for (const auto& value : p.side(s).values) {
        for (const auto& tok : tokenizer.Tokenize(value)) {
          vocab.Add(tok);
        }
      }
    }
  }
  return vocab;
}

DatasetStats ComputeStats(const Dataset& dataset, const Tokenizer& tokenizer) {
  DatasetStats stats;
  stats.pairs = dataset.size();
  stats.matches = dataset.MatchCount();
  stats.match_ratio =
      stats.pairs > 0 ? static_cast<double>(stats.matches) / stats.pairs : 0.0;
  stats.vocabulary_size = dataset.BuildVocabulary(tokenizer).size();

  int64_t token_total = 0;
  int record_total = 0;
  double overlap_match = 0.0, overlap_nonmatch = 0.0;
  int n_match = 0, n_nonmatch = 0;
  for (const auto& p : dataset.pairs()) {
    const auto left = FlattenTokens(tokenizer, dataset.schema(), p.left);
    const auto right = FlattenTokens(tokenizer, dataset.schema(), p.right);
    token_total += static_cast<int64_t>(left.size() + right.size());
    record_total += 2;
    const double jac = JaccardSimilarity(left, right);
    if (p.label == 1) {
      overlap_match += jac;
      ++n_match;
    } else if (p.label == 0) {
      overlap_nonmatch += jac;
      ++n_nonmatch;
    }
  }
  stats.avg_tokens_per_record =
      record_total > 0 ? static_cast<double>(token_total) / record_total : 0.0;
  stats.avg_token_overlap_match = n_match > 0 ? overlap_match / n_match : 0.0;
  stats.avg_token_overlap_nonmatch =
      n_nonmatch > 0 ? overlap_nonmatch / n_nonmatch : 0.0;
  return stats;
}

}  // namespace crew
