#ifndef CREW_DATA_CSV_H_
#define CREW_DATA_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "crew/common/status.h"
#include "crew/data/dataset.h"

namespace crew {

/// Parses one RFC-4180 CSV document: fields may be quoted with `"`,
/// embedded quotes doubled, embedded commas/newlines allowed inside quotes.
/// Returns rows of fields. CRLF and LF line endings both accepted.
Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text);

/// Serializes rows to CSV, quoting only when needed.
std::string WriteCsv(const std::vector<std::vector<std::string>>& rows);

/// Escapes a single CSV field.
std::string CsvEscape(std::string_view field);

/// Dataset file format (DeepMatcher-style "merged" layout):
///   header: label,left_<a1>,...,left_<ak>,right_<a1>,...,right_<ak>
///   rows:   1 or 0, then the 2k values.
/// Attribute types are inferred as kText (callers can rebuild the schema if
/// they know better).
Result<Dataset> LoadDatasetCsv(std::string_view csv_text);

/// Reads `path` and parses it with LoadDatasetCsv.
Result<Dataset> LoadDatasetCsvFile(const std::string& path);

/// Serializes `dataset` in the layout above.
std::string DatasetToCsv(const Dataset& dataset);

/// Writes DatasetToCsv(dataset) to `path`.
Status SaveDatasetCsvFile(const Dataset& dataset, const std::string& path);

}  // namespace crew

#endif  // CREW_DATA_CSV_H_
