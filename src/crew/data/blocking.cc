#include "crew/data/blocking.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace crew {

TablePair ToTables(const Dataset& dataset) {
  TablePair tables;
  tables.schema = dataset.schema();
  tables.left.reserve(dataset.size());
  tables.right.reserve(dataset.size());
  for (int i = 0; i < dataset.size(); ++i) {
    tables.left.push_back(dataset.pair(i).left);
    tables.right.push_back(dataset.pair(i).right);
    if (dataset.pair(i).label == 1) {
      tables.gold_matches.push_back({i, i});
    }
  }
  return tables;
}

std::vector<std::pair<int, int>> TokenBlocker::GenerateCandidates(
    const TablePair& tables) const {
  // Distinct tokens per left record + document frequency.
  const int nl = static_cast<int>(tables.left.size());
  const int nr = static_cast<int>(tables.right.size());
  std::unordered_map<std::string, std::vector<int>> left_index;
  for (int i = 0; i < nl; ++i) {
    std::unordered_set<std::string> seen;
    for (const auto& value : tables.left[i].values) {
      for (const auto& tok : tokenizer_.Tokenize(value)) {
        if (seen.insert(tok).second) left_index[tok].push_back(i);
      }
    }
  }
  const int max_df = std::max(
      1, static_cast<int>(config_.max_token_frequency * nl));

  // Count shared discriminative tokens per (left, right) pair.
  std::unordered_map<int64_t, int> shared;
  for (int j = 0; j < nr; ++j) {
    std::unordered_set<std::string> seen;
    for (const auto& value : tables.right[j].values) {
      for (const auto& tok : tokenizer_.Tokenize(value)) {
        if (!seen.insert(tok).second) continue;
        auto it = left_index.find(tok);
        if (it == left_index.end()) continue;
        if (static_cast<int>(it->second.size()) > max_df) continue;
        for (int i : it->second) {
          ++shared[(static_cast<int64_t>(i) << 32) | static_cast<uint32_t>(j)];
        }
      }
    }
  }

  std::vector<std::pair<int, int>> candidates;
  std::vector<std::pair<int, int64_t>> scored;  // (count, key)
  // crew-lint: allow(unordered-iter): selection below uses a strict total
  // order (count desc, key asc), so the kept set is independent of the
  // hash map's iteration order.
  for (const auto& [key, count] : shared) {
    if (count >= config_.min_shared_tokens) scored.push_back({count, key});
  }
  if (config_.max_candidates > 0 &&
      static_cast<int>(scored.size()) > config_.max_candidates) {
    // Tie-break by (left, right) key: with count alone, pairs tied at the
    // cutoff would be kept or dropped by hash-iteration order, making the
    // candidate set (and everything trained on it) non-reproducible.
    std::partial_sort(
        scored.begin(), scored.begin() + config_.max_candidates, scored.end(),
        [](const auto& a, const auto& b) {
          if (a.first != b.first) return a.first > b.first;
          return a.second < b.second;
        });
    scored.resize(config_.max_candidates);
  }
  candidates.reserve(scored.size());
  for (const auto& [count, key] : scored) {
    candidates.push_back({static_cast<int>(key >> 32),
                          static_cast<int>(key & 0xffffffff)});
  }
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

BlockingMetrics EvaluateBlocking(
    const TablePair& tables,
    const std::vector<std::pair<int, int>>& candidates) {
  BlockingMetrics m;
  m.candidates = static_cast<int>(candidates.size());
  m.gold_matches = static_cast<int>(tables.gold_matches.size());
  std::unordered_set<int64_t> candidate_set;
  candidate_set.reserve(candidates.size());
  for (const auto& [i, j] : candidates) {
    candidate_set.insert((static_cast<int64_t>(i) << 32) |
                         static_cast<uint32_t>(j));
  }
  for (const auto& [i, j] : tables.gold_matches) {
    if (candidate_set.count((static_cast<int64_t>(i) << 32) |
                            static_cast<uint32_t>(j)) > 0) {
      ++m.gold_covered;
    }
  }
  return m;
}

}  // namespace crew
