#include "crew/data/magellan.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "crew/common/string_util.h"
#include "crew/data/csv.h"

namespace crew {
namespace {

struct Table {
  Schema schema;
  /// id -> record (ids in the public datasets are integers, but we keep
  /// them as strings for robustness).
  std::unordered_map<std::string, Record> records;
};

Result<Table> ParseEntityTable(const std::string& csv_text,
                               const std::string& name) {
  auto rows_or = ParseCsv(csv_text);
  if (!rows_or.ok()) return rows_or.status();
  const auto& rows = rows_or.value();
  if (rows.empty() || rows[0].size() < 2 || rows[0][0] != "id") {
    return Status::InvalidArgument(
        name + ": header must start with 'id' and have >= 1 attribute");
  }
  Table table;
  for (size_t c = 1; c < rows[0].size(); ++c) {
    table.schema.AddAttribute(rows[0][c], AttributeType::kText);
  }
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != rows[0].size()) {
      return Status::InvalidArgument(
          StrPrintf("%s: row %d has wrong field count", name.c_str(),
                    static_cast<int>(r)));
    }
    Record record;
    record.values.assign(rows[r].begin() + 1, rows[r].end());
    if (!table.records.emplace(rows[r][0], std::move(record)).second) {
      return Status::InvalidArgument(name + ": duplicate id " + rows[r][0]);
    }
  }
  return table;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

Result<Dataset> LoadMagellanFromStrings(const std::string& table_a_csv,
                                        const std::string& table_b_csv,
                                        const std::string& pairs_csv) {
  auto table_a = ParseEntityTable(table_a_csv, "tableA");
  if (!table_a.ok()) return table_a.status();
  auto table_b = ParseEntityTable(table_b_csv, "tableB");
  if (!table_b.ok()) return table_b.status();
  if (!(table_a->schema == table_b->schema)) {
    return Status::InvalidArgument(
        "tableA and tableB have different attributes");
  }

  auto rows_or = ParseCsv(pairs_csv);
  if (!rows_or.ok()) return rows_or.status();
  const auto& rows = rows_or.value();
  if (rows.empty() || rows[0].size() != 3 || rows[0][0] != "ltable_id" ||
      rows[0][1] != "rtable_id" || rows[0][2] != "label") {
    return Status::InvalidArgument(
        "pairs: header must be ltable_id,rtable_id,label");
  }
  Dataset dataset(table_a->schema);
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != 3) {
      return Status::InvalidArgument(
          StrPrintf("pairs: row %d has wrong field count",
                    static_cast<int>(r)));
    }
    auto left = table_a->records.find(rows[r][0]);
    if (left == table_a->records.end()) {
      return Status::NotFound("pairs: unknown ltable_id " + rows[r][0]);
    }
    auto right = table_b->records.find(rows[r][1]);
    if (right == table_b->records.end()) {
      return Status::NotFound("pairs: unknown rtable_id " + rows[r][1]);
    }
    int label = -1;
    if (!ParseInt(rows[r][2], &label) || (label != 0 && label != 1)) {
      return Status::InvalidArgument(
          StrPrintf("pairs: bad label in row %d", static_cast<int>(r)));
    }
    RecordPair pair;
    pair.left = left->second;
    pair.right = right->second;
    pair.label = label;
    dataset.Add(std::move(pair));
  }
  return dataset;
}

Result<Dataset> LoadMagellanDirectory(const std::string& directory,
                                      const std::string& split) {
  auto table_a = ReadFile(directory + "/tableA.csv");
  if (!table_a.ok()) return table_a.status();
  auto table_b = ReadFile(directory + "/tableB.csv");
  if (!table_b.ok()) return table_b.status();
  auto pairs = ReadFile(directory + "/" + split + ".csv");
  if (!pairs.ok()) return pairs.status();
  return LoadMagellanFromStrings(table_a.value(), table_b.value(),
                                 pairs.value());
}

}  // namespace crew
