#ifndef CREW_DATA_BLOCKING_H_
#define CREW_DATA_BLOCKING_H_

#include <string>
#include <vector>

#include "crew/data/dataset.h"
#include "crew/text/tokenizer.h"

namespace crew {

/// Two-table view of an EM task: the classic setting where a candidate
/// generator (blocker) proposes pairs before the matcher scores them.
struct TablePair {
  Schema schema;
  std::vector<Record> left;
  std::vector<Record> right;
  /// Gold matches as (left index, right index).
  std::vector<std::pair<int, int>> gold_matches;
};

/// Splits a pair dataset into its two record tables, preserving gold
/// matches (pair i becomes left[i] / right[i]).
TablePair ToTables(const Dataset& dataset);

struct BlockingConfig {
  /// Candidate pairs must share at least this many distinct tokens.
  int min_shared_tokens = 2;
  /// Tokens occurring in more than this fraction of left records are too
  /// common to block on (stop tokens).
  double max_token_frequency = 0.2;
  /// Hard cap on emitted candidates (0 = unlimited); highest-overlap pairs
  /// are kept.
  int max_candidates = 0;
};

/// Token inverted-index blocker: proposes (left, right) candidates that
/// share enough discriminative tokens. The standard cheap blocker EM
/// pipelines run before matching; included so the repository covers the
/// full EM stack the explainers sit on.
class TokenBlocker {
 public:
  explicit TokenBlocker(BlockingConfig config = BlockingConfig())
      : config_(config) {}

  /// Returns candidate (left index, right index) pairs.
  std::vector<std::pair<int, int>> GenerateCandidates(
      const TablePair& tables) const;

 private:
  BlockingConfig config_;
  Tokenizer tokenizer_;
};

/// Blocking quality: how many gold matches survive (pair completeness) at
/// what candidate-set reduction (reduction ratio vs the full cross
/// product).
struct BlockingMetrics {
  int candidates = 0;
  int gold_matches = 0;
  int gold_covered = 0;
  double PairCompleteness() const {
    return gold_matches > 0
               ? static_cast<double>(gold_covered) / gold_matches
               : 1.0;
  }
  double ReductionRatio(int left_size, int right_size) const {
    const double cross =
        static_cast<double>(left_size) * static_cast<double>(right_size);
    return cross > 0.0 ? 1.0 - candidates / cross : 0.0;
  }
};

BlockingMetrics EvaluateBlocking(
    const TablePair& tables,
    const std::vector<std::pair<int, int>>& candidates);

}  // namespace crew

#endif  // CREW_DATA_BLOCKING_H_
