#include "crew/data/noise.h"

#include <algorithm>

#include "crew/common/string_util.h"

namespace crew {
namespace {

// Applies token-level channels to one attribute value; returns the new value.
std::string NoiseTokens(const NoiseConfig& config,
                        const SynonymTable& synonyms, Rng& rng,
                        const std::string& value) {
  std::vector<std::string> tokens = SplitWhitespace(value);
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (auto& tok : tokens) {
    if (config.token_drop > 0.0 && tokens.size() > 1 &&
        rng.Bernoulli(config.token_drop)) {
      continue;
    }
    std::string t = tok;
    if (config.synonym > 0.0 && rng.Bernoulli(config.synonym)) {
      auto it = synonyms.find(AsciiLower(t));
      if (it != synonyms.end() && !it->second.empty()) {
        t = it->second[rng.UniformInt(static_cast<int>(it->second.size()))];
      }
    }
    if (config.abbreviate > 0.0 && t.size() > 5 &&
        rng.Bernoulli(config.abbreviate)) {
      t = Abbreviate(t);
    }
    if (config.typo_per_token > 0.0 && rng.Bernoulli(config.typo_per_token)) {
      t = InjectTypo(t, rng);
    }
    out.push_back(t);
    if (config.token_duplicate > 0.0 && rng.Bernoulli(config.token_duplicate)) {
      out.push_back(out.back());
    }
  }
  if (config.token_shuffle > 0.0 && out.size() > 1 &&
      rng.Bernoulli(config.token_shuffle)) {
    rng.Shuffle(out);
  }
  return Join(out, " ");
}

}  // namespace

std::string InjectTypo(const std::string& token, Rng& rng) {
  if (token.size() < 3) return token;
  std::string t = token;
  const int pos = rng.UniformInt(static_cast<int>(t.size()));
  switch (rng.UniformInt(4)) {
    case 0:  // swap adjacent
      if (pos + 1 < static_cast<int>(t.size())) std::swap(t[pos], t[pos + 1]);
      break;
    case 1:  // delete
      t.erase(t.begin() + pos);
      break;
    case 2:  // insert random letter
      t.insert(t.begin() + pos, static_cast<char>('a' + rng.UniformInt(26)));
      break;
    default:  // substitute
      t[pos] = static_cast<char>('a' + rng.UniformInt(26));
      break;
  }
  return t;
}

std::string Abbreviate(const std::string& token) {
  const size_t keep = std::min<size_t>(4, token.size() - 1);
  return token.substr(0, keep);
}

void ApplyNoise(const NoiseConfig& config, const Schema& schema,
                const SynonymTable& synonyms, Rng& rng, Record* record) {
  for (int a = 0; a < schema.size(); ++a) {
    std::string& value = record->values[a];
    if (config.missing_value > 0.0 && rng.Bernoulli(config.missing_value)) {
      value.clear();
      continue;
    }
    value = NoiseTokens(config, synonyms, rng, value);
  }
  if (config.attribute_swap > 0.0 && schema.size() > 1 &&
      rng.Bernoulli(config.attribute_swap)) {
    const int a = rng.UniformInt(schema.size());
    int b = rng.UniformInt(schema.size());
    if (b == a) b = (a + 1) % schema.size();
    std::swap(record->values[a], record->values[b]);
  }
}

}  // namespace crew
