#ifndef CREW_DATA_DATASET_H_
#define CREW_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "crew/common/rng.h"
#include "crew/data/record.h"
#include "crew/data/schema.h"
#include "crew/text/vocabulary.h"

namespace crew {

/// A labeled collection of candidate record pairs over one schema.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  void Add(RecordPair pair) { pairs_.push_back(std::move(pair)); }

  int size() const { return static_cast<int>(pairs_.size()); }
  bool empty() const { return pairs_.empty(); }
  const RecordPair& pair(int i) const { return pairs_[i]; }
  RecordPair& pair(int i) { return pairs_[i]; }
  const std::vector<RecordPair>& pairs() const { return pairs_; }

  /// Number of pairs with label == 1.
  int MatchCount() const;

  /// Stratified split: matches and non-matches are divided independently so
  /// both halves keep the global match ratio. `train_fraction` in (0, 1).
  void Split(double train_fraction, Rng& rng, Dataset* train,
             Dataset* test) const;

  /// Builds a token vocabulary over every attribute value of every record.
  Vocabulary BuildVocabulary(const Tokenizer& tokenizer) const;

 private:
  Schema schema_;
  std::vector<RecordPair> pairs_;
};

/// Summary statistics for T1-style dataset tables.
struct DatasetStats {
  int pairs = 0;
  int matches = 0;
  double match_ratio = 0.0;
  int vocabulary_size = 0;
  double avg_tokens_per_record = 0.0;
  double avg_token_overlap_match = 0.0;     ///< mean Jaccard of matching pairs
  double avg_token_overlap_nonmatch = 0.0;  ///< mean Jaccard of non-matches
};

DatasetStats ComputeStats(const Dataset& dataset, const Tokenizer& tokenizer);

}  // namespace crew

#endif  // CREW_DATA_DATASET_H_
