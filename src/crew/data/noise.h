#ifndef CREW_DATA_NOISE_H_
#define CREW_DATA_NOISE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "crew/common/rng.h"
#include "crew/data/record.h"
#include "crew/data/schema.h"

namespace crew {

/// Probabilities of the noise channels applied when deriving the second
/// description of a matching pair (and when "dirtying" datasets). These model
/// the corruptions observed in the Magellan benchmark families:
///   - typos (character edits),
///   - dropped / duplicated tokens,
///   - abbreviations ("corporation" -> "corp."),
///   - synonym substitutions (from a domain synonym table),
///   - attribute-value swaps (value appears under the wrong attribute),
///   - missing values.
struct NoiseConfig {
  double typo_per_token = 0.02;
  double token_drop = 0.05;
  double token_duplicate = 0.01;
  double abbreviate = 0.05;
  double synonym = 0.10;
  double attribute_swap = 0.0;   ///< per record
  double missing_value = 0.0;    ///< per attribute
  double token_shuffle = 0.0;    ///< per attribute: permute token order
};

/// Domain-specific synonym table: token -> interchangeable surface forms.
///
/// Iteration-order audit (crew-lint unordered-iter): the table is only ever
/// probed with find() on the token being rewritten — the noise channels
/// never iterate it — so the hash map's bucket order cannot leak into
/// generated datasets.
using SynonymTable = std::unordered_map<std::string, std::vector<std::string>>;

/// Applies the configured noise channels to `record` in place.
/// Deterministic given `rng` state.
void ApplyNoise(const NoiseConfig& config, const Schema& schema,
                const SynonymTable& synonyms, Rng& rng, Record* record);

/// Introduces a typo into `token`: one random swap, deletion, insertion or
/// substitution with a nearby lowercase letter. Tokens of length < 3 are
/// returned unchanged.
std::string InjectTypo(const std::string& token, Rng& rng);

/// "corporation" -> "corp". Keeps the first min(4, len-1) characters.
std::string Abbreviate(const std::string& token);

}  // namespace crew

#endif  // CREW_DATA_NOISE_H_
