#include "crew/data/benchmark_suite.h"

namespace crew {

std::vector<BenchmarkEntry> StandardBenchmark(uint64_t seed,
                                              int matches_per_dataset,
                                              int nonmatches_per_dataset) {
  std::vector<BenchmarkEntry> out;
  uint64_t i = 0;
  for (Domain d : {Domain::kProducts, Domain::kBibliographic,
                   Domain::kRestaurants}) {
    for (Flavor f : {Flavor::kStructured, Flavor::kDirty, Flavor::kTextual}) {
      GeneratorConfig config;
      config.domain = d;
      config.flavor = f;
      config.num_matches = matches_per_dataset;
      config.num_nonmatches = nonmatches_per_dataset;
      // Distinct derived seed per dataset keeps them independent.
      config.seed = seed * 1000003ULL + i++;
      out.push_back({config, config.Name()});
    }
  }
  return out;
}

Result<Dataset> GenerateByName(const std::string& name, uint64_t seed,
                               int matches, int nonmatches) {
  for (auto& entry : StandardBenchmark(seed, matches, nonmatches)) {
    if (entry.name == name) return GenerateDataset(entry.config);
  }
  return Status::NotFound("unknown benchmark dataset: " + name);
}

}  // namespace crew
