#ifndef CREW_DATA_BENCHMARK_SUITE_H_
#define CREW_DATA_BENCHMARK_SUITE_H_

#include <string>
#include <vector>

#include "crew/data/generator.h"

namespace crew {

/// One entry of the standard 9-dataset benchmark (3 domains x 3 flavours).
struct BenchmarkEntry {
  GeneratorConfig config;
  std::string name;  ///< e.g. "products-structured"
};

/// The canonical benchmark grid used by every experiment binary. Sizes are
/// chosen so the whole suite trains + explains in minutes on one core while
/// keeping the match/non-match balance of the Magellan datasets.
std::vector<BenchmarkEntry> StandardBenchmark(uint64_t seed = 7,
                                              int matches_per_dataset = 250,
                                              int nonmatches_per_dataset = 350);

/// Generates the dataset for a benchmark entry name ("products-dirty", ...).
/// Returns NotFound for unknown names.
Result<Dataset> GenerateByName(const std::string& name, uint64_t seed = 7,
                               int matches = 250, int nonmatches = 350);

}  // namespace crew

#endif  // CREW_DATA_BENCHMARK_SUITE_H_
