#ifndef CREW_DATA_SCHEMA_H_
#define CREW_DATA_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

namespace crew {

/// Attribute value type hint; drives which similarity features the matcher
/// computes for the attribute.
enum class AttributeType {
  kText,         ///< free text (name, description)
  kCategorical,  ///< small closed domain (brand, category)
  kNumeric,      ///< numbers (price, year)
};

const char* AttributeTypeName(AttributeType type);

/// Ordered list of attributes that both records of an EM pair share.
///
/// EM benchmarks (Magellan/DeepMatcher) assume the two sides are already
/// schema-aligned; CREW inherits that assumption.
class Schema {
 public:
  Schema() = default;

  /// Appends an attribute; returns its index.
  int AddAttribute(std::string name, AttributeType type);

  int size() const { return static_cast<int>(names_.size()); }
  const std::string& name(int i) const { return names_[i]; }
  AttributeType type(int i) const { return types_[i]; }

  /// Index of attribute `name`, or -1.
  int IndexOf(std::string_view name) const;

  const std::vector<std::string>& names() const { return names_; }

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.names_ == b.names_ && a.types_ == b.types_;
  }

 private:
  std::vector<std::string> names_;
  std::vector<AttributeType> types_;
};

}  // namespace crew

#endif  // CREW_DATA_SCHEMA_H_
