#include "crew/data/generator.h"

#include <array>
#include <cmath>
#include <string>
#include <vector>

#include "crew/common/logging.h"
#include "crew/common/string_util.h"

namespace crew {
namespace {

// ---------------------------------------------------------------------------
// Word pools (all fictional).
// ---------------------------------------------------------------------------

constexpr std::array kBrands = {
    "vortexa",  "lumenix",  "qorvex",   "zephyra",  "nimbatech", "aurelon",
    "kryotek",  "solvance", "pixelmor", "gravix",   "omnicore",  "taliard",
    "fenwick",  "ostrava",  "bluepine", "cedarway", "halcyon",   "mirelle",
    "novastra", "quillon",  "rivetta",  "sylphide", "tundrix",   "verdanta"};

struct ProductKind {
  const char* noun;
  const char* category;
};
constexpr std::array<ProductKind, 20> kProductKinds = {{
    {"headphones", "audio"},     {"speaker", "audio"},
    {"turntable", "audio"},      {"camera", "imaging"},
    {"lens", "imaging"},         {"projector", "imaging"},
    {"laptop", "computing"},     {"tablet", "computing"},
    {"monitor", "computing"},    {"keyboard", "computing"},
    {"router", "networking"},    {"switch", "networking"},
    {"blender", "kitchen"},      {"toaster", "kitchen"},
    {"espresso machine", "kitchen"}, {"vacuum", "home"},
    {"humidifier", "home"},      {"thermostat", "home"},
    {"drill", "tools"},          {"sander", "tools"},
}};

constexpr std::array kAdjectives = {
    "wireless", "portable", "compact", "premium",  "ergonomic", "digital",
    "smart",    "rugged",   "slim",    "foldable", "silent",    "rapid",
    "modular",  "hybrid",   "precise", "durable",  "adaptive",  "classic"};

constexpr std::array kFeatures = {
    "noise cancelling", "bluetooth",      "fast charging", "touch display",
    "voice control",    "water resistant","backlit keys",  "dual band",
    "auto focus",       "image stabilization", "low latency", "long battery",
    "usb c",            "hdmi output",    "quad core",     "solid state",
    "anti slip",        "variable speed", "steam function", "hepa filter"};

constexpr std::array kColors = {"black", "white", "silver", "graphite",
                                "navy",  "red",   "olive",  "copper"};

constexpr std::array kTopics = {
    "entity",     "matching",    "neural",      "graph",      "query",
    "indexing",   "transactional", "distributed", "streaming", "adaptive",
    "learned",    "approximate", "federated",   "semantic",   "temporal",
    "spatial",    "probabilistic", "scalable",  "incremental", "robust",
    "explainable","interpretable", "clustering", "embedding", "retrieval",
    "integration","deduplication", "provenance", "workload",  "optimization",
    "sampling",   "sketching",   "caching",     "partitioning", "replication",
    "consistency","compression", "benchmarking", "profiling", "annotation"};

constexpr std::array kFirstNames = {
    "alice", "bruno",  "carla",  "davide", "elena", "fabio", "greta",
    "hugo",  "irene",  "jonas",  "katrin", "luca",  "marta", "nils",
    "olivia","paolo",  "quinn",  "rosa",   "stefan","teresa"};

constexpr std::array kLastNames = {
    "albanese", "bergstrom", "caruso",   "dimitrov", "eriksen",  "ferrari",
    "gallo",    "hoffmann",  "ivanova",  "jansen",   "keller",   "lombardi",
    "moretti",  "novak",     "oliveira", "petrov",   "ricci",    "schneider",
    "tanaka",   "ulrich",    "vasquez",  "weber",    "yamada",   "zanetti"};

constexpr std::array kVenues = {
    "symposium on data systems",      "conference on scalable databases",
    "workshop on entity resolution",  "journal of data engineering",
    "international forum on ai data", "transactions on information systems",
    "conference on knowledge discovery", "workshop on explainable ml",
    "symposium on web data",          "journal of intelligent systems",
    "conference on data integration", "workshop on machine reasoning"};

constexpr std::array kRestaurantHeads = {
    "golden", "silver", "rustic", "urban",   "coastal", "royal",  "little",
    "grand",  "happy",  "lucky",  "velvet",  "amber",   "jade",   "crimson",
    "sunny",  "misty",  "wild",   "humble",  "roaring", "quiet"};

constexpr std::array kRestaurantTails = {
    "dragon", "olive",  "lantern", "harvest", "table",  "kettle", "garden",
    "anchor", "bistro", "tavern",  "kitchen", "grill",  "oven",   "spoon",
    "orchard","pantry", "hearth",  "terrace", "corner", "market"};

constexpr std::array kStreets = {
    "maple",   "oak",     "cedar",  "willow", "juniper", "birch",
    "laurel",  "magnolia","aspen",  "chestnut", "sycamore", "poplar",
    "hickory", "spruce",  "alder",  "hawthorn"};

constexpr std::array kStreetSuffix = {"street", "avenue", "boulevard", "lane",
                                      "road"};

constexpr std::array kCities = {
    "ashford",  "brookhaven", "clearwater", "dunmore",  "eastvale",
    "fairmont", "glenwood",   "harborview", "ironridge", "juniper falls",
    "kingsport","lakewood",   "midvale",    "northgate", "oakhurst",
    "pinecrest"};

constexpr std::array kCuisines = {
    "italian", "japanese", "mexican",  "indian",   "thai",     "french",
    "greek",   "korean",   "vietnamese", "spanish", "lebanese", "ethiopian"};

// ---------------------------------------------------------------------------
// Synonym tables.
// ---------------------------------------------------------------------------

SynonymTable MakeProductSynonyms() {
  return SynonymTable{
      {"wireless", {"cordless", "untethered"}},
      {"portable", {"travel", "mobile"}},
      {"compact", {"mini", "small"}},
      {"premium", {"deluxe", "pro"}},
      {"rapid", {"fast", "quick"}},
      {"silent", {"quiet", "noiseless"}},
      {"durable", {"sturdy", "rugged"}},
      {"speaker", {"loudspeaker"}},
      {"headphones", {"headset", "earphones"}},
      {"laptop", {"notebook"}},
      {"monitor", {"display", "screen"}},
      {"vacuum", {"hoover"}},
      {"black", {"onyx", "charcoal"}},
      {"white", {"ivory", "pearl"}},
      {"silver", {"chrome"}},
  };
}

SynonymTable MakeBiblioSynonyms() {
  return SynonymTable{
      {"conference", {"conf", "proceedings of the conference"}},
      {"symposium", {"symp"}},
      {"workshop", {"wksp"}},
      {"journal", {"trans"}},
      {"international", {"intl"}},
      {"neural", {"deep"}},
      {"scalable", {"large scale"}},
      {"approximate", {"approx"}},
      {"optimization", {"tuning"}},
  };
}

SynonymTable MakeRestaurantSynonyms() {
  return SynonymTable{
      {"street", {"st"}},
      {"avenue", {"ave"}},
      {"boulevard", {"blvd"}},
      {"road", {"rd"}},
      {"lane", {"ln"}},
      {"restaurant", {"eatery", "diner"}},
      {"kitchen", {"cucina"}},
      {"grill", {"grille", "bbq"}},
  };
}

// ---------------------------------------------------------------------------
// Latent entities.
// ---------------------------------------------------------------------------

template <typename T, size_t N>
const T& Pick(const std::array<T, N>& pool, Rng& rng) {
  return pool[rng.UniformInt(static_cast<int>(N))];
}

struct ProductEntity {
  int brand;
  int kind;
  std::string model;  // decisive token, e.g. "mx4821"
  int adjective;
  int color;
  double price;
  std::vector<int> features;  // indices into kFeatures

  bool SameIdentity(const ProductEntity& o) const {
    return brand == o.brand && kind == o.kind && model == o.model;
  }
};

ProductEntity SampleProduct(Rng& rng) {
  ProductEntity e;
  e.brand = rng.UniformInt(static_cast<int>(kBrands.size()));
  e.kind = rng.UniformInt(static_cast<int>(kProductKinds.size()));
  const char* prefixes[] = {"mx", "sr", "ql", "vt", "ax", "zp"};
  e.model = std::string(prefixes[rng.UniformInt(6)]) +
            std::to_string(rng.UniformInt(100, 9899));
  e.adjective = rng.UniformInt(static_cast<int>(kAdjectives.size()));
  e.color = rng.UniformInt(static_cast<int>(kColors.size()));
  e.price = rng.UniformInt(20, 1499) + 0.99;
  const int nf = rng.UniformInt(2, 4);
  for (int i = 0; i < nf; ++i) {
    e.features.push_back(rng.UniformInt(static_cast<int>(kFeatures.size())));
  }
  return e;
}

// A hard negative shares brand + kind but differs in the decisive tokens.
ProductEntity MutateProduct(const ProductEntity& src, Rng& rng) {
  ProductEntity e = src;
  e.model = std::string("mx") + std::to_string(rng.UniformInt(100, 9899));
  while (e.model == src.model) {
    e.model = std::string("mx") + std::to_string(rng.UniformInt(100, 9899));
  }
  e.price = rng.UniformInt(20, 1499) + 0.99;
  e.color = rng.UniformInt(static_cast<int>(kColors.size()));
  if (!e.features.empty()) {
    e.features[0] = rng.UniformInt(static_cast<int>(kFeatures.size()));
  }
  return e;
}

struct BiblioEntity {
  std::vector<int> title_words;  // indices into kTopics
  std::vector<std::pair<int, int>> authors;  // (first, last)
  int venue;
  int year;

  bool SameIdentity(const BiblioEntity& o) const {
    return title_words == o.title_words && year == o.year;
  }
};

BiblioEntity SampleBiblio(Rng& rng) {
  BiblioEntity e;
  const int n = rng.UniformInt(4, 7);
  for (int i = 0; i < n; ++i) {
    e.title_words.push_back(rng.UniformInt(static_cast<int>(kTopics.size())));
  }
  const int na = rng.UniformInt(1, 3);
  for (int i = 0; i < na; ++i) {
    e.authors.push_back({rng.UniformInt(static_cast<int>(kFirstNames.size())),
                         rng.UniformInt(static_cast<int>(kLastNames.size()))});
  }
  e.venue = rng.UniformInt(static_cast<int>(kVenues.size()));
  e.year = rng.UniformInt(1998, 2023);
  return e;
}

BiblioEntity MutateBiblio(const BiblioEntity& src, Rng& rng) {
  BiblioEntity e = src;
  // Same venue + authors, different topic emphasis and year: the classic
  // "same group, different paper" hard negative in DBLP-style data.
  for (size_t i = 0; i < e.title_words.size(); i += 2) {
    e.title_words[i] = rng.UniformInt(static_cast<int>(kTopics.size()));
  }
  e.year = rng.UniformInt(1998, 2023);
  if (e.SameIdentity(src)) e.year = src.year == 1998 ? 1999 : src.year - 1;
  return e;
}

struct RestaurantEntity {
  int head, tail;        // name parts
  int number;            // street number (decisive)
  int street, suffix, city, cuisine;
  std::string phone;

  bool SameIdentity(const RestaurantEntity& o) const {
    return head == o.head && tail == o.tail && number == o.number &&
           street == o.street && city == o.city;
  }
};

RestaurantEntity SampleRestaurant(Rng& rng) {
  RestaurantEntity e;
  e.head = rng.UniformInt(static_cast<int>(kRestaurantHeads.size()));
  e.tail = rng.UniformInt(static_cast<int>(kRestaurantTails.size()));
  e.number = rng.UniformInt(1, 999);
  e.street = rng.UniformInt(static_cast<int>(kStreets.size()));
  e.suffix = rng.UniformInt(static_cast<int>(kStreetSuffix.size()));
  e.city = rng.UniformInt(static_cast<int>(kCities.size()));
  e.cuisine = rng.UniformInt(static_cast<int>(kCuisines.size()));
  e.phone = StrPrintf("%03d %03d %04d", rng.UniformInt(200, 989),
                      rng.UniformInt(100, 999), rng.UniformInt(0, 9999));
  return e;
}

RestaurantEntity MutateRestaurant(const RestaurantEntity& src, Rng& rng) {
  RestaurantEntity e = src;
  // Same name pattern + cuisine, different branch (address/phone).
  e.number = rng.UniformInt(1, 999);
  e.street = rng.UniformInt(static_cast<int>(kStreets.size()));
  e.city = rng.UniformInt(static_cast<int>(kCities.size()));
  e.phone = StrPrintf("%03d %03d %04d", rng.UniformInt(200, 989),
                      rng.UniformInt(100, 999), rng.UniformInt(0, 9999));
  if (e.SameIdentity(src)) e.number = src.number == 1 ? 2 : src.number - 1;
  return e;
}

// ---------------------------------------------------------------------------
// Rendering: latent entity -> Record. Rendering is itself randomized so the
// two sides of a match differ in surface form even before noise.
// ---------------------------------------------------------------------------

std::string RenderProductName(const ProductEntity& e, Rng& rng) {
  std::vector<std::string> parts;
  parts.push_back(kBrands[e.brand]);
  if (rng.Bernoulli(0.7)) parts.push_back(kAdjectives[e.adjective]);
  parts.push_back(kProductKinds[e.kind].noun);
  parts.push_back(e.model);
  if (rng.Bernoulli(0.4)) parts.push_back(kColors[e.color]);
  return Join(parts, " ");
}

std::string RenderProductDescription(const ProductEntity& e, Rng& rng) {
  std::vector<std::string> parts;
  parts.push_back(kAdjectives[e.adjective]);
  parts.push_back(kProductKinds[e.kind].noun);
  parts.push_back("with");
  for (size_t i = 0; i < e.features.size(); ++i) {
    if (i > 0) parts.push_back(rng.Bernoulli(0.5) ? "and" : "plus");
    parts.push_back(kFeatures[e.features[i]]);
  }
  parts.push_back("in");
  parts.push_back(kColors[e.color]);
  return Join(parts, " ");
}

Record RenderProduct(const Schema& schema, Flavor flavor,
                     const ProductEntity& e, Rng& rng) {
  Record r;
  const std::string name = RenderProductName(e, rng);
  const std::string desc = RenderProductDescription(e, rng);
  const std::string price = StrPrintf("%.2f", e.price);
  if (flavor == Flavor::kTextual) {
    std::string blob = desc + " by " + kBrands[e.brand] + " " +
                       kProductKinds[e.kind].category + " series priced at " +
                       price;
    r.values = {name, blob};
  } else {
    r.values = {name, kBrands[e.brand], kProductKinds[e.kind].category, price,
                desc};
  }
  CREW_CHECK(static_cast<int>(r.values.size()) == schema.size());
  return r;
}

std::string RenderAuthors(const BiblioEntity& e, Rng& rng) {
  std::vector<std::string> parts;
  const bool initials = rng.Bernoulli(0.5);
  for (size_t i = 0; i < e.authors.size(); ++i) {
    if (i > 0) parts.push_back(rng.Bernoulli(0.5) ? "and" : ",");
    std::string first = kFirstNames[e.authors[i].first];
    if (initials) first = first.substr(0, 1);
    parts.push_back(first);
    parts.push_back(kLastNames[e.authors[i].second]);
  }
  return Join(parts, " ");
}

Record RenderBiblio(const Schema& schema, Flavor flavor,
                    const BiblioEntity& e, Rng& rng) {
  std::vector<std::string> title_words;
  for (int w : e.title_words) title_words.push_back(kTopics[w]);
  if (rng.Bernoulli(0.3)) title_words.push_back("systems");
  const std::string title = Join(title_words, " ");
  const std::string authors = RenderAuthors(e, rng);
  const std::string venue = kVenues[e.venue];
  const std::string year = std::to_string(e.year);
  Record r;
  if (flavor == Flavor::kTextual) {
    std::string source = authors + " in " + venue + " " + year;
    r.values = {title, source};
  } else {
    r.values = {title, authors, venue, year};
  }
  CREW_CHECK(static_cast<int>(r.values.size()) == schema.size());
  return r;
}

Record RenderRestaurant(const Schema& schema, Flavor flavor,
                        const RestaurantEntity& e, Rng& rng) {
  std::string name = std::string(rng.Bernoulli(0.4) ? "the " : "") +
                     kRestaurantHeads[e.head] + " " + kRestaurantTails[e.tail];
  if (rng.Bernoulli(0.25)) name += " restaurant";
  const std::string address = std::to_string(e.number) + " " +
                              kStreets[e.street] + " " +
                              kStreetSuffix[e.suffix];
  Record r;
  if (flavor == Flavor::kTextual) {
    std::string details = kCuisines[e.cuisine] +
                          std::string(" cuisine located at ") + address +
                          " in " + kCities[e.city] + " phone " + e.phone;
    r.values = {name, details};
  } else {
    r.values = {name, address, kCities[e.city], kCuisines[e.cuisine], e.phone};
  }
  CREW_CHECK(static_cast<int>(r.values.size()) == schema.size());
  return r;
}

// ---------------------------------------------------------------------------
// Schemas and noise per flavour.
// ---------------------------------------------------------------------------

Schema MakeSchema(Domain domain, Flavor flavor) {
  Schema s;
  const bool textual = flavor == Flavor::kTextual;
  switch (domain) {
    case Domain::kProducts:
      if (textual) {
        s.AddAttribute("name", AttributeType::kText);
        s.AddAttribute("description", AttributeType::kText);
      } else {
        s.AddAttribute("name", AttributeType::kText);
        s.AddAttribute("brand", AttributeType::kCategorical);
        s.AddAttribute("category", AttributeType::kCategorical);
        s.AddAttribute("price", AttributeType::kNumeric);
        s.AddAttribute("description", AttributeType::kText);
      }
      break;
    case Domain::kBibliographic:
      if (textual) {
        s.AddAttribute("title", AttributeType::kText);
        s.AddAttribute("source", AttributeType::kText);
      } else {
        s.AddAttribute("title", AttributeType::kText);
        s.AddAttribute("authors", AttributeType::kText);
        s.AddAttribute("venue", AttributeType::kCategorical);
        s.AddAttribute("year", AttributeType::kNumeric);
      }
      break;
    case Domain::kRestaurants:
      if (textual) {
        s.AddAttribute("name", AttributeType::kText);
        s.AddAttribute("details", AttributeType::kText);
      } else {
        s.AddAttribute("name", AttributeType::kText);
        s.AddAttribute("address", AttributeType::kText);
        s.AddAttribute("city", AttributeType::kCategorical);
        s.AddAttribute("cuisine", AttributeType::kCategorical);
        s.AddAttribute("phone", AttributeType::kText);
      }
      break;
  }
  return s;
}

NoiseConfig MakeNoise(Flavor flavor) {
  NoiseConfig n;
  switch (flavor) {
    case Flavor::kStructured:
      n.typo_per_token = 0.02;
      n.token_drop = 0.03;
      n.token_duplicate = 0.01;
      n.abbreviate = 0.03;
      n.synonym = 0.08;
      break;
    case Flavor::kDirty:
      n.typo_per_token = 0.05;
      n.token_drop = 0.08;
      n.token_duplicate = 0.02;
      n.abbreviate = 0.08;
      n.synonym = 0.12;
      n.attribute_swap = 0.20;
      n.missing_value = 0.08;
      break;
    case Flavor::kTextual:
      n.typo_per_token = 0.03;
      n.token_drop = 0.06;
      n.token_duplicate = 0.01;
      n.abbreviate = 0.05;
      n.synonym = 0.12;
      n.token_shuffle = 0.10;
      break;
  }
  return n;
}

}  // namespace

const char* DomainName(Domain d) {
  switch (d) {
    case Domain::kProducts:
      return "products";
    case Domain::kBibliographic:
      return "biblio";
    case Domain::kRestaurants:
      return "restaurants";
  }
  return "unknown";
}

const char* FlavorName(Flavor f) {
  switch (f) {
    case Flavor::kStructured:
      return "structured";
    case Flavor::kDirty:
      return "dirty";
    case Flavor::kTextual:
      return "textual";
  }
  return "unknown";
}

std::string GeneratorConfig::Name() const {
  return std::string(DomainName(domain)) + "-" + FlavorName(flavor);
}

const SynonymTable& DomainSynonyms(Domain domain) {
  static const SynonymTable* products =
      new SynonymTable(MakeProductSynonyms());
  static const SynonymTable* biblio = new SynonymTable(MakeBiblioSynonyms());
  static const SynonymTable* restaurants =
      new SynonymTable(MakeRestaurantSynonyms());
  switch (domain) {
    case Domain::kProducts:
      return *products;
    case Domain::kBibliographic:
      return *biblio;
    case Domain::kRestaurants:
      return *restaurants;
  }
  return *products;
}

Result<Dataset> GenerateDataset(const GeneratorConfig& config) {
  if (config.num_matches < 0 || config.num_nonmatches < 0) {
    return Status::InvalidArgument("GenerateDataset: negative pair counts");
  }
  if (config.hard_negative_fraction < 0.0 ||
      config.hard_negative_fraction > 1.0) {
    return Status::InvalidArgument(
        "GenerateDataset: hard_negative_fraction out of [0,1]");
  }
  const Schema schema = MakeSchema(config.domain, config.flavor);
  const NoiseConfig noise = MakeNoise(config.flavor);
  const SynonymTable& synonyms = DomainSynonyms(config.domain);
  Dataset dataset(schema);
  Rng rng(config.seed);

  // Domain-generic loop implemented per domain to keep entity types simple.
  auto emit_pair = [&](Record left, Record right, int label, Rng& r) {
    // Noise both sides of matches; noise only the right side of non-matches
    // (the "left table" is typically the cleaner catalog).
    if (label == 1) ApplyNoise(noise, schema, synonyms, r, &left);
    ApplyNoise(noise, schema, synonyms, r, &right);
    RecordPair p;
    p.left = std::move(left);
    p.right = std::move(right);
    p.label = label;
    dataset.Add(std::move(p));
  };

  switch (config.domain) {
    case Domain::kProducts: {
      for (int i = 0; i < config.num_matches; ++i) {
        ProductEntity e = SampleProduct(rng);
        emit_pair(RenderProduct(schema, config.flavor, e, rng),
                  RenderProduct(schema, config.flavor, e, rng), 1, rng);
      }
      for (int i = 0; i < config.num_nonmatches; ++i) {
        ProductEntity a = SampleProduct(rng);
        ProductEntity b = rng.Bernoulli(config.hard_negative_fraction)
                              ? MutateProduct(a, rng)
                              : SampleProduct(rng);
        while (b.SameIdentity(a)) b = SampleProduct(rng);
        emit_pair(RenderProduct(schema, config.flavor, a, rng),
                  RenderProduct(schema, config.flavor, b, rng), 0, rng);
      }
      break;
    }
    case Domain::kBibliographic: {
      for (int i = 0; i < config.num_matches; ++i) {
        BiblioEntity e = SampleBiblio(rng);
        emit_pair(RenderBiblio(schema, config.flavor, e, rng),
                  RenderBiblio(schema, config.flavor, e, rng), 1, rng);
      }
      for (int i = 0; i < config.num_nonmatches; ++i) {
        BiblioEntity a = SampleBiblio(rng);
        BiblioEntity b = rng.Bernoulli(config.hard_negative_fraction)
                             ? MutateBiblio(a, rng)
                             : SampleBiblio(rng);
        while (b.SameIdentity(a)) b = SampleBiblio(rng);
        emit_pair(RenderBiblio(schema, config.flavor, a, rng),
                  RenderBiblio(schema, config.flavor, b, rng), 0, rng);
      }
      break;
    }
    case Domain::kRestaurants: {
      for (int i = 0; i < config.num_matches; ++i) {
        RestaurantEntity e = SampleRestaurant(rng);
        emit_pair(RenderRestaurant(schema, config.flavor, e, rng),
                  RenderRestaurant(schema, config.flavor, e, rng), 1, rng);
      }
      for (int i = 0; i < config.num_nonmatches; ++i) {
        RestaurantEntity a = SampleRestaurant(rng);
        RestaurantEntity b = rng.Bernoulli(config.hard_negative_fraction)
                                 ? MutateRestaurant(a, rng)
                                 : SampleRestaurant(rng);
        while (b.SameIdentity(a)) b = SampleRestaurant(rng);
        emit_pair(RenderRestaurant(schema, config.flavor, a, rng),
                  RenderRestaurant(schema, config.flavor, b, rng), 0, rng);
      }
      break;
    }
  }
  return dataset;
}

}  // namespace crew
