#ifndef CREW_DATA_MAGELLAN_H_
#define CREW_DATA_MAGELLAN_H_

#include <string>

#include "crew/common/status.h"
#include "crew/data/dataset.h"

namespace crew {

/// Loader for the Magellan/DeepMatcher public benchmark layout — the
/// format the original paper's datasets ship in:
///
///   <dir>/tableA.csv     id,<attr1>,<attr2>,...
///   <dir>/tableB.csv     id,<attr1>,<attr2>,...   (same attributes)
///   <dir>/<split>.csv    ltable_id,rtable_id,label
///
/// Returns the split as a pair Dataset (attributes typed kText; callers
/// can re-type numeric columns if they know better). This lets the library
/// run on the real Abt-Buy / DBLP-ACM / ... downloads when they are
/// available, in place of the synthetic generator.
Result<Dataset> LoadMagellanDirectory(const std::string& directory,
                                      const std::string& split = "train");

/// In-memory variant for tests: contents of the three CSV files.
Result<Dataset> LoadMagellanFromStrings(const std::string& table_a_csv,
                                        const std::string& table_b_csv,
                                        const std::string& pairs_csv);

}  // namespace crew

#endif  // CREW_DATA_MAGELLAN_H_
