#include "crew/data/csv.h"

#include <fstream>
#include <sstream>

#include "crew/common/string_util.h"

namespace crew {

Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field.push_back(c);
        ++i;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty() || field_started) {
          return Status::InvalidArgument(
              "CSV: quote inside unquoted field near offset " +
              std::to_string(i));
        }
        in_quotes = true;
        field_started = true;
        ++i;
        break;
      case ',':
        end_field();
        ++i;
        break;
      case '\r':
        if (i + 1 < n && text[i + 1] == '\n') ++i;
        end_row();
        ++i;
        break;
      case '\n':
        end_row();
        ++i;
        break;
      default:
        field.push_back(c);
        field_started = true;
        ++i;
        break;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("CSV: unterminated quoted field");
  }
  // Flush the final row when the file does not end in a newline.
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

std::string CsvEscape(std::string_view field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string WriteCsv(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += CsvEscape(row[i]);
    }
    out.push_back('\n');
  }
  return out;
}

Result<Dataset> LoadDatasetCsv(std::string_view csv_text) {
  auto rows_or = ParseCsv(csv_text);
  if (!rows_or.ok()) return rows_or.status();
  const auto& rows = rows_or.value();
  if (rows.empty()) return Status::InvalidArgument("dataset CSV: empty file");
  const auto& header = rows[0];
  if (header.size() < 3 || header[0] != "label" || header.size() % 2 == 0) {
    return Status::InvalidArgument(
        "dataset CSV: header must be label,left_*...,right_*...");
  }
  const int k = static_cast<int>(header.size() - 1) / 2;
  Schema schema;
  for (int a = 0; a < k; ++a) {
    const std::string& lname = header[1 + a];
    const std::string& rname = header[1 + k + a];
    if (!StartsWith(lname, "left_") || !StartsWith(rname, "right_") ||
        lname.substr(5) != rname.substr(6)) {
      return Status::InvalidArgument(
          "dataset CSV: header column mismatch at attribute " +
          std::to_string(a));
    }
    schema.AddAttribute(lname.substr(5), AttributeType::kText);
  }
  Dataset dataset(schema);
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() == 1 && row[0].empty()) continue;  // trailing blank line
    if (row.size() != header.size()) {
      return Status::InvalidArgument("dataset CSV: row " + std::to_string(r) +
                                     " has wrong field count");
    }
    RecordPair pair;
    int label = -1;
    if (!ParseInt(row[0], &label) || (label != 0 && label != 1)) {
      return Status::InvalidArgument("dataset CSV: bad label in row " +
                                     std::to_string(r));
    }
    pair.label = label;
    for (int a = 0; a < k; ++a) {
      pair.left.values.push_back(row[1 + a]);
      pair.right.values.push_back(row[1 + k + a]);
    }
    dataset.Add(std::move(pair));
  }
  return dataset;
}

Result<Dataset> LoadDatasetCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return LoadDatasetCsv(buf.str());
}

std::string DatasetToCsv(const Dataset& dataset) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header = {"label"};
  for (int a = 0; a < dataset.schema().size(); ++a) {
    header.push_back("left_" + dataset.schema().name(a));
  }
  for (int a = 0; a < dataset.schema().size(); ++a) {
    header.push_back("right_" + dataset.schema().name(a));
  }
  rows.push_back(std::move(header));
  for (const auto& p : dataset.pairs()) {
    std::vector<std::string> row = {std::to_string(p.label)};
    for (const auto& v : p.left.values) row.push_back(v);
    for (const auto& v : p.right.values) row.push_back(v);
    rows.push_back(std::move(row));
  }
  return WriteCsv(rows);
}

Status SaveDatasetCsvFile(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Internal("cannot write " + path);
  out << DatasetToCsv(dataset);
  return out.good() ? Status::Ok() : Status::DataLoss("short write: " + path);
}

}  // namespace crew
