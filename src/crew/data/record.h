#ifndef CREW_DATA_RECORD_H_
#define CREW_DATA_RECORD_H_

#include <string>
#include <vector>

#include "crew/data/schema.h"
#include "crew/text/tokenizer.h"

namespace crew {

/// One entity description: attribute values aligned with a Schema.
struct Record {
  std::vector<std::string> values;

  const std::string& value(int attribute) const { return values[attribute]; }

  /// All attribute values joined with " | " (debug / display).
  std::string ToDisplayString(const Schema& schema) const;

  friend bool operator==(const Record& a, const Record& b) {
    return a.values == b.values;
  }
};

/// Which side of an EM pair a token / record belongs to.
enum class Side { kLeft = 0, kRight = 1 };

inline const char* SideName(Side s) {
  return s == Side::kLeft ? "left" : "right";
}

/// A candidate pair of entity descriptions plus (optionally) a gold label.
struct RecordPair {
  Record left;
  Record right;
  /// 1 = match, 0 = non-match, -1 = unlabeled.
  int label = -1;

  const Record& side(Side s) const {
    return s == Side::kLeft ? left : right;
  }
  Record& side(Side s) { return s == Side::kLeft ? left : right; }

  bool IsMatch() const { return label == 1; }
};

/// Tokenizes every attribute of `record`; result[i] holds attribute i's
/// tokens in order.
std::vector<std::vector<std::string>> TokenizeRecord(
    const Tokenizer& tokenizer, const Schema& schema, const Record& record);

/// All tokens of `record` flattened across attributes, in schema order.
std::vector<std::string> FlattenTokens(const Tokenizer& tokenizer,
                                       const Schema& schema,
                                       const Record& record);

}  // namespace crew

#endif  // CREW_DATA_RECORD_H_
