#ifndef CREW_DATA_GENERATOR_H_
#define CREW_DATA_GENERATOR_H_

#include <cstdint>
#include <string>

#include "crew/common/status.h"
#include "crew/data/dataset.h"
#include "crew/data/noise.h"

namespace crew {

/// The three entity domains of the synthetic benchmark, mirroring the
/// Magellan/DeepMatcher families the EM-explainability literature evaluates
/// on (product catalogs, bibliographic records, restaurant listings).
enum class Domain { kProducts, kBibliographic, kRestaurants };

/// The three dataset flavours of the DeepMatcher benchmark:
///  - structured: clean aligned attributes, light noise;
///  - dirty: attribute swaps, missing values, heavier corruption;
///  - textual: attributes merged into long free-text descriptions.
enum class Flavor { kStructured, kDirty, kTextual };

const char* DomainName(Domain d);
const char* FlavorName(Flavor f);

struct GeneratorConfig {
  Domain domain = Domain::kProducts;
  Flavor flavor = Flavor::kStructured;
  int num_matches = 300;
  int num_nonmatches = 300;
  /// Fraction of non-matches that are *hard*: they share the brand /
  /// venue / cuisine of the left entity and differ in the decisive tokens
  /// (model number, year, street number).
  double hard_negative_fraction = 0.5;
  uint64_t seed = 7;

  /// "products-structured" etc.; used in experiment tables.
  std::string Name() const;
};

/// Generates a labeled EM dataset with ground truth by construction:
/// a matching pair is two independently rendered + noised descriptions of
/// the same latent entity; a non-match renders two distinct entities.
Result<Dataset> GenerateDataset(const GeneratorConfig& config);

/// The synonym table the generator (and its noise channels) use for
/// `config.domain`; exposed so tests can verify synonym-aware behaviour.
const SynonymTable& DomainSynonyms(Domain domain);

}  // namespace crew

#endif  // CREW_DATA_GENERATOR_H_
