#include "crew/data/record.h"

#include "crew/common/logging.h"

namespace crew {

std::string Record::ToDisplayString(const Schema& schema) const {
  CREW_CHECK(static_cast<int>(values.size()) == schema.size());
  std::string out;
  for (int i = 0; i < schema.size(); ++i) {
    if (i > 0) out += " | ";
    out += schema.name(i);
    out += ": ";
    out += values[i];
  }
  return out;
}

std::vector<std::vector<std::string>> TokenizeRecord(
    const Tokenizer& tokenizer, const Schema& schema, const Record& record) {
  CREW_CHECK(static_cast<int>(record.values.size()) == schema.size());
  std::vector<std::vector<std::string>> out(schema.size());
  for (int a = 0; a < schema.size(); ++a) {
    out[a] = tokenizer.Tokenize(record.values[a]);
  }
  return out;
}

std::vector<std::string> FlattenTokens(const Tokenizer& tokenizer,
                                       const Schema& schema,
                                       const Record& record) {
  std::vector<std::string> out;
  for (int a = 0; a < schema.size(); ++a) {
    auto toks = tokenizer.Tokenize(record.values[a]);
    out.insert(out.end(), toks.begin(), toks.end());
  }
  return out;
}

}  // namespace crew
