#include "crew/data/schema.h"

namespace crew {

const char* AttributeTypeName(AttributeType type) {
  switch (type) {
    case AttributeType::kText:
      return "text";
    case AttributeType::kCategorical:
      return "categorical";
    case AttributeType::kNumeric:
      return "numeric";
  }
  return "unknown";
}

int Schema::AddAttribute(std::string name, AttributeType type) {
  names_.push_back(std::move(name));
  types_.push_back(type);
  return static_cast<int>(names_.size()) - 1;
}

int Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace crew
