#include "crew/model/random_forest_matcher.h"

#include <algorithm>
#include <cmath>

#include "crew/common/rng.h"
#include "crew/common/trace.h"
#include "crew/model/metrics.h"

namespace crew {
namespace {

struct SplitCandidate {
  int feature = -1;
  double split = 0.0;
  double gini = 1e9;
};

double GiniImpurity(int pos, int total) {
  if (total == 0) return 0.0;
  const double p = static_cast<double>(pos) / total;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

Result<std::unique_ptr<RandomForestMatcher>> RandomForestMatcher::Train(
    const Dataset& train, std::shared_ptr<const EmbeddingStore> embeddings,
    const RandomForestConfig& config) {
  if (train.empty()) {
    return Status::InvalidArgument("RandomForestMatcher: empty training set");
  }
  if (config.num_trees <= 0 || config.max_depth <= 0) {
    return Status::InvalidArgument("RandomForestMatcher: bad configuration");
  }
  PairFeaturizer featurizer(train.schema(), std::move(embeddings));
  std::vector<la::Vec> rows;
  std::vector<int> labels;
  for (const auto& pair : train.pairs()) {
    if (pair.label != 0 && pair.label != 1) continue;
    rows.push_back(featurizer.Extract(pair));
    labels.push_back(pair.label);
  }
  if (rows.empty()) {
    return Status::InvalidArgument("RandomForestMatcher: no labeled pairs");
  }
  const int n = static_cast<int>(rows.size());
  const int d = static_cast<int>(rows[0].size());
  const int mtry = config.features_per_split > 0
                       ? std::min(config.features_per_split, d)
                       : std::max(1, static_cast<int>(std::sqrt(d)));
  Rng rng(config.seed);

  std::vector<Tree> trees;
  trees.reserve(config.num_trees);

  // Recursive CART builder over an index subset.
  struct Builder {
    const std::vector<la::Vec>& rows;
    const std::vector<int>& labels;
    const RandomForestConfig& config;
    int mtry;
    int d;
    Rng& rng;
    Tree* tree;

    int Build(std::vector<int>& idx, int depth) {
      int pos = 0;
      for (int i : idx) pos += labels[i];
      Node node;
      const int node_id = static_cast<int>(tree->size());
      tree->push_back(node);
      const bool pure = pos == 0 || pos == static_cast<int>(idx.size());
      if (depth >= config.max_depth || pure ||
          static_cast<int>(idx.size()) < 2 * config.min_samples_leaf) {
        (*tree)[node_id].leaf_value =
            static_cast<double>(pos) / static_cast<double>(idx.size());
        return node_id;
      }
      // Pick the best split over a random feature subset.
      SplitCandidate best;
      std::vector<int> features = rng.SampleIndices(d, mtry);
      std::vector<std::pair<double, int>> sorted;
      for (int f : features) {
        sorted.clear();
        for (int i : idx) sorted.push_back({rows[i][f], labels[i]});
        std::sort(sorted.begin(), sorted.end());
        int left_pos = 0;
        const int total = static_cast<int>(sorted.size());
        int total_pos = 0;
        for (auto& [v, l] : sorted) total_pos += l;
        for (int k = 0; k + 1 < total; ++k) {
          left_pos += sorted[k].second;
          if (sorted[k].first == sorted[k + 1].first) continue;
          const int left_n = k + 1;
          const int right_n = total - left_n;
          if (left_n < config.min_samples_leaf ||
              right_n < config.min_samples_leaf) {
            continue;
          }
          const double gini =
              (left_n * GiniImpurity(left_pos, left_n) +
               right_n * GiniImpurity(total_pos - left_pos, right_n)) /
              total;
          if (gini < best.gini) {
            best.gini = gini;
            best.feature = f;
            best.split = (sorted[k].first + sorted[k + 1].first) / 2.0;
          }
        }
      }
      if (best.feature < 0) {
        (*tree)[node_id].leaf_value =
            static_cast<double>(pos) / static_cast<double>(idx.size());
        return node_id;
      }
      std::vector<int> left_idx, right_idx;
      for (int i : idx) {
        (rows[i][best.feature] < best.split ? left_idx : right_idx)
            .push_back(i);
      }
      // Midpoints of near-adjacent doubles can round onto one of the two
      // values, emptying a child; fall back to a leaf in that case.
      if (left_idx.empty() || right_idx.empty()) {
        (*tree)[node_id].leaf_value =
            static_cast<double>(pos) / static_cast<double>(idx.size());
        return node_id;
      }
      idx.clear();
      idx.shrink_to_fit();
      const int left_id = Build(left_idx, depth + 1);
      const int right_id = Build(right_idx, depth + 1);
      (*tree)[node_id].feature = best.feature;
      (*tree)[node_id].split = best.split;
      (*tree)[node_id].left = left_id;
      (*tree)[node_id].right = right_id;
      return node_id;
    }
  };

  for (int t = 0; t < config.num_trees; ++t) {
    // Bootstrap sample.
    std::vector<int> idx(n);
    for (int i = 0; i < n; ++i) idx[i] = rng.UniformInt(n);
    Tree tree;
    Builder builder{rows, labels, config, mtry, d, rng, &tree};
    builder.Build(idx, 0);
    trees.push_back(std::move(tree));
  }

  auto matcher = std::unique_ptr<RandomForestMatcher>(new RandomForestMatcher(
      std::move(featurizer), std::move(trees), /*threshold=*/0.5));
  std::vector<double> scores(n);
  for (int i = 0; i < n; ++i) scores[i] = matcher->PredictFeatures(rows[i]);
  matcher->threshold_ = BestF1Threshold(scores, labels);
  return matcher;
}

double RandomForestMatcher::PredictTree(const Tree& tree, const la::Vec& x) {
  int node = 0;
  while (tree[node].feature >= 0) {
    node = x[tree[node].feature] < tree[node].split ? tree[node].left
                                                    : tree[node].right;
  }
  return tree[node].leaf_value;
}

double RandomForestMatcher::PredictFeatures(const la::Vec& x) const {
  double sum = 0.0;
  for (const auto& tree : trees_) sum += PredictTree(tree, x);
  return trees_.empty() ? 0.5 : sum / static_cast<double>(trees_.size());
}

double RandomForestMatcher::PredictProba(const RecordPair& pair) const {
  return PredictFeatures(featurizer_.Extract(pair));
}

void RandomForestMatcher::PredictProbaBatch(const RecordPair* pairs,
                                            size_t count, double* out) const {
  CREW_TRACE_SPAN("matcher/forest");
  PairFeaturizer::Scratch scratch;
  la::Vec x;
  for (size_t i = 0; i < count; ++i) {
    featurizer_.ExtractInto(pairs[i], &scratch, &x);
    out[i] = PredictFeatures(x);
  }
}

}  // namespace crew
