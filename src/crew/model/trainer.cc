#include "crew/model/trainer.h"

#include "crew/embed/sgns.h"
#include "crew/model/embedding_bag_matcher.h"
#include "crew/model/logistic_matcher.h"
#include "crew/model/mlp_matcher.h"
#include "crew/model/random_forest_matcher.h"
#include "crew/model/rule_matcher.h"

namespace crew {

const char* MatcherKindName(MatcherKind kind) {
  switch (kind) {
    case MatcherKind::kLogistic:
      return "logistic";
    case MatcherKind::kMlp:
      return "mlp";
    case MatcherKind::kEmbeddingBag:
      return "embedding_bag";
    case MatcherKind::kRandomForest:
      return "random_forest";
    case MatcherKind::kRule:
      return "rule";
  }
  return "unknown";
}

std::vector<MatcherKind> AllMatcherKinds() {
  return {MatcherKind::kLogistic, MatcherKind::kMlp,
          MatcherKind::kEmbeddingBag, MatcherKind::kRandomForest,
          MatcherKind::kRule};
}

Result<std::unique_ptr<Matcher>> TrainMatcher(
    MatcherKind kind, const Dataset& train,
    std::shared_ptr<const EmbeddingStore> embeddings, uint64_t seed) {
  switch (kind) {
    case MatcherKind::kLogistic: {
      LogisticConfig config;
      config.seed = seed;
      auto m = LogisticMatcher::Train(train, embeddings, config);
      if (!m.ok()) return m.status();
      return std::unique_ptr<Matcher>(std::move(m.value()));
    }
    case MatcherKind::kMlp: {
      MlpConfig config;
      config.seed = seed;
      auto m = MlpMatcher::Train(train, embeddings, config);
      if (!m.ok()) return m.status();
      return std::unique_ptr<Matcher>(std::move(m.value()));
    }
    case MatcherKind::kEmbeddingBag: {
      EmbeddingBagConfig config;
      config.seed = seed;
      auto m = EmbeddingBagMatcher::Train(train, embeddings, config);
      if (!m.ok()) return m.status();
      return std::unique_ptr<Matcher>(std::move(m.value()));
    }
    case MatcherKind::kRandomForest: {
      RandomForestConfig config;
      config.seed = seed;
      auto m = RandomForestMatcher::Train(train, embeddings, config);
      if (!m.ok()) return m.status();
      return std::unique_ptr<Matcher>(std::move(m.value()));
    }
    case MatcherKind::kRule: {
      auto m = RuleMatcher::Train(train, embeddings);
      if (!m.ok()) return m.status();
      return std::unique_ptr<Matcher>(std::move(m.value()));
    }
  }
  return Status::InvalidArgument("TrainMatcher: unknown matcher kind");
}

Result<TrainedPipeline> TrainPipeline(const Dataset& dataset,
                                      MatcherKind kind, double train_fraction,
                                      uint64_t seed) {
  if (dataset.empty()) {
    return Status::InvalidArgument("TrainPipeline: empty dataset");
  }
  TrainedPipeline pipeline;
  Rng rng(seed);
  dataset.Split(train_fraction, rng, &pipeline.train, &pipeline.test);

  Tokenizer tokenizer;
  SgnsConfig sgns;
  sgns.seed = seed ^ 0x5eedULL;
  auto embeddings =
      TrainSgnsEmbeddings(BuildCorpus(pipeline.train, tokenizer), sgns);
  if (!embeddings.ok()) return embeddings.status();
  pipeline.embeddings = std::make_shared<const EmbeddingStore>(
      std::move(embeddings.value()));

  auto matcher = TrainMatcher(kind, pipeline.train, pipeline.embeddings, seed);
  if (!matcher.ok()) return matcher.status();
  pipeline.matcher = std::move(matcher.value());
  pipeline.test_metrics = EvaluateMatcher(*pipeline.matcher, pipeline.test);
  return pipeline;
}

}  // namespace crew
