#ifndef CREW_MODEL_FEATURES_H_
#define CREW_MODEL_FEATURES_H_

#include <memory>
#include <string>
#include <vector>

#include "crew/data/record.h"
#include "crew/data/schema.h"
#include "crew/embed/embedding_store.h"
#include "crew/la/vector_ops.h"
#include "crew/text/tokenizer.h"

namespace crew {

/// Magellan-style attribute-similarity featurizer for record pairs.
///
/// Per attribute: Jaccard, overlap coefficient, Monge-Elkan, embedding
/// cosine of the attribute's mean word vector, and a type-specific feature
/// (numeric relative similarity for kNumeric, Levenshtein for short values).
/// Plus three pair-global features (all-token Jaccard, overlap, log length
/// ratio). Every feature is a function of the surviving tokens, so dropping
/// a token perturbs the feature vector — the property perturbation-based
/// explainers rely on.
class PairFeaturizer {
 public:
  /// Reusable buffers for ExtractInto. One scratch per thread/batch; the
  /// hot loop of the batch scoring engine keeps a single instance alive so
  /// per-pair extraction performs no vector allocations in steady state.
  struct Scratch {
    std::vector<std::string> left_tokens, right_tokens;
    std::vector<std::string> all_left, all_right;
    la::Vec mean_left, mean_right;
  };

  /// `embeddings` may be null; embedding-cosine features are then 0.
  PairFeaturizer(Schema schema,
                 std::shared_ptr<const EmbeddingStore> embeddings,
                 Tokenizer tokenizer = Tokenizer());

  int FeatureCount() const;
  std::vector<std::string> FeatureNames() const;

  la::Vec Extract(const RecordPair& pair) const;

  /// Extract writing into `out` (resized to FeatureCount()) with all
  /// intermediate buffers drawn from `scratch`. Bit-identical to Extract.
  void ExtractInto(const RecordPair& pair, Scratch* scratch,
                   la::Vec* out) const;

  const Schema& schema() const { return schema_; }

 private:
  static constexpr int kPerAttribute = 5;
  static constexpr int kGlobal = 3;

  Schema schema_;
  std::shared_ptr<const EmbeddingStore> embeddings_;
  Tokenizer tokenizer_;
};

/// Z-score standardizer fitted on training features; keeps matcher training
/// numerically well-behaved. Constant features are passed through unchanged.
class FeatureScaler {
 public:
  void Fit(const std::vector<la::Vec>& rows);
  la::Vec Transform(const la::Vec& row) const;
  /// Standardizes `row` in place (batch scoring hot loop; no allocation).
  void TransformInPlace(la::Vec* row) const;
  bool fitted() const { return !mean_.empty(); }

 private:
  la::Vec mean_;
  la::Vec inv_std_;
};

}  // namespace crew

#endif  // CREW_MODEL_FEATURES_H_
