#ifndef CREW_MODEL_MLP_MATCHER_H_
#define CREW_MODEL_MLP_MATCHER_H_

#include <memory>

#include "crew/common/status.h"
#include "crew/data/dataset.h"
#include "crew/la/matrix.h"
#include "crew/model/features.h"
#include "crew/model/matcher.h"

namespace crew {

struct MlpConfig {
  int hidden_units = 16;
  int epochs = 60;
  double learning_rate = 0.05;
  double l2 = 1e-4;
  uint64_t seed = 19;
};

/// One-hidden-layer (tanh) neural matcher over PairFeaturizer features,
/// trained with per-sample SGD. A nonlinear black box whose decisions the
/// explainers cannot read off a weight vector.
class MlpMatcher : public Matcher {
 public:
  static Result<std::unique_ptr<MlpMatcher>> Train(
      const Dataset& train, std::shared_ptr<const EmbeddingStore> embeddings,
      const MlpConfig& config = MlpConfig());

  double PredictProba(const RecordPair& pair) const override;
  using Matcher::PredictProbaBatch;
  void PredictProbaBatch(const RecordPair* pairs, size_t count,
                         double* out) const override;
  double threshold() const override { return threshold_; }
  std::string Name() const override { return "mlp"; }

 private:
  MlpMatcher(PairFeaturizer featurizer, FeatureScaler scaler, la::Matrix w1,
             la::Vec b1, la::Vec w2, double b2, double threshold)
      : featurizer_(std::move(featurizer)), scaler_(std::move(scaler)),
        w1_(std::move(w1)), b1_(std::move(b1)), w2_(std::move(w2)), b2_(b2),
        threshold_(threshold) {}

  double Forward(const la::Vec& x) const;

  PairFeaturizer featurizer_;
  FeatureScaler scaler_;
  la::Matrix w1_;  // hidden x input
  la::Vec b1_;
  la::Vec w2_;  // hidden
  double b2_;
  double threshold_;
};

}  // namespace crew

#endif  // CREW_MODEL_MLP_MATCHER_H_
