#include "crew/model/embedding_bag_matcher.h"

#include <cmath>

#include "crew/common/rng.h"
#include "crew/common/trace.h"
#include "crew/la/vector_ops.h"
#include "crew/model/metrics.h"

namespace crew {
namespace {

// Resolves tokens to embedding rows through the scratch's persistent
// cache; each distinct token hits the vocabulary hash at most once per
// scratch lifetime (i.e. once per perturbation batch).
void ResolveIds(const EmbeddingStore& embeddings,
                const std::vector<std::string>& tokens,
                std::unordered_map<std::string, int>* cache,
                std::vector<int>* ids) {
  ids->clear();
  ids->reserve(tokens.size());
  for (const auto& tok : tokens) {
    auto it = cache->find(tok);
    if (it == cache->end()) {
      it = cache->emplace(tok, embeddings.TokenId(tok)).first;
    }
    ids->push_back(it->second);
  }
}

void EncodePairInto(const Schema& schema, const EmbeddingStore& embeddings,
                    const Tokenizer& tokenizer, const RecordPair& pair,
                    EmbeddingBagMatcher::EncodeScratch* scratch, la::Vec* out) {
  const int dim = embeddings.dim();
  la::Vec& x = *out;
  x.clear();
  x.reserve(static_cast<size_t>(schema.size()) * (2 * dim + 2));
  std::vector<std::string>& left_tokens = scratch->left_tokens;
  std::vector<std::string>& right_tokens = scratch->right_tokens;
  std::vector<int>& left_ids = scratch->left_ids;
  std::vector<int>& right_ids = scratch->right_ids;
  la::Vec& l = scratch->left_mean;
  la::Vec& r = scratch->right_mean;
  for (int a = 0; a < schema.size(); ++a) {
    tokenizer.TokenizeInto(pair.left.values[a], &left_tokens);
    tokenizer.TokenizeInto(pair.right.values[a], &right_tokens);
    ResolveIds(embeddings, left_tokens, &scratch->token_ids, &left_ids);
    ResolveIds(embeddings, right_tokens, &scratch->token_ids, &right_ids);
    embeddings.MeanVectorOfIdsInto(left_ids, &l);
    embeddings.MeanVectorOfIdsInto(right_ids, &r);
    for (int c = 0; c < dim; ++c) x.push_back(std::fabs(l[c] - r[c]));
    for (int c = 0; c < dim; ++c) x.push_back(l[c] * r[c]);
    // Two scalar interactions that sharpen the blurry mean-pooled signal:
    // cosine of the attribute encodings and the fraction of the attribute's
    // tokens whose best counterpart vector is (near-)identical.
    x.push_back(la::Cosine(l, r));
    double aligned = 0.0;
    if (!left_tokens.empty() && !right_tokens.empty()) {
      int hits = 0;
      for (size_t li = 0; li < left_ids.size(); ++li) {
        double best = -1.0;
        for (size_t ri = 0; ri < right_ids.size(); ++ri) {
          double sim;
          if (left_ids[li] >= 0 && right_ids[ri] >= 0) {
            // In-vocabulary: equal ids <=> equal tokens.
            sim = left_ids[li] == right_ids[ri]
                      ? 1.0
                      : embeddings.SimilarityById(left_ids[li], right_ids[ri]);
          } else {
            // OOV on either side: Similarity would return 0, so only the
            // exact-string match can score.
            sim = left_tokens[li] == right_tokens[ri] ? 1.0 : 0.0;
          }
          best = std::max(best, sim);
        }
        if (best > 0.95) ++hits;
      }
      aligned = static_cast<double>(hits) /
                static_cast<double>(left_tokens.size());
    }
    x.push_back(aligned);
  }
}

la::Vec EncodePair(const Schema& schema, const EmbeddingStore& embeddings,
                   const Tokenizer& tokenizer, const RecordPair& pair) {
  EmbeddingBagMatcher::EncodeScratch scratch;
  la::Vec x;
  EncodePairInto(schema, embeddings, tokenizer, pair, &scratch, &x);
  return x;
}

}  // namespace

Result<std::unique_ptr<EmbeddingBagMatcher>> EmbeddingBagMatcher::Train(
    const Dataset& train, std::shared_ptr<const EmbeddingStore> embeddings,
    const EmbeddingBagConfig& config) {
  if (train.empty()) {
    return Status::InvalidArgument("EmbeddingBagMatcher: empty training set");
  }
  if (embeddings == nullptr) {
    return Status::InvalidArgument(
        "EmbeddingBagMatcher: embeddings are required");
  }
  Tokenizer tokenizer;
  const Schema& schema = train.schema();
  std::vector<la::Vec> rows;
  std::vector<int> labels;
  EmbeddingBagMatcher::EncodeScratch scratch;
  la::Vec encoded;
  for (const auto& pair : train.pairs()) {
    if (pair.label != 0 && pair.label != 1) continue;
    EncodePairInto(schema, *embeddings, tokenizer, pair, &scratch, &encoded);
    rows.push_back(encoded);
    labels.push_back(pair.label);
  }
  if (rows.empty()) {
    return Status::InvalidArgument("EmbeddingBagMatcher: no labeled pairs");
  }

  const int n = static_cast<int>(rows.size());
  const int d = static_cast<int>(rows[0].size());
  const int h = config.hidden_units;
  Rng rng(config.seed);
  la::Matrix w1(h, d);
  la::Vec b1(h, 0.0), w2(h, 0.0);
  double b2 = 0.0;
  const double init = 1.0 / std::sqrt(static_cast<double>(d));
  for (int i = 0; i < h; ++i) {
    for (int j = 0; j < d; ++j) w1.At(i, j) = rng.Uniform(-init, init);
    w2[i] = rng.Uniform(-0.5, 0.5) / std::sqrt(static_cast<double>(h));
  }

  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  la::Vec hidden(h), delta_hidden(h);
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(order);
    const double lr =
        config.learning_rate / (1.0 + 0.05 * static_cast<double>(epoch));
    for (int idx : order) {
      const la::Vec& x = rows[idx];
      for (int i = 0; i < h; ++i) {
        const double* row = w1.Row(i);
        double s = b1[i];
        for (int j = 0; j < d; ++j) s += row[j] * x[j];
        hidden[i] = std::tanh(s);
      }
      const double p = la::Sigmoid(la::Dot(w2, hidden) + b2);
      const double err = p - labels[idx];
      for (int i = 0; i < h; ++i) {
        delta_hidden[i] = err * w2[i] * (1.0 - hidden[i] * hidden[i]);
      }
      for (int i = 0; i < h; ++i) {
        w2[i] -= lr * (err * hidden[i] + config.l2 * w2[i]);
        double* row = w1.Row(i);
        const double dh = delta_hidden[i];
        for (int j = 0; j < d; ++j) {
          row[j] -= lr * (dh * x[j] + config.l2 * row[j]);
        }
        b1[i] -= lr * dh;
      }
      b2 -= lr * err;
    }
  }

  auto matcher = std::unique_ptr<EmbeddingBagMatcher>(new EmbeddingBagMatcher(
      schema, embeddings, tokenizer, std::move(w1), std::move(b1),
      std::move(w2), b2, /*threshold=*/0.5));
  std::vector<double> scores(n);
  for (int i = 0; i < n; ++i) scores[i] = matcher->Forward(rows[i]);
  matcher->threshold_ = BestF1Threshold(scores, labels);
  return matcher;
}

la::Vec EmbeddingBagMatcher::Encode(const RecordPair& pair) const {
  return EncodePair(schema_, *embeddings_, tokenizer_, pair);
}

void EmbeddingBagMatcher::EncodeInto(const RecordPair& pair,
                                     EncodeScratch* scratch, la::Vec* x) const {
  EncodePairInto(schema_, *embeddings_, tokenizer_, pair, scratch, x);
}

double EmbeddingBagMatcher::Forward(const la::Vec& x) const {
  const int h = w1_.rows();
  const int d = w1_.cols();
  double z = b2_;
  for (int i = 0; i < h; ++i) {
    const double* row = w1_.Row(i);
    double s = b1_[i];
    for (int j = 0; j < d; ++j) s += row[j] * x[j];
    z += w2_[i] * std::tanh(s);
  }
  return la::Sigmoid(z);
}

double EmbeddingBagMatcher::PredictProba(const RecordPair& pair) const {
  return Forward(Encode(pair));
}

void EmbeddingBagMatcher::PredictProbaBatch(const RecordPair* pairs,
                                            size_t count, double* out) const {
  CREW_TRACE_SPAN("matcher/embedding_bag");
  EncodeScratch scratch;
  la::Vec x;
  for (size_t i = 0; i < count; ++i) {
    EncodeInto(pairs[i], &scratch, &x);
    out[i] = Forward(x);
  }
}

}  // namespace crew
