#include "crew/model/mlp_matcher.h"

#include <cmath>

#include "crew/common/rng.h"
#include "crew/common/trace.h"
#include "crew/model/metrics.h"

namespace crew {

Result<std::unique_ptr<MlpMatcher>> MlpMatcher::Train(
    const Dataset& train, std::shared_ptr<const EmbeddingStore> embeddings,
    const MlpConfig& config) {
  if (train.empty()) {
    return Status::InvalidArgument("MlpMatcher: empty training set");
  }
  if (config.hidden_units <= 0) {
    return Status::InvalidArgument("MlpMatcher: hidden_units must be > 0");
  }
  PairFeaturizer featurizer(train.schema(), std::move(embeddings));
  std::vector<la::Vec> rows;
  std::vector<int> labels;
  for (const auto& pair : train.pairs()) {
    if (pair.label != 0 && pair.label != 1) continue;
    rows.push_back(featurizer.Extract(pair));
    labels.push_back(pair.label);
  }
  if (rows.empty()) {
    return Status::InvalidArgument("MlpMatcher: no labeled pairs");
  }
  FeatureScaler scaler;
  scaler.Fit(rows);
  for (auto& row : rows) row = scaler.Transform(row);

  const int n = static_cast<int>(rows.size());
  const int d = static_cast<int>(rows[0].size());
  const int h = config.hidden_units;
  Rng rng(config.seed);
  la::Matrix w1(h, d);
  la::Vec b1(h, 0.0), w2(h, 0.0);
  double b2 = 0.0;
  const double init = 1.0 / std::sqrt(static_cast<double>(d));
  for (int i = 0; i < h; ++i) {
    for (int j = 0; j < d; ++j) w1.At(i, j) = rng.Uniform(-init, init);
    w2[i] = rng.Uniform(-0.5, 0.5) / std::sqrt(static_cast<double>(h));
  }

  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  la::Vec hidden(h), delta_hidden(h);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(order);
    const double lr = config.learning_rate /
                      (1.0 + 0.05 * static_cast<double>(epoch));
    for (int idx : order) {
      const la::Vec& x = rows[idx];
      // Forward.
      for (int i = 0; i < h; ++i) {
        hidden[i] = std::tanh(la::Dot(la::Vec(w1.Row(i), w1.Row(i) + d), x) +
                              b1[i]);
      }
      const double p = la::Sigmoid(la::Dot(w2, hidden) + b2);
      const double err = p - labels[idx];
      // Backward.
      for (int i = 0; i < h; ++i) {
        delta_hidden[i] = err * w2[i] * (1.0 - hidden[i] * hidden[i]);
      }
      for (int i = 0; i < h; ++i) {
        w2[i] -= lr * (err * hidden[i] + config.l2 * w2[i]);
        double* row = w1.Row(i);
        for (int j = 0; j < d; ++j) {
          row[j] -= lr * (delta_hidden[i] * x[j] + config.l2 * row[j]);
        }
        b1[i] -= lr * delta_hidden[i];
      }
      b2 -= lr * err;
    }
  }

  auto forward = [&](const la::Vec& x) {
    double z = b2;
    for (int i = 0; i < h; ++i) {
      const double* row = w1.Row(i);
      double s = b1[i];
      for (int j = 0; j < d; ++j) s += row[j] * x[j];
      z += w2[i] * std::tanh(s);
    }
    return la::Sigmoid(z);
  };
  std::vector<double> scores(n);
  for (int i = 0; i < n; ++i) scores[i] = forward(rows[i]);
  const double threshold = BestF1Threshold(scores, labels);

  return std::unique_ptr<MlpMatcher>(
      new MlpMatcher(std::move(featurizer), std::move(scaler), std::move(w1),
                     std::move(b1), std::move(w2), b2, threshold));
}

double MlpMatcher::Forward(const la::Vec& x) const {
  const int h = w1_.rows();
  const int d = w1_.cols();
  double z = b2_;
  for (int i = 0; i < h; ++i) {
    const double* row = w1_.Row(i);
    double s = b1_[i];
    for (int j = 0; j < d; ++j) s += row[j] * x[j];
    z += w2_[i] * std::tanh(s);
  }
  return la::Sigmoid(z);
}

double MlpMatcher::PredictProba(const RecordPair& pair) const {
  return Forward(scaler_.Transform(featurizer_.Extract(pair)));
}

void MlpMatcher::PredictProbaBatch(const RecordPair* pairs, size_t count,
                                   double* out) const {
  CREW_TRACE_SPAN("matcher/mlp");
  PairFeaturizer::Scratch scratch;
  la::Vec x;
  for (size_t i = 0; i < count; ++i) {
    featurizer_.ExtractInto(pairs[i], &scratch, &x);
    scaler_.TransformInPlace(&x);
    out[i] = Forward(x);
  }
}

}  // namespace crew
