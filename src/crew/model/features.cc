#include "crew/model/features.h"

#include <algorithm>
#include <cmath>

#include "crew/common/dcheck.h"
#include "crew/text/string_similarity.h"

namespace crew {
namespace {

// Levenshtein on long free text is quadratic; above this length fall back
// to a token-level proxy so perturbation loops stay fast.
constexpr size_t kMaxLevenshteinLength = 48;

double TypeSpecificSimilarity(AttributeType type, const std::string& a,
                              const std::string& b,
                              const std::vector<std::string>& ta,
                              const std::vector<std::string>& tb) {
  switch (type) {
    case AttributeType::kNumeric:
      return NumericSimilarity(a, b);
    case AttributeType::kCategorical:
    case AttributeType::kText:
      if (a.size() <= kMaxLevenshteinLength &&
          b.size() <= kMaxLevenshteinLength) {
        return LevenshteinSimilarity(a, b);
      }
      return DiceCoefficient(ta, tb);
  }
  return 0.0;
}

}  // namespace

PairFeaturizer::PairFeaturizer(Schema schema,
                               std::shared_ptr<const EmbeddingStore> embeddings,
                               Tokenizer tokenizer)
    : schema_(std::move(schema)),
      embeddings_(std::move(embeddings)),
      tokenizer_(tokenizer) {}

int PairFeaturizer::FeatureCount() const {
  return schema_.size() * kPerAttribute + kGlobal;
}

std::vector<std::string> PairFeaturizer::FeatureNames() const {
  std::vector<std::string> names;
  for (int a = 0; a < schema_.size(); ++a) {
    const std::string& attr = schema_.name(a);
    names.push_back(attr + "_jaccard");
    names.push_back(attr + "_overlap");
    names.push_back(attr + "_monge_elkan");
    names.push_back(attr + "_emb_cosine");
    names.push_back(attr + "_typed_sim");
  }
  names.push_back("all_jaccard");
  names.push_back("all_overlap");
  names.push_back("log_length_ratio");
  return names;
}

la::Vec PairFeaturizer::Extract(const RecordPair& pair) const {
  Scratch scratch;
  la::Vec features;
  ExtractInto(pair, &scratch, &features);
  return features;
}

void PairFeaturizer::ExtractInto(const RecordPair& pair, Scratch* scratch,
                                 la::Vec* out) const {
  CREW_CHECK(static_cast<int>(pair.left.values.size()) == schema_.size());
  CREW_CHECK(static_cast<int>(pair.right.values.size()) == schema_.size());
  la::Vec& features = *out;
  features.clear();
  features.reserve(FeatureCount());

  std::vector<std::string>& ta = scratch->left_tokens;
  std::vector<std::string>& tb = scratch->right_tokens;
  std::vector<std::string>& all_left = scratch->all_left;
  std::vector<std::string>& all_right = scratch->all_right;
  all_left.clear();
  all_right.clear();
  for (int a = 0; a < schema_.size(); ++a) {
    const std::string& va = pair.left.values[a];
    const std::string& vb = pair.right.values[a];
    tokenizer_.TokenizeInto(va, &ta);
    tokenizer_.TokenizeInto(vb, &tb);
    all_left.insert(all_left.end(), ta.begin(), ta.end());
    all_right.insert(all_right.end(), tb.begin(), tb.end());

    features.push_back(JaccardSimilarity(ta, tb));
    features.push_back(OverlapCoefficient(ta, tb));
    features.push_back(MongeElkanSimilarity(ta, tb));
    if (embeddings_ != nullptr) {
      embeddings_->MeanVectorInto(ta, &scratch->mean_left);
      embeddings_->MeanVectorInto(tb, &scratch->mean_right);
      features.push_back(la::Cosine(scratch->mean_left, scratch->mean_right));
    } else {
      features.push_back(0.0);
    }
    features.push_back(
        TypeSpecificSimilarity(schema_.type(a), va, vb, ta, tb));
  }

  features.push_back(JaccardSimilarity(all_left, all_right));
  features.push_back(OverlapCoefficient(all_left, all_right));
  const double la = static_cast<double>(all_left.size()) + 1.0;
  const double lb = static_cast<double>(all_right.size()) + 1.0;
  features.push_back(std::log(la / lb));
  CREW_DCHECK(static_cast<int>(features.size()) == FeatureCount());
}

void FeatureScaler::Fit(const std::vector<la::Vec>& rows) {
  CREW_CHECK(!rows.empty());
  const size_t d = rows[0].size();
  mean_.assign(d, 0.0);
  inv_std_.assign(d, 1.0);
  for (const auto& row : rows) {
    CREW_CHECK(row.size() == d);
    for (size_t i = 0; i < d; ++i) mean_[i] += row[i];
  }
  for (size_t i = 0; i < d; ++i) mean_[i] /= static_cast<double>(rows.size());
  la::Vec var(d, 0.0);
  for (const auto& row : rows) {
    for (size_t i = 0; i < d; ++i) {
      var[i] += (row[i] - mean_[i]) * (row[i] - mean_[i]);
    }
  }
  for (size_t i = 0; i < d; ++i) {
    const double sd = std::sqrt(var[i] / static_cast<double>(rows.size()));
    inv_std_[i] = sd > 1e-9 ? 1.0 / sd : 1.0;
  }
}

la::Vec FeatureScaler::Transform(const la::Vec& row) const {
  la::Vec out = row;
  TransformInPlace(&out);
  return out;
}

void FeatureScaler::TransformInPlace(la::Vec* row) const {
  CREW_CHECK(fitted());
  CREW_CHECK(row->size() == mean_.size());
  for (size_t i = 0; i < row->size(); ++i) {
    (*row)[i] = ((*row)[i] - mean_[i]) * inv_std_[i];
  }
}

}  // namespace crew
