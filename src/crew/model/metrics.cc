#include "crew/model/metrics.h"

#include <algorithm>

#include "crew/common/logging.h"

namespace crew {

double ClassificationMetrics::Precision() const {
  const int denom = true_positives + false_positives;
  return denom > 0 ? static_cast<double>(true_positives) / denom : 0.0;
}

double ClassificationMetrics::Recall() const {
  const int denom = true_positives + false_negatives;
  return denom > 0 ? static_cast<double>(true_positives) / denom : 0.0;
}

double ClassificationMetrics::F1() const {
  const double p = Precision(), r = Recall();
  return p + r > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

double ClassificationMetrics::Accuracy() const {
  const int total =
      true_positives + false_positives + true_negatives + false_negatives;
  return total > 0
             ? static_cast<double>(true_positives + true_negatives) / total
             : 0.0;
}

ClassificationMetrics EvaluateMatcher(const Matcher& matcher,
                                      const Dataset& dataset) {
  ClassificationMetrics m;
  for (const auto& pair : dataset.pairs()) {
    if (pair.label != 0 && pair.label != 1) continue;
    const int pred = matcher.Predict(pair);
    if (pred == 1 && pair.label == 1) ++m.true_positives;
    if (pred == 1 && pair.label == 0) ++m.false_positives;
    if (pred == 0 && pair.label == 0) ++m.true_negatives;
    if (pred == 0 && pair.label == 1) ++m.false_negatives;
  }
  return m;
}

ClassificationMetrics MetricsAtThreshold(const std::vector<double>& scores,
                                         const std::vector<int>& labels,
                                         double threshold) {
  CREW_CHECK(scores.size() == labels.size());
  ClassificationMetrics m;
  for (size_t i = 0; i < scores.size(); ++i) {
    const int pred = scores[i] >= threshold ? 1 : 0;
    if (pred == 1 && labels[i] == 1) ++m.true_positives;
    if (pred == 1 && labels[i] == 0) ++m.false_positives;
    if (pred == 0 && labels[i] == 0) ++m.true_negatives;
    if (pred == 0 && labels[i] == 1) ++m.false_negatives;
  }
  return m;
}

double BestF1Threshold(const std::vector<double>& scores,
                       const std::vector<int>& labels) {
  CREW_CHECK(scores.size() == labels.size());
  if (scores.empty()) return 0.5;
  std::vector<double> candidates = scores;
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  double best_threshold = 0.5;
  double best_f1 = -1.0;
  for (double t : candidates) {
    const double f1 = MetricsAtThreshold(scores, labels, t).F1();
    if (f1 > best_f1) {
      best_f1 = f1;
      best_threshold = t;
    }
  }
  return best_threshold;
}

}  // namespace crew
