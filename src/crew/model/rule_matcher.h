#ifndef CREW_MODEL_RULE_MATCHER_H_
#define CREW_MODEL_RULE_MATCHER_H_

#include <memory>
#include <vector>

#include "crew/common/status.h"
#include "crew/data/dataset.h"
#include "crew/model/features.h"
#include "crew/model/matcher.h"

namespace crew {

struct RuleMatcherConfig {
  /// Maximum number of conjunctive feature conditions.
  int max_conjuncts = 2;
  /// Thresholds are searched over this many quantiles of each feature.
  int threshold_grid = 32;
};

/// Magellan/TuneR-style rule matcher: a conjunction of at most
/// `max_conjuncts` conditions "feature >= threshold", greedily induced to
/// maximize training F1. The probability surface is a logistic fit over
/// the selected features so perturbation explainers see a smooth score.
///
/// Included as the *interpretable-by-construction* baseline the
/// explainability literature contrasts with black boxes: on a rule
/// matcher, a correct explainer must recover exactly the rule's features.
class RuleMatcher : public Matcher {
 public:
  static Result<std::unique_ptr<RuleMatcher>> Train(
      const Dataset& train, std::shared_ptr<const EmbeddingStore> embeddings,
      const RuleMatcherConfig& config = RuleMatcherConfig());

  double PredictProba(const RecordPair& pair) const override;
  double threshold() const override { return threshold_; }
  std::string Name() const override { return "rule"; }

  /// One learned condition.
  struct Condition {
    int feature = -1;
    double cutoff = 0.0;
  };
  const std::vector<Condition>& conditions() const { return conditions_; }

  /// Human-readable rule, e.g. "all_jaccard >= 0.41 AND price_typed_sim >=
  /// 0.93".
  std::string RuleString() const;

 private:
  RuleMatcher(PairFeaturizer featurizer, std::vector<Condition> conditions,
              la::Vec logit_weights, double logit_bias, double threshold)
      : featurizer_(std::move(featurizer)),
        conditions_(std::move(conditions)),
        logit_weights_(std::move(logit_weights)), logit_bias_(logit_bias),
        threshold_(threshold) {}

  PairFeaturizer featurizer_;
  std::vector<Condition> conditions_;
  la::Vec logit_weights_;  ///< one per condition, over (feature - cutoff)
  double logit_bias_;
  double threshold_;
};

}  // namespace crew

#endif  // CREW_MODEL_RULE_MATCHER_H_
