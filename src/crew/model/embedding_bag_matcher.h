#ifndef CREW_MODEL_EMBEDDING_BAG_MATCHER_H_
#define CREW_MODEL_EMBEDDING_BAG_MATCHER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "crew/common/status.h"
#include "crew/data/dataset.h"
#include "crew/embed/embedding_store.h"
#include "crew/la/matrix.h"
#include "crew/model/matcher.h"
#include "crew/text/tokenizer.h"

namespace crew {

struct EmbeddingBagConfig {
  int hidden_units = 24;
  int epochs = 80;
  double learning_rate = 0.05;
  double l2 = 1e-4;
  uint64_t seed = 23;
};

/// Deep-learning-style matcher working directly on word vectors:
/// each attribute is encoded as the mean embedding of its tokens; the pair
/// representation concatenates per-attribute [|l - r|, l ⊙ r, cos(l, r),
/// aligned-token fraction] interaction
/// vectors; a tanh hidden layer + sigmoid produces P(match).
///
/// This is the closest stand-in for the BERT/DeepMatcher models the paper
/// explains: its decision depends on every individual word through the
/// embedding average, with no hand-crafted similarity features.
class EmbeddingBagMatcher : public Matcher {
 public:
  static Result<std::unique_ptr<EmbeddingBagMatcher>> Train(
      const Dataset& train, std::shared_ptr<const EmbeddingStore> embeddings,
      const EmbeddingBagConfig& config = EmbeddingBagConfig());

  double PredictProba(const RecordPair& pair) const override;
  using Matcher::PredictProbaBatch;
  void PredictProbaBatch(const RecordPair* pairs, size_t count,
                         double* out) const override;
  double threshold() const override { return threshold_; }
  std::string Name() const override { return "embedding_bag"; }

  /// Reusable buffers for EncodeInto (see PairFeaturizer::Scratch). The
  /// token -> embedding-row cache persists across the scratch's lifetime:
  /// a perturbation batch re-encodes hundreds of variants of one pair, so
  /// after the first variant almost every token resolves from the cache
  /// and the aligned-fraction loop runs on ids (no hashing) only.
  ///
  /// Iteration-order audit (crew-lint unordered-iter): `token_ids` is
  /// lookup-only (ResolveIds probes it per token in token order); encoded
  /// features are laid out by schema attribute and token position, so
  /// hash-bucket order never reaches the feature vector.
  struct EncodeScratch {
    std::vector<std::string> left_tokens, right_tokens;
    std::vector<int> left_ids, right_ids;
    std::unordered_map<std::string, int> token_ids;
    la::Vec left_mean, right_mean;
  };

 private:
  EmbeddingBagMatcher(Schema schema,
                      std::shared_ptr<const EmbeddingStore> embeddings,
                      Tokenizer tokenizer, la::Matrix w1, la::Vec b1,
                      la::Vec w2, double b2, double threshold)
      : schema_(std::move(schema)), embeddings_(std::move(embeddings)),
        tokenizer_(tokenizer), w1_(std::move(w1)), b1_(std::move(b1)),
        w2_(std::move(w2)), b2_(b2), threshold_(threshold) {}

  /// Pair -> interaction vector of size schema.size() * 2 * dim.
  la::Vec Encode(const RecordPair& pair) const;
  void EncodeInto(const RecordPair& pair, EncodeScratch* scratch,
                  la::Vec* x) const;
  double Forward(const la::Vec& x) const;

  Schema schema_;
  std::shared_ptr<const EmbeddingStore> embeddings_;
  Tokenizer tokenizer_;
  la::Matrix w1_;
  la::Vec b1_;
  la::Vec w2_;
  double b2_;
  double threshold_;
};

}  // namespace crew

#endif  // CREW_MODEL_EMBEDDING_BAG_MATCHER_H_
