#ifndef CREW_MODEL_RANDOM_FOREST_MATCHER_H_
#define CREW_MODEL_RANDOM_FOREST_MATCHER_H_

#include <memory>
#include <vector>

#include "crew/common/status.h"
#include "crew/data/dataset.h"
#include "crew/model/features.h"
#include "crew/model/matcher.h"

namespace crew {

struct RandomForestConfig {
  int num_trees = 25;
  int max_depth = 8;
  int min_samples_leaf = 3;
  /// Features considered per split; <= 0 means sqrt(d).
  int features_per_split = 0;
  uint64_t seed = 29;
};

/// Bagged CART forest (Gini impurity) over PairFeaturizer features.
/// Represents the tree-ensemble matchers (Magellan's default) — a black box
/// with axis-aligned, non-smooth decision surfaces that stress-test
/// perturbation explainers differently than the neural models.
class RandomForestMatcher : public Matcher {
 public:
  static Result<std::unique_ptr<RandomForestMatcher>> Train(
      const Dataset& train, std::shared_ptr<const EmbeddingStore> embeddings,
      const RandomForestConfig& config = RandomForestConfig());

  double PredictProba(const RecordPair& pair) const override;
  using Matcher::PredictProbaBatch;
  void PredictProbaBatch(const RecordPair* pairs, size_t count,
                         double* out) const override;
  double threshold() const override { return threshold_; }
  std::string Name() const override { return "random_forest"; }

  int num_trees() const { return static_cast<int>(trees_.size()); }

 private:
  struct Node {
    int feature = -1;       // -1 for leaves
    double split = 0.0;
    int left = -1;
    int right = -1;
    double leaf_value = 0.0;  // P(match) at the leaf
  };
  using Tree = std::vector<Node>;

  RandomForestMatcher(PairFeaturizer featurizer, std::vector<Tree> trees,
                      double threshold)
      : featurizer_(std::move(featurizer)), trees_(std::move(trees)),
        threshold_(threshold) {}

  static double PredictTree(const Tree& tree, const la::Vec& x);
  double PredictFeatures(const la::Vec& x) const;

  PairFeaturizer featurizer_;
  std::vector<Tree> trees_;
  double threshold_;
};

}  // namespace crew

#endif  // CREW_MODEL_RANDOM_FOREST_MATCHER_H_
