#ifndef CREW_MODEL_MATCHER_H_
#define CREW_MODEL_MATCHER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "crew/data/record.h"

namespace crew {

/// Black-box EM classifier interface.
///
/// This is the *entire* surface explainers are allowed to touch — they may
/// call PredictProba (or its batch form) on arbitrary (perturbed) record
/// pairs and nothing else, exactly as post-hoc explainers treat a deployed
/// BERT matcher.
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Probability in [0, 1] that the pair refers to the same entity.
  virtual double PredictProba(const RecordPair& pair) const = 0;

  /// Scores pairs[0..count) into out[0..count); out[i] is bit-identical to
  /// PredictProba(pairs[i]). The default loops over PredictProba; matchers
  /// override it to hoist per-pair setup (feature buffers, tokenization,
  /// embedding lookups) out of the inner loop so steady-state scoring does
  /// no per-sample allocation. Overrides must be const-thread-safe: the
  /// batch scoring engine invokes them concurrently on disjoint ranges.
  virtual void PredictProbaBatch(const RecordPair* pairs, size_t count,
                                 double* out) const;

  /// Convenience vector form; resizes `out` to pairs.size().
  void PredictProbaBatch(const std::vector<RecordPair>& pairs,
                         std::vector<double>* out) const;

  /// Decision threshold calibrated at training time.
  virtual double threshold() const { return 0.5; }

  /// Short display name ("logistic", "mlp", ...).
  virtual std::string Name() const = 0;

  /// 1 = match, 0 = non-match at the calibrated threshold.
  int Predict(const RecordPair& pair) const {
    return PredictProba(pair) >= threshold() ? 1 : 0;
  }
};

}  // namespace crew

#endif  // CREW_MODEL_MATCHER_H_
