#include "crew/model/matcher.h"

#include "crew/common/trace.h"

namespace crew {

void Matcher::PredictProbaBatch(const RecordPair* pairs, size_t count,
                                double* out) const {
  CREW_TRACE_SPAN("matcher/base");
  for (size_t i = 0; i < count; ++i) out[i] = PredictProba(pairs[i]);
}

void Matcher::PredictProbaBatch(const std::vector<RecordPair>& pairs,
                                std::vector<double>* out) const {
  out->resize(pairs.size());
  PredictProbaBatch(pairs.data(), pairs.size(), out->data());
}

}  // namespace crew
