#include "crew/model/rule_matcher.h"

#include <algorithm>
#include <cmath>

#include "crew/model/metrics.h"

namespace crew {
namespace {

// F1 of the conjunction `conditions` over the feature rows.
double RuleF1(const std::vector<la::Vec>& rows, const std::vector<int>& labels,
              const std::vector<RuleMatcher::Condition>& conditions) {
  ClassificationMetrics m;
  for (size_t i = 0; i < rows.size(); ++i) {
    bool fire = true;
    for (const auto& c : conditions) {
      if (rows[i][c.feature] < c.cutoff) {
        fire = false;
        break;
      }
    }
    const int pred = fire ? 1 : 0;
    if (pred == 1 && labels[i] == 1) ++m.true_positives;
    if (pred == 1 && labels[i] == 0) ++m.false_positives;
    if (pred == 0 && labels[i] == 0) ++m.true_negatives;
    if (pred == 0 && labels[i] == 1) ++m.false_negatives;
  }
  return m.F1();
}

}  // namespace

Result<std::unique_ptr<RuleMatcher>> RuleMatcher::Train(
    const Dataset& train, std::shared_ptr<const EmbeddingStore> embeddings,
    const RuleMatcherConfig& config) {
  if (train.empty()) {
    return Status::InvalidArgument("RuleMatcher: empty training set");
  }
  if (config.max_conjuncts <= 0 || config.threshold_grid < 2) {
    return Status::InvalidArgument("RuleMatcher: bad configuration");
  }
  PairFeaturizer featurizer(train.schema(), std::move(embeddings));
  std::vector<la::Vec> rows;
  std::vector<int> labels;
  for (const auto& pair : train.pairs()) {
    if (pair.label != 0 && pair.label != 1) continue;
    rows.push_back(featurizer.Extract(pair));
    labels.push_back(pair.label);
  }
  if (rows.empty()) {
    return Status::InvalidArgument("RuleMatcher: no labeled pairs");
  }
  const int d = static_cast<int>(rows[0].size());

  // Greedy conjunct induction over quantile cutoffs.
  std::vector<Condition> conditions;
  double best_f1 = -1.0;
  for (int round = 0; round < config.max_conjuncts; ++round) {
    Condition best_condition;
    double round_best = best_f1;
    for (int f = 0; f < d; ++f) {
      bool already_used = false;
      for (const auto& c : conditions) {
        if (c.feature == f) already_used = true;
      }
      if (already_used) continue;
      la::Vec values;
      values.reserve(rows.size());
      for (const auto& row : rows) values.push_back(row[f]);
      std::sort(values.begin(), values.end());
      for (int g = 1; g < config.threshold_grid; ++g) {
        const size_t pos = g * values.size() / config.threshold_grid;
        const double cutoff = values[std::min(pos, values.size() - 1)];
        std::vector<Condition> candidate = conditions;
        candidate.push_back({f, cutoff});
        const double f1 = RuleF1(rows, labels, candidate);
        if (f1 > round_best + 1e-9) {
          round_best = f1;
          best_condition = {f, cutoff};
        }
      }
    }
    if (best_condition.feature < 0) break;  // no conjunct improves F1
    conditions.push_back(best_condition);
    best_f1 = round_best;
  }
  if (conditions.empty()) {
    return Status::FailedPrecondition(
        "RuleMatcher: no informative feature threshold found");
  }

  // Smooth probability: logistic regression over (feature - cutoff) margins
  // of the selected conditions.
  const int k = static_cast<int>(conditions.size());
  la::Vec w(k, 0.0);
  double b = 0.0;
  const int epochs = 300;
  const double lr = 0.5;
  // L2 keeps the slope finite on separable data: the probability surface
  // must stay graded or perturbation explainers see a step function.
  const double l2 = 5e-3;
  la::Vec margins(k);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    la::Vec grad(k, 0.0);
    double grad_b = 0.0;
    for (size_t i = 0; i < rows.size(); ++i) {
      for (int c = 0; c < k; ++c) {
        margins[c] = rows[i][conditions[c].feature] - conditions[c].cutoff;
      }
      const double err = la::Sigmoid(la::Dot(w, margins) + b) - labels[i];
      la::Axpy(err, margins, grad);
      grad_b += err;
    }
    const double inv_n = 1.0 / static_cast<double>(rows.size());
    for (int c = 0; c < k; ++c) {
      w[c] -= lr * (grad[c] * inv_n + l2 * w[c]);
    }
    b -= lr * grad_b * inv_n;
  }

  auto matcher = std::unique_ptr<RuleMatcher>(new RuleMatcher(
      std::move(featurizer), std::move(conditions), std::move(w), b, 0.5));
  std::vector<double> scores(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    for (int c = 0; c < k; ++c) {
      margins[c] = rows[i][matcher->conditions_[c].feature] -
                   matcher->conditions_[c].cutoff;
    }
    scores[i] =
        la::Sigmoid(la::Dot(matcher->logit_weights_, margins) +
                    matcher->logit_bias_);
  }
  matcher->threshold_ = BestF1Threshold(scores, labels);
  return matcher;
}

double RuleMatcher::PredictProba(const RecordPair& pair) const {
  const la::Vec features = featurizer_.Extract(pair);
  la::Vec margins(conditions_.size());
  for (size_t c = 0; c < conditions_.size(); ++c) {
    margins[c] = features[conditions_[c].feature] - conditions_[c].cutoff;
  }
  return la::Sigmoid(la::Dot(logit_weights_, margins) + logit_bias_);
}

std::string RuleMatcher::RuleString() const {
  const auto names = featurizer_.FeatureNames();
  std::string out;
  for (size_t c = 0; c < conditions_.size(); ++c) {
    if (c > 0) out += " AND ";
    out += names[conditions_[c].feature];
    out += " >= ";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", conditions_[c].cutoff);
    out += buf;
  }
  return out;
}

}  // namespace crew
