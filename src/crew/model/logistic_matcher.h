#ifndef CREW_MODEL_LOGISTIC_MATCHER_H_
#define CREW_MODEL_LOGISTIC_MATCHER_H_

#include <memory>

#include "crew/common/status.h"
#include "crew/data/dataset.h"
#include "crew/model/features.h"
#include "crew/model/matcher.h"

namespace crew {

struct LogisticConfig {
  int epochs = 300;
  double learning_rate = 0.5;
  double l2 = 1e-3;
  uint64_t seed = 17;
};

/// L2-regularized logistic regression over PairFeaturizer features, trained
/// with full-batch gradient descent. The simplest (and most transparent)
/// matcher; used as the "shallow ML" baseline model under explanation.
class LogisticMatcher : public Matcher {
 public:
  static Result<std::unique_ptr<LogisticMatcher>> Train(
      const Dataset& train, std::shared_ptr<const EmbeddingStore> embeddings,
      const LogisticConfig& config = LogisticConfig());

  double PredictProba(const RecordPair& pair) const override;
  using Matcher::PredictProbaBatch;
  void PredictProbaBatch(const RecordPair* pairs, size_t count,
                         double* out) const override;
  double threshold() const override { return threshold_; }
  std::string Name() const override { return "logistic"; }

  /// Learned weights in standardized feature space (for tests/inspection).
  const la::Vec& weights() const { return weights_; }

 private:
  LogisticMatcher(PairFeaturizer featurizer, FeatureScaler scaler,
                  la::Vec weights, double bias, double threshold)
      : featurizer_(std::move(featurizer)), scaler_(std::move(scaler)),
        weights_(std::move(weights)), bias_(bias), threshold_(threshold) {}

  PairFeaturizer featurizer_;
  FeatureScaler scaler_;
  la::Vec weights_;
  double bias_;
  double threshold_;
};

}  // namespace crew

#endif  // CREW_MODEL_LOGISTIC_MATCHER_H_
