#include "crew/model/logistic_matcher.h"

#include "crew/common/trace.h"
#include "crew/model/metrics.h"

namespace crew {

Result<std::unique_ptr<LogisticMatcher>> LogisticMatcher::Train(
    const Dataset& train, std::shared_ptr<const EmbeddingStore> embeddings,
    const LogisticConfig& config) {
  if (train.empty()) {
    return Status::InvalidArgument("LogisticMatcher: empty training set");
  }
  PairFeaturizer featurizer(train.schema(), std::move(embeddings));
  std::vector<la::Vec> rows;
  std::vector<int> labels;
  for (const auto& pair : train.pairs()) {
    if (pair.label != 0 && pair.label != 1) continue;
    rows.push_back(featurizer.Extract(pair));
    labels.push_back(pair.label);
  }
  if (rows.empty()) {
    return Status::InvalidArgument("LogisticMatcher: no labeled pairs");
  }
  FeatureScaler scaler;
  scaler.Fit(rows);
  for (auto& row : rows) row = scaler.Transform(row);

  const int n = static_cast<int>(rows.size());
  const int d = static_cast<int>(rows[0].size());
  la::Vec w(d, 0.0);
  double b = 0.0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    la::Vec grad(d, 0.0);
    double grad_b = 0.0;
    for (int i = 0; i < n; ++i) {
      const double p = la::Sigmoid(la::Dot(w, rows[i]) + b);
      const double err = p - labels[i];
      la::Axpy(err, rows[i], grad);
      grad_b += err;
    }
    const double inv_n = 1.0 / n;
    for (int j = 0; j < d; ++j) {
      w[j] -= config.learning_rate * (grad[j] * inv_n + config.l2 * w[j]);
    }
    b -= config.learning_rate * grad_b * inv_n;
  }

  std::vector<double> scores(n);
  for (int i = 0; i < n; ++i) {
    scores[i] = la::Sigmoid(la::Dot(w, rows[i]) + b);
  }
  const double threshold = BestF1Threshold(scores, labels);
  return std::unique_ptr<LogisticMatcher>(new LogisticMatcher(
      std::move(featurizer), std::move(scaler), std::move(w), b, threshold));
}

double LogisticMatcher::PredictProba(const RecordPair& pair) const {
  const la::Vec x = scaler_.Transform(featurizer_.Extract(pair));
  return la::Sigmoid(la::Dot(weights_, x) + bias_);
}

void LogisticMatcher::PredictProbaBatch(const RecordPair* pairs, size_t count,
                                        double* out) const {
  CREW_TRACE_SPAN("matcher/logistic");
  PairFeaturizer::Scratch scratch;
  la::Vec x;
  for (size_t i = 0; i < count; ++i) {
    featurizer_.ExtractInto(pairs[i], &scratch, &x);
    scaler_.TransformInPlace(&x);
    out[i] = la::Sigmoid(la::Dot(weights_, x) + bias_);
  }
}

}  // namespace crew
