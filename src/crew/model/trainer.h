#ifndef CREW_MODEL_TRAINER_H_
#define CREW_MODEL_TRAINER_H_

#include <memory>
#include <string>
#include <vector>

#include "crew/common/status.h"
#include "crew/data/dataset.h"
#include "crew/embed/embedding_store.h"
#include "crew/model/matcher.h"
#include "crew/model/metrics.h"

namespace crew {

enum class MatcherKind { kLogistic, kMlp, kEmbeddingBag, kRandomForest, kRule };

const char* MatcherKindName(MatcherKind kind);

/// All matcher kinds, in canonical table order.
std::vector<MatcherKind> AllMatcherKinds();

/// Factory: trains the requested matcher kind with its default
/// configuration (seeded deterministically from `seed`).
Result<std::unique_ptr<Matcher>> TrainMatcher(
    MatcherKind kind, const Dataset& train,
    std::shared_ptr<const EmbeddingStore> embeddings, uint64_t seed = 41);

/// One-call pipeline used by benches and examples: split the dataset, train
/// SGNS embeddings on the training half, train the matcher, evaluate on the
/// held-out half.
struct TrainedPipeline {
  std::shared_ptr<const EmbeddingStore> embeddings;
  std::unique_ptr<Matcher> matcher;
  Dataset train;
  Dataset test;
  ClassificationMetrics test_metrics;
};

Result<TrainedPipeline> TrainPipeline(const Dataset& dataset,
                                      MatcherKind kind,
                                      double train_fraction = 0.7,
                                      uint64_t seed = 41);

}  // namespace crew

#endif  // CREW_MODEL_TRAINER_H_
