#ifndef CREW_MODEL_METRICS_H_
#define CREW_MODEL_METRICS_H_

#include <vector>

#include "crew/data/dataset.h"
#include "crew/model/matcher.h"

namespace crew {

/// Binary classification quality summary.
struct ClassificationMetrics {
  int true_positives = 0;
  int false_positives = 0;
  int true_negatives = 0;
  int false_negatives = 0;

  double Precision() const;
  double Recall() const;
  double F1() const;
  double Accuracy() const;
};

/// Scores `matcher` on every labeled pair of `dataset` at its calibrated
/// threshold. Unlabeled pairs are skipped.
ClassificationMetrics EvaluateMatcher(const Matcher& matcher,
                                      const Dataset& dataset);

/// Metrics of thresholding `scores` at `threshold` against binary `labels`.
ClassificationMetrics MetricsAtThreshold(const std::vector<double>& scores,
                                         const std::vector<int>& labels,
                                         double threshold);

/// Threshold in (0,1) maximizing F1 on (scores, labels); 0.5 if degenerate.
double BestF1Threshold(const std::vector<double>& scores,
                       const std::vector<int>& labels);

}  // namespace crew

#endif  // CREW_MODEL_METRICS_H_
