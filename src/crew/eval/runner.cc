#include "crew/eval/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <utility>

#include "crew/common/dcheck.h"
#include "crew/common/logging.h"
#include "crew/common/metrics.h"
#include "crew/common/thread_pool.h"
#include "crew/common/timer.h"
#include "crew/common/trace.h"
#include "crew/eval/comprehensibility.h"
#include "crew/eval/stability.h"
#include "crew/eval/streaming.h"

namespace crew {
namespace {

std::atomic<bool> g_stable_timing{false};

}  // namespace

void SetStableTiming(bool stable) {
  g_stable_timing.store(stable, std::memory_order_relaxed);
}

bool StableTiming() {
  return g_stable_timing.load(std::memory_order_relaxed);
}

void ZeroCellTimings(ExperimentCell* cell) {
  cell->wall_ms = 0.0;
  cell->scoring.materialize_ms = 0.0;
  cell->scoring.predict_ms = 0.0;
  cell->aggregate.runtime_ms = 0.0;
  for (MetricEntry& entry : cell->registry) entry.total_ms = 0.0;
  for (InstanceEvaluation& r : cell->instances) r.runtime_ms = 0.0;
}

namespace {

// Runner-level registry handles (interned once, leaked with the registry).
struct RunnerMetrics {
  Counter* instances;
  DurationStat* instance_wall;
  DurationStat* instance_cpu;
};

RunnerMetrics& Runner() {
  static RunnerMetrics* m = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    auto* r = new RunnerMetrics();
    r->instances = reg.GetCounter("crew/runner/instances");
    r->instance_wall = reg.GetDuration("crew/runner/instance");
    r->instance_cpu = reg.GetDuration("crew/runner/instance_cpu");
    return r;
  }();
  return *m;
}

// --- Progress heartbeats ---------------------------------------------------

std::atomic<double> g_progress_interval{1.0};

std::mutex g_progress_label_mu;
std::string& ProgressLabelLocked() {
  static std::string* label = new std::string();
  return *label;
}

std::string ProgressLabel() {
  std::lock_guard<std::mutex> lock(g_progress_label_mu);
  return ProgressLabelLocked();
}

std::int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Throttled live progress for one EvaluateInstances call. Tick() is called
// once per finished instance from whichever worker finished it; emission is
// rate-limited by ProgressInterval() and serialized through a CAS on the
// last-emit timestamp. Purely observational: writes only to stderr.
class ProgressMeter {
 public:
  explicit ProgressMeter(int total)
      : total_(total), start_ns_(MonotonicNowNs()), last_emit_ns_(start_ns_) {}

  void Tick() {
    const int done = done_.fetch_add(1, std::memory_order_relaxed) + 1;
    const double interval = g_progress_interval.load(std::memory_order_relaxed);
    if (interval <= 0.0) return;
    const std::int64_t now = MonotonicNowNs();
    std::int64_t last = last_emit_ns_.load(std::memory_order_relaxed);
    const bool final_tick = done == total_;
    if (!final_tick &&
        static_cast<double>(now - last) < interval * 1e9) {
      return;
    }
    // One emitter per interval; losers simply skip.
    if (!last_emit_ns_.compare_exchange_strong(last, now,
                                               std::memory_order_relaxed)) {
      return;
    }
    // The final tick only reports when an earlier heartbeat already fired —
    // fast cells stay silent instead of spamming one line per cell.
    if (final_tick && !emitted_.load(std::memory_order_relaxed)) return;
    emitted_.store(true, std::memory_order_relaxed);
    const double elapsed_s =
        static_cast<double>(now - start_ns_) / 1e9;
    const double rate = elapsed_s > 0.0 ? done / elapsed_s : 0.0;
    const std::string label = ProgressLabel();
    // crew-lint: allow(raw-stdio): heartbeats are a raw operator channel by
    // design — no severity tag or timestamp prefix, so progress lines stay
    // grep-able and CREW_MIN_LOG_LEVEL cannot silence them.
    std::fprintf(stderr, "[progress] %s%s%d/%d instances (%.1f/s)\n",
                 label.c_str(), label.empty() ? "" : " ", done, total_, rate);
  }

 private:
  const int total_;
  const std::int64_t start_ns_;
  std::atomic<int> done_{0};
  std::atomic<std::int64_t> last_emit_ns_;
  std::atomic<bool> emitted_{false};
};

}  // namespace

void SetProgressInterval(double seconds) {
  g_progress_interval.store(seconds, std::memory_order_relaxed);
}

double ProgressInterval() {
  return g_progress_interval.load(std::memory_order_relaxed);
}

ScopedProgressLabel::ScopedProgressLabel(std::string label) {
  std::lock_guard<std::mutex> lock(g_progress_label_mu);
  saved_ = std::move(ProgressLabelLocked());
  ProgressLabelLocked() = std::move(label);
}

ScopedProgressLabel::~ScopedProgressLabel() {
  std::lock_guard<std::mutex> lock(g_progress_label_mu);
  ProgressLabelLocked() = std::move(saved_);
}

Result<InstanceEvaluation> EvaluateInstance(
    const Explainer& explainer, const Matcher& matcher, const Dataset& test,
    int index, const EmbeddingStore* embeddings, uint64_t seed,
    const InstanceEvalOptions& options) {
  CREW_TRACE_SPAN("runner/instance");
  CREW_DCHECK_BOUNDS(index, test.size());
  RunnerMetrics& rm = Runner();
  rm.instances->Increment();
  ScopedDuration wall(rm.instance_wall);
  ScopedCpuDuration cpu(rm.instance_cpu);
  InstanceEvaluation r;
  r.index = index;
  const RecordPair& pair = test.pair(index);
  const uint64_t instance_seed =
      seed ^ (static_cast<uint64_t>(index) << 20);
  auto explained = [&] {
    CREW_TRACE_SPAN("runner/explain");
    return ExplainAsUnitsEx(explainer, matcher, pair, instance_seed);
  }();
  if (!explained.ok()) return explained.status();
  const WordExplanation& words = explained->words;
  const std::vector<ExplanationUnit>& units = explained->units;
  if (units.empty()) return r;  // evaluated stays false
  r.evaluated = true;

  {
    CREW_TRACE_SPAN("runner/eval");
    ScopedMetricStage stage("eval");
    Tokenizer tokenizer;
    EvalInstance instance{
        PairTokenView(AnonymousSchema(pair), tokenizer, pair), units,
        words.base_score, matcher.threshold()};
    r.predicted_match = instance.PredictedMatch();

    r.aopc = AopcDeletion(matcher, instance, options.aopc_max_k);
    r.comprehensiveness_at_1 = ComprehensivenessAtK(matcher, instance, 1);
    r.comprehensiveness_at_3 = ComprehensivenessAtK(matcher, instance, 3);
    r.sufficiency_at_1 = SufficiencyAtK(matcher, instance, 1);
    r.sufficiency_at_3 = SufficiencyAtK(matcher, instance, 3);
    r.comprehensiveness_budget = ComprehensivenessAtTokenBudget(
        matcher, instance, options.token_budget);
    r.decision_flip = DecisionFlipAtTop(matcher, instance);
    r.insertion_aopc =
        AopcInsertion(matcher, instance, options.insertion_max_k);
    r.flip_set = MinimalFlipSet(matcher, instance);
    if (!options.curve_fractions.empty()) {
      r.curve = DeletionCurve(matcher, instance, options.curve_fractions);
    }

    const ComprehensibilityResult comp =
        EvaluateComprehensibility(words, units, embeddings);
    r.total_units = comp.total_units;
    r.effective_units = comp.effective_units;
    r.words_per_unit = comp.avg_words_per_unit;
    r.semantic_coherence = comp.semantic_coherence;
    r.attribute_purity = comp.attribute_purity;
  }

  r.has_cluster_stats = explained->has_cluster_stats;
  r.cluster_coherence = explained->cluster_coherence;
  r.cluster_silhouette = explained->cluster_silhouette;
  r.chosen_k = explained->chosen_k;

  if (!options.stability_seeds.empty()) {
    CREW_TRACE_SPAN("runner/stability");
    ScopedMetricStage stage("stability");
    auto stability =
        ExplainerStability(explainer, matcher, pair, options.stability_seeds,
                           options.stability_top_k);
    if (!stability.ok()) return stability.status();
    r.stability = stability.value();
  }

  r.surrogate_r2 = words.surrogate_r2;
  // The only wall-clock-derived per-instance field; see SetStableTiming.
  r.runtime_ms = StableTiming() ? 0.0 : words.runtime_ms;
  return r;
}

Result<std::vector<InstanceEvaluation>> EvaluateInstances(
    const Explainer& explainer, const Matcher& matcher, const Dataset& test,
    const std::vector<int>& indices, const EmbeddingStore* embeddings,
    uint64_t seed, const InstanceEvalOptions& options) {
  const int n = static_cast<int>(indices.size());
  for (int index : indices) CREW_DCHECK_BOUNDS(index, test.size());
  std::vector<InstanceEvaluation> records(n);
  std::vector<Status> errors(n);
  ProgressMeter progress(n);
  // Every slot is written by exactly one chunk, and the per-instance seed
  // depends only on the pair index, so any thread count produces the same
  // records. Scoring nested inside a chunk runs inline (ParallelFor's
  // nesting rule) — one pool, no oversubscription.
  ParallelFor(SharedScoringPool(), n, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      auto r = EvaluateInstance(explainer, matcher, test, indices[i],
                                embeddings, seed, options);
      if (r.ok()) {
        records[i] = std::move(r.value());
      } else {
        errors[i] = r.status();
      }
      progress.Tick();
    }
  });
  // First error in index order, so failures are as deterministic as
  // successes.
  for (const Status& status : errors) {
    if (!status.ok()) return status;
  }
  return records;
}

ExplainerAggregate ReduceInstancesIf(
    const std::string& name, const std::vector<InstanceEvaluation>& records,
    const std::function<bool(const InstanceEvaluation&)>& filter) {
  ExplainerAggregate agg;
  agg.name = name;
  int flipped = 0;
  int clustered = 0;
  for (const InstanceEvaluation& r : records) {
    if (!r.evaluated) continue;
    if (filter != nullptr && !filter(r)) continue;
    agg.aopc += r.aopc;
    agg.comprehensiveness_at_1 += r.comprehensiveness_at_1;
    agg.comprehensiveness_at_3 += r.comprehensiveness_at_3;
    agg.sufficiency_at_1 += r.sufficiency_at_1;
    agg.sufficiency_at_3 += r.sufficiency_at_3;
    agg.comprehensiveness_budget5 += r.comprehensiveness_budget;
    agg.decision_flip_rate += r.decision_flip ? 1.0 : 0.0;
    agg.insertion_aopc += r.insertion_aopc;
    if (r.flip_set.flipped) {
      agg.flip_set_rate += 1.0;
      agg.flip_set_units += r.flip_set.units_removed;
      agg.flip_set_tokens += r.flip_set.tokens_removed;
      ++flipped;
    }
    agg.total_units += r.total_units;
    agg.effective_units += r.effective_units;
    agg.words_per_unit += r.words_per_unit;
    agg.semantic_coherence += r.semantic_coherence;
    agg.attribute_purity += r.attribute_purity;
    if (r.has_cluster_stats) {
      agg.cluster_coherence += r.cluster_coherence;
      agg.cluster_silhouette += r.cluster_silhouette;
      agg.mean_chosen_k += r.chosen_k;
      ++clustered;
    }
    agg.stability += r.stability;
    agg.surrogate_r2 += r.surrogate_r2;
    agg.runtime_ms += r.runtime_ms;
    ++agg.instances;
  }
  if (agg.instances > 0) {
    const double inv = 1.0 / agg.instances;
    agg.aopc *= inv;
    agg.comprehensiveness_at_1 *= inv;
    agg.comprehensiveness_at_3 *= inv;
    agg.sufficiency_at_1 *= inv;
    agg.sufficiency_at_3 *= inv;
    agg.comprehensiveness_budget5 *= inv;
    agg.decision_flip_rate *= inv;
    agg.insertion_aopc *= inv;
    agg.flip_set_rate *= inv;
    agg.total_units *= inv;
    agg.effective_units *= inv;
    agg.words_per_unit *= inv;
    agg.semantic_coherence *= inv;
    agg.attribute_purity *= inv;
    agg.stability *= inv;
    agg.surrogate_r2 *= inv;
    agg.runtime_ms *= inv;
  }
  if (flipped > 0) {
    agg.flip_set_units /= flipped;
    agg.flip_set_tokens /= flipped;
  }
  if (clustered > 0) {
    agg.cluster_coherence /= clustered;
    agg.cluster_silhouette /= clustered;
    agg.mean_chosen_k /= clustered;
  }
  return agg;
}

ExplainerAggregate ReduceInstances(
    const std::string& name, const std::vector<InstanceEvaluation>& records) {
  return ReduceInstancesIf(name, records, nullptr);
}

std::vector<std::string> ExperimentResult::VariantNames() const {
  std::vector<std::string> names;
  for (const ExperimentCell& cell : cells) {
    if (std::find(names.begin(), names.end(), cell.variant) == names.end()) {
      names.push_back(cell.variant);
    }
  }
  return names;
}

std::vector<double> ExperimentResult::PerInstanceAopc(
    const std::string& variant) const {
  std::vector<double> out;
  for (const ExperimentCell& cell : cells) {
    if (cell.variant != variant) continue;
    for (const InstanceEvaluation& r : cell.instances) {
      if (r.evaluated) out.push_back(r.aopc);
    }
  }
  return out;
}

ExplainerAggregate ExperimentResult::ReduceAcross(
    const std::string& variant) const {
  std::vector<InstanceEvaluation> all;
  for (const ExperimentCell& cell : cells) {
    if (cell.variant != variant) continue;
    all.insert(all.end(), cell.instances.begin(), cell.instances.end());
  }
  return ReduceInstances(variant, all);
}

std::vector<double> ExperimentResult::MeanCurve(
    const std::string& variant) const {
  std::vector<double> sum;
  int n = 0;
  for (const ExperimentCell& cell : cells) {
    if (cell.variant != variant) continue;
    for (const InstanceEvaluation& r : cell.instances) {
      if (!r.evaluated || r.curve.empty()) continue;
      if (sum.empty()) sum.assign(r.curve.size(), 0.0);
      for (size_t i = 0; i < r.curve.size() && i < sum.size(); ++i) {
        sum[i] += r.curve[i];
      }
      ++n;
    }
  }
  if (n > 0) {
    for (double& v : sum) v /= n;
  }
  return sum;
}

std::vector<SuiteEntry> NameSuite(
    std::vector<std::unique_ptr<Explainer>> suite) {
  std::vector<SuiteEntry> out;
  out.reserve(suite.size());
  for (auto& explainer : suite) {
    SuiteEntry entry;
    entry.name = explainer->Name();
    entry.explainer = std::move(explainer);
    out.push_back(std::move(entry));
  }
  return out;
}

Result<PreparedDataset> PrepareDataset(const BenchmarkEntry& entry,
                                       const ExperimentSpec& spec) {
  CREW_TRACE_SPAN("runner/prepare");
  PreparedDataset out;
  out.name = entry.name;
  auto dataset = GenerateDataset(entry.config);
  if (!dataset.ok()) return dataset.status();
  auto pipeline = TrainPipeline(dataset.value(), spec.matcher,
                                spec.train_fraction, spec.seed);
  if (!pipeline.ok()) return pipeline.status();
  out.pipeline = std::move(pipeline.value());
  // Same selection seed the benches have always used, so the explained
  // pairs (and every downstream number) survive the refactor unchanged.
  Rng rng(spec.seed ^ 0xbeac4ULL);
  out.instances =
      SelectExplainInstances(*out.pipeline.matcher, out.pipeline.test,
                             spec.instances_per_dataset, rng);
  return out;
}

ExperimentResult ExperimentRunner::EmptyResult() const {
  ExperimentResult out;
  out.name = spec_.name;
  out.params.push_back({"matcher", MatcherKindName(spec_.matcher)});
  out.params.push_back(
      {"instances", std::to_string(spec_.instances_per_dataset)});
  out.params.push_back({"seed", std::to_string(spec_.seed)});
  out.params.push_back({"threads", std::to_string(ScoringThreads())});
  return out;
}

Result<ExperimentResult> ExperimentRunner::RunWith(
    const std::function<Status(const PreparedDataset&, ExperimentResult*)>&
        fn,
    const RunHooks& hooks) const {
  ExperimentResult out = EmptyResult();
  CellStreamer streamer(hooks);
  // The runner does not know how many cells `fn` will append; a seed-armed
  // fault resolves against the dataset count (one "window" per dataset).
  CREW_RETURN_IF_ERROR(
      streamer.Begin(out, static_cast<int>(spec_.datasets.size())));
  size_t streamed = 0;
  for (const BenchmarkEntry& entry : spec_.datasets) {
    CREW_RETURN_IF_ERROR(streamer.BeforeFreshCell());
    auto prepared = PrepareDataset(entry, spec_);
    if (!prepared.ok()) return prepared.status();
    Status status = fn(prepared.value(), &out);
    if (!status.ok()) return status;
    // Stream whatever the dataset callback appended. Appends are
    // idempotent per cell key, so re-running over an existing checkpoint
    // never duplicates lines — but custom cells are not skipped either
    // (the runner cannot resume work it does not schedule itself).
    for (; streamed < out.cells.size(); ++streamed) {
      if (StableTiming()) ZeroCellTimings(&out.cells[streamed]);
      CREW_RETURN_IF_ERROR(streamer.Emit(out.cells[streamed]));
    }
  }
  CREW_RETURN_IF_ERROR(streamer.Finish(out));
  return out;
}

Result<ExperimentResult> ExperimentRunner::RunPrepared(
    const std::vector<PreparedDataset>& prepared,
    const RunHooks& hooks) const {
  ExperimentResult out = EmptyResult();
  CREW_CHECK(spec_.suite != nullptr);
  // Materialize the whole canonical grid (every suite, every cell slot)
  // before executing anything: checkpoint keys and result positions are a
  // function of the spec alone, never of execution order.
  std::vector<std::vector<SuiteEntry>> suites;
  suites.reserve(prepared.size());
  std::vector<std::pair<int, int>> tasks;  // (prepared idx, suite entry idx)
  for (size_t pi = 0; pi < prepared.size(); ++pi) {
    suites.push_back(spec_.suite(prepared[pi].pipeline));
    for (size_t ei = 0; ei < suites.back().size(); ++ei) {
      tasks.emplace_back(static_cast<int>(pi), static_cast<int>(ei));
    }
  }
  out.cells.resize(tasks.size());

  CellStreamer streamer(hooks);
  CREW_RETURN_IF_ERROR(streamer.Begin(out, static_cast<int>(tasks.size())));

  // Execution order is a pure schedule: shuffling it (shuffle_seed) or
  // skipping restored cells changes which slot is filled when, never what
  // any slot contains — per-instance seeds derive from the grid key.
  std::vector<int> order(tasks.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  if (hooks.shuffle_seed != 0) {
    Rng(hooks.shuffle_seed).Shuffle(order);
  }

  for (const int slot : order) {
    const PreparedDataset& p = prepared[tasks[slot].first];
    const SuiteEntry& entry = suites[tasks[slot].first][tasks[slot].second];
    ExperimentCell& cell = out.cells[slot];
    auto restored = streamer.TryRestore(p.name, entry.name, &cell);
    if (!restored.ok()) return restored.status();
    if (restored.value()) continue;
    CREW_RETURN_IF_ERROR(streamer.BeforeFreshCell());
    ScopedProgressLabel label(p.name + "/" + entry.name);
    const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
    WallTimer timer;
    auto records = EvaluateInstances(
        *entry.explainer, *p.pipeline.matcher, p.pipeline.test, p.instances,
        p.pipeline.embeddings.get(), spec_.seed, spec_.eval);
    if (!records.ok()) return records.status();
    cell.dataset = p.name;
    cell.variant = entry.name;
    cell.wall_ms = timer.ElapsedMillis();
    // One registry read feeds both views, so cell.scoring and
    // cell.registry can never disagree. All-zero entries are dropped so
    // the delta's shape reflects this cell's activity only — metrics a
    // *previous* cell registered must not leak in, or the block would
    // depend on execution order.
    cell.registry = DropZeroMetrics(
        MetricsDelta(MetricsRegistry::Global().Snapshot(), before));
    cell.scoring = ScoringStatsFromMetrics(cell.registry);
    cell.instances = std::move(records.value());
    {
      CREW_TRACE_SPAN("runner/reduce");
      cell.aggregate = ReduceInstances(entry.name, cell.instances);
    }
    if (StableTiming()) ZeroCellTimings(&cell);
    CREW_RETURN_IF_ERROR(streamer.Emit(cell));
  }
  CREW_RETURN_IF_ERROR(streamer.Finish(out));
  return out;
}

Result<ExperimentResult> ExperimentRunner::Run(const RunHooks& hooks) const {
  std::vector<PreparedDataset> prepared;
  prepared.reserve(spec_.datasets.size());
  for (const BenchmarkEntry& entry : spec_.datasets) {
    auto p = PrepareDataset(entry, spec_);
    if (!p.ok()) return p.status();
    prepared.push_back(std::move(p.value()));
  }
  return RunPrepared(prepared, hooks);
}

}  // namespace crew
