#include "crew/eval/comprehensibility.h"

#include <algorithm>
#include <cmath>

namespace crew {

ComprehensibilityResult EvaluateComprehensibility(
    const WordExplanation& words, const std::vector<ExplanationUnit>& units,
    const EmbeddingStore* embeddings) {
  ComprehensibilityResult out;
  out.total_units = static_cast<int>(units.size());
  if (units.empty()) return out;

  // Effective units: smallest prefix (by |weight|) covering 90% of mass.
  std::vector<double> magnitudes;
  double mass = 0.0;
  for (const auto& unit : units) {
    magnitudes.push_back(std::fabs(unit.weight));
    mass += magnitudes.back();
  }
  std::sort(magnitudes.begin(), magnitudes.end(), std::greater<double>());
  if (mass <= 0.0) {
    out.effective_units = out.total_units;
  } else {
    double acc = 0.0;
    for (size_t i = 0; i < magnitudes.size(); ++i) {
      acc += magnitudes[i];
      if (acc >= 0.9 * mass) {
        out.effective_units = static_cast<int>(i) + 1;
        break;
      }
    }
  }

  int64_t total_words = 0;
  int pure_units = 0;
  double sim_sum = 0.0;
  int sim_count = 0;
  for (const auto& unit : units) {
    total_words += static_cast<int64_t>(unit.member_indices.size());
    bool pure = true;
    for (size_t x = 0; x < unit.member_indices.size(); ++x) {
      const auto& tx = words.attributions[unit.member_indices[x]].token;
      if (tx.attribute !=
          words.attributions[unit.member_indices[0]].token.attribute) {
        pure = false;
      }
      for (size_t y = x + 1;
           embeddings != nullptr && y < unit.member_indices.size(); ++y) {
        const auto& ty = words.attributions[unit.member_indices[y]].token;
        sim_sum += embeddings->Similarity(tx.text, ty.text);
        ++sim_count;
      }
    }
    if (pure) ++pure_units;
  }
  out.avg_words_per_unit =
      static_cast<double>(total_words) / static_cast<double>(units.size());
  out.semantic_coherence = sim_count > 0 ? sim_sum / sim_count : 0.0;
  out.attribute_purity =
      static_cast<double>(pure_units) / static_cast<double>(units.size());
  return out;
}

}  // namespace crew
