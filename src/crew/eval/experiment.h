#ifndef CREW_EVAL_EXPERIMENT_H_
#define CREW_EVAL_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "crew/core/crew_explainer.h"
#include "crew/data/dataset.h"
#include "crew/eval/comprehensibility.h"
#include "crew/eval/faithfulness.h"
#include "crew/model/trainer.h"

namespace crew {

/// Configuration of the explainer line-up used by the comparison tables.
struct ExplainerSuiteConfig {
  /// Perturbation samples per explanation for every sampling explainer.
  int num_samples = 128;
  /// Counterfactual substitutions per token for CERTA.
  int certa_substitutions = 6;
  bool include_random = true;
  /// CREW's own knobs (its perturbation budget is synced to num_samples).
  CrewConfig crew;
};

/// Builds the full line-up: lime, mojito_drop, mojito_copy, landmark,
/// lemon, certa, (random), wym, crew — in canonical table order.
/// `support` feeds CERTA's counterfactual pools (use the training split);
/// `embeddings` feed CREW's semantic knowledge.
std::vector<std::unique_ptr<Explainer>> BuildExplainerSuite(
    std::shared_ptr<const EmbeddingStore> embeddings, const Dataset& support,
    const ExplainerSuiteConfig& config);

/// Picks up to `n` indices of labeled test pairs, balanced between pairs
/// the *matcher* predicts as match and as non-match (explanations are about
/// predictions, not gold labels).
std::vector<int> SelectExplainInstances(const Matcher& matcher,
                                        const Dataset& test, int n, Rng& rng);

/// Per-explainer aggregate over a set of explained instances. Every column
/// any experiment table prints is a mean of the per-instance records the
/// runner collects (see crew/eval/runner.h); the reduction is deterministic
/// (instance-index order), so aggregates are bit-identical for any
/// `--threads` value.
struct ExplainerAggregate {
  std::string name;
  int instances = 0;
  // Faithfulness (higher comprehensiveness/AOPC better; lower suff better).
  double aopc = 0.0;
  double comprehensiveness_at_1 = 0.0;
  double comprehensiveness_at_3 = 0.0;
  double sufficiency_at_1 = 0.0;
  double sufficiency_at_3 = 0.0;
  double comprehensiveness_budget5 = 0.0;  ///< equal-token (5 words) budget
  double decision_flip_rate = 0.0;
  double insertion_aopc = 0.0;
  // Minimal flip sets (units/tokens averaged over flipped instances only).
  double flip_set_rate = 0.0;
  double flip_set_units = 0.0;
  double flip_set_tokens = 0.0;
  // Comprehensibility.
  double total_units = 0.0;
  double effective_units = 0.0;
  double words_per_unit = 0.0;
  double semantic_coherence = 0.0;
  double attribute_purity = 0.0;
  // Cluster-level signals (CREW-family explainers only; 0 otherwise).
  double cluster_coherence = 0.0;
  double cluster_silhouette = 0.0;
  double mean_chosen_k = 0.0;
  /// Mean seed-stability Jaccard; only populated when the runner was asked
  /// to measure stability (InstanceEvalOptions::stability_seeds).
  double stability = 0.0;
  // Bookkeeping.
  double surrogate_r2 = 0.0;
  double runtime_ms = 0.0;
};

/// Explains each selected pair and averages all metrics. CREW is detected
/// dynamically so its cluster units are evaluated as units; every other
/// explainer contributes singleton (word) units.
/// `per_instance_aopc` (optional) receives one AOPC value per evaluated
/// instance, in `instance_indices` order — the paired samples the
/// significance tests (PairedBootstrap) consume.
///
/// Implemented on top of the runner: instances are sharded across the
/// shared scoring pool with per-instance seeds `seed ^ (idx << 20)`, and
/// the reduction runs in index order, so the result is bit-identical to
/// the historical serial loop for any `--threads` value.
Result<ExplainerAggregate> EvaluateExplainerOnDataset(
    const Explainer& explainer, const Matcher& matcher, const Dataset& test,
    const std::vector<int>& instance_indices,
    const EmbeddingStore* embeddings, uint64_t seed,
    std::vector<double>* per_instance_aopc = nullptr);

/// One explanation lifted to evaluation units, plus the cluster-level
/// diagnostics that only cluster explainers (CREW) produce.
struct UnitizedExplanation {
  WordExplanation words;
  std::vector<ExplanationUnit> units;
  /// Valid only when has_cluster_stats (the explainer was CREW).
  bool has_cluster_stats = false;
  double cluster_coherence = 0.0;
  double cluster_silhouette = 0.0;
  int chosen_k = 0;
};

/// Unitizes one explanation: CREW -> clusters (keeping coherence /
/// silhouette / chosen K), WYM -> decision units, everything else ->
/// one-word units.
Result<UnitizedExplanation> ExplainAsUnitsEx(const Explainer& explainer,
                                             const Matcher& matcher,
                                             const RecordPair& pair,
                                             uint64_t seed);

/// Unitizes one explanation: CREW -> clusters, everything else ->
/// one-word units. Returns the word explanation plus the units.
Result<std::pair<WordExplanation, std::vector<ExplanationUnit>>>
ExplainAsUnits(const Explainer& explainer, const Matcher& matcher,
               const RecordPair& pair, uint64_t seed);

}  // namespace crew

#endif  // CREW_EVAL_EXPERIMENT_H_
