#include "crew/eval/global_explanation.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace crew {

Result<GlobalExplanation> BuildGlobalExplanation(
    const Explainer& explainer, const Matcher& matcher,
    const Dataset& dataset, const std::vector<int>& instance_indices,
    uint64_t seed, int min_occurrences) {
  GlobalExplanation global;
  struct TokenAcc {
    int n = 0;
    double sum = 0.0;
    double sum_abs = 0.0;
  };
  std::map<std::string, TokenAcc> token_acc;
  std::map<int, double> attribute_acc;
  double total_mass = 0.0;

  for (int idx : instance_indices) {
    auto explanation =
        explainer.Explain(matcher, dataset.pair(idx),
                          seed ^ (static_cast<uint64_t>(idx) << 16));
    if (!explanation.ok()) return explanation.status();
    for (const auto& a : explanation.value().attributions) {
      TokenAcc& acc = token_acc[a.token.text];
      ++acc.n;
      acc.sum += a.weight;
      acc.sum_abs += std::fabs(a.weight);
      attribute_acc[a.token.attribute] += std::fabs(a.weight);
      total_mass += std::fabs(a.weight);
    }
    ++global.instances;
  }

  for (const auto& [text, acc] : token_acc) {
    if (acc.n < min_occurrences) continue;
    GlobalTokenStat stat;
    stat.token = text;
    stat.occurrences = acc.n;
    stat.mean_weight = acc.sum / acc.n;
    stat.mean_abs_weight = acc.sum_abs / acc.n;
    global.tokens.push_back(std::move(stat));
  }
  std::sort(global.tokens.begin(), global.tokens.end(),
            [](const GlobalTokenStat& a, const GlobalTokenStat& b) {
              return a.mean_abs_weight > b.mean_abs_weight;
            });

  for (const auto& [attribute, mass] : attribute_acc) {
    GlobalAttributeStat stat;
    stat.attribute = attribute;
    stat.name = attribute < dataset.schema().size()
                    ? dataset.schema().name(attribute)
                    : "attr" + std::to_string(attribute);
    stat.total_abs_weight = mass;
    stat.share = total_mass > 0.0 ? mass / total_mass : 0.0;
    global.attributes.push_back(std::move(stat));
  }
  std::sort(global.attributes.begin(), global.attributes.end(),
            [](const GlobalAttributeStat& a, const GlobalAttributeStat& b) {
              return a.share > b.share;
            });
  return global;
}

}  // namespace crew
