#include "crew/eval/sinks.h"

#include <cmath>
#include <cstdio>
#include <utility>

#include "crew/explain/serialize.h"

namespace crew {

TableColumn AggColumn(std::string header, double ExplainerAggregate::*field,
                      int precision) {
  return {std::move(header), [field, precision](const ExperimentCell& cell) {
            return Table::Num(cell.aggregate.*field, precision);
          }};
}

TableColumn MetricColumn(std::string header, std::string key, int precision) {
  return {std::move(header),
          [key = std::move(key), precision](const ExperimentCell& cell) {
            for (const auto& [k, v] : cell.metrics) {
              if (k == key) return Table::Num(v, precision);
            }
            return std::string("-");
          }};
}

TableColumn NoteColumn(std::string header, std::string key) {
  return {std::move(header), [key = std::move(key)](const ExperimentCell& cell) {
            for (const auto& [k, v] : cell.notes) {
              if (k == key) return v;
            }
            return std::string("-");
          }};
}

TableColumn RegistryCountColumn(std::string header, std::string metric) {
  return {std::move(header),
          [metric = std::move(metric)](const ExperimentCell& cell) {
            const MetricEntry* entry = FindMetric(cell.registry, metric);
            return entry == nullptr ? std::string("-")
                                    : std::to_string(entry->count);
          }};
}

TableColumn RegistryMsColumn(std::string header, std::string metric,
                             int precision) {
  return {std::move(header),
          [metric = std::move(metric), precision](const ExperimentCell& cell) {
            const MetricEntry* entry = FindMetric(cell.registry, metric);
            return entry == nullptr ? std::string("-")
                                    : Table::Num(entry->total_ms, precision);
          }};
}

Table MetricsSnapshotTable(const MetricsSnapshot& snapshot) {
  Table table({"metric", "count", "ms"});
  for (const MetricEntry& entry : snapshot) {
    std::vector<std::string> row;
    row.push_back(entry.name);
    row.push_back(std::to_string(entry.count));
    row.push_back(entry.kind == MetricKind::kDuration
                      ? Table::Num(entry.total_ms, 1)
                      : "-");
    table.AddRow(std::move(row));
  }
  return table;
}

Table MakeCellTable(const std::vector<ExperimentCell>& cells,
                    const std::vector<TableColumn>& columns,
                    bool dataset_column, bool variant_column) {
  std::vector<std::string> headers;
  if (dataset_column) headers.push_back("dataset");
  if (variant_column) headers.push_back("variant");
  for (const TableColumn& c : columns) headers.push_back(c.header);
  Table table(std::move(headers));
  for (const ExperimentCell& cell : cells) {
    std::vector<std::string> row;
    if (dataset_column) row.push_back(cell.dataset);
    if (variant_column) row.push_back(cell.variant);
    for (const TableColumn& c : columns) row.push_back(c.format(cell));
    table.AddRow(std::move(row));
  }
  return table;
}

Status TableSink::OnBegin(const ExperimentResult& header) {
  include_metrics_ = header.include_metrics;
  cells_.clear();
  return Status::Ok();
}

Status TableSink::OnCell(const ExperimentCell& cell, bool restored) {
  (void)restored;
  cells_.push_back(cell);
  return Status::Ok();
}

Status TableSink::OnEnd(const ExperimentResult& result) {
  (void)result;  // rendered purely from what crossed the stream
  const Table table =
      MakeCellTable(cells_, columns_, dataset_column_, variant_column_);
  // crew-lint: allow(raw-stdio): sinks write the experiment's *product*
  // (aligned tables) to the caller-supplied stream; this is serialized
  // output, not diagnostics.
  std::fprintf(out_, "%s\n", table.ToAligned().c_str());
  if (include_metrics_) {
    std::vector<MetricsSnapshot> deltas;
    deltas.reserve(cells_.size());
    for (const ExperimentCell& cell : cells_) {
      deltas.push_back(cell.registry);
    }
    // MetricsSum merges by sorted key, so this table is identical no
    // matter in which order the cells arrived (canonical, shuffled, or a
    // resumed run's restored-then-fresh order).
    const MetricsSnapshot total = MetricsSum(deltas);
    if (!total.empty()) {
      // crew-lint: allow(raw-stdio): same caller-supplied product stream as
      // the table above.
      std::fprintf(out_, "-- metrics (summed over cells) --\n%s\n",
                   MetricsSnapshotTable(total).ToAligned().c_str());
    }
  }
  cells_.clear();
  return Status::Ok();
}

PartialTableSink::PartialTableSink(std::vector<TableColumn> columns,
                                   std::FILE* out)
    : columns_(std::move(columns)), out_(out) {
  if (columns_.empty()) {
    columns_.push_back({"inst", [](const ExperimentCell& cell) {
                          return std::to_string(cell.aggregate.instances);
                        }});
    columns_.push_back(AggColumn("aopc", &ExplainerAggregate::aopc));
    columns_.push_back({"wall_ms", [](const ExperimentCell& cell) {
                          return Table::Num(cell.wall_ms, 1);
                        }});
  }
}

Status PartialTableSink::OnBegin(const ExperimentResult& header) {
  expected_cells_ = static_cast<int>(header.cells.size());
  cells_.clear();
  return Status::Ok();
}

Status PartialTableSink::OnCell(const ExperimentCell& cell, bool restored) {
  (void)restored;
  cells_.push_back(cell);
  const Table table = MakeCellTable(cells_, columns_);
  // crew-lint: allow(raw-stdio): live progress table on the
  // caller-supplied stream (stderr by default), deliberately outside the
  // severity-tagged logging channel like the runner heartbeats.
  std::fprintf(out_, "-- partial: %d/%d cell(s) --\n%s\n",
               static_cast<int>(cells_.size()),
               expected_cells_ > 0 ? expected_cells_
                                   : static_cast<int>(cells_.size()),
               table.ToAligned().c_str());
  return Status::Ok();
}

namespace {

std::string JsonStr(const std::string& s) {
  std::string out;
  out += '"';
  out += JsonEscape(s);
  out += '"';
  return out;
}

void AppendAggregate(const ExplainerAggregate& agg, std::string* out) {
  *out += "{";
  *out += "\"instances\":" + std::to_string(agg.instances);
  *out += ",\"aopc\":" + JsonDouble(agg.aopc);
  *out += ",\"comprehensiveness_at_1\":" + JsonDouble(agg.comprehensiveness_at_1);
  *out += ",\"comprehensiveness_at_3\":" + JsonDouble(agg.comprehensiveness_at_3);
  *out += ",\"sufficiency_at_1\":" + JsonDouble(agg.sufficiency_at_1);
  *out += ",\"sufficiency_at_3\":" + JsonDouble(agg.sufficiency_at_3);
  *out += ",\"comprehensiveness_budget5\":" +
          JsonDouble(agg.comprehensiveness_budget5);
  *out += ",\"decision_flip_rate\":" + JsonDouble(agg.decision_flip_rate);
  *out += ",\"insertion_aopc\":" + JsonDouble(agg.insertion_aopc);
  *out += ",\"flip_set_rate\":" + JsonDouble(agg.flip_set_rate);
  *out += ",\"flip_set_units\":" + JsonDouble(agg.flip_set_units);
  *out += ",\"flip_set_tokens\":" + JsonDouble(agg.flip_set_tokens);
  *out += ",\"total_units\":" + JsonDouble(agg.total_units);
  *out += ",\"effective_units\":" + JsonDouble(agg.effective_units);
  *out += ",\"words_per_unit\":" + JsonDouble(agg.words_per_unit);
  *out += ",\"semantic_coherence\":" + JsonDouble(agg.semantic_coherence);
  *out += ",\"attribute_purity\":" + JsonDouble(agg.attribute_purity);
  *out += ",\"cluster_coherence\":" + JsonDouble(agg.cluster_coherence);
  *out += ",\"cluster_silhouette\":" + JsonDouble(agg.cluster_silhouette);
  *out += ",\"mean_chosen_k\":" + JsonDouble(agg.mean_chosen_k);
  *out += ",\"stability\":" + JsonDouble(agg.stability);
  *out += ",\"surrogate_r2\":" + JsonDouble(agg.surrogate_r2);
  *out += ",\"runtime_ms\":" + JsonDouble(agg.runtime_ms);
  *out += "}";
}

// Registry deltas serialize as {"name":{"count":N}} for counters and
// histogram buckets, {"name":{"count":N,"ms":X}} for durations. Snapshots
// are already name-sorted, so the emission order is deterministic.
void AppendRegistry(const MetricsSnapshot& registry, std::string* out) {
  *out += "{";
  for (size_t i = 0; i < registry.size(); ++i) {
    const MetricEntry& entry = registry[i];
    if (i > 0) *out += ",";
    *out += JsonStr(entry.name) + ":{\"count\":" +
            std::to_string(entry.count);
    if (entry.kind == MetricKind::kDuration) {
      *out += ",\"ms\":" + JsonDouble(entry.total_ms);
    }
    *out += "}";
  }
  *out += "}";
}

void AppendCell(const ExperimentCell& cell, bool include_metrics,
                std::string* out) {
  *out += "{\"dataset\":" + JsonStr(cell.dataset);
  *out += ",\"variant\":" + JsonStr(cell.variant);
  if (!cell.instances.empty()) {
    *out += ",\"aggregate\":";
    AppendAggregate(cell.aggregate, out);
    *out += ",\"per_instance_aopc\":[";
    bool first = true;
    for (const InstanceEvaluation& r : cell.instances) {
      if (!r.evaluated) continue;
      if (!first) *out += ",";
      first = false;
      *out += JsonDouble(r.aopc);
    }
    *out += "]";
    bool any_curve = false;
    for (const InstanceEvaluation& r : cell.instances) {
      if (r.evaluated && !r.curve.empty()) {
        any_curve = true;
        break;
      }
    }
    if (any_curve) {
      *out += ",\"per_instance_curve\":[";
      bool first_row = true;
      for (const InstanceEvaluation& r : cell.instances) {
        if (!r.evaluated || r.curve.empty()) continue;
        if (!first_row) *out += ",";
        first_row = false;
        *out += "[";
        for (size_t i = 0; i < r.curve.size(); ++i) {
          if (i > 0) *out += ",";
          *out += JsonDouble(r.curve[i]);
        }
        *out += "]";
      }
      *out += "]";
    }
  }
  *out += ",\"scoring\":{\"predictions\":" +
          std::to_string(cell.scoring.predictions) +
          ",\"batches\":" + std::to_string(cell.scoring.batches) +
          ",\"materialize_ms\":" + JsonDouble(cell.scoring.materialize_ms) +
          ",\"predict_ms\":" + JsonDouble(cell.scoring.predict_ms) + "}";
  *out += ",\"wall_ms\":" + JsonDouble(cell.wall_ms);
  if (include_metrics && !cell.registry.empty()) {
    *out += ",\"registry\":";
    AppendRegistry(cell.registry, out);
  }
  if (!cell.metrics.empty()) {
    *out += ",\"metrics\":{";
    for (size_t i = 0; i < cell.metrics.size(); ++i) {
      if (i > 0) *out += ",";
      *out += JsonStr(cell.metrics[i].first) + ":" +
              JsonDouble(cell.metrics[i].second);
    }
    *out += "}";
  }
  if (!cell.notes.empty()) {
    *out += ",\"notes\":{";
    for (size_t i = 0; i < cell.notes.size(); ++i) {
      if (i > 0) *out += ",";
      *out += JsonStr(cell.notes[i].first) + ":" +
              JsonStr(cell.notes[i].second);
    }
    *out += "}";
  }
  *out += "}";
}

}  // namespace

std::string ExperimentResultToJson(const ExperimentResult& result) {
  std::string out = "{\"experiment\":" + JsonStr(result.name);
  out += ",\"params\":{";
  for (size_t i = 0; i < result.params.size(); ++i) {
    if (i > 0) out += ",";
    out += JsonStr(result.params[i].first) + ":" +
           JsonStr(result.params[i].second);
  }
  out += "},\"cells\":[";
  for (size_t i = 0; i < result.cells.size(); ++i) {
    if (i > 0) out += ",";
    AppendCell(result.cells[i], result.include_metrics, &out);
  }
  out += "]}";
  return out;
}

Status JsonSink::OnBegin(const ExperimentResult& header) {
  buffered_ = ExperimentResult();
  buffered_.name = header.name;
  buffered_.params = header.params;
  buffered_.include_metrics = header.include_metrics;
  return Status::Ok();
}

Status JsonSink::OnCell(const ExperimentCell& cell, bool restored) {
  (void)restored;
  buffered_.cells.push_back(cell);
  return Status::Ok();
}

Status JsonSink::OnEnd(const ExperimentResult& result) {
  (void)result;  // the document is assembled from the streamed cells only
  Status status = WriteExperimentJson(buffered_, path_);
  buffered_ = ExperimentResult();
  return status;
}

Status WriteExperimentJson(const ExperimentResult& result,
                           const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  const std::string json = ExperimentResultToJson(result);
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != json.size() || !flushed) {
    return Status::DataLoss("short write: " + path);
  }
  return Status::Ok();
}

}  // namespace crew
