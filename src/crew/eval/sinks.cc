#include "crew/eval/sinks.h"

#include <cmath>
#include <cstdio>
#include <utility>

#include "crew/explain/serialize.h"

namespace crew {

TableColumn AggColumn(std::string header, double ExplainerAggregate::*field,
                      int precision) {
  return {std::move(header), [field, precision](const ExperimentCell& cell) {
            return Table::Num(cell.aggregate.*field, precision);
          }};
}

TableColumn MetricColumn(std::string header, std::string key, int precision) {
  return {std::move(header),
          [key = std::move(key), precision](const ExperimentCell& cell) {
            for (const auto& [k, v] : cell.metrics) {
              if (k == key) return Table::Num(v, precision);
            }
            return std::string("-");
          }};
}

TableColumn NoteColumn(std::string header, std::string key) {
  return {std::move(header), [key = std::move(key)](const ExperimentCell& cell) {
            for (const auto& [k, v] : cell.notes) {
              if (k == key) return v;
            }
            return std::string("-");
          }};
}

TableColumn RegistryCountColumn(std::string header, std::string metric) {
  return {std::move(header),
          [metric = std::move(metric)](const ExperimentCell& cell) {
            const MetricEntry* entry = FindMetric(cell.registry, metric);
            return entry == nullptr ? std::string("-")
                                    : std::to_string(entry->count);
          }};
}

TableColumn RegistryMsColumn(std::string header, std::string metric,
                             int precision) {
  return {std::move(header),
          [metric = std::move(metric), precision](const ExperimentCell& cell) {
            const MetricEntry* entry = FindMetric(cell.registry, metric);
            return entry == nullptr ? std::string("-")
                                    : Table::Num(entry->total_ms, precision);
          }};
}

Table MetricsSnapshotTable(const MetricsSnapshot& snapshot) {
  Table table({"metric", "count", "ms"});
  for (const MetricEntry& entry : snapshot) {
    std::vector<std::string> row;
    row.push_back(entry.name);
    row.push_back(std::to_string(entry.count));
    row.push_back(entry.kind == MetricKind::kDuration
                      ? Table::Num(entry.total_ms, 1)
                      : "-");
    table.AddRow(std::move(row));
  }
  return table;
}

Table MakeCellTable(const std::vector<ExperimentCell>& cells,
                    const std::vector<TableColumn>& columns,
                    bool dataset_column, bool variant_column) {
  std::vector<std::string> headers;
  if (dataset_column) headers.push_back("dataset");
  if (variant_column) headers.push_back("variant");
  for (const TableColumn& c : columns) headers.push_back(c.header);
  Table table(std::move(headers));
  for (const ExperimentCell& cell : cells) {
    std::vector<std::string> row;
    if (dataset_column) row.push_back(cell.dataset);
    if (variant_column) row.push_back(cell.variant);
    for (const TableColumn& c : columns) row.push_back(c.format(cell));
    table.AddRow(std::move(row));
  }
  return table;
}

Status TableSink::Consume(const ExperimentResult& result) {
  const Table table =
      MakeCellTable(result.cells, columns_, dataset_column_, variant_column_);
  // crew-lint: allow(raw-stdio): sinks write the experiment's *product*
  // (aligned tables) to the caller-supplied stream; this is serialized
  // output, not diagnostics.
  std::fprintf(out_, "%s\n", table.ToAligned().c_str());
  if (result.include_metrics) {
    std::vector<MetricsSnapshot> deltas;
    deltas.reserve(result.cells.size());
    for (const ExperimentCell& cell : result.cells) {
      deltas.push_back(cell.registry);
    }
    const MetricsSnapshot total = MetricsSum(deltas);
    if (!total.empty()) {
      // crew-lint: allow(raw-stdio): same caller-supplied product stream as
      // the table above.
      std::fprintf(out_, "-- metrics (summed over cells) --\n%s\n",
                   MetricsSnapshotTable(total).ToAligned().c_str());
    }
  }
  return Status::Ok();
}

namespace {

// %.17g round-trips doubles exactly; non-finite values (which JSON cannot
// represent) degrade to null.
std::string JsonNum(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string JsonStr(const std::string& s) {
  std::string out;
  out += '"';
  out += JsonEscape(s);
  out += '"';
  return out;
}

void AppendAggregate(const ExplainerAggregate& agg, std::string* out) {
  *out += "{";
  *out += "\"instances\":" + std::to_string(agg.instances);
  *out += ",\"aopc\":" + JsonNum(agg.aopc);
  *out += ",\"comprehensiveness_at_1\":" + JsonNum(agg.comprehensiveness_at_1);
  *out += ",\"comprehensiveness_at_3\":" + JsonNum(agg.comprehensiveness_at_3);
  *out += ",\"sufficiency_at_1\":" + JsonNum(agg.sufficiency_at_1);
  *out += ",\"sufficiency_at_3\":" + JsonNum(agg.sufficiency_at_3);
  *out += ",\"comprehensiveness_budget5\":" +
          JsonNum(agg.comprehensiveness_budget5);
  *out += ",\"decision_flip_rate\":" + JsonNum(agg.decision_flip_rate);
  *out += ",\"insertion_aopc\":" + JsonNum(agg.insertion_aopc);
  *out += ",\"flip_set_rate\":" + JsonNum(agg.flip_set_rate);
  *out += ",\"flip_set_units\":" + JsonNum(agg.flip_set_units);
  *out += ",\"flip_set_tokens\":" + JsonNum(agg.flip_set_tokens);
  *out += ",\"total_units\":" + JsonNum(agg.total_units);
  *out += ",\"effective_units\":" + JsonNum(agg.effective_units);
  *out += ",\"words_per_unit\":" + JsonNum(agg.words_per_unit);
  *out += ",\"semantic_coherence\":" + JsonNum(agg.semantic_coherence);
  *out += ",\"attribute_purity\":" + JsonNum(agg.attribute_purity);
  *out += ",\"cluster_coherence\":" + JsonNum(agg.cluster_coherence);
  *out += ",\"cluster_silhouette\":" + JsonNum(agg.cluster_silhouette);
  *out += ",\"mean_chosen_k\":" + JsonNum(agg.mean_chosen_k);
  *out += ",\"stability\":" + JsonNum(agg.stability);
  *out += ",\"surrogate_r2\":" + JsonNum(agg.surrogate_r2);
  *out += ",\"runtime_ms\":" + JsonNum(agg.runtime_ms);
  *out += "}";
}

// Registry deltas serialize as {"name":{"count":N}} for counters and
// histogram buckets, {"name":{"count":N,"ms":X}} for durations. Snapshots
// are already name-sorted, so the emission order is deterministic.
void AppendRegistry(const MetricsSnapshot& registry, std::string* out) {
  *out += "{";
  for (size_t i = 0; i < registry.size(); ++i) {
    const MetricEntry& entry = registry[i];
    if (i > 0) *out += ",";
    *out += JsonStr(entry.name) + ":{\"count\":" +
            std::to_string(entry.count);
    if (entry.kind == MetricKind::kDuration) {
      *out += ",\"ms\":" + JsonNum(entry.total_ms);
    }
    *out += "}";
  }
  *out += "}";
}

void AppendCell(const ExperimentCell& cell, bool include_metrics,
                std::string* out) {
  *out += "{\"dataset\":" + JsonStr(cell.dataset);
  *out += ",\"variant\":" + JsonStr(cell.variant);
  if (!cell.instances.empty()) {
    *out += ",\"aggregate\":";
    AppendAggregate(cell.aggregate, out);
    *out += ",\"per_instance_aopc\":[";
    bool first = true;
    for (const InstanceEvaluation& r : cell.instances) {
      if (!r.evaluated) continue;
      if (!first) *out += ",";
      first = false;
      *out += JsonNum(r.aopc);
    }
    *out += "]";
    bool any_curve = false;
    for (const InstanceEvaluation& r : cell.instances) {
      if (r.evaluated && !r.curve.empty()) {
        any_curve = true;
        break;
      }
    }
    if (any_curve) {
      *out += ",\"per_instance_curve\":[";
      bool first_row = true;
      for (const InstanceEvaluation& r : cell.instances) {
        if (!r.evaluated || r.curve.empty()) continue;
        if (!first_row) *out += ",";
        first_row = false;
        *out += "[";
        for (size_t i = 0; i < r.curve.size(); ++i) {
          if (i > 0) *out += ",";
          *out += JsonNum(r.curve[i]);
        }
        *out += "]";
      }
      *out += "]";
    }
  }
  *out += ",\"scoring\":{\"predictions\":" +
          std::to_string(cell.scoring.predictions) +
          ",\"batches\":" + std::to_string(cell.scoring.batches) +
          ",\"materialize_ms\":" + JsonNum(cell.scoring.materialize_ms) +
          ",\"predict_ms\":" + JsonNum(cell.scoring.predict_ms) + "}";
  *out += ",\"wall_ms\":" + JsonNum(cell.wall_ms);
  if (include_metrics && !cell.registry.empty()) {
    *out += ",\"registry\":";
    AppendRegistry(cell.registry, out);
  }
  if (!cell.metrics.empty()) {
    *out += ",\"metrics\":{";
    for (size_t i = 0; i < cell.metrics.size(); ++i) {
      if (i > 0) *out += ",";
      *out += JsonStr(cell.metrics[i].first) + ":" +
              JsonNum(cell.metrics[i].second);
    }
    *out += "}";
  }
  if (!cell.notes.empty()) {
    *out += ",\"notes\":{";
    for (size_t i = 0; i < cell.notes.size(); ++i) {
      if (i > 0) *out += ",";
      *out += JsonStr(cell.notes[i].first) + ":" +
              JsonStr(cell.notes[i].second);
    }
    *out += "}";
  }
  *out += "}";
}

}  // namespace

std::string ExperimentResultToJson(const ExperimentResult& result) {
  std::string out = "{\"experiment\":" + JsonStr(result.name);
  out += ",\"params\":{";
  for (size_t i = 0; i < result.params.size(); ++i) {
    if (i > 0) out += ",";
    out += JsonStr(result.params[i].first) + ":" +
           JsonStr(result.params[i].second);
  }
  out += "},\"cells\":[";
  for (size_t i = 0; i < result.cells.size(); ++i) {
    if (i > 0) out += ",";
    AppendCell(result.cells[i], result.include_metrics, &out);
  }
  out += "]}";
  return out;
}

Status WriteExperimentJson(const ExperimentResult& result,
                           const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  const std::string json = ExperimentResultToJson(result);
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != json.size() || !flushed) {
    return Status::DataLoss("short write: " + path);
  }
  return Status::Ok();
}

}  // namespace crew
