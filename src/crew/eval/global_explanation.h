#ifndef CREW_EVAL_GLOBAL_EXPLANATION_H_
#define CREW_EVAL_GLOBAL_EXPLANATION_H_

#include <string>
#include <vector>

#include "crew/data/dataset.h"
#include "crew/explain/attribution.h"

namespace crew {

/// Dataset-level ("global") explanation: aggregates local word
/// attributions over many explained pairs to answer "what does the model
/// look at overall?" — the standard way local explainers are lifted to a
/// model-audit view (SP-LIME's simpler sibling).
struct GlobalTokenStat {
  std::string token;
  int occurrences = 0;
  double mean_weight = 0.0;        ///< signed: direction of influence
  double mean_abs_weight = 0.0;    ///< magnitude of influence
};

struct GlobalAttributeStat {
  int attribute = 0;
  std::string name;
  double total_abs_weight = 0.0;
  double share = 0.0;  ///< fraction of all attribution mass
};

struct GlobalExplanation {
  std::vector<GlobalTokenStat> tokens;        ///< by mean_abs_weight desc
  std::vector<GlobalAttributeStat> attributes;  ///< by share desc
  int instances = 0;
};

/// Builds the aggregate over `instance_indices` of `dataset`, explaining
/// each pair with `explainer`. Token stats are keyed by token text; a
/// token must appear in at least `min_occurrences` explanations to be
/// reported (rare-token noise floor).
Result<GlobalExplanation> BuildGlobalExplanation(
    const Explainer& explainer, const Matcher& matcher,
    const Dataset& dataset, const std::vector<int>& instance_indices,
    uint64_t seed, int min_occurrences = 2);

}  // namespace crew

#endif  // CREW_EVAL_GLOBAL_EXPLANATION_H_
