#ifndef CREW_EVAL_STREAMING_H_
#define CREW_EVAL_STREAMING_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "crew/eval/runner.h"

namespace crew {

/// Version stamped on every line of the per-cell JSONL stream. Readers
/// refuse any other value (schema evolution must be explicit), with one
/// exception: a corrupted or truncated *trailing* line — the artifact of a
/// crash mid-append — is dropped, not refused (see CheckpointStore::Load).
inline constexpr int kCellSchemaVersion = 1;

/// Key identifying one grid cell across processes and restarts:
/// "[scope|]dataset|variant". `scope` disambiguates repeated grids over
/// the same dataset x variant pairs (bench_f4 tags each sweep point with
/// "samples=N"); it is empty for plain grids.
std::string CellKey(const std::string& scope, const std::string& dataset,
                    const std::string& variant);

/// One line of the stream: the experiment header (name + params, written
/// once) or one complete cell with full per-instance fidelity — enough to
/// reconstruct byte-identical final JSON and to re-reduce the instances
/// (match/non-match splits, cross-dataset summaries, bootstrap tests).
std::string HeaderToJsonl(const ExperimentResult& header);
std::string CellToJsonl(const std::string& scope, const ExperimentCell& cell);

/// Parsed view of one JSONL line. `kind` is "header" or "cell"; header
/// records populate `experiment`/`params`, cell records populate
/// `scope`/`cell`.
struct CellRecord {
  int version = 0;
  std::string kind;
  std::string experiment;
  std::vector<std::pair<std::string, std::string>> params;
  std::string scope;
  ExperimentCell cell;
};

/// Parses one line of the stream. Any malformed JSON, missing field, or
/// version mismatch is an error; the caller decides whether the line's
/// position (trailing vs interior) makes that recoverable.
Result<CellRecord> ParseCellRecord(const std::string& line);

/// Structured consumer of cells *as they finish* — the streaming
/// counterpart of ExperimentSink. The runner calls OnBegin once before the
/// first cell, OnCell for every cell in completion order (restored = the
/// cell was read back from a checkpoint rather than computed), and OnEnd
/// with the assembled result. Default implementations make every hook
/// optional except OnCell.
class StreamingSink {
 public:
  virtual ~StreamingSink() = default;
  virtual Status OnBegin(const ExperimentResult& header) {
    (void)header;
    return Status::Ok();
  }
  virtual Status OnCell(const ExperimentCell& cell, bool restored) = 0;
  virtual Status OnEnd(const ExperimentResult& result) {
    (void)result;
    return Status::Ok();
  }
};

/// Streams cells to a JSONL shard: header line on OnBegin (truncating any
/// previous file), then one fsync'd line per cell in completion order. A
/// crash leaves a prefix of complete lines plus at most one torn trailing
/// line — exactly what CheckpointStore::Load recovers from. One shard per
/// process plus tools/merge_cells.py is the cross-process sharding story.
class JsonlStreamSink : public StreamingSink {
 public:
  explicit JsonlStreamSink(std::string path, std::string scope = "");
  ~JsonlStreamSink() override;
  JsonlStreamSink(const JsonlStreamSink&) = delete;
  JsonlStreamSink& operator=(const JsonlStreamSink&) = delete;

  /// Truncates + writes the header on the first call; later calls are
  /// no-ops so multi-invocation experiments (parameter sweeps calling the
  /// runner once per point) keep appending to one shard.
  Status OnBegin(const ExperimentResult& header) override;
  Status OnCell(const ExperimentCell& cell, bool restored) override;

  /// Scope stamped on subsequent cell lines; sweeps set this per point to
  /// keep cell keys unique (mirrors RunHooks::scope).
  void set_scope(std::string scope) { scope_ = std::move(scope); }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::string scope_;
  std::FILE* file_ = nullptr;
};

/// Durable record of completed cells backed by the same JSONL schema.
/// Load() scans an existing file (tolerating a torn trailing line),
/// Append() adds one fsync'd line per fresh cell, and the runner consults
/// IsDone()/Restored() to skip cells a previous (crashed) run already
/// finished. Because per-cell work is seeded from the grid key and never
/// from execution order, a resumed grid is bit-identical to an
/// uninterrupted one.
class CheckpointStore {
 public:
  explicit CheckpointStore(std::string path);
  ~CheckpointStore();
  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  /// Reads the existing file, if any. A missing file is an empty
  /// checkpoint, a torn trailing line is dropped with a warning, and any
  /// interior corruption or schema-version mismatch is an error.
  Status Load();

  /// True when Load() saw a complete record for this key (or a fresh cell
  /// was appended under it since).
  bool IsDone(const std::string& key) const;

  /// The restored cell for `key`, or nullptr when not checkpointed.
  const ExperimentCell* Restored(const std::string& key) const;

  /// Appends one completed cell (JSONL line + fsync). Idempotent: a key
  /// that is already done is silently skipped, so replaying a grid over an
  /// existing checkpoint never duplicates lines.
  Status Append(const std::string& scope, const ExperimentCell& cell);

  /// Writes the header line if the file has no records yet; otherwise
  /// verifies the stored experiment name matches.
  Status WriteHeaderIfNew(const ExperimentResult& header);

  /// Number of completed cells known to the store.
  int done_cells() const { return static_cast<int>(cells_.size()); }

  const std::string& path() const { return path_; }

 private:
  Status EnsureOpenForAppend();

  std::string path_;
  std::string experiment_;  // from the stored header, if any
  bool has_records_ = false;
  // Sorted map so every iteration over restored cells is deterministic.
  std::map<std::string, ExperimentCell> cells_;
  std::FILE* file_ = nullptr;
};

/// Deterministic crash-on-demand hook for the runner: once armed, the
/// process "crashes" (a Status error, or a hard _Exit(kFaultExitCode) when
/// CREW_FAULT_HARD is set) after the configured number of *fresh* cells
/// have been completed and durably appended. Arming is explicit
/// (--fail-after-cells N) or derived from the CREW_FAULT_SEED environment
/// variable, which picks a reproducible cell count in [0, grid_size).
class FaultInjector {
 public:
  /// Exit code of a hard (CREW_FAULT_HARD) injected crash.
  static constexpr int kFaultExitCode = 42;

  /// Arms the injector to fire after `cells` fresh cells. Negative
  /// disarms.
  void ArmAfterCells(int cells);

  /// Defers arming until FinalizeSchedule(): the fire point becomes
  /// Rng(seed) uniform in [0, total_cells).
  void ArmFromSeed(uint64_t seed);

  /// Builds an injector from the shared bench knobs: an explicit
  /// --fail-after-cells value wins; otherwise CREW_FAULT_SEED (parsed as a
  /// uint64) seed-arms it; otherwise returns nullptr (disarmed). Also
  /// reads CREW_FAULT_HARD to select hard process exit over a Status.
  static std::unique_ptr<FaultInjector> FromFlagsAndEnv(int fail_after_cells);

  /// Called once by the executor when the grid size is known; resolves a
  /// seed-armed injector into a concrete fire point.
  void FinalizeSchedule(int total_cells);

  /// True when the next fresh cell must not start (the armed count has
  /// been reached). Under CREW_FAULT_HARD this call does not return.
  bool FireNow();

  /// Records one completed fresh cell.
  void CellCompleted() { ++completed_; }

  /// The error a fired injector reports (stable prefix for tests/CI).
  Status FaultStatus() const;

  bool armed() const { return fail_after_ >= 0 || seed_armed_; }
  int fail_after() const { return fail_after_; }

  void set_hard(bool hard) { hard_ = hard; }

 private:
  int fail_after_ = -1;
  int completed_ = 0;
  bool seed_armed_ = false;
  uint64_t seed_ = 0;
  bool hard_ = false;
};

/// Shared per-cell sequencing used by the runner and by benches that build
/// cells directly (t1/t2): checkpoint restore/skip, fan-out to streaming
/// sinks, fsync'd append of fresh cells, and the fault-injection window.
/// Usage:
///
///   CellStreamer streamer(hooks);
///   CREW_RETURN_IF_ERROR(streamer.Begin(header, total_cells));
///   for each cell:
///     if (auto r = streamer.TryRestore(dataset, variant, &cell); ...)
///       use *restored* cell; else compute it and streamer.Emit(cell);
///   CREW_RETURN_IF_ERROR(streamer.Finish(result));
class CellStreamer {
 public:
  explicit CellStreamer(const RunHooks& hooks) : hooks_(hooks) {}

  /// Writes/validates the checkpoint header and opens every sink.
  Status Begin(const ExperimentResult& header, int total_cells);

  /// When the checkpoint already holds this cell: copies it into `cell`
  /// (with wall-derived fields re-zeroed under stable timing), forwards it
  /// to the sinks as restored, and returns true.
  Result<bool> TryRestore(const std::string& dataset,
                          const std::string& variant, ExperimentCell* cell);

  /// Fault-injection window: call before starting each *fresh* cell's
  /// work. Returns the injected fault once the armed count is reached.
  Status BeforeFreshCell();

  /// Streams one freshly computed cell: checkpoint append (fsync'd), then
  /// every sink, then the fault countdown advances.
  Status Emit(const ExperimentCell& cell);

  /// Closes the stream: OnEnd on every sink.
  Status Finish(const ExperimentResult& result);

 private:
  const RunHooks& hooks_;
};

/// Replays a finished result through a streaming sink: OnBegin, every cell
/// in order, OnEnd. This is how the one-shot ExperimentSink adapters
/// (TableSink/JsonSink) consume results — one code path for streamed and
/// batch emission.
Status ReplayResult(StreamingSink& sink, const ExperimentResult& result);

}  // namespace crew

#endif  // CREW_EVAL_STREAMING_H_
