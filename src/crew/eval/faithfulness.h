#ifndef CREW_EVAL_FAITHFULNESS_H_
#define CREW_EVAL_FAITHFULNESS_H_

#include <vector>

#include "crew/core/cluster_explanation.h"
#include "crew/explain/token_view.h"
#include "crew/model/matcher.h"

namespace crew {

/// Probability assigned to the *predicted* class: score when the model says
/// match, 1 - score otherwise. All faithfulness metrics are drops of this
/// quantity, so they are comparable across match and non-match pairs.
double PredictedClassProb(double score, bool predicted_match);

/// One explanation instance prepared for unit-level faithfulness metrics.
struct EvalInstance {
  PairTokenView view;
  std::vector<ExplanationUnit> units;  ///< any order; metrics rank internally
  double base_score = 0.0;
  double threshold = 0.5;

  bool PredictedMatch() const { return base_score >= threshold; }

  /// Unit indices sorted by decreasing support for the predicted class.
  std::vector<int> RankUnitsBySupport() const;
};

/// Drop in predicted-class probability after deleting the top-k supporting
/// units ("comprehensiveness", DeYoung et al.). Higher = more faithful.
double ComprehensivenessAtK(const Matcher& matcher,
                            const EvalInstance& instance, int k);

/// Drop in predicted-class probability when keeping ONLY the top-k
/// supporting units. Lower = the top units suffice = more faithful.
double SufficiencyAtK(const Matcher& matcher, const EvalInstance& instance,
                      int k);

/// Mean of ComprehensivenessAtK for k = 1..min(max_k, #units): the
/// Area-Over-the-Perturbation-Curve deletion score (Samek et al.).
double AopcDeletion(const Matcher& matcher, const EvalInstance& instance,
                    int max_k);

/// Insertion counterpart: starting from the fully-deleted pair, re-insert
/// the top-k supporting units and measure how much predicted-class
/// probability is *recovered* relative to the empty pair. Higher = the
/// explanation's top units rebuild the decision. Mean over k = 1..max_k.
double AopcInsertion(const Matcher& matcher, const EvalInstance& instance,
                     int max_k);

/// Comprehensiveness when deleting supporting units until at least
/// `token_budget` words have been removed — an equal-token comparison that
/// does not favour multi-word units.
double ComprehensivenessAtTokenBudget(const Matcher& matcher,
                                      const EvalInstance& instance,
                                      int token_budget);

/// True if deleting the top supporting unit flips the predicted class.
bool DecisionFlipAtTop(const Matcher& matcher, const EvalInstance& instance);

/// Greedy counterfactual size: units are removed in support order until
/// the predicted class flips (or everything is gone).
struct FlipSetResult {
  bool flipped = false;
  int units_removed = 0;   ///< units needed to flip (all units if !flipped)
  int tokens_removed = 0;  ///< words those units contained
};

/// Smaller flip sets mean the explanation isolates the decisive evidence —
/// CERTA's counterfactual view of faithfulness.
FlipSetResult MinimalFlipSet(const Matcher& matcher,
                             const EvalInstance& instance);

/// Predicted-class probability after removing the top ceil(f * #units)
/// supporting units, for each fraction f in `fractions` (the F1 deletion
/// curve). fraction 0 returns the base predicted-class probability.
std::vector<double> DeletionCurve(const Matcher& matcher,
                                  const EvalInstance& instance,
                                  const std::vector<double>& fractions);

}  // namespace crew

#endif  // CREW_EVAL_FAITHFULNESS_H_
