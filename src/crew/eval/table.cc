#include "crew/eval/table.h"

#include <algorithm>

#include "crew/common/logging.h"
#include "crew/common/string_util.h"

namespace crew {

void Table::AddRow(std::vector<std::string> row) {
  CREW_CHECK(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Num(double v, int precision) {
  return StrPrintf("%.*f", precision, v);
}

std::string Table::ToAligned() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      if (c + 1 < row.size()) {
        line.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    line.push_back('\n');
    return line;
  };
  std::string out = emit_row(headers_);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c], '-');
    if (c + 1 < widths.size()) rule.append(2, ' ');
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += emit_row(row);
  return out;
}

std::string Table::ToMarkdown() const {
  auto emit = [](const std::vector<std::string>& row) {
    std::string line = "|";
    for (const auto& cell : row) {
      line += " " + cell + " |";
    }
    line.push_back('\n');
    return line;
  };
  std::string out = emit(headers_);
  std::string rule = "|";
  for (size_t c = 0; c < headers_.size(); ++c) rule += " --- |";
  out += rule + "\n";
  for (const auto& row : rows_) out += emit(row);
  return out;
}

std::string Table::ToTsv() const {
  std::string out = Join(headers_, "\t") + "\n";
  for (const auto& row : rows_) out += Join(row, "\t") + "\n";
  return out;
}

}  // namespace crew
