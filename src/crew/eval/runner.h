#ifndef CREW_EVAL_RUNNER_H_
#define CREW_EVAL_RUNNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "crew/common/metrics.h"
#include "crew/data/benchmark_suite.h"
#include "crew/eval/experiment.h"
#include "crew/eval/faithfulness.h"
#include "crew/explain/batch_scorer.h"
#include "crew/model/trainer.h"

namespace crew {

class StreamingSink;
class CheckpointStore;
class FaultInjector;

/// Stable-timing mode: when enabled, every wall-clock-derived field the
/// runner records (InstanceEvaluation::runtime_ms, ExperimentCell::wall_ms,
/// registry duration totals and the ScoringStats ms view) is forced to
/// zero. Counts, metric values, and everything seeded stay untouched. This
/// is what makes "resumed run == uninterrupted run" checkable *byte for
/// byte*: timing is the only legitimately nondeterministic output, so the
/// resume tests and the CI resume-smoke diff run with --stable-timing on
/// both sides. Process-global, default off.
void SetStableTiming(bool stable);
bool StableTiming();

/// Forces every wall-clock-derived field of `cell` to zero (wall_ms,
/// registry duration totals, the ScoringStats ms view, per-instance
/// runtime_ms) — the normalization stable-timing mode applies to fresh and
/// checkpoint-restored cells alike.
struct ExperimentCell;
void ZeroCellTimings(ExperimentCell* cell);

/// Optional streaming/restart plumbing threaded through ExperimentRunner.
/// Default-constructed hooks are inert: no sinks, no checkpoint, no fault
/// injection, canonical schedule — the pre-streaming behavior exactly.
struct RunHooks {
  /// Receive every cell as it completes (completion order, including
  /// checkpoint-restored cells, which arrive with restored=true).
  std::vector<StreamingSink*> sinks;
  /// When set, completed cells are durably appended here and cells already
  /// present are restored instead of recomputed (--resume).
  CheckpointStore* checkpoint = nullptr;
  /// When set, the runner consults it before each fresh cell and "crashes"
  /// deterministically once armed (--fail-after-cells / CREW_FAULT_SEED).
  FaultInjector* fault = nullptr;
  /// Prefix for checkpoint cell keys; disambiguates repeated grids over
  /// the same dataset x variant pairs (e.g. bench_f4's sweep points).
  std::string scope;
  /// Non-zero: execute the grid in an Rng(shuffle_seed)-shuffled order.
  /// Results land in canonical slots regardless — this exists so tests can
  /// prove cell results are independent of completion order.
  uint64_t shuffle_seed = 0;
};

/// Minimum seconds between runner progress heartbeats on stderr
/// ("[progress] dataset/variant done/total (rate/s)"). <= 0 disables them
/// entirely. Heartbeats are throttled and observation-only: they never
/// change what the runner computes. Default: 1 second.
void SetProgressInterval(double seconds);
double ProgressInterval();

/// Label prefixed to progress heartbeats while in scope (the runner sets
/// "dataset/variant" around each cell). Process-global, save/restore.
class ScopedProgressLabel {
 public:
  explicit ScopedProgressLabel(std::string label);
  ~ScopedProgressLabel();
  ScopedProgressLabel(const ScopedProgressLabel&) = delete;
  ScopedProgressLabel& operator=(const ScopedProgressLabel&) = delete;

 private:
  std::string saved_;
};

/// Knobs for the per-instance metric block. Defaults reproduce the
/// historical EvaluateExplainerOnDataset numbers; the optional extras
/// (deletion curve, seed stability) are only computed when requested so
/// the common path stays cheap.
struct InstanceEvalOptions {
  int aopc_max_k = 5;
  int insertion_max_k = 3;
  int token_budget = 5;
  /// Non-empty: also record the deletion curve at these fractions.
  std::vector<double> curve_fractions;
  /// Non-empty: also re-explain with each seed and record the mean
  /// pairwise top-k Jaccard (ExplainerStability).
  std::vector<uint64_t> stability_seeds;
  int stability_top_k = 10;
};

/// Everything one explained instance contributes to any experiment table —
/// the pure per-instance record the runner shards and reduces.
struct InstanceEvaluation {
  int index = -1;         ///< pair index in the test split
  bool evaluated = false;  ///< false when the explanation had no units
  bool predicted_match = false;
  // Faithfulness.
  double aopc = 0.0;
  double comprehensiveness_at_1 = 0.0;
  double comprehensiveness_at_3 = 0.0;
  double sufficiency_at_1 = 0.0;
  double sufficiency_at_3 = 0.0;
  double comprehensiveness_budget = 0.0;
  bool decision_flip = false;
  double insertion_aopc = 0.0;
  FlipSetResult flip_set;
  /// Aligned with InstanceEvalOptions::curve_fractions; empty if not asked.
  std::vector<double> curve;
  // Comprehensibility.
  double total_units = 0.0;
  double effective_units = 0.0;
  double words_per_unit = 0.0;
  double semantic_coherence = 0.0;
  double attribute_purity = 0.0;
  // Cluster diagnostics (CREW only).
  bool has_cluster_stats = false;
  double cluster_coherence = 0.0;
  double cluster_silhouette = 0.0;
  int chosen_k = 0;
  /// Mean pairwise Jaccard across stability_seeds; 0 when not measured.
  double stability = 0.0;
  // Bookkeeping.
  double surrogate_r2 = 0.0;
  double runtime_ms = 0.0;
};

/// Explains `test.pair(index)` and computes the full per-instance metric
/// block. Pure given its inputs: the instance seed derives as
/// `seed ^ (index << 20)`, so the result is independent of which thread or
/// in which order instances run.
Result<InstanceEvaluation> EvaluateInstance(
    const Explainer& explainer, const Matcher& matcher, const Dataset& test,
    int index, const EmbeddingStore* embeddings, uint64_t seed,
    const InstanceEvalOptions& options = InstanceEvalOptions());

/// EvaluateInstance over `indices`, sharded across the shared scoring pool
/// (SetScoringThreads). Results are written by index and errors are
/// reported in index order, so output is bit-identical for any thread
/// count. Perturbation scoring nested inside a sharded instance runs
/// inline (see ParallelFor's nesting rule) — the two parallelism levels
/// compose without oversubscribing the pool.
Result<std::vector<InstanceEvaluation>> EvaluateInstances(
    const Explainer& explainer, const Matcher& matcher, const Dataset& test,
    const std::vector<int>& indices, const EmbeddingStore* embeddings,
    uint64_t seed, const InstanceEvalOptions& options = InstanceEvalOptions());

/// Deterministic reduction of per-instance records (in vector order) to
/// the per-explainer aggregate. Unevaluated records are skipped, matching
/// the historical serial loop bit-for-bit.
ExplainerAggregate ReduceInstances(
    const std::string& name, const std::vector<InstanceEvaluation>& records);

/// ReduceInstances over the subset where `filter` holds (e.g. predicted
/// matches only, for the match/non-match split tables).
ExplainerAggregate ReduceInstancesIf(
    const std::string& name, const std::vector<InstanceEvaluation>& records,
    const std::function<bool(const InstanceEvaluation&)>& filter);

/// One dataset's trained pipeline + selected explanation instances — the
/// prepare stage shared by every experiment.
struct PreparedDataset {
  std::string name;
  TrainedPipeline pipeline;
  std::vector<int> instances;
};

/// One cell of the experiment grid: (dataset, variant) with its aggregate,
/// the per-instance records behind it, and the scoring-engine counters
/// attributed to computing it. `variant` is usually an explainer name but
/// ablation experiments use design-case labels ("sem+attr", "k=4", ...).
struct ExperimentCell {
  std::string dataset;
  std::string variant;
  ExplainerAggregate aggregate;
  std::vector<InstanceEvaluation> instances;
  ScoringStats scoring;  ///< engine counter delta while this cell ran
  /// Full metrics-registry delta while this cell ran (per-stage counters,
  /// stage durations, batch-size histogram buckets). `scoring` above is the
  /// legacy view derived from the same delta, so the two always agree.
  MetricsSnapshot registry;
  double wall_ms = 0.0;
  /// Extra named values for cells that don't come from the standard
  /// per-instance engine (dataset stats, matcher P/R/F1, sweeps).
  std::vector<std::pair<std::string, double>> metrics;
  std::vector<std::pair<std::string, std::string>> notes;
};

/// Full structured result of one experiment: the grid plus the parameters
/// that produced it. Sinks (crew/eval/sinks.h) turn this into aligned
/// tables and JSON.
struct ExperimentResult {
  std::string name;
  std::vector<std::pair<std::string, std::string>> params;
  std::vector<ExperimentCell> cells;
  /// When true, sinks also emit each cell's registry delta (--metrics).
  bool include_metrics = false;

  /// Variant names in first-appearance order.
  std::vector<std::string> VariantNames() const;

  /// Per-instance AOPC samples of `variant`, concatenated across datasets
  /// in cell order (only evaluated instances) — the paired vectors the
  /// significance tests consume.
  std::vector<double> PerInstanceAopc(const std::string& variant) const;

  /// Aggregate of `variant` over all its cells' instances (cross-dataset
  /// mean, weighted by instance like the historical accumulation loops).
  ExplainerAggregate ReduceAcross(const std::string& variant) const;

  /// Mean deletion curve of `variant` across all evaluated instances of
  /// all datasets; empty when no curve was recorded.
  std::vector<double> MeanCurve(const std::string& variant) const;
};

/// Named explainer line-up entry. The name is the grid's variant label —
/// ablations reuse one explainer class under several configurations, so it
/// can differ from Explainer::Name().
struct SuiteEntry {
  std::string name;
  std::unique_ptr<Explainer> explainer;
};

/// Labels a BuildExplainerSuite-style line-up with each explainer's own
/// Name().
std::vector<SuiteEntry> NameSuite(
    std::vector<std::unique_ptr<Explainer>> suite);

/// Declarative description of one experiment: the dataset x matcher x
/// explainer grid plus the evaluation knobs.
struct ExperimentSpec {
  std::string name;
  std::vector<BenchmarkEntry> datasets;
  MatcherKind matcher = MatcherKind::kMlp;
  double train_fraction = 0.7;
  int instances_per_dataset = 12;
  uint64_t seed = 7;
  InstanceEvalOptions eval;
  /// Builds the explainer line-up for one prepared pipeline. Required by
  /// Run(); RunWith-based experiments may leave it empty.
  std::function<std::vector<SuiteEntry>(const TrainedPipeline&)> suite;
};

/// Generates + trains one dataset of the spec and selects its explanation
/// instances (seeded exactly like the historical bench prepare step).
Result<PreparedDataset> PrepareDataset(const BenchmarkEntry& entry,
                                       const ExperimentSpec& spec);

/// Executes an ExperimentSpec: prepare each dataset, evaluate every suite
/// variant on its selected instances (instances sharded across the scoring
/// pool), reduce deterministically, and return the structured grid.
class ExperimentRunner {
 public:
  explicit ExperimentRunner(ExperimentSpec spec) : spec_(std::move(spec)) {}

  const ExperimentSpec& spec() const { return spec_; }

  /// The standard grid: spec.suite x spec.datasets. `hooks` (optional)
  /// adds streaming sinks, checkpoint restore/append, fault injection, and
  /// schedule shuffling; default hooks reproduce the plain batch run.
  Result<ExperimentResult> Run(const RunHooks& hooks = RunHooks()) const;

  /// Run() over externally prepared datasets — lets budget sweeps reuse
  /// one trained pipeline across several runner invocations.
  Result<ExperimentResult> RunPrepared(
      const std::vector<PreparedDataset>& prepared,
      const RunHooks& hooks = RunHooks()) const;

  /// Shared prepare + emit scaffolding for experiments whose cell
  /// production is custom (global explanations, matcher quality): `fn` is
  /// invoked once per prepared dataset and appends cells. Cells appended
  /// by `fn` are streamed/checkpointed after each dataset completes, but —
  /// unlike the standard grid — already-checkpointed cells are not skipped
  /// (the runner cannot resume work it does not schedule itself).
  Result<ExperimentResult> RunWith(
      const std::function<Status(const PreparedDataset&, ExperimentResult*)>&
          fn,
      const RunHooks& hooks = RunHooks()) const;

 private:
  ExperimentResult EmptyResult() const;

  ExperimentSpec spec_;
};

}  // namespace crew

#endif  // CREW_EVAL_RUNNER_H_
