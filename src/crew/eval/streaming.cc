#include "crew/eval/streaming.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <utility>

#ifdef _WIN32
#include <io.h>
#else
#include <unistd.h>
#endif

#include "crew/common/logging.h"
#include "crew/common/rng.h"
#include "crew/explain/serialize.h"

namespace crew {
namespace {

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

std::string JsonStr(const std::string& s) {
  std::string out;
  out += '"';
  out += JsonEscape(s);
  out += '"';
  return out;
}

const char* JsonBool(bool b) { return b ? "true" : "false"; }

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kDuration:
      return "duration";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "counter";
}

Result<MetricKind> MetricKindFromName(const std::string& name) {
  if (name == "counter") return MetricKind::kCounter;
  if (name == "duration") return MetricKind::kDuration;
  if (name == "histogram") return MetricKind::kHistogram;
  return Status::DataLoss("unknown metric kind: " + name);
}

// Every ExplainerAggregate field, in declaration order. The aggregate is
// checkpointed verbatim (rather than re-reduced on restore) so a restored
// cell is bit-identical to the freshly computed one even if the reduction
// ever changes between versions.
void AppendAggregate(const ExplainerAggregate& agg, std::string* out) {
  *out += "{\"name\":" + JsonStr(agg.name);
  *out += ",\"instances\":" + std::to_string(agg.instances);
  *out += ",\"aopc\":" + JsonDouble(agg.aopc);
  *out += ",\"comprehensiveness_at_1\":" +
          JsonDouble(agg.comprehensiveness_at_1);
  *out += ",\"comprehensiveness_at_3\":" +
          JsonDouble(agg.comprehensiveness_at_3);
  *out += ",\"sufficiency_at_1\":" + JsonDouble(agg.sufficiency_at_1);
  *out += ",\"sufficiency_at_3\":" + JsonDouble(agg.sufficiency_at_3);
  *out += ",\"comprehensiveness_budget5\":" +
          JsonDouble(agg.comprehensiveness_budget5);
  *out += ",\"decision_flip_rate\":" + JsonDouble(agg.decision_flip_rate);
  *out += ",\"insertion_aopc\":" + JsonDouble(agg.insertion_aopc);
  *out += ",\"flip_set_rate\":" + JsonDouble(agg.flip_set_rate);
  *out += ",\"flip_set_units\":" + JsonDouble(agg.flip_set_units);
  *out += ",\"flip_set_tokens\":" + JsonDouble(agg.flip_set_tokens);
  *out += ",\"total_units\":" + JsonDouble(agg.total_units);
  *out += ",\"effective_units\":" + JsonDouble(agg.effective_units);
  *out += ",\"words_per_unit\":" + JsonDouble(agg.words_per_unit);
  *out += ",\"semantic_coherence\":" + JsonDouble(agg.semantic_coherence);
  *out += ",\"attribute_purity\":" + JsonDouble(agg.attribute_purity);
  *out += ",\"cluster_coherence\":" + JsonDouble(agg.cluster_coherence);
  *out += ",\"cluster_silhouette\":" + JsonDouble(agg.cluster_silhouette);
  *out += ",\"mean_chosen_k\":" + JsonDouble(agg.mean_chosen_k);
  *out += ",\"stability\":" + JsonDouble(agg.stability);
  *out += ",\"surrogate_r2\":" + JsonDouble(agg.surrogate_r2);
  *out += ",\"runtime_ms\":" + JsonDouble(agg.runtime_ms);
  *out += "}";
}

// Every InstanceEvaluation field. Benches re-reduce instances after the
// grid runs (match/non-match splits, cross-dataset summaries, paired
// bootstrap over per-instance AOPC), so the checkpoint must carry full
// per-instance fidelity — an aggregate-only record could not reproduce a
// byte-identical --json document on resume.
void AppendInstance(const InstanceEvaluation& r, std::string* out) {
  *out += "{\"index\":" + std::to_string(r.index);
  *out += ",\"evaluated\":";
  *out += JsonBool(r.evaluated);
  *out += ",\"predicted_match\":";
  *out += JsonBool(r.predicted_match);
  *out += ",\"aopc\":" + JsonDouble(r.aopc);
  *out += ",\"comprehensiveness_at_1\":" +
          JsonDouble(r.comprehensiveness_at_1);
  *out += ",\"comprehensiveness_at_3\":" +
          JsonDouble(r.comprehensiveness_at_3);
  *out += ",\"sufficiency_at_1\":" + JsonDouble(r.sufficiency_at_1);
  *out += ",\"sufficiency_at_3\":" + JsonDouble(r.sufficiency_at_3);
  *out += ",\"comprehensiveness_budget\":" +
          JsonDouble(r.comprehensiveness_budget);
  *out += ",\"decision_flip\":";
  *out += JsonBool(r.decision_flip);
  *out += ",\"insertion_aopc\":" + JsonDouble(r.insertion_aopc);
  *out += ",\"flip_set\":{\"flipped\":";
  *out += JsonBool(r.flip_set.flipped);
  *out += ",\"units_removed\":" + std::to_string(r.flip_set.units_removed);
  *out += ",\"tokens_removed\":" + std::to_string(r.flip_set.tokens_removed);
  *out += "}";
  *out += ",\"curve\":[";
  for (size_t i = 0; i < r.curve.size(); ++i) {
    if (i > 0) *out += ",";
    *out += JsonDouble(r.curve[i]);
  }
  *out += "]";
  *out += ",\"total_units\":" + JsonDouble(r.total_units);
  *out += ",\"effective_units\":" + JsonDouble(r.effective_units);
  *out += ",\"words_per_unit\":" + JsonDouble(r.words_per_unit);
  *out += ",\"semantic_coherence\":" + JsonDouble(r.semantic_coherence);
  *out += ",\"attribute_purity\":" + JsonDouble(r.attribute_purity);
  *out += ",\"has_cluster_stats\":";
  *out += JsonBool(r.has_cluster_stats);
  *out += ",\"cluster_coherence\":" + JsonDouble(r.cluster_coherence);
  *out += ",\"cluster_silhouette\":" + JsonDouble(r.cluster_silhouette);
  *out += ",\"chosen_k\":" + std::to_string(r.chosen_k);
  *out += ",\"stability\":" + JsonDouble(r.stability);
  *out += ",\"surrogate_r2\":" + JsonDouble(r.surrogate_r2);
  *out += ",\"runtime_ms\":" + JsonDouble(r.runtime_ms);
  *out += "}";
}

// ---------------------------------------------------------------------------
// Reading: a minimal recursive-descent JSON parser. The stream is
// machine-written by this file, so the parser only needs to be strict and
// small, not featureful. Object field order is preserved (vector, not map).
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const char* key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    CREW_RETURN_IF_ERROR(ParseValue(&value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Fail(const std::string& why) const {
    return Status::DataLoss("json parse error at byte " +
                            std::to_string(pos_) + ": " + why);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseLiteral(const char* literal) {
    const size_t len = std::strlen(literal);
    if (text_.compare(pos_, len, literal) != 0) {
      return Fail(std::string("expected '") + literal + "'");
    }
    pos_ += len;
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape digit");
            }
          }
          // JsonEscape only emits \u00xx (control bytes); decode the BMP
          // range anyway so round-tripping foreign documents works.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) return Fail("expected number");
    pos_ += static_cast<size_t>(end - begin);
    out->type = JsonValue::Type::kNumber;
    out->number = v;
    return Status::Ok();
  }

  Status ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->str);
    }
    if (c == 't') {
      CREW_RETURN_IF_ERROR(ParseLiteral("true"));
      out->type = JsonValue::Type::kBool;
      out->bool_value = true;
      return Status::Ok();
    }
    if (c == 'f') {
      CREW_RETURN_IF_ERROR(ParseLiteral("false"));
      out->type = JsonValue::Type::kBool;
      out->bool_value = false;
      return Status::Ok();
    }
    if (c == 'n') {
      CREW_RETURN_IF_ERROR(ParseLiteral("null"));
      out->type = JsonValue::Type::kNull;
      return Status::Ok();
    }
    return ParseNumber(out);
  }

  Status ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    if (!Consume('[')) return Fail("expected '['");
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    while (true) {
      JsonValue element;
      CREW_RETURN_IF_ERROR(ParseValue(&element));
      out->array.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return Status::Ok();
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
  }

  Status ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    if (!Consume('{')) return Fail("expected '{'");
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWhitespace();
      std::string key;
      CREW_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue value;
      CREW_RETURN_IF_ERROR(ParseValue(&value));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::Ok();
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// -- typed field extraction (missing/mistyped fields are DataLoss) ---------

Status GetField(const JsonValue& obj, const char* key, const JsonValue** out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) {
    return Status::DataLoss(std::string("missing field: ") + key);
  }
  *out = v;
  return Status::Ok();
}

Status GetString(const JsonValue& obj, const char* key, std::string* out) {
  const JsonValue* v = nullptr;
  CREW_RETURN_IF_ERROR(GetField(obj, key, &v));
  if (v->type != JsonValue::Type::kString) {
    return Status::DataLoss(std::string("field is not a string: ") + key);
  }
  *out = v->str;
  return Status::Ok();
}

Status GetBool(const JsonValue& obj, const char* key, bool* out) {
  const JsonValue* v = nullptr;
  CREW_RETURN_IF_ERROR(GetField(obj, key, &v));
  if (v->type != JsonValue::Type::kBool) {
    return Status::DataLoss(std::string("field is not a bool: ") + key);
  }
  *out = v->bool_value;
  return Status::Ok();
}

// Numbers serialized as null are NaN (JSON cannot express non-finite
// doubles); anything else must be a plain number.
Status GetDouble(const JsonValue& obj, const char* key, double* out) {
  const JsonValue* v = nullptr;
  CREW_RETURN_IF_ERROR(GetField(obj, key, &v));
  if (v->type == JsonValue::Type::kNull) {
    *out = std::numeric_limits<double>::quiet_NaN();
    return Status::Ok();
  }
  if (v->type != JsonValue::Type::kNumber) {
    return Status::DataLoss(std::string("field is not a number: ") + key);
  }
  *out = v->number;
  return Status::Ok();
}

Status GetInt(const JsonValue& obj, const char* key, int* out) {
  double d = 0.0;
  CREW_RETURN_IF_ERROR(GetDouble(obj, key, &d));
  *out = static_cast<int>(d);
  return Status::Ok();
}

Status GetInt64(const JsonValue& obj, const char* key, std::int64_t* out) {
  double d = 0.0;
  CREW_RETURN_IF_ERROR(GetDouble(obj, key, &d));
  *out = static_cast<std::int64_t>(d);
  return Status::Ok();
}

Status GetArray(const JsonValue& obj, const char* key, const JsonValue** out) {
  CREW_RETURN_IF_ERROR(GetField(obj, key, out));
  if ((*out)->type != JsonValue::Type::kArray) {
    return Status::DataLoss(std::string("field is not an array: ") + key);
  }
  return Status::Ok();
}

Status GetObject(const JsonValue& obj, const char* key,
                 const JsonValue** out) {
  CREW_RETURN_IF_ERROR(GetField(obj, key, out));
  if ((*out)->type != JsonValue::Type::kObject) {
    return Status::DataLoss(std::string("field is not an object: ") + key);
  }
  return Status::Ok();
}

Status ParseAggregate(const JsonValue& v, ExplainerAggregate* agg) {
  CREW_RETURN_IF_ERROR(GetString(v, "name", &agg->name));
  CREW_RETURN_IF_ERROR(GetInt(v, "instances", &agg->instances));
  CREW_RETURN_IF_ERROR(GetDouble(v, "aopc", &agg->aopc));
  CREW_RETURN_IF_ERROR(GetDouble(v, "comprehensiveness_at_1",
                                 &agg->comprehensiveness_at_1));
  CREW_RETURN_IF_ERROR(GetDouble(v, "comprehensiveness_at_3",
                                 &agg->comprehensiveness_at_3));
  CREW_RETURN_IF_ERROR(GetDouble(v, "sufficiency_at_1", &agg->sufficiency_at_1));
  CREW_RETURN_IF_ERROR(GetDouble(v, "sufficiency_at_3", &agg->sufficiency_at_3));
  CREW_RETURN_IF_ERROR(GetDouble(v, "comprehensiveness_budget5",
                                 &agg->comprehensiveness_budget5));
  CREW_RETURN_IF_ERROR(
      GetDouble(v, "decision_flip_rate", &agg->decision_flip_rate));
  CREW_RETURN_IF_ERROR(GetDouble(v, "insertion_aopc", &agg->insertion_aopc));
  CREW_RETURN_IF_ERROR(GetDouble(v, "flip_set_rate", &agg->flip_set_rate));
  CREW_RETURN_IF_ERROR(GetDouble(v, "flip_set_units", &agg->flip_set_units));
  CREW_RETURN_IF_ERROR(GetDouble(v, "flip_set_tokens", &agg->flip_set_tokens));
  CREW_RETURN_IF_ERROR(GetDouble(v, "total_units", &agg->total_units));
  CREW_RETURN_IF_ERROR(GetDouble(v, "effective_units", &agg->effective_units));
  CREW_RETURN_IF_ERROR(GetDouble(v, "words_per_unit", &agg->words_per_unit));
  CREW_RETURN_IF_ERROR(
      GetDouble(v, "semantic_coherence", &agg->semantic_coherence));
  CREW_RETURN_IF_ERROR(
      GetDouble(v, "attribute_purity", &agg->attribute_purity));
  CREW_RETURN_IF_ERROR(
      GetDouble(v, "cluster_coherence", &agg->cluster_coherence));
  CREW_RETURN_IF_ERROR(
      GetDouble(v, "cluster_silhouette", &agg->cluster_silhouette));
  CREW_RETURN_IF_ERROR(GetDouble(v, "mean_chosen_k", &agg->mean_chosen_k));
  CREW_RETURN_IF_ERROR(GetDouble(v, "stability", &agg->stability));
  CREW_RETURN_IF_ERROR(GetDouble(v, "surrogate_r2", &agg->surrogate_r2));
  CREW_RETURN_IF_ERROR(GetDouble(v, "runtime_ms", &agg->runtime_ms));
  return Status::Ok();
}

Status ParseInstance(const JsonValue& v, InstanceEvaluation* r) {
  CREW_RETURN_IF_ERROR(GetInt(v, "index", &r->index));
  CREW_RETURN_IF_ERROR(GetBool(v, "evaluated", &r->evaluated));
  CREW_RETURN_IF_ERROR(GetBool(v, "predicted_match", &r->predicted_match));
  CREW_RETURN_IF_ERROR(GetDouble(v, "aopc", &r->aopc));
  CREW_RETURN_IF_ERROR(
      GetDouble(v, "comprehensiveness_at_1", &r->comprehensiveness_at_1));
  CREW_RETURN_IF_ERROR(
      GetDouble(v, "comprehensiveness_at_3", &r->comprehensiveness_at_3));
  CREW_RETURN_IF_ERROR(GetDouble(v, "sufficiency_at_1", &r->sufficiency_at_1));
  CREW_RETURN_IF_ERROR(GetDouble(v, "sufficiency_at_3", &r->sufficiency_at_3));
  CREW_RETURN_IF_ERROR(GetDouble(v, "comprehensiveness_budget",
                                 &r->comprehensiveness_budget));
  CREW_RETURN_IF_ERROR(GetBool(v, "decision_flip", &r->decision_flip));
  CREW_RETURN_IF_ERROR(GetDouble(v, "insertion_aopc", &r->insertion_aopc));
  const JsonValue* flip = nullptr;
  CREW_RETURN_IF_ERROR(GetObject(v, "flip_set", &flip));
  CREW_RETURN_IF_ERROR(GetBool(*flip, "flipped", &r->flip_set.flipped));
  CREW_RETURN_IF_ERROR(
      GetInt(*flip, "units_removed", &r->flip_set.units_removed));
  CREW_RETURN_IF_ERROR(
      GetInt(*flip, "tokens_removed", &r->flip_set.tokens_removed));
  const JsonValue* curve = nullptr;
  CREW_RETURN_IF_ERROR(GetArray(v, "curve", &curve));
  r->curve.clear();
  r->curve.reserve(curve->array.size());
  for (const JsonValue& point : curve->array) {
    if (point.type == JsonValue::Type::kNull) {
      r->curve.push_back(std::numeric_limits<double>::quiet_NaN());
    } else if (point.type == JsonValue::Type::kNumber) {
      r->curve.push_back(point.number);
    } else {
      return Status::DataLoss("curve element is not a number");
    }
  }
  CREW_RETURN_IF_ERROR(GetDouble(v, "total_units", &r->total_units));
  CREW_RETURN_IF_ERROR(GetDouble(v, "effective_units", &r->effective_units));
  CREW_RETURN_IF_ERROR(GetDouble(v, "words_per_unit", &r->words_per_unit));
  CREW_RETURN_IF_ERROR(
      GetDouble(v, "semantic_coherence", &r->semantic_coherence));
  CREW_RETURN_IF_ERROR(GetDouble(v, "attribute_purity", &r->attribute_purity));
  CREW_RETURN_IF_ERROR(GetBool(v, "has_cluster_stats", &r->has_cluster_stats));
  CREW_RETURN_IF_ERROR(
      GetDouble(v, "cluster_coherence", &r->cluster_coherence));
  CREW_RETURN_IF_ERROR(
      GetDouble(v, "cluster_silhouette", &r->cluster_silhouette));
  CREW_RETURN_IF_ERROR(GetInt(v, "chosen_k", &r->chosen_k));
  CREW_RETURN_IF_ERROR(GetDouble(v, "stability", &r->stability));
  CREW_RETURN_IF_ERROR(GetDouble(v, "surrogate_r2", &r->surrogate_r2));
  CREW_RETURN_IF_ERROR(GetDouble(v, "runtime_ms", &r->runtime_ms));
  return Status::Ok();
}

Status ParseStringPairs(
    const JsonValue& v, const char* what,
    std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  for (const JsonValue& pair : v.array) {
    if (pair.type != JsonValue::Type::kArray || pair.array.size() != 2 ||
        pair.array[0].type != JsonValue::Type::kString ||
        pair.array[1].type != JsonValue::Type::kString) {
      return Status::DataLoss(std::string(what) +
                              " entry is not a [string, string] pair");
    }
    out->emplace_back(pair.array[0].str, pair.array[1].str);
  }
  return Status::Ok();
}

Status FileError(const char* what, const std::string& path) {
  return Status::DataLoss(std::string(what) + ": " + path);
}

// fflush + kernel-level sync: after this returns OK the line survives a
// process kill (the crash mode the fault injector simulates; a power cut
// additionally needs the directory entry synced, which is out of scope).
Status FlushAndSync(std::FILE* f, const std::string& path) {
  if (std::fflush(f) != 0) return FileError("flush failed", path);
#ifdef _WIN32
  if (_commit(_fileno(f)) != 0) return FileError("sync failed", path);
#else
  if (fsync(fileno(f)) != 0) return FileError("sync failed", path);
#endif
  return Status::Ok();
}

Status WriteLine(std::FILE* f, const std::string& line,
                 const std::string& path) {
  if (std::fwrite(line.data(), 1, line.size(), f) != line.size() ||
      std::fputc('\n', f) == EOF) {
    return FileError("short write", path);
  }
  return FlushAndSync(f, path);
}

}  // namespace

std::string CellKey(const std::string& scope, const std::string& dataset,
                    const std::string& variant) {
  std::string key;
  if (!scope.empty()) {
    key += scope;
    key += '|';
  }
  key += dataset;
  key += '|';
  key += variant;
  return key;
}

std::string HeaderToJsonl(const ExperimentResult& header) {
  // Built with += throughout: GCC 12's -Wrestrict false positive
  // (PR105651) fires on `"literal" + std::to_string(...)` chains.
  std::string out = "{\"v\":";
  out += std::to_string(kCellSchemaVersion);
  out += ",\"kind\":\"header\"";
  out += ",\"experiment\":";
  out += JsonStr(header.name);
  out += ",\"params\":[";
  for (size_t i = 0; i < header.params.size(); ++i) {
    if (i > 0) out += ",";
    out += '[';
    out += JsonStr(header.params[i].first);
    out += ',';
    out += JsonStr(header.params[i].second);
    out += ']';
  }
  out += "]}";
  return out;
}

std::string CellToJsonl(const std::string& scope, const ExperimentCell& cell) {
  std::string out = "{\"v\":";  // += throughout; see HeaderToJsonl
  out += std::to_string(kCellSchemaVersion);
  out += ",\"kind\":\"cell\"";
  out += ",\"scope\":";
  out += JsonStr(scope);
  out += ",\"dataset\":";
  out += JsonStr(cell.dataset);
  out += ",\"variant\":";
  out += JsonStr(cell.variant);
  out += ",\"aggregate\":";
  AppendAggregate(cell.aggregate, &out);
  out += ",\"instances\":[";
  for (size_t i = 0; i < cell.instances.size(); ++i) {
    if (i > 0) out += ",";
    AppendInstance(cell.instances[i], &out);
  }
  out += "]";
  out += ",\"scoring\":{\"predictions\":";
  out += std::to_string(cell.scoring.predictions);
  out += ",\"batches\":";
  out += std::to_string(cell.scoring.batches);
  out += ",\"materialize_ms\":";
  out += JsonDouble(cell.scoring.materialize_ms);
  out += ",\"predict_ms\":";
  out += JsonDouble(cell.scoring.predict_ms);
  out += "}";
  out += ",\"registry\":[";
  for (size_t i = 0; i < cell.registry.size(); ++i) {
    const MetricEntry& entry = cell.registry[i];
    if (i > 0) out += ",";
    out += "{\"name\":";
    out += JsonStr(entry.name);
    out += ",\"kind\":\"";
    out += MetricKindName(entry.kind);
    out += "\",\"count\":";
    out += std::to_string(entry.count);
    out += ",\"ms\":";
    out += JsonDouble(entry.total_ms);
    out += "}";
  }
  out += "]";
  out += ",\"metrics\":[";
  for (size_t i = 0; i < cell.metrics.size(); ++i) {
    if (i > 0) out += ",";
    out += '[';
    out += JsonStr(cell.metrics[i].first);
    out += ',';
    out += JsonDouble(cell.metrics[i].second);
    out += ']';
  }
  out += "]";
  out += ",\"notes\":[";
  for (size_t i = 0; i < cell.notes.size(); ++i) {
    if (i > 0) out += ",";
    out += '[';
    out += JsonStr(cell.notes[i].first);
    out += ',';
    out += JsonStr(cell.notes[i].second);
    out += ']';
  }
  out += "]";
  out += ",\"wall_ms\":";
  out += JsonDouble(cell.wall_ms);
  out += "}";
  return out;
}

Result<CellRecord> ParseCellRecord(const std::string& line) {
  JsonParser parser(line);
  Result<JsonValue> parsed = parser.Parse();
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = *parsed;
  if (root.type != JsonValue::Type::kObject) {
    return Status::DataLoss("record is not a JSON object");
  }

  CellRecord record;
  // Version first: a wrong version is a schema mismatch
  // (kFailedPrecondition), which callers treat as fatal even on the
  // trailing line, unlike the DataLoss a torn write produces.
  const JsonValue* version = root.Find("v");
  if (version == nullptr || version->type != JsonValue::Type::kNumber) {
    return Status::DataLoss("record has no version field");
  }
  record.version = static_cast<int>(version->number);
  if (record.version != kCellSchemaVersion) {
    return Status::FailedPrecondition(
        "unsupported cell schema version " + std::to_string(record.version) +
        " (expected " + std::to_string(kCellSchemaVersion) + ")");
  }
  CREW_RETURN_IF_ERROR(GetString(root, "kind", &record.kind));

  if (record.kind == "header") {
    CREW_RETURN_IF_ERROR(GetString(root, "experiment", &record.experiment));
    const JsonValue* params = nullptr;
    CREW_RETURN_IF_ERROR(GetArray(root, "params", &params));
    CREW_RETURN_IF_ERROR(ParseStringPairs(*params, "params", &record.params));
    return record;
  }
  if (record.kind != "cell") {
    return Status::DataLoss("unknown record kind: " + record.kind);
  }

  CREW_RETURN_IF_ERROR(GetString(root, "scope", &record.scope));
  ExperimentCell& cell = record.cell;
  CREW_RETURN_IF_ERROR(GetString(root, "dataset", &cell.dataset));
  CREW_RETURN_IF_ERROR(GetString(root, "variant", &cell.variant));
  const JsonValue* aggregate = nullptr;
  CREW_RETURN_IF_ERROR(GetObject(root, "aggregate", &aggregate));
  CREW_RETURN_IF_ERROR(ParseAggregate(*aggregate, &cell.aggregate));
  const JsonValue* instances = nullptr;
  CREW_RETURN_IF_ERROR(GetArray(root, "instances", &instances));
  cell.instances.clear();
  cell.instances.reserve(instances->array.size());
  for (const JsonValue& inst : instances->array) {
    if (inst.type != JsonValue::Type::kObject) {
      return Status::DataLoss("instance entry is not an object");
    }
    InstanceEvaluation r;
    CREW_RETURN_IF_ERROR(ParseInstance(inst, &r));
    cell.instances.push_back(std::move(r));
  }
  const JsonValue* scoring = nullptr;
  CREW_RETURN_IF_ERROR(GetObject(root, "scoring", &scoring));
  CREW_RETURN_IF_ERROR(
      GetInt64(*scoring, "predictions", &cell.scoring.predictions));
  CREW_RETURN_IF_ERROR(GetInt64(*scoring, "batches", &cell.scoring.batches));
  CREW_RETURN_IF_ERROR(
      GetDouble(*scoring, "materialize_ms", &cell.scoring.materialize_ms));
  CREW_RETURN_IF_ERROR(
      GetDouble(*scoring, "predict_ms", &cell.scoring.predict_ms));
  const JsonValue* registry = nullptr;
  CREW_RETURN_IF_ERROR(GetArray(root, "registry", &registry));
  cell.registry.clear();
  cell.registry.reserve(registry->array.size());
  for (const JsonValue& entry : registry->array) {
    if (entry.type != JsonValue::Type::kObject) {
      return Status::DataLoss("registry entry is not an object");
    }
    MetricEntry m;
    CREW_RETURN_IF_ERROR(GetString(entry, "name", &m.name));
    std::string kind;
    CREW_RETURN_IF_ERROR(GetString(entry, "kind", &kind));
    Result<MetricKind> parsed_kind = MetricKindFromName(kind);
    if (!parsed_kind.ok()) return parsed_kind.status();
    m.kind = *parsed_kind;
    CREW_RETURN_IF_ERROR(GetInt64(entry, "count", &m.count));
    CREW_RETURN_IF_ERROR(GetDouble(entry, "ms", &m.total_ms));
    cell.registry.push_back(std::move(m));
  }
  // Canonicalize: snapshots are name-sorted by contract, and the --metrics
  // sum as well as the "registry" JSON block iterate in stored order, so a
  // restored cell must never depend on how the shard happened to order its
  // entries (e.g. after a hand-merged file).
  std::sort(cell.registry.begin(), cell.registry.end(),
            [](const MetricEntry& a, const MetricEntry& b) {
              return a.name < b.name;
            });
  const JsonValue* metrics = nullptr;
  CREW_RETURN_IF_ERROR(GetArray(root, "metrics", &metrics));
  cell.metrics.clear();
  for (const JsonValue& pair : metrics->array) {
    if (pair.type != JsonValue::Type::kArray || pair.array.size() != 2 ||
        pair.array[0].type != JsonValue::Type::kString) {
      return Status::DataLoss("metrics entry is not a [string, number] pair");
    }
    double value = 0.0;
    if (pair.array[1].type == JsonValue::Type::kNull) {
      value = std::numeric_limits<double>::quiet_NaN();
    } else if (pair.array[1].type == JsonValue::Type::kNumber) {
      value = pair.array[1].number;
    } else {
      return Status::DataLoss("metrics entry is not a [string, number] pair");
    }
    cell.metrics.emplace_back(pair.array[0].str, value);
  }
  const JsonValue* notes = nullptr;
  CREW_RETURN_IF_ERROR(GetArray(root, "notes", &notes));
  CREW_RETURN_IF_ERROR(ParseStringPairs(*notes, "notes", &cell.notes));
  CREW_RETURN_IF_ERROR(GetDouble(root, "wall_ms", &cell.wall_ms));
  return record;
}

// ---------------------------------------------------------------------------
// JsonlStreamSink
// ---------------------------------------------------------------------------

JsonlStreamSink::JsonlStreamSink(std::string path, std::string scope)
    : path_(std::move(path)), scope_(std::move(scope)) {}

JsonlStreamSink::~JsonlStreamSink() {
  if (file_ != nullptr) std::fclose(file_);
}

Status JsonlStreamSink::OnBegin(const ExperimentResult& header) {
  if (file_ != nullptr) return Status::Ok();  // sweep re-entry: keep shard
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::NotFound("cannot open for writing: " + path_);
  }
  return WriteLine(file_, HeaderToJsonl(header), path_);
}

Status JsonlStreamSink::OnCell(const ExperimentCell& cell, bool restored) {
  (void)restored;  // the stream is the full record, restored cells included
  if (file_ == nullptr) {
    return Status::FailedPrecondition("JsonlStreamSink: OnCell before OnBegin");
  }
  return WriteLine(file_, CellToJsonl(scope_, cell), path_);
}

// ---------------------------------------------------------------------------
// CheckpointStore
// ---------------------------------------------------------------------------

CheckpointStore::CheckpointStore(std::string path) : path_(std::move(path)) {}

CheckpointStore::~CheckpointStore() {
  if (file_ != nullptr) std::fclose(file_);
}

Status CheckpointStore::Load() {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return Status::Ok();  // no file yet: empty checkpoint
  std::string content;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return FileError("read failed", path_);

  size_t pos = 0;
  size_t good_end = 0;  // byte offset just past the last accepted line
  std::string drop_reason;
  while (pos < content.size()) {
    const size_t newline = content.find('\n', pos);
    const bool terminated = newline != std::string::npos;
    const size_t line_end = terminated ? newline : content.size();
    const std::string line = content.substr(pos, line_end - pos);
    const bool last = !terminated || line_end + 1 >= content.size();

    if (!terminated) {
      // A torn append: the crash hit mid-line. Never trusted, even if it
      // happens to parse — the bytes after the fsync'd prefix are garbage.
      drop_reason = "unterminated trailing line";
      break;
    }
    Result<CellRecord> parsed = ParseCellRecord(line);
    if (!parsed.ok()) {
      if (parsed.status().code() == StatusCode::kFailedPrecondition) {
        // Schema-version mismatch: refuse the whole file, the caller must
        // not silently recompute cells a newer/older writer produced.
        return parsed.status();
      }
      if (last) {
        drop_reason = parsed.status().message();
        break;
      }
      return Status::DataLoss("corrupt checkpoint record (line not last): " +
                              parsed.status().message() + ": " + path_);
    }
    const CellRecord& record = *parsed;
    if (record.kind == "header") {
      if (experiment_.empty()) {
        experiment_ = record.experiment;
      } else if (experiment_ != record.experiment) {
        return Status::FailedPrecondition(
            "checkpoint mixes experiments: " + experiment_ + " vs " +
            record.experiment + ": " + path_);
      }
    } else {
      const std::string key =
          CellKey(record.scope, record.cell.dataset, record.cell.variant);
      if (cells_.find(key) != cells_.end()) {
        CREW_LOG(Warning) << "checkpoint " << path_
                          << ": duplicate cell " << key << "; keeping first";
      } else {
        cells_.emplace(key, record.cell);
      }
    }
    has_records_ = true;
    good_end = line_end + 1;
    pos = line_end + 1;
  }

  if (!drop_reason.empty()) {
    CREW_LOG(Warning) << "checkpoint " << path_
                      << ": dropping torn trailing line (" << drop_reason
                      << "); truncating to last complete record";
    // Rewrite the good prefix so future appends extend complete records
    // only. (A plain O_APPEND after the torn bytes would corrupt the file
    // permanently.)
    std::FILE* w = std::fopen(path_.c_str(), "wb");
    if (w == nullptr) return FileError("cannot truncate", path_);
    if (good_end > 0 &&
        std::fwrite(content.data(), 1, good_end, w) != good_end) {
      std::fclose(w);
      return FileError("truncate write failed", path_);
    }
    const Status synced = FlushAndSync(w, path_);
    std::fclose(w);
    CREW_RETURN_IF_ERROR(synced);
  }
  return Status::Ok();
}

bool CheckpointStore::IsDone(const std::string& key) const {
  return cells_.find(key) != cells_.end();
}

const ExperimentCell* CheckpointStore::Restored(const std::string& key) const {
  const auto it = cells_.find(key);
  return it == cells_.end() ? nullptr : &it->second;
}

Status CheckpointStore::EnsureOpenForAppend() {
  if (file_ != nullptr) return Status::Ok();
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::NotFound("cannot open for append: " + path_);
  }
  return Status::Ok();
}

Status CheckpointStore::Append(const std::string& scope,
                               const ExperimentCell& cell) {
  const std::string key = CellKey(scope, cell.dataset, cell.variant);
  if (IsDone(key)) return Status::Ok();  // idempotent replay
  CREW_RETURN_IF_ERROR(EnsureOpenForAppend());
  CREW_RETURN_IF_ERROR(WriteLine(file_, CellToJsonl(scope, cell), path_));
  cells_.emplace(key, cell);
  has_records_ = true;
  return Status::Ok();
}

Status CheckpointStore::WriteHeaderIfNew(const ExperimentResult& header) {
  if (has_records_) {
    if (experiment_.empty()) {
      experiment_ = header.name;  // cells-only shard; adopt the name
      return Status::Ok();
    }
    if (experiment_ != header.name) {
      return Status::FailedPrecondition(
          "checkpoint " + path_ + " belongs to experiment '" + experiment_ +
          "', refusing to resume '" + header.name + "'");
    }
    return Status::Ok();
  }
  CREW_RETURN_IF_ERROR(EnsureOpenForAppend());
  CREW_RETURN_IF_ERROR(WriteLine(file_, HeaderToJsonl(header), path_));
  experiment_ = header.name;
  has_records_ = true;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

void FaultInjector::ArmAfterCells(int cells) {
  fail_after_ = cells < 0 ? -1 : cells;
  seed_armed_ = false;
}

void FaultInjector::ArmFromSeed(uint64_t seed) {
  seed_ = seed;
  seed_armed_ = true;
  fail_after_ = -1;
}

std::unique_ptr<FaultInjector> FaultInjector::FromFlagsAndEnv(
    int fail_after_cells) {
  std::unique_ptr<FaultInjector> injector;
  if (fail_after_cells >= 0) {
    injector = std::make_unique<FaultInjector>();
    injector->ArmAfterCells(fail_after_cells);
  } else if (const char* env = std::getenv("CREW_FAULT_SEED")) {
    char* end = nullptr;
    const unsigned long long seed = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') {
      injector = std::make_unique<FaultInjector>();
      injector->ArmFromSeed(static_cast<uint64_t>(seed));
    } else {
      CREW_LOG(Warning) << "ignoring unparseable CREW_FAULT_SEED: " << env;
    }
  }
  if (injector != nullptr && std::getenv("CREW_FAULT_HARD") != nullptr) {
    injector->set_hard(true);
  }
  return injector;
}

void FaultInjector::FinalizeSchedule(int total_cells) {
  if (!seed_armed_ || fail_after_ >= 0) return;
  // Uniform over [0, total): the injector always fires somewhere inside
  // the grid, including "before the very first cell".
  fail_after_ = Rng(seed_).UniformInt(total_cells < 1 ? 1 : total_cells);
  CREW_LOG(Info) << "CREW_FAULT_SEED=" << seed_ << " arms fault after "
                 << fail_after_ << " cell(s)";
}

bool FaultInjector::FireNow() {
  if (fail_after_ < 0 || completed_ < fail_after_) return false;
  CREW_LOG(Warning) << "fault injector firing after " << completed_
                    << " completed cell(s)";
  if (hard_) std::_Exit(kFaultExitCode);
  return true;
}

Status FaultInjector::FaultStatus() const {
  return Status::Internal("fault injected after " +
                          std::to_string(completed_) + " cell(s)");
}

// ---------------------------------------------------------------------------
// CellStreamer
// ---------------------------------------------------------------------------

Status CellStreamer::Begin(const ExperimentResult& header, int total_cells) {
  if (hooks_.checkpoint != nullptr) {
    CREW_RETURN_IF_ERROR(hooks_.checkpoint->WriteHeaderIfNew(header));
  }
  if (hooks_.fault != nullptr) hooks_.fault->FinalizeSchedule(total_cells);
  for (StreamingSink* sink : hooks_.sinks) {
    CREW_RETURN_IF_ERROR(sink->OnBegin(header));
  }
  return Status::Ok();
}

Result<bool> CellStreamer::TryRestore(const std::string& dataset,
                                      const std::string& variant,
                                      ExperimentCell* cell) {
  if (hooks_.checkpoint == nullptr) return false;
  const ExperimentCell* restored =
      hooks_.checkpoint->Restored(CellKey(hooks_.scope, dataset, variant));
  if (restored == nullptr) return false;
  *cell = *restored;
  if (StableTiming()) ZeroCellTimings(cell);
  for (StreamingSink* sink : hooks_.sinks) {
    CREW_RETURN_IF_ERROR(sink->OnCell(*cell, /*restored=*/true));
  }
  return true;
}

Status CellStreamer::BeforeFreshCell() {
  if (hooks_.fault != nullptr && hooks_.fault->FireNow()) {
    return hooks_.fault->FaultStatus();
  }
  return Status::Ok();
}

Status CellStreamer::Emit(const ExperimentCell& cell) {
  if (hooks_.checkpoint != nullptr) {
    CREW_RETURN_IF_ERROR(hooks_.checkpoint->Append(hooks_.scope, cell));
  }
  for (StreamingSink* sink : hooks_.sinks) {
    CREW_RETURN_IF_ERROR(sink->OnCell(cell, /*restored=*/false));
  }
  if (hooks_.fault != nullptr) hooks_.fault->CellCompleted();
  return Status::Ok();
}

Status CellStreamer::Finish(const ExperimentResult& result) {
  for (StreamingSink* sink : hooks_.sinks) {
    CREW_RETURN_IF_ERROR(sink->OnEnd(result));
  }
  return Status::Ok();
}

Status ReplayResult(StreamingSink& sink, const ExperimentResult& result) {
  CREW_RETURN_IF_ERROR(sink.OnBegin(result));
  for (const ExperimentCell& cell : result.cells) {
    CREW_RETURN_IF_ERROR(sink.OnCell(cell, /*restored=*/false));
  }
  return sink.OnEnd(result);
}

}  // namespace crew
