#include "crew/eval/stability.h"

#include <unordered_set>

namespace crew {

double TopKJaccard(const std::vector<std::string>& a,
                   const std::vector<std::string>& b) {
  std::unordered_set<std::string> sa(a.begin(), a.end());
  std::unordered_set<std::string> sb(b.begin(), b.end());
  if (sa.empty() && sb.empty()) return 1.0;
  int inter = 0;
  // crew-lint: allow(unordered-iter): accumulates an order-independent
  // integer count; no output depends on visit order.
  for (const auto& t : sa) {
    if (sb.count(t) > 0) ++inter;
  }
  const int uni = static_cast<int>(sa.size() + sb.size()) - inter;
  return uni > 0 ? static_cast<double>(inter) / uni : 1.0;
}

Result<double> ExplainerStability(const Explainer& explainer,
                                  const Matcher& matcher,
                                  const RecordPair& pair,
                                  const std::vector<uint64_t>& seeds, int k) {
  if (seeds.size() < 2) {
    return Status::InvalidArgument("ExplainerStability: need >= 2 seeds");
  }
  std::vector<std::vector<std::string>> tops;
  tops.reserve(seeds.size());
  for (uint64_t seed : seeds) {
    auto explanation = explainer.Explain(matcher, pair, seed);
    if (!explanation.ok()) return explanation.status();
    tops.push_back(explanation.value().TopTokens(k));
  }
  double total = 0.0;
  int count = 0;
  for (size_t i = 0; i < tops.size(); ++i) {
    for (size_t j = i + 1; j < tops.size(); ++j) {
      total += TopKJaccard(tops[i], tops[j]);
      ++count;
    }
  }
  return total / static_cast<double>(count);
}

}  // namespace crew
