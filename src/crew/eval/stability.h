#ifndef CREW_EVAL_STABILITY_H_
#define CREW_EVAL_STABILITY_H_

#include <string>
#include <vector>

#include "crew/common/status.h"
#include "crew/explain/attribution.h"

namespace crew {

/// Jaccard similarity of two top-k token lists (as sets of token texts).
double TopKJaccard(const std::vector<std::string>& a,
                   const std::vector<std::string>& b);

/// Re-runs `explainer` on the same pair with each seed and returns the mean
/// pairwise TopKJaccard of the top-k token sets — the standard sampling
/// stability measure for perturbation explainers.
Result<double> ExplainerStability(const Explainer& explainer,
                                  const Matcher& matcher,
                                  const RecordPair& pair,
                                  const std::vector<uint64_t>& seeds, int k);

}  // namespace crew

#endif  // CREW_EVAL_STABILITY_H_
