#include "crew/eval/significance.h"

#include <algorithm>

#include "crew/common/rng.h"
#include "crew/la/stats.h"

namespace crew {

Result<BootstrapComparison> PairedBootstrap(const std::vector<double>& a,
                                            const std::vector<double>& b,
                                            int resamples, uint64_t seed) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("PairedBootstrap: size mismatch");
  }
  if (a.size() < 2) {
    return Status::InvalidArgument("PairedBootstrap: need >= 2 pairs");
  }
  if (resamples < 10) {
    return Status::InvalidArgument("PairedBootstrap: too few resamples");
  }
  const int n = static_cast<int>(a.size());
  std::vector<double> diffs(n);
  for (int i = 0; i < n; ++i) diffs[i] = a[i] - b[i];

  BootstrapComparison out;
  out.mean_difference = la::Mean(diffs);

  Rng rng(seed);
  std::vector<double> means(resamples);
  int non_positive = 0;
  for (int r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += diffs[rng.UniformInt(n)];
    means[r] = sum / n;
    if (means[r] <= 0.0) ++non_positive;
  }
  out.ci_low = la::Percentile(means, 2.5);
  out.ci_high = la::Percentile(means, 97.5);
  out.p_value = static_cast<double>(non_positive) / resamples;
  return out;
}

}  // namespace crew
