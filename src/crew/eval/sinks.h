#ifndef CREW_EVAL_SINKS_H_
#define CREW_EVAL_SINKS_H_

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "crew/eval/runner.h"
#include "crew/eval/streaming.h"
#include "crew/eval/table.h"

namespace crew {

/// Structured consumer of an ExperimentResult. Experiments produce one
/// result and hand it to any number of sinks (console table, JSON file,
/// ...), replacing the hand-rolled accumulation + printf each bench used
/// to carry. The concrete sinks below are thin adapters over the
/// streaming path (StreamingSink): Consume() replays the finished result
/// cell by cell, so batch and streamed emission share one code path.
class ExperimentSink {
 public:
  virtual ~ExperimentSink() = default;
  virtual Status Consume(const ExperimentResult& result) = 0;
};

/// One table column: a header plus a formatter over a cell.
struct TableColumn {
  std::string header;
  std::function<std::string(const ExperimentCell&)> format;
};

/// Column reading a numeric ExplainerAggregate field.
TableColumn AggColumn(std::string header, double ExplainerAggregate::*field,
                      int precision = 3);

/// Column reading a named value from ExperimentCell::metrics.
TableColumn MetricColumn(std::string header, std::string key,
                         int precision = 3);

/// Column reading a named value from ExperimentCell::notes.
TableColumn NoteColumn(std::string header, std::string key);

/// Column reading a metric's count from ExperimentCell::registry.
TableColumn RegistryCountColumn(std::string header, std::string metric);

/// Column reading a duration metric's total milliseconds from
/// ExperimentCell::registry.
TableColumn RegistryMsColumn(std::string header, std::string metric,
                             int precision = 1);

/// Renders a metrics snapshot (or delta) as a name/count/ms table —
/// the "-- metrics --" block TableSink appends under --metrics.
Table MetricsSnapshotTable(const MetricsSnapshot& snapshot);

/// Builds the aligned table for `cells` with a leading dataset and/or
/// variant column.
Table MakeCellTable(const std::vector<ExperimentCell>& cells,
                    const std::vector<TableColumn>& columns,
                    bool dataset_column = true, bool variant_column = true);

/// Prints the cell grid as an aligned table. As a StreamingSink it buffers
/// cells in arrival order and renders once at OnEnd — everything the table
/// shows travelled through the per-cell stream, so the streamed and batch
/// paths cannot drift apart.
class TableSink : public ExperimentSink, public StreamingSink {
 public:
  explicit TableSink(std::vector<TableColumn> columns,
                     bool dataset_column = true, bool variant_column = true,
                     std::FILE* out = stdout)
      : columns_(std::move(columns)), dataset_column_(dataset_column),
        variant_column_(variant_column), out_(out) {}

  Status Consume(const ExperimentResult& result) override {
    return ReplayResult(*this, result);
  }

  Status OnBegin(const ExperimentResult& header) override;
  Status OnCell(const ExperimentCell& cell, bool restored) override;
  Status OnEnd(const ExperimentResult& result) override;

 private:
  std::vector<TableColumn> columns_;
  bool dataset_column_;
  bool variant_column_;
  std::FILE* out_;
  bool include_metrics_ = false;
  std::vector<ExperimentCell> cells_;
};

/// Live partial-table mode for interactive (TTY) runs: after every cell it
/// re-renders the table of everything seen so far, prefixed with a
/// "-- partial: done/total --" marker, so a long grid shows its rows as
/// they land instead of going silent until the end. Pass no columns to get
/// a compact default (instances / aopc / wall ms).
class PartialTableSink : public StreamingSink {
 public:
  explicit PartialTableSink(std::vector<TableColumn> columns =
                                std::vector<TableColumn>(),
                            std::FILE* out = stderr);

  Status OnBegin(const ExperimentResult& header) override;
  Status OnCell(const ExperimentCell& cell, bool restored) override;

 private:
  std::vector<TableColumn> columns_;
  std::FILE* out_;
  int expected_cells_ = 0;
  std::vector<ExperimentCell> cells_;
};

/// Serializes the full result (params, every aggregate field, per-instance
/// AOPC samples, scoring counters, extra metrics/notes) as one
/// self-describing JSON document — the machine-readable record each bench
/// emits via --json so perf/quality trajectories can be captured
/// mechanically.
std::string ExperimentResultToJson(const ExperimentResult& result);

/// Writes ExperimentResultToJson to `path`.
Status WriteExperimentJson(const ExperimentResult& result,
                           const std::string& path);

/// File-writing sink over WriteExperimentJson. The streamed form
/// reassembles the document from the header + buffered cells, so the
/// emitted JSON is built purely from what crossed the stream.
class JsonSink : public ExperimentSink, public StreamingSink {
 public:
  explicit JsonSink(std::string path) : path_(std::move(path)) {}

  Status Consume(const ExperimentResult& result) override {
    return ReplayResult(*this, result);
  }

  Status OnBegin(const ExperimentResult& header) override;
  Status OnCell(const ExperimentCell& cell, bool restored) override;
  Status OnEnd(const ExperimentResult& result) override;

 private:
  std::string path_;
  ExperimentResult buffered_;
};

}  // namespace crew

#endif  // CREW_EVAL_SINKS_H_
