#ifndef CREW_EVAL_SIGNIFICANCE_H_
#define CREW_EVAL_SIGNIFICANCE_H_

#include <cstdint>
#include <vector>

#include "crew/common/status.h"

namespace crew {

/// Paired bootstrap comparison of two per-instance metric vectors (e.g.
/// AOPC of explainer A vs B on the same explained pairs).
struct BootstrapComparison {
  double mean_difference = 0.0;  ///< mean(a - b)
  double ci_low = 0.0;           ///< percentile CI of the mean difference
  double ci_high = 0.0;
  /// Fraction of bootstrap resamples where mean(a - b) <= 0; a one-sided
  /// p-value for "A is better than B" when higher metric = better.
  double p_value = 1.0;

  bool SignificantAt(double alpha) const { return p_value < alpha; }
};

/// `a` and `b` must be the same length (>= 2): paired per-instance scores.
/// `resamples` bootstrap iterations with replacement; deterministic given
/// `seed`.
Result<BootstrapComparison> PairedBootstrap(const std::vector<double>& a,
                                            const std::vector<double>& b,
                                            int resamples = 2000,
                                            uint64_t seed = 97);

}  // namespace crew

#endif  // CREW_EVAL_SIGNIFICANCE_H_
