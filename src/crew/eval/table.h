#ifndef CREW_EVAL_TABLE_H_
#define CREW_EVAL_TABLE_H_

#include <string>
#include <vector>

namespace crew {

/// Tiny result-table builder used by every bench binary so tables and
/// figures print in a consistent, diffable format.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string Num(double v, int precision = 3);

  /// Fixed-width aligned text (primary console output).
  std::string ToAligned() const;

  /// GitHub-flavoured markdown.
  std::string ToMarkdown() const;

  /// Tab-separated values (for plotting scripts).
  std::string ToTsv() const;

  int rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace crew

#endif  // CREW_EVAL_TABLE_H_
