#include "crew/eval/faithfulness.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "crew/common/logging.h"

namespace crew {
namespace {

// Deletes the units listed in `unit_indices` and returns the matcher score.
double ScoreWithoutUnits(const Matcher& matcher, const EvalInstance& instance,
                         const std::vector<int>& unit_indices) {
  std::vector<bool> keep(instance.view.size(), true);
  for (int u : unit_indices) {
    for (int i : instance.units[u].member_indices) keep[i] = false;
  }
  return matcher.PredictProba(instance.view.Materialize(keep));
}

// Keeps ONLY the units listed; every other token is deleted.
double ScoreWithOnlyUnits(const Matcher& matcher, const EvalInstance& instance,
                          const std::vector<int>& unit_indices) {
  std::vector<bool> keep(instance.view.size(), false);
  for (int u : unit_indices) {
    for (int i : instance.units[u].member_indices) keep[i] = true;
  }
  return matcher.PredictProba(instance.view.Materialize(keep));
}

}  // namespace

double PredictedClassProb(double score, bool predicted_match) {
  return predicted_match ? score : 1.0 - score;
}

std::vector<int> EvalInstance::RankUnitsBySupport() const {
  const bool match = PredictedMatch();
  std::vector<int> order(units.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return match ? units[a].weight > units[b].weight
                 : units[a].weight < units[b].weight;
  });
  return order;
}

double ComprehensivenessAtK(const Matcher& matcher,
                            const EvalInstance& instance, int k) {
  if (instance.units.empty()) return 0.0;
  const auto ranked = instance.RankUnitsBySupport();
  k = std::min<int>(k, static_cast<int>(ranked.size()));
  const std::vector<int> top(ranked.begin(), ranked.begin() + k);
  const double after = ScoreWithoutUnits(matcher, instance, top);
  const bool match = instance.PredictedMatch();
  return PredictedClassProb(instance.base_score, match) -
         PredictedClassProb(after, match);
}

double SufficiencyAtK(const Matcher& matcher, const EvalInstance& instance,
                      int k) {
  if (instance.units.empty()) return 0.0;
  const auto ranked = instance.RankUnitsBySupport();
  k = std::min<int>(k, static_cast<int>(ranked.size()));
  const std::vector<int> top(ranked.begin(), ranked.begin() + k);
  const double after = ScoreWithOnlyUnits(matcher, instance, top);
  const bool match = instance.PredictedMatch();
  return PredictedClassProb(instance.base_score, match) -
         PredictedClassProb(after, match);
}

double AopcDeletion(const Matcher& matcher, const EvalInstance& instance,
                    int max_k) {
  if (instance.units.empty()) return 0.0;
  const int kk = std::min<int>(max_k, static_cast<int>(instance.units.size()));
  if (kk <= 0) return 0.0;
  double total = 0.0;
  for (int k = 1; k <= kk; ++k) {
    total += ComprehensivenessAtK(matcher, instance, k);
  }
  return total / static_cast<double>(kk);
}

double AopcInsertion(const Matcher& matcher, const EvalInstance& instance,
                     int max_k) {
  if (instance.units.empty()) return 0.0;
  const int kk = std::min<int>(max_k, static_cast<int>(instance.units.size()));
  if (kk <= 0) return 0.0;
  const auto ranked = instance.RankUnitsBySupport();
  const bool match = instance.PredictedMatch();
  const double empty = PredictedClassProb(
      matcher.PredictProba(
          instance.view.Materialize(std::vector<bool>(instance.view.size(),
                                                      false))),
      match);
  double total = 0.0;
  std::vector<int> inserted;
  for (int k = 1; k <= kk; ++k) {
    inserted.push_back(ranked[k - 1]);
    const double with_top =
        PredictedClassProb(ScoreWithOnlyUnits(matcher, instance, inserted),
                           match);
    total += with_top - empty;
  }
  return total / static_cast<double>(kk);
}

double ComprehensivenessAtTokenBudget(const Matcher& matcher,
                                      const EvalInstance& instance,
                                      int token_budget) {
  if (instance.units.empty() || token_budget <= 0) return 0.0;
  const auto ranked = instance.RankUnitsBySupport();
  std::vector<int> selected;
  int removed_tokens = 0;
  for (int u : ranked) {
    selected.push_back(u);
    removed_tokens +=
        static_cast<int>(instance.units[u].member_indices.size());
    if (removed_tokens >= token_budget) break;
  }
  const double after = ScoreWithoutUnits(matcher, instance, selected);
  const bool match = instance.PredictedMatch();
  return PredictedClassProb(instance.base_score, match) -
         PredictedClassProb(after, match);
}

bool DecisionFlipAtTop(const Matcher& matcher, const EvalInstance& instance) {
  if (instance.units.empty()) return false;
  const auto ranked = instance.RankUnitsBySupport();
  const double after = ScoreWithoutUnits(matcher, instance, {ranked[0]});
  return (after >= instance.threshold) != instance.PredictedMatch();
}

FlipSetResult MinimalFlipSet(const Matcher& matcher,
                             const EvalInstance& instance) {
  FlipSetResult result;
  if (instance.units.empty()) return result;
  const auto ranked = instance.RankUnitsBySupport();
  const bool predicted_match = instance.PredictedMatch();
  std::vector<int> selected;
  for (int u : ranked) {
    selected.push_back(u);
    result.units_removed = static_cast<int>(selected.size());
    result.tokens_removed +=
        static_cast<int>(instance.units[u].member_indices.size());
    const double after = ScoreWithoutUnits(matcher, instance, selected);
    if ((after >= instance.threshold) != predicted_match) {
      result.flipped = true;
      return result;
    }
  }
  return result;
}

std::vector<double> DeletionCurve(const Matcher& matcher,
                                  const EvalInstance& instance,
                                  const std::vector<double>& fractions) {
  std::vector<double> curve;
  curve.reserve(fractions.size());
  const auto ranked = instance.RankUnitsBySupport();
  const bool match = instance.PredictedMatch();
  const int n = static_cast<int>(ranked.size());
  for (double f : fractions) {
    const int k = std::min(
        n, static_cast<int>(std::ceil(f * static_cast<double>(n) - 1e-12)));
    if (k <= 0) {
      curve.push_back(PredictedClassProb(instance.base_score, match));
      continue;
    }
    const std::vector<int> top(ranked.begin(), ranked.begin() + k);
    curve.push_back(
        PredictedClassProb(ScoreWithoutUnits(matcher, instance, top), match));
  }
  return curve;
}

}  // namespace crew
