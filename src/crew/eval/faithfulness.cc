#include "crew/eval/faithfulness.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "crew/common/logging.h"
#include "crew/explain/batch_scorer.h"

namespace crew {
namespace {

// Keep-mask deleting the units listed in `unit_indices`.
std::vector<bool> MaskWithoutUnits(const EvalInstance& instance,
                                   const std::vector<int>& unit_indices) {
  std::vector<bool> keep(instance.view.size(), true);
  for (int u : unit_indices) {
    for (int i : instance.units[u].member_indices) keep[i] = false;
  }
  return keep;
}

// Keep-mask keeping ONLY the units listed; every other token is deleted.
std::vector<bool> MaskWithOnlyUnits(const EvalInstance& instance,
                                    const std::vector<int>& unit_indices) {
  std::vector<bool> keep(instance.view.size(), false);
  for (int u : unit_indices) {
    for (int i : instance.units[u].member_indices) keep[i] = true;
  }
  return keep;
}

// Deletes the units listed in `unit_indices` and returns the matcher score.
double ScoreWithoutUnits(const Matcher& matcher, const EvalInstance& instance,
                         const std::vector<int>& unit_indices) {
  return matcher.PredictProba(
      instance.view.Materialize(MaskWithoutUnits(instance, unit_indices)));
}

// Keeps ONLY the units listed; every other token is deleted.
double ScoreWithOnlyUnits(const Matcher& matcher, const EvalInstance& instance,
                          const std::vector<int>& unit_indices) {
  return matcher.PredictProba(
      instance.view.Materialize(MaskWithOnlyUnits(instance, unit_indices)));
}

}  // namespace

double PredictedClassProb(double score, bool predicted_match) {
  return predicted_match ? score : 1.0 - score;
}

std::vector<int> EvalInstance::RankUnitsBySupport() const {
  const bool match = PredictedMatch();
  std::vector<int> order(units.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return match ? units[a].weight > units[b].weight
                 : units[a].weight < units[b].weight;
  });
  return order;
}

double ComprehensivenessAtK(const Matcher& matcher,
                            const EvalInstance& instance, int k) {
  if (instance.units.empty()) return 0.0;
  const auto ranked = instance.RankUnitsBySupport();
  k = std::min<int>(k, static_cast<int>(ranked.size()));
  const std::vector<int> top(ranked.begin(), ranked.begin() + k);
  const double after = ScoreWithoutUnits(matcher, instance, top);
  const bool match = instance.PredictedMatch();
  return PredictedClassProb(instance.base_score, match) -
         PredictedClassProb(after, match);
}

double SufficiencyAtK(const Matcher& matcher, const EvalInstance& instance,
                      int k) {
  if (instance.units.empty()) return 0.0;
  const auto ranked = instance.RankUnitsBySupport();
  k = std::min<int>(k, static_cast<int>(ranked.size()));
  const std::vector<int> top(ranked.begin(), ranked.begin() + k);
  const double after = ScoreWithOnlyUnits(matcher, instance, top);
  const bool match = instance.PredictedMatch();
  return PredictedClassProb(instance.base_score, match) -
         PredictedClassProb(after, match);
}

double AopcDeletion(const Matcher& matcher, const EvalInstance& instance,
                    int max_k) {
  if (instance.units.empty()) return 0.0;
  const int kk = std::min<int>(max_k, static_cast<int>(instance.units.size()));
  if (kk <= 0) return 0.0;
  // All top-k deletion prefixes (k = 1..kk) scored in one batch.
  const auto ranked = instance.RankUnitsBySupport();
  std::vector<std::vector<bool>> keeps;
  keeps.reserve(kk);
  for (int k = 1; k <= kk; ++k) {
    keeps.push_back(MaskWithoutUnits(
        instance, std::vector<int>(ranked.begin(), ranked.begin() + k)));
  }
  const BatchScorer scorer(matcher, instance.view);
  std::vector<double> scores;
  scorer.ScoreKeepMasks(keeps, &scores);
  const bool match = instance.PredictedMatch();
  const double base = PredictedClassProb(instance.base_score, match);
  double total = 0.0;
  for (int k = 0; k < kk; ++k) {
    total += base - PredictedClassProb(scores[k], match);
  }
  return total / static_cast<double>(kk);
}

double AopcInsertion(const Matcher& matcher, const EvalInstance& instance,
                     int max_k) {
  if (instance.units.empty()) return 0.0;
  const int kk = std::min<int>(max_k, static_cast<int>(instance.units.size()));
  if (kk <= 0) return 0.0;
  const auto ranked = instance.RankUnitsBySupport();
  const bool match = instance.PredictedMatch();
  // Batch: all top-k insertion prefixes plus the empty baseline (last row).
  std::vector<std::vector<bool>> keeps;
  keeps.reserve(kk + 1);
  std::vector<int> inserted;
  for (int k = 1; k <= kk; ++k) {
    inserted.push_back(ranked[k - 1]);
    keeps.push_back(MaskWithOnlyUnits(instance, inserted));
  }
  keeps.emplace_back(instance.view.size(), false);
  const BatchScorer scorer(matcher, instance.view);
  std::vector<double> scores;
  scorer.ScoreKeepMasks(keeps, &scores);
  const double empty = PredictedClassProb(scores[kk], match);
  double total = 0.0;
  for (int k = 0; k < kk; ++k) {
    total += PredictedClassProb(scores[k], match) - empty;
  }
  return total / static_cast<double>(kk);
}

double ComprehensivenessAtTokenBudget(const Matcher& matcher,
                                      const EvalInstance& instance,
                                      int token_budget) {
  if (instance.units.empty() || token_budget <= 0) return 0.0;
  const auto ranked = instance.RankUnitsBySupport();
  std::vector<int> selected;
  int removed_tokens = 0;
  for (int u : ranked) {
    selected.push_back(u);
    removed_tokens +=
        static_cast<int>(instance.units[u].member_indices.size());
    if (removed_tokens >= token_budget) break;
  }
  const double after = ScoreWithoutUnits(matcher, instance, selected);
  const bool match = instance.PredictedMatch();
  return PredictedClassProb(instance.base_score, match) -
         PredictedClassProb(after, match);
}

bool DecisionFlipAtTop(const Matcher& matcher, const EvalInstance& instance) {
  if (instance.units.empty()) return false;
  const auto ranked = instance.RankUnitsBySupport();
  const double after = ScoreWithoutUnits(matcher, instance, {ranked[0]});
  return (after >= instance.threshold) != instance.PredictedMatch();
}

FlipSetResult MinimalFlipSet(const Matcher& matcher,
                             const EvalInstance& instance) {
  FlipSetResult result;
  if (instance.units.empty()) return result;
  const auto ranked = instance.RankUnitsBySupport();
  const bool predicted_match = instance.PredictedMatch();
  // All removal prefixes scored in one batch; the first flip wins, exactly
  // as in the early-exit loop (scoring is pure).
  std::vector<std::vector<bool>> keeps;
  keeps.reserve(ranked.size());
  std::vector<int> selected;
  for (int u : ranked) {
    selected.push_back(u);
    keeps.push_back(MaskWithoutUnits(instance, selected));
  }
  const BatchScorer scorer(matcher, instance.view);
  std::vector<double> scores;
  scorer.ScoreKeepMasks(keeps, &scores);
  for (size_t p = 0; p < ranked.size(); ++p) {
    result.units_removed = static_cast<int>(p + 1);
    result.tokens_removed += static_cast<int>(
        instance.units[ranked[p]].member_indices.size());
    if ((scores[p] >= instance.threshold) != predicted_match) {
      result.flipped = true;
      return result;
    }
  }
  return result;
}

std::vector<double> DeletionCurve(const Matcher& matcher,
                                  const EvalInstance& instance,
                                  const std::vector<double>& fractions) {
  std::vector<double> curve(fractions.size());
  const auto ranked = instance.RankUnitsBySupport();
  const bool match = instance.PredictedMatch();
  const int n = static_cast<int>(ranked.size());
  // Build every fraction's deletion mask, score them in one batch, then
  // stitch the curve back together (k <= 0 rows read the base score).
  std::vector<std::vector<bool>> keeps;
  std::vector<size_t> rows;  // curve index of each batched mask
  for (size_t fi = 0; fi < fractions.size(); ++fi) {
    const int k = std::min(
        n, static_cast<int>(
               std::ceil(fractions[fi] * static_cast<double>(n) - 1e-12)));
    if (k <= 0) {
      curve[fi] = PredictedClassProb(instance.base_score, match);
      continue;
    }
    keeps.push_back(MaskWithoutUnits(
        instance, std::vector<int>(ranked.begin(), ranked.begin() + k)));
    rows.push_back(fi);
  }
  const BatchScorer scorer(matcher, instance.view);
  std::vector<double> scores;
  scorer.ScoreKeepMasks(keeps, &scores);
  for (size_t b = 0; b < rows.size(); ++b) {
    curve[rows[b]] = PredictedClassProb(scores[b], match);
  }
  return curve;
}

}  // namespace crew
