#ifndef CREW_EVAL_COMPREHENSIBILITY_H_
#define CREW_EVAL_COMPREHENSIBILITY_H_

#include <vector>

#include "crew/core/cluster_explanation.h"
#include "crew/embed/embedding_store.h"
#include "crew/explain/attribution.h"

namespace crew {

/// How readable an explanation is, following the size/coherence criteria
/// CREW's abstract motivates (verbose explanations hinder understanding).
struct ComprehensibilityResult {
  /// Units the user must read to cover 90% of the total |weight| mass —
  /// the effective explanation length.
  int effective_units = 0;
  int total_units = 0;
  double avg_words_per_unit = 0.0;
  /// Mean within-unit pairwise embedding similarity (multi-word units
  /// only); 0 when no such pair exists.
  double semantic_coherence = 0.0;
  /// Fraction of units whose members all come from one schema attribute.
  double attribute_purity = 0.0;
};

ComprehensibilityResult EvaluateComprehensibility(
    const WordExplanation& words, const std::vector<ExplanationUnit>& units,
    const EmbeddingStore* embeddings);

}  // namespace crew

#endif  // CREW_EVAL_COMPREHENSIBILITY_H_
