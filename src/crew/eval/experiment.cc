#include "crew/eval/experiment.h"

#include <algorithm>

#include "crew/explain/certa.h"
#include "crew/explain/lemon.h"
#include "crew/explain/lime.h"
#include "crew/explain/mojito.h"
#include "crew/explain/shap.h"
#include "crew/core/decision_units.h"
#include "crew/explain/random_explainer.h"

namespace crew {

std::vector<std::unique_ptr<Explainer>> BuildExplainerSuite(
    std::shared_ptr<const EmbeddingStore> embeddings, const Dataset& support,
    const ExplainerSuiteConfig& config) {
  std::vector<std::unique_ptr<Explainer>> out;

  LimeConfig lime;
  lime.perturbation.num_samples = config.num_samples;
  out.push_back(std::make_unique<LimeExplainer>(lime));

  MojitoConfig mojito_drop;
  mojito_drop.mode = MojitoMode::kDrop;
  mojito_drop.perturbation.num_samples = config.num_samples;
  out.push_back(std::make_unique<MojitoExplainer>(mojito_drop));

  MojitoConfig mojito_copy;
  mojito_copy.mode = MojitoMode::kCopy;
  mojito_copy.perturbation.num_samples = config.num_samples;
  out.push_back(std::make_unique<MojitoExplainer>(mojito_copy));

  LandmarkConfig landmark;
  landmark.perturbation.num_samples = config.num_samples;
  out.push_back(std::make_unique<LandmarkExplainer>(landmark));

  LemonConfig lemon;
  lemon.perturbation.num_samples = config.num_samples;
  out.push_back(std::make_unique<LemonExplainer>(lemon));

  KernelShapConfig shap;
  shap.num_samples = config.num_samples;
  out.push_back(std::make_unique<KernelShapExplainer>(shap));

  CertaConfig certa;
  certa.substitutions_per_token = config.certa_substitutions;
  out.push_back(std::make_unique<CertaExplainer>(support, certa));

  if (config.include_random) {
    out.push_back(std::make_unique<RandomExplainer>());
  }

  DecisionUnitConfig wym;
  wym.perturbation.num_samples = config.num_samples;
  out.push_back(std::make_unique<DecisionUnitExplainer>(embeddings, wym));

  CrewConfig crew = config.crew;
  crew.importance.perturbation.num_samples = config.num_samples;
  out.push_back(std::make_unique<CrewExplainer>(embeddings, crew));
  return out;
}

std::vector<int> SelectExplainInstances(const Matcher& matcher,
                                        const Dataset& test, int n, Rng& rng) {
  std::vector<int> predicted_match, predicted_nonmatch;
  for (int i = 0; i < test.size(); ++i) {
    if (test.pair(i).label != 0 && test.pair(i).label != 1) continue;
    if (matcher.Predict(test.pair(i)) == 1) {
      predicted_match.push_back(i);
    } else {
      predicted_nonmatch.push_back(i);
    }
  }
  rng.Shuffle(predicted_match);
  rng.Shuffle(predicted_nonmatch);
  std::vector<int> out;
  const int half = n / 2;
  for (int i = 0; i < half && i < static_cast<int>(predicted_match.size());
       ++i) {
    out.push_back(predicted_match[i]);
  }
  for (int i = 0;
       static_cast<int>(out.size()) < n &&
       i < static_cast<int>(predicted_nonmatch.size());
       ++i) {
    out.push_back(predicted_nonmatch[i]);
  }
  // Backfill with more predicted matches if non-matches ran out.
  for (int i = half;
       static_cast<int>(out.size()) < n &&
       i < static_cast<int>(predicted_match.size());
       ++i) {
    out.push_back(predicted_match[i]);
  }
  return out;
}

Result<std::pair<WordExplanation, std::vector<ExplanationUnit>>>
ExplainAsUnits(const Explainer& explainer, const Matcher& matcher,
               const RecordPair& pair, uint64_t seed) {
  // CREW is the one explainer producing multi-word units; detect it here so
  // callers can treat the whole line-up uniformly. (RTTI confined to the
  // evaluation harness.)
  if (const auto* crew = dynamic_cast<const CrewExplainer*>(&explainer)) {
    auto clusters = crew->ExplainClusters(matcher, pair, seed);
    if (!clusters.ok()) return clusters.status();
    return std::make_pair(std::move(clusters.value().words),
                          std::move(clusters.value().units));
  }
  if (const auto* wym =
          dynamic_cast<const DecisionUnitExplainer*>(&explainer)) {
    return wym->ExplainUnits(matcher, pair, seed);
  }
  auto words = explainer.Explain(matcher, pair, seed);
  if (!words.ok()) return words.status();
  auto units = SingletonUnits(words.value());
  return std::make_pair(std::move(words.value()), std::move(units));
}

Result<ExplainerAggregate> EvaluateExplainerOnDataset(
    const Explainer& explainer, const Matcher& matcher, const Dataset& test,
    const std::vector<int>& instance_indices,
    const EmbeddingStore* embeddings, uint64_t seed,
    std::vector<double>* per_instance_aopc) {
  ExplainerAggregate agg;
  agg.name = explainer.Name();
  if (per_instance_aopc != nullptr) per_instance_aopc->clear();
  Tokenizer tokenizer;
  for (int idx : instance_indices) {
    const RecordPair& pair = test.pair(idx);
    auto explained = ExplainAsUnits(explainer, matcher, pair,
                                    seed ^ (static_cast<uint64_t>(idx) << 20));
    if (!explained.ok()) return explained.status();
    const WordExplanation& words = explained.value().first;
    const std::vector<ExplanationUnit>& units = explained.value().second;
    if (units.empty()) continue;

    EvalInstance instance{
        PairTokenView(AnonymousSchema(pair), tokenizer, pair), units,
        words.base_score, matcher.threshold()};

    const double aopc = AopcDeletion(matcher, instance, 5);
    if (per_instance_aopc != nullptr) per_instance_aopc->push_back(aopc);
    agg.aopc += aopc;
    agg.comprehensiveness_at_1 += ComprehensivenessAtK(matcher, instance, 1);
    agg.comprehensiveness_at_3 += ComprehensivenessAtK(matcher, instance, 3);
    agg.sufficiency_at_1 += SufficiencyAtK(matcher, instance, 1);
    agg.sufficiency_at_3 += SufficiencyAtK(matcher, instance, 3);
    agg.comprehensiveness_budget5 +=
        ComprehensivenessAtTokenBudget(matcher, instance, 5);
    agg.decision_flip_rate +=
        DecisionFlipAtTop(matcher, instance) ? 1.0 : 0.0;

    const ComprehensibilityResult comp =
        EvaluateComprehensibility(words, units, embeddings);
    agg.total_units += comp.total_units;
    agg.effective_units += comp.effective_units;
    agg.words_per_unit += comp.avg_words_per_unit;
    agg.semantic_coherence += comp.semantic_coherence;
    agg.attribute_purity += comp.attribute_purity;

    agg.surrogate_r2 += words.surrogate_r2;
    agg.runtime_ms += words.runtime_ms;
    ++agg.instances;
  }
  if (agg.instances > 0) {
    const double inv = 1.0 / agg.instances;
    agg.aopc *= inv;
    agg.comprehensiveness_at_1 *= inv;
    agg.comprehensiveness_at_3 *= inv;
    agg.sufficiency_at_1 *= inv;
    agg.sufficiency_at_3 *= inv;
    agg.comprehensiveness_budget5 *= inv;
    agg.decision_flip_rate *= inv;
    agg.total_units *= inv;
    agg.effective_units *= inv;
    agg.words_per_unit *= inv;
    agg.semantic_coherence *= inv;
    agg.attribute_purity *= inv;
    agg.surrogate_r2 *= inv;
    agg.runtime_ms *= inv;
  }
  return agg;
}

}  // namespace crew
