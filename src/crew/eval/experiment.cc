#include "crew/eval/experiment.h"

#include <algorithm>

#include "crew/core/decision_units.h"
#include "crew/eval/runner.h"
#include "crew/explain/certa.h"
#include "crew/explain/lemon.h"
#include "crew/explain/lime.h"
#include "crew/explain/mojito.h"
#include "crew/explain/random_explainer.h"
#include "crew/explain/shap.h"

namespace crew {

std::vector<std::unique_ptr<Explainer>> BuildExplainerSuite(
    std::shared_ptr<const EmbeddingStore> embeddings, const Dataset& support,
    const ExplainerSuiteConfig& config) {
  std::vector<std::unique_ptr<Explainer>> out;

  LimeConfig lime;
  lime.perturbation.num_samples = config.num_samples;
  out.push_back(std::make_unique<LimeExplainer>(lime));

  MojitoConfig mojito_drop;
  mojito_drop.mode = MojitoMode::kDrop;
  mojito_drop.perturbation.num_samples = config.num_samples;
  out.push_back(std::make_unique<MojitoExplainer>(mojito_drop));

  MojitoConfig mojito_copy;
  mojito_copy.mode = MojitoMode::kCopy;
  mojito_copy.perturbation.num_samples = config.num_samples;
  out.push_back(std::make_unique<MojitoExplainer>(mojito_copy));

  LandmarkConfig landmark;
  landmark.perturbation.num_samples = config.num_samples;
  out.push_back(std::make_unique<LandmarkExplainer>(landmark));

  LemonConfig lemon;
  lemon.perturbation.num_samples = config.num_samples;
  out.push_back(std::make_unique<LemonExplainer>(lemon));

  KernelShapConfig shap;
  shap.num_samples = config.num_samples;
  out.push_back(std::make_unique<KernelShapExplainer>(shap));

  CertaConfig certa;
  certa.substitutions_per_token = config.certa_substitutions;
  out.push_back(std::make_unique<CertaExplainer>(support, certa));

  if (config.include_random) {
    out.push_back(std::make_unique<RandomExplainer>());
  }

  DecisionUnitConfig wym;
  wym.perturbation.num_samples = config.num_samples;
  out.push_back(std::make_unique<DecisionUnitExplainer>(embeddings, wym));

  CrewConfig crew = config.crew;
  crew.importance.perturbation.num_samples = config.num_samples;
  out.push_back(std::make_unique<CrewExplainer>(embeddings, crew));
  return out;
}

std::vector<int> SelectExplainInstances(const Matcher& matcher,
                                        const Dataset& test, int n, Rng& rng) {
  std::vector<int> predicted_match, predicted_nonmatch;
  for (int i = 0; i < test.size(); ++i) {
    if (test.pair(i).label != 0 && test.pair(i).label != 1) continue;
    if (matcher.Predict(test.pair(i)) == 1) {
      predicted_match.push_back(i);
    } else {
      predicted_nonmatch.push_back(i);
    }
  }
  rng.Shuffle(predicted_match);
  rng.Shuffle(predicted_nonmatch);
  // Balanced draw, then symmetric backfill: whichever side runs short, the
  // other side tops the selection up to n (bounded by total availability).
  const int half = n / 2;
  std::vector<int> out;
  size_t m = 0, u = 0;
  while (static_cast<int>(out.size()) < half &&
         m < predicted_match.size()) {
    out.push_back(predicted_match[m++]);
  }
  while (static_cast<int>(out.size()) < n &&
         u < predicted_nonmatch.size()) {
    out.push_back(predicted_nonmatch[u++]);
  }
  while (static_cast<int>(out.size()) < n && m < predicted_match.size()) {
    out.push_back(predicted_match[m++]);
  }
  return out;
}

Result<UnitizedExplanation> ExplainAsUnitsEx(const Explainer& explainer,
                                             const Matcher& matcher,
                                             const RecordPair& pair,
                                             uint64_t seed) {
  // CREW is the one explainer producing multi-word units; detect it here so
  // callers can treat the whole line-up uniformly. (RTTI confined to the
  // evaluation harness.)
  UnitizedExplanation out;
  if (const auto* crew = dynamic_cast<const CrewExplainer*>(&explainer)) {
    auto clusters = crew->ExplainClusters(matcher, pair, seed);
    if (!clusters.ok()) return clusters.status();
    out.words = std::move(clusters.value().words);
    out.units = std::move(clusters.value().units);
    out.has_cluster_stats = true;
    out.cluster_coherence = clusters.value().coherence;
    out.cluster_silhouette = clusters.value().silhouette;
    out.chosen_k = clusters.value().chosen_k;
    return out;
  }
  if (const auto* wym =
          dynamic_cast<const DecisionUnitExplainer*>(&explainer)) {
    auto explained = wym->ExplainUnits(matcher, pair, seed);
    if (!explained.ok()) return explained.status();
    out.words = std::move(explained.value().first);
    out.units = std::move(explained.value().second);
    return out;
  }
  auto words = explainer.Explain(matcher, pair, seed);
  if (!words.ok()) return words.status();
  out.units = SingletonUnits(words.value());
  out.words = std::move(words.value());
  return out;
}

Result<std::pair<WordExplanation, std::vector<ExplanationUnit>>>
ExplainAsUnits(const Explainer& explainer, const Matcher& matcher,
               const RecordPair& pair, uint64_t seed) {
  auto ex = ExplainAsUnitsEx(explainer, matcher, pair, seed);
  if (!ex.ok()) return ex.status();
  return std::make_pair(std::move(ex.value().words),
                        std::move(ex.value().units));
}

Result<ExplainerAggregate> EvaluateExplainerOnDataset(
    const Explainer& explainer, const Matcher& matcher, const Dataset& test,
    const std::vector<int>& instance_indices,
    const EmbeddingStore* embeddings, uint64_t seed,
    std::vector<double>* per_instance_aopc) {
  auto records = EvaluateInstances(explainer, matcher, test, instance_indices,
                                   embeddings, seed);
  if (!records.ok()) return records.status();
  if (per_instance_aopc != nullptr) {
    per_instance_aopc->clear();
    for (const InstanceEvaluation& r : records.value()) {
      if (r.evaluated) per_instance_aopc->push_back(r.aopc);
    }
  }
  return ReduceInstances(explainer.Name(), records.value());
}

}  // namespace crew
