# Empty compiler generated dependencies file for crew_la.
# This may be replaced when dependencies are built.
