file(REMOVE_RECURSE
  "libcrew_la.a"
)
