
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crew/la/matrix.cc" "src/CMakeFiles/crew_la.dir/crew/la/matrix.cc.o" "gcc" "src/CMakeFiles/crew_la.dir/crew/la/matrix.cc.o.d"
  "/root/repo/src/crew/la/ridge.cc" "src/CMakeFiles/crew_la.dir/crew/la/ridge.cc.o" "gcc" "src/CMakeFiles/crew_la.dir/crew/la/ridge.cc.o.d"
  "/root/repo/src/crew/la/stats.cc" "src/CMakeFiles/crew_la.dir/crew/la/stats.cc.o" "gcc" "src/CMakeFiles/crew_la.dir/crew/la/stats.cc.o.d"
  "/root/repo/src/crew/la/svd.cc" "src/CMakeFiles/crew_la.dir/crew/la/svd.cc.o" "gcc" "src/CMakeFiles/crew_la.dir/crew/la/svd.cc.o.d"
  "/root/repo/src/crew/la/vector_ops.cc" "src/CMakeFiles/crew_la.dir/crew/la/vector_ops.cc.o" "gcc" "src/CMakeFiles/crew_la.dir/crew/la/vector_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crew_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
