file(REMOVE_RECURSE
  "CMakeFiles/crew_la.dir/crew/la/matrix.cc.o"
  "CMakeFiles/crew_la.dir/crew/la/matrix.cc.o.d"
  "CMakeFiles/crew_la.dir/crew/la/ridge.cc.o"
  "CMakeFiles/crew_la.dir/crew/la/ridge.cc.o.d"
  "CMakeFiles/crew_la.dir/crew/la/stats.cc.o"
  "CMakeFiles/crew_la.dir/crew/la/stats.cc.o.d"
  "CMakeFiles/crew_la.dir/crew/la/svd.cc.o"
  "CMakeFiles/crew_la.dir/crew/la/svd.cc.o.d"
  "CMakeFiles/crew_la.dir/crew/la/vector_ops.cc.o"
  "CMakeFiles/crew_la.dir/crew/la/vector_ops.cc.o.d"
  "libcrew_la.a"
  "libcrew_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crew_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
