
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crew/model/embedding_bag_matcher.cc" "src/CMakeFiles/crew_model.dir/crew/model/embedding_bag_matcher.cc.o" "gcc" "src/CMakeFiles/crew_model.dir/crew/model/embedding_bag_matcher.cc.o.d"
  "/root/repo/src/crew/model/features.cc" "src/CMakeFiles/crew_model.dir/crew/model/features.cc.o" "gcc" "src/CMakeFiles/crew_model.dir/crew/model/features.cc.o.d"
  "/root/repo/src/crew/model/logistic_matcher.cc" "src/CMakeFiles/crew_model.dir/crew/model/logistic_matcher.cc.o" "gcc" "src/CMakeFiles/crew_model.dir/crew/model/logistic_matcher.cc.o.d"
  "/root/repo/src/crew/model/metrics.cc" "src/CMakeFiles/crew_model.dir/crew/model/metrics.cc.o" "gcc" "src/CMakeFiles/crew_model.dir/crew/model/metrics.cc.o.d"
  "/root/repo/src/crew/model/mlp_matcher.cc" "src/CMakeFiles/crew_model.dir/crew/model/mlp_matcher.cc.o" "gcc" "src/CMakeFiles/crew_model.dir/crew/model/mlp_matcher.cc.o.d"
  "/root/repo/src/crew/model/random_forest_matcher.cc" "src/CMakeFiles/crew_model.dir/crew/model/random_forest_matcher.cc.o" "gcc" "src/CMakeFiles/crew_model.dir/crew/model/random_forest_matcher.cc.o.d"
  "/root/repo/src/crew/model/rule_matcher.cc" "src/CMakeFiles/crew_model.dir/crew/model/rule_matcher.cc.o" "gcc" "src/CMakeFiles/crew_model.dir/crew/model/rule_matcher.cc.o.d"
  "/root/repo/src/crew/model/trainer.cc" "src/CMakeFiles/crew_model.dir/crew/model/trainer.cc.o" "gcc" "src/CMakeFiles/crew_model.dir/crew/model/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crew_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_embed.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
