file(REMOVE_RECURSE
  "libcrew_model.a"
)
