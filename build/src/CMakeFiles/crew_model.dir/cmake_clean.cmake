file(REMOVE_RECURSE
  "CMakeFiles/crew_model.dir/crew/model/embedding_bag_matcher.cc.o"
  "CMakeFiles/crew_model.dir/crew/model/embedding_bag_matcher.cc.o.d"
  "CMakeFiles/crew_model.dir/crew/model/features.cc.o"
  "CMakeFiles/crew_model.dir/crew/model/features.cc.o.d"
  "CMakeFiles/crew_model.dir/crew/model/logistic_matcher.cc.o"
  "CMakeFiles/crew_model.dir/crew/model/logistic_matcher.cc.o.d"
  "CMakeFiles/crew_model.dir/crew/model/metrics.cc.o"
  "CMakeFiles/crew_model.dir/crew/model/metrics.cc.o.d"
  "CMakeFiles/crew_model.dir/crew/model/mlp_matcher.cc.o"
  "CMakeFiles/crew_model.dir/crew/model/mlp_matcher.cc.o.d"
  "CMakeFiles/crew_model.dir/crew/model/random_forest_matcher.cc.o"
  "CMakeFiles/crew_model.dir/crew/model/random_forest_matcher.cc.o.d"
  "CMakeFiles/crew_model.dir/crew/model/rule_matcher.cc.o"
  "CMakeFiles/crew_model.dir/crew/model/rule_matcher.cc.o.d"
  "CMakeFiles/crew_model.dir/crew/model/trainer.cc.o"
  "CMakeFiles/crew_model.dir/crew/model/trainer.cc.o.d"
  "libcrew_model.a"
  "libcrew_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crew_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
