# Empty compiler generated dependencies file for crew_model.
# This may be replaced when dependencies are built.
