
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crew/core/affinity.cc" "src/CMakeFiles/crew_core.dir/crew/core/affinity.cc.o" "gcc" "src/CMakeFiles/crew_core.dir/crew/core/affinity.cc.o.d"
  "/root/repo/src/crew/core/agglomerative.cc" "src/CMakeFiles/crew_core.dir/crew/core/agglomerative.cc.o" "gcc" "src/CMakeFiles/crew_core.dir/crew/core/agglomerative.cc.o.d"
  "/root/repo/src/crew/core/cluster_explanation.cc" "src/CMakeFiles/crew_core.dir/crew/core/cluster_explanation.cc.o" "gcc" "src/CMakeFiles/crew_core.dir/crew/core/cluster_explanation.cc.o.d"
  "/root/repo/src/crew/core/correlation_clustering.cc" "src/CMakeFiles/crew_core.dir/crew/core/correlation_clustering.cc.o" "gcc" "src/CMakeFiles/crew_core.dir/crew/core/correlation_clustering.cc.o.d"
  "/root/repo/src/crew/core/counterfactual.cc" "src/CMakeFiles/crew_core.dir/crew/core/counterfactual.cc.o" "gcc" "src/CMakeFiles/crew_core.dir/crew/core/counterfactual.cc.o.d"
  "/root/repo/src/crew/core/crew_explainer.cc" "src/CMakeFiles/crew_core.dir/crew/core/crew_explainer.cc.o" "gcc" "src/CMakeFiles/crew_core.dir/crew/core/crew_explainer.cc.o.d"
  "/root/repo/src/crew/core/decision_units.cc" "src/CMakeFiles/crew_core.dir/crew/core/decision_units.cc.o" "gcc" "src/CMakeFiles/crew_core.dir/crew/core/decision_units.cc.o.d"
  "/root/repo/src/crew/core/html_report.cc" "src/CMakeFiles/crew_core.dir/crew/core/html_report.cc.o" "gcc" "src/CMakeFiles/crew_core.dir/crew/core/html_report.cc.o.d"
  "/root/repo/src/crew/core/silhouette.cc" "src/CMakeFiles/crew_core.dir/crew/core/silhouette.cc.o" "gcc" "src/CMakeFiles/crew_core.dir/crew/core/silhouette.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crew_explain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
