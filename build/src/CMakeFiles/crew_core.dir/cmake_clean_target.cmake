file(REMOVE_RECURSE
  "libcrew_core.a"
)
