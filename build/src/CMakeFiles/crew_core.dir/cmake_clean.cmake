file(REMOVE_RECURSE
  "CMakeFiles/crew_core.dir/crew/core/affinity.cc.o"
  "CMakeFiles/crew_core.dir/crew/core/affinity.cc.o.d"
  "CMakeFiles/crew_core.dir/crew/core/agglomerative.cc.o"
  "CMakeFiles/crew_core.dir/crew/core/agglomerative.cc.o.d"
  "CMakeFiles/crew_core.dir/crew/core/cluster_explanation.cc.o"
  "CMakeFiles/crew_core.dir/crew/core/cluster_explanation.cc.o.d"
  "CMakeFiles/crew_core.dir/crew/core/correlation_clustering.cc.o"
  "CMakeFiles/crew_core.dir/crew/core/correlation_clustering.cc.o.d"
  "CMakeFiles/crew_core.dir/crew/core/counterfactual.cc.o"
  "CMakeFiles/crew_core.dir/crew/core/counterfactual.cc.o.d"
  "CMakeFiles/crew_core.dir/crew/core/crew_explainer.cc.o"
  "CMakeFiles/crew_core.dir/crew/core/crew_explainer.cc.o.d"
  "CMakeFiles/crew_core.dir/crew/core/decision_units.cc.o"
  "CMakeFiles/crew_core.dir/crew/core/decision_units.cc.o.d"
  "CMakeFiles/crew_core.dir/crew/core/html_report.cc.o"
  "CMakeFiles/crew_core.dir/crew/core/html_report.cc.o.d"
  "CMakeFiles/crew_core.dir/crew/core/silhouette.cc.o"
  "CMakeFiles/crew_core.dir/crew/core/silhouette.cc.o.d"
  "libcrew_core.a"
  "libcrew_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crew_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
