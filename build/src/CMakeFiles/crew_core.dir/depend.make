# Empty dependencies file for crew_core.
# This may be replaced when dependencies are built.
