file(REMOVE_RECURSE
  "libcrew_text.a"
)
