
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crew/text/stopwords.cc" "src/CMakeFiles/crew_text.dir/crew/text/stopwords.cc.o" "gcc" "src/CMakeFiles/crew_text.dir/crew/text/stopwords.cc.o.d"
  "/root/repo/src/crew/text/string_similarity.cc" "src/CMakeFiles/crew_text.dir/crew/text/string_similarity.cc.o" "gcc" "src/CMakeFiles/crew_text.dir/crew/text/string_similarity.cc.o.d"
  "/root/repo/src/crew/text/tokenizer.cc" "src/CMakeFiles/crew_text.dir/crew/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/crew_text.dir/crew/text/tokenizer.cc.o.d"
  "/root/repo/src/crew/text/vocabulary.cc" "src/CMakeFiles/crew_text.dir/crew/text/vocabulary.cc.o" "gcc" "src/CMakeFiles/crew_text.dir/crew/text/vocabulary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crew_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
