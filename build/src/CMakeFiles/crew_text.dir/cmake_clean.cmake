file(REMOVE_RECURSE
  "CMakeFiles/crew_text.dir/crew/text/stopwords.cc.o"
  "CMakeFiles/crew_text.dir/crew/text/stopwords.cc.o.d"
  "CMakeFiles/crew_text.dir/crew/text/string_similarity.cc.o"
  "CMakeFiles/crew_text.dir/crew/text/string_similarity.cc.o.d"
  "CMakeFiles/crew_text.dir/crew/text/tokenizer.cc.o"
  "CMakeFiles/crew_text.dir/crew/text/tokenizer.cc.o.d"
  "CMakeFiles/crew_text.dir/crew/text/vocabulary.cc.o"
  "CMakeFiles/crew_text.dir/crew/text/vocabulary.cc.o.d"
  "libcrew_text.a"
  "libcrew_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crew_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
