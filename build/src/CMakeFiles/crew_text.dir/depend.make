# Empty dependencies file for crew_text.
# This may be replaced when dependencies are built.
