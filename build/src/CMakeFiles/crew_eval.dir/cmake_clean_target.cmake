file(REMOVE_RECURSE
  "libcrew_eval.a"
)
