# Empty compiler generated dependencies file for crew_eval.
# This may be replaced when dependencies are built.
