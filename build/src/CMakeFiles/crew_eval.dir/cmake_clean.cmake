file(REMOVE_RECURSE
  "CMakeFiles/crew_eval.dir/crew/eval/comprehensibility.cc.o"
  "CMakeFiles/crew_eval.dir/crew/eval/comprehensibility.cc.o.d"
  "CMakeFiles/crew_eval.dir/crew/eval/experiment.cc.o"
  "CMakeFiles/crew_eval.dir/crew/eval/experiment.cc.o.d"
  "CMakeFiles/crew_eval.dir/crew/eval/faithfulness.cc.o"
  "CMakeFiles/crew_eval.dir/crew/eval/faithfulness.cc.o.d"
  "CMakeFiles/crew_eval.dir/crew/eval/global_explanation.cc.o"
  "CMakeFiles/crew_eval.dir/crew/eval/global_explanation.cc.o.d"
  "CMakeFiles/crew_eval.dir/crew/eval/significance.cc.o"
  "CMakeFiles/crew_eval.dir/crew/eval/significance.cc.o.d"
  "CMakeFiles/crew_eval.dir/crew/eval/stability.cc.o"
  "CMakeFiles/crew_eval.dir/crew/eval/stability.cc.o.d"
  "CMakeFiles/crew_eval.dir/crew/eval/table.cc.o"
  "CMakeFiles/crew_eval.dir/crew/eval/table.cc.o.d"
  "libcrew_eval.a"
  "libcrew_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crew_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
