
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crew/eval/comprehensibility.cc" "src/CMakeFiles/crew_eval.dir/crew/eval/comprehensibility.cc.o" "gcc" "src/CMakeFiles/crew_eval.dir/crew/eval/comprehensibility.cc.o.d"
  "/root/repo/src/crew/eval/experiment.cc" "src/CMakeFiles/crew_eval.dir/crew/eval/experiment.cc.o" "gcc" "src/CMakeFiles/crew_eval.dir/crew/eval/experiment.cc.o.d"
  "/root/repo/src/crew/eval/faithfulness.cc" "src/CMakeFiles/crew_eval.dir/crew/eval/faithfulness.cc.o" "gcc" "src/CMakeFiles/crew_eval.dir/crew/eval/faithfulness.cc.o.d"
  "/root/repo/src/crew/eval/global_explanation.cc" "src/CMakeFiles/crew_eval.dir/crew/eval/global_explanation.cc.o" "gcc" "src/CMakeFiles/crew_eval.dir/crew/eval/global_explanation.cc.o.d"
  "/root/repo/src/crew/eval/significance.cc" "src/CMakeFiles/crew_eval.dir/crew/eval/significance.cc.o" "gcc" "src/CMakeFiles/crew_eval.dir/crew/eval/significance.cc.o.d"
  "/root/repo/src/crew/eval/stability.cc" "src/CMakeFiles/crew_eval.dir/crew/eval/stability.cc.o" "gcc" "src/CMakeFiles/crew_eval.dir/crew/eval/stability.cc.o.d"
  "/root/repo/src/crew/eval/table.cc" "src/CMakeFiles/crew_eval.dir/crew/eval/table.cc.o" "gcc" "src/CMakeFiles/crew_eval.dir/crew/eval/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crew_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_explain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
