# Empty compiler generated dependencies file for crew_common.
# This may be replaced when dependencies are built.
