file(REMOVE_RECURSE
  "libcrew_common.a"
)
