file(REMOVE_RECURSE
  "CMakeFiles/crew_common.dir/crew/common/flags.cc.o"
  "CMakeFiles/crew_common.dir/crew/common/flags.cc.o.d"
  "CMakeFiles/crew_common.dir/crew/common/logging.cc.o"
  "CMakeFiles/crew_common.dir/crew/common/logging.cc.o.d"
  "CMakeFiles/crew_common.dir/crew/common/rng.cc.o"
  "CMakeFiles/crew_common.dir/crew/common/rng.cc.o.d"
  "CMakeFiles/crew_common.dir/crew/common/status.cc.o"
  "CMakeFiles/crew_common.dir/crew/common/status.cc.o.d"
  "CMakeFiles/crew_common.dir/crew/common/string_util.cc.o"
  "CMakeFiles/crew_common.dir/crew/common/string_util.cc.o.d"
  "libcrew_common.a"
  "libcrew_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crew_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
