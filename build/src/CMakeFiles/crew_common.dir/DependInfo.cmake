
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crew/common/flags.cc" "src/CMakeFiles/crew_common.dir/crew/common/flags.cc.o" "gcc" "src/CMakeFiles/crew_common.dir/crew/common/flags.cc.o.d"
  "/root/repo/src/crew/common/logging.cc" "src/CMakeFiles/crew_common.dir/crew/common/logging.cc.o" "gcc" "src/CMakeFiles/crew_common.dir/crew/common/logging.cc.o.d"
  "/root/repo/src/crew/common/rng.cc" "src/CMakeFiles/crew_common.dir/crew/common/rng.cc.o" "gcc" "src/CMakeFiles/crew_common.dir/crew/common/rng.cc.o.d"
  "/root/repo/src/crew/common/status.cc" "src/CMakeFiles/crew_common.dir/crew/common/status.cc.o" "gcc" "src/CMakeFiles/crew_common.dir/crew/common/status.cc.o.d"
  "/root/repo/src/crew/common/string_util.cc" "src/CMakeFiles/crew_common.dir/crew/common/string_util.cc.o" "gcc" "src/CMakeFiles/crew_common.dir/crew/common/string_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
