
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crew/explain/attribution.cc" "src/CMakeFiles/crew_explain.dir/crew/explain/attribution.cc.o" "gcc" "src/CMakeFiles/crew_explain.dir/crew/explain/attribution.cc.o.d"
  "/root/repo/src/crew/explain/certa.cc" "src/CMakeFiles/crew_explain.dir/crew/explain/certa.cc.o" "gcc" "src/CMakeFiles/crew_explain.dir/crew/explain/certa.cc.o.d"
  "/root/repo/src/crew/explain/landmark.cc" "src/CMakeFiles/crew_explain.dir/crew/explain/landmark.cc.o" "gcc" "src/CMakeFiles/crew_explain.dir/crew/explain/landmark.cc.o.d"
  "/root/repo/src/crew/explain/lemon.cc" "src/CMakeFiles/crew_explain.dir/crew/explain/lemon.cc.o" "gcc" "src/CMakeFiles/crew_explain.dir/crew/explain/lemon.cc.o.d"
  "/root/repo/src/crew/explain/lime.cc" "src/CMakeFiles/crew_explain.dir/crew/explain/lime.cc.o" "gcc" "src/CMakeFiles/crew_explain.dir/crew/explain/lime.cc.o.d"
  "/root/repo/src/crew/explain/mojito.cc" "src/CMakeFiles/crew_explain.dir/crew/explain/mojito.cc.o" "gcc" "src/CMakeFiles/crew_explain.dir/crew/explain/mojito.cc.o.d"
  "/root/repo/src/crew/explain/perturbation.cc" "src/CMakeFiles/crew_explain.dir/crew/explain/perturbation.cc.o" "gcc" "src/CMakeFiles/crew_explain.dir/crew/explain/perturbation.cc.o.d"
  "/root/repo/src/crew/explain/random_explainer.cc" "src/CMakeFiles/crew_explain.dir/crew/explain/random_explainer.cc.o" "gcc" "src/CMakeFiles/crew_explain.dir/crew/explain/random_explainer.cc.o.d"
  "/root/repo/src/crew/explain/serialize.cc" "src/CMakeFiles/crew_explain.dir/crew/explain/serialize.cc.o" "gcc" "src/CMakeFiles/crew_explain.dir/crew/explain/serialize.cc.o.d"
  "/root/repo/src/crew/explain/shap.cc" "src/CMakeFiles/crew_explain.dir/crew/explain/shap.cc.o" "gcc" "src/CMakeFiles/crew_explain.dir/crew/explain/shap.cc.o.d"
  "/root/repo/src/crew/explain/token_view.cc" "src/CMakeFiles/crew_explain.dir/crew/explain/token_view.cc.o" "gcc" "src/CMakeFiles/crew_explain.dir/crew/explain/token_view.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crew_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_embed.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
