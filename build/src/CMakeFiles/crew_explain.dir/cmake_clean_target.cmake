file(REMOVE_RECURSE
  "libcrew_explain.a"
)
