# Empty compiler generated dependencies file for crew_explain.
# This may be replaced when dependencies are built.
