file(REMOVE_RECURSE
  "CMakeFiles/crew_explain.dir/crew/explain/attribution.cc.o"
  "CMakeFiles/crew_explain.dir/crew/explain/attribution.cc.o.d"
  "CMakeFiles/crew_explain.dir/crew/explain/certa.cc.o"
  "CMakeFiles/crew_explain.dir/crew/explain/certa.cc.o.d"
  "CMakeFiles/crew_explain.dir/crew/explain/landmark.cc.o"
  "CMakeFiles/crew_explain.dir/crew/explain/landmark.cc.o.d"
  "CMakeFiles/crew_explain.dir/crew/explain/lemon.cc.o"
  "CMakeFiles/crew_explain.dir/crew/explain/lemon.cc.o.d"
  "CMakeFiles/crew_explain.dir/crew/explain/lime.cc.o"
  "CMakeFiles/crew_explain.dir/crew/explain/lime.cc.o.d"
  "CMakeFiles/crew_explain.dir/crew/explain/mojito.cc.o"
  "CMakeFiles/crew_explain.dir/crew/explain/mojito.cc.o.d"
  "CMakeFiles/crew_explain.dir/crew/explain/perturbation.cc.o"
  "CMakeFiles/crew_explain.dir/crew/explain/perturbation.cc.o.d"
  "CMakeFiles/crew_explain.dir/crew/explain/random_explainer.cc.o"
  "CMakeFiles/crew_explain.dir/crew/explain/random_explainer.cc.o.d"
  "CMakeFiles/crew_explain.dir/crew/explain/serialize.cc.o"
  "CMakeFiles/crew_explain.dir/crew/explain/serialize.cc.o.d"
  "CMakeFiles/crew_explain.dir/crew/explain/shap.cc.o"
  "CMakeFiles/crew_explain.dir/crew/explain/shap.cc.o.d"
  "CMakeFiles/crew_explain.dir/crew/explain/token_view.cc.o"
  "CMakeFiles/crew_explain.dir/crew/explain/token_view.cc.o.d"
  "libcrew_explain.a"
  "libcrew_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crew_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
