file(REMOVE_RECURSE
  "CMakeFiles/crew_embed.dir/crew/embed/cooccurrence.cc.o"
  "CMakeFiles/crew_embed.dir/crew/embed/cooccurrence.cc.o.d"
  "CMakeFiles/crew_embed.dir/crew/embed/embedding_io.cc.o"
  "CMakeFiles/crew_embed.dir/crew/embed/embedding_io.cc.o.d"
  "CMakeFiles/crew_embed.dir/crew/embed/embedding_store.cc.o"
  "CMakeFiles/crew_embed.dir/crew/embed/embedding_store.cc.o.d"
  "CMakeFiles/crew_embed.dir/crew/embed/ppmi.cc.o"
  "CMakeFiles/crew_embed.dir/crew/embed/ppmi.cc.o.d"
  "CMakeFiles/crew_embed.dir/crew/embed/sgns.cc.o"
  "CMakeFiles/crew_embed.dir/crew/embed/sgns.cc.o.d"
  "CMakeFiles/crew_embed.dir/crew/embed/svd_embedding.cc.o"
  "CMakeFiles/crew_embed.dir/crew/embed/svd_embedding.cc.o.d"
  "libcrew_embed.a"
  "libcrew_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crew_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
