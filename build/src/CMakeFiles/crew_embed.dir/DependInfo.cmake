
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crew/embed/cooccurrence.cc" "src/CMakeFiles/crew_embed.dir/crew/embed/cooccurrence.cc.o" "gcc" "src/CMakeFiles/crew_embed.dir/crew/embed/cooccurrence.cc.o.d"
  "/root/repo/src/crew/embed/embedding_io.cc" "src/CMakeFiles/crew_embed.dir/crew/embed/embedding_io.cc.o" "gcc" "src/CMakeFiles/crew_embed.dir/crew/embed/embedding_io.cc.o.d"
  "/root/repo/src/crew/embed/embedding_store.cc" "src/CMakeFiles/crew_embed.dir/crew/embed/embedding_store.cc.o" "gcc" "src/CMakeFiles/crew_embed.dir/crew/embed/embedding_store.cc.o.d"
  "/root/repo/src/crew/embed/ppmi.cc" "src/CMakeFiles/crew_embed.dir/crew/embed/ppmi.cc.o" "gcc" "src/CMakeFiles/crew_embed.dir/crew/embed/ppmi.cc.o.d"
  "/root/repo/src/crew/embed/sgns.cc" "src/CMakeFiles/crew_embed.dir/crew/embed/sgns.cc.o" "gcc" "src/CMakeFiles/crew_embed.dir/crew/embed/sgns.cc.o.d"
  "/root/repo/src/crew/embed/svd_embedding.cc" "src/CMakeFiles/crew_embed.dir/crew/embed/svd_embedding.cc.o" "gcc" "src/CMakeFiles/crew_embed.dir/crew/embed/svd_embedding.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crew_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crew_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
