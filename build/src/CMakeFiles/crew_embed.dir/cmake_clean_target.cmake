file(REMOVE_RECURSE
  "libcrew_embed.a"
)
