# Empty compiler generated dependencies file for crew_embed.
# This may be replaced when dependencies are built.
