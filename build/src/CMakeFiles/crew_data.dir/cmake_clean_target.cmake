file(REMOVE_RECURSE
  "libcrew_data.a"
)
